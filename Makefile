# Convenience aliases; ci.sh is the authoritative gate.

.PHONY: ci build test race lint fuzz bench

ci:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

lint:
	go run ./cmd/bulletlint -list
	go run ./cmd/bulletlint ./...

fuzz:
	go test -run='^$$' -fuzz=Fuzz -fuzztime=5s ./internal/smmask

bench:
	go test -bench=. -benchtime=1x -short
