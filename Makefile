# Convenience aliases; ci.sh is the authoritative gate.

.PHONY: ci build test race lint fuzz bench bench-cluster

ci:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

lint:
	go run ./cmd/bulletlint -list
	go run ./cmd/bulletlint ./...

fuzz:
	go test -run='^$$' -fuzz=Fuzz -fuzztime=5s ./internal/smmask

bench:
	go test -bench=. -benchtime=1x -short

# Serial vs forkjoin-parallel replica sweep (see BENCH_cluster_sweep.json).
bench-cluster:
	GOMAXPROCS=4 go test -run='^$$' -bench ClusterSweepParallelism -benchtime 5x -count 1 .
