# Convenience aliases; ci.sh is the authoritative gate.

.PHONY: ci build test race lint fuzz bench bench-cluster bench-hotpath prof

ci:
	./ci.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

lint:
	go run ./cmd/bulletlint -list
	go run ./cmd/bulletlint ./...

fuzz:
	go test -run='^$$' -fuzz=Fuzz -fuzztime=5s ./internal/smmask

bench:
	go test -bench=. -benchtime=1x -short

# Serial vs forkjoin-parallel replica sweep (see BENCH_cluster_sweep.json).
bench-cluster:
	GOMAXPROCS=4 go test -run='^$$' -bench ClusterSweepParallelism -benchtime 5x -count 1 .

# Steady-state hot-path microbenchmarks (see BENCH_hotpath.json).
bench-hotpath:
	go test -run='^$$' -bench BenchmarkHotPaths -benchtime 100000x -count 1 .

# CPU+heap profile of a representative sweep (pprof files in ./prof/).
prof:
	mkdir -p prof
	go run ./cmd/bulletsim -system bullet -dataset azure-code -rate 8 -n 200 -seed 42 \
		-cpuprofile prof/bulletsim.cpu.pprof -memprofile prof/bulletsim.mem.pprof
	go run ./cmd/bulletbench -exp fig4 -quick \
		-cpuprofile prof/bulletbench.cpu.pprof -memprofile prof/bulletbench.mem.pprof
	go tool pprof -top -nodecount=15 prof/bulletsim.cpu.pprof
