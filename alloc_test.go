// Steady-state allocation assertions for the //bullet:hotpath contract
// (DESIGN.md §13). BenchmarkHotPaths measures these paths; this file
// *pins* them, so an allocation regression fails `go test` (and the ci.sh
// alloc gate) rather than silently drifting a BENCH_hotpath.json number.
//
// Each assertion warms the path first so pools and scratch buffers reach
// steady state; AllocsPerRun then reports the per-operation average.
package repro

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/units"
)

// pinAllocs asserts an exact steady-state allocation count.
func pinAllocs(t *testing.T, name string, want float64, fn func()) {
	t.Helper()
	fn() // warm: pools, scratch buffers, lazy growth
	if got := testing.AllocsPerRun(100, fn); got != want {
		t.Errorf("%s: %v allocs/op, want %v", name, got, want)
	}
}

// TestSimEventQueueZeroAlloc pins the event-loop steady state at zero:
// a pooled Post/PostAfter plus the Step that fires it must reuse arena
// storage, never touch the heap.
func TestSimEventQueueZeroAlloc(t *testing.T) {
	s := sim.New()
	fn := func() {}
	for i := 0; i < 256; i++ { // grow the arena and the heap slice once
		s.PostAfter(1e-6, fn)
	}
	for s.Step() {
	}
	pinAllocs(t, "sim post+step", 0, func() {
		s.PostAfter(1e-6, fn)
		s.Step()
	})
}

// TestSimHandleEventOneAlloc pins the handle-returning path at exactly
// one allocation — the escaping *Event the caller retains (the
// documented exception to the pooled path).
func TestSimHandleEventOneAlloc(t *testing.T) {
	s := sim.New()
	fn := func() {}
	pinAllocs(t, "sim at+cancel", 1, func() {
		e := s.After(1e-6, fn)
		s.Cancel(e)
		s.Step()
	})
}

// TestTimelineDisabledCallSiteZeroAlloc pins the cost of a fully
// decorated recording call site when tracing is off — the price every
// production hot loop pays — at zero: the variadic arg slice must stay
// on the caller's stack.
func TestTimelineDisabledCallSiteZeroAlloc(t *testing.T) {
	var rec *timeline.Recorder
	pinAllocs(t, "timeline disabled span", 0, func() {
		rec.Span("prefill", "chunk", 0.001, 0.002,
			timeline.I("tokens", 512), timeline.F("sms", 48), timeline.S("req", "r1"))
	})
	pinAllocs(t, "timeline disabled instant", 0, func() {
		rec.Instant("sched", "re-rate", 0.001,
			timeline.I("prefill_sms", 48), timeline.I("decode_sms", 60))
	})
	pinAllocs(t, "timeline disabled counter", 0, func() {
		rec.Counter("kv", "occupancy", 0.001, timeline.F("frac", 0.7))
	})
	pinAllocs(t, "timeline disabled async", 0, func() {
		rec.AsyncSpan("req", "decode", "id1", 0.001, 0.002, timeline.I("tokens", 1))
	})
}

// TestTimelineEnabledSteadyState bounds the live-recorder append: args
// are copied into the shared arena, so past occasional amortized buffer
// growth a recorded span performs no per-event allocation.
func TestTimelineEnabledSteadyState(t *testing.T) {
	rec := timeline.New(1 << 20)
	record := func() {
		rec.Span("prefill", "chunk", 0.001, 0.002,
			timeline.I("tokens", 512), timeline.F("sms", 48))
	}
	for i := 0; i < 4096; i++ { // push the event and arg buffers past small-cap growth
		record()
	}
	if got := testing.AllocsPerRun(100, record); got >= 1 {
		t.Errorf("timeline enabled span: %v allocs/op, want amortized < 1", got)
	}
}

// TestSchedDecideZeroAlloc pins the full water-filling re-rate —
// percentile predictions, level search, decision — at zero steady-state
// allocations.
func TestSchedDecideZeroAlloc(t *testing.T) {
	s, st := benchScheduler()
	pinAllocs(t, "sched decide", 0, func() { _ = s.Decide(st) })
}

// TestSchedSortWaitingZeroAlloc pins the deadline reorder at zero: the
// insertion sort compares in place with no comparator closure.
func TestSchedSortWaitingZeroAlloc(t *testing.T) {
	s, st := benchScheduler()
	reqs := make([]sched.WaitingReq, len(st.Waiting))
	pinAllocs(t, "sched sort-waiting", 0, func() {
		copy(reqs, st.Waiting)
		s.SortWaiting(reqs)
	})
}

// TestKVAllocFreeSteadyState pins sequence churn at exactly one
// allocation per request — the Sequence header handed to the caller —
// with block tables recycled through the pool.
func TestKVAllocFreeSteadyState(t *testing.T) {
	p := kvcache.NewPool(4096, 16)
	pinAllocs(t, "kvcache alloc+free", 1, func() {
		s, err := p.Allocate("r", 2048, "decode")
		if err != nil {
			t.Fatal(err)
		}
		p.MustFree(s)
	})
}

// TestSampledLookupZeroAlloc pins the sampled backend's per-launch
// latency lookup — token-support binary search plus two inverse-CDF
// interpolations — at zero: it runs once per kernel launch on the
// simulator's event path (the manual search exists because a sort.Search
// closure would allocate).
func TestSampledLookupZeroAlloc(t *testing.T) {
	table := &gpusim.LatencyTable{
		RefSMs: 108,
		Ops: map[string][]gpusim.OpSupport{
			"gemm": {
				{Tokens: 64, Q: []units.Seconds{1e-4, 2e-4, 3e-4}},
				{Tokens: 256, Q: []units.Seconds{2e-4, 4e-4, 6e-4}},
				{Tokens: 1024, Q: []units.Seconds{8e-4, 1.6e-3, 2.4e-3}},
			},
		},
	}
	tokens, u := 60, 0.0
	pinAllocs(t, "sampled latency lookup", 0, func() {
		tokens = (tokens + 97) % 1500
		u += 0.013
		if u > 1 {
			u -= 1
		}
		if _, ok := table.Sample("gemm", tokens, u); !ok {
			t.Fatal("gemm missing from table")
		}
	})
}

// TestMetricsPercentileInPlaceZeroAlloc pins the scheduler's percentile
// read (reused scratch + in-place select) at zero.
func TestMetricsPercentileInPlaceZeroAlloc(t *testing.T) {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64((i * 37) % 64)
	}
	scratch := make([]float64, 0, len(xs))
	pinAllocs(t, "metrics percentile", 0, func() {
		scratch = append(scratch[:0], xs...)
		_ = metrics.PercentileInPlace(scratch, 0.9)
	})
}

// TestPressureAdmitZeroAlloc pins the admission gate (without a
// timeline attached, its production default) at zero.
func TestPressureAdmitZeroAlloc(t *testing.T) {
	ctrl, _ := benchPressure()
	now := 0.0
	pinAllocs(t, "pressure admit+deficit", 0, func() {
		now += 1e-6
		_ = ctrl.Admit(units.Seconds(now), "r", 2048, 0)
		_ = ctrl.Deficit(2048)
	})
}

// TestQoSControllerZeroAlloc pins the whole SLO-feedback loop (without a
// timeline attached, its production default) at zero: the per-step
// observation, the window-boundary AIMD decision, the per-completion
// observation, and the cap/weight reads the engines issue every cycle.
func TestQoSControllerZeroAlloc(t *testing.T) {
	c := benchQoS()
	now := 0.0
	done := metrics.Request{
		ID: "r", Tenant: "premium", InputTokens: 1024, OutputTokens: 64,
		Arrival: 0, PrefillStart: 0, FirstToken: 0.02, Finish: 0.5,
	}
	pinAllocs(t, "qos observe+decide", 0, func() {
		now += 0.05 // five observations per 250ms window: decisions fire too
		c.ObserveStep(units.Seconds(now), 64, units.FromMs(25), 0.5)
		c.ObserveCompletion(units.Seconds(now), done, 0.5)
		c.AddPrefill(qos.Premium, 512)
		c.AddDecode(qos.Premium)
		_ = c.DecodeCap()
		_ = c.PrefillTokenBudget()
		_ = c.WeightOf(qos.Standard)
	})
}

// TestResilienceHotPathZeroAlloc pins the router's per-dispatch fast
// path (DESIGN.md §16) at zero: the bucket admission check, the pure
// breaker readiness read, the mutating breaker gate, and the hedge
// budget check all run once per dispatch under storm load.
func TestResilienceHotPathZeroAlloc(t *testing.T) {
	cfg := resilience.DefaultConfig()
	// A bucket that never rejects: exercise the admit path.
	bucket := resilience.NewBucket(resilience.BucketConfig{Rate: 1e9, Burst: 1e9})
	breaker := resilience.NewBreaker(cfg.Breaker)
	hedger := resilience.NewHedger(cfg.Hedge)
	now := units.Seconds(0)
	pinAllocs(t, "resilience bucket+breaker+hedge", 0, func() {
		now += 1e-4
		_ = bucket.Allow(now, 512)
		_ = breaker.Ready(now)
		if breaker.Allow(now) {
			breaker.ReportSuccess()
		}
		hedger.NoteDispatch()
		_ = hedger.CanHedge()
	})
}
