// Steady-state microbenchmarks for every //bullet:hotpath root. Unlike
// the table/figure benchmarks in bench_test.go these measure single
// inner-loop operations, so -benchmem allocs/op numbers here are the
// ground truth behind BENCH_hotpath.json and the allocation contract in
// DESIGN.md §13. Run with:
//
//	go test -bench BenchmarkHotPaths -benchmem -benchtime 100000x .
package repro

import (
	"testing"

	"repro/internal/estimator"
	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pressure"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/timeline"
	"repro/internal/units"
)

// BenchmarkHotPaths groups one steady-state sub-benchmark per annotated
// hot path so the whole contract is measured with a single -bench
// selector.
func BenchmarkHotPaths(b *testing.B) {
	b.Run("sim/post-step", benchSimPostStep)
	b.Run("sim/at-cancel", benchSimAtCancel)
	b.Run("sched/decide", benchSchedDecide)
	b.Run("sched/sort-waiting", benchSchedSortWaiting)
	b.Run("resource/rebuild", benchResourceRebuild)
	b.Run("resource/stream", benchResourceStream)
	b.Run("timeline/span-enabled", benchTimelineSpanEnabled)
	b.Run("timeline/span-disabled", benchTimelineSpanDisabled)
	b.Run("kvcache/alloc-free", benchKVAllocFree)
	b.Run("kvcache/extend", benchKVExtend)
	b.Run("pressure/admit", benchPressureAdmit)
	b.Run("metrics/percentile", benchMetricsPercentile)
	b.Run("qos/observe-decide", benchQoSObserve)
}

// benchSimPostStep measures the pooled schedule+fire cycle: one event
// posted and consumed per iteration, the event-loop steady state.
func benchSimPostStep(b *testing.B) {
	s := sim.New()
	fn := func() {}
	// Warm the arena so the measured loop sees only reuse.
	for i := 0; i < 256; i++ {
		s.PostAfter(1e-6, fn)
	}
	for s.Step() {
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PostAfter(1e-6, fn)
		s.Step()
	}
}

// benchSimAtCancel measures the handle-returning schedule path plus a
// cancel, the pattern gpusim uses for retargetable completions.
func benchSimAtCancel(b *testing.B) {
	s := sim.New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := s.After(1e-6, fn)
		s.Cancel(e)
		s.Step()
	}
}

func benchScheduler() (*sched.Scheduler, sched.State) {
	spec := gpusim.A100()
	cfg := model.Llama31_8B()
	est := estimator.New(cfg, spec, estimator.DefaultParams())
	res := resource.NewManager(gpusim.New(sim.New(), spec), 6)
	s := sched.New(est, metrics.SLOFor("azure-code"), sched.Config{
		TotalLayers: cfg.NumLayers, LayerGroup: 4,
		NumSMs: spec.NumSMs, Levels: res.Levels(),
	})
	st := sched.State{
		Now: 1.0,
		Prefill: sched.PrefillStatus{
			Active: true, Tokens: 4352, LayersDone: 16, StartTime: 0.98,
			Arrivals:    []sim.Time{0.97, 0.975, 0.98, 0.98},
			InputTokens: []int{512, 1024, 768, 2048},
		},
		Decode: sched.DecodeStatus{
			Batch: 8, AvgCtx: 900,
			Elapsed:   []units.Seconds{0.4, 0.3, 0.5, 0.2, 0.6, 0.1, 0.35, 0.45},
			Generated: []int{40, 30, 50, 20, 60, 10, 35, 45},
		},
		PrefillSMs: 48, DecodeSMs: 60,
	}
	for i := 0; i < 6; i++ {
		st.Waiting = append(st.Waiting, sched.WaitingReq{
			Arrival:     units.Seconds(1.0 + float64(i)*0.01),
			InputTokens: 512 + 128*i,
		})
	}
	return s, st
}

// benchSchedDecide measures one full Algorithm 1 evaluation — the
// water-filling re-rate that runs every scheduling cycle.
func benchSchedDecide(b *testing.B) {
	s, st := benchScheduler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Decide(st)
	}
}

// benchSchedSortWaiting measures the deadline reorder of a
// representative pending queue (Algorithm 1 line 7).
func benchSchedSortWaiting(b *testing.B) {
	s, st := benchScheduler()
	reqs := make([]sched.WaitingReq, len(st.Waiting))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(reqs, st.Waiting)
		s.SortWaiting(reqs)
	}
}

// benchResourceRebuild measures the SM-partition table rebuild that runs
// on every fault/recovery transition.
func benchResourceRebuild(b *testing.B) {
	g := gpusim.New(sim.New(), gpusim.A100())
	m := resource.NewManager(g, 6)
	full := smmask.Full(g.Spec.NumSMs)
	degraded := full
	for i := 0; i < 12; i++ {
		degraded.Clear(i * 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			m.Rebuild(degraded)
		} else {
			m.Rebuild(full)
		}
	}
}

// benchResourceStream measures the per-cycle stream lookup + quantize.
func benchResourceStream(b *testing.B) {
	g := gpusim.New(sim.New(), gpusim.A100())
	m := resource.NewManager(g, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Stream(resource.Prefill, 40+i%30)
		_ = m.Stream(resource.Decode, 70-i%30)
	}
}

// benchTimelineSpanEnabled measures one recorded span with typical args
// against a live bounded recorder.
func benchTimelineSpanEnabled(b *testing.B) {
	rec := timeline.New(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Span("prefill", "chunk", 0.001, 0.002,
			timeline.I("tokens", 512), timeline.F("sms", 48))
	}
}

// benchTimelineSpanDisabled measures the same call site with a nil
// recorder — the cost every hot loop pays when tracing is off, which the
// allocation contract pins at zero.
func benchTimelineSpanDisabled(b *testing.B) {
	var rec *timeline.Recorder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Span("prefill", "chunk", 0.001, 0.002,
			timeline.I("tokens", 512), timeline.F("sms", 48))
	}
}

// benchKVAllocFree measures the block pool's steady-state churn: one
// sequence allocated and freed per iteration.
func benchKVAllocFree(b *testing.B) {
	p := kvcache.NewPool(4096, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := p.Allocate("r", 2048, "decode")
		if err != nil {
			b.Fatal(err)
		}
		p.MustFree(s)
	}
}

// benchKVExtend measures the per-token-boundary block append of a live
// decode sequence.
func benchKVExtend(b *testing.B) {
	p := kvcache.NewPool(1<<20, 16)
	s, err := p.Allocate("r", 16, "decode")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Extend(16); err != nil {
			b.StopTimer()
			p.MustFree(s)
			s, err = p.Allocate("r", 16, "decode")
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
}

// benchPressure builds the admission controller the pressure paths
// share (no timeline attached, its production default).
func benchPressure() (*pressure.Controller, *kvcache.Pool) {
	spec := gpusim.A100()
	cfg := model.Llama31_8B()
	est := estimator.New(cfg, spec, estimator.DefaultParams())
	pool := kvcache.NewPool(4096, 16)
	return pressure.New(pool, est, cfg.KVBytesPerToken(), pressure.DefaultConfig()), pool
}

// benchPressureAdmit measures the admission gate check that guards every
// request entry under memory pressure.
func benchPressureAdmit(b *testing.B) {
	ctrl, _ := benchPressure()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ctrl.Admit(units.Seconds(float64(i)*1e-6), "r", 2048, 0)
		_ = ctrl.Deficit(2048)
	}
}

// benchMetricsPercentile measures the P90 read the scheduler issues at
// least twice per Decide, via the in-place variant it now uses.
func benchMetricsPercentile(b *testing.B) {
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = float64((i * 37) % 64)
	}
	scratch := make([]float64, 0, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = append(scratch[:0], xs...)
		_ = metrics.PercentileInPlace(scratch, 0.9)
	}
}

// benchQoS builds a controller in its production default shape: no
// timeline, engine-scale caps, default AIMD constants.
func benchQoS() *qos.Controller {
	return qos.New(metrics.SLOFor("azure-code"), qos.DefaultConfig(), 256, 16384)
}

// benchQoSObserve measures the per-decode-step feedback call — the
// controller's hottest entry point: one observation folded into the
// window accumulator, the boundary check, and (every ~250 simulated ms)
// one AIMD decision, plus the cap reads the engines issue per cycle.
func benchQoSObserve(b *testing.B) {
	c := benchQoS()
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1e-4
		c.ObserveStep(units.Seconds(now), 64, units.FromMs(25), 0.5)
		_ = c.DecodeCap()
		_ = c.PrefillTokenBudget()
	}
}
