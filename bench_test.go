// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark prints its table once (so `go test -bench=.`
// output doubles as the reproduction report) and then measures the
// regeneration cost.
//
// Run `go test -bench=. -benchmem` for everything, or select one, e.g.
// `go test -bench=Figure11 -benchtime=1x`. Under -short the end-to-end
// sweeps shrink to their quick configurations.
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/workload"
)

// wallTimer returns a monotonic wall-clock timer in seconds for the
// overhead measurements. Benchmarks run outside the deterministic
// internal tree, so reading the host clock is fine here.
func wallTimer() func() float64 {
	start := time.Now()
	return func() float64 { return time.Since(start).Seconds() }
}

// printOnce emits the rendered table on the first iteration only. It
// deliberately does NOT reset the timer: the regeneration work dominates
// the print by orders of magnitude, and resetting after a long first
// iteration would make the framework scale b.N up on the heavy sweeps.
func printOnce(b *testing.B, i int, render func() string) {
	if i == 0 {
		fmt.Println(render())
	}
}

// BenchmarkTable1WaveQuantization regenerates Table 1: theoretical SM
// idle ratios from wave quantization per operator and sequence length.
func BenchmarkTable1WaveQuantization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		printOnce(b, i, func() string { return experiments.RenderTable1(rows) })
	}
}

// BenchmarkFigure2PrefillBreakdown regenerates Fig. 2: per-operator
// execution time and compute/bandwidth utilization of isolated prefill.
func BenchmarkFigure2PrefillBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, sums := experiments.Figure2()
		printOnce(b, i, func() string { return experiments.RenderFigure2(rows, sums) })
	}
}

// BenchmarkFigure4ChunkedPrefill regenerates Fig. 4: per-chunk latency
// and utilization of a 16k-token chunked prefill at 1k/2k budgets.
func BenchmarkFigure4ChunkedPrefill(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4()
		printOnce(b, i, func() string { return experiments.RenderFigure4(r) })
	}
}

// BenchmarkFigure7PartialSMScaling regenerates Fig. 7: speedup of prefill
// and decode phases on partial SM allocations.
func BenchmarkFigure7PartialSMScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure7()
		printOnce(b, i, func() string { return experiments.RenderFigure7(rows) })
	}
}

// BenchmarkFigure10WorkloadCDF regenerates Fig. 10: the input/output
// length distributions of the three workloads.
func BenchmarkFigure10WorkloadCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure10(4000, 42)
		printOnce(b, i, func() string { return experiments.RenderFigure10(rows) })
	}
}

// BenchmarkFigure11EndToEnd regenerates Fig. 11: the full
// latency/throughput/SLO comparison of Bullet against vLLM-1024,
// SGLang-1024/2048 and NanoFlow across three workloads and rate sweeps.
func BenchmarkFigure11EndToEnd(b *testing.B) {
	cfg := experiments.DefaultE2EConfig()
	if testing.Short() {
		cfg = experiments.QuickE2EConfig()
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure11(cfg)
		printOnce(b, i, func() string { return experiments.RenderFigure11(rows) })
	}
}

// BenchmarkFigure12Timeline regenerates Fig. 12: Bullet's dynamic SM
// provisioning timeline vs SGLang-2048's hybrid-batch budget occupancy on
// a bursty Azure-Code trace.
func BenchmarkFigure12Timeline(b *testing.B) {
	n := 250
	if testing.Short() {
		n = 80
	}
	for i := 0; i < b.N; i++ {
		r := experiments.Figure12(3.5, n, 42, 48)
		printOnce(b, i, func() string { return experiments.RenderFigure12(r) })
	}
}

// BenchmarkFigure13FixedSMSensitivity regenerates Fig. 13: fixed
// prefill-SM quotas versus dynamic provisioning.
func BenchmarkFigure13FixedSMSensitivity(b *testing.B) {
	n := 250
	if testing.Short() {
		n = 80
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure13(workload.AzureCode, 5, n, 42)
		printOnce(b, i, func() string { return experiments.RenderFigure13(rows) })
	}
}

// BenchmarkFigure14Ablation regenerates Fig. 14: the Naive / w+Partition
// / w+Scheduler / full component ablation.
func BenchmarkFigure14Ablation(b *testing.B) {
	n := 250
	if testing.Short() {
		n = 80
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure14(experiments.DefaultFigure14Rates(), n, 42)
		printOnce(b, i, func() string { return experiments.RenderFigure14(rows) })
	}
}

// BenchmarkFigure15EstimatorAccuracy regenerates Fig. 15: offline fit
// quality and online SLO-compliance classification accuracy of the
// performance estimator.
func BenchmarkFigure15EstimatorAccuracy(b *testing.B) {
	n := 200
	if testing.Short() {
		n = 60
	}
	for i := 0; i < b.N; i++ {
		r := experiments.Figure15(n, 42)
		printOnce(b, i, func() string { return experiments.RenderFigure15(r) })
	}
}

// BenchmarkTable3Overheads regenerates Table 3: control-plane CPU
// overheads (metadata, prediction, decision, re-configuration).
func BenchmarkTable3Overheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(2000, wallTimer())
		printOnce(b, i, func() string { return experiments.RenderTable3(rows) })
	}
}

// BenchmarkTimelineOverhead pins the observability acceptance bar: a
// serving run with tracing disabled (the nil-recorder fast path) must
// cost the same as before the timeline layer existed, and the enabled
// sub-benchmark quantifies what full recording adds. Compare the two
// with `go test -bench TimelineOverhead -benchmem`.
func BenchmarkTimelineOverhead(b *testing.B) {
	const n = 60
	b.Run("disabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.RunOne("bullet", workload.AzureCode, 5, n, 3)
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			experiments.RunOneTraced("bullet", workload.AzureCode, 5, n, 3, 0)
		}
	})
}

// BenchmarkExtensionKnobs sweeps Bullet's own design knobs (layer-group
// size, SM granularity, metadata latency, estimator configuration,
// arrival burstiness) — the ablation benches DESIGN.md calls out beyond
// the paper's figures.
func BenchmarkExtensionKnobs(b *testing.B) {
	n := 150
	if testing.Short() {
		n = 60
	}
	for i := 0; i < b.N; i++ {
		lg := experiments.AblationLayerGroup(workload.AzureCode, 4, n, 42)
		st := experiments.AblationSMStep(workload.AzureCode, 4, n, 42)
		ml := experiments.AblationMetadataLatency(workload.AzureCode, 4, n, 42)
		es := experiments.AblationEstimator(workload.AzureCode, 4, n, 42)
		cv := experiments.AblationBurstiness(workload.AzureCode, 4, n, 42)
		printOnce(b, i, func() string {
			return experiments.RenderKnobRows("layer-group sweep", lg) + "\n" +
				experiments.RenderKnobRows("SM-step sweep", st) + "\n" +
				experiments.RenderKnobRows("metadata-latency sweep", ml) + "\n" +
				experiments.RenderKnobRows("estimator sweep", es) + "\n" +
				experiments.RenderKnobRows("burstiness sweep", cv)
		})
	}
}

// BenchmarkExtensionDisagg compares Bullet against DistServe-style
// prefill/decode disaggregation (2 GPUs, NVLink/PCIe).
func BenchmarkExtensionDisagg(b *testing.B) {
	n := 150
	if testing.Short() {
		n = 60
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtDisagg(workload.AzureCode, []float64{3, 4, 5}, n, 42)
		printOnce(b, i, func() string { return experiments.RenderExtDisagg(rows) })
	}
}

// BenchmarkExtensionCrossDevice checks the orchestration generalizes from
// the A100 profile to the H100 profile.
func BenchmarkExtensionCrossDevice(b *testing.B) {
	n := 150
	if testing.Short() {
		n = 60
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtCrossDevice(workload.ShareGPT, 12, n, 42)
		printOnce(b, i, func() string { return experiments.RenderExtCrossDevice(rows) })
	}
}

// BenchmarkExtensionPrefixCache studies RadixAttention-style shared-prefix
// reuse (an extension beyond the paper).
func BenchmarkExtensionPrefixCache(b *testing.B) {
	n := 150
	if testing.Short() {
		n = 60
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtPrefixCache(workload.AzureCode, 4, n, 42, []float64{0, 0.5, 0.9})
		printOnce(b, i, func() string { return experiments.RenderExtPrefixCache(rows) })
	}
}

// BenchmarkExtensionCluster studies horizontal scale-out of Bullet
// replicas behind a least-loaded router.
func BenchmarkExtensionCluster(b *testing.B) {
	n := 150
	if testing.Short() {
		n = 60
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtCluster(workload.AzureCode, 9, n, 42)
		printOnce(b, i, func() string { return experiments.RenderExtCluster(rows) })
	}
}

// BenchmarkClusterSweepParallelism pins the forkjoin speedup claim: the
// replica sweep (cluster sizes 1/2/4) run serially (workers=1) versus
// through the harness default (GOMAXPROCS-bounded workers). By the
// concurrency contract the two produce byte-identical tables — the gate
// in ci.sh diffs them — so the only thing allowed to differ is the
// wall-clock this benchmark measures. Each sub-benchmark reports the
// simulated-request completion rate; BENCH_cluster_sweep.json records a
// measured run.
func BenchmarkClusterSweepParallelism(b *testing.B) {
	n := 150
	if testing.Short() {
		n = 60
	}
	const sweepSizes = 3 // cluster sizes 1, 2, 4
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				experiments.ExtClusterN(workload.AzureCode, 9, n, 42, workers)
			}
			b.ReportMetric(float64(sweepSizes*n*b.N)/b.Elapsed().Seconds(), "req/s")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0))
}

// BenchmarkExtensionTensorParallel studies Megatron tensor parallelism
// under Bullet (sharded kernels + NVLink allreduces).
func BenchmarkExtensionTensorParallel(b *testing.B) {
	n := 150
	if testing.Short() {
		n = 60
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtTensorParallel(workload.AzureCode, 4, n, 42)
		printOnce(b, i, func() string { return experiments.RenderExtTensorParallel(rows) })
	}
}

// BenchmarkExtensionFaults studies resilience under injected SM
// degradation: dynamic Bullet vs MuxServe-style static splits on one
// shared trace and fault schedule.
func BenchmarkExtensionFaults(b *testing.B) {
	n := 150
	if testing.Short() {
		n = 60
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtFaults(workload.AzureCode, 4, n, 42,
			[]float64{0, 0.1, 0.2}, experiments.FaultSystems)
		printOnce(b, i, func() string { return experiments.RenderExtFaults(rows) })
	}
}

// BenchmarkExtensionFidelity studies the latency-model sensitivity of
// Algorithm 1: the analytic, sampled, and L2-hierarchy backends serve
// one shared trace and the divergence of orchestration decisions and
// estimator error are measured against the analytic reference.
func BenchmarkExtensionFidelity(b *testing.B) {
	n := 240
	if testing.Short() {
		n = 120
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtFidelity(workload.AzureCode, 5, n, 42)
		crows := experiments.ExtFidelityCluster(workload.AzureCode, 8, n, 42, 0)
		printOnce(b, i, func() string { return experiments.RenderExtFidelity(rows, crows) })
	}
}

// BenchmarkExtensionPressure studies graceful degradation under KV
// memory pressure: the admission gate and decode preemption subsystem
// vs the no-preemption baseline across an overload sweep with injected
// KV-capacity shrinks.
func BenchmarkExtensionPressure(b *testing.B) {
	n := 200
	if testing.Short() {
		n = 80
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtPressure(workload.AzureCode, []float64{4, 8, 12}, n, 42, true)
		printOnce(b, i, func() string { return experiments.RenderExtPressure(rows) })
	}
}

// BenchmarkExtensionChaos studies router-tier resilience under a
// correlated link-failure storm: circuit breakers, dispatch timeouts,
// hedged re-dispatch, and per-class token buckets vs the naive router
// over the same bit-identical chaos schedule.
func BenchmarkExtensionChaos(b *testing.B) {
	n := 240
	if testing.Short() {
		n = 120
	}
	for i := 0; i < b.N; i++ {
		rows := experiments.ExtChaos(workload.AzureCode, 10, n, 7, 0)
		printOnce(b, i, func() string { return experiments.RenderExtChaos(rows) })
	}
}
