// Package bullet is the public API of this reproduction of "Bullet:
// Boosting GPU Utilization for LLM Serving via Dynamic Spatial-Temporal
// Orchestration" (ASPLOS'26).
//
// A Server wraps one serving system — Bullet itself, one of its ablation
// variants, or a chunked-prefill baseline — running over a simulated GPU
// (see DESIGN.md for the hardware substitution). Feed it a request trace
// and it returns per-request latencies and aggregate serving metrics:
//
//	srv, err := bullet.New(bullet.Config{System: "bullet", Dataset: "sharegpt"})
//	trace, err := bullet.GenerateTrace("sharegpt", 10 /*req/s*/, 500, 42)
//	result, err := srv.Run(trace)
//	fmt.Println(result.MeanTTFT, result.Throughput, result.SLOAttainment)
package bullet

import (
	"fmt"
	"sort"

	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

// Systems lists the serving systems a Server can run, in the paper's
// evaluation order: Bullet, the chunked-prefill baselines, and NanoFlow.
// Ablation variants ("bullet-naive", "bullet-partition",
// "bullet-scheduler") and static splits ("bullet-sm84") are also
// accepted.
func Systems() []string {
	return append([]string(nil), experiments.SystemNames...)
}

// Datasets lists the built-in workload generators.
func Datasets() []string {
	out := make([]string, len(workload.Datasets))
	for i, d := range workload.Datasets {
		out[i] = d.Name
	}
	return out
}

// Models lists the built-in model presets.
func Models() []string {
	presets := model.Presets()
	out := make([]string, 0, len(presets))
	for name := range presets {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Config selects what to serve and on what.
type Config struct {
	// System is the serving system name; default "bullet".
	System string
	// Model is the model preset; default "llama-3.1-8b".
	Model string
	// Dataset picks the SLO targets (Table 2); default "sharegpt".
	Dataset string
	// TPDegree shards the model across this many GPUs with Megatron
	// tensor parallelism (0/1 = single GPU). Ranks are symmetric, so
	// the simulation models rank 0.
	TPDegree int
	// Backend selects the per-kernel latency model for Bullet variants:
	// "" or "analytic" (default), "sampled" (profile-driven draws from a
	// self-calibrated table), or "hierarchy" (analytic plus L2
	// cache-reuse interference). See DESIGN.md §15. Baselines have no
	// pluggable latency model, so a non-default Backend on a baseline
	// system is a configuration error.
	Backend string
	// BackendSeed seeds the sampled backend's deterministic draw stream
	// (0 means 1).
	BackendSeed int64
}

// Request is one serving request.
type Request struct {
	ID           string
	Arrival      float64 // seconds since trace start
	InputTokens  int
	OutputTokens int
}

// RequestMetrics is one completed request's latencies.
type RequestMetrics struct {
	ID         string
	TTFT       float64 // seconds, queueing included
	NormTTFTMs float64 // ms per input token
	TPOTMs     float64
	E2E        float64
	QueueDelay float64
	MetSLO     bool
}

// Result aggregates a serving run.
type Result struct {
	System        string
	Requests      int
	MeanTTFT      float64
	P90TTFT       float64
	P90NormTTFT   float64
	MeanTPOTMs    float64
	P90TPOTMs     float64
	Throughput    float64 // requests/second
	TokenThru     float64 // output tokens/second
	SLOAttainment float64
	Makespan      float64
	PerRequest    []RequestMetrics
}

// Server runs one system configuration. Each Run uses a fresh simulated
// environment, so a Server is reusable and runs are independent.
type Server struct {
	cfg     Config
	modelC  model.Config
	dataset string
}

// New validates a configuration and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.System == "" {
		cfg.System = "bullet"
	}
	if cfg.Model == "" {
		cfg.Model = "llama-3.1-8b"
	}
	if cfg.Dataset == "" {
		cfg.Dataset = "sharegpt"
	}
	mc, ok := model.Presets()[cfg.Model]
	if !ok {
		return nil, fmt.Errorf("bullet: unknown model %q (have %v)", cfg.Model, Models())
	}
	if cfg.TPDegree > 1 {
		mc = mc.TP(cfg.TPDegree)
		if err := mc.Validate(); err != nil {
			return nil, fmt.Errorf("bullet: %w", err)
		}
	}
	if _, err := workload.ByName(cfg.Dataset); err != nil {
		return nil, fmt.Errorf("bullet: unknown dataset %q (have %v)", cfg.Dataset, Datasets())
	}
	switch cfg.Backend {
	case "", gpusim.BackendAnalytic, gpusim.BackendSampled, gpusim.BackendHierarchy:
	default:
		return nil, fmt.Errorf("bullet: unknown backend %q (have analytic, sampled, hierarchy)", cfg.Backend)
	}
	// Validate the system name eagerly by building a throwaway instance.
	if err := validateSystem(cfg, mc, cfg.Dataset); err != nil {
		return nil, err
	}
	return &Server{cfg: cfg, modelC: mc, dataset: cfg.Dataset}, nil
}

func validateSystem(cfg Config, mc model.Config, dataset string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("bullet: %v", r)
		}
	}()
	env := serving.NewEnv(gpusim.A100(), mc, dataset)
	_, err = newSystem(cfg, env)
	return err
}

// newSystem builds the configured system on an environment, routing
// through the backend-aware constructor when a latency backend override
// is set.
func newSystem(cfg Config, env *serving.Env) (serving.System, error) {
	if cfg.Backend == "" || cfg.Backend == gpusim.BackendAnalytic {
		return experiments.NewSystem(cfg.System, env), nil
	}
	sys, err := experiments.NewSystemWithBackend(cfg.System, env, cfg.Backend, cfg.BackendSeed)
	if err != nil {
		return nil, fmt.Errorf("bullet: %w", err)
	}
	return sys, nil
}

// GenerateTrace produces a Poisson trace from a built-in dataset.
func GenerateTrace(dataset string, rate float64, n int, seed int64) ([]Request, error) {
	d, err := workload.ByName(dataset)
	if err != nil {
		return nil, err
	}
	if rate <= 0 || n <= 0 {
		return nil, fmt.Errorf("bullet: invalid trace rate=%v n=%d", rate, n)
	}
	tr := workload.Generate(d, rate, n, seed)
	out := make([]Request, len(tr.Requests))
	for i, r := range tr.Requests {
		out[i] = Request{ID: r.ID, Arrival: r.Arrival.Float(), InputTokens: r.InputTokens, OutputTokens: r.OutputTokens}
	}
	return out, nil
}

// Compare runs several systems on the same trace and returns results
// keyed by system name — the apples-to-apples comparison behind Fig. 11.
func Compare(systems []string, dataset string, trace []Request) (map[string]Result, error) {
	out := make(map[string]Result, len(systems))
	for _, sys := range systems {
		srv, err := New(Config{System: sys, Dataset: dataset})
		if err != nil {
			return nil, err
		}
		res, err := srv.Run(trace)
		if err != nil {
			return nil, fmt.Errorf("bullet: system %s: %w", sys, err)
		}
		out[sys] = res
	}
	return out, nil
}

// Run serves a trace to completion and returns the metrics. Requests must
// arrive in nondecreasing order with positive token counts.
func (s *Server) Run(reqs []Request) (Result, error) {
	if len(reqs) == 0 {
		return Result{}, fmt.Errorf("bullet: empty trace")
	}
	prev := 0.0
	wl := &workload.Trace{Dataset: s.dataset, Rate: 1}
	for i, r := range reqs {
		if r.Arrival < prev {
			return Result{}, fmt.Errorf("bullet: request %d arrives at %v before %v", i, r.Arrival, prev)
		}
		if r.InputTokens <= 0 || r.OutputTokens <= 0 {
			return Result{}, fmt.Errorf("bullet: request %d has non-positive tokens", i)
		}
		prev = r.Arrival
		id := r.ID
		if id == "" {
			id = fmt.Sprintf("req-%d", i)
		}
		wl.Requests = append(wl.Requests, workload.Request{
			ID: id, Arrival: units.Seconds(r.Arrival), InputTokens: r.InputTokens,
			OutputTokens: r.OutputTokens, Dataset: s.dataset,
		})
	}
	if n := len(reqs); n > 1 {
		wl.Rate = float64(n) / (reqs[n-1].Arrival + 1e-9)
	}
	env := serving.NewEnv(gpusim.A100(), s.modelC, s.dataset)
	sys, err := newSystem(s.cfg, env)
	if err != nil {
		return Result{}, err
	}
	res := env.Run(sys, wl)
	return convert(res, env.SLO), nil
}

func convert(res serving.Result, slo metrics.SLO) Result {
	out := Result{
		System:        res.System,
		Requests:      res.Summary.Requests,
		MeanTTFT:      res.Summary.MeanTTFT.Float(),
		P90TTFT:       res.Summary.P90TTFT.Float(),
		P90NormTTFT:   res.Summary.P90NormTTFT,
		MeanTPOTMs:    res.Summary.MeanTPOTMs,
		P90TPOTMs:     res.Summary.P90TPOTMs,
		Throughput:    res.Summary.Throughput,
		TokenThru:     res.Summary.TokenThroughput,
		SLOAttainment: res.Summary.SLOAttainment,
		Makespan:      res.Makespan.Float(),
	}
	for _, r := range res.Requests {
		out.PerRequest = append(out.PerRequest, RequestMetrics{
			ID:         r.ID,
			TTFT:       r.TTFT().Float(),
			NormTTFTMs: r.NormTTFTMs(),
			TPOTMs:     r.TPOTMs(),
			E2E:        r.E2E().Float(),
			QueueDelay: r.QueueDelay().Float(),
			MetSLO:     r.MeetsSLO(slo),
		})
	}
	return out
}
