package bullet

import (
	"strings"
	"testing"
)

func TestNewDefaults(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.cfg.System != "bullet" || srv.cfg.Model != "llama-3.1-8b" {
		t.Fatalf("defaults = %+v", srv.cfg)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{System: "nope"},
		{Model: "gpt-17"},
		{Dataset: "imagenet"},
	}
	for _, c := range cases {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
}

func TestGenerateTrace(t *testing.T) {
	reqs, err := GenerateTrace("sharegpt", 5, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 50 {
		t.Fatalf("len = %d", len(reqs))
	}
	prev := 0.0
	for _, r := range reqs {
		if r.Arrival < prev || r.InputTokens <= 0 || r.OutputTokens <= 0 {
			t.Fatalf("bad request %+v", r)
		}
		prev = r.Arrival
	}
	if _, err := GenerateTrace("nope", 5, 50, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := GenerateTrace("sharegpt", -1, 50, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestEndToEndRun(t *testing.T) {
	srv, err := New(Config{System: "bullet", Dataset: "sharegpt"})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := GenerateTrace("sharegpt", 4, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 30 || len(res.PerRequest) != 30 {
		t.Fatalf("requests = %d/%d", res.Requests, len(res.PerRequest))
	}
	if res.MeanTTFT <= 0 || res.Throughput <= 0 {
		t.Fatalf("degenerate result %+v", res)
	}
	for _, r := range res.PerRequest {
		if r.TTFT <= 0 || r.E2E < r.TTFT {
			t.Fatalf("bad per-request metrics %+v", r)
		}
	}
}

func TestRunBaselines(t *testing.T) {
	trace, _ := GenerateTrace("azure-code", 2, 15, 3)
	for _, sys := range Systems() {
		srv, err := New(Config{System: sys, Dataset: "azure-code"})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		res, err := srv.Run(trace)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Requests != 15 {
			t.Fatalf("%s completed %d/15", sys, res.Requests)
		}
	}
}

func TestServerReusable(t *testing.T) {
	srv, _ := New(Config{})
	trace, _ := GenerateTrace("sharegpt", 3, 10, 1)
	a, err := srv.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanTTFT != b.MeanTTFT || a.Makespan != b.Makespan {
		t.Fatal("re-running the same trace gave different results")
	}
}

func TestRunRejectsBadTraces(t *testing.T) {
	srv, _ := New(Config{})
	if _, err := srv.Run(nil); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := srv.Run([]Request{
		{Arrival: 2, InputTokens: 10, OutputTokens: 2},
		{Arrival: 1, InputTokens: 10, OutputTokens: 2},
	}); err == nil || !strings.Contains(err.Error(), "arrives") {
		t.Fatalf("out-of-order trace accepted: %v", err)
	}
	if _, err := srv.Run([]Request{{Arrival: 1, InputTokens: 0, OutputTokens: 2}}); err == nil {
		t.Fatal("zero-token request accepted")
	}
}

func TestListings(t *testing.T) {
	if len(Systems()) < 5 || len(Datasets()) != 3 || len(Models()) < 4 {
		t.Fatalf("listings: %v %v %v", Systems(), Datasets(), Models())
	}
}

func TestCompare(t *testing.T) {
	trace, _ := GenerateTrace("sharegpt", 4, 12, 1)
	out, err := Compare([]string{"bullet", "sglang-1024"}, "sharegpt", trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out["bullet"].Requests != 12 || out["sglang-1024"].Requests != 12 {
		t.Fatalf("compare = %v", out)
	}
	if _, err := Compare([]string{"nope"}, "sharegpt", trace); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestAlternativeModelPresets(t *testing.T) {
	for _, m := range []string{"llama-3.2-3b", "mistral-7b"} {
		srv, err := New(Config{Model: m, Dataset: "sharegpt"})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		trace, _ := GenerateTrace("sharegpt", 3, 8, 1)
		res, err := srv.Run(trace)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Requests != 8 {
			t.Fatalf("%s completed %d/8", m, res.Requests)
		}
	}
}

func TestStaticVariantAccepted(t *testing.T) {
	srv, err := New(Config{System: "bullet-sm84"})
	if err != nil {
		t.Fatal(err)
	}
	trace, _ := GenerateTrace("sharegpt", 2, 8, 1)
	res, err := srv.Run(trace)
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "bullet-sm84" {
		t.Fatalf("system = %s", res.System)
	}
}
