#!/usr/bin/env bash
# ci.sh — the full verification gate, in dependency order: formatting,
# vet, build, tests, race detector, a short fuzz pass over the SM-mask
# set algebra, and the bulletlint determinism contract (see DESIGN.md,
# "Determinism contract"). Every step must pass; the script stops at the
# first failure.
#
# Usage: ./ci.sh            (or: make ci)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "gofmt"
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "go build ./..."
go build ./...

step "go test ./..."
go test ./...

step "go test -race ./..."
go test -race ./...

step "fuzz: smmask set algebra (5s)"
go test -run='^$' -fuzz=Fuzz -fuzztime=5s ./internal/smmask

step "bulletlint ./..."
go run ./cmd/bulletlint ./...

step "ci: all gates passed"
