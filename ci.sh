#!/usr/bin/env bash
# ci.sh — the full verification gate, in dependency order: formatting,
# vet, build, tests, race detector, the serial-vs-parallel concurrency
# equivalence gate, the hot-path allocation contract (AllocsPerRun pins
# + hotalloc lint), a short fuzz pass over the SM-mask set algebra, and
# the bulletlint determinism contract (see DESIGN.md, "Determinism
# contract", "Concurrency contract", and "Allocation contract"). Every
# step must pass; the script stops at the first failure.
#
# Usage: ./ci.sh            (or: make ci)
set -euo pipefail
cd "$(dirname "$0")"

step() { printf '\n=== %s ===\n' "$*"; }

step "gofmt"
unformatted=$(gofmt -l . | grep -v '^internal/lint/testdata/' || true)
if [[ -n "$unformatted" ]]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

step "go vet ./..."
go vet ./...

step "go build ./..."
go build ./...

step "go test -shuffle=on ./..."
go test -shuffle=on ./...

step "go test -race -shuffle=on ./..."
go test -race -shuffle=on ./...

step "determinism smoke (-race, double run): faults + pressure + chaos + timeline traces"
# Same seed + same fault schedule must replay bit-identically — the
# resilience paths (SM degradation, watchdog aborts, replica failover,
# memory-pressure preemption/recovery, the router-tier chaos storm) and
# the exported timeline traces are the newest determinism surface, so
# pin them explicitly. The fault, pressure, and chaos tests diff full
# sweep tables; the golden test diffs the quickstart scenario's Chrome
# JSON byte for byte.
go test -race -count=1 \
    -run 'TestFaultRunDeterminism|TestFaultyRunBitIdentical|TestClusterFaultDeterminism|TestTimelineGoldenDeterminism|TestPressureRunDeterminism|TestQoSRunDeterminism|TestExtFidelityDeterminism|TestFidelityClusterSerialParallel|TestSampledBackendReplay|TestExtChaosDeterminism|TestChaosSerialParallelIdentical|TestGenerateChaosReplay' \
    ./internal/experiments ./internal/core ./internal/cluster ./internal/gpusim ./internal/faults

step "determinism smoke: bulletsim -pressure double run, byte diff"
# The user-facing overload sweep must render byte-identically across two
# same-seed processes — this is the acceptance surface for the pressure
# subsystem, so diff the actual CLI output rather than trusting the
# in-process tests alone.
press_a=$(go run ./cmd/bulletsim -pressure -dataset azure-code -rate 4 -n 60 -seed 11)
press_b=$(go run ./cmd/bulletsim -pressure -dataset azure-code -rate 4 -n 60 -seed 11)
if [[ "$press_a" != "$press_b" ]]; then
    echo "bulletsim -pressure: two same-seed runs diverged" >&2
    diff <(echo "$press_a") <(echo "$press_b") >&2 || true
    exit 1
fi

step "determinism smoke: bulletsim -qos double run, byte diff"
# The multi-tenant QoS sweep (per-tenant tables + the controller's cluster
# arm) is the acceptance surface for the SLO-feedback subsystem: two
# same-seed processes must render byte-identical output.
qos_a=$(go run ./cmd/bulletsim -qos -dataset azure-code -rate 10 -n 120 -seed 11 -workers 1)
qos_b=$(go run ./cmd/bulletsim -qos -dataset azure-code -rate 10 -n 120 -seed 11 -workers 1)
if [[ "$qos_a" != "$qos_b" ]]; then
    echo "bulletsim -qos: two same-seed runs diverged" >&2
    diff <(echo "$qos_a") <(echo "$qos_b") >&2 || true
    exit 1
fi

step "determinism smoke: bulletsim -chaos double run, byte diff"
# The router-resilience storm study is the acceptance surface for the
# chaos subsystem: the seeded Markov storm, the breaker state walks,
# hedged re-dispatch, and the goodput accounting must render
# byte-identical tables across two same-seed processes.
chaos_a=$(go run ./cmd/bulletsim -chaos -dataset azure-code -rate 10 -n 120 -seed 7 -workers 1)
chaos_b=$(go run ./cmd/bulletsim -chaos -dataset azure-code -rate 10 -n 120 -seed 7 -workers 1)
if [[ "$chaos_a" != "$chaos_b" ]]; then
    echo "bulletsim -chaos: two same-seed runs diverged" >&2
    diff <(echo "$chaos_a") <(echo "$chaos_b") >&2 || true
    exit 1
fi

step "determinism smoke: bulletsim -backend sampled double run, byte diff"
# The sampled latency backend draws from a seeded splitmix stream: two
# same-seed processes must render byte-identical output, or the backend
# is leaking nondeterminism into the schedule (DESIGN.md §15).
samp_a=$(go run ./cmd/bulletsim -backend sampled -dataset azure-code -rate 4 -n 60 -seed 11)
samp_b=$(go run ./cmd/bulletsim -backend sampled -dataset azure-code -rate 4 -n 60 -seed 11)
if [[ "$samp_a" != "$samp_b" ]]; then
    echo "bulletsim -backend sampled: two same-seed runs diverged" >&2
    diff <(echo "$samp_a") <(echo "$samp_b") >&2 || true
    exit 1
fi

step "concurrency contract: -race smoke over forkjoin + cluster"
# The harness and its proving ground, run standalone under the race
# detector (on top of the whole-module -race pass above) so a contract
# regression names the guilty package directly.
go test -race -count=1 ./internal/forkjoin ./internal/cluster

step "concurrency contract: serial vs parallel cluster sweep, byte diff"
# Do(n, 1, fn) and Do(n, w, fn) must be byte-identical (DESIGN.md,
# "Concurrency contract"). Run the user-facing replica sweep once pinned
# to a single worker on one core, and once with four workers on four
# cores under -race so the Go scheduler is maximally perturbed, then
# diff the rendered tables byte for byte.
sweep_a=$(GOMAXPROCS=1 go run ./cmd/bulletsim -cluster-sweep -workers 1 -dataset azure-code -rate 8 -n 80 -seed 7)
sweep_b=$(GOMAXPROCS=4 go run -race ./cmd/bulletsim -cluster-sweep -workers 4 -dataset azure-code -rate 8 -n 80 -seed 7)
if [[ "$sweep_a" != "$sweep_b" ]]; then
    echo "bulletsim -cluster-sweep: serial and parallel runs diverged" >&2
    diff <(echo "$sweep_a") <(echo "$sweep_b") >&2 || true
    exit 1
fi

step "concurrency contract: serial vs parallel qos cluster arm, byte diff"
# Same gate for the QoS stack: per-replica controllers decide at
# virtual-time window boundaries, so the 2-replica qos cluster arm must
# be byte-identical with one worker on one core and four workers on four
# cores under -race.
qos_ser=$(GOMAXPROCS=1 go run ./cmd/bulletsim -qos -workers 1 -dataset azure-code -rate 10 -n 120 -seed 11)
qos_par=$(GOMAXPROCS=4 go run -race ./cmd/bulletsim -qos -workers 4 -dataset azure-code -rate 10 -n 120 -seed 11)
if [[ "$qos_ser" != "$qos_par" ]]; then
    echo "bulletsim -qos: serial and parallel runs diverged" >&2
    diff <(echo "$qos_ser") <(echo "$qos_par") >&2 || true
    exit 1
fi

step "concurrency contract: serial vs parallel chaos storm, byte diff"
# The router-resilience layer mutates breaker/bucket/hedge state only in
# outer-sim handlers, so the storm study must be byte-identical with one
# worker on one core and four workers on four cores under -race
# (DESIGN.md §16).
chaos_ser=$(GOMAXPROCS=1 go run ./cmd/bulletsim -chaos -workers 1 -dataset azure-code -rate 10 -n 120 -seed 7)
chaos_par=$(GOMAXPROCS=4 go run -race ./cmd/bulletsim -chaos -workers 4 -dataset azure-code -rate 10 -n 120 -seed 7)
if [[ "$chaos_ser" != "$chaos_par" ]]; then
    echo "bulletsim -chaos: serial and parallel runs diverged" >&2
    diff <(echo "$chaos_ser") <(echo "$chaos_par") >&2 || true
    exit 1
fi

step "coverage gate (internal/timeline >= 90%, internal/pressure >= 90%, internal/qos >= 90%, internal/calib >= 90%, internal/resilience >= 90%, module mean >= 86%)"
# Per-package statement coverage; packages without tests or statements
# are excluded from the mean. The floors were recorded at the merge that
# introduced the gate — raise them when coverage rises, never lower them
# to make a failure go away.
go test -cover ./... | awk '
    { print }
    $1 == "ok" && /coverage: [0-9.]+% of statements/ {
        pct = $0
        sub(/.*coverage: /, "", pct); sub(/% of statements.*/, "", pct)
        sum += pct; n++
        if ($2 == "repro/internal/timeline" && pct + 0 < 90) {
            printf "coverage gate: internal/timeline at %.1f%%, floor is 90%%\n", pct > "/dev/stderr"
            fail = 1
        }
        if ($2 == "repro/internal/pressure" && pct + 0 < 90) {
            printf "coverage gate: internal/pressure at %.1f%%, floor is 90%%\n", pct > "/dev/stderr"
            fail = 1
        }
        if ($2 == "repro/internal/qos" && pct + 0 < 90) {
            printf "coverage gate: internal/qos at %.1f%%, floor is 90%%\n", pct > "/dev/stderr"
            fail = 1
        }
        if ($2 == "repro/internal/calib" && pct + 0 < 90) {
            printf "coverage gate: internal/calib at %.1f%%, floor is 90%%\n", pct > "/dev/stderr"
            fail = 1
        }
        if ($2 == "repro/internal/resilience" && pct + 0 < 90) {
            printf "coverage gate: internal/resilience at %.1f%%, floor is 90%%\n", pct > "/dev/stderr"
            fail = 1
        }
    }
    END {
        if (n == 0) { print "coverage gate: no coverage lines parsed" > "/dev/stderr"; exit 1 }
        mean = sum / n
        printf "coverage gate: mean %.1f%% over %d packages\n", mean, n
        if (mean < 86.0) {
            printf "coverage gate: module mean %.1f%% below the 86.0%% floor\n", mean > "/dev/stderr"
            fail = 1
        }
        exit fail
    }
'

step "coverage gate: latency-backend files >= 90%"
# The pluggable backend seam (DESIGN.md §15) is finer-grained than one
# package, so gate the three backend files from the statement-level
# profile directly.
backend_cover=$(mktemp)
go test -coverprofile="$backend_cover" ./internal/gpusim > /dev/null
awk -F: '
    /backend\.go|sampled\.go|hierarchy\.go/ {
        split($2, a, " ")
        f = $1; sub(/.*\//, "", f)
        tot[f] += a[2]; if (a[3] > 0) cov[f] += a[2]
    }
    END {
        if (length(tot) != 3) {
            print "coverage gate: expected 3 backend files in profile" > "/dev/stderr"
            exit 1
        }
        for (f in tot) {
            pct = 100 * cov[f] / tot[f]
            printf "coverage gate: %s %.1f%%\n", f, pct
            if (pct < 90) {
                printf "coverage gate: %s below the 90%% floor\n", f > "/dev/stderr"
                fail = 1
            }
        }
        exit fail
    }
' "$backend_cover"
rm -f "$backend_cover"

step "coverage gate: cluster router-resilience file >= 90%"
# The router-resilience layer (DESIGN.md §16) lives in one file of the
# cluster package, so gate it from the statement-level profile directly.
res_cover=$(mktemp)
go test -coverprofile="$res_cover" ./internal/cluster > /dev/null
awk -F: '
    /cluster\/resilience\.go/ {
        split($2, a, " ")
        tot += a[2]; if (a[3] > 0) cov += a[2]
    }
    END {
        if (tot == 0) {
            print "coverage gate: cluster/resilience.go missing from profile" > "/dev/stderr"
            exit 1
        }
        pct = 100 * cov / tot
        printf "coverage gate: cluster/resilience.go %.1f%%\n", pct
        if (pct < 90) {
            printf "coverage gate: cluster/resilience.go below the 90%% floor\n" > "/dev/stderr"
            exit 1
        }
    }
' "$res_cover"
rm -f "$res_cover"

step "allocation contract: steady-state AllocsPerRun pins"
# The hot-path allocation contract (DESIGN.md, "Allocation contract"):
# the sim event push/pop cycle, disabled-timeline call sites, the
# water-filling re-rate, partition rebuilds, pressure gates, and
# in-place percentiles must allocate nothing at steady state; the After
# handle and per-request KV sequence header are pinned at exactly one.
# Run the pins explicitly so an allocation regression fails CI by name
# even if the broader test pass is trimmed.
go test -count=1 -run 'ZeroAlloc|OneAlloc|SteadyState' .

step "allocation contract: bulletlint -rules hotalloc smoke"
# The analyzer must hold the whole module clean on its own (the full
# bulletlint pass below also covers it; this names the rule directly).
go run ./cmd/bulletlint -rules hotalloc ./...

step "fuzz: smmask set algebra (5s)"
go test -run='^$' -fuzz=Fuzz -fuzztime=5s ./internal/smmask

step "fuzz: calibration trace parser (5s)"
go test -run='^$' -fuzz=FuzzCalibParse -fuzztime=5s ./internal/calib

step "bulletlint ./..."
go run ./cmd/bulletlint ./...

step "bulletlint -json smoke test"
# The tree is clean, so -json on the module must emit no *reported*
# findings — suppressed ones ("suppressed":true) are expected output, the
# audit trail of the tree's //lint:ignore directives. Then verify the
# machine-readable path works (and emits only JSON objects) on a fixture
# known to contain findings instead of trusting it blindly.
json_out=$(go run ./cmd/bulletlint -json ./... | grep -v '"suppressed":true' || true)
if [[ -n "$json_out" ]]; then
    echo "bulletlint -json: unexpected reported findings on clean tree:" >&2
    echo "$json_out" >&2
    exit 1
fi
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
go build -o "$smoke/bulletlint" ./cmd/bulletlint
mkdir -p "$smoke/mod/internal/demo"
printf 'module lintsmoke\n\ngo 1.22\n' > "$smoke/mod/go.mod"
printf 'package demo\n\nimport "time"\n\n// Stamp trips nodeterm on purpose.\nfunc Stamp() time.Time { return time.Now() }\n' \
    > "$smoke/mod/internal/demo/demo.go"
json_out=$( (cd "$smoke/mod" && ../bulletlint -json) || true)
if [[ -z "$json_out" ]] || grep -qv '^{' <<< "$json_out"; then
    echo "bulletlint -json: expected one JSON object per line, got:" >&2
    echo "$json_out" >&2
    exit 1
fi

step "ci: all gates passed"
