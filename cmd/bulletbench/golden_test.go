package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickGoldenExps is every experiment the quick-suite golden covers: the
// full -quick sweep minus table3 (wall-clock microbenchmarks, inherently
// nondeterministic) and minus ext-fidelity and ext-chaos (added after
// the golden was captured; their determinism is pinned by
// TestExtFidelityDeterminism and TestExtChaosDeterminism, and ext-chaos
// additionally by cmd/bulletsim's TestGoldenChaos).
const quickGoldenExps = "table1,fig2,fig4,fig7,fig10,fig11,fig12,fig13,fig14,fig15," +
	"ext-knobs,ext-disagg,ext-device,ext-prefix,ext-cluster,ext-knee,ext-tp,ext-faults,ext-pressure"

// TestGoldenQuickSuite pins the deterministic portion of the -quick
// suite byte for byte against a capture recorded before the
// latency-backend refactor (DESIGN.md §15): the analytic backend
// extraction must not move a single byte of any table. Skipped under
// the race detector — the suite is pure rendering of already-raced
// experiment code and costs minutes there.
func TestGoldenQuickSuite(t *testing.T) {
	if raceEnabled {
		t.Skip("quick-suite golden skipped under -race (covered by the plain test pass)")
	}
	if testing.Short() {
		t.Skip("quick-suite golden skipped in -short mode")
	}
	want, err := os.ReadFile(filepath.Join("testdata", "quick.golden"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-exp", quickGoldenExps}, &out, &errb); code != 0 {
		t.Fatalf("quick suite exit %d\nstderr: %s", code, errb.String())
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("quick suite diverged from testdata/quick.golden (%d vs %d bytes)",
			out.Len(), len(want))
		gotLines := strings.Split(out.String(), "\n")
		wantLines := strings.Split(string(want), "\n")
		n := len(gotLines)
		if len(wantLines) < n {
			n = len(wantLines)
		}
		for i := 0; i < n; i++ {
			if gotLines[i] != wantLines[i] {
				t.Errorf("first divergence at line %d:\ngot:  %s\nwant: %s", i+1, gotLines[i], wantLines[i])
				break
			}
		}
	}
}
