// Command bulletbench regenerates the paper's tables and figures as text
// tables (see DESIGN.md §3 for the experiment index and §6 for the
// extension studies; TestListMatchesDESIGN pins -list to those tables).
//
// Usage:
//
//	bulletbench                 # run everything (the fig11 sweep is large)
//	bulletbench -exp table1
//	bulletbench -exp fig11 -quick
//	bulletbench -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/prof"
	"repro/internal/workload"
)

var order = []string{
	"table1", "fig2", "fig4", "fig7", "fig10", "fig11", "fig12", "table3",
	"fig13", "fig14", "fig15", "ext-knobs", "ext-disagg", "ext-device", "ext-prefix", "ext-cluster", "ext-knee", "ext-tp", "ext-faults", "ext-pressure", "ext-fidelity", "ext-chaos",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bulletbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp      = fs.String("exp", "all", "experiment id (see -list)")
		quick    = fs.Bool("quick", false, "reduced request counts / sweeps")
		list     = fs.Bool("list", false, "list experiment ids, then exit")
		traceOut = fs.String("trace-out", "", "write a deterministic timeline trace of a representative run, then exit")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a post-GC heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProf != "" || *memProf != "" {
		stop, err := prof.Start(*cpuProf, *memProf)
		if err != nil {
			fmt.Fprintln(stderr, "bulletbench:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(stderr, "bulletbench:", err)
			}
		}()
	}

	if *traceOut != "" {
		if err := writeTrace(*traceOut, *quick, stdout); err != nil {
			fmt.Fprintln(stderr, "bulletbench:", err)
			return 1
		}
		return 0
	}

	if *list {
		fmt.Fprintln(stdout, "experiments:", strings.Join(order, ", "))
		return 0
	}

	runOne := func(id string) {
		fmt.Fprintf(stdout, "===== %s =====\n", id)
		fmt.Fprintln(stdout, render(id, *quick))
	}
	if *exp == "all" {
		for _, id := range order {
			runOne(id)
		}
		return 0
	}
	for _, id := range strings.Split(*exp, ",") {
		if !known(id) {
			fmt.Fprintf(stderr, "bulletbench: unknown experiment %q (have %s)\n", id, strings.Join(order, ", "))
			return 1
		}
		runOne(id)
	}
	return 0
}

// writeTrace records the benchmark suite's representative scenario
// (bullet on azure-code at 4 req/s, seed 42 — the workload most tables
// share) with the timeline recorder attached and writes the
// deterministic Chrome trace-event file.
func writeTrace(path string, quick bool, stdout io.Writer) error {
	n := 300
	if quick {
		n = 100
	}
	res, rec := experiments.RunOneTraced("bullet", workload.AzureCode, 4, n, 42, 0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteChrome(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bullet on azure-code @ 4 req/s: %d requests, %.1fs makespan\n",
		res.Summary.Requests, res.Makespan.Float())
	fmt.Fprint(stdout, rec.Summary())
	fmt.Fprintf(stdout, "wrote %s (open at ui.perfetto.dev)\n", path)
	return nil
}

func known(id string) bool {
	for _, k := range order {
		if k == id {
			return true
		}
	}
	return false
}

func render(id string, quick bool) string {
	n := 300
	if quick {
		n = 100
	}
	switch id {
	case "table1":
		return experiments.RenderTable1(experiments.Table1())
	case "fig2":
		rows, sums := experiments.Figure2()
		return experiments.RenderFigure2(rows, sums)
	case "fig4":
		return experiments.RenderFigure4(experiments.Figure4())
	case "fig7":
		return experiments.RenderFigure7(experiments.Figure7())
	case "fig10":
		return experiments.RenderFigure10(experiments.Figure10(4000, 42))
	case "fig11":
		cfg := experiments.DefaultE2EConfig()
		if quick {
			cfg = experiments.QuickE2EConfig()
		}
		return experiments.RenderFigure11(experiments.Figure11(cfg))
	case "fig12":
		return experiments.RenderFigure12(experiments.Figure12(3.5, n, 42, 48))
	case "fig13":
		return experiments.RenderFigure13(experiments.Figure13(workload.AzureCode, 5, n, 42))
	case "fig14":
		return experiments.RenderFigure14(experiments.Figure14(experiments.DefaultFigure14Rates(), n, 42))
	case "fig15":
		return experiments.RenderFigure15(experiments.Figure15(n, 42))
	case "table3":
		return experiments.RenderTable3(experiments.Table3(2000, func() float64 {
			return float64(time.Now().UnixNano()) / 1e9
		}))
	case "ext-knobs":
		var sb strings.Builder
		sb.WriteString(experiments.RenderKnobRows("Extension: prefill layer-group sweep (Azure-Code @ 4 req/s)",
			experiments.AblationLayerGroup(workload.AzureCode, 4, n, 42)))
		sb.WriteByte('\n')
		sb.WriteString(experiments.RenderKnobRows("Extension: SM partition granularity sweep",
			experiments.AblationSMStep(workload.AzureCode, 4, n, 42)))
		sb.WriteByte('\n')
		sb.WriteString(experiments.RenderKnobRows("Extension: metadata latency sensitivity",
			experiments.AblationMetadataLatency(workload.AzureCode, 4, n, 42)))
		sb.WriteByte('\n')
		sb.WriteString(experiments.RenderKnobRows("Extension: estimator configuration",
			experiments.AblationEstimator(workload.AzureCode, 4, n, 42)))
		sb.WriteByte('\n')
		sb.WriteString(experiments.RenderKnobRows("Extension: arrival burstiness (gamma CV)",
			experiments.AblationBurstiness(workload.AzureCode, 4, n, 42)))
		return sb.String()
	case "ext-disagg":
		return experiments.RenderExtDisagg(experiments.ExtDisagg(workload.AzureCode, []float64{3, 4, 5}, n, 42))
	case "ext-device":
		return experiments.RenderExtCrossDevice(experiments.ExtCrossDevice(workload.ShareGPT, 12, n, 42))
	case "ext-prefix":
		return experiments.RenderExtPrefixCache(
			experiments.ExtPrefixCache(workload.AzureCode, 4, n, 42, []float64{0, 0.5, 0.9}))
	case "ext-cluster":
		return experiments.RenderExtCluster(experiments.ExtCluster(workload.AzureCode, 9, n, 42))
	case "ext-tp":
		return experiments.RenderExtTensorParallel(experiments.ExtTensorParallel(workload.AzureCode, 4, n, 42))
	case "ext-knee":
		kneeN := n / 2
		rows := experiments.ExtKnees(workload.AzureCode, 0.9, kneeN, 42, 2, 10, experiments.SystemNames)
		return experiments.RenderExtKnees("azure-code", 0.9, rows)
	case "ext-faults":
		return experiments.RenderExtFaults(experiments.ExtFaults(
			workload.AzureCode, 4, n, 42, []float64{0, 0.05, 0.1, 0.2}, experiments.FaultSystems))
	case "ext-pressure":
		pn := n
		if quick {
			pn = 80
		} else {
			pn = 200
		}
		return experiments.RenderExtPressure(experiments.ExtPressure(
			workload.AzureCode, []float64{4, 8, 12}, pn, 42, true))
	case "ext-fidelity":
		fn := n
		if quick {
			fn = 120
		}
		return experiments.RenderExtFidelity(
			experiments.ExtFidelity(workload.AzureCode, 5, fn, 42),
			experiments.ExtFidelityCluster(workload.AzureCode, 8, fn, 42, 0))
	case "ext-chaos":
		cn := n
		if quick {
			cn = 120
		}
		return experiments.RenderExtChaos(experiments.ExtChaos(workload.AzureCode, 10, cn, 7, 0))
	}
	panic(fmt.Sprintf("bulletbench: experiment %q listed in order but not dispatched", id))
}
