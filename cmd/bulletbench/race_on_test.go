//go:build race

package main

// raceEnabled reports whether this test binary was built with -race;
// the expensive byte-identity golden skips there.
const raceEnabled = true
