// Command bulletlint enforces the determinism contract of the simulation
// core (DESIGN.md, "Determinism contract"). It loads every non-test
// package in the module with the pure-stdlib loader in internal/lint,
// runs the analyzer suite, and prints findings as
//
//	file:line: [rule] message
//
// Usage:
//
//	go run ./cmd/bulletlint ./...            # whole module
//	go run ./cmd/bulletlint ./internal/...   # one subtree
//	go run ./cmd/bulletlint -list            # show the rules and exit
//
// Exit codes: 0 no findings, 1 findings reported, 2 load/usage error.
// Individual findings can be suppressed with a `//lint:ignore rule
// reason` comment on the offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bulletlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	// Patterns are interpreted relative to the module root; translate
	// patterns given from a subdirectory.
	patterns := flag.Args()
	if rel, err := filepath.Rel(root, cwd); err == nil && rel != "." {
		for i, p := range patterns {
			patterns[i] = filepath.ToSlash(filepath.Join(rel, p))
		}
	}

	pkgs, err := lint.LoadModule(root, patterns)
	if err != nil {
		fatal(err)
	}
	if len(patterns) > 0 && len(pkgs) == 0 {
		fatal(fmt.Errorf("no packages match %v", patterns))
	}
	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		fmt.Printf("%s:%d: [%s] %s\n", rel, f.Pos.Line, f.Rule, f.Msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "bulletlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bulletlint: %v\n", err)
	os.Exit(2)
}
