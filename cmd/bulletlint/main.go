// Command bulletlint enforces the determinism and unit-safety contracts
// of the simulation core (DESIGN.md, "Determinism contract" and
// "Unit-safety contract"). It loads every non-test package in the module
// with the pure-stdlib loader in internal/lint, runs the analyzer suite,
// and prints findings as
//
//	file:line: [rule] message
//
// Usage:
//
//	go run ./cmd/bulletlint ./...            # whole module
//	go run ./cmd/bulletlint ./internal/...   # one subtree
//	go run ./cmd/bulletlint -list            # show the rules and exit
//	go run ./cmd/bulletlint -json ./...      # one JSON object per finding
//	go run ./cmd/bulletlint -rules maporder,unitsafe ./...  # run a subset
//
// -rules selects a comma-separated subset of the suite. Retired rule
// names (nogoroutine) are accepted as aliases for their successors
// (harnessonly) with a deprecation notice on stderr; unknown names are a
// usage error (exit 2).
//
// With -json each finding is one object per line — {"file", "line",
// "rule", "message", "suppressed"} — and findings silenced by
// //lint:ignore directives are included with "suppressed": true (they
// never affect the exit code), so tooling can audit what the ignores
// hide.
//
// Exit codes: 0 no findings, 1 findings reported, 2 load/usage error.
// Individual findings can be suppressed with a `//lint:ignore rule
// reason` comment on the offending line or the line above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonFinding is the -json wire shape, one object per output line.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Rule       string `json:"rule"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bulletlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzer rules and exit")
	jsonOut := fs.Bool("json", false, "print one JSON object per finding (suppressed findings included)")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all; retired names are accepted as aliases)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bulletlint [-list] [-json] [-rules r1,r2] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.DefaultAnalyzers()
	if *rules != "" {
		selected, err := selectRules(analyzers, *rules, stderr)
		if err != nil {
			return fatal(stderr, err)
		}
		analyzers = selected
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	cwd, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return fatal(stderr, err)
	}
	// Patterns are interpreted relative to the module root; translate
	// patterns given from a subdirectory.
	patterns := fs.Args()
	if rel, err := filepath.Rel(root, cwd); err == nil && rel != "." {
		for i, p := range patterns {
			patterns[i] = filepath.ToSlash(filepath.Join(rel, p))
		}
	}

	pkgs, err := lint.LoadModule(root, patterns)
	if err != nil {
		return fatal(stderr, err)
	}
	if len(patterns) > 0 && len(pkgs) == 0 {
		return fatal(stderr, fmt.Errorf("no packages match %v", patterns))
	}
	findings := lint.RunAll(pkgs, analyzers)
	enc := json.NewEncoder(stdout)
	reported := 0
	for _, f := range findings {
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			rel = f.Pos.Filename
		}
		switch {
		case *jsonOut:
			if err := enc.Encode(jsonFinding{
				File: rel, Line: f.Pos.Line, Rule: f.Rule,
				Message: f.Msg, Suppressed: f.Suppressed,
			}); err != nil {
				return fatal(stderr, err)
			}
		case !f.Suppressed:
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", rel, f.Pos.Line, f.Rule, f.Msg)
		}
		if !f.Suppressed {
			reported++
		}
	}
	if reported > 0 {
		fmt.Fprintf(stderr, "bulletlint: %d finding(s)\n", reported)
		return 1
	}
	return 0
}

// selectRules resolves a comma-separated rule selection against the
// suite, preserving suite order, deduplicating, and canonicalizing
// retired aliases (with a deprecation notice on stderr). Unknown names
// are an error.
func selectRules(all []lint.Analyzer, spec string, stderr io.Writer) ([]lint.Analyzer, error) {
	byName := map[string]lint.Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	want := map[string]bool{}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if canon, ok := lint.RuleAliases[name]; ok {
			fmt.Fprintf(stderr, "bulletlint: rule %q is deprecated; running its successor %q\n", name, canon)
			name = canon
		}
		if _, ok := byName[name]; !ok {
			return nil, fmt.Errorf("unknown rule %q (see -list)", name)
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("empty -rules selection")
	}
	var out []lint.Analyzer
	for _, a := range all {
		if want[a.Name()] {
			out = append(out, a)
		}
	}
	return out, nil
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "bulletlint: %v\n", err)
	return 2
}
