package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir moves the process into dir for one test. The test binary starts
// in cmd/bulletlint, so module-rooted paths need ../../ from here.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// dirtyModule writes a throwaway module with one known-bad internal
// package: two nodeterm violations, one of them suppressed, so every
// exit-code and JSON path is exercised from a single fixture.
func dirtyModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module tmpmod\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "internal", "demo", "demo.go"), `package demo

import "time"

// Stamp leaks wall-clock time into what should be simulated time.
func Stamp() time.Time { return time.Now() }

//lint:ignore nodeterm CLI test fixture exercising suppression reporting
func Suppressed() time.Time { return time.Now() }
`)
	return dir
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunCleanTreeExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	// A small always-clean subtree keeps the test fast; the whole-module
	// gate is TestRepoTreeClean in internal/lint.
	if code := run([]string{"../../internal/units"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run printed findings: %s", out.String())
	}
}

func TestRunFindingsExitOne(t *testing.T) {
	chdir(t, dirtyModule(t))
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[nodeterm]") {
		t.Errorf("stdout missing nodeterm finding:\n%s", out.String())
	}
	// The suppressed finding must not be printed in text mode, and the
	// count on stderr reflects only the reported one.
	if got := strings.Count(out.String(), "[nodeterm]"); got != 1 {
		t.Errorf("%d findings printed, want 1 (suppressed hidden)", got)
	}
	if !strings.Contains(errb.String(), "1 finding(s)") {
		t.Errorf("stderr = %q, want 1 finding(s)", errb.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	chdir(t, dirtyModule(t))
	var out, errb bytes.Buffer
	if code := run([]string{"-json"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1\nstderr: %s", code, errb.String())
	}
	var suppressed, reported int
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := sc.Text()
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("line is not a JSON object: %q: %v", line, err)
		}
		if f.File == "" || f.Line == 0 || f.Rule == "" || f.Message == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("file %q not module-relative", f.File)
		}
		if f.Suppressed {
			suppressed++
		} else {
			reported++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// JSON mode includes the ignored finding, flagged, while the exit
	// code still counts only the reported one.
	if suppressed != 1 || reported != 1 {
		t.Errorf("suppressed=%d reported=%d, want 1 and 1\n%s", suppressed, reported, out.String())
	}
}

func TestRunUsageAndLoadErrorsExitTwo(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("unmatched pattern: exit %d, want 2\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "no packages match") {
		t.Errorf("stderr = %q, want pattern-mismatch error", errb.String())
	}
}

// TestRulesSelection covers the -rules flag: subset selection changes
// which findings fire, the retired nogoroutine name is accepted as an
// alias for harnessonly with a deprecation notice, and unknown names are
// a usage error.
func TestRulesSelection(t *testing.T) {
	chdir(t, dirtyModule(t))

	var out, errb bytes.Buffer
	if code := run([]string{"-rules", "nodeterm"}, &out, &errb); code != 1 {
		t.Fatalf("-rules nodeterm: exit %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[nodeterm]") {
		t.Errorf("-rules nodeterm printed no nodeterm finding:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-rules", "maporder"}, &out, &errb); code != 0 {
		t.Fatalf("-rules maporder: exit %d, want 0 (nodeterm excluded)\nstderr: %s", code, errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("-rules maporder printed findings:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-rules", "nogoroutine", "-list"}, &out, &errb); code != 0 {
		t.Fatalf("-rules nogoroutine -list: exit %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "deprecated") {
		t.Errorf("alias produced no deprecation notice on stderr: %q", errb.String())
	}
	if !strings.Contains(out.String(), "harnessonly") {
		t.Errorf("alias did not resolve to harnessonly:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errb); code != 2 {
		t.Fatalf("-rules nosuchrule: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown rule") {
		t.Errorf("stderr = %q, want unknown-rule error", errb.String())
	}
}

// TestListMatchesREADME is the golden link between `bulletlint -list`
// and the rules table in README.md: same rules, same order, no drift in
// either direction.
func TestListMatchesREADME(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit %d, want 0", code)
	}
	var listed []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("-list line %q: want \"name  doc\"", line)
		}
		listed = append(listed, fields[0])
	}

	readme, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	var tabled []string
	inTable := false
	for _, line := range strings.Split(string(readme), "\n") {
		switch {
		case strings.HasPrefix(line, "| rule"):
			inTable = true
		case inTable && strings.HasPrefix(line, "| ---"):
			// separator row
		case inTable && strings.HasPrefix(line, "|"):
			cells := strings.Split(line, "|")
			if len(cells) < 3 {
				t.Fatalf("malformed README table row: %q", line)
			}
			tabled = append(tabled, strings.TrimSpace(cells[1]))
		case inTable:
			inTable = false
		}
	}
	if len(tabled) == 0 {
		t.Fatal("README.md rules table not found")
	}
	if strings.Join(listed, " ") != strings.Join(tabled, " ") {
		t.Errorf("-list rules %v != README table rules %v", listed, tabled)
	}
}
