// Command bulletprof runs the offline profiling of §3.2.2 against the
// simulated device and reports the fitted Equation 2 parameters and model
// accuracy (Fig. 15 offline half).
//
// Usage:
//
//	bulletprof              # quick grid
//	bulletprof -full        # the paper-scale sampled grid (~minutes)
//	bulletprof -samples     # dump every profiled configuration
package main

import (
	"flag"
	"fmt"

	"repro/internal/estimator"
	"repro/internal/gpusim"
	"repro/internal/model"
)

func main() {
	var (
		full    = flag.Bool("full", false, "use the full sampled grid")
		dump    = flag.Bool("samples", false, "print every profiled configuration")
		modelID = flag.String("model", "llama-3.1-8b", "model preset (llama-3.1-8b, qwen2-7b)")
	)
	flag.Parse()

	var cfg model.Config
	switch *modelID {
	case "llama-3.1-8b":
		cfg = model.Llama31_8B()
	case "qwen2-7b":
		cfg = model.Qwen2_7B()
	default:
		fmt.Printf("bulletprof: unknown model %q\n", *modelID)
		return
	}
	spec := gpusim.A100()
	opts := estimator.QuickProfileOptions(spec)
	if *full {
		opts = estimator.DefaultProfileOptions(spec)
	}

	_, rep := estimator.Profile(cfg, spec, opts)
	fmt.Printf("device   %s (%d SMs, %.0f TFLOPS, %.1f TB/s)\n",
		spec.Name, spec.NumSMs, spec.PeakFLOPS/1e12, spec.PeakBW/1e12)
	fmt.Printf("model    %s (%.2fB params)\n", cfg.Name, cfg.ParamCount()/1e9)
	fmt.Printf("trials   %d\n", rep.Trials)
	fmt.Printf("fitted   d_c=%.3f d_b=%.3f p_c=%.3f p_b=%.3f\n",
		rep.Params.DC, rep.Params.DB, rep.Params.PC, rep.Params.PB)
	fmt.Printf("accuracy mean rel err %.1f%%, P90 %.1f%%, SLO classification %.0f%%\n",
		100*rep.MeanRelError, 100*rep.P90RelError,
		100*estimator.ClassificationAccuracy(rep.Samples, 1.0))

	if *dump {
		fmt.Println("\nkind           seq   batch  ctx    SMs  actual(ms)  predicted(ms)  relerr")
		for _, s := range rep.Samples {
			fmt.Printf("%-14s %-5d %-6d %-6.0f %-4d %-11.3f %-14.3f %.1f%%\n",
				s.Kind, s.SeqLen, s.Batch, s.Ctx, s.SMs,
				1000*s.Actual, 1000*s.Predicted, 100*s.RelError())
		}
	}
}
