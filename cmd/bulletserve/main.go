// Command bulletserve exposes the reproduction over HTTP so external
// tooling (notebooks, dashboards) can drive experiments:
//
//	bulletserve -addr :8080
//	curl localhost:8080/v1/systems
//	curl -X POST localhost:8080/v1/run \
//	     -d '{"system":"bullet","dataset":"azure-code","rate":5,"n":200}'
//	curl -X POST localhost:8080/v1/compare \
//	     -d '{"dataset":"sharegpt","rate":16,"n":200}'
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"repro/internal/api"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	// The api package's handler is pure and stateless; each request
	// runs its own deterministic simulation.
	handler := api.Handler()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("bulletserve listening on %s", *addr)
	log.Fatalf("bulletserve: server exited: %v", srv.ListenAndServe())
}
