// Command bulletsim runs a single serving experiment: one system, one
// dataset, one request rate, on the simulated A100.
//
// Usage:
//
//	bulletsim -system bullet -dataset azure-code -rate 5 -n 300 -seed 42
//	bulletsim -system sglang-1024 -dataset sharegpt -rate 16 -json
//	bulletsim -system bullet -trace out.trace.json   # chrome://tracing file
//	bulletsim -system bullet -trace-out out.json     # deterministic timeline trace
//	bulletsim -system bullet -faults -fault-rate 0.1 -fault-seed 7
//	bulletsim -pressure -dataset azure-code -rate 4 -n 200
//	bulletsim -qos -dataset azure-code -rate 4 -n 200
//	bulletsim -list
//
// With -faults a deterministic fault schedule (SM degradations and
// engine stalls at -fault-rate events/s each, seeded by -fault-seed) is
// injected into the run and the resilience accounting is printed
// alongside the summary. Only Bullet variants support fault injection.
//
// With -pressure the memory-pressure overload sweep runs instead of a
// single experiment: offered load at -rate, 2×, and 3×, with a shared
// KV-capacity-shrink fault schedule per rate, comparing plain Bullet,
// the admission-gate ablation, and the full pressure subsystem
// (admission control + decode preemption + recompute/retransfer
// recovery). Output is byte-identical across runs of the same flags.
//
// With -qos the multi-tenant QoS overload sweep runs: a mixed
// premium/standard/best-effort trace at -rate, 2×, and 3×, comparing
// static-batch Bullet against the SLO-feedback QoS controller
// (internal/qos), plus a 2-replica cluster arm at the top rate whose
// table is byte-identical serial vs parallel. Output is byte-identical
// across runs of the same flags.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/bullet"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/serving"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	var (
		system     = flag.String("system", "bullet", "serving system (see -list)")
		dataset    = flag.String("dataset", "sharegpt", "workload dataset")
		rate       = flag.Float64("rate", 8, "offered load in requests/second")
		n          = flag.Int("n", 300, "number of requests")
		seed       = flag.Int64("seed", 42, "trace random seed")
		asJSON     = flag.Bool("json", false, "emit the full result as JSON")
		traceFile  = flag.String("trace", "", "write a Chrome trace-event file (Bullet systems only)")
		traceOut   = flag.String("trace-out", "", "write a deterministic timeline trace (Perfetto-loadable Chrome JSON)")
		withFault  = flag.Bool("faults", false, "inject a deterministic fault schedule (Bullet systems only)")
		faultRate  = flag.Float64("fault-rate", 0.1, "SM-degradation and engine-stall rates, events/s of virtual time")
		faultSeed  = flag.Int64("fault-seed", 1, "fault schedule random seed")
		pressSweep = flag.Bool("pressure", false, "run the memory-pressure overload sweep (rate, 2x, 3x) and print the ext-pressure table")
		qosSweep   = flag.Bool("qos", false, "run the multi-tenant QoS overload sweep (rate, 2x, 3x) and print the ext-qos tables")
		clSweep    = flag.Bool("cluster-sweep", false, "run the 1/2/4-replica scale-out sweep through the fork/join harness and print the ext-cluster table")
		workers    = flag.Int("workers", 0, "fork/join width for -cluster-sweep (0 = GOMAXPROCS default, 1 = serial)")
		list       = flag.Bool("list", false, "list systems and datasets, then exit")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a post-GC heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" || *memProf != "" {
		stop, err := prof.Start(*cpuProf, *memProf)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "bulletsim:", err)
			}
		}()
	}

	if *list {
		fmt.Println("systems: ", strings.Join(bullet.Systems(), ", "))
		fmt.Println("         plus ablations bullet-naive, bullet-partition, bullet-scheduler, bullet-sm<N>,")
		fmt.Println("         disaggregation disagg-nvlink, disagg-pcie")
		fmt.Println("datasets:", strings.Join(bullet.Datasets(), ", "))
		fmt.Println("models:  ", strings.Join(bullet.Models(), ", "))
		return
	}

	if *traceOut != "" {
		if err := runTimeline(*system, *dataset, *rate, *n, *seed, *traceOut); err != nil {
			fail(err)
		}
		return
	}

	if *traceFile != "" {
		if err := runTraced(*system, *dataset, *rate, *n, *seed, *traceFile); err != nil {
			fail(err)
		}
		return
	}

	if *pressSweep {
		if err := runPressure(*dataset, *rate, *n, *seed); err != nil {
			fail(err)
		}
		return
	}

	if *qosSweep {
		if err := runQoS(*dataset, *rate, *n, *seed, *workers); err != nil {
			fail(err)
		}
		return
	}

	if *clSweep {
		if err := runClusterSweep(*dataset, *rate, *n, *seed, *workers); err != nil {
			fail(err)
		}
		return
	}

	if *withFault {
		if err := runFaulty(*system, *dataset, *rate, *n, *seed, *faultRate, *faultSeed, *asJSON); err != nil {
			fail(err)
		}
		return
	}

	srv, err := bullet.New(bullet.Config{System: *system, Dataset: *dataset})
	if err != nil {
		fail(err)
	}
	tr, err := bullet.GenerateTrace(*dataset, *rate, *n, *seed)
	if err != nil {
		fail(err)
	}
	res, err := srv.Run(tr)
	if err != nil {
		fail(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fail(err)
		}
		return
	}
	printSummary(*dataset, *rate, *n, *seed, res)
}

func printSummary(dataset string, rate float64, n int, seed int64, res bullet.Result) {
	fmt.Printf("system          %s\n", res.System)
	fmt.Printf("dataset         %s @ %.2f req/s (%d requests, seed %d)\n", dataset, rate, n, seed)
	fmt.Printf("mean TTFT       %.3f s (P90 %.3f s)\n", res.MeanTTFT, res.P90TTFT)
	fmt.Printf("P90 norm TTFT   %.2f ms/token\n", res.P90NormTTFT)
	fmt.Printf("mean TPOT       %.1f ms (P90 %.1f ms)\n", res.MeanTPOTMs, res.P90TPOTMs)
	fmt.Printf("throughput      %.2f req/s, %.0f tok/s\n", res.Throughput, res.TokenThru)
	fmt.Printf("SLO attainment  %.1f%%\n", 100*res.SLOAttainment)
	fmt.Printf("makespan        %.1f s\n", res.Makespan)
}

// runFaulty executes the run with a generated fault schedule injected
// and prints the resilience accounting alongside the usual summary.
func runFaulty(system, dataset string, rate float64, n int, seed int64, faultRate float64, faultSeed int64, asJSON bool) error {
	spec, cfg := experiments.Platform()
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	env := serving.NewEnv(spec, cfg, dataset)
	sys := experiments.NewSystem(system, env)
	b, ok := sys.(*core.Bullet)
	if !ok {
		return fmt.Errorf("-faults requires a Bullet variant, got %q", system)
	}
	// Cover the arrival span plus drain slack with faults.
	horizon := units.Scale(units.Over(units.Seconds(float64(n)), rate), 1.5)
	fcfg := faults.DefaultConfig(spec.NumSMs, horizon)
	fcfg.Seed = faultSeed
	fcfg.DegradeRate = faultRate
	fcfg.StallRate = faultRate
	inj := faults.NewInjector(env.Sim, faults.Generate(fcfg))
	b.AttachFaults(inj, core.DefaultWatchdog())
	inj.Arm()
	res := env.Run(sys, workload.Generate(d, rate, n, seed))
	rl := b.Resilience()
	rl.FaultsInjected = inj.Injected()
	rl.Downtime = inj.ScheduledDowntime()

	if asJSON {
		out := struct {
			System     string
			Dataset    string
			Rate       float64
			Shed       int
			Summary    metrics.Summary
			Resilience metrics.Resilience
		}{res.System, dataset, rate, res.Shed, res.Summary, rl}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	s := res.Summary
	fmt.Printf("system          %s (faulty: degrade+stall @ %.2f/s, fault seed %d)\n", res.System, faultRate, faultSeed)
	fmt.Printf("dataset         %s @ %.2f req/s (%d requests, seed %d)\n", dataset, rate, n, seed)
	fmt.Printf("completed       %d (%d shed)\n", s.Requests, res.Shed)
	fmt.Printf("mean TTFT       %.3f s (P90 %.3f s)\n", s.MeanTTFT.Float(), s.P90TTFT.Float())
	fmt.Printf("mean TPOT       %.1f ms (P90 %.1f ms)\n", s.MeanTPOTMs, s.P90TPOTMs)
	fmt.Printf("throughput      %.2f req/s (goodput %.2f req/s)\n", s.Throughput, s.Goodput)
	fmt.Printf("SLO attainment  %.1f%%\n", 100*s.SLOAttainment)
	fmt.Printf("faults injected %d (scheduled downtime %.1f s)\n", rl.FaultsInjected, rl.Downtime.Float())
	fmt.Printf("batch aborts    %d (retried %d, shed %d)\n", rl.BatchAborts, rl.Retried, rl.Shed)
	fmt.Printf("recoveries      %d (MTTR %.2f s)\n", rl.Recoveries, rl.MTTR().Float())
	fmt.Printf("makespan        %.1f s\n", res.Makespan.Float())
	return nil
}

// runPressure sweeps offered load from -rate to 3× past it with the
// ext-pressure study: a shared trace and a shared KV-capacity-shrink
// fault schedule per rate, contrasting plain Bullet (no preemption),
// the admission-gate-only ablation, and the full memory-pressure
// subsystem. The output is deterministic: the same flags always print
// byte-identical tables.
func runPressure(dataset string, rate float64, n int, seed int64) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	rates := []float64{rate, 2 * rate, 3 * rate}
	rows := experiments.ExtPressure(d, rates, n, seed, true)
	fmt.Print(experiments.RenderExtPressure(rows))
	return nil
}

// runQoS sweeps a mixed-tenant workload from -rate to 3× past it with
// the ext-qos study (static batching vs the SLO-feedback controller,
// per-tenant rows), then runs the 2-replica cluster arm at the top rate.
// The output is deterministic: the same flags always print byte-identical
// tables, and the cluster arm is byte-identical at every -workers value.
func runQoS(dataset string, rate float64, n int, seed int64, workers int) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	rates := []float64{rate, 2 * rate, 3 * rate}
	rows := experiments.ExtQoS(d, rates, n, seed, workload.DefaultTenantMix())
	fmt.Print(experiments.RenderExtQoS(rows))
	cl := experiments.ExtQoSCluster(d, 3*rate, n, seed, workers)
	fmt.Print(experiments.RenderExtQoSCluster(cl))
	return nil
}

// runClusterSweep runs the 1/2/4-replica scale-out study through the
// forkjoin harness. By the concurrency contract the table is
// byte-identical at every -workers value and every GOMAXPROCS — the
// equivalence ci.sh pins by diffing a serial run against a parallel one.
func runClusterSweep(dataset string, rate float64, n int, seed int64, workers int) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	rows := experiments.ExtClusterN(d, rate, n, seed, workers)
	fmt.Print(experiments.RenderExtCluster(rows))
	return nil
}

// runTimeline executes the run with the internal/timeline recorder
// attached across every layer (kernels, scheduling decisions, request
// lifecycles) and writes a deterministic Chrome trace-event file: the
// same flags always produce a byte-identical trace, loadable at
// ui.perfetto.dev or chrome://tracing.
func runTimeline(system, dataset string, rate float64, n int, seed int64, path string) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	res, rec := experiments.RunOneTraced(system, d, rate, n, seed, 0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteChrome(f); err != nil {
		return err
	}
	fmt.Printf("system %s: %d requests, %.1fs makespan\n",
		res.System, res.Summary.Requests, res.Makespan.Float())
	fmt.Print(rec.Summary())
	fmt.Printf("wrote %s (open at ui.perfetto.dev)\n", path)
	return nil
}

// runTraced executes the run with full kernel/decision tracing and writes
// a Chrome trace-event file viewable at chrome://tracing or Perfetto.
func runTraced(system, dataset string, rate float64, n int, seed int64, path string) error {
	spec, cfg := experiments.Platform()
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	env := serving.NewEnv(spec, cfg, dataset)

	var rec trace.Recorder
	rec.MaxEvents = 2_000_000
	env.GPU.Trace = rec.KernelHook()

	sys := experiments.NewSystem(system, env)
	if b, ok := sys.(*core.Bullet); ok {
		hook := rec.DecisionHook()
		b.Prefill.OnDecision = hook
		b.Decode.OnDecision = hook
	}
	env.OnComplete = func(m metrics.Request) {
		rec.AddRequest(m.ID, m.Arrival, m.FirstToken, m.Finish, m.InputTokens, m.OutputTokens)
	}
	res := env.Run(sys, workload.Generate(d, rate, n, seed))

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteChromeTrace(f); err != nil {
		return err
	}
	fmt.Printf("system %s: %d requests, %.1fs makespan\n", res.System, res.Summary.Requests, res.Makespan)
	sum := rec.Summary()
	lanes := make([]string, 0, len(sum))
	for lane := range sum {
		lanes = append(lanes, lane)
	}
	sort.Strings(lanes)
	for _, lane := range lanes {
		fmt.Printf("  lane %-10s %s\n", lane, sum[lane])
	}
	if rec.Dropped > 0 {
		fmt.Printf("  (%d events dropped past the %d-event cap)\n", rec.Dropped, rec.MaxEvents)
	}
	fmt.Printf("wrote %s (open at chrome://tracing)\n", path)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bulletsim:", err)
	os.Exit(1)
}
