// Command bulletsim runs a single serving experiment: one system, one
// dataset, one request rate, on the simulated A100.
//
// Usage:
//
//	bulletsim -system bullet -dataset azure-code -rate 5 -n 300 -seed 42
//	bulletsim -system sglang-1024 -dataset sharegpt -rate 16 -json
//	bulletsim -system bullet -backend sampled       # pluggable latency model
//	bulletsim -system bullet -trace out.trace.json   # chrome://tracing file
//	bulletsim -system bullet -trace-out out.json     # deterministic timeline trace
//	bulletsim -system bullet -faults -fault-rate 0.1 -fault-seed 7
//	bulletsim -pressure -dataset azure-code -rate 4 -n 200
//	bulletsim -qos -dataset azure-code -rate 4 -n 200
//	bulletsim -chaos -dataset azure-code -rate 10 -n 120
//	bulletsim -list
//
// With -backend the Bullet variant runs on a non-default per-kernel
// latency model (DESIGN.md §15): "analytic" is the fluid roofline model,
// "sampled" draws deterministically from a self-calibrated per-operator
// latency table, "hierarchy" adds L2 cache-reuse interference between
// co-located kernels. Output is byte-identical across runs of the same
// flags for every backend.
//
// With -faults a deterministic fault schedule (SM degradations and
// engine stalls at -fault-rate events/s each, seeded by -fault-seed) is
// injected into the run and the resilience accounting is printed
// alongside the summary. Only Bullet variants support fault injection.
//
// With -pressure the memory-pressure overload sweep runs instead of a
// single experiment: offered load at -rate, 2×, and 3×, with a shared
// KV-capacity-shrink fault schedule per rate, comparing plain Bullet,
// the admission-gate ablation, and the full pressure subsystem
// (admission control + decode preemption + recompute/retransfer
// recovery). Output is byte-identical across runs of the same flags.
//
// With -qos the multi-tenant QoS overload sweep runs: a mixed
// premium/standard/best-effort trace at -rate, 2×, and 3×, comparing
// static-batch Bullet against the SLO-feedback QoS controller
// (internal/qos), plus a 2-replica cluster arm at the top rate whose
// table is byte-identical serial vs parallel. Output is byte-identical
// across runs of the same flags.
//
// With -chaos the router-resilience storm study runs: a seeded Markov
// calm/storm process generates a correlated link-failure schedule
// (black-holed and degraded replica links, router blips, graceful
// drains, rack-style cascades) over a 4-replica cluster, and the same
// storm replays twice — once with the naive router and once with the
// resilience layer (circuit breakers, dispatch timeouts, hedged
// re-dispatch, per-class token buckets; DESIGN.md §16). Output is
// byte-identical across runs of the same flags and at every -workers
// value.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/bullet"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/serving"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: golden byte-identity tests drive it
// in-process with a captured stdout.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bulletsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system     = fs.String("system", "bullet", "serving system (see -list)")
		dataset    = fs.String("dataset", "sharegpt", "workload dataset")
		rate       = fs.Float64("rate", 8, "offered load in requests/second")
		n          = fs.Int("n", 300, "number of requests")
		seed       = fs.Int64("seed", 42, "trace random seed")
		backend    = fs.String("backend", "", "per-kernel latency backend: analytic, sampled or hierarchy (Bullet systems only)")
		bkSeed     = fs.Int64("backend-seed", 1, "sampled-backend draw seed")
		asJSON     = fs.Bool("json", false, "emit the full result as JSON")
		traceFile  = fs.String("trace", "", "write a Chrome trace-event file (Bullet systems only)")
		traceOut   = fs.String("trace-out", "", "write a deterministic timeline trace (Perfetto-loadable Chrome JSON)")
		withFault  = fs.Bool("faults", false, "inject a deterministic fault schedule (Bullet systems only)")
		faultRate  = fs.Float64("fault-rate", 0.1, "SM-degradation and engine-stall rates, events/s of virtual time")
		faultSeed  = fs.Int64("fault-seed", 1, "fault schedule random seed")
		pressSweep = fs.Bool("pressure", false, "run the memory-pressure overload sweep (rate, 2x, 3x) and print the ext-pressure table")
		qosSweep   = fs.Bool("qos", false, "run the multi-tenant QoS overload sweep (rate, 2x, 3x) and print the ext-qos tables")
		chaosRun   = fs.Bool("chaos", false, "run the router-resilience storm study (naive vs resilient router) and print the ext-chaos table")
		clSweep    = fs.Bool("cluster-sweep", false, "run the 1/2/4-replica scale-out sweep through the fork/join harness and print the ext-cluster table")
		workers    = fs.Int("workers", 0, "fork/join width for -cluster-sweep (0 = GOMAXPROCS default, 1 = serial)")
		list       = fs.Bool("list", false, "list systems and datasets, then exit")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = fs.String("memprofile", "", "write a post-GC heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "bulletsim:", err)
		return 1
	}

	if *cpuProf != "" || *memProf != "" {
		stop, err := prof.Start(*cpuProf, *memProf)
		if err != nil {
			return fail(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(stderr, "bulletsim:", err)
			}
		}()
	}

	if *list {
		fmt.Fprintln(stdout, "systems: ", strings.Join(bullet.Systems(), ", "))
		fmt.Fprintln(stdout, "         plus ablations bullet-naive, bullet-partition, bullet-scheduler, bullet-sm<N>,")
		fmt.Fprintln(stdout, "         disaggregation disagg-nvlink, disagg-pcie")
		fmt.Fprintln(stdout, "datasets:", strings.Join(bullet.Datasets(), ", "))
		fmt.Fprintln(stdout, "models:  ", strings.Join(bullet.Models(), ", "))
		fmt.Fprintln(stdout, "backends: analytic, sampled, hierarchy (Bullet systems only)")
		return 0
	}

	if *traceOut != "" {
		if err := runTimeline(*system, *dataset, *rate, *n, *seed, *traceOut, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	if *traceFile != "" {
		if err := runTraced(*system, *dataset, *rate, *n, *seed, *traceFile, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	if *pressSweep {
		if err := runPressure(*dataset, *rate, *n, *seed, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	if *qosSweep {
		if err := runQoS(*dataset, *rate, *n, *seed, *workers, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	if *chaosRun {
		if err := runChaos(*dataset, *rate, *n, *seed, *workers, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	if *clSweep {
		if err := runClusterSweep(*dataset, *rate, *n, *seed, *workers, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	if *withFault {
		if err := runFaulty(*system, *dataset, *rate, *n, *seed, *faultRate, *faultSeed, *asJSON, stdout); err != nil {
			return fail(err)
		}
		return 0
	}

	srv, err := bullet.New(bullet.Config{
		System: *system, Dataset: *dataset, Backend: *backend, BackendSeed: *bkSeed,
	})
	if err != nil {
		return fail(err)
	}
	tr, err := bullet.GenerateTrace(*dataset, *rate, *n, *seed)
	if err != nil {
		return fail(err)
	}
	res, err := srv.Run(tr)
	if err != nil {
		return fail(err)
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return fail(err)
		}
		return 0
	}
	printSummary(stdout, *dataset, *rate, *n, *seed, res)
	return 0
}

func printSummary(w io.Writer, dataset string, rate float64, n int, seed int64, res bullet.Result) {
	fmt.Fprintf(w, "system          %s\n", res.System)
	fmt.Fprintf(w, "dataset         %s @ %.2f req/s (%d requests, seed %d)\n", dataset, rate, n, seed)
	fmt.Fprintf(w, "mean TTFT       %.3f s (P90 %.3f s)\n", res.MeanTTFT, res.P90TTFT)
	fmt.Fprintf(w, "P90 norm TTFT   %.2f ms/token\n", res.P90NormTTFT)
	fmt.Fprintf(w, "mean TPOT       %.1f ms (P90 %.1f ms)\n", res.MeanTPOTMs, res.P90TPOTMs)
	fmt.Fprintf(w, "throughput      %.2f req/s, %.0f tok/s\n", res.Throughput, res.TokenThru)
	fmt.Fprintf(w, "SLO attainment  %.1f%%\n", 100*res.SLOAttainment)
	fmt.Fprintf(w, "makespan        %.1f s\n", res.Makespan)
}

// runFaulty executes the run with a generated fault schedule injected
// and prints the resilience accounting alongside the usual summary.
func runFaulty(system, dataset string, rate float64, n int, seed int64, faultRate float64, faultSeed int64, asJSON bool, stdout io.Writer) error {
	spec, cfg := experiments.Platform()
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	env := serving.NewEnv(spec, cfg, dataset)
	sys := experiments.NewSystem(system, env)
	b, ok := sys.(*core.Bullet)
	if !ok {
		return fmt.Errorf("-faults requires a Bullet variant, got %q", system)
	}
	// Cover the arrival span plus drain slack with faults.
	horizon := units.Scale(units.Over(units.Seconds(float64(n)), rate), 1.5)
	fcfg := faults.DefaultConfig(spec.NumSMs, horizon)
	fcfg.Seed = faultSeed
	fcfg.DegradeRate = faultRate
	fcfg.StallRate = faultRate
	inj := faults.NewInjector(env.Sim, faults.Generate(fcfg))
	b.AttachFaults(inj, core.DefaultWatchdog())
	inj.Arm()
	res := env.Run(sys, workload.Generate(d, rate, n, seed))
	rl := b.Resilience()
	rl.FaultsInjected = inj.Injected()
	rl.Downtime = inj.ScheduledDowntime()

	if asJSON {
		out := struct {
			System     string
			Dataset    string
			Rate       float64
			Shed       int
			Summary    metrics.Summary
			Resilience metrics.Resilience
		}{res.System, dataset, rate, res.Shed, res.Summary, rl}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	s := res.Summary
	fmt.Fprintf(stdout, "system          %s (faulty: degrade+stall @ %.2f/s, fault seed %d)\n", res.System, faultRate, faultSeed)
	fmt.Fprintf(stdout, "dataset         %s @ %.2f req/s (%d requests, seed %d)\n", dataset, rate, n, seed)
	fmt.Fprintf(stdout, "completed       %d (%d shed)\n", s.Requests, res.Shed)
	fmt.Fprintf(stdout, "mean TTFT       %.3f s (P90 %.3f s)\n", s.MeanTTFT.Float(), s.P90TTFT.Float())
	fmt.Fprintf(stdout, "mean TPOT       %.1f ms (P90 %.1f ms)\n", s.MeanTPOTMs, s.P90TPOTMs)
	fmt.Fprintf(stdout, "throughput      %.2f req/s (goodput %.2f req/s)\n", s.Throughput, s.Goodput)
	fmt.Fprintf(stdout, "SLO attainment  %.1f%%\n", 100*s.SLOAttainment)
	fmt.Fprintf(stdout, "faults injected %d (scheduled downtime %.1f s)\n", rl.FaultsInjected, rl.Downtime.Float())
	fmt.Fprintf(stdout, "batch aborts    %d (retried %d, shed %d)\n", rl.BatchAborts, rl.Retried, rl.Shed)
	fmt.Fprintf(stdout, "recoveries      %d (MTTR %.2f s)\n", rl.Recoveries, rl.MTTR().Float())
	fmt.Fprintf(stdout, "makespan        %.1f s\n", res.Makespan.Float())
	return nil
}

// runPressure sweeps offered load from -rate to 3× past it with the
// ext-pressure study: a shared trace and a shared KV-capacity-shrink
// fault schedule per rate, contrasting plain Bullet (no preemption),
// the admission-gate-only ablation, and the full memory-pressure
// subsystem. The output is deterministic: the same flags always print
// byte-identical tables.
func runPressure(dataset string, rate float64, n int, seed int64, stdout io.Writer) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	rates := []float64{rate, 2 * rate, 3 * rate}
	rows := experiments.ExtPressure(d, rates, n, seed, true)
	fmt.Fprint(stdout, experiments.RenderExtPressure(rows))
	return nil
}

// runQoS sweeps a mixed-tenant workload from -rate to 3× past it with
// the ext-qos study (static batching vs the SLO-feedback controller,
// per-tenant rows), then runs the 2-replica cluster arm at the top rate.
// The output is deterministic: the same flags always print byte-identical
// tables, and the cluster arm is byte-identical at every -workers value.
func runQoS(dataset string, rate float64, n int, seed int64, workers int, stdout io.Writer) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	rates := []float64{rate, 2 * rate, 3 * rate}
	rows := experiments.ExtQoS(d, rates, n, seed, workload.DefaultTenantMix())
	fmt.Fprint(stdout, experiments.RenderExtQoS(rows))
	cl := experiments.ExtQoSCluster(d, 3*rate, n, seed, workers)
	fmt.Fprint(stdout, experiments.RenderExtQoSCluster(cl))
	return nil
}

// runChaos replays the same correlated link-failure storm over a
// 4-replica cluster twice — naive router vs the router-resilience
// layer — and prints the ext-chaos table. Deterministic: the same
// flags print byte-identical tables at every -workers value.
func runChaos(dataset string, rate float64, n int, seed int64, workers int, stdout io.Writer) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	rows := experiments.ExtChaos(d, rate, n, seed, workers)
	fmt.Fprint(stdout, experiments.RenderExtChaos(rows))
	return nil
}

// runClusterSweep runs the 1/2/4-replica scale-out study through the
// forkjoin harness. By the concurrency contract the table is
// byte-identical at every -workers value and every GOMAXPROCS — the
// equivalence ci.sh pins by diffing a serial run against a parallel one.
func runClusterSweep(dataset string, rate float64, n int, seed int64, workers int, stdout io.Writer) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	rows := experiments.ExtClusterN(d, rate, n, seed, workers)
	fmt.Fprint(stdout, experiments.RenderExtCluster(rows))
	return nil
}

// runTimeline executes the run with the internal/timeline recorder
// attached across every layer (kernels, scheduling decisions, request
// lifecycles) and writes a deterministic Chrome trace-event file: the
// same flags always produce a byte-identical trace, loadable at
// ui.perfetto.dev or chrome://tracing.
func runTimeline(system, dataset string, rate float64, n int, seed int64, path string, stdout io.Writer) error {
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	res, rec := experiments.RunOneTraced(system, d, rate, n, seed, 0)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteChrome(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "system %s: %d requests, %.1fs makespan\n",
		res.System, res.Summary.Requests, res.Makespan.Float())
	fmt.Fprint(stdout, rec.Summary())
	fmt.Fprintf(stdout, "wrote %s (open at ui.perfetto.dev)\n", path)
	return nil
}

// runTraced executes the run with full kernel/decision tracing and writes
// a Chrome trace-event file viewable at chrome://tracing or Perfetto.
func runTraced(system, dataset string, rate float64, n int, seed int64, path string, stdout io.Writer) error {
	spec, cfg := experiments.Platform()
	d, err := workload.ByName(dataset)
	if err != nil {
		return err
	}
	env := serving.NewEnv(spec, cfg, dataset)

	var rec trace.Recorder
	rec.MaxEvents = 2_000_000
	env.GPU.Trace = rec.KernelHook()

	sys := experiments.NewSystem(system, env)
	if b, ok := sys.(*core.Bullet); ok {
		hook := rec.DecisionHook()
		b.Prefill.OnDecision = hook
		b.Decode.OnDecision = hook
	}
	env.OnComplete = func(m metrics.Request) {
		rec.AddRequest(m.ID, m.Arrival, m.FirstToken, m.Finish, m.InputTokens, m.OutputTokens)
	}
	res := env.Run(sys, workload.Generate(d, rate, n, seed))

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rec.WriteChromeTrace(f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "system %s: %d requests, %.1fs makespan\n", res.System, res.Summary.Requests, res.Makespan)
	sum := rec.Summary()
	lanes := make([]string, 0, len(sum))
	for lane := range sum {
		lanes = append(lanes, lane)
	}
	sort.Strings(lanes)
	for _, lane := range lanes {
		fmt.Fprintf(stdout, "  lane %-10s %s\n", lane, sum[lane])
	}
	if rec.Dropped > 0 {
		fmt.Fprintf(stdout, "  (%d events dropped past the %d-event cap)\n", rec.Dropped, rec.MaxEvents)
	}
	fmt.Fprintf(stdout, "wrote %s (open at chrome://tracing)\n", path)
	return nil
}
