package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRun drives run() in-process and compares its stdout byte for
// byte against a checked-in capture. The goldens were recorded before
// the latency-backend refactor (DESIGN.md §15), so these tests pin the
// analytic extraction to the pre-refactor output: any float reorder in
// the fluid model, the scheduler, or the renderers shows up as a diff.
func goldenRun(t *testing.T, args []string, golden string) {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("testdata", golden))
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("run(%v) exit %d, want 0\nstderr: %s", args, code, errb.String())
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("run(%v) output diverged from testdata/%s:\ngot:\n%s\nwant:\n%s",
			args, golden, out.String(), want)
	}
}

func TestGoldenDefault(t *testing.T) {
	goldenRun(t, nil, "default.golden")
}

func TestGoldenPressure(t *testing.T) {
	goldenRun(t, []string{"-pressure", "-dataset", "azure-code", "-rate", "4", "-n", "60", "-seed", "11"},
		"pressure.golden")
}

func TestGoldenQoS(t *testing.T) {
	goldenRun(t, []string{"-qos", "-dataset", "azure-code", "-rate", "10", "-n", "120", "-seed", "11", "-workers", "1"},
		"qos.golden")
}

func TestGoldenChaos(t *testing.T) {
	goldenRun(t, []string{"-chaos", "-dataset", "azure-code", "-rate", "10", "-n", "120", "-seed", "7", "-workers", "1"},
		"chaos.golden")
}

func TestGoldenClusterSweep(t *testing.T) {
	goldenRun(t, []string{"-cluster-sweep", "-workers", "1", "-dataset", "azure-code", "-rate", "8", "-n", "80", "-seed", "7"},
		"cluster.golden")
}

// TestGoldenQuickstart pins the README's quickstart example — the first
// output any user sees — byte for byte.
func TestGoldenQuickstart(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "quickstart.golden"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./examples/quickstart")
	cmd.Dir = filepath.Join("..", "..")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run ./examples/quickstart: %v\n%s", err, out)
	}
	if !bytes.Equal(out, want) {
		t.Errorf("quickstart output diverged from testdata/quickstart.golden:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

// TestBackendSampledReplay: two same-flag runs on the sampled backend
// must render byte-identical output (the draw stream is a pure function
// of -backend-seed), and must not silently fall back to the analytic
// numbers.
func TestBackendSampledReplay(t *testing.T) {
	args := []string{"-backend", "sampled", "-dataset", "azure-code", "-rate", "4", "-n", "40"}
	var a, b, errb bytes.Buffer
	if code := run(args, &a, &errb); code != 0 {
		t.Fatalf("run 1 exit %d\nstderr: %s", code, errb.String())
	}
	if code := run(args, &b, &errb); code != 0 {
		t.Fatalf("run 2 exit %d\nstderr: %s", code, errb.String())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("sampled backend replay diverged:\nrun1:\n%s\nrun2:\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "bullet+sampled") {
		t.Errorf("sampled run did not report the sampled system name:\n%s", a.String())
	}
}

func TestBackendFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-backend", "bogus"}, &out, &errb); code != 1 {
		t.Fatalf("bogus backend exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown backend") {
		t.Errorf("stderr = %q, want unknown-backend error", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-backend", "sampled", "-system", "vllm-1024"}, &out, &errb); code != 1 {
		t.Fatalf("baseline+backend exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "requires a Bullet variant") {
		t.Errorf("stderr = %q, want Bullet-variant error", errb.String())
	}
}
