// Package repro is a from-scratch Go reproduction of "Bullet: Boosting
// GPU Utilization for LLM Serving via Dynamic Spatial-Temporal
// Orchestration" (ASPLOS'26).
//
// The public API lives in the bullet subpackage; the paper's system and
// every substrate it depends on (a fluid discrete-event GPU simulator
// with SM-masked streams, the transformer operator arithmetic, a paged KV
// cache, workload generators, the performance estimator, SLO-aware
// scheduler, resource manager, concurrent engines, and the
// chunked-prefill/NanoFlow baselines) live under internal/.
//
// The benchmarks in bench_test.go regenerate every table and figure of
// the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
