// Burst load timeline: drive Bullet with a bursty Azure-Code workload and
// render an ASCII Fig. 12 — watch the scheduler re-provision SMs between
// prefill and decode as bursts arrive, and the pending queue stay flat.
//
// This example reaches below the public facade into the library's
// internal layers to access the scheduling timeline instrumentation.
//
//	go run ./examples/burstload [-rate 3] [-n 150]
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	rate := flag.Float64("rate", 3, "base load (req/s); bursts run at 3x")
	n := flag.Int("n", 150, "requests")
	flag.Parse()

	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	sys := core.New(env, core.Options{Mode: core.ModeFull, RecordTimeline: true})
	trace := workload.GenerateBursty(workload.AzureCode, *rate, 3, 8, *n, 42)
	res := env.Run(sys, trace)

	fmt.Printf("Bullet on bursty Azure-Code (base %.1f req/s, 3x bursts every 8s)\n", *rate)
	fmt.Printf("TTFT %.0f ms mean, TPOT %.1f ms, SLO %.1f%%, %d decode pauses\n\n",
		1000*res.Summary.MeanTTFT, res.Summary.MeanTPOTMs,
		100*res.Summary.SLOAttainment, sys.Decode.Pauses())

	tl := sys.Timeline
	const cols = 72
	bar := func(s *metrics.Series, t units.Seconds, max float64, glyph byte) string {
		v := s.At(t)
		w := int(v / max * 24)
		if w > 24 {
			w = 24
		}
		return fmt.Sprintf("%5.0f %s", v, strings.Repeat(string(glyph), w))
	}
	fmt.Println("  t(s)  prefill-SMs              decode-SMs               waiting")
	for i := 0; i <= cols; i += 2 {
		t := units.Over(units.Scale(res.Makespan, float64(i)), float64(cols))
		fmt.Printf("%6.1f  %-26s %-26s %s\n",
			t,
			bar(&tl.PrefillSMs, t, 108, '#'),
			bar(&tl.DecodeSMs, t, 108, '='),
			bar(&tl.Waiting, t, 12, '*'),
		)
	}

	fmt.Println("\nAlgorithm 1 branch frequencies:")
	for _, k := range []string{"reduce-decode", "reduce-prefill", "balance", "pause-decode", "handover", "prefill-only", "decode-only", "idle"} {
		if c := tl.Branches[k]; c > 0 {
			fmt.Printf("  %-15s %d\n", k, c)
		}
	}
}
