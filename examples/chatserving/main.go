// Chat serving comparison: run the same chat workload through Bullet and
// every baseline of the paper's evaluation and print a Fig. 11-style
// comparison — who meets latency targets, and at what throughput.
//
//	go run ./examples/chatserving [-rate 16] [-n 300]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/bullet"
)

func main() {
	rate := flag.Float64("rate", 16, "offered load (req/s)")
	n := flag.Int("n", 300, "requests")
	flag.Parse()

	trace, err := bullet.GenerateTrace("sharegpt", *rate, *n, 7)
	if err != nil {
		log.Fatalf("chatserving: generating trace: %v", err)
	}

	fmt.Printf("ShareGPT @ %.0f req/s, %d requests (SLO: 3.0 ms/token TTFT, 150 ms TPOT)\n\n", *rate, *n)
	fmt.Printf("%-14s  %8s  %9s  %9s  %10s  %6s\n", "system", "TTFT(ms)", "TPOT(ms)", "P90TPOT", "thr(req/s)", "SLO%")
	for _, sys := range bullet.Systems() {
		srv, err := bullet.New(bullet.Config{System: sys, Dataset: "sharegpt"})
		if err != nil {
			log.Fatalf("chatserving: building %s server: %v", sys, err)
		}
		res, err := srv.Run(trace)
		if err != nil {
			log.Fatalf("chatserving: running %s: %v", sys, err)
		}
		fmt.Printf("%-14s  %8.0f  %9.1f  %9.1f  %10.2f  %5.1f%%\n",
			sys, 1000*res.MeanTTFT, res.MeanTPOTMs, res.P90TPOTMs,
			res.Throughput, 100*res.SLOAttainment)
	}
	fmt.Println("\nBullet holds TTFT and TPOT simultaneously by running prefill and decode")
	fmt.Println("concurrently on dynamically provisioned SM partitions; the chunked systems")
	fmt.Println("trade one for the other through their token budget.")
}
