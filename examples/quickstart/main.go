// Quickstart: serve a small ShareGPT-style trace with Bullet and print
// the headline serving metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/bullet"
)

func main() {
	// A server wraps one serving system on a simulated A100. The
	// dataset choice sets the SLO targets (Table 2 of the paper).
	srv, err := bullet.New(bullet.Config{
		System:  "bullet",
		Model:   "llama-3.1-8b",
		Dataset: "sharegpt",
	})
	if err != nil {
		log.Fatalf("quickstart: building server: %v", err)
	}

	// 200 chat requests arriving as a Poisson process at 10 req/s.
	trace, err := bullet.GenerateTrace("sharegpt", 10, 200, 42)
	if err != nil {
		log.Fatalf("quickstart: generating trace: %v", err)
	}

	res, err := srv.Run(trace)
	if err != nil {
		log.Fatalf("quickstart: running trace: %v", err)
	}

	fmt.Println("Bullet on ShareGPT @ 10 req/s")
	fmt.Printf("  requests        %d (makespan %.1fs)\n", res.Requests, res.Makespan)
	fmt.Printf("  mean TTFT       %.0f ms (P90 %.0f ms)\n", 1000*res.MeanTTFT, 1000*res.P90TTFT)
	fmt.Printf("  mean TPOT       %.1f ms (P90 %.1f ms)\n", res.MeanTPOTMs, res.P90TPOTMs)
	fmt.Printf("  throughput      %.2f req/s (%.0f tok/s)\n", res.Throughput, res.TokenThru)
	fmt.Printf("  SLO attainment  %.1f%%\n", 100*res.SLOAttainment)

	// Per-request metrics are available too; show the worst TTFT.
	worst := res.PerRequest[0]
	for _, r := range res.PerRequest {
		if r.TTFT > worst.TTFT {
			worst = r
		}
	}
	fmt.Printf("  worst TTFT      %.0f ms (%s, queued %.0f ms)\n",
		1000*worst.TTFT, worst.ID, 1000*worst.QueueDelay)
}
