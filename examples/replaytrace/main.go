// Replay traces: save a generated workload to JSON, reload it, and run
// two systems on the *identical* request sequence — the apples-to-apples
// methodology behind every comparison in this repository. Also
// demonstrates exporting per-request latencies for external analysis.
//
//	go run ./examples/replaytrace [-file /tmp/trace.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/bullet"
	"repro/internal/workload"
)

func main() {
	file := flag.String("file", "/tmp/bullet-trace.json", "trace file path")
	flag.Parse()

	// 1. Generate a workload and persist it.
	tr := workload.Generate(workload.AzureCode, 5, 120, 2026)
	f, err := os.Create(*file)
	if err != nil {
		log.Fatalf("replaytrace: creating trace file: %v", err)
	}
	if err := tr.Write(f); err != nil {
		log.Fatalf("replaytrace: writing trace: %v", err)
	}
	f.Close()
	fmt.Printf("wrote %d requests (%d input tokens) to %s\n",
		len(tr.Requests), tr.TotalInputTokens(), *file)

	// 2. Reload it — simulating a trace captured elsewhere.
	g, err := os.Open(*file)
	if err != nil {
		log.Fatalf("replaytrace: reopening trace file: %v", err)
	}
	replay, err := workload.Read(g)
	g.Close()
	if err != nil {
		log.Fatalf("replaytrace: decoding trace: %v", err)
	}

	// 3. Run two systems on the identical sequence via the public API.
	reqs := make([]bullet.Request, len(replay.Requests))
	for i, r := range replay.Requests {
		reqs[i] = bullet.Request{
			ID: r.ID, Arrival: r.Arrival.Float(),
			InputTokens: r.InputTokens, OutputTokens: r.OutputTokens,
		}
	}
	for _, sys := range []string{"bullet", "sglang-1024"} {
		srv, err := bullet.New(bullet.Config{System: sys, Dataset: replay.Dataset})
		if err != nil {
			log.Fatalf("replaytrace: building %s server: %v", sys, err)
		}
		res, err := srv.Run(reqs)
		if err != nil {
			log.Fatalf("replaytrace: running %s: %v", sys, err)
		}
		fmt.Printf("%-14s TTFT %.0fms  TPOT %.1fms  SLO %.1f%%\n",
			sys, 1000*res.MeanTTFT, res.MeanTPOTMs, 100*res.SLOAttainment)

		// 4. Export the slowest five requests for inspection.
		if sys == "bullet" {
			worst := append([]bullet.RequestMetrics(nil), res.PerRequest...)
			for i := 0; i < len(worst); i++ {
				for j := i + 1; j < len(worst); j++ {
					if worst[j].TTFT > worst[i].TTFT {
						worst[i], worst[j] = worst[j], worst[i]
					}
				}
			}
			out, _ := json.MarshalIndent(worst[:5], "", "  ")
			fmt.Printf("five slowest requests under bullet:\n%s\n", out)
		}
	}
}
