// SLO tuning: sweep the offered load on the long-context summarization
// workload and find each system's maximum rate with ≥90% SLO attainment
// (the "goodput knee"). Demonstrates using the public API for capacity
// planning.
//
//	go run ./examples/slotuning [-n 200]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/bullet"
)

func main() {
	n := flag.Int("n", 200, "requests per point")
	flag.Parse()

	rates := []float64{1.0, 1.4, 1.8, 2.2, 2.6}
	systems := []string{"bullet", "sglang-1024", "sglang-2048", "nanoflow-1024"}

	fmt.Printf("arXiv-Summary goodput knee (SLO: 1.5 ms/token TTFT, 175 ms TPOT, target ≥90%%)\n\n")
	fmt.Printf("%-14s", "rate(req/s)")
	for _, r := range rates {
		fmt.Printf("  %6.1f", r)
	}
	fmt.Println("   knee")

	for _, sys := range systems {
		srv, err := bullet.New(bullet.Config{System: sys, Dataset: "arxiv-summary"})
		if err != nil {
			log.Fatalf("slotuning: building %s server: %v", sys, err)
		}
		fmt.Printf("%-14s", sys)
		knee := 0.0
		for _, rate := range rates {
			trace, err := bullet.GenerateTrace("arxiv-summary", rate, *n, 42)
			if err != nil {
				log.Fatalf("slotuning: generating trace at %.1f req/s: %v", rate, err)
			}
			res, err := srv.Run(trace)
			if err != nil {
				log.Fatalf("slotuning: running %s at %.1f req/s: %v", sys, rate, err)
			}
			fmt.Printf("  %5.1f%%", 100*res.SLOAttainment)
			if res.SLOAttainment >= 0.9 && rate > knee {
				knee = rate
			}
		}
		if knee > 0 {
			fmt.Printf("   %.1f req/s\n", knee)
		} else {
			fmt.Printf("   <%.1f req/s\n", rates[0])
		}
	}
	fmt.Println("\nThe knee is the highest sustainable rate: Bullet's concurrent phases keep")
	fmt.Println("prefill off the decode critical path, pushing the knee past the chunked systems.")
}
