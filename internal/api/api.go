// Package api exposes the reproduction over HTTP: submit serving
// experiments and retrieve results as JSON. It lets non-Go tooling
// (notebooks, dashboards) drive the simulator.
//
// Endpoints:
//
//	GET  /v1/systems            list runnable systems
//	GET  /v1/datasets           list workload generators
//	GET  /v1/experiments        list regenerable paper experiments
//	POST /v1/run                run one experiment {system,dataset,rate,n,seed}
//	POST /v1/compare            run several systems on one trace
//	GET  /healthz               liveness
package api

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"

	"repro/bullet"
)

// RunRequest is the POST /v1/run payload.
type RunRequest struct {
	System  string  `json:"system"`
	Dataset string  `json:"dataset"`
	Rate    float64 `json:"rate"`
	N       int     `json:"n"`
	Seed    int64   `json:"seed"`
	// IncludePerRequest adds per-request latencies to the response.
	IncludePerRequest bool `json:"includePerRequest"`
}

// CompareRequest is the POST /v1/compare payload.
type CompareRequest struct {
	Systems []string `json:"systems"`
	Dataset string   `json:"dataset"`
	Rate    float64  `json:"rate"`
	N       int      `json:"n"`
	Seed    int64    `json:"seed"`
}

// maxRequests bounds a single API-run trace.
const maxRequests = 5000

// Handler returns the API's http.Handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/systems", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"systems": bullet.Systems()})
	})
	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"datasets": bullet.Datasets()})
	})
	mux.HandleFunc("POST /v1/run", handleRun)
	mux.HandleFunc("POST /v1/compare", handleCompare)
	return mux
}

func handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return
	}
	res, err := runOne(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if !req.IncludePerRequest {
		res.PerRequest = nil
	}
	writeJSON(w, http.StatusOK, res)
}

func handleCompare(w http.ResponseWriter, r *http.Request) {
	var req CompareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("parsing request: %w", err))
		return
	}
	if len(req.Systems) == 0 {
		req.Systems = bullet.Systems()
	}
	if len(req.Systems) > 16 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("too many systems (%d > 16)", len(req.Systems)))
		return
	}
	out := make(map[string]*bullet.Result, len(req.Systems))
	for _, sys := range req.Systems {
		res, err := runOne(RunRequest{
			System: sys, Dataset: req.Dataset, Rate: req.Rate, N: req.N, Seed: req.Seed,
		})
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("system %s: %w", sys, err))
			return
		}
		res.PerRequest = nil
		out[sys] = &res
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset": req.Dataset, "rate": req.Rate, "n": req.N, "results": out,
	})
}

func runOne(req RunRequest) (bullet.Result, error) {
	if req.N <= 0 {
		req.N = 200
	}
	if req.N > maxRequests {
		return bullet.Result{}, fmt.Errorf("n=%d exceeds the %d-request cap", req.N, maxRequests)
	}
	if req.Rate <= 0 {
		req.Rate = 8
	}
	if req.Dataset == "" {
		req.Dataset = "sharegpt"
	}
	srv, err := bullet.New(bullet.Config{System: req.System, Dataset: req.Dataset})
	if err != nil {
		return bullet.Result{}, err
	}
	trace, err := bullet.GenerateTrace(req.Dataset, req.Rate, req.N, req.Seed)
	if err != nil {
		return bullet.Result{}, err
	}
	return srv.Run(trace)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("api: encoding response: %v", err)
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
