package api

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func do(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 {
		// Router-level rejections (405) are plain text; that's fine.
		_ = json.Unmarshal(rec.Body.Bytes(), &out)
	}
	return rec, out
}

func TestHealthz(t *testing.T) {
	rec, out := do(t, Handler(), "GET", "/healthz", "")
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", rec.Code, out)
	}
}

func TestListings(t *testing.T) {
	h := Handler()
	rec, out := do(t, h, "GET", "/v1/systems", "")
	if rec.Code != 200 || len(out["systems"].([]any)) < 5 {
		t.Fatalf("systems: %d %v", rec.Code, out)
	}
	rec, out = do(t, h, "GET", "/v1/datasets", "")
	if rec.Code != 200 || len(out["datasets"].([]any)) != 3 {
		t.Fatalf("datasets: %d %v", rec.Code, out)
	}
}

func TestRun(t *testing.T) {
	rec, out := do(t, Handler(), "POST", "/v1/run",
		`{"system":"bullet","dataset":"sharegpt","rate":4,"n":20,"seed":1}`)
	if rec.Code != 200 {
		t.Fatalf("run: %d %v", rec.Code, out)
	}
	if out["Requests"].(float64) != 20 {
		t.Fatalf("requests = %v", out["Requests"])
	}
	if out["MeanTTFT"].(float64) <= 0 {
		t.Fatalf("MeanTTFT = %v", out["MeanTTFT"])
	}
	if out["PerRequest"] != nil {
		t.Fatal("per-request included without opt-in")
	}
}

func TestRunPerRequest(t *testing.T) {
	rec, out := do(t, Handler(), "POST", "/v1/run",
		`{"system":"sglang-1024","dataset":"azure-code","rate":2,"n":10,"seed":1,"includePerRequest":true}`)
	if rec.Code != 200 {
		t.Fatalf("run: %d %v", rec.Code, out)
	}
	if got := len(out["PerRequest"].([]any)); got != 10 {
		t.Fatalf("per-request entries = %d", got)
	}
}

func TestRunDefaults(t *testing.T) {
	rec, out := do(t, Handler(), "POST", "/v1/run", `{"system":"bullet","n":10}`)
	if rec.Code != 200 {
		t.Fatalf("defaulted run failed: %d %v", rec.Code, out)
	}
}

func TestRunValidation(t *testing.T) {
	h := Handler()
	cases := []string{
		`{"system":"no-such-system","n":5}`,
		`{"system":"bullet","dataset":"imagenet","n":5}`,
		`{"system":"bullet","n":999999}`,
		`{{{`,
	}
	for _, body := range cases {
		rec, out := do(t, h, "POST", "/v1/run", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: code %d %v", body, rec.Code, out)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("body %q: no error field", body)
		}
	}
}

func TestCompare(t *testing.T) {
	rec, out := do(t, Handler(), "POST", "/v1/compare",
		`{"systems":["bullet","sglang-1024"],"dataset":"azure-code","rate":3,"n":15,"seed":2}`)
	if rec.Code != 200 {
		t.Fatalf("compare: %d %v", rec.Code, out)
	}
	results := out["results"].(map[string]any)
	if len(results) != 2 {
		t.Fatalf("results = %v", results)
	}
	for sys, v := range results {
		if v.(map[string]any)["Requests"].(float64) != 15 {
			t.Fatalf("%s incomplete: %v", sys, v)
		}
	}
}

func TestCompareTooManySystems(t *testing.T) {
	many := `{"systems":[` + strings.Repeat(`"bullet",`, 16) + `"bullet"],"n":5}`
	rec, _ := do(t, Handler(), "POST", "/v1/compare", many)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("17 systems accepted: %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	rec, _ := do(t, Handler(), "GET", "/v1/run", "")
	if rec.Code == http.StatusOK {
		t.Fatal("GET /v1/run should not succeed")
	}
}
