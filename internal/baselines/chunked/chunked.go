// Package chunked implements the chunked-prefill hybrid-batch serving
// engines Bullet is evaluated against (§2.3, §4.1): SARATHI-style token
// budgets as deployed in vLLM V1 and SGLang.
//
// Each iteration fills a fixed token budget with all active decode
// requests first and then as many prefill tokens as fit; longer prompts
// are split into chunks across iterations, forcing attention to re-read
// every earlier chunk's KV cache (the N(N+1)/2 reload effect). The whole
// hybrid batch executes in lockstep on the full GPU, which is precisely
// the throughput-latency coupling Bullet removes.
package chunked

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Scheme configures one chunked-prefill variant.
type Scheme struct {
	// Name identifies the variant ("vllm-1024", "sglang-2048", ...).
	Name string
	// ChunkSize is the per-iteration token budget.
	ChunkSize int
	// MaxBatch caps concurrent decode requests.
	MaxBatch int
	// PackPrefills lets one iteration chunk several queued prompts
	// (SGLang packs; our vLLM configuration chunks one prompt at a
	// time).
	PackPrefills bool
	// IterOverhead is the CPU scheduling cost per iteration.
	IterOverhead sim.Time
}

// VLLM1024 approximates vLLM V1 with a 1024-token budget. The heavier
// per-iteration CPU path (no packed prefills, ~3 ms Python scheduling per
// hybrid iteration) reflects the slower TTFT tails the paper measures.
func VLLM1024() Scheme {
	return Scheme{Name: "vllm-1024", ChunkSize: 1024, MaxBatch: 256, PackPrefills: false, IterOverhead: 3e-3}
}

// SGLang1024 approximates SGLang v0.3 with a 1024-token budget.
func SGLang1024() Scheme {
	return Scheme{Name: "sglang-1024", ChunkSize: 1024, MaxBatch: 256, PackPrefills: true, IterOverhead: 1.5e-3}
}

// SGLang2048 approximates SGLang v0.3 with a 2048-token budget.
func SGLang2048() Scheme {
	return Scheme{Name: "sglang-2048", ChunkSize: 2048, MaxBatch: 256, PackPrefills: true, IterOverhead: 1.5e-3}
}

// req tracks one request through chunked prefill and decode.
type req struct {
	w            workload.Request
	seq          *kvcache.Sequence
	prefillStart sim.Time
	firstToken   sim.Time
	generated    int
	prefilled    int // prompt tokens processed so far
	admitted     bool
}

// HybridBatchSample records one iteration's budget composition, the
// Fig. 12(b) instrumentation.
type HybridBatchSample struct {
	T            sim.Time
	DecodeTokens int
	ChunkTokens  int
	Waiting      int
}

// Engine is a chunked-prefill serving engine; it implements
// serving.System.
type Engine struct {
	env    *serving.Env
	scheme Scheme
	stream *gpusim.Stream

	waiting []*req // FCFS; head may be mid-prefill
	decode  []*req
	active  bool

	iterations int
	// OnIteration observes each hybrid batch (timeline figures).
	OnIteration func(HybridBatchSample)
}

// New creates a chunked-prefill engine on an environment.
func New(env *serving.Env, scheme Scheme) *Engine {
	if scheme.ChunkSize <= 0 || scheme.MaxBatch <= 0 {
		panic(fmt.Sprintf("chunked: invalid scheme %+v", scheme))
	}
	return &Engine{env: env, scheme: scheme, stream: env.GPU.NewStream(env.GPU.FullMask())}
}

// Name implements serving.System.
func (e *Engine) Name() string { return e.scheme.Name }

// Iterations returns the number of hybrid batches executed.
func (e *Engine) Iterations() int { return e.iterations }

// Submit implements serving.System.
func (e *Engine) Submit(r workload.Request) {
	e.waiting = append(e.waiting, &req{w: r})
	if !e.active {
		e.active = true
		e.cycle()
	}
}

// admit reserves KV (input + output, so decode never preempts) for queued
// requests about to enter prefill.
func (e *Engine) admit(r *req) bool {
	if r.admitted {
		return true
	}
	need := r.w.InputTokens + r.w.OutputTokens
	if !e.env.KV.CanAllocate(need) {
		return false
	}
	seq, err := e.env.KV.Allocate(r.w.ID, need, e.scheme.Name)
	if err != nil {
		return false
	}
	r.seq = seq
	r.admitted = true
	r.prefillStart = e.env.Sim.Now()
	return true
}

// cycle executes one hybrid-batch iteration.
func (e *Engine) cycle() {
	if len(e.decode) == 0 && len(e.waiting) == 0 {
		e.active = false
		return
	}

	// Fill the budget: decode tokens first (§2.3.1), then prefill
	// chunks from the queue head.
	budget := e.scheme.ChunkSize - len(e.decode)
	if budget < 0 {
		budget = 0
	}
	var chunkReqs []*req
	var chunkLens, histLens []int
	for _, r := range e.waiting {
		if budget == 0 {
			break
		}
		if !e.admit(r) {
			break // KV full: preserve FCFS order, retry next iteration
		}
		take := r.w.InputTokens - r.prefilled
		if take > budget {
			take = budget
		}
		chunkReqs = append(chunkReqs, r)
		chunkLens = append(chunkLens, take)
		histLens = append(histLens, r.prefilled)
		budget -= take
		if !e.scheme.PackPrefills {
			break
		}
	}

	if len(e.decode) == 0 && len(chunkReqs) == 0 {
		// Queue blocked on KV with nothing decoding would deadlock; it
		// cannot happen because completions retrigger cycles, but fail
		// loudly if the invariant breaks.
		panic(fmt.Sprintf("chunked: %s stalled with %d waiting", e.scheme.Name, len(e.waiting)))
	}

	avgCtx := 0.0
	for _, r := range e.decode {
		avgCtx += float64(r.w.InputTokens + r.generated)
	}
	if len(e.decode) > 0 {
		avgCtx /= float64(len(e.decode))
	}

	e.iterations++
	if e.OnIteration != nil {
		chunkTotal := 0
		for _, n := range chunkLens {
			chunkTotal += n
		}
		e.OnIteration(HybridBatchSample{
			T: e.env.Sim.Now(), DecodeTokens: len(e.decode),
			ChunkTokens: chunkTotal, Waiting: len(e.waiting) - len(chunkReqs),
		})
	}

	// One lockstep pass over all layers plus the LM head.
	for l := 0; l < e.env.Model.NumLayers; l++ {
		for _, k := range e.env.Model.HybridLayerKernels(chunkLens, histLens, len(e.decode), units.Tokens(avgCtx), "hybrid") {
			e.env.GPU.Launch(e.stream, k, nil)
		}
	}
	headRows := len(e.decode)
	for i, r := range chunkReqs {
		if r.prefilled+chunkLens[i] >= r.w.InputTokens {
			headRows++
		}
	}
	if headRows > 0 {
		e.env.GPU.Launch(e.stream, e.env.Model.LMHeadKernel(headRows, "hybrid"), nil)
	}

	e.env.GPU.Synchronize(e.stream, func() {
		now := e.env.Sim.Now()
		// Advance decodes.
		kept := e.decode[:0]
		for _, r := range e.decode {
			r.generated++
			if r.generated >= r.w.OutputTokens {
				e.finish(r, now)
				continue
			}
			kept = append(kept, r)
		}
		e.decode = kept
		// Advance prefills.
		for i, r := range chunkReqs {
			r.prefilled += chunkLens[i]
			if r.prefilled < r.w.InputTokens {
				continue
			}
			// Prefill complete: first token out.
			r.firstToken = now
			r.generated = 1
			e.dequeue(r)
			if r.generated >= r.w.OutputTokens {
				e.finish(r, now)
			} else {
				e.decode = append(e.decode, r)
			}
		}
		e.env.Sim.PostAfter(e.scheme.IterOverhead, e.cycle)
	})
}

func (e *Engine) dequeue(r *req) {
	for i, w := range e.waiting {
		if w == r {
			e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
			return
		}
	}
	panic("chunked: request not in waiting queue")
}

func (e *Engine) finish(r *req, now sim.Time) {
	r.generated = r.w.OutputTokens
	e.env.KV.MustFree(r.seq)
	e.env.Complete(metrics.Request{
		ID:           r.w.ID,
		Dataset:      r.w.Dataset,
		Arrival:      r.w.Arrival,
		PrefillStart: r.prefillStart,
		FirstToken:   r.firstToken,
		Finish:       now,
		InputTokens:  r.w.InputTokens,
		OutputTokens: r.w.OutputTokens,
	})
}
