package chunked

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

func run(t testing.TB, scheme Scheme, d workload.Dataset, rate float64, n int, seed int64) serving.Result {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), d.Name)
	e := New(env, scheme)
	return env.Run(e, workload.Generate(d, rate, n, seed))
}

func TestCompletesAllRequests(t *testing.T) {
	for _, scheme := range []Scheme{VLLM1024(), SGLang1024(), SGLang2048()} {
		scheme := scheme
		t.Run(scheme.Name, func(t *testing.T) {
			res := run(t, scheme, workload.ShareGPT, 3, 30, 1)
			if res.Summary.Requests != 30 {
				t.Fatalf("completed %d/30", res.Summary.Requests)
			}
			if res.Summary.MeanTTFT <= 0 {
				t.Fatalf("bad summary %+v", res.Summary)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, SGLang1024(), workload.AzureCode, 2, 20, 9)
	b := run(t, SGLang1024(), workload.AzureCode, 2, 20, 9)
	if a.Summary != b.Summary {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestLargerChunkImprovesTTFTButHurtsTPOT(t *testing.T) {
	// The biased tradeoff of §2.3: a 2048 budget prefills long prompts
	// in half the iterations (better TTFT) but each hybrid iteration is
	// slower (worse TPOT). The effect shows under sustained load, when
	// decode tokens constantly ride prefill-bearing iterations.
	small := run(t, SGLang1024(), workload.AzureCode, 8, 100, 5)
	large := run(t, SGLang2048(), workload.AzureCode, 8, 100, 5)
	if large.Summary.MeanTTFT >= small.Summary.MeanTTFT {
		t.Fatalf("2048 TTFT %v not better than 1024 %v",
			large.Summary.MeanTTFT, small.Summary.MeanTTFT)
	}
	if large.Summary.MeanTPOTMs <= small.Summary.MeanTPOTMs {
		t.Fatalf("2048 TPOT %v not worse than 1024 %v",
			large.Summary.MeanTPOTMs, small.Summary.MeanTPOTMs)
	}
}

func TestLongPromptChunksAcrossIterations(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "arxiv-summary")
	e := New(env, SGLang1024())
	trace := &workload.Trace{Dataset: "arxiv-summary", Rate: 1, Requests: []workload.Request{
		{ID: "long", Arrival: 0.001, InputTokens: 8192, OutputTokens: 4, Dataset: "arxiv-summary"},
	}}
	res := env.Run(e, trace)
	// 8192 tokens at a 1024 budget need 8 prefill iterations plus 3
	// decode iterations.
	if e.Iterations() != 11 {
		t.Fatalf("iterations = %d, want 11", e.Iterations())
	}
	r := res.Requests[0]
	if r.TTFT() <= 0 || r.Finish <= r.FirstToken {
		t.Fatalf("bad record %+v", r)
	}
}

func TestHybridBatchSharesBudget(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	e := New(env, SGLang1024())
	var samples []HybridBatchSample
	e.OnIteration = func(s HybridBatchSample) { samples = append(samples, s) }
	trace := workload.Generate(workload.ShareGPT, 10, 40, 3)
	env.Run(e, trace)
	sawMixed := false
	for _, s := range samples {
		if s.DecodeTokens+s.ChunkTokens > e.scheme.ChunkSize {
			t.Fatalf("budget exceeded: %+v", s)
		}
		if s.DecodeTokens > 0 && s.ChunkTokens > 0 {
			sawMixed = true
		}
	}
	if !sawMixed {
		t.Fatal("no hybrid (decode+prefill) iterations observed")
	}
}

func TestPackPrefillsPacksMultiplePrompts(t *testing.T) {
	mk := func(pack bool) int {
		env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
		s := SGLang1024()
		s.PackPrefills = pack
		e := New(env, s)
		reqs := make([]workload.Request, 6)
		for i := range reqs {
			reqs[i] = workload.Request{
				ID: string(rune('a' + i)), Arrival: 0.001, InputTokens: 100,
				OutputTokens: 2, Dataset: "sharegpt",
			}
		}
		env.Run(e, &workload.Trace{Dataset: "sharegpt", Rate: 1, Requests: reqs})
		return e.Iterations()
	}
	packed := mk(true)
	unpacked := mk(false)
	if packed >= unpacked {
		t.Fatalf("packing (%d iters) not fewer than unpacked (%d)", packed, unpacked)
	}
}

func TestInvalidSchemePanics(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	defer func() {
		if recover() == nil {
			t.Fatal("zero chunk size accepted")
		}
	}()
	New(env, Scheme{Name: "bad"})
}

func BenchmarkSGLang1024ShareGPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run(b, SGLang1024(), workload.ShareGPT, 5, 30, 1)
	}
}
