// Package disagg implements a prefill/decode disaggregation baseline in
// the style of DistServe/Splitwise (§5, Related Works): the two phases
// run on *separate physical GPUs*, eliminating interference entirely at
// the cost of a second device and of migrating each request's KV cache
// across the interconnect.
//
// The paper positions Bullet as orthogonal to disaggregation (single-GPU
// deployments, and the transitional mixed instances disaggregated systems
// need); this engine exists to quantify that comparison: disaggregation
// buys clean latency isolation but pays KV-migration latency and halves
// per-GPU throughput, while Bullet reaches a similar operating point on
// one device.
package disagg

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config shapes the disaggregated pair.
type Config struct {
	// LinkBandwidth is the KV migration path (NVLink ~300 GB/s;
	// PCIe 4.0 x16 ~25 GB/s — the paper notes disaggregation demands
	// high-bandwidth interconnects).
	LinkBandwidth units.BytesPerSec
	// LinkLatency is the per-migration fixed cost (handshake, launch).
	LinkLatency sim.Time
	// MaxPrefillTokens bounds one prefill batch on the prefill GPU.
	MaxPrefillTokens int
	MaxPrefillReqs   int
	// MaxBatch bounds the decode batch on the decode GPU.
	MaxBatch int
	// CycleOverhead is the per-iteration CPU cost on each instance.
	CycleOverhead sim.Time
}

// DefaultConfig uses an NVLink-class interconnect.
func DefaultConfig() Config {
	return Config{
		LinkBandwidth:    300e9,
		LinkLatency:      50e-6,
		MaxPrefillTokens: 16384,
		MaxPrefillReqs:   8,
		MaxBatch:         256,
		CycleOverhead:    150e-6,
	}
}

// PCIeConfig uses a commodity PCIe interconnect, the regime where the
// paper argues disaggregation struggles.
func PCIeConfig() Config {
	c := DefaultConfig()
	c.LinkBandwidth = 25e9
	c.LinkLatency = 200e-6
	return c
}

type req struct {
	w            workload.Request
	prefillSeq   *kvcache.Sequence // on the prefill GPU
	decodeSeq    *kvcache.Sequence // on the decode GPU
	prefillStart sim.Time
	firstToken   sim.Time
	generated    int
}

// Engine implements serving.System over two simulated GPUs. The
// environment's GPU and KV pool serve the decode side; the engine creates
// the prefill device and its pool internally on the same simulation.
type Engine struct {
	env *serving.Env
	cfg Config

	prefillGPU *gpusim.GPU
	prefillKV  *kvcache.Pool
	pStream    *gpusim.Stream
	dStream    *gpusim.Stream

	waiting     []*req
	prefillRun  bool
	migrating   []*req // waiting for decode-side KV
	decode      []*req
	pending     []*req
	decodeRun   bool
	migrations  int
	linkBusyTil sim.Time
}

// New creates a disaggregated engine pair.
func New(env *serving.Env, cfg Config) *Engine {
	if cfg.LinkBandwidth <= 0 || cfg.MaxBatch <= 0 || cfg.MaxPrefillReqs <= 0 || cfg.MaxPrefillTokens <= 0 {
		panic(fmt.Sprintf("disagg: invalid config %+v", cfg))
	}
	pGPU := gpusim.New(env.Sim, env.GPU.Spec)
	blocks := env.KV.TotalBlocks()
	e := &Engine{
		env:        env,
		cfg:        cfg,
		prefillGPU: pGPU,
		prefillKV:  kvcache.NewPool(blocks, env.KV.BlockTokens()),
		pStream:    pGPU.NewStream(pGPU.FullMask()),
		dStream:    env.GPU.NewStream(env.GPU.FullMask()),
	}
	return e
}

// Name implements serving.System.
func (e *Engine) Name() string { return "disagg-2gpu" }

// Migrations returns the number of KV cache transfers performed.
func (e *Engine) Migrations() int { return e.migrations }

// PrefillKVUsed exposes the prefill-side pool occupancy for invariant
// checks.
func (e *Engine) PrefillKVUsed() int { return e.prefillKV.UsedBlocks() }

// Submit implements serving.System.
func (e *Engine) Submit(r workload.Request) {
	e.waiting = append(e.waiting, &req{w: r})
	if !e.prefillRun {
		e.prefillRun = true
		e.env.Sim.PostAfter(0, e.prefillCycle)
	}
}

// prefillCycle runs one whole-sequence prefill batch on the prefill GPU.
func (e *Engine) prefillCycle() {
	if len(e.waiting) == 0 {
		e.prefillRun = false
		return
	}
	now := e.env.Sim.Now()
	var batch []*req
	tokens := 0
	for len(e.waiting) > 0 && len(batch) < e.cfg.MaxPrefillReqs {
		r := e.waiting[0]
		if len(batch) > 0 && tokens+r.w.InputTokens > e.cfg.MaxPrefillTokens {
			break
		}
		// Prefill-side KV holds only the input until migration.
		seq, err := e.prefillKV.Allocate(r.w.ID+"/p", r.w.InputTokens, "disagg-prefill")
		if err != nil {
			break
		}
		r.prefillSeq = seq
		r.prefillStart = now
		batch = append(batch, r)
		tokens += r.w.InputTokens
		e.waiting = e.waiting[1:]
	}
	if len(batch) == 0 {
		// Prefill pool exhausted: retry after migrations drain it.
		e.prefillRun = false
		return
	}
	seqLens := make([]int, len(batch))
	histLens := make([]int, len(batch))
	for i, r := range batch {
		seqLens[i] = r.w.InputTokens
	}
	for l := 0; l < e.env.Model.NumLayers; l++ {
		for _, k := range e.env.Model.PrefillBatchLayerKernels(seqLens, histLens, "prefill") {
			e.prefillGPU.Launch(e.pStream, k, nil)
		}
	}
	e.prefillGPU.Launch(e.pStream, e.env.Model.LMHeadKernel(len(batch), "prefill"), nil)
	e.prefillGPU.Synchronize(e.pStream, func() {
		done := e.env.Sim.Now()
		for _, r := range batch {
			r.firstToken = done
			r.generated = 1
			e.startMigration(r)
		}
		e.env.Sim.PostAfter(e.cfg.CycleOverhead, e.prefillCycle)
	})
}

// startMigration ships a request's KV cache across the interconnect. The
// link is serialized: transfers queue behind each other.
func (e *Engine) startMigration(r *req) {
	if r.generated >= r.w.OutputTokens {
		// Single-token request: nothing to decode; complete directly.
		e.prefillKV.MustFree(r.prefillSeq)
		r.prefillSeq = nil
		e.complete(r, r.firstToken)
		e.kickPrefill()
		return
	}
	now := e.env.Sim.Now()
	kvBytes := units.Scale(e.env.Model.KVBytesPerToken(), float64(r.w.InputTokens))
	start := now
	if e.linkBusyTil > start {
		start = e.linkBusyTil
	}
	finish := start + e.cfg.LinkLatency + kvBytes.Div(e.cfg.LinkBandwidth)
	e.linkBusyTil = finish
	e.migrations++
	e.env.Sim.Post(finish, func() {
		e.prefillKV.MustFree(r.prefillSeq)
		r.prefillSeq = nil
		e.migrating = append(e.migrating, r)
		e.admitMigrated()
		e.kickPrefill()
	})
}

// kickPrefill restarts the prefill loop if it stalled on pool pressure.
func (e *Engine) kickPrefill() {
	if !e.prefillRun && len(e.waiting) > 0 {
		e.prefillRun = true
		e.env.Sim.PostAfter(0, e.prefillCycle)
	}
}

// admitMigrated moves migrated requests into the decode batch as
// decode-side KV allows.
func (e *Engine) admitMigrated() {
	kept := e.migrating[:0]
	for _, r := range e.migrating {
		need := r.w.InputTokens + r.w.OutputTokens
		seq, err := e.env.KV.Allocate(r.w.ID+"/d", need, "disagg-decode")
		if err != nil {
			kept = append(kept, r)
			continue
		}
		r.decodeSeq = seq
		e.pending = append(e.pending, r)
	}
	e.migrating = kept
	if len(e.pending) > 0 && !e.decodeRun {
		e.decodeRun = true
		e.env.Sim.PostAfter(0, e.decodeCycle)
	}
}

// decodeCycle runs one decode iteration on the decode GPU.
func (e *Engine) decodeCycle() {
	for len(e.pending) > 0 && len(e.decode) < e.cfg.MaxBatch {
		e.decode = append(e.decode, e.pending[0])
		e.pending = e.pending[1:]
	}
	if len(e.decode) == 0 {
		e.decodeRun = false
		return
	}
	bs := len(e.decode)
	ctx := 0
	for _, r := range e.decode {
		ctx += r.w.InputTokens + r.generated
	}
	avgCtx := float64(ctx) / float64(bs)
	step := e.env.Model.DecodeStepKernel(bs, units.Tokens(avgCtx), "decode")
	e.env.GPU.Launch(e.dStream, step, func(gpusim.KernelRecord) {
		now := e.env.Sim.Now()
		kept := e.decode[:0]
		freed := false
		for _, r := range e.decode {
			r.generated++
			if r.generated >= r.w.OutputTokens {
				e.env.KV.MustFree(r.decodeSeq)
				r.decodeSeq = nil
				freed = true
				e.complete(r, now)
				continue
			}
			kept = append(kept, r)
		}
		e.decode = kept
		if freed {
			e.admitMigrated()
		}
		e.env.Sim.PostAfter(e.cfg.CycleOverhead, e.decodeCycle)
	})
}

func (e *Engine) complete(r *req, now sim.Time) {
	e.env.Complete(metrics.Request{
		ID:           r.w.ID,
		Dataset:      r.w.Dataset,
		Arrival:      r.w.Arrival,
		PrefillStart: r.prefillStart,
		FirstToken:   r.firstToken,
		Finish:       now,
		InputTokens:  r.w.InputTokens,
		OutputTokens: r.w.OutputTokens,
	})
}
