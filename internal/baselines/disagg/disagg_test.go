package disagg

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

func run(t testing.TB, cfg Config, d workload.Dataset, rate float64, n int, seed int64) (*Engine, serving.Result) {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), d.Name)
	e := New(env, cfg)
	res := env.Run(e, workload.Generate(d, rate, n, seed))
	return e, res
}

func TestCompletesAllRequests(t *testing.T) {
	e, res := run(t, DefaultConfig(), workload.ShareGPT, 4, 30, 1)
	if res.Summary.Requests != 30 {
		t.Fatalf("completed %d/30", res.Summary.Requests)
	}
	if e.PrefillKVUsed() != 0 {
		t.Fatalf("prefill pool leaked %d blocks", e.PrefillKVUsed())
	}
	if e.Migrations() == 0 {
		t.Fatal("no migrations recorded")
	}
}

func TestDeterminism(t *testing.T) {
	_, a := run(t, DefaultConfig(), workload.AzureCode, 2, 20, 5)
	_, b := run(t, DefaultConfig(), workload.AzureCode, 2, 20, 5)
	if a.Summary != b.Summary {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestMigrationLatencyVisible(t *testing.T) {
	// A single request's decode start is delayed by KV migration: over
	// PCIe the 2048-token KV (2048 × 131072 B ≈ 268 MB) costs ~10.7 ms
	// versus ~0.9 ms on NVLink.
	mk := func(cfg Config) units.Seconds {
		env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
		e := New(env, cfg)
		trace := &workload.Trace{Dataset: "sharegpt", Rate: 1, Requests: []workload.Request{
			{ID: "solo", Arrival: 0.001, InputTokens: 2048, OutputTokens: 2, Dataset: "sharegpt"},
		}}
		res := env.Run(e, trace)
		r := res.Requests[0]
		return r.Finish - r.FirstToken // one decode step + migration
	}
	nvlink := mk(DefaultConfig())
	pcie := mk(PCIeConfig())
	if pcie <= nvlink {
		t.Fatalf("PCIe migration (%v) not slower than NVLink (%v)", pcie, nvlink)
	}
	if pcie-nvlink < 8e-3 {
		t.Fatalf("migration gap = %v, want ≳ 8ms for 268MB over PCIe", pcie-nvlink)
	}
}

func TestIsolationGivesCleanTPOT(t *testing.T) {
	// With a whole GPU dedicated to decode, TPOT is unaffected by heavy
	// prefill load: compare against the chunked paradigm indirectly by
	// asserting decode steps stay near the isolated step time.
	_, res := run(t, DefaultConfig(), workload.AzureCode, 5, 80, 3)
	if res.Summary.Requests != 80 {
		t.Fatalf("completed %d", res.Summary.Requests)
	}
	// Azure decode batches here are small; isolated steps are ~10-25 ms.
	if res.Summary.P90TPOTMs > 60 {
		t.Fatalf("P90 TPOT %v ms: decode not isolated", res.Summary.P90TPOTMs)
	}
}

func TestSingleTokenRequestSkipsMigration(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	e := New(env, DefaultConfig())
	trace := &workload.Trace{Dataset: "sharegpt", Rate: 1, Requests: []workload.Request{
		{ID: "one", Arrival: 0.001, InputTokens: 512, OutputTokens: 1, Dataset: "sharegpt"},
	}}
	res := env.Run(e, trace)
	if e.Migrations() != 0 {
		t.Fatalf("migrated a single-token request")
	}
	if r := res.Requests[0]; r.FirstToken != r.Finish {
		t.Fatalf("single-token record: %+v", r)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	New(env, Config{})
}

func BenchmarkDisaggAzure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run(b, DefaultConfig(), workload.AzureCode, 3, 30, 1)
	}
}
