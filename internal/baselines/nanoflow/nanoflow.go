// Package nanoflow approximates NanoFlow (Zhu et al., 2024), the
// strongest chunked-prefill baseline in the paper's evaluation (§2.4,
// Fig. 3b): hybrid batches are split into nano-batches whose
// compute-bound, memory-bound and network operators overlap through a
// carefully tuned static pipeline of resized kernels and CUDA streams.
//
// We model the *effect* of that pipeline rather than its mechanism: each
// hybrid-batch layer executes as a single fluid kernel carrying the
// layer's total FLOPs and bytes, so the simulator overlaps the layer's
// GEMM compute with its attention/KV traffic perfectly — the best case of
// NanoFlow's intra-device parallelism. The approximation preserves the
// paper's critique automatically: as chunked attention re-reads ever more
// KV cache, the memory term grows past the compute term and the overlap
// benefit vanishes, while the token budget, KV reloads and lockstep
// scheduling of chunked prefill all remain.
package nanoflow

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config shapes the engine.
type Config struct {
	// ChunkSize is the hybrid-batch token budget (paper: 1024).
	ChunkSize int
	// PipelineEfficiency discounts the ideal overlap: NanoFlow's static
	// nano-batch pipeline cannot keep both units perfectly busy at
	// phase boundaries.
	PipelineEfficiency float64
	// IterOverhead is the per-iteration CPU cost.
	IterOverhead sim.Time
}

// DefaultConfig matches the paper's evaluated configuration.
func DefaultConfig() Config {
	return Config{ChunkSize: 1024, PipelineEfficiency: 0.88, IterOverhead: 0.8e-3}
}

type req struct {
	w            workload.Request
	seq          *kvcache.Sequence
	prefillStart sim.Time
	firstToken   sim.Time
	generated    int
	prefilled    int
	admitted     bool
}

// Engine implements serving.System.
type Engine struct {
	env    *serving.Env
	cfg    Config
	stream *gpusim.Stream

	waiting []*req
	decode  []*req
	active  bool

	iterations int
}

// New creates a NanoFlow-style engine.
func New(env *serving.Env, cfg Config) *Engine {
	if cfg.ChunkSize <= 0 || cfg.PipelineEfficiency <= 0 || cfg.PipelineEfficiency > 1 {
		panic(fmt.Sprintf("nanoflow: invalid config %+v", cfg))
	}
	return &Engine{env: env, cfg: cfg, stream: env.GPU.NewStream(env.GPU.FullMask())}
}

// Name implements serving.System.
func (e *Engine) Name() string { return "nanoflow-1024" }

// Iterations returns the executed hybrid iterations.
func (e *Engine) Iterations() int { return e.iterations }

// Submit implements serving.System.
func (e *Engine) Submit(r workload.Request) {
	e.waiting = append(e.waiting, &req{w: r})
	if !e.active {
		e.active = true
		e.cycle()
	}
}

func (e *Engine) admit(r *req) bool {
	if r.admitted {
		return true
	}
	need := r.w.InputTokens + r.w.OutputTokens
	if !e.env.KV.CanAllocate(need) {
		return false
	}
	seq, err := e.env.KV.Allocate(r.w.ID, need, "nanoflow")
	if err != nil {
		return false
	}
	r.seq = seq
	r.admitted = true
	r.prefillStart = e.env.Sim.Now()
	return true
}

// fuseLayer collapses one hybrid layer's kernels into a single fluid
// kernel: total FLOPs and bytes with a FLOP-weighted efficiency. Each
// constituent kernel's wave-quantization idle (at the full device) stays
// folded into the efficiency — nano-batching overlaps phases, it does not
// repair tail waves.
func (e *Engine) fuseLayer(ks []gpusim.Kernel) gpusim.Kernel {
	M := e.env.GPU.Spec.NumSMs
	var flops, weighted units.FLOPs
	var bytes units.Bytes
	for _, k := range ks {
		eff := k.Efficiency
		if eff == 0 {
			eff = 1
		}
		// NanoFlow resizes kernel grids for its fixed pipeline, which
		// recovers roughly half of the tail-wave idle of stock kernels.
		eff *= 1 - 0.5*gpusim.WaveIdleRatio(k.Grid, M)
		flops += k.FLOPs
		bytes += k.Bytes
		weighted += units.Over(k.FLOPs, eff)
	}
	eff := 1.0
	if weighted > 0 {
		eff = units.Ratio(flops, weighted)
	}
	return gpusim.Kernel{
		Name:       "nano-layer",
		Tag:        "hybrid",
		FLOPs:      flops,
		Bytes:      bytes,
		Efficiency: eff * e.cfg.PipelineEfficiency,
	}
}

// cycle executes one hybrid iteration with ideal intra-layer overlap.
func (e *Engine) cycle() {
	if len(e.decode) == 0 && len(e.waiting) == 0 {
		e.active = false
		return
	}

	budget := e.cfg.ChunkSize - len(e.decode)
	if budget < 0 {
		budget = 0
	}
	var chunkReqs []*req
	var chunkLens, histLens []int
	for _, r := range e.waiting {
		if budget == 0 {
			break
		}
		if !e.admit(r) {
			break
		}
		take := r.w.InputTokens - r.prefilled
		if take > budget {
			take = budget
		}
		chunkReqs = append(chunkReqs, r)
		chunkLens = append(chunkLens, take)
		histLens = append(histLens, r.prefilled)
		budget -= take
	}
	if len(e.decode) == 0 && len(chunkReqs) == 0 {
		panic("nanoflow: stalled iteration")
	}

	avgCtx := 0.0
	for _, r := range e.decode {
		avgCtx += float64(r.w.InputTokens + r.generated)
	}
	if len(e.decode) > 0 {
		avgCtx /= float64(len(e.decode))
	}

	e.iterations++
	for l := 0; l < e.env.Model.NumLayers; l++ {
		ks := e.env.Model.HybridLayerKernels(chunkLens, histLens, len(e.decode), units.Tokens(avgCtx), "hybrid")
		e.env.GPU.Launch(e.stream, e.fuseLayer(ks), nil)
	}
	headRows := len(e.decode)
	for i, r := range chunkReqs {
		if r.prefilled+chunkLens[i] >= r.w.InputTokens {
			headRows++
		}
	}
	if headRows > 0 {
		e.env.GPU.Launch(e.stream, e.env.Model.LMHeadKernel(headRows, "hybrid"), nil)
	}
	e.env.GPU.Synchronize(e.stream, func() {
		e.completeIteration(chunkReqs, chunkLens)
	})
}

// completeIteration advances request state after the iteration drains.
func (e *Engine) completeIteration(chunkReqs []*req, chunkLens []int) {
	now := e.env.Sim.Now()
	kept := e.decode[:0]
	for _, r := range e.decode {
		r.generated++
		if r.generated >= r.w.OutputTokens {
			e.finish(r, now)
			continue
		}
		kept = append(kept, r)
	}
	e.decode = kept
	for i, r := range chunkReqs {
		r.prefilled += chunkLens[i]
		if r.prefilled < r.w.InputTokens {
			continue
		}
		r.firstToken = now
		r.generated = 1
		e.dequeue(r)
		if r.generated >= r.w.OutputTokens {
			e.finish(r, now)
		} else {
			e.decode = append(e.decode, r)
		}
	}
	e.env.Sim.PostAfter(e.cfg.IterOverhead, e.cycle)
}

func (e *Engine) dequeue(r *req) {
	for i, w := range e.waiting {
		if w == r {
			e.waiting = append(e.waiting[:i], e.waiting[i+1:]...)
			return
		}
	}
	panic("nanoflow: request not in waiting queue")
}

func (e *Engine) finish(r *req, now sim.Time) {
	e.env.KV.MustFree(r.seq)
	e.env.Complete(metrics.Request{
		ID:           r.w.ID,
		Dataset:      r.w.Dataset,
		Arrival:      r.w.Arrival,
		PrefillStart: r.prefillStart,
		FirstToken:   r.firstToken,
		Finish:       now,
		InputTokens:  r.w.InputTokens,
		OutputTokens: r.w.OutputTokens,
	})
}
