package nanoflow

import (
	"testing"

	"repro/internal/baselines/chunked"
	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

func run(t testing.TB, d workload.Dataset, rate float64, n int, seed int64) serving.Result {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), d.Name)
	e := New(env, DefaultConfig())
	return env.Run(e, workload.Generate(d, rate, n, seed))
}

func TestCompletesAllRequests(t *testing.T) {
	res := run(t, workload.ShareGPT, 3, 30, 1)
	if res.Summary.Requests != 30 {
		t.Fatalf("completed %d/30", res.Summary.Requests)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, workload.AzureCode, 2, 20, 4)
	b := run(t, workload.AzureCode, 2, 20, 4)
	if a.Summary != b.Summary {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestOverlapBeatsPlainChunked(t *testing.T) {
	// NanoFlow's nano-batch overlap should improve on same-budget plain
	// chunked prefill end to end (the paper places it best among
	// chunked systems).
	envA := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	nf := New(envA, DefaultConfig())
	trace := workload.Generate(workload.ShareGPT, 8, 60, 2)
	a := envA.Run(nf, trace)

	envB := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	ch := chunked.New(envB, chunked.SGLang1024())
	b := envB.Run(ch, workload.Generate(workload.ShareGPT, 8, 60, 2))

	if a.Summary.MeanE2E >= b.Summary.MeanE2E*1.05 {
		t.Fatalf("nanoflow E2E %v not competitive with chunked %v",
			a.Summary.MeanE2E, b.Summary.MeanE2E)
	}
}

func TestSingleRequest(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	e := New(env, DefaultConfig())
	trace := &workload.Trace{Dataset: "sharegpt", Rate: 1, Requests: []workload.Request{
		{ID: "solo", Arrival: 0.001, InputTokens: 3000, OutputTokens: 5, Dataset: "sharegpt"},
	}}
	res := env.Run(e, trace)
	r := res.Requests[0]
	if r.TTFT() <= 0 || r.TPOT() <= 0 {
		t.Fatalf("bad record: %+v", r)
	}
	if e.Iterations() < 3+4 {
		t.Fatalf("iterations = %d, want at least 7 (3 chunks + 4 decodes)", e.Iterations())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	New(env, Config{})
}

func BenchmarkNanoFlowShareGPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		run(b, workload.ShareGPT, 5, 30, 1)
	}
}
