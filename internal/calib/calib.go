// Package calib is the calibration harness of the sampled latency
// backend: it turns per-kernel latency observations — parsed from a
// profiling trace file or self-collected against the analytic simulator —
// into the fitted per-operator quantile tables gpusim.SampledBackend
// draws from (DESIGN.md §15).
//
// The trace format is line-oriented:
//
//	# comment
//	op qkv
//	128 0.000213
//	256 0.000391
//	op attn
//	128 0.000457
//
// An `op <name>` line opens a section; each sample line under it carries
// the operator's token coordinate and one observed latency in seconds.
// Operators may not be re-opened (duplicate keys are rejected), samples
// must carry positive token counts and positive finite latencies, and
// every malformed line is reported with its line number — the parser
// never panics on hostile input (see FuzzCalibParse).
package calib

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/units"
)

// Row is one calibration observation: operator op took Latency seconds
// at size coordinate Tokens.
type Row struct {
	Op      string
	Tokens  int
	Latency units.Seconds
}

// maxTraceLine bounds one trace line; longer lines are a parse error,
// not a silent truncation.
const maxTraceLine = 1 << 16

// ParseTrace reads calibration rows from a trace in the package's
// line-oriented format. Errors carry the 1-based line number and the
// offending content.
func ParseTrace(r io.Reader) ([]Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxTraceLine)
	var rows []Row
	seen := map[string]bool{}
	op := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "op" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("calib: line %d: want \"op <name>\", got %q", lineNo, line)
			}
			op = fields[1]
			if seen[op] {
				return nil, fmt.Errorf("calib: line %d: duplicate operator %q", lineNo, op)
			}
			seen[op] = true
			continue
		}
		if op == "" {
			return nil, fmt.Errorf("calib: line %d: sample %q before any \"op <name>\" header", lineNo, line)
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("calib: line %d: want \"<tokens> <latency>\", got %q", lineNo, line)
		}
		tokens, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("calib: line %d: bad token count %q: %v", lineNo, fields[0], err)
		}
		if tokens <= 0 {
			return nil, fmt.Errorf("calib: line %d: non-positive token count %d", lineNo, tokens)
		}
		lat, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("calib: line %d: bad latency %q: %v", lineNo, fields[1], err)
		}
		if math.IsNaN(lat) || math.IsInf(lat, 0) {
			return nil, fmt.Errorf("calib: line %d: operator %q: non-finite latency %v", lineNo, op, lat)
		}
		if lat <= 0 {
			return nil, fmt.Errorf("calib: line %d: operator %q: non-positive latency %v", lineNo, op, lat)
		}
		rows = append(rows, Row{Op: op, Tokens: tokens, Latency: units.Seconds(lat)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("calib: line %d: %v", lineNo+1, err)
	}
	return rows, nil
}

// FormatTrace renders rows back into the trace format ParseTrace reads,
// grouping samples under sorted operator headers — the round-trip half
// of the harness, used to persist self-calibrated tables' raw samples.
func FormatTrace(rows []Row) string {
	byOp := map[string][]Row{}
	for _, r := range rows {
		byOp[r.Op] = append(byOp[r.Op], r)
	}
	var sb strings.Builder
	for _, op := range sortedKeys(byOp) {
		fmt.Fprintf(&sb, "op %s\n", op)
		for _, r := range byOp[op] {
			fmt.Fprintf(&sb, "%d %.9g\n", r.Tokens, r.Latency.Float())
		}
	}
	return sb.String()
}
