package calib

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/units"
)

func TestParseTraceBasic(t *testing.T) {
	in := `# profiled on a100, 108 SMs
op qkv
128 0.000213
256 0.000391

op attn
	128	0.000457
`
	rows, err := ParseTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Row{
		{Op: "qkv", Tokens: 128, Latency: 0.000213},
		{Op: "qkv", Tokens: 256, Latency: 0.000391},
		{Op: "attn", Tokens: 128, Latency: 0.000457},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("rows = %+v, want %+v", rows, want)
	}
}

// TestParseTraceErrors: every malformed-input class is rejected with an
// error naming the offending 1-based line — the contextual-parse-error
// contract FuzzCalibParse stresses with arbitrary input.
func TestParseTraceErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"op header arity", "op qkv extra\n", `line 1: want "op <name>"`},
		{"duplicate operator", "op qkv\n128 0.1\nop attn\n1 0.1\nop qkv\n", `line 5: duplicate operator "qkv"`},
		{"sample before header", "# hi\n\n128 0.0002\n", `line 3: sample "128 0.0002" before any "op <name>" header`},
		{"sample arity", "op qkv\n128 0.1 0.2\n", `line 2: want "<tokens> <latency>"`},
		{"bad token count", "op qkv\nx 0.1\n", `line 2: bad token count "x"`},
		{"zero tokens", "op qkv\n0 0.1\n", "line 2: non-positive token count 0"},
		{"negative tokens", "op qkv\n-4 0.1\n", "line 2: non-positive token count -4"},
		{"bad latency", "op qkv\n128 fast\n", `line 2: bad latency "fast"`},
		{"nan latency", "op qkv\n128 NaN\n", `operator "qkv": non-finite latency NaN`},
		{"inf latency", "op qkv\n128 +Inf\n", `operator "qkv": non-finite latency +Inf`},
		{"negative latency", "op qkv\n128 -0.25\n", `operator "qkv": non-positive latency -0.25`},
		{"zero latency", "op qkv\n128 0\n", `operator "qkv": non-positive latency 0`},
		{"oversized line", "op qkv\n128 0." + strings.Repeat("0", maxTraceLine) + "1\n", "line 2:"},
	}
	for _, c := range cases {
		_, err := ParseTrace(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.HasPrefix(err.Error(), "calib: line ") || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %q, want prefix \"calib: line \" and substring %q", c.name, err, c.want)
		}
	}
}

func TestFormatTraceRoundTrip(t *testing.T) {
	rows := []Row{
		{Op: "qkv", Tokens: 128, Latency: 0.000213},
		{Op: "attn", Tokens: 128, Latency: 0.000457},
		{Op: "qkv", Tokens: 256, Latency: 0.000391},
		{Op: "attn", Tokens: 512, Latency: 0.0013},
	}
	back, err := ParseTrace(strings.NewReader(FormatTrace(rows)))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	// FormatTrace groups under sorted op headers, keeping per-op order.
	want := []Row{rows[1], rows[3], rows[0], rows[2]}
	if !reflect.DeepEqual(back, want) {
		t.Errorf("round trip = %+v, want %+v", back, want)
	}
}

func TestFitBasic(t *testing.T) {
	rows := []Row{
		{Op: "gemm", Tokens: 64, Latency: 1e-4},
		{Op: "gemm", Tokens: 64, Latency: 3e-4},
		{Op: "gemm", Tokens: 64, Latency: 2e-4},
		{Op: "gemm", Tokens: 256, Latency: 4e-4},
		{Op: "gemm", Tokens: 256, Latency: 8e-4},
	}
	table, err := Fit(rows, FitOptions{RefSMs: 8, Quantiles: 3, Winsor: 0})
	if err != nil {
		t.Fatal(err)
	}
	if table.RefSMs != 8 {
		t.Errorf("RefSMs = %d, want 8", table.RefSMs)
	}
	sup := table.Ops["gemm"]
	if len(sup) != 2 || sup[0].Tokens != 64 || sup[1].Tokens != 256 {
		t.Fatalf("supports = %+v, want tokens 64 and 256", sup)
	}
	// Winsor 0, 3 quantiles over {1,2,3}e-4: exact min/median/max.
	wantQ := []units.Seconds{1e-4, 2e-4, 3e-4}
	if !reflect.DeepEqual(sup[0].Q, wantQ) {
		t.Errorf("Q(64) = %v, want %v", sup[0].Q, wantQ)
	}
	if err := table.Validate(); err != nil {
		t.Errorf("fitted table invalid: %v", err)
	}
}

// TestFitIsotonic: a larger token bucket whose samples undercut a smaller
// bucket is floored to it, so sampling stays monotone in tokens.
func TestFitIsotonic(t *testing.T) {
	rows := []Row{
		{Op: "gemm", Tokens: 64, Latency: 5e-4},
		{Op: "gemm", Tokens: 256, Latency: 1e-4}, // inversion: faster at more tokens
	}
	table, err := Fit(rows, FitOptions{RefSMs: 8, Quantiles: 2})
	if err != nil {
		t.Fatal(err)
	}
	sup := table.Ops["gemm"]
	for j, q := range sup[1].Q {
		if q < sup[0].Q[j] {
			t.Errorf("quantile %d: tokens 256 (%v) below tokens 64 (%v) after isotonic fit", j, q, sup[0].Q[j])
		}
	}
}

func TestFitErrors(t *testing.T) {
	good := []Row{{Op: "gemm", Tokens: 64, Latency: 1e-4}}
	cases := []struct {
		name string
		rows []Row
		opts FitOptions
		want string
	}{
		{"no refsms", good, FitOptions{}, "non-positive RefSMs"},
		{"tiny grid", good, FitOptions{RefSMs: 8, Quantiles: 1}, "quantile grid 1 too small"},
		{"bad winsor", good, FitOptions{RefSMs: 8, Winsor: 0.3}, "winsor fraction 0.3 outside"},
		{"no rows", nil, FitOptions{RefSMs: 8}, "no rows"},
		{"empty op", []Row{{Tokens: 1, Latency: 1}}, FitOptions{RefSMs: 8}, "row 0: empty operator"},
		{"bad tokens", []Row{{Op: "a", Tokens: 0, Latency: 1}}, FitOptions{RefSMs: 8}, "row 0: operator \"a\": non-positive tokens"},
		{"bad latency", []Row{{Op: "a", Tokens: 1, Latency: -1}}, FitOptions{RefSMs: 8}, "row 0: operator \"a\": bad latency"},
	}
	for _, c := range cases {
		_, err := Fit(c.rows, c.opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestSelfCalibrate: the self-calibration sweep yields a valid table on
// the paper's platform, referenced to the device's full SM count, and is
// deterministic call over call (it backs the memoized
// core.FittedLatencyTable shared across replicas).
func TestSelfCalibrate(t *testing.T) {
	cfg := model.Llama31_8B()
	spec := gpusim.A100()
	table, err := SelfCalibrate(cfg, spec, SelfCalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := table.Validate(); err != nil {
		t.Fatalf("self-calibrated table invalid: %v", err)
	}
	if table.RefSMs != spec.NumSMs {
		t.Errorf("RefSMs = %d, want %d", table.RefSMs, spec.NumSMs)
	}
	if len(table.Ops) < 5 {
		t.Errorf("only %d operators calibrated, want the model's kernel set", len(table.Ops))
	}
	again, err := SelfCalibrate(cfg, spec, SelfCalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(table, again) {
		t.Error("two self-calibrations diverged")
	}
}
