package calib

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/units"
)

// FitOptions shapes the robust quantile fit.
type FitOptions struct {
	// RefSMs is the SM count the samples were collected at (required).
	RefSMs int
	// Quantiles is the grid size per support (default 5: min, q25,
	// median, q75, max after winsorizing).
	Quantiles int
	// Winsor trims this fraction off each tail before fitting, so a
	// stray outlier cannot stretch the distribution support. Default
	// 0.02; must lie in [0, 0.25).
	Winsor float64
}

const (
	defaultQuantiles = 5
	defaultWinsor    = 0.02
)

// Fit turns calibration rows into a sampled-backend latency table:
// per (operator, tokens) bucket it fits a winsorized empirical quantile
// grid, then enforces monotonicity across token supports per quantile
// level (isotonic cumulative max) — the invariant that makes sampled
// latencies monotone non-decreasing in token count at any fixed draw.
func Fit(rows []Row, opts FitOptions) (*gpusim.LatencyTable, error) {
	if opts.RefSMs <= 0 {
		return nil, fmt.Errorf("calib: fit: non-positive RefSMs %d", opts.RefSMs)
	}
	if opts.Quantiles == 0 {
		opts.Quantiles = defaultQuantiles
	}
	if opts.Quantiles < 2 {
		return nil, fmt.Errorf("calib: fit: quantile grid %d too small (need >= 2)", opts.Quantiles)
	}
	if opts.Winsor < 0 || opts.Winsor >= 0.25 {
		return nil, fmt.Errorf("calib: fit: winsor fraction %v outside [0, 0.25)", opts.Winsor)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("calib: fit: no rows")
	}

	buckets := map[string]map[int][]float64{}
	for i, r := range rows {
		if r.Op == "" {
			return nil, fmt.Errorf("calib: fit: row %d: empty operator", i)
		}
		if r.Tokens <= 0 {
			return nil, fmt.Errorf("calib: fit: row %d: operator %q: non-positive tokens %d", i, r.Op, r.Tokens)
		}
		if units.IsNaN(r.Latency) || units.IsInf(r.Latency, 0) || r.Latency <= 0 {
			return nil, fmt.Errorf("calib: fit: row %d: operator %q: bad latency %v", i, r.Op, r.Latency)
		}
		byTok := buckets[r.Op]
		if byTok == nil {
			byTok = map[int][]float64{}
			buckets[r.Op] = byTok
		}
		byTok[r.Tokens] = append(byTok[r.Tokens], r.Latency.Float())
	}

	table := &gpusim.LatencyTable{RefSMs: opts.RefSMs, Ops: map[string][]gpusim.OpSupport{}}
	for _, op := range sortedKeys(buckets) {
		byTok := buckets[op]
		toks := make([]int, 0, len(byTok))
		for t := range byTok {
			toks = append(toks, t)
		}
		sort.Ints(toks)
		supports := make([]gpusim.OpSupport, 0, len(toks))
		var floor []units.Seconds
		for _, t := range toks {
			samples := byTok[t]
			sort.Float64s(samples)
			grid := make([]units.Seconds, opts.Quantiles)
			for j := range grid {
				level := opts.Winsor + (1-2*opts.Winsor)*float64(j)/float64(opts.Quantiles-1)
				grid[j] = units.Seconds(empiricalQuantile(samples, level))
			}
			// Isotonic step: a larger token bucket may never undercut a
			// smaller one at the same quantile level.
			if floor == nil {
				floor = make([]units.Seconds, opts.Quantiles)
			}
			for j := range grid {
				grid[j] = units.Max(grid[j], floor[j])
				floor[j] = grid[j]
			}
			supports = append(supports, gpusim.OpSupport{Tokens: t, Q: grid})
		}
		table.Ops[op] = supports
	}
	if err := table.Validate(); err != nil {
		return nil, fmt.Errorf("calib: fit: %v", err)
	}
	return table, nil
}

// empiricalQuantile evaluates the sorted sample set at level p with
// linear interpolation (type-7 estimator).
func empiricalQuantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := p * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i] + (sorted[i+1]-sorted[i])*frac
}

// sortedKeys returns a string-keyed map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
