package calib

import (
	"strings"
	"testing"
)

// FuzzCalibParse hammers the trace parser with arbitrary input. The
// contract: never panic; reject every malformed line with a contextual
// "calib: line N" error; and on success return only well-formed rows
// whose re-rendered trace parses back to the same shape.
func FuzzCalibParse(f *testing.F) {
	f.Add("op qkv\n128 0.000213\n256 0.000391\n")
	f.Add("# comment only\n")
	f.Add("op qkv\nop qkv\n")              // duplicate operator key
	f.Add("128 0.0002\n")                  // sample before any header
	f.Add("op qkv\n128 NaN\n")             // non-finite latency
	f.Add("op qkv\n128 -Inf\n")            // non-finite latency
	f.Add("op qkv\n128 -0.5\n")            // negative latency
	f.Add("op qkv\n0 0.5\n")               // non-positive tokens
	f.Add("op qkv\n9999999999999999 0.1a") // malformed row tails
	f.Add("op\n")
	f.Add("op a b c\n\x00\xff")
	f.Add(strings.Repeat("op x", 1000))
	f.Fuzz(func(t *testing.T, in string) {
		rows, err := ParseTrace(strings.NewReader(in))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "calib: line ") {
				t.Fatalf("error without line context: %q", err)
			}
			return
		}
		for i, r := range rows {
			if r.Op == "" || r.Tokens <= 0 || r.Latency <= 0 {
				t.Fatalf("row %d malformed after successful parse: %+v", i, r)
			}
		}
		if len(rows) == 0 {
			return
		}
		back, err := ParseTrace(strings.NewReader(FormatTrace(rows)))
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back) != len(rows) {
			t.Fatalf("round trip kept %d of %d rows", len(back), len(rows))
		}
	})
}
