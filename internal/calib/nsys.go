package calib

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/units"
)

// nsysRangePrefix marks the NVTX ranges the calibration harness owns.
// A profiling run that wants its kernels calibrated wraps each launch
// in an NVTX range named "bullet:<op>:<tokens>"; everything else in
// the trace (framework kernels, memcpys, other tenants) is skipped.
const nsysRangePrefix = "bullet:"

// ParseNsysCSV reads calibration rows from an nsys-style GPU-trace CSV
// export (`nsys stats --report cuda_gpu_trace --format csv`, or any
// conforming profiler dump). The header row names the columns; the
// parser needs a duration column whose header contains "Duration" with
// an "(ns)" unit, and an NVTX range column (header containing "NVTX"
// or named "Range") carrying the harness annotation
// "bullet:<op>:<tokens>". Rows whose range does not start with
// "bullet:" are foreign kernels and are skipped; rows that carry the
// prefix but are malformed are errors, reported with their 1-based
// line number — a half-annotated trace is a profiling bug, not noise.
func ParseNsysCSV(r io.Reader) ([]Row, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated per row against the header below
	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("calib: nsys csv: empty input")
	}
	if err != nil {
		return nil, fmt.Errorf("calib: nsys csv: header: %v", err)
	}
	durCol, rangeCol := -1, -1
	for i, h := range header {
		h = strings.TrimSpace(h)
		switch {
		case strings.Contains(h, "Duration") && strings.Contains(h, "(ns)"):
			durCol = i
		case strings.Contains(h, "NVTX") || h == "Range":
			rangeCol = i
		}
	}
	if durCol < 0 {
		return nil, fmt.Errorf("calib: nsys csv: no \"Duration (ns)\" column in header %q", strings.Join(header, ","))
	}
	if rangeCol < 0 {
		return nil, fmt.Errorf("calib: nsys csv: no NVTX range column in header %q", strings.Join(header, ","))
	}
	var rows []Row
	for lineNo := 2; ; lineNo++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("calib: nsys csv: line %d: %v", lineNo, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("calib: nsys csv: line %d: %d fields, header has %d", lineNo, len(rec), len(header))
		}
		rng := strings.TrimSpace(rec[rangeCol])
		if !strings.HasPrefix(rng, nsysRangePrefix) {
			continue
		}
		parts := strings.Split(rng, ":")
		if len(parts) != 3 || parts[1] == "" {
			return nil, fmt.Errorf("calib: nsys csv: line %d: want \"bullet:<op>:<tokens>\", got %q", lineNo, rng)
		}
		tokens, err := strconv.Atoi(parts[2])
		if err != nil || tokens <= 0 {
			return nil, fmt.Errorf("calib: nsys csv: line %d: bad token count %q in range %q", lineNo, parts[2], rng)
		}
		ns, err := strconv.ParseFloat(strings.TrimSpace(rec[durCol]), 64)
		if err != nil {
			return nil, fmt.Errorf("calib: nsys csv: line %d: bad duration %q: %v", lineNo, rec[durCol], err)
		}
		if ns <= 0 {
			return nil, fmt.Errorf("calib: nsys csv: line %d: non-positive duration %v ns", lineNo, ns)
		}
		rows = append(rows, Row{Op: parts[1], Tokens: tokens, Latency: units.Seconds(ns * 1e-9)})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("calib: nsys csv: no %q-annotated kernels in trace", nsysRangePrefix)
	}
	return rows, nil
}
