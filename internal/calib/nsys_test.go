package calib

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/units"
)

// TestParseNsysCSVSample parses the checked-in nsys-style GPU-trace
// export: every "bullet:"-annotated launch becomes a calibration row,
// foreign kernels (rms_norm, rope, memcpys) are skipped, and the rows
// fit into a valid sampled-backend latency table end to end.
func TestParseNsysCSVSample(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "nsys_gputrace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := ParseNsysCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("parsed %d rows, want 18 annotated launches", len(rows))
	}
	byOp := map[string]int{}
	for _, r := range rows {
		byOp[r.Op]++
		if r.Tokens <= 0 || r.Latency <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	for _, op := range []string{"qkv", "attn", "oproj", "gateup", "down", "lmhead"} {
		if byOp[op] == 0 {
			t.Errorf("no rows parsed for operator %q (got %v)", op, byOp)
		}
	}
	// Durations are ns in the export, seconds in Row: the first qkv
	// launch is 211300 ns.
	if got, want := rows[0], (Row{Op: "qkv", Tokens: 1024, Latency: units.Seconds(211300e-9)}); got != want {
		t.Errorf("first row = %+v, want %+v", got, want)
	}
	table, err := Fit(rows, FitOptions{RefSMs: 108})
	if err != nil {
		t.Fatalf("Fit over nsys rows: %v", err)
	}
	if _, ok := table.Sample("attn", 2048, 0.5); !ok {
		t.Error("fitted table cannot sample attn@2048")
	}
}

// TestParseNsysCSVErrors: hostile or half-annotated inputs are errors
// carrying the offending line, never panics or silent drops.
func TestParseNsysCSVErrors(t *testing.T) {
	const hdr = "Start (ns),Duration (ns),NVTX Range,Name\n"
	for name, tc := range map[string]struct{ in, want string }{
		"empty":             {"", "empty input"},
		"no duration":       {"Start (ns),NVTX Range,Name\n", "no \"Duration (ns)\" column"},
		"no range":          {"Start (ns),Duration (ns),Name\n", "no NVTX range column"},
		"short row":         {hdr + "1,2\n", "line 2"},
		"malformed range":   {hdr + "1,200,bullet:qkv,k\n", "want \"bullet:<op>:<tokens>\""},
		"bad tokens":        {hdr + "1,200,bullet:qkv:zero,k\n", "bad token count"},
		"negative tokens":   {hdr + "1,200,bullet:qkv:-4,k\n", "bad token count"},
		"bad duration":      {hdr + "1,fast,bullet:qkv:128,k\n", "bad duration"},
		"zero duration":     {hdr + "1,0,bullet:qkv:128,k\n", "non-positive duration"},
		"nothing annotated": {hdr + "1,200,,k\n", "no \"bullet:\"-annotated kernels"},
	} {
		if _, err := ParseNsysCSV(strings.NewReader(tc.in)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
}
