package calib

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

// calibTag marks measured kernels so interferer records are skipped.
const calibTag = "calib"

// SelfCalOptions scales the self-calibration sweep.
type SelfCalOptions struct {
	// PrefillTokens are the prefill chunk sizes measured per operator.
	PrefillTokens []int
	// DecodeBatches are the decode-step batch sizes measured.
	DecodeBatches []int
	// DecodeCtxs are the average decode context lengths measured at each
	// batch size (context spreads the decode-step distribution).
	DecodeCtxs []int
	// Quantiles / Winsor are passed through to Fit.
	Quantiles int
	Winsor    float64
}

// DefaultSelfCalOptions covers the operating range the serving
// experiments actually visit.
func DefaultSelfCalOptions() SelfCalOptions {
	return SelfCalOptions{
		PrefillTokens: []int{64, 128, 256, 512, 1024, 2048, 4096},
		DecodeBatches: []int{1, 2, 4, 8, 16, 32, 64, 128, 256},
		DecodeCtxs:    []int{128, 512, 2048},
	}
}

// SelfCalibrate runs deterministic micro-benchmarks of the model's
// kernels against the analytic simulator — solo on several SM
// allocations and co-located with a decode interferer — and fits the
// resulting latency samples into a sampled-backend table referenced to
// the device's full SM count. The dispersion of each operator's
// distribution is the genuine spread of its analytic latency across
// allocations and contention regimes, so sampled-backend runs explore
// the fidelity envelope of the fluid model without external profiles.
func SelfCalibrate(cfg model.Config, spec gpusim.Spec, opts SelfCalOptions) (*gpusim.LatencyTable, error) {
	def := DefaultSelfCalOptions()
	if len(opts.PrefillTokens) == 0 {
		opts.PrefillTokens = def.PrefillTokens
	}
	if len(opts.DecodeBatches) == 0 {
		opts.DecodeBatches = def.DecodeBatches
	}
	if len(opts.DecodeCtxs) == 0 {
		opts.DecodeCtxs = def.DecodeCtxs
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("calib: self-calibrate: %v", err)
	}

	full := smmask.Full(spec.NumSMs)
	masks := []smmask.Mask{
		full,
		full.Prefix(spec.NumSMs * 3 / 4),
		full.Prefix(spec.NumSMs / 2),
	}

	var rows []Row
	for _, t := range opts.PrefillTokens {
		for _, hist := range []int{0, t} {
			ks := cfg.PrefillLayerKernels(t, hist, calibTag)
			ks = append(ks, cfg.LMHeadKernel(t, calibTag))
			for _, m := range masks {
				rows = measure(spec, ks, m, nil, rows)
			}
			// Co-located regime: the same kernels under a full-mask
			// decode-step interferer, the spatial-sharing case Bullet
			// actually runs in.
			inter := cfg.DecodeStepKernel(64, units.Tokens(512), "bg")
			rows = measure(spec, ks, full.Prefix(spec.NumSMs*2/3), &inter, rows)
		}
	}
	for _, b := range opts.DecodeBatches {
		for _, c := range opts.DecodeCtxs {
			ks := []gpusim.Kernel{cfg.DecodeStepKernel(b, units.Tokens(c), calibTag)}
			for _, m := range masks {
				rows = measure(spec, ks, m, nil, rows)
			}
		}
		rows = measure(spec, []gpusim.Kernel{cfg.LMHeadKernel(b, calibTag)}, full, nil, rows)
	}

	table, err := Fit(rows, FitOptions{
		RefSMs:    spec.NumSMs,
		Quantiles: opts.Quantiles,
		Winsor:    opts.Winsor,
	})
	if err != nil {
		return nil, fmt.Errorf("calib: self-calibrate %s/%s: %v", cfg.Name, spec.Name, err)
	}
	return table, nil
}

// measure executes ks sequentially on one stream of a fresh device —
// masked to m, optionally against a full-mask interferer kernel — and
// appends one Row per measured kernel. Latencies are wall durations from
// residency to completion, excluding launch overhead.
func measure(spec gpusim.Spec, ks []gpusim.Kernel, m smmask.Mask, interferer *gpusim.Kernel, dst []Row) []Row {
	s := sim.New()
	g := gpusim.New(s, spec)
	if interferer != nil {
		bg := g.NewStream(g.FullMask())
		g.Launch(bg, *interferer, nil)
	}
	st := g.NewStream(m)
	next := 0
	g.Trace = func(r gpusim.KernelRecord) {
		if r.Tag != calibTag {
			return
		}
		dst = append(dst, Row{Op: r.Name, Tokens: ks[next].Tokens, Latency: r.Duration()})
		next++
	}
	for _, k := range ks {
		g.Launch(st, k, nil)
	}
	s.RunAll(1 << 20)
	return dst
}
