// Package cluster scales a serving system horizontally: a router
// dispatches requests across N single-GPU replicas. It exercises the
// deployment question the paper's related-work section raises — whether
// to scale out with more whole-GPU instances or to squeeze more out of
// each GPU with spatial-temporal orchestration — and lets both answers
// compose (a cluster of Bullet instances).
//
// # Parallel-deterministic replica advancement
//
// Each replica owns a private sim.Simulation; the router's outer clock
// carries only the decision points (arrivals, fault events, recoveries,
// and a drain pump). Replicas interact with each other exclusively
// through the router, so between two consecutive decision points every
// replica can advance independently — the Revati-style conservative
// window. Advancement runs through the internal/forkjoin harness:
//
//   - each fork task advances exactly one replica (index-addressed, no
//     shared writes — machine-checked by bulletlint's replicaisolation
//     analyzer);
//   - completions and sheds produced inside the window are buffered in
//     the owning replica's outbox, never pushed to shared state;
//   - at the join, outboxes merge in deterministic (time, replica slot,
//     intra-replica order) order before touching router state.
//
// The output is therefore a pure function of (trace, seed, config):
// byte-identical whether replicas advance serially or on GOMAXPROCS
// workers, which ci.sh pins with a GOMAXPROCS=1-vs-4 byte-diff gate and
// cluster_test.go pins per worker count under -race. Attaching a
// timeline recorder forces serial advancement so the shared trace keeps
// one deterministic event order.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/forkjoin"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/resilience"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/units"
	"repro/internal/workload"
)

// Policy selects how the router places requests.
type Policy string

const (
	// RoundRobin cycles through replicas.
	RoundRobin Policy = "round-robin"
	// LeastLoaded routes to the replica with the fewest in-flight
	// tokens (queued + executing input tokens plus decode batch).
	LeastLoaded Policy = "least-loaded"
	// JoinShortestQueue routes to the replica with the fewest waiting
	// requests.
	JoinShortestQueue Policy = "jsq"
)

// Config shapes the cluster.
type Config struct {
	Replicas int
	Policy   Policy
	// Options configure each replica's Bullet instance.
	Options core.Options
	// Workers bounds the fork/join parallelism of replica advancement:
	// 0 uses the forkjoin default (GOMAXPROCS, capped), 1 forces the
	// serial path. By the isolation contract the value never changes
	// results, only wall-clock time.
	Workers int
	// Resilience arms the router-tier protections of DESIGN.md §16
	// (circuit breakers, dispatch timeouts, hedged re-dispatch, token
	// buckets, graceful drains) when AttachFaults is called. Nil leaves
	// the router naive: link faults, blips, and drains still apply, but
	// nothing mitigates them — the control arm of ext-chaos.
	Resilience *resilience.Config
}

// DefaultConfig returns a two-replica least-loaded Bullet cluster.
func DefaultConfig() Config {
	return Config{Replicas: 2, Policy: LeastLoaded, Options: core.Options{Mode: core.ModeFull}}
}

// outcome is one completion or shed buffered in a replica's outbox while
// the replica advances inside a fork/join window.
type outcome struct {
	at     sim.Time // replica virtual time at delivery
	done   metrics.Request
	shed   workload.Request
	isShed bool
}

// replica is one Bullet instance on its own device, advancing on its own
// private simulation clock.
type replica struct {
	env      *serving.Env
	sys      *core.Bullet
	slot     int // index in Cluster.replicas, stable across restarts
	inflight int // live requests routed here
	tokens   int // live input tokens routed here
	// down marks a crashed replica: the router stops picking it and its
	// late completions are swallowed as stale.
	down bool
	// draining marks a replica mid graceful drain (DESIGN.md §16): it
	// stops admitting, finishes in-flight work, and readmits at the end
	// of the drain window.
	draining bool
	// linkLost / linkDelay model the router→replica link state under
	// KindLinkDegrade: lost links black-hole dispatches into held,
	// degraded links deliver them linkDelay late. linkGen fences
	// restore callbacks against overlapping link faults and crashes.
	linkLost  bool
	linkDelay sim.Time
	linkGen   int
	// held buffers dispatches parked on a faulty link, keyed off by
	// request ID; delivery, dispatch timeout, and link restoration race
	// deterministically through removeHeld. Each entry carries whether
	// the slot's breaker admitted it (resilience.go).
	held []heldDispatch
	// live tracks the requests currently owned by this replica, the set
	// that fails over when it crashes.
	live map[string]workload.Request
	// outbox buffers completions and sheds produced while this replica
	// advances inside a fork/join window; the router drains it at the
	// join in deterministic merge order. Only this replica's own event
	// loop appends to it — the isolation the replicaisolation analyzer
	// enforces at fork sites.
	outbox []outcome
}

// advance runs this replica's private simulation up to horizon t,
// buffering every completion and shed into the outbox. It touches no
// state outside the replica, so the cluster may advance all replicas
// concurrently.
func (r *replica) advance(t sim.Time) {
	r.env.Sim.Run(t)
}

// Cluster implements serving.System over N replicas.
type Cluster struct {
	outer    *serving.Env
	cfg      Config
	replicas []*replica
	next     int
	routed   map[string]*replica

	// pump is the outer-clock event that re-advances replicas between
	// router decision points, scheduled at the earliest pending replica
	// event so replica progress keeps flowing into the outer run loop.
	pump *sim.Event

	// wcfg is non-nil once AttachFaults armed resilience; restarted
	// replicas inherit it.
	wcfg *core.WatchdogConfig
	// deferred holds arrivals that found every replica down; they flush
	// at the next recovery.
	deferred []workload.Request

	// rs holds the router-tier resilience state (resilience.go); non-nil
	// once AttachFaults ran. Its cfg stays nil unless Config.Resilience
	// armed the mitigations.
	rs *routerState

	crashes    int
	retried    int
	recoveries int
	stale      int
	// recoveryTime attributes actual elapsed repair time per completed
	// router-tier recovery (restarts, link restorations, drain
	// readmissions) for metrics.Resilience.RecoveryTime.
	recoveryTime units.Seconds

	// tl is the root recorder attached by AttachTimeline; each replica
	// records through a per-replica scoped view of it. Non-nil forces
	// serial advancement so the shared trace stays deterministically
	// ordered.
	tl *timeline.Recorder

	// merge is the outbox-merge scratch, resliced to zero length on every
	// window so steady-state merges stay allocation-free.
	merge []outboxKey
}

// New builds the cluster on an outer environment. The outer env's own GPU
// and KV pool are unused (replicas own their devices); it provides the
// router clock, SLO, and completion collection.
func New(outer *serving.Env, cfg Config) *Cluster {
	if cfg.Replicas <= 0 {
		panic(fmt.Sprintf("cluster: invalid replica count %d", cfg.Replicas))
	}
	if cfg.Workers < 0 {
		panic(fmt.Sprintf("cluster: invalid worker count %d", cfg.Workers))
	}
	switch cfg.Policy {
	case RoundRobin, LeastLoaded, JoinShortestQueue:
	default:
		panic(fmt.Sprintf("cluster: unknown policy %q", cfg.Policy))
	}
	c := &Cluster{outer: outer, cfg: cfg, routed: map[string]*replica{}}
	for i := 0; i < cfg.Replicas; i++ {
		c.replicas = append(c.replicas, c.newReplica(i))
	}
	return c
}

// newReplica builds one replica: a fresh device and KV pool on a fresh
// private clock fast-forwarded to the router's current time. Completions
// and sheds are buffered into the replica-local outbox; ownership checks
// and router accounting happen at the deterministic merge, not here.
func (c *Cluster) newReplica(idx int) *replica {
	rsim := sim.New()
	rsim.Run(c.outer.Sim.Now())
	env := serving.NewEnvWithSim(rsim, c.outer.GPU.Spec, c.outer.Model, datasetOf(c.outer))
	r := &replica{env: env, slot: idx, live: map[string]workload.Request{}}
	env.OnComplete = func(m metrics.Request) {
		r.outbox = append(r.outbox, outcome{at: env.Sim.Now(), done: m})
	}
	env.OnShed = func(w workload.Request) {
		r.outbox = append(r.outbox, outcome{at: env.Sim.Now(), shed: w, isShed: true})
	}
	opts := c.cfg.Options
	if opts.Backend == gpusim.BackendSampled {
		// Decorrelate the replicas' sampled-latency draw streams the
		// forkjoin way: a per-replica splitmix fork of the base seed,
		// identical whether replicas advance serially or in parallel.
		seed := opts.BackendSeed
		if seed == 0 {
			seed = 1
		}
		opts.BackendSeed = forkjoin.ForkSeed(seed, idx)
	}
	r.sys = core.New(env, opts)
	if c.wcfg != nil {
		r.sys.EnableResilience(*c.wcfg)
	}
	// A nil recorder scopes to nil, so the disabled fast path propagates.
	r.sys.AttachTimeline(c.tl.Scoped(fmt.Sprintf("replica%d", idx)))
	return r
}

// AttachTimeline threads a recorder through the cluster: each replica
// (including ones restarted after a crash) records through a scoped view
// tagged with its slot, and router-level crash/recovery instants land on
// the root "cluster" lane. A shared trace needs one deterministic event
// order, so attaching a recorder forces serial replica advancement.
func (c *Cluster) AttachTimeline(rec *timeline.Recorder) {
	c.tl = rec
	for i, r := range c.replicas {
		r.sys.AttachTimeline(rec.Scoped(fmt.Sprintf("replica%d", i)))
	}
}

// datasetOf recovers the dataset name from the env's SLO (Table 2 pairs
// are unique).
func datasetOf(env *serving.Env) string {
	for _, name := range []string{"sharegpt", "azure-code", "arxiv-summary"} {
		if metrics.SLOFor(name) == env.SLO {
			return name
		}
	}
	return "sharegpt"
}

// Name implements serving.System.
func (c *Cluster) Name() string {
	return fmt.Sprintf("cluster-%dx-%s", c.cfg.Replicas, c.cfg.Policy)
}

// advanceWorkers returns the fork/join width for replica advancement:
// serial with a timeline attached (one trace needs one order), the
// configured bound otherwise (0 = forkjoin default).
func (c *Cluster) advanceWorkers() int {
	if c.tl != nil {
		return 1
	}
	return c.cfg.Workers
}

// advanceTo forks one task per replica to advance every private clock to
// horizon t, then joins and merges the buffered outcomes in
// deterministic order. This is the only place replica state crosses back
// into router state.
func (c *Cluster) advanceTo(t sim.Time) {
	reps := c.replicas
	forkjoin.Do(len(reps), c.advanceWorkers(), func(i int) {
		reps[i].advance(t)
	})
	c.mergeOutboxes()
}

// outboxKey orders one buffered outcome during a merge: (at, slot, pos)
// is unique per outcome, so any comparison sort yields the same total
// order.
type outboxKey struct {
	at   sim.Time
	slot int
	pos  int
}

// outboxKeyLess is the merge ordering: time, then replica slot, then
// intra-replica buffer order. A top-level function rather than a closure
// so sorting captures nothing.
func outboxKeyLess(a, b outboxKey) bool {
	if a.at < b.at {
		return true
	}
	if b.at < a.at {
		return false
	}
	if a.slot != b.slot {
		return a.slot < b.slot
	}
	return a.pos < b.pos
}

// mergeOutboxes drains every replica outbox into the outer environment
// in (time, replica slot, intra-replica order) order — a total order
// independent of fork/join scheduling, so serial and parallel
// advancement produce byte-identical results. Keys are collected into a
// cluster-held scratch slice and insertion-sorted in place: windows are
// short, so outboxes hold at most a handful of outcomes and the merge
// must not allocate per window.
//
//bullet:hotpath
func (c *Cluster) mergeOutboxes() {
	items := c.merge[:0]
	for si, r := range c.replicas {
		for pi, o := range r.outbox {
			//lint:ignore hotalloc scratch growth is amortized; steady state reuses reserved capacity
			items = append(items, outboxKey{at: o.at, slot: si, pos: pi})
		}
	}
	c.merge = items
	if len(items) == 0 {
		return
	}
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && outboxKeyLess(items[j], items[j-1]); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	for _, it := range items {
		c.applyOutcome(c.replicas[it.slot], c.replicas[it.slot].outbox[it.pos])
	}
	for _, r := range c.replicas {
		r.outbox = r.outbox[:0]
	}
}

// applyOutcome settles one buffered completion or shed against router
// state: stale deliveries from replicas that no longer own the request
// (it failed over at a crash) are swallowed, live ones release the
// routing accounting and flow to the outer environment.
func (c *Cluster) applyOutcome(r *replica, o outcome) {
	if c.rs != nil {
		id := o.done.ID
		if o.isShed {
			id = o.shed.ID
		}
		if fl, ok := c.rs.flights[id]; ok {
			c.settleFlight(r, fl, o, id)
			return
		}
	}
	if o.isShed {
		if c.routed[o.shed.ID] != r {
			c.stale++
			return
		}
		delete(c.routed, o.shed.ID)
		delete(r.live, o.shed.ID)
		r.inflight--
		r.tokens -= o.shed.InputTokens
		c.outer.Shed(o.shed)
		return
	}
	if c.routed[o.done.ID] != r {
		c.stale++
		return
	}
	delete(c.routed, o.done.ID)
	delete(r.live, o.done.ID)
	r.inflight--
	r.tokens -= o.done.InputTokens
	c.outer.Complete(o.done)
}

// schedulePump keeps the outer clock tethered to replica progress: one
// rescheduled event at the earliest pending replica event. When it fires
// the replicas advance to that horizon (processing, in parallel, every
// replica event at it) and the pump re-arms at the next one. Without
// pending replica events the pump stands down — the outer run loop then
// correctly treats an idle cluster with outstanding requests as a
// deadlock.
func (c *Cluster) schedulePump() {
	var at sim.Time
	found := false
	for _, r := range c.replicas {
		if t, ok := r.env.Sim.NextAt(); ok && (!found || t < at) {
			at, found = t, true
		}
	}
	if !found {
		c.outer.Sim.Cancel(c.pump)
		c.pump = nil
		return
	}
	if c.pump != nil && c.outer.Sim.Reschedule(c.pump, at) {
		return
	}
	c.pump = c.outer.Sim.At(at, c.onPump)
}

// onPump is a router decision point with no decision: advance replicas
// to the outer clock and re-arm.
func (c *Cluster) onPump() {
	c.pump = nil
	c.advanceTo(c.outer.Sim.Now())
	c.schedulePump()
}

// Submit implements serving.System. Every submission is a router
// decision point: replicas first catch up to the arrival instant (so
// load accounting reflects everything that completed before it), then
// the policy places the request. Arrivals that find every replica down
// are deferred and flushed at the next recovery.
func (c *Cluster) Submit(r workload.Request) {
	c.advanceTo(c.outer.Sim.Now())
	if c.rs != nil {
		c.submitResilient(r, true)
		c.schedulePump()
		return
	}
	rep := c.pick(r)
	if rep == nil {
		c.deferred = append(c.deferred, r)
		c.schedulePump()
		return
	}
	c.place(rep, r)
	rep.sys.Submit(r)
	c.schedulePump()
}

// place records the routing accounting for a request on its chosen
// replica: load counters, the failover set, and the ownership map.
func (c *Cluster) place(rep *replica, r workload.Request) {
	rep.inflight++
	rep.tokens += r.InputTokens
	rep.live[r.ID] = r
	c.routed[r.ID] = rep
}

// pick returns the routing policy's choice among healthy replicas, nil
// when all are down.
func (c *Cluster) pick(r workload.Request) *replica {
	return c.pickWhere(func(rep *replica) bool { return !rep.down })
}

// pickWhere runs the routing policy over the replicas that satisfy ok,
// nil when none do. RoundRobin advances the cursor past rejected
// candidates, matching the health-aware legacy behavior.
func (c *Cluster) pickWhere(ok func(*replica) bool) *replica {
	switch c.cfg.Policy {
	case RoundRobin:
		for i := 0; i < len(c.replicas); i++ {
			rep := c.replicas[c.next%len(c.replicas)]
			c.next++
			if ok(rep) {
				return rep
			}
		}
		return nil
	case JoinShortestQueue:
		var best *replica
		for _, rep := range c.replicas {
			if !ok(rep) {
				continue
			}
			if best == nil || rep.sys.Prefill.QueueDepth() < best.sys.Prefill.QueueDepth() {
				best = rep
			}
		}
		return best
	default: // LeastLoaded
		var best *replica
		for _, rep := range c.replicas {
			if !ok(rep) {
				continue
			}
			if best == nil || rep.tokens < best.tokens {
				best = rep
			}
		}
		return best
	}
}

// AttachFaults arms resilience on every replica and registers the
// cluster as the injector's handler for all fault kinds: crashes are
// handled here, single-device faults are routed to the targeted replica.
func (c *Cluster) AttachFaults(inj *faults.Injector, wcfg core.WatchdogConfig) {
	if c.wcfg != nil {
		panic("cluster: faults attached twice")
	}
	c.wcfg = &wcfg
	for _, r := range c.replicas {
		r.sys.EnableResilience(wcfg)
	}
	c.rs = newRouterState(c.cfg)
	inj.Handle(faults.KindReplicaCrash, c.onReplicaCrash)
	inj.Handle(faults.KindSMDegrade, c.routeFault)
	inj.Handle(faults.KindEngineStall, c.routeFault)
	inj.Handle(faults.KindKVShrink, c.routeFault)
	inj.Handle(faults.KindLinkDegrade, c.onLinkFault)
	inj.Handle(faults.KindRouterBlip, c.onRouterBlip)
	inj.Handle(faults.KindReplicaDrain, c.onReplicaDrain)
}

// routeFault applies a single-device fault to the targeted replica — a
// router decision point, so the fleet first catches up to the fault
// instant. Faults aimed at a crashed replica are dropped — the machine
// is gone.
func (c *Cluster) routeFault(ev faults.Event) {
	c.advanceTo(c.outer.Sim.Now())
	rep := c.replicas[ev.Replica%len(c.replicas)]
	if !rep.down {
		rep.sys.ApplyFault(ev)
	}
	c.schedulePump()
}

// onReplicaCrash fails a replica: health-aware routing stops picking it,
// its in-flight requests are re-submitted elsewhere (deterministically,
// in request-ID order), and after the recovery delay a fresh replica
// (new device, new KV pool, new private clock) takes its slot. The
// crashed instance keeps draining whatever was on its GPU until the
// readmission replaces it, but it no longer owns any request — its late
// completions are swallowed by the ownership check at the merge.
func (c *Cluster) onReplicaCrash(ev faults.Event) {
	c.advanceTo(c.outer.Sim.Now())
	rep := c.replicas[ev.Replica%len(c.replicas)]
	if rep.down {
		c.schedulePump()
		return // already down; the machine cannot crash twice
	}
	rep.down = true
	c.crashes++
	idx := ev.Replica % len(c.replicas)
	lost := make([]workload.Request, 0, len(rep.live))
	for _, w := range rep.live {
		lost = append(lost, w)
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].ID < lost[j].ID })
	if c.tl != nil {
		c.tl.Instant("cluster", "crash", c.outer.Sim.Now(),
			timeline.I("replica", idx),
			timeline.I("lost", len(lost)))
	}
	rep.live = map[string]workload.Request{}
	if c.rs != nil {
		// Dispatches parked on the dead link fail over via the lost set;
		// the generation bump no-ops their pending delivery, timeout, and
		// link-restore callbacks. Protected entries resolve their breaker
		// outcome as a failure — a half-open probe wiped by the crash
		// would otherwise never report and wedge the slot's breaker.
		for _, h := range rep.held {
			if h.protected {
				c.rs.breakers[rep.slot].ReportFailure(c.outer.Sim.Now())
			}
		}
		rep.held = nil
		rep.linkGen++
	}
	for _, w := range lost {
		delete(c.routed, w.ID)
		if c.rs != nil {
			if c.detachFlight(rep, w) {
				continue // a hedge copy survives elsewhere
			}
			c.retried++
			c.submitResilient(w, false)
			continue
		}
		c.retried++
		c.Submit(w)
	}
	c.outer.Sim.PostAfter(ev.Recovery, func() {
		c.advanceTo(c.outer.Sim.Now())
		c.replicas[idx] = c.newReplica(idx)
		c.recoveries++
		c.recoveryTime += ev.Recovery
		if c.tl != nil {
			c.tl.Instant("cluster", "recovery", c.outer.Sim.Now(),
				timeline.I("replica", idx),
				timeline.I("deferred", len(c.deferred)))
		}
		c.flushDeferred()
		c.schedulePump()
	})
	c.schedulePump()
}

// flushDeferred re-submits the arrivals that found every replica
// unavailable. Resilient flushes skip the admission bucket — the
// requests were already admitted (or arrived before rate limiting was
// armed) and must not be charged twice.
func (c *Cluster) flushDeferred() {
	flush := c.deferred
	c.deferred = nil
	for _, w := range flush {
		if c.rs != nil {
			c.submitResilient(w, false)
			continue
		}
		c.Submit(w)
	}
}

// Replicas returns the per-replica completed-request counts, for balance
// analysis.
func (c *Cluster) Replicas() []int {
	out := make([]int, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = len(r.env.Completed())
	}
	return out
}

// CheckDrained panics if any live replica leaked KV blocks. Crashed
// replicas are exempt: a machine that died mid-run may hold KV for work
// it was draining when the run ended.
func (c *Cluster) CheckDrained() {
	for i, r := range c.replicas {
		if r.down {
			continue
		}
		r.env.KV.CheckInvariants()
		if used := r.env.KV.UsedBlocks(); used != 0 {
			panic(fmt.Sprintf("cluster: replica %d leaked %d KV blocks", i, used))
		}
	}
}

// Crashes returns how many replica-crash events were applied.
func (c *Cluster) Crashes() int { return c.crashes }

// StaleCompletions returns how many late completions from crashed
// replicas were swallowed by the ownership check.
func (c *Cluster) StaleCompletions() int { return c.stale }

// Resilience aggregates recovery accounting across the cluster: the
// router's own failover counters plus every current replica's local
// watchdog counters. The caller owns injector-level counters
// (FaultsInjected, Downtime).
func (c *Cluster) Resilience() metrics.Resilience {
	out := metrics.Resilience{
		Retried:      c.retried,
		Recoveries:   c.recoveries,
		RecoveryTime: c.recoveryTime,
	}
	if rs := c.rs; rs != nil {
		out.LinkFaults = rs.linkFaults
		out.Drains = rs.drains
		out.Handoffs = rs.handoffs
		for cl, n := range rs.rateLimited {
			out.RateLimited += n
			out.RateLimitedByClass[cl] = n
		}
		for _, b := range rs.breakers {
			out.BreakerOpens += b.Opens()
			out.BreakerCloses += b.Closes()
		}
		if rs.hedger != nil {
			out.Hedges = rs.hedger.Hedges()
			out.HedgeWins = rs.hedger.Wins()
		}
	}
	for _, r := range c.replicas {
		out.Add(r.sys.Resilience())
	}
	return out
}

// Pressure aggregates memory-pressure accounting across every current
// replica (zero when Options.Pressure is off).
func (c *Cluster) Pressure() metrics.Pressure {
	var out metrics.Pressure
	for _, r := range c.replicas {
		out.Add(r.sys.Pressure())
	}
	return out
}

// QoS aggregates the QoS controllers' per-class token accounting across
// every current replica (zero when Options.QoS is off). The scalar
// decision counters and final caps are per-replica control state and are
// summed/zeroed respectively — only the accounting is meaningful
// cluster-wide.
func (c *Cluster) QoS() qos.Accounting {
	var out qos.Accounting
	for _, r := range c.replicas {
		out.Add(r.sys.QoS().Accounting)
	}
	return out
}

// GPUStats aggregates device counters across replicas.
func (c *Cluster) GPUStats() []gpusim.Stats {
	out := make([]gpusim.Stats, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = r.env.GPU.Stats()
	}
	return out
}
