// Package cluster scales a serving system horizontally: a router
// dispatches requests across N single-GPU replicas sharing one simulated
// clock. It exercises the deployment question the paper's related-work
// section raises — whether to scale out with more whole-GPU instances or
// to squeeze more out of each GPU with spatial-temporal orchestration —
// and lets both answers compose (a cluster of Bullet instances).
package cluster

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/workload"
)

// Policy selects how the router places requests.
type Policy string

const (
	// RoundRobin cycles through replicas.
	RoundRobin Policy = "round-robin"
	// LeastLoaded routes to the replica with the fewest in-flight
	// tokens (queued + executing input tokens plus decode batch).
	LeastLoaded Policy = "least-loaded"
	// JoinShortestQueue routes to the replica with the fewest waiting
	// requests.
	JoinShortestQueue Policy = "jsq"
)

// Config shapes the cluster.
type Config struct {
	Replicas int
	Policy   Policy
	// Options configure each replica's Bullet instance.
	Options core.Options
}

// DefaultConfig returns a two-replica least-loaded Bullet cluster.
func DefaultConfig() Config {
	return Config{Replicas: 2, Policy: LeastLoaded, Options: core.Options{Mode: core.ModeFull}}
}

// replica is one Bullet instance on its own device.
type replica struct {
	env      *serving.Env
	sys      *core.Bullet
	inflight int // live requests routed here
	tokens   int // live input tokens routed here
}

// Cluster implements serving.System over N replicas.
type Cluster struct {
	outer    *serving.Env
	cfg      Config
	replicas []*replica
	next     int
	routed   map[string]*replica
}

// New builds the cluster on an outer environment. The outer env's own GPU
// and KV pool are unused (replicas own their devices); it provides the
// clock, SLO, and completion collection.
func New(outer *serving.Env, cfg Config) *Cluster {
	if cfg.Replicas <= 0 {
		panic(fmt.Sprintf("cluster: invalid replica count %d", cfg.Replicas))
	}
	switch cfg.Policy {
	case RoundRobin, LeastLoaded, JoinShortestQueue:
	default:
		panic(fmt.Sprintf("cluster: unknown policy %q", cfg.Policy))
	}
	c := &Cluster{outer: outer, cfg: cfg, routed: map[string]*replica{}}
	for i := 0; i < cfg.Replicas; i++ {
		env := serving.NewEnvWithSim(outer.Sim, outer.GPU.Spec, outer.Model, datasetOf(outer))
		r := &replica{env: env}
		env.OnComplete = func(m metrics.Request) {
			r.inflight--
			r.tokens -= m.InputTokens
			c.outer.Complete(m)
		}
		r.sys = core.New(env, cfg.Options)
		c.replicas = append(c.replicas, r)
	}
	return c
}

// datasetOf recovers the dataset name from the env's SLO (Table 2 pairs
// are unique).
func datasetOf(env *serving.Env) string {
	for _, name := range []string{"sharegpt", "azure-code", "arxiv-summary"} {
		if metrics.SLOFor(name) == env.SLO {
			return name
		}
	}
	return "sharegpt"
}

// Name implements serving.System.
func (c *Cluster) Name() string {
	return fmt.Sprintf("cluster-%dx-%s", c.cfg.Replicas, c.cfg.Policy)
}

// Submit implements serving.System.
func (c *Cluster) Submit(r workload.Request) {
	rep := c.pick(r)
	rep.inflight++
	rep.tokens += r.InputTokens
	c.routed[r.ID] = rep
	rep.sys.Submit(r)
}

func (c *Cluster) pick(r workload.Request) *replica {
	switch c.cfg.Policy {
	case RoundRobin:
		rep := c.replicas[c.next%len(c.replicas)]
		c.next++
		return rep
	case JoinShortestQueue:
		best := c.replicas[0]
		for _, rep := range c.replicas[1:] {
			if rep.sys.Prefill.QueueDepth() < best.sys.Prefill.QueueDepth() {
				best = rep
			}
		}
		return best
	default: // LeastLoaded
		best := c.replicas[0]
		for _, rep := range c.replicas[1:] {
			if rep.tokens < best.tokens {
				best = rep
			}
		}
		return best
	}
}

// Replicas returns the per-replica completed-request counts, for balance
// analysis.
func (c *Cluster) Replicas() []int {
	out := make([]int, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = len(r.env.Completed())
	}
	return out
}

// CheckDrained panics if any replica leaked KV blocks.
func (c *Cluster) CheckDrained() {
	for i, r := range c.replicas {
		r.env.KV.CheckInvariants()
		if used := r.env.KV.UsedBlocks(); used != 0 {
			panic(fmt.Sprintf("cluster: replica %d leaked %d KV blocks", i, used))
		}
	}
}

// GPUStats aggregates device counters across replicas.
func (c *Cluster) GPUStats() []gpusim.Stats {
	out := make([]gpusim.Stats, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = r.env.GPU.Stats()
	}
	return out
}
