// Package cluster scales a serving system horizontally: a router
// dispatches requests across N single-GPU replicas sharing one simulated
// clock. It exercises the deployment question the paper's related-work
// section raises — whether to scale out with more whole-GPU instances or
// to squeeze more out of each GPU with spatial-temporal orchestration —
// and lets both answers compose (a cluster of Bullet instances).
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// Policy selects how the router places requests.
type Policy string

const (
	// RoundRobin cycles through replicas.
	RoundRobin Policy = "round-robin"
	// LeastLoaded routes to the replica with the fewest in-flight
	// tokens (queued + executing input tokens plus decode batch).
	LeastLoaded Policy = "least-loaded"
	// JoinShortestQueue routes to the replica with the fewest waiting
	// requests.
	JoinShortestQueue Policy = "jsq"
)

// Config shapes the cluster.
type Config struct {
	Replicas int
	Policy   Policy
	// Options configure each replica's Bullet instance.
	Options core.Options
}

// DefaultConfig returns a two-replica least-loaded Bullet cluster.
func DefaultConfig() Config {
	return Config{Replicas: 2, Policy: LeastLoaded, Options: core.Options{Mode: core.ModeFull}}
}

// replica is one Bullet instance on its own device.
type replica struct {
	env      *serving.Env
	sys      *core.Bullet
	inflight int // live requests routed here
	tokens   int // live input tokens routed here
	// down marks a crashed replica: the router stops picking it and its
	// late completions are swallowed as stale.
	down bool
	// live tracks the requests currently owned by this replica, the set
	// that fails over when it crashes.
	live map[string]workload.Request
}

// Cluster implements serving.System over N replicas.
type Cluster struct {
	outer    *serving.Env
	cfg      Config
	replicas []*replica
	next     int
	routed   map[string]*replica

	// wcfg is non-nil once AttachFaults armed resilience; restarted
	// replicas inherit it.
	wcfg *core.WatchdogConfig
	// deferred holds arrivals that found every replica down; they flush
	// at the next recovery.
	deferred []workload.Request

	crashes    int
	retried    int
	recoveries int
	stale      int

	// tl is the root recorder attached by AttachTimeline; each replica
	// records through a per-replica scoped view of it.
	tl *timeline.Recorder
}

// New builds the cluster on an outer environment. The outer env's own GPU
// and KV pool are unused (replicas own their devices); it provides the
// clock, SLO, and completion collection.
func New(outer *serving.Env, cfg Config) *Cluster {
	if cfg.Replicas <= 0 {
		panic(fmt.Sprintf("cluster: invalid replica count %d", cfg.Replicas))
	}
	switch cfg.Policy {
	case RoundRobin, LeastLoaded, JoinShortestQueue:
	default:
		panic(fmt.Sprintf("cluster: unknown policy %q", cfg.Policy))
	}
	c := &Cluster{outer: outer, cfg: cfg, routed: map[string]*replica{}}
	for i := 0; i < cfg.Replicas; i++ {
		c.replicas = append(c.replicas, c.newReplica(i))
	}
	return c
}

// newReplica builds one replica (fresh device, fresh KV pool) whose
// completion and shed paths route through the cluster's ownership check:
// a request completed by a replica that no longer owns it (it crashed
// and the request failed over) is swallowed as stale instead of being
// double-counted.
func (c *Cluster) newReplica(idx int) *replica {
	env := serving.NewEnvWithSim(c.outer.Sim, c.outer.GPU.Spec, c.outer.Model, datasetOf(c.outer))
	r := &replica{env: env, live: map[string]workload.Request{}}
	env.OnComplete = func(m metrics.Request) {
		if c.routed[m.ID] != r {
			c.stale++
			return
		}
		delete(c.routed, m.ID)
		delete(r.live, m.ID)
		r.inflight--
		r.tokens -= m.InputTokens
		c.outer.Complete(m)
	}
	env.OnShed = func(w workload.Request) {
		if c.routed[w.ID] != r {
			c.stale++
			return
		}
		delete(c.routed, w.ID)
		delete(r.live, w.ID)
		r.inflight--
		r.tokens -= w.InputTokens
		c.outer.Shed(w)
	}
	r.sys = core.New(env, c.cfg.Options)
	if c.wcfg != nil {
		r.sys.EnableResilience(*c.wcfg)
	}
	// A nil recorder scopes to nil, so the disabled fast path propagates.
	r.sys.AttachTimeline(c.tl.Scoped(fmt.Sprintf("replica%d", idx)))
	return r
}

// AttachTimeline threads a recorder through the cluster: each replica
// (including ones restarted after a crash) records through a scoped view
// tagged with its slot, and router-level crash/recovery instants land on
// the root "cluster" lane.
func (c *Cluster) AttachTimeline(rec *timeline.Recorder) {
	c.tl = rec
	for i, r := range c.replicas {
		r.sys.AttachTimeline(rec.Scoped(fmt.Sprintf("replica%d", i)))
	}
}

// datasetOf recovers the dataset name from the env's SLO (Table 2 pairs
// are unique).
func datasetOf(env *serving.Env) string {
	for _, name := range []string{"sharegpt", "azure-code", "arxiv-summary"} {
		if metrics.SLOFor(name) == env.SLO {
			return name
		}
	}
	return "sharegpt"
}

// Name implements serving.System.
func (c *Cluster) Name() string {
	return fmt.Sprintf("cluster-%dx-%s", c.cfg.Replicas, c.cfg.Policy)
}

// Submit implements serving.System. Arrivals that find every replica
// down are deferred and flushed at the next recovery.
func (c *Cluster) Submit(r workload.Request) {
	rep := c.pick(r)
	if rep == nil {
		c.deferred = append(c.deferred, r)
		return
	}
	rep.inflight++
	rep.tokens += r.InputTokens
	rep.live[r.ID] = r
	c.routed[r.ID] = rep
	rep.sys.Submit(r)
}

// pick returns the routing policy's choice among healthy replicas, nil
// when all are down.
func (c *Cluster) pick(r workload.Request) *replica {
	switch c.cfg.Policy {
	case RoundRobin:
		for i := 0; i < len(c.replicas); i++ {
			rep := c.replicas[c.next%len(c.replicas)]
			c.next++
			if !rep.down {
				return rep
			}
		}
		return nil
	case JoinShortestQueue:
		var best *replica
		for _, rep := range c.replicas {
			if rep.down {
				continue
			}
			if best == nil || rep.sys.Prefill.QueueDepth() < best.sys.Prefill.QueueDepth() {
				best = rep
			}
		}
		return best
	default: // LeastLoaded
		var best *replica
		for _, rep := range c.replicas {
			if rep.down {
				continue
			}
			if best == nil || rep.tokens < best.tokens {
				best = rep
			}
		}
		return best
	}
}

// AttachFaults arms resilience on every replica and registers the
// cluster as the injector's handler for all fault kinds: crashes are
// handled here, single-device faults are routed to the targeted replica.
func (c *Cluster) AttachFaults(inj *faults.Injector, wcfg core.WatchdogConfig) {
	if c.wcfg != nil {
		panic("cluster: faults attached twice")
	}
	c.wcfg = &wcfg
	for _, r := range c.replicas {
		r.sys.EnableResilience(wcfg)
	}
	inj.Handle(faults.KindReplicaCrash, c.onReplicaCrash)
	inj.Handle(faults.KindSMDegrade, c.routeFault)
	inj.Handle(faults.KindEngineStall, c.routeFault)
	inj.Handle(faults.KindKVShrink, c.routeFault)
}

// routeFault applies a single-device fault to the targeted replica.
// Faults aimed at a crashed replica are dropped — the machine is gone.
func (c *Cluster) routeFault(ev faults.Event) {
	rep := c.replicas[ev.Replica%len(c.replicas)]
	if rep.down {
		return
	}
	rep.sys.ApplyFault(ev)
}

// onReplicaCrash fails a replica: health-aware routing stops picking it,
// its in-flight requests are re-submitted elsewhere (deterministically,
// in request-ID order), and after the recovery delay a fresh replica
// (new device, new KV pool) takes its slot. The crashed instance keeps
// draining whatever was on its GPU, but it no longer owns any request —
// its late completions are swallowed by the ownership check.
func (c *Cluster) onReplicaCrash(ev faults.Event) {
	rep := c.replicas[ev.Replica%len(c.replicas)]
	if rep.down {
		return // already down; the machine cannot crash twice
	}
	rep.down = true
	c.crashes++
	idx := ev.Replica % len(c.replicas)
	lost := make([]workload.Request, 0, len(rep.live))
	for _, w := range rep.live {
		lost = append(lost, w)
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].ID < lost[j].ID })
	if c.tl != nil {
		c.tl.Instant("cluster", "crash", c.outer.Sim.Now(),
			timeline.I("replica", idx),
			timeline.I("lost", len(lost)))
	}
	rep.live = map[string]workload.Request{}
	for _, w := range lost {
		delete(c.routed, w.ID)
		c.retried++
		c.Submit(w)
	}
	c.outer.Sim.After(ev.Recovery, func() {
		c.replicas[idx] = c.newReplica(idx)
		c.recoveries++
		if c.tl != nil {
			c.tl.Instant("cluster", "recovery", c.outer.Sim.Now(),
				timeline.I("replica", idx),
				timeline.I("deferred", len(c.deferred)))
		}
		flush := c.deferred
		c.deferred = nil
		for _, w := range flush {
			c.Submit(w)
		}
	})
}

// Replicas returns the per-replica completed-request counts, for balance
// analysis.
func (c *Cluster) Replicas() []int {
	out := make([]int, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = len(r.env.Completed())
	}
	return out
}

// CheckDrained panics if any live replica leaked KV blocks. Crashed
// replicas are exempt: a machine that died mid-run may hold KV for work
// it was draining when the run ended.
func (c *Cluster) CheckDrained() {
	for i, r := range c.replicas {
		if r.down {
			continue
		}
		r.env.KV.CheckInvariants()
		if used := r.env.KV.UsedBlocks(); used != 0 {
			panic(fmt.Sprintf("cluster: replica %d leaked %d KV blocks", i, used))
		}
	}
}

// Crashes returns how many replica-crash events were applied.
func (c *Cluster) Crashes() int { return c.crashes }

// StaleCompletions returns how many late completions from crashed
// replicas were swallowed by the ownership check.
func (c *Cluster) StaleCompletions() int { return c.stale }

// Resilience aggregates recovery accounting across the cluster: the
// router's own failover counters plus every current replica's local
// watchdog counters. The caller owns injector-level counters
// (FaultsInjected, Downtime).
func (c *Cluster) Resilience() metrics.Resilience {
	out := metrics.Resilience{Retried: c.retried, Recoveries: c.recoveries}
	for _, r := range c.replicas {
		out.Add(r.sys.Resilience())
	}
	return out
}

// Pressure aggregates memory-pressure accounting across every current
// replica (zero when Options.Pressure is off).
func (c *Cluster) Pressure() metrics.Pressure {
	var out metrics.Pressure
	for _, r := range c.replicas {
		out.Add(r.sys.Pressure())
	}
	return out
}

// GPUStats aggregates device counters across replicas.
func (c *Cluster) GPUStats() []gpusim.Stats {
	out := make([]gpusim.Stats, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = r.env.GPU.Stats()
	}
	return out
}
