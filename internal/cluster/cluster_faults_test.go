package cluster

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/timeline"
	"repro/internal/units"
	"repro/internal/workload"
)

// runFaulty drives a cluster run with an explicit fault schedule — a
// timeline recorder attached, exercising per-replica span scoping on
// every fault path — and returns the cluster, the result, the full
// resilience accounting (router + replicas + injector) and the exported
// trace.
func runFaulty(t testing.TB, cfg Config, sched faults.Schedule, rate float64, n int, seed int64) (*Cluster, serving.Result, metrics.Resilience, []byte) {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	c := New(env, cfg)
	c.AttachTimeline(timeline.New(0))
	inj := faults.NewInjector(env.Sim, sched)
	c.AttachFaults(inj, core.DefaultWatchdog())
	inj.Arm()
	res := env.Run(c, workload.Generate(workload.AzureCode, rate, n, seed))
	c.CheckDrained()
	rl := c.Resilience()
	rl.FaultsInjected = inj.Injected()
	rl.Downtime = inj.ScheduledDowntime()
	var buf bytes.Buffer
	if err := c.tl.WriteChrome(&buf); err != nil {
		t.Fatalf("exporting cluster trace: %v", err)
	}
	return c, res, rl, buf.Bytes()
}

func crashAt(at units.Seconds, replica int, recovery units.Seconds) faults.Schedule {
	return faults.Schedule{Events: []faults.Event{{
		At: at, Kind: faults.KindReplicaCrash, Replica: replica, Recovery: recovery,
	}}}
}

// TestReplicaCrashFailsOver is the cluster half of the tentpole
// acceptance check: a mid-run crash fails the victim's in-flight
// requests over to the survivor, a fresh replica is readmitted after the
// recovery delay, and every request still ends completed or shed.
func TestReplicaCrashFailsOver(t *testing.T) {
	const n = 60
	cfg := Config{Replicas: 2, Policy: LeastLoaded, Options: opts()}
	c, res, rl, _ := runFaulty(t, cfg, crashAt(0.5, 0, 1), 6, n, 21)
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d = %d, want %d", res.Summary.Requests, res.Shed, got, n)
	}
	if c.Crashes() != 1 {
		t.Fatalf("crashes = %d, want 1", c.Crashes())
	}
	if rl.FaultsInjected != 1 {
		t.Fatalf("injected = %d, want 1", rl.FaultsInjected)
	}
	if rl.Retried == 0 {
		t.Fatal("no in-flight requests failed over at the crash")
	}
	if rl.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (the readmission)", rl.Recoveries)
	}
	if rl.Downtime != 1 {
		t.Fatalf("downtime = %v, want the 1s recovery delay", rl.Downtime)
	}
}

// TestZombieCompletionsSwallowed: the crashed replica keeps draining
// whatever was on its GPU, but it owns nothing — its late completions
// must be swallowed by the ownership check, never double-counted.
func TestZombieCompletionsSwallowed(t *testing.T) {
	const n = 60
	cfg := Config{Replicas: 2, Policy: RoundRobin, Options: opts()}
	c, res, _, _ := runFaulty(t, cfg, crashAt(0.8, 1, 40), 8, n, 22)
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, n)
	}
	if c.StaleCompletions() == 0 {
		t.Fatal("the draining zombie produced no stale completions to swallow")
	}
	if len(res.Requests) != res.Summary.Requests {
		t.Fatalf("result carries %d requests but summary counts %d", len(res.Requests), res.Summary.Requests)
	}
}

// TestAllReplicasDownDefersArrivals: with the only replica down,
// arrivals (and the failover re-submissions) are deferred and flushed to
// the fresh replica at readmission; nothing is lost.
func TestAllReplicasDownDefersArrivals(t *testing.T) {
	const n = 30
	cfg := Config{Replicas: 1, Policy: RoundRobin, Options: opts()}
	c, res, rl, _ := runFaulty(t, cfg, crashAt(0.3, 0, 2), 6, n, 23)
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	if c.Crashes() != 1 || rl.Recoveries != 1 {
		t.Fatalf("crashes %d / recoveries %d, want 1/1", c.Crashes(), rl.Recoveries)
	}
	// Everything after t=0.3 ran on the readmitted replica.
	if got := c.Replicas()[0]; got == 0 {
		t.Fatal("readmitted replica completed nothing")
	}
}

// TestRoutedDeviceFaultsHitOnlyTheirReplica: SM-degrade and stall events
// carry a replica index; they must land on that replica's device alone.
func TestRoutedDeviceFaultsHitOnlyTheirReplica(t *testing.T) {
	sched := faults.Schedule{Events: []faults.Event{
		{At: 0.2, Kind: faults.KindSMDegrade, Replica: 1,
			FirstSM: 54, NumSMs: 54, Throttle: 0, Duration: 1},
		{At: 0.4, Kind: faults.KindEngineStall, Replica: 0,
			Target: faults.TargetDecode, Stall: units.FromMs(20)},
	}}
	cfg := Config{Replicas: 2, Policy: LeastLoaded, Options: opts()}
	c, res, rl, _ := runFaulty(t, cfg, sched, 6, 40, 24)
	if res.Summary.Requests+res.Shed != 40 {
		t.Fatalf("completed %d + shed %d, want 40", res.Summary.Requests, res.Shed)
	}
	if got := c.replicas[1].sys.Resources.Rebuilds(); got != 2 {
		t.Fatalf("target replica rebuilds = %d, want 2 (fault + recovery)", got)
	}
	if got := c.replicas[0].sys.Resources.Rebuilds(); got != 0 {
		t.Fatalf("untargeted replica rebuilt %d times", got)
	}
	if rl.FaultsInjected != 2 {
		t.Fatalf("injected = %d, want 2", rl.FaultsInjected)
	}
}

// TestClusterFaultDeterminism: a generated schedule mixing all three
// fault kinds over a cluster must replay bit-identically.
func TestClusterFaultDeterminism(t *testing.T) {
	fcfg := faults.DefaultConfig(108, units.Seconds(20))
	fcfg.Seed = 7
	fcfg.Replicas = 2
	fcfg.DegradeRate = 0.1
	fcfg.StallRate = 0.1
	fcfg.CrashRate = 0.05
	cfg := Config{Replicas: 2, Policy: LeastLoaded, Options: opts()}
	_, a, ra, ta := runFaulty(t, cfg, faults.Generate(fcfg), 5, 40, 25)
	_, b, rb, tb := runFaulty(t, cfg, faults.Generate(fcfg), 5, 40, 25)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a.Summary, b.Summary)
	}
	if ra != rb {
		t.Fatalf("resilience diverged: %+v vs %+v", ra, rb)
	}
	if !bytes.Equal(ta, tb) {
		t.Fatalf("cluster trace JSON diverged (%d vs %d bytes)", len(ta), len(tb))
	}
	if !strings.Contains(string(ta), `"name":"replica1"`) {
		t.Fatal("trace lacks per-replica process scoping")
	}
}

func TestAttachFaultsTwicePanics(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	c := New(env, Config{Replicas: 2, Policy: LeastLoaded, Options: opts()})
	inj := faults.NewInjector(env.Sim, faults.Schedule{})
	c.AttachFaults(inj, core.DefaultWatchdog())
	defer func() {
		if recover() == nil {
			t.Fatal("second AttachFaults accepted")
		}
	}()
	c.AttachFaults(faults.NewInjector(env.Sim, faults.Schedule{}), core.DefaultWatchdog())
}

// TestRoutingUnderUnequalReplicaSpeeds pins the token- and queue-aware
// policies against heterogeneous hardware: with one replica throttled to
// a fraction of its compute, both replicas must keep serving (the slow
// one is not starved, the fast one is not ignored), every request must
// finish, and the drained invariants must hold.
func TestRoutingUnderUnequalReplicaSpeeds(t *testing.T) {
	const n = 80
	for _, policy := range []Policy{LeastLoaded, JoinShortestQueue} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
			c := New(env, Config{Replicas: 2, Policy: policy, Options: opts()})
			// Replica 0 runs at 30% speed across the whole device.
			c.replicas[0].env.GPU.SetSMHealth(0, 108, 0.3)
			res := env.Run(c, workload.Generate(workload.AzureCode, 9, n, 26))
			c.CheckDrained()
			if res.Summary.Requests != n {
				t.Fatalf("completed %d/%d", res.Summary.Requests, n)
			}
			counts := c.Replicas()
			if counts[0] == 0 {
				t.Fatalf("%s starved the slow replica: %v", policy, counts)
			}
			if counts[1] == 0 {
				t.Fatalf("%s ignored the fast replica: %v", policy, counts)
			}
			if counts[0]+counts[1] != n {
				t.Fatalf("%s counts %v do not sum to %d", policy, counts, n)
			}
		})
	}
}
