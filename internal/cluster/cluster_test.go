package cluster

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

func opts() core.Options {
	return core.Options{Mode: core.ModeFull, Params: estimator.DefaultParams()}
}

func run(t testing.TB, cfg Config, rate float64, n int, seed int64) (*Cluster, serving.Result) {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	c := New(env, cfg)
	res := env.Run(c, workload.Generate(workload.AzureCode, rate, n, seed))
	c.CheckDrained()
	return c, res
}

func TestClusterCompletesAll(t *testing.T) {
	c, res := run(t, Config{Replicas: 2, Policy: LeastLoaded, Options: opts()}, 6, 60, 1)
	if res.Summary.Requests != 60 {
		t.Fatalf("completed %d/60", res.Summary.Requests)
	}
	counts := c.Replicas()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 60 {
		t.Fatalf("replica counts %v sum to %d", counts, total)
	}
	if !strings.HasPrefix(res.System, "cluster-2x") {
		t.Fatalf("name = %s", res.System)
	}
}

func TestRoundRobinBalances(t *testing.T) {
	c, _ := run(t, Config{Replicas: 3, Policy: RoundRobin, Options: opts()}, 6, 60, 2)
	for _, n := range c.Replicas() {
		if n != 20 {
			t.Fatalf("round-robin counts = %v", c.Replicas())
		}
	}
}

func TestLeastLoadedBeatsRoundRobinOnSkewedLoad(t *testing.T) {
	// With heavy-tailed input lengths, token-aware routing should give
	// no worse P90 normalized TTFT than blind round-robin.
	mk := func(p Policy) float64 {
		env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
		c := New(env, Config{Replicas: 2, Policy: p, Options: opts()})
		res := env.Run(c, workload.Generate(workload.AzureCode, 8, 120, 3))
		c.CheckDrained()
		return res.Summary.P90NormTTFT
	}
	rr := mk(RoundRobin)
	ll := mk(LeastLoaded)
	if ll > rr*1.3 {
		t.Fatalf("least-loaded P90 %.2f much worse than round-robin %.2f", ll, rr)
	}
}

func TestJSQPolicyRuns(t *testing.T) {
	_, res := run(t, Config{Replicas: 2, Policy: JoinShortestQueue, Options: opts()}, 6, 40, 4)
	if res.Summary.Requests != 40 {
		t.Fatalf("completed %d", res.Summary.Requests)
	}
}

func TestScaleOutIncreasesCapacity(t *testing.T) {
	// At a rate that saturates one GPU, two replicas must serve with
	// much lower latency and no worse SLO attainment.
	env1 := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	one := core.New(env1, opts())
	res1 := env1.Run(one, workload.Generate(workload.AzureCode, 11, 120, 5))

	env2 := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	two := New(env2, Config{Replicas: 2, Policy: LeastLoaded, Options: opts()})
	res2 := env2.Run(two, workload.Generate(workload.AzureCode, 11, 120, 5))
	two.CheckDrained()

	if res2.Summary.SLOAttainment < res1.Summary.SLOAttainment-0.05 {
		t.Fatalf("2 replicas SLO %.2f well below 1 replica %.2f",
			res2.Summary.SLOAttainment, res1.Summary.SLOAttainment)
	}
	if res2.Summary.MeanTTFT > res1.Summary.MeanTTFT*0.7 {
		t.Fatalf("2 replicas TTFT %.3f not well below 1 replica %.3f",
			res2.Summary.MeanTTFT, res1.Summary.MeanTTFT)
	}
}

func TestDeterminism(t *testing.T) {
	_, a := run(t, DefaultConfigWith(opts()), 5, 40, 9)
	_, b := run(t, DefaultConfigWith(opts()), 5, 40, 9)
	if a.Summary != b.Summary {
		t.Fatalf("non-deterministic: %+v vs %+v", a.Summary, b.Summary)
	}
}

// DefaultConfigWith returns the default config with custom options.
func DefaultConfigWith(o core.Options) Config {
	c := DefaultConfig()
	c.Options = o
	return c
}

// TestSerialParallelByteIdentical pins the fork/join isolation contract
// end to end: the full Result (every per-request record, GPU counters,
// makespan) and the per-replica completion counts are byte-identical
// whether replicas advance serially or on several workers. Run with
// -race, this doubles as the data-race proof for the harness.
func TestSerialParallelByteIdentical(t *testing.T) {
	ref, refCounts := func() (serving.Result, []int) {
		cfg := Config{Replicas: 4, Policy: RoundRobin, Options: opts(), Workers: 1}
		c, res := run(t, cfg, 10, 80, 11)
		return res, c.Replicas()
	}()
	for _, w := range []int{2, 4, 0} {
		cfg := Config{Replicas: 4, Policy: RoundRobin, Options: opts(), Workers: w}
		c, res := run(t, cfg, 10, 80, 11)
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("workers=%d diverged from serial: %+v vs %+v", w, res.Summary, ref.Summary)
		}
		if !reflect.DeepEqual(refCounts, c.Replicas()) {
			t.Fatalf("workers=%d replica counts %v, serial %v", w, c.Replicas(), refCounts)
		}
	}
}

// TestSerialParallelByteIdenticalUnderFaults extends the equivalence to
// the resilience path: crash, failover, recovery, and stale-completion
// swallowing must all land identically at every worker count.
func TestSerialParallelByteIdenticalUnderFaults(t *testing.T) {
	mk := func(workers int) (serving.Result, metrics.Resilience, int) {
		env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
		c := New(env, Config{Replicas: 3, Policy: LeastLoaded, Options: opts(), Workers: workers})
		inj := faults.NewInjector(env.Sim, faults.Schedule{Events: []faults.Event{
			{At: 1.2, Kind: faults.KindReplicaCrash, Replica: 1, Recovery: 3},
			{At: 2.0, Kind: faults.KindSMDegrade, Replica: 0, FirstSM: 0, NumSMs: 40, Throttle: 0.5, Duration: 1},
		}})
		c.AttachFaults(inj, core.DefaultWatchdog())
		inj.Arm()
		res := env.Run(c, workload.Generate(workload.AzureCode, 8, 90, 13))
		c.CheckDrained()
		return res, c.Resilience(), c.StaleCompletions()
	}
	ref, refRl, refStale := mk(1)
	if ref.Summary.Requests+ref.Shed != 90 {
		t.Fatalf("faulty run lost requests: %d completed + %d shed", ref.Summary.Requests, ref.Shed)
	}
	for _, w := range []int{3, 0} {
		res, rl, stale := mk(w)
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("workers=%d result diverged from serial", w)
		}
		if rl != refRl || stale != refStale {
			t.Fatalf("workers=%d resilience %+v/%d, serial %+v/%d", w, rl, stale, refRl, refStale)
		}
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	for _, cfg := range []Config{
		{Replicas: 0, Policy: RoundRobin},
		{Replicas: 2, Policy: "nope"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			cfg.Options = opts()
			New(env, cfg)
		}()
	}
}

func TestGPUStats(t *testing.T) {
	c, _ := run(t, Config{Replicas: 2, Policy: RoundRobin, Options: opts()}, 4, 30, 7)
	stats := c.GPUStats()
	if len(stats) != 2 {
		t.Fatalf("stats for %d replicas", len(stats))
	}
	for i, s := range stats {
		if s.FLOPs <= 0 {
			t.Fatalf("replica %d did no work", i)
		}
	}
}
