// Router-tier resilience (DESIGN.md §16): the cluster-side wiring of
// the internal/resilience policy objects, plus the handlers for the
// network/KV-link fault domain (link degradation/loss, router blips,
// graceful drains).
//
// Every piece of state here is mutated exclusively from outer-simulation
// event handlers — Submit, fault callbacks, PostAfter timers, and the
// deterministic outbox merge — never from inside a fork/join window, so
// the serial ≡ parallel byte-identity contract of the cluster survives
// intact (TestChaosSerialParallelIdentical pins it).
//
// The state splits along the arming line:
//
//   - routerState itself exists whenever AttachFaults ran, so link
//     faults, blips, and drains always take effect;
//   - routerState.cfg is non-nil only when Config.Resilience armed the
//     mitigations (breakers, dispatch timeouts, hedging, buckets,
//     graceful drain). A nil cfg leaves the router naive — it keeps
//     dispatching into black holes and treats drains as crashes — which
//     is the control arm of the ext-chaos experiment.
package cluster

import (
	"repro/internal/faults"
	"repro/internal/qos"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// bucketShare scales the per-class token buckets off the base
// BucketRate/BucketBurst: premium gets 4× the best-effort allowance,
// standard 2× — the inverse of the qos.SLOScale strictness ladder.
var bucketShare = [qos.NumClasses]float64{qos.BestEffort: 1, qos.Standard: 2, qos.Premium: 4}

// blipArrival is one request parked during a router blip, paired with
// the token-bucket admission flag it was submitted with.
type blipArrival struct {
	req   workload.Request
	admit bool
}

// heldDispatch is one dispatch parked on a faulty link. protected marks
// a dispatch the slot's breaker admitted (Breaker.Allow returned true);
// only protected outcomes feed back into the breaker state machine, so
// a fail-open dispatch through an unready breaker — open before its
// probe instant, or half-open with the probe slot already taken — can
// neither close nor re-open a breaker that is waiting on its own probe.
type heldDispatch struct {
	req       workload.Request
	protected bool
}

// flight tracks one request with potentially several dispatched copies
// (the primary plus hedges). The first outcome from any member settles
// the request; later outcomes only release their replica's accounting.
type flight struct {
	primary *replica
	reps    []*replica
	won     bool
}

// remove drops rep from the flight's member set, reporting whether it
// was a member.
func (fl *flight) remove(rep *replica) bool {
	for i, fr := range fl.reps {
		if fr == rep {
			//lint:ignore hotalloc in-place removal: the destination is a prefix of the same backing array, so it never grows
			fl.reps = append(fl.reps[:i], fl.reps[i+1:]...)
			return true
		}
	}
	return false
}

// has reports membership without mutating.
func (fl *flight) has(rep *replica) bool {
	for _, fr := range fl.reps {
		if fr == rep {
			return true
		}
	}
	return false
}

// routerState is the cluster's router-tier resilience state.
type routerState struct {
	// cfg is the armed mitigation config (defaults applied), nil when
	// Config.Resilience was nil.
	cfg *resilience.Config
	// breakers guard replica slots (not instances), so a restarted
	// replica inherits its slot's failure history.
	breakers []*resilience.Breaker
	// buckets meter admissions per QoS class; all nil when BucketRate
	// is zero.
	buckets [qos.NumClasses]*resilience.Bucket
	hedger  *resilience.Hedger
	// flights tracks hedged requests by ID. The map is never iterated,
	// only looked up, so it cannot perturb determinism.
	flights map[string]*flight

	// blipUntil / blipHeld implement router blips: arrivals during a
	// blip park here and flush when the last overlapping blip ends.
	// Each entry keeps the admission flag it arrived with so the flush
	// replays it verbatim — a re-dispatch parked mid-blip was already
	// charged to its bucket and must not be charged twice.
	blipUntil sim.Time
	blipHeld  []blipArrival

	timeouts    int
	rateLimited [qos.NumClasses]int
	drains      int
	handoffs    int
	linkFaults  int
}

// newRouterState builds the router-tier state for AttachFaults,
// arming the mitigation policies iff cfg.Resilience is set.
func newRouterState(cfg Config) *routerState {
	rs := &routerState{flights: map[string]*flight{}}
	if cfg.Resilience == nil {
		return rs
	}
	rcfg := cfg.Resilience.WithDefaults()
	rs.cfg = &rcfg
	for i := 0; i < cfg.Replicas; i++ {
		rs.breakers = append(rs.breakers, resilience.NewBreaker(rcfg.Breaker))
	}
	if rcfg.BucketRate > 0 {
		for cl := 0; cl < qos.NumClasses; cl++ {
			rs.buckets[cl] = resilience.NewBucket(resilience.BucketConfig{
				Rate:  rcfg.BucketRate * bucketShare[cl],
				Burst: rcfg.BucketBurst * bucketShare[cl],
			})
		}
	}
	rs.hedger = resilience.NewHedger(rcfg.Hedge)
	return rs
}

// submitResilient is the rs-armed router admission path: blip hold,
// token-bucket admission (skipped for re-dispatches, admit=false),
// health-aware pick, placement, and link-aware dispatch with hedge
// arming. Callers hold the outer clock at a decision point (advanceTo
// already ran).
func (c *Cluster) submitResilient(r workload.Request, admit bool) {
	rs := c.rs
	now := c.outer.Sim.Now()
	if now < rs.blipUntil {
		rs.blipHeld = append(rs.blipHeld, blipArrival{req: r, admit: admit})
		return
	}
	if admit && rs.cfg != nil && rs.buckets[0] != nil {
		cl := qos.ClassOf(r.Tenant)
		if !rs.buckets[cl].Allow(now, float64(r.InputTokens)) {
			rs.rateLimited[cl]++
			if c.tl != nil {
				c.tl.Instant("router", "rate-limit", now,
					timeline.S("tenant", r.Tenant))
			}
			c.outer.Shed(r)
			return
		}
	}
	rep := c.pickResilient()
	if rep == nil {
		c.deferred = append(c.deferred, r)
		return
	}
	protected := false
	if rs.cfg != nil {
		// The chosen replica's breaker admits the dispatch; an open
		// breaker past its probe instant transitions to half-open here,
		// making this dispatch the probe. A fail-open pick through an
		// unready breaker dispatches unprotected: its outcome must not
		// mutate the breaker (see heldDispatch).
		protected = rs.breakers[rep.slot].Allow(now)
	}
	c.place(rep, r)
	if c.dispatch(rep, r, protected) && rs.cfg != nil && rs.cfg.Hedge.MaxHedges > 0 {
		rs.hedger.NoteDispatch()
		if _, ok := rs.flights[r.ID]; !ok {
			rs.flights[r.ID] = &flight{primary: rep, reps: []*replica{rep}}
			c.armHedge(r, 0)
		}
	}
}

// pickResilient is the health-aware pick: with mitigations armed it
// first runs the policy over fully healthy replicas (up, not draining,
// link intact, breaker ready), then fails open to any up-and-admitting
// replica — re-routing through a degraded fleet beats dropping work.
// Without mitigations the naive policy runs unchanged.
func (c *Cluster) pickResilient() *replica {
	rs := c.rs
	if rs.cfg == nil {
		return c.pickWhere(func(rep *replica) bool { return !rep.down })
	}
	now := c.outer.Sim.Now()
	if rep := c.pickWhere(func(rep *replica) bool {
		return !rep.down && !rep.draining && !rep.linkLost && rep.linkDelay == 0 &&
			rs.breakers[rep.slot].Ready(now)
	}); rep != nil {
		return rep
	}
	return c.pickWhere(func(rep *replica) bool { return !rep.down && !rep.draining })
}

// dispatch delivers a placed request across the (possibly faulty) link
// to its replica, reporting whether delivery was direct. Lost links
// park the dispatch until the link restores or the dispatch timeout
// re-routes it; degraded links deliver it late. Only breaker-admitted
// (protected) dispatches report their outcome to the breaker.
func (c *Cluster) dispatch(rep *replica, r workload.Request, protected bool) bool {
	rs := c.rs
	if rep.linkLost {
		rep.held = append(rep.held, heldDispatch{req: r, protected: protected})
		c.armDispatchTimeout(rep, r)
		return false
	}
	if rep.linkDelay > 0 {
		rep.held = append(rep.held, heldDispatch{req: r, protected: protected})
		id := r.ID
		c.outer.Sim.PostAfter(rep.linkDelay, func() { c.deliverHeld(rep, id) })
		c.armDispatchTimeout(rep, r)
		return false
	}
	rep.sys.Submit(r)
	if protected {
		rs.breakers[rep.slot].ReportSuccess()
	}
	return true
}

// removeHeld takes the request with the given ID off the replica's held
// buffer. Exactly one of the racing consumers (delayed delivery,
// dispatch timeout, link-restore flush) wins; the others see false.
func (c *Cluster) removeHeld(rep *replica, id string) (heldDispatch, bool) {
	for i, h := range rep.held {
		if h.req.ID == id {
			rep.held = append(rep.held[:i], rep.held[i+1:]...)
			return h, true
		}
	}
	return heldDispatch{}, false
}

// deliverHeld completes a delayed dispatch across a degraded link.
func (c *Cluster) deliverHeld(rep *replica, id string) {
	c.advanceTo(c.outer.Sim.Now())
	if h, ok := c.removeHeld(rep, id); ok {
		rep.sys.Submit(h.req)
		if h.protected {
			c.rs.breakers[rep.slot].ReportSuccess()
		}
	}
	c.schedulePump()
}

// armDispatchTimeout bounds how long a dispatch may sit parked on a
// faulty link. On expiry the router counts a breaker failure, releases
// the placement, and re-routes the request (skipping the admission
// bucket — it was already admitted). Unarmed when mitigations are off:
// the naive router waits for the link, however long that takes.
func (c *Cluster) armDispatchTimeout(rep *replica, r workload.Request) {
	rs := c.rs
	if rs.cfg == nil {
		return
	}
	c.outer.Sim.PostAfter(rs.cfg.DispatchTimeout, func() {
		c.advanceTo(c.outer.Sim.Now())
		if h, ok := c.removeHeld(rep, r.ID); ok {
			now := c.outer.Sim.Now()
			rs.timeouts++
			if h.protected {
				rs.breakers[rep.slot].ReportFailure(now)
			}
			if c.tl != nil {
				c.tl.Instant("router", "dispatch-timeout", now,
					timeline.I("replica", rep.slot))
			}
			delete(rep.live, r.ID)
			delete(c.routed, r.ID)
			rep.inflight--
			rep.tokens -= r.InputTokens
			c.retried++
			c.submitResilient(r, false)
		}
		c.schedulePump()
	})
}

// armHedge schedules hedge attempt number attempt (0-based) for a
// directly dispatched request: if the flight is still unresolved when
// the straggler threshold passes and the budget allows, one extra copy
// goes to a healthy replica not already running it.
func (c *Cluster) armHedge(r workload.Request, attempt int) {
	rs := c.rs
	if attempt >= rs.cfg.Hedge.MaxHedges {
		return
	}
	c.outer.Sim.PostAfter(rs.hedger.Delay(attempt), func() {
		c.advanceTo(c.outer.Sim.Now())
		defer c.schedulePump()
		fl, ok := rs.flights[r.ID]
		if !ok || fl.won {
			return
		}
		if !rs.hedger.CanHedge() {
			return
		}
		now := c.outer.Sim.Now()
		// Hedge copies only go to fully healthy replicas the flight does
		// not already cover — a copy parked on a bad link would defeat
		// the point.
		rep := c.pickWhere(func(rep *replica) bool {
			return !rep.down && !rep.draining && !rep.linkLost && rep.linkDelay == 0 &&
				rs.breakers[rep.slot].Ready(now) && !fl.has(rep)
		})
		if rep == nil {
			c.armHedge(r, attempt+1)
			return
		}
		rs.hedger.NoteHedge()
		rep.inflight++
		rep.tokens += r.InputTokens
		rep.live[r.ID] = r
		fl.reps = append(fl.reps, rep)
		rep.sys.Submit(r)
		rs.breakers[rep.slot].ReportSuccess()
		if c.tl != nil {
			c.tl.Instant("router", "hedge", now,
				timeline.I("replica", rep.slot),
				timeline.I("attempt", attempt))
		}
		c.armHedge(r, attempt+1)
	})
}

// settleFlight applies one buffered outcome for a hedged request: the
// first outcome from any member wins and flows to the outer
// environment, later ones only release their replica's accounting. The
// flight (and the ownership entry) dissolve once every copy reported.
func (c *Cluster) settleFlight(r *replica, fl *flight, o outcome, id string) {
	if !fl.remove(r) {
		c.stale++ // a copy lost to a crash reported late
		return
	}
	tok := o.done.InputTokens
	if o.isShed {
		tok = o.shed.InputTokens
	}
	delete(r.live, id)
	r.inflight--
	r.tokens -= tok
	if !fl.won {
		fl.won = true
		if r != fl.primary {
			c.rs.hedger.NoteWin()
		}
		if o.isShed {
			c.outer.Shed(o.shed)
		} else {
			c.outer.Complete(o.done)
		}
	}
	if len(fl.reps) == 0 {
		delete(c.rs.flights, id)
		delete(c.routed, id)
	}
}

// detachFlight removes a failed-over or handed-off copy from its
// flight, reporting whether a re-dispatch is unnecessary: either
// surviving copies still carry the request (ownership transfers to the
// first survivor), or the flight already settled — its outcome flowed
// to the outer environment when an earlier copy won, and Env.Complete
// is exactly-once, so re-dispatching would deliver it twice and end
// the run with another request unserved.
func (c *Cluster) detachFlight(rep *replica, w workload.Request) bool {
	fl, ok := c.rs.flights[w.ID]
	if !ok {
		return false
	}
	fl.remove(rep)
	if len(fl.reps) > 0 {
		c.routed[w.ID] = fl.reps[0]
		return true
	}
	delete(c.rs.flights, w.ID)
	if fl.won {
		delete(c.routed, w.ID)
		return true
	}
	return false
}

// onLinkFault applies a KindLinkDegrade event: the targeted replica's
// link black-holes (LinkLoss) or delays (LinkDelay) dispatches for the
// event duration, then restores and flushes whatever is still parked.
// The generation fence keeps overlapping link faults and crashes from
// restoring each other's state.
func (c *Cluster) onLinkFault(ev faults.Event) {
	c.advanceTo(c.outer.Sim.Now())
	rep := c.replicas[ev.Replica%len(c.replicas)]
	if rep.down {
		c.schedulePump()
		return // the machine is gone; its link state is moot
	}
	rs := c.rs
	rs.linkFaults++
	rep.linkGen++
	gen := rep.linkGen
	rep.linkLost = ev.LinkLoss
	rep.linkDelay = ev.LinkDelay
	if c.tl != nil {
		mode := "degrade"
		if ev.LinkLoss {
			mode = "loss"
		}
		c.tl.Instant("router", "link-fault", c.outer.Sim.Now(),
			timeline.I("replica", rep.slot),
			timeline.S("mode", mode))
	}
	c.outer.Sim.PostAfter(ev.Duration, func() {
		c.advanceTo(c.outer.Sim.Now())
		if c.replicas[rep.slot] == rep && rep.linkGen == gen {
			rep.linkLost = false
			rep.linkDelay = 0
			held := rep.held
			rep.held = nil
			for _, h := range held {
				rep.sys.Submit(h.req)
				// A protected dispatch delivered at restore resolves its
				// breaker outcome as a success — a half-open probe parked
				// here would otherwise never report and wedge the breaker.
				if h.protected {
					rs.breakers[rep.slot].ReportSuccess()
				}
			}
			c.recoveries++
			c.recoveryTime += ev.Duration
			if c.tl != nil {
				c.tl.Instant("router", "link-restore", c.outer.Sim.Now(),
					timeline.I("replica", rep.slot),
					timeline.I("flushed", len(held)))
			}
		}
		c.schedulePump()
	})
	c.schedulePump()
}

// onRouterBlip freezes router dispatch entirely for the event duration;
// arrivals park in blipHeld and flush when the last overlapping blip
// ends. Blips hit the router itself, so they apply identically with
// mitigations on or off.
func (c *Cluster) onRouterBlip(ev faults.Event) {
	c.advanceTo(c.outer.Sim.Now())
	rs := c.rs
	now := c.outer.Sim.Now()
	if until := now + ev.Duration; until > rs.blipUntil {
		rs.blipUntil = until
	}
	if c.tl != nil {
		c.tl.Instant("router", "blip", now, timeline.F("duration", ev.Duration.Float()))
	}
	c.outer.Sim.PostAfter(ev.Duration, func() {
		c.advanceTo(c.outer.Sim.Now())
		if c.outer.Sim.Now() >= rs.blipUntil {
			flush := rs.blipHeld
			rs.blipHeld = nil
			for _, h := range flush {
				// Fresh arrivals never reached the admission bucket and
				// are charged now, at flush time; parked re-dispatches
				// (admit=false) were already admitted and replay as such.
				c.submitResilient(h.req, h.admit)
			}
			c.recoveries++
			c.recoveryTime += ev.Duration
		}
		c.schedulePump()
	})
	c.schedulePump()
}

// onReplicaDrain runs the graceful drain/restart protocol: the replica
// stops admitting, hands its waiting queue (which holds no KV) to
// healthy peers, finishes in-flight work on its own clock, and readmits
// after the restart window. Without mitigations armed there is no
// graceful protocol — the drain degenerates to an abrupt crash/restart
// through the PR 3 failover machinery.
func (c *Cluster) onReplicaDrain(ev faults.Event) {
	if c.rs.cfg == nil {
		c.onReplicaCrash(ev)
		return
	}
	c.advanceTo(c.outer.Sim.Now())
	rep := c.replicas[ev.Replica%len(c.replicas)]
	if rep.down || rep.draining {
		c.schedulePump()
		return
	}
	rs := c.rs
	rep.draining = true
	rs.drains++
	waiting := rep.sys.ExtractWaiting()
	if c.tl != nil {
		c.tl.Instant("router", "drain", c.outer.Sim.Now(),
			timeline.I("replica", rep.slot),
			timeline.I("handoff", len(waiting)))
	}
	for _, w := range waiting {
		delete(rep.live, w.ID)
		rep.inflight--
		rep.tokens -= w.InputTokens
		rs.handoffs++
		if c.detachFlight(rep, w) {
			continue // a hedge copy survives elsewhere
		}
		delete(c.routed, w.ID)
		c.submitResilient(w, false)
	}
	c.outer.Sim.PostAfter(ev.Recovery, func() {
		c.advanceTo(c.outer.Sim.Now())
		if c.replicas[rep.slot] == rep && !rep.down {
			rep.draining = false
			c.recoveries++
			c.recoveryTime += ev.Recovery
			if c.tl != nil {
				c.tl.Instant("router", "readmit", c.outer.Sim.Now(),
					timeline.I("replica", rep.slot))
			}
		}
		c.flushDeferred()
		c.schedulePump()
	})
	c.schedulePump()
}

// Quiesce advances the replicas until no private-clock events remain.
// The serving run loop stops as soon as every trace request has
// resolved, which can leave hedge-loser copies mid-decode on their
// replicas; runs that end with CheckDrained call Quiesce first so those
// copies finish and release their KV.
func (c *Cluster) Quiesce() {
	for {
		var at sim.Time
		found := false
		for _, r := range c.replicas {
			if r.down {
				continue
			}
			if t, ok := r.env.Sim.NextAt(); ok && (!found || t > at) {
				at, found = t, true
			}
		}
		if !found {
			return
		}
		c.advanceTo(at)
	}
}

// DispatchTimeouts returns how many parked dispatches were re-routed by
// the timeout, zero without mitigations armed.
func (c *Cluster) DispatchTimeouts() int {
	if c.rs == nil {
		return 0
	}
	return c.rs.timeouts
}
