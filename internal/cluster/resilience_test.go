package cluster

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/resilience"
	"repro/internal/serving"
	"repro/internal/timeline"
	"repro/internal/units"
	"repro/internal/workload"
)

// runResilient drives a cluster run with router-tier faults and no
// timeline (so Workers takes effect), quiescing hedge losers before the
// drained check.
func runResilient(t testing.TB, cfg Config, sched faults.Schedule, tr *workload.Trace) (*Cluster, serving.Result, metrics.Resilience) {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	c := New(env, cfg)
	inj := faults.NewInjector(env.Sim, sched)
	c.AttachFaults(inj, core.DefaultWatchdog())
	inj.Arm()
	res := env.Run(c, tr)
	c.Quiesce()
	c.CheckDrained()
	return c, res, c.Resilience()
}

func linkLossAt(at units.Seconds, replica int, dur units.Seconds) faults.Event {
	return faults.Event{At: at, Kind: faults.KindLinkDegrade, Replica: replica, LinkLoss: true, Duration: dur}
}

// TestLinkLossNaiveRouterParksDispatches: without mitigations the
// router keeps dispatching into the black hole; parked requests only
// move when the link restores, so everything still completes — late.
func TestLinkLossNaiveRouterParksDispatches(t *testing.T) {
	const n = 40
	cfg := Config{Replicas: 2, Policy: RoundRobin, Options: opts()}
	sched := faults.Schedule{Events: []faults.Event{linkLossAt(0.5, 0, 2)}}
	c, res, rl := runResilient(t, cfg, sched, workload.Generate(workload.AzureCode, 8, n, 31))
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	if rl.LinkFaults != 1 {
		t.Fatalf("link faults = %d, want 1", rl.LinkFaults)
	}
	if c.DispatchTimeouts() != 0 {
		t.Fatalf("naive router re-routed %d dispatches; it must wait out the link", c.DispatchTimeouts())
	}
	if rl.Recoveries == 0 {
		t.Fatal("link restoration not counted as a recovery")
	}
	if rl.RecoveryTime != 2 {
		t.Fatalf("attributed recovery time = %v, want the 2s outage", rl.RecoveryTime)
	}
}

// TestLinkLossTimeoutsTripBreaker: with mitigations armed on a
// single-replica fleet (nowhere healthy to fail over), parked
// dispatches time out, the breaker trips after the failure threshold,
// and probes re-close it once the link restores.
func TestLinkLossTimeoutsTripBreaker(t *testing.T) {
	const n = 30
	rcfg := resilience.DefaultConfig()
	cfg := Config{Replicas: 1, Policy: RoundRobin, Options: opts(), Resilience: &rcfg}
	sched := faults.Schedule{Events: []faults.Event{linkLossAt(0.4, 0, 1.5)}}
	c, res, rl := runResilient(t, cfg, sched, workload.Generate(workload.AzureCode, 8, n, 32))
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	if c.DispatchTimeouts() == 0 {
		t.Fatal("no dispatch timed out across a 1.5s loss with a 200ms timeout")
	}
	if rl.BreakerOpens == 0 {
		t.Fatal("breaker never opened under consecutive timeouts")
	}
	if rl.BreakerCloses == 0 {
		t.Fatal("breaker never re-closed after the link restored")
	}
	if rl.Retried < c.DispatchTimeouts() {
		t.Fatalf("retried %d < timeouts %d; every timeout must re-dispatch", rl.Retried, c.DispatchTimeouts())
	}
}

// TestLinkLossResilientAvoidsDeadReplica: with a healthy peer, the
// health-aware pick routes around the lost link, so the victim replica
// serves nothing new during the outage and no dispatch needs the
// timeout path.
func TestLinkLossResilientAvoidsDeadReplica(t *testing.T) {
	const n = 40
	rcfg := resilience.DefaultConfig()
	cfg := Config{Replicas: 2, Policy: RoundRobin, Options: opts(), Resilience: &rcfg}
	sched := faults.Schedule{Events: []faults.Event{linkLossAt(0.2, 0, 3)}}
	c, res, rl := runResilient(t, cfg, sched, workload.Generate(workload.AzureCode, 8, n, 33))
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	if c.DispatchTimeouts() != 0 {
		t.Fatalf("%d dispatches timed out despite a healthy peer to route to", c.DispatchTimeouts())
	}
	if rl.LinkFaults != 1 || rl.Recoveries == 0 {
		t.Fatalf("link fault accounting: %+v", rl)
	}
}

// TestRouterBlipHoldsAndFlushes: arrivals during a router blip park and
// flush when it ends; nothing is lost either way the mitigations are
// set.
func TestRouterBlipHoldsAndFlushes(t *testing.T) {
	const n = 40
	for _, armed := range []bool{false, true} {
		cfg := Config{Replicas: 2, Policy: LeastLoaded, Options: opts()}
		if armed {
			rcfg := resilience.DefaultConfig()
			cfg.Resilience = &rcfg
		}
		sched := faults.Schedule{Events: []faults.Event{
			{At: 0.3, Kind: faults.KindRouterBlip, Duration: units.FromMs(600)},
			{At: 0.5, Kind: faults.KindRouterBlip, Duration: units.FromMs(600)},
		}}
		_, res, rl := runResilient(t, cfg, sched, workload.Generate(workload.AzureCode, 10, n, 34))
		if got := res.Summary.Requests + res.Shed; got != n {
			t.Fatalf("armed=%v: completed %d + shed %d, want %d", armed, res.Summary.Requests, res.Shed, got)
		}
		// Overlapping blips form one episode: one flush, one recovery
		// attribution of the closing event's duration.
		if rl.Recoveries != 1 {
			t.Fatalf("armed=%v: recoveries = %d, want 1 blip episode", armed, rl.Recoveries)
		}
	}
}

// TestGracefulDrainHandsOffWaiting: a drain with mitigations armed
// hands the victim's waiting queue to peers, finishes in-flight work,
// and readmits — no crash, no lost requests. Without mitigations the
// same event degenerates to an abrupt crash/restart.
func TestGracefulDrainHandsOffWaiting(t *testing.T) {
	const n = 60
	sched := faults.Schedule{Events: []faults.Event{
		{At: 0.5, Kind: faults.KindReplicaDrain, Replica: 0, Recovery: 2},
	}}
	rcfg := resilience.DefaultConfig()
	cfg := Config{Replicas: 2, Policy: RoundRobin, Options: opts(), Resilience: &rcfg}
	c, res, rl := runResilient(t, cfg, sched, workload.Generate(workload.AzureCode, 12, n, 35))
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	if rl.Drains != 1 || c.Crashes() != 0 {
		t.Fatalf("graceful drain recorded drains=%d crashes=%d, want 1/0", rl.Drains, c.Crashes())
	}
	if rl.Handoffs == 0 {
		t.Fatal("drain handed off no waiting requests")
	}
	if rl.Recoveries != 1 || rl.RecoveryTime != 2 {
		t.Fatalf("readmission accounting: recoveries=%d time=%v, want 1/2s", rl.Recoveries, rl.RecoveryTime)
	}

	naive := Config{Replicas: 2, Policy: RoundRobin, Options: opts()}
	c2, res2, rl2 := runResilient(t, naive, sched, workload.Generate(workload.AzureCode, 12, n, 35))
	if got := res2.Summary.Requests + res2.Shed; got != n {
		t.Fatalf("naive drain: completed %d + shed %d, want %d", res2.Summary.Requests, res2.Shed, got)
	}
	if c2.Crashes() != 1 || rl2.Drains != 0 {
		t.Fatalf("naive drain must degenerate to a crash: crashes=%d drains=%d", c2.Crashes(), rl2.Drains)
	}
}

// TestHedgedStragglerWins: with one replica crippled, its requests
// straggle past the hedge threshold, a budgeted copy goes to the
// healthy peer, and at least one copy beats its primary. Quiesce must
// drain the losing copies so the KV invariants hold.
func TestHedgedStragglerWins(t *testing.T) {
	const n = 30
	rcfg := resilience.DefaultConfig()
	rcfg.Hedge.Budget = 0.5 // generous budget so the cripple shows up
	cfg := Config{Replicas: 2, Policy: RoundRobin, Options: opts(), Resilience: &rcfg}
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	c := New(env, cfg)
	c.replicas[0].env.GPU.SetSMHealth(0, 108, 0.02) // replica 0 crawls
	inj := faults.NewInjector(env.Sim, faults.Schedule{})
	c.AttachFaults(inj, core.DefaultWatchdog())
	inj.Arm()
	res := env.Run(c, workload.Generate(workload.AzureCode, 4, n, 36))
	c.Quiesce()
	c.CheckDrained()
	rl := c.Resilience()
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	if rl.Hedges == 0 {
		t.Fatal("no hedges dispatched against a crippled replica")
	}
	if rl.HedgeWins == 0 {
		t.Fatal("no hedge beat its straggling primary")
	}
	// The budget must hold: hedges ≤ max(MinBudget, Budget·dispatches).
	max := int(rcfg.Hedge.Budget*float64(n)) + rcfg.Hedge.MinBudget
	if rl.Hedges > max {
		t.Fatalf("hedges %d exceed budget bound %d", rl.Hedges, max)
	}
}

// TestCrashAfterHedgeWinDoesNotDuplicate is the settled-flight failover
// regression: replica 0 crawls, so its primaries straggle and their
// hedge copies win on replica 1 — leaving settled flights whose losing
// copy still decodes on replica 0. When replica 0 then crashes, the
// failover must not re-dispatch those already-completed requests
// (Env.Complete is exactly-once; a duplicate would end the run early
// with another request unserved).
func TestCrashAfterHedgeWinDoesNotDuplicate(t *testing.T) {
	const n = 30
	rcfg := resilience.DefaultConfig()
	rcfg.Hedge.Budget = 1 // hedge every straggler
	cfg := Config{Replicas: 2, Policy: RoundRobin, Options: opts(), Resilience: &rcfg}
	sched := faults.Schedule{Events: []faults.Event{
		{At: 2, Kind: faults.KindReplicaCrash, Replica: 0, Recovery: 1},
	}}
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	c := New(env, cfg)
	c.replicas[0].env.GPU.SetSMHealth(0, 108, 0.02) // replica 0 crawls
	inj := faults.NewInjector(env.Sim, sched)
	c.AttachFaults(inj, core.DefaultWatchdog())
	inj.Arm()
	res := env.Run(c, workload.Generate(workload.AzureCode, 4, n, 41))
	c.Quiesce()
	c.CheckDrained()
	rl := c.Resilience()
	if rl.HedgeWins == 0 {
		t.Fatal("scenario produced no hedge win before the crash")
	}
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	seen := map[string]bool{}
	for _, r := range res.Requests {
		if seen[r.ID] {
			t.Fatalf("request %s completed twice", r.ID)
		}
		seen[r.ID] = true
	}
}

// TestTokenBucketRateLimitsByClass: a tight admission budget sheds
// best-effort traffic first — the per-class buckets scale 1:2:4 — and
// conservation holds (every request completes or sheds exactly once).
func TestTokenBucketRateLimitsByClass(t *testing.T) {
	const n = 80
	rcfg := resilience.DefaultConfig()
	rcfg.BucketRate = 400 // tokens/s base; azure-code means are far above
	rcfg.BucketBurst = 800
	cfg := Config{Replicas: 2, Policy: LeastLoaded, Options: opts(), Resilience: &rcfg}
	tr := workload.GenerateTenantMix(workload.AzureCode, 12, n, 37, workload.DefaultTenantMix())
	_, res, rl := runResilient(t, cfg, faults.Schedule{}, tr)
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	if rl.RateLimited == 0 {
		t.Fatal("tight buckets rejected nothing")
	}
	sum := 0
	for _, v := range rl.RateLimitedByClass {
		sum += v
	}
	if sum != rl.RateLimited {
		t.Fatalf("per-class rejects %v sum to %d, total says %d", rl.RateLimitedByClass, sum, rl.RateLimited)
	}
	if res.Shed < rl.RateLimited {
		t.Fatalf("shed %d < rate-limited %d; every rejection must shed", res.Shed, rl.RateLimited)
	}
	// The premium bucket is 4× the best-effort one; with the default
	// 20/30/50 mix premium must not be the hardest hit.
	if rl.RateLimitedByClass[2] > rl.RateLimitedByClass[0] {
		t.Fatalf("premium rejected more than best-effort: %v", rl.RateLimitedByClass)
	}
}

// TestOverlappingCrashWindowsMTTR is the satellite regression: a second
// crash landing inside an open crash window is dropped (the machine is
// already down), so only one repair happens — MTTR must use the
// attributed repair time, not the scheduled downtime of both events.
func TestOverlappingCrashWindowsMTTR(t *testing.T) {
	const n = 40
	sched := faults.Schedule{Events: []faults.Event{
		{At: 0.3, Kind: faults.KindReplicaCrash, Replica: 0, Recovery: 2},
		{At: 0.5, Kind: faults.KindReplicaCrash, Replica: 0, Recovery: 2}, // folded: already down
	}}
	cfg := Config{Replicas: 2, Policy: RoundRobin, Options: opts()}
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	c := New(env, cfg)
	inj := faults.NewInjector(env.Sim, sched)
	c.AttachFaults(inj, core.DefaultWatchdog())
	inj.Arm()
	res := env.Run(c, workload.Generate(workload.AzureCode, 8, n, 38))
	c.Quiesce()
	c.CheckDrained()
	rl := c.Resilience()
	rl.Downtime = inj.ScheduledDowntime()
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	if rl.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1 (second crash folded)", rl.Recoveries)
	}
	if rl.Downtime != 4 {
		t.Fatalf("scheduled downtime = %v, want 4s (both events)", rl.Downtime)
	}
	if rl.RecoveryTime != 2 {
		t.Fatalf("attributed recovery time = %v, want 2s (one repair)", rl.RecoveryTime)
	}
	if got := rl.MTTR(); got != 2 {
		t.Fatalf("MTTR = %v, want 2s — the legacy estimate would say %v", got, rl.Downtime/1)
	}
}

// chaosRun executes a full correlated-storm run at the given worker
// width, with and without mitigations, returning everything a
// determinism comparison needs.
func chaosRun(t testing.TB, workers int, armed bool) (serving.Result, metrics.Resilience) {
	t.Helper()
	cfg := Config{Replicas: 3, Policy: LeastLoaded, Options: opts(), Workers: workers}
	if armed {
		rcfg := resilience.DefaultConfig()
		rcfg.BucketRate = 3000
		rcfg.BucketBurst = 6000
		cfg.Resilience = &rcfg
	}
	ccfg := faults.DefaultChaosConfig(3, units.Seconds(12))
	ccfg.Seed = 5
	tr := workload.GenerateTenantMix(workload.AzureCode, 8, 80, 39, workload.DefaultTenantMix())
	_, res, rl := runResilient(t, cfg, faults.GenerateChaos(ccfg), tr)
	return res, rl
}

// TestChaosSerialParallelIdentical is the §16 determinism gate at unit
// scale: a correlated link-failure storm over a parallel cluster must
// produce identical results and resilience accounting at every worker
// width, mitigations on and off. ci.sh runs this under -race.
func TestChaosSerialParallelIdentical(t *testing.T) {
	for _, armed := range []bool{false, true} {
		res1, rl1 := chaosRun(t, 1, armed)
		for _, w := range []int{2, 4} {
			res, rl := chaosRun(t, w, armed)
			if !reflect.DeepEqual(res1, res) {
				t.Fatalf("armed=%v: results diverged between workers=1 and workers=%d", armed, w)
			}
			if rl1 != rl {
				t.Fatalf("armed=%v: resilience diverged between workers=1 and workers=%d:\n%+v\nvs\n%+v", armed, w, rl1, rl)
			}
		}
	}
}

// TestChaosTimelineRouterLane pins the timeline thread-through: every
// router-tier mitigation emits its instant on the "router" lane — link
// fault/restore, parked-dispatch timeout, blip hold, graceful drain and
// readmit, bucket rejection, and hedge — in one composite scenario. A
// recorder forces serial advancement, so this also exercises the armed
// paths under the one-trace ordering.
func TestChaosTimelineRouterLane(t *testing.T) {
	const n = 60
	rcfg := resilience.DefaultConfig()
	rcfg.Hedge.Budget = 0.5 // generous: the crippled replica must straggle into hedges
	rcfg.BucketRate = 800   // tight: some best-effort arrivals must bounce
	rcfg.BucketBurst = 1600
	cfg := Config{Replicas: 2, Policy: RoundRobin, Options: opts(), Resilience: &rcfg}
	sched := faults.Schedule{Events: []faults.Event{
		// Both links black-holed: the loose pick parks dispatches, the
		// 200ms timeout re-routes them until the links restore.
		linkLossAt(0.3, 0, 1.2),
		linkLossAt(0.3, 1, 1.2),
		{At: 0.8, Kind: faults.KindRouterBlip, Duration: units.FromMs(400)},
		{At: 2.0, Kind: faults.KindReplicaDrain, Replica: 1, Recovery: 1},
	}}
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	c := New(env, cfg)
	c.AttachTimeline(timeline.New(0))
	c.replicas[0].env.GPU.SetSMHealth(0, 108, 0.02) // replica 0 crawls: hedges fire
	inj := faults.NewInjector(env.Sim, sched)
	c.AttachFaults(inj, core.DefaultWatchdog())
	inj.Arm()
	tr := workload.GenerateTenantMix(workload.AzureCode, 10, n, 40, workload.DefaultTenantMix())
	res := env.Run(c, tr)
	c.Quiesce()
	c.CheckDrained()
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d, want %d", res.Summary.Requests, res.Shed, got)
	}
	seen := map[string]bool{}
	for _, ev := range c.tl.Events() {
		if ev.Lane == "router" {
			seen[ev.Name] = true
		}
	}
	for _, want := range []string{
		"link-fault", "link-restore", "dispatch-timeout", "blip",
		"drain", "readmit", "rate-limit", "hedge",
	} {
		if !seen[want] {
			t.Errorf("router lane missing %q instant (got %v)", want, seen)
		}
	}
}
