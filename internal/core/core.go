// Package core assembles Bullet, the paper's serving system: the
// performance estimator (§3.2), SLO-aware scheduler (§3.3), computational
// resource manager (§3.4) and concurrent execution engines (§3.5), wired
// over the simulated GPU substrate.
//
// The same assembly, with components disabled, provides the ablation
// variants of §4.5.1 (Naive / w-Partition / w-Scheduler) and the
// fixed-SM-quota configurations used for the Fig. 13 sensitivity study and
// as the MuxServe-style static-spatial-sharing baseline.
package core

import (
	"fmt"

	"repro/internal/calib"
	"repro/internal/engine"
	"repro/internal/estimator"
	"repro/internal/forkjoin"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/prefixcache"
	"repro/internal/pressure"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// Mode selects which Bullet components are active.
type Mode string

const (
	// ModeFull is the complete system.
	ModeFull Mode = "bullet"
	// ModeNaive co-executes prefill and decode on the full GPU with no
	// provisioning or scheduling.
	ModeNaive Mode = "bullet-naive"
	// ModePartitionOnly enables dynamic SM provisioning but neither
	// request reordering nor delayed decode.
	ModePartitionOnly Mode = "bullet-partition"
	// ModeSchedulerOnly enables reordering and delayed decode but keeps
	// both phases on full-GPU masks.
	ModeSchedulerOnly Mode = "bullet-scheduler"
	// ModeStatic uses fixed SM quotas for both phases (MuxServe-style
	// spatial sharing; also the Fig. 13 sensitivity configuration).
	ModeStatic Mode = "bullet-static"
)

// Options configures a Bullet instance.
type Options struct {
	Mode Mode
	// SMStep is the resource manager granularity (paper: 6).
	SMStep int
	// LayerGroup is layers per prefill scheduling cycle (paper: 1).
	LayerGroup int
	// FixedPrefillSMs / FixedDecodeSMs apply in ModeStatic (decode
	// defaults to the full device, matching the Fig. 13 setup).
	FixedPrefillSMs int
	FixedDecodeSMs  int
	// Params are the estimator's fitted parameters; zero means the
	// cached profile for the (model, device) pair is used.
	Params estimator.Params
	// MetadataLatency models the inter-engine metadata path (Table 3).
	MetadataLatency sim.Time
	// MaxPrefillTokens / MaxPrefillReqs bound prefill batches.
	MaxPrefillTokens int
	MaxPrefillReqs   int
	// MaxDecodeBatch bounds the decode batch.
	MaxDecodeBatch int
	// RecordTimeline enables Fig. 12-style series collection.
	RecordTimeline bool
	// EnablePrefixCache turns on RadixAttention-style shared-prefix
	// reuse in the prefill engine (an extension beyond the paper).
	EnablePrefixCache bool
	// Pressure, when non-nil, arms the memory-pressure subsystem
	// (watermark admission, decode preemption, recompute/retransfer
	// recovery — see internal/pressure and EnablePressure).
	Pressure *pressure.Config
	// QoS, when non-nil, arms the SLO-feedback dynamic-batching and
	// multi-tenant QoS subsystem (see internal/qos and EnableQoS).
	QoS *qos.Config
	// Backend selects the gpusim per-kernel latency model: "" or
	// "analytic" (the default fluid model), "sampled" (profile-driven
	// draws from a self-calibrated latency table) or "hierarchy"
	// (analytic plus L2 cache-reuse interference). See DESIGN.md §15.
	Backend string
	// BackendSeed seeds the sampled backend's deterministic draw stream
	// (0 means 1). Cluster replicas derive per-replica seeds so serial
	// and parallel harnesses observe identical draws.
	BackendSeed int64
}

// DefaultOptions returns the full system's defaults.
func DefaultOptions() Options {
	return Options{
		Mode:             ModeFull,
		SMStep:           6,
		LayerGroup:       1,
		MetadataLatency:  0.21e-3,
		MaxPrefillTokens: 16384,
		MaxPrefillReqs:   8,
		MaxDecodeBatch:   256,
	}
}

// Timeline is the Fig. 12 instrumentation: step series sampled at
// scheduling events.
type Timeline struct {
	PrefillSMs    metrics.Series
	DecodeSMs     metrics.Series
	PrefillTokens metrics.Series // tokens in the running prefill batch
	DecodeBatch   metrics.Series
	Waiting       metrics.Series // requests pending prefill
	Branches      map[string]int // Algorithm 1 arm frequencies
}

// Bullet is the assembled serving system; it implements serving.System.
type Bullet struct {
	env  *serving.Env
	opts Options

	Estimator *estimator.Estimator
	Scheduler *sched.Scheduler
	Resources *resource.Manager
	Buffer    *engine.Buffer
	Prefill   *engine.PrefillEngine
	Decode    *engine.DecodeEngine

	Timeline *Timeline
	// PrefixCache is non-nil when EnablePrefixCache is set.
	PrefixCache *prefixcache.Cache
	// faults is non-nil once EnableResilience/AttachFaults armed the
	// watchdog and fault bookkeeping (see faults.go).
	faults *faultState
	// pressure is non-nil once EnablePressure armed the memory-pressure
	// subsystem (see pressure.go).
	pressure *pressure.Controller
	// qos is non-nil once EnableQoS armed the SLO-feedback QoS subsystem
	// (see qos.go).
	qos *qos.Controller
	// tl is the observability recorder attached by AttachTimeline; nil
	// (the default) keeps every emission site on its no-op fast path.
	tl   *timeline.Recorder
	name string
}

// fittedParams memoizes offline profiling per (model, device). Profiling
// is deterministic in the pair, so the memo satisfies the forkjoin purity
// contract and concurrent fork tasks observe identical parameters.
var fittedParams forkjoin.Memo[string, estimator.Params]

// FittedParams returns profile-fitted estimator parameters for a pair,
// running the offline profiling once per process.
func FittedParams(cfg model.Config, spec gpusim.Spec) estimator.Params {
	key := cfg.Name + "/" + spec.Name
	return fittedParams.Get(key, func() estimator.Params {
		_, rep := estimator.Profile(cfg, spec, estimator.QuickProfileOptions(spec))
		return rep.Params
	})
}

// fittedTables memoizes self-calibration per (model, device) pair, the
// same purity argument as fittedParams: calibration is deterministic in
// the pair, so concurrent fork tasks observe identical tables.
var fittedTables forkjoin.Memo[string, *gpusim.LatencyTable]

// FittedLatencyTable returns the self-calibrated sampled-backend latency
// table for a (model, device) pair, running calibration once per process.
func FittedLatencyTable(cfg model.Config, spec gpusim.Spec) *gpusim.LatencyTable {
	key := cfg.Name + "/" + spec.Name
	return fittedTables.Get(key, func() *gpusim.LatencyTable {
		t, err := calib.SelfCalibrate(cfg, spec, calib.SelfCalOptions{})
		if err != nil {
			panic(fmt.Sprintf("core: self-calibration for %s: %v", key, err))
		}
		return t
	})
}

// applyBackend installs the configured latency backend on the
// environment's GPU and returns the name suffix identifying non-default
// backends in results.
func applyBackend(env *serving.Env, opts Options) string {
	switch opts.Backend {
	case "", gpusim.BackendAnalytic:
		return ""
	case gpusim.BackendSampled:
		seed := opts.BackendSeed
		if seed == 0 {
			seed = 1
		}
		table := FittedLatencyTable(env.Model, env.GPU.Spec)
		env.GPU.SetBackend(gpusim.NewSampledBackend(table, seed))
		return "+sampled"
	case gpusim.BackendHierarchy:
		env.GPU.SetBackend(gpusim.HierarchyBackend{})
		return "+hierarchy"
	default:
		panic(fmt.Sprintf("core: unknown latency backend %q", opts.Backend))
	}
}

// New assembles a Bullet system on an environment.
func New(env *serving.Env, opts Options) *Bullet {
	def := DefaultOptions()
	if opts.Mode == "" {
		opts.Mode = def.Mode
	}
	if opts.SMStep == 0 {
		opts.SMStep = def.SMStep
	}
	if opts.LayerGroup == 0 {
		opts.LayerGroup = def.LayerGroup
	}
	if opts.MetadataLatency == 0 {
		opts.MetadataLatency = def.MetadataLatency
	}
	if opts.MaxPrefillTokens == 0 {
		opts.MaxPrefillTokens = def.MaxPrefillTokens
	}
	if opts.MaxPrefillReqs == 0 {
		opts.MaxPrefillReqs = def.MaxPrefillReqs
	}
	if opts.MaxDecodeBatch == 0 {
		opts.MaxDecodeBatch = def.MaxDecodeBatch
	}
	if opts.Params == (estimator.Params{}) {
		opts.Params = FittedParams(env.Model, env.GPU.Spec)
	}
	backendSuffix := applyBackend(env, opts)

	numSMs := env.GPU.Spec.NumSMs
	est := estimator.New(env.Model, env.GPU.Spec, opts.Params)
	res := resource.NewManager(env.GPU, opts.SMStep)
	schd := sched.New(est, env.SLO, sched.Config{
		TotalLayers: env.Model.NumLayers,
		LayerGroup:  opts.LayerGroup,
		NumSMs:      numSMs,
		Levels:      res.Levels(),
	})
	buf := engine.NewBuffer(env.Sim, opts.MetadataLatency)

	pcfg := engine.DefaultPrefillConfig(numSMs)
	pcfg.LayerGroup = opts.LayerGroup
	pcfg.MaxBatchTokens = opts.MaxPrefillTokens
	pcfg.MaxBatchReqs = opts.MaxPrefillReqs
	dcfg := engine.DefaultDecodeConfig(numSMs)
	dcfg.MaxBatch = opts.MaxDecodeBatch

	name := string(opts.Mode)
	switch opts.Mode {
	case ModeFull:
		// defaults already enable everything
	case ModeNaive:
		pcfg.Reorder = false
		pcfg.SLOAdmission = false
		pcfg.DynamicSM = false
		pcfg.FixedSMs = numSMs
		dcfg.DynamicSM = false
		dcfg.FixedSMs = numSMs
		dcfg.AllowPause = false
	case ModePartitionOnly:
		pcfg.Reorder = false
		pcfg.SLOAdmission = false
		dcfg.AllowPause = false
	case ModeSchedulerOnly:
		pcfg.DynamicSM = false
		pcfg.FixedSMs = numSMs
		dcfg.DynamicSM = false
		dcfg.FixedSMs = numSMs
	case ModeStatic:
		if opts.FixedPrefillSMs <= 0 {
			panic("core: ModeStatic requires FixedPrefillSMs")
		}
		if opts.FixedDecodeSMs <= 0 {
			opts.FixedDecodeSMs = numSMs
		}
		pcfg.DynamicSM = false
		pcfg.FixedSMs = opts.FixedPrefillSMs
		dcfg.DynamicSM = false
		dcfg.FixedSMs = opts.FixedDecodeSMs
		dcfg.AllowPause = false
		name = fmt.Sprintf("bullet-sm%d", opts.FixedPrefillSMs)
	default:
		panic(fmt.Sprintf("core: unknown mode %q", opts.Mode))
	}

	b := &Bullet{
		env: env, opts: opts, Estimator: est, Scheduler: schd,
		Resources: res, Buffer: buf, name: name + backendSuffix,
	}
	b.Prefill = engine.NewPrefillEngine(env, res, schd, est, buf, pcfg)
	b.Decode = engine.NewDecodeEngine(env, res, schd, est, buf, dcfg)
	b.Prefill.SetDecode(b.Decode)
	if opts.EnablePrefixCache {
		b.PrefixCache = prefixcache.New(env.KV)
		b.Prefill.SetPrefixCache(b.PrefixCache)
		env.OnDrain = b.PrefixCache.EvictAll
		b.name += "+prefix"
	}
	if opts.Pressure != nil {
		b.EnablePressure(*opts.Pressure)
	}
	if opts.QoS != nil {
		b.EnableQoS(*opts.QoS)
	}

	if opts.RecordTimeline {
		b.Timeline = &Timeline{Branches: map[string]int{}}
		record := func(t sim.Time, d sched.Decision) {
			b.Timeline.PrefillSMs.Add(t, float64(d.PrefillSMs))
			b.Timeline.DecodeSMs.Add(t, float64(d.DecodeSMs))
			b.Timeline.Waiting.Add(t, float64(b.Prefill.QueueDepth()))
			b.Timeline.DecodeBatch.Add(t, float64(b.Decode.BatchSize()))
			b.Timeline.Branches[d.Branch]++
		}
		b.Prefill.OnDecision = record
		b.Decode.OnDecision = record
		b.Prefill.OnBatchStart = func(t sim.Time, tokens, reqs, waiting int) {
			b.Timeline.PrefillTokens.Add(t, float64(tokens))
			b.Timeline.Waiting.Add(t, float64(waiting))
		}
	}
	return b
}

// AttachTimeline threads one observability recorder through every layer
// of the system: GPU kernel spans, resource repartitions, engine batch
// and request lifecycle spans, and (via faults.go) watchdog instants.
// Attaching nil detaches — every site returns to its no-op fast path.
func (b *Bullet) AttachTimeline(rec *timeline.Recorder) {
	b.tl = rec
	b.env.GPU.TL = rec
	b.Resources.TL = rec
	b.Prefill.TL = rec
	b.Decode.TL = rec
	if b.pressure != nil {
		b.pressure.SetTimeline(rec)
	}
	if b.qos != nil {
		b.qos.SetTimeline(rec)
	}
}

// TimelineRecorder returns the recorder attached by AttachTimeline (nil
// when tracing is off).
func (b *Bullet) TimelineRecorder() *timeline.Recorder { return b.tl }

// Name identifies the system variant in results.
func (b *Bullet) Name() string { return b.name }

// Submit implements serving.System.
func (b *Bullet) Submit(r workload.Request) { b.Prefill.Submit(r) }

// ExtractWaiting drains the prefill waiting queue and returns the
// requests, which hold no KV yet; the cluster drain protocol hands
// them to a healthy replica.
func (b *Bullet) ExtractWaiting() []workload.Request { return b.Prefill.ExtractWaiting() }

// RunTrace is a convenience wrapper over the serving harness.
func (b *Bullet) RunTrace(trace *workload.Trace) serving.Result {
	return b.env.Run(b, trace)
}
