package core

import (
	"math"
	"testing"

	"repro/internal/estimator"
	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/workload"
)

func runBullet(t testing.TB, mode Mode, dataset workload.Dataset, rate float64, n int, seed int64, opts Options) serving.Result {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), dataset.Name)
	opts.Mode = mode
	if opts.Params == (estimator.Params{}) {
		opts.Params = estimator.DefaultParams() // keep unit tests fast
	}
	b := New(env, opts)
	trace := workload.Generate(dataset, rate, n, seed)
	return b.RunTrace(trace)
}

func TestFullSystemCompletesAllRequests(t *testing.T) {
	res := runBullet(t, ModeFull, workload.ShareGPT, 4, 40, 1, Options{})
	if res.Summary.Requests != 40 {
		t.Fatalf("completed %d/40", res.Summary.Requests)
	}
	if res.Summary.MeanTTFT <= 0 || res.Summary.MeanTPOTMs <= 0 {
		t.Fatalf("degenerate summary: %+v", res.Summary)
	}
	// At modest load Bullet should comfortably meet SLOs.
	if res.Summary.SLOAttainment < 0.6 {
		t.Fatalf("SLO attainment = %v at light load", res.Summary.SLOAttainment)
	}
}

func TestDeterminism(t *testing.T) {
	a := runBullet(t, ModeFull, workload.AzureCode, 2, 25, 7, Options{})
	b := runBullet(t, ModeFull, workload.AzureCode, 2, 25, 7, Options{})
	if a.Summary != b.Summary {
		t.Fatalf("non-deterministic summaries:\n%+v\n%+v", a.Summary, b.Summary)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("non-deterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestAllModesRun(t *testing.T) {
	for _, mode := range []Mode{ModeFull, ModeNaive, ModePartitionOnly, ModeSchedulerOnly} {
		mode := mode
		t.Run(string(mode), func(t *testing.T) {
			res := runBullet(t, mode, workload.ShareGPT, 3, 20, 3, Options{})
			if res.Summary.Requests != 20 {
				t.Fatalf("%s completed %d/20", mode, res.Summary.Requests)
			}
		})
	}
}

func TestStaticModeRuns(t *testing.T) {
	res := runBullet(t, ModeStatic, workload.AzureCode, 2, 20, 5, Options{FixedPrefillSMs: 84})
	if res.Summary.Requests != 20 {
		t.Fatalf("completed %d/20", res.Summary.Requests)
	}
	if res.System != "bullet-sm84" {
		t.Fatalf("name = %s", res.System)
	}
}

func TestStaticModeRequiresPrefillSMs(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	defer func() {
		if recover() == nil {
			t.Fatal("ModeStatic without FixedPrefillSMs accepted")
		}
	}()
	New(env, Options{Mode: ModeStatic, Params: estimator.DefaultParams()})
}

func TestUnknownModePanics(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mode accepted")
		}
	}()
	New(env, Options{Mode: "nope", Params: estimator.DefaultParams()})
}

func TestTimelineRecording(t *testing.T) {
	res := runBullet(t, ModeFull, workload.AzureCode, 3, 25, 11, Options{RecordTimeline: true})
	_ = res
}

func TestTimelineSeriesPopulated(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	b := New(env, Options{Mode: ModeFull, RecordTimeline: true, Params: estimator.DefaultParams()})
	trace := workload.Generate(workload.AzureCode, 3, 25, 11)
	b.RunTrace(trace)
	tl := b.Timeline
	if tl.PrefillSMs.Len() == 0 || tl.DecodeSMs.Len() == 0 || tl.PrefillTokens.Len() == 0 {
		t.Fatalf("timeline not recorded: %d/%d/%d samples",
			tl.PrefillSMs.Len(), tl.DecodeSMs.Len(), tl.PrefillTokens.Len())
	}
	if len(tl.Branches) == 0 {
		t.Fatal("no scheduling branches recorded")
	}
	// SM allocations must vary under dynamic provisioning at load.
	minSM, maxSM := math.Inf(1), math.Inf(-1)
	for _, v := range tl.PrefillSMs.V {
		minSM = math.Min(minSM, v)
		maxSM = math.Max(maxSM, v)
	}
	if minSM == maxSM {
		t.Fatalf("prefill SMs never changed (always %v)", minSM)
	}
}

func TestConcurrencyBeatsNothing(t *testing.T) {
	// The full system must beat Naive on TTFT tails under load: Naive
	// lets decode hog bandwidth while prefill queues pile up.
	full := runBullet(t, ModeFull, workload.AzureCode, 4, 40, 13, Options{})
	naive := runBullet(t, ModeNaive, workload.AzureCode, 4, 40, 13, Options{})
	if full.Summary.P90NormTTFT > naive.Summary.P90NormTTFT*1.5 {
		t.Fatalf("full P90 norm TTFT %v much worse than naive %v",
			full.Summary.P90NormTTFT, naive.Summary.P90NormTTFT)
	}
}

func TestOutputTokenConservation(t *testing.T) {
	trace := workload.Generate(workload.ShareGPT, 3, 30, 17)
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), trace.Dataset)
	b := New(env, Options{Mode: ModeFull, Params: estimator.DefaultParams()})
	res := b.RunTrace(trace)
	want := trace.TotalOutputTokens()
	got := 0
	for _, r := range res.Requests {
		got += r.OutputTokens
	}
	if got != want {
		t.Fatalf("output tokens %d != trace %d", got, want)
	}
}

func TestFittedParamsCached(t *testing.T) {
	a := FittedParams(model.Llama31_8B(), gpusim.A100())
	b := FittedParams(model.Llama31_8B(), gpusim.A100())
	if a != b {
		t.Fatal("FittedParams not cached")
	}
	if a.DC <= 0 || a.DB <= 0 {
		t.Fatalf("bad fitted params: %+v", a)
	}
}

func TestSingleOutputTokenRequestCompletesAtPrefill(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	b := New(env, Options{Mode: ModeFull, Params: estimator.DefaultParams()})
	trace := &workload.Trace{Dataset: "azure-code", Rate: 1, Requests: []workload.Request{
		{ID: "one", Arrival: 0.001, InputTokens: 1024, OutputTokens: 1, Dataset: "azure-code"},
	}}
	res := b.RunTrace(trace)
	r := res.Requests[0]
	if r.FirstToken != r.Finish {
		t.Fatalf("single-token request should finish at first token: %+v", r)
	}
	if b.Decode.Steps() != 0 {
		t.Fatal("decode engine ran for a single-token request")
	}
}

func BenchmarkFullSystemShareGPT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runBullet(b, ModeFull, workload.ShareGPT, 5, 50, 1, Options{})
	}
}

func TestPrefixCacheEndToEnd(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	b := New(env, Options{Mode: ModeFull, EnablePrefixCache: true, Params: estimator.DefaultParams()})
	if b.Name() != "bullet+prefix" {
		t.Fatalf("name = %s", b.Name())
	}
	trace := workload.GenerateShared(workload.AzureCode, 3, 40, 19, 2, 512, 0.9)
	res := b.RunTrace(trace)
	if res.Summary.Requests != 40 {
		t.Fatalf("completed %d/40", res.Summary.Requests)
	}
	st := b.PrefixCache.Stats()
	if st.Hits == 0 || st.HitTokens == 0 {
		t.Fatalf("no prefix hits: %+v", st)
	}
	// The harness already asserts the pool drained (EvictAll via OnDrain).
}

func TestTPModelThroughCore(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B().TP(2), "sharegpt")
	b := New(env, Options{Mode: ModeFull, Params: estimator.DefaultParams()})
	trace := workload.Generate(workload.ShareGPT, 4, 20, 23)
	res := b.RunTrace(trace)
	if res.Summary.Requests != 20 {
		t.Fatalf("completed %d/20", res.Summary.Requests)
	}
	// TP2 halves per-rank work: latencies should beat TP1 on the same trace.
	env1 := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
	b1 := New(env1, Options{Mode: ModeFull, Params: estimator.DefaultParams()})
	res1 := b1.RunTrace(workload.Generate(workload.ShareGPT, 4, 20, 23))
	if res.Summary.MeanTTFT >= res1.Summary.MeanTTFT {
		t.Fatalf("TP2 TTFT %.3f not below TP1 %.3f", res.Summary.MeanTTFT, res1.Summary.MeanTTFT)
	}
}

func TestModeNames(t *testing.T) {
	for mode, want := range map[Mode]string{
		ModeFull:          "bullet",
		ModeNaive:         "bullet-naive",
		ModePartitionOnly: "bullet-partition",
		ModeSchedulerOnly: "bullet-scheduler",
	} {
		env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "sharegpt")
		b := New(env, Options{Mode: mode, Params: estimator.DefaultParams()})
		if b.Name() != want {
			t.Fatalf("mode %s name = %s", mode, b.Name())
		}
	}
}
