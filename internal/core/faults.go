package core

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/units"
)

// WatchdogConfig bounds the resilience path for hung prefill batches: a
// batch stalled past Timeout is aborted, its requests re-enqueued after
// Backoff (releasing their KV in between), and a request that has been
// re-executed more than MaxRetries times is shed instead.
type WatchdogConfig struct {
	Timeout    sim.Time
	MaxRetries int
	Backoff    sim.Time
}

// DefaultWatchdog returns the standard bounds: abort after 250 ms of
// virtual-time hang, re-enqueue after a 10 ms backoff, give a request
// three re-executions before shedding it.
func DefaultWatchdog() WatchdogConfig {
	return WatchdogConfig{Timeout: units.FromMs(250), MaxRetries: 3, Backoff: units.FromMs(10)}
}

// faultState is the per-instance resilience bookkeeping, allocated only
// when faults are enabled so healthy runs carry no extra state.
type faultState struct {
	wcfg WatchdogConfig
	// bufferFaults fences overlapping buffer-latency restorations
	// (last-write-wins).
	bufferFaults int

	aborts     int
	retried    int
	shed       int
	recoveries int
	// recoveryTime attributes actual elapsed repair time per completed
	// recovery event (metrics.Resilience.RecoveryTime).
	recoveryTime units.Seconds
}

// recover records one completed recovery and attributes its elapsed
// repair time, so MTTR stays correct when fault windows overlap.
func (f *faultState) recover(took units.Seconds) {
	f.recoveries++
	f.recoveryTime += took
}

// EnableResilience arms the watchdog and fault bookkeeping. It must be
// called (directly or via AttachFaults) before ApplyFault.
func (b *Bullet) EnableResilience(wcfg WatchdogConfig) {
	if wcfg.Timeout <= 0 || wcfg.MaxRetries < 0 || wcfg.Backoff < 0 {
		panic(fmt.Sprintf("core: invalid watchdog config %+v", wcfg))
	}
	if b.faults != nil {
		panic("core: resilience enabled twice")
	}
	b.faults = &faultState{wcfg: wcfg}
}

// AttachFaults arms resilience and registers this instance as the
// injector's handler for the single-device fault kinds (SM degradation
// and engine stalls). Replica crashes are a cluster-level concern — see
// cluster.AttachFaults.
func (b *Bullet) AttachFaults(inj *faults.Injector, wcfg WatchdogConfig) {
	b.EnableResilience(wcfg)
	inj.Handle(faults.KindSMDegrade, b.ApplyFault)
	inj.Handle(faults.KindEngineStall, b.ApplyFault)
	inj.Handle(faults.KindKVShrink, b.ApplyFault)
}

// ApplyFault applies one fault event to this instance. EnableResilience
// must have been called first.
func (b *Bullet) ApplyFault(ev faults.Event) {
	if b.faults == nil {
		panic(fmt.Sprintf("core: ApplyFault(%q) without EnableResilience", ev.Kind))
	}
	switch ev.Kind {
	case faults.KindSMDegrade:
		b.onSMDegrade(ev)
	case faults.KindEngineStall:
		b.onEngineStall(ev)
	case faults.KindKVShrink:
		b.onKVShrink(ev)
	default:
		panic(fmt.Sprintf("core: fault kind %q is not a single-device fault", ev.Kind))
	}
}

// onSMDegrade throttles the faulted SM range and re-provisions; the
// transient recovery restores full health and re-provisions again.
// Overlapping degradations are last-write-wins per SM, matching the
// schedule generator's documented semantics.
func (b *Bullet) onSMDegrade(ev faults.Event) {
	if b.tl != nil {
		b.tl.Instant("faults", "sm-degrade", b.env.Sim.Now(),
			timeline.I("firstSM", ev.FirstSM),
			timeline.I("numSMs", ev.NumSMs),
			timeline.F("throttle", ev.Throttle))
	}
	b.env.GPU.SetSMHealth(ev.FirstSM, ev.NumSMs, ev.Throttle)
	b.reprovision()
	if ev.Duration > 0 {
		b.env.Sim.PostAfter(ev.Duration, func() {
			b.env.GPU.SetSMHealth(ev.FirstSM, ev.NumSMs, 1)
			b.reprovision()
			b.faults.recover(ev.Duration)
		})
	}
}

// reprovision is the resilience core: rebuild the masked-stream table
// around the currently-dead SMs and point Algorithm 1 at the shrunken
// (or restored) budget. Dynamic modes re-optimize the prefill/decode
// split on the next cycle; static modes merely get their fixed quota
// clamped to what still exists — which is exactly the gap ext-faults
// measures.
func (b *Bullet) reprovision() {
	healthy := b.env.GPU.HealthyMask()
	if healthy.IsEmpty() {
		// Whole device dead: nothing to rebuild onto. In-flight kernels
		// limp at the drain floor until a recovery restores health.
		return
	}
	b.Resources.Rebuild(healthy)
	b.Scheduler.SetCapacity(b.Resources.Avail(), b.Resources.Levels())
}

// onEngineStall hangs the targeted component. Prefill hangs longer than
// the watchdog timeout trigger the abort/retry path; everything else
// simply waits the stall out.
func (b *Bullet) onEngineStall(ev faults.Event) {
	if b.tl != nil {
		b.tl.Instant("faults", "stall", b.env.Sim.Now(),
			timeline.S("target", string(ev.Target)),
			timeline.F("seconds", ev.Stall.Float()))
	}
	switch ev.Target {
	case faults.TargetBuffer:
		b.faults.bufferFaults++
		token := b.faults.bufferFaults
		b.Buffer.SetExtraLatency(ev.Stall)
		b.env.Sim.PostAfter(ev.Stall, func() {
			if b.faults.bufferFaults == token {
				b.Buffer.SetExtraLatency(0)
			}
			b.faults.recover(ev.Stall)
		})
	case faults.TargetDecode:
		b.Decode.Stall(ev.Stall)
		b.env.Sim.PostAfter(ev.Stall, func() { b.faults.recover(ev.Stall) })
	case faults.TargetPrefill:
		b.Prefill.Stall(ev.Stall)
		if ev.Stall > b.faults.wcfg.Timeout && b.Prefill.Running() {
			ep := b.Prefill.Epoch()
			b.env.Sim.PostAfter(b.faults.wcfg.Timeout, func() { b.watchdogFire(ep) })
			return
		}
		b.env.Sim.PostAfter(ev.Stall, func() { b.faults.recover(ev.Stall) })
	default:
		panic(fmt.Sprintf("core: unknown stall target %q", ev.Target))
	}
}

// watchdogFire aborts a prefill batch that is still hung past the
// timeout: KV is released immediately, requests with retry budget left
// are re-enqueued after the backoff, the rest are shed.
func (b *Bullet) watchdogFire(ep int) {
	if b.Prefill.Epoch() != ep || !b.Prefill.Running() || !b.Prefill.Stalled() {
		// The batch finished, cleared, or another watchdog already acted.
		b.faults.recover(b.faults.wcfg.Timeout)
		return
	}
	aborted := b.Prefill.AbortBatch()
	b.faults.aborts++
	var keep []*engine.Req
	shed := 0
	for _, r := range aborted {
		if r.Retries > b.faults.wcfg.MaxRetries {
			b.faults.shed++
			shed++
			b.env.Shed(r.W)
			continue
		}
		b.faults.retried++
		keep = append(keep, r)
	}
	b.faults.recover(b.faults.wcfg.Timeout)
	if b.tl != nil {
		b.tl.Instant("watchdog", "abort", b.env.Sim.Now(),
			timeline.I("aborted", len(aborted)),
			timeline.I("retried", len(keep)),
			timeline.I("shed", shed))
	}
	if len(keep) > 0 {
		b.env.Sim.PostAfter(b.faults.wcfg.Backoff, func() { b.Prefill.Requeue(keep) })
	}
}

// Resilience returns this instance's local recovery accounting. The
// caller owns injector-level counters (FaultsInjected, Downtime) — in a
// cluster several instances share one injector, so counting them here
// would double-book.
func (b *Bullet) Resilience() metrics.Resilience {
	if b.faults == nil {
		return metrics.Resilience{}
	}
	return metrics.Resilience{
		BatchAborts:  b.faults.aborts,
		Retried:      b.faults.retried,
		Shed:         b.faults.shed,
		Recoveries:   b.faults.recoveries,
		RecoveryTime: b.faults.recoveryTime,
	}
}
