package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/units"
	"repro/internal/workload"
)

// runFaulty drives one serving run with a generated fault schedule —
// with the timeline recorder attached, so determinism tests can diff
// traces too — and returns the result plus the run's resilience
// accounting and exported trace.
func runFaulty(t testing.TB, mode Mode, fcfg faults.Config, rate float64, n int, seed int64) (serving.Result, metrics.Resilience, *faults.Injector, []byte) {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), workload.ShareGPT.Name)
	opts := Options{Mode: mode, Params: estimator.DefaultParams()}
	if mode == ModeStatic {
		opts.FixedPrefillSMs = 54
	}
	b := New(env, opts)
	rec := timeline.New(0)
	b.AttachTimeline(rec)
	inj := faults.NewInjector(env.Sim, faults.Generate(fcfg))
	b.AttachFaults(inj, DefaultWatchdog())
	inj.Arm()
	trace := workload.Generate(workload.ShareGPT, rate, n, seed)
	res := b.RunTrace(trace)
	rl := b.Resilience()
	rl.FaultsInjected = inj.Injected()
	rl.Downtime = inj.ScheduledDowntime()
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatalf("exporting faulty-run trace: %v", err)
	}
	return res, rl, inj, buf.Bytes()
}

func faultyConfig() faults.Config {
	cfg := faults.DefaultConfig(108, units.Seconds(30))
	cfg.Seed = 11
	cfg.DegradeRate = 0.3
	cfg.StallRate = 0.3
	return cfg
}

// TestFaultyRunCompletesAndBalances is the tentpole acceptance check for
// a single device: a run with a non-empty fault schedule finishes with
// every request completed or accounted as shed, the KV pool empty (Run
// panics otherwise), and faults actually having fired.
func TestFaultyRunCompletesAndBalances(t *testing.T) {
	const n = 40
	res, rl, inj, _ := runFaulty(t, ModeFull, faultyConfig(), 4, n, 1)
	if inj.Injected() == 0 {
		t.Fatal("fault schedule injected nothing")
	}
	if got := res.Summary.Requests + res.Shed; got != n {
		t.Fatalf("completed %d + shed %d = %d, want %d",
			res.Summary.Requests, res.Shed, got, n)
	}
	if rl.FaultsInjected != inj.Injected() {
		t.Fatalf("resilience counts %d faults, injector %d", rl.FaultsInjected, inj.Injected())
	}
	if res.Summary.Goodput <= 0 {
		t.Fatalf("goodput = %v under moderate faults", res.Summary.Goodput)
	}
}

// TestFaultyRunBitIdentical: same seed + same fault schedule must give
// bit-identical results — the resilience accounting and the exported
// timeline trace included. This composes the fault injector with the
// observability layer's determinism guarantee.
func TestFaultyRunBitIdentical(t *testing.T) {
	a, ra, _, ta := runFaulty(t, ModeFull, faultyConfig(), 4, 30, 9)
	b, rb, _, tb := runFaulty(t, ModeFull, faultyConfig(), 4, 30, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\nvs\n%+v", a.Summary, b.Summary)
	}
	if ra != rb {
		t.Fatalf("resilience diverged: %+v vs %+v", ra, rb)
	}
	if !bytes.Equal(ta, tb) {
		t.Fatalf("trace JSON diverged under faults (%d vs %d bytes)", len(ta), len(tb))
	}
}

func TestSMDegradeReprovisions(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), workload.ShareGPT.Name)
	b := New(env, Options{Params: estimator.DefaultParams()})
	b.EnableResilience(DefaultWatchdog())
	// Kill a 24-SM range mid-run, transiently.
	env.Sim.At(units.Seconds(1), func() {
		b.ApplyFault(faults.Event{
			Kind: faults.KindSMDegrade, FirstSM: 84, NumSMs: 24,
			Throttle: 0, Duration: units.Seconds(2),
		})
	})
	probes := 0
	env.Sim.At(units.Seconds(2), func() {
		probes++
		if b.Resources.Avail() != 84 || b.Scheduler.Capacity() != 84 {
			t.Errorf("during fault: avail=%d capacity=%d, want 84",
				b.Resources.Avail(), b.Scheduler.Capacity())
		}
	})
	env.Sim.At(units.Seconds(4), func() {
		probes++
		if b.Resources.Avail() != 108 || b.Scheduler.Capacity() != 108 {
			t.Errorf("after recovery: avail=%d capacity=%d, want 108",
				b.Resources.Avail(), b.Scheduler.Capacity())
		}
	})
	res := b.RunTrace(workload.Generate(workload.ShareGPT, 4, 30, 5))
	if probes != 2 {
		t.Fatalf("probes fired %d/2", probes)
	}
	if res.Summary.Requests != 30 {
		t.Fatalf("completed %d/30 across a transient SM failure", res.Summary.Requests)
	}
	if b.Resources.Rebuilds() != 2 {
		t.Fatalf("rebuilds = %d, want 2 (fault + recovery)", b.Resources.Rebuilds())
	}
	if got := b.Resilience().Recoveries; got != 1 {
		t.Fatalf("recoveries = %d, want 1", got)
	}
}

// TestWatchdogAbortsHungPrefill pins the abort→retry path: a prefill
// hang far past the watchdog timeout aborts the in-flight batch, frees
// its KV, and the re-enqueued requests still complete.
func TestWatchdogAbortsHungPrefill(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), workload.ShareGPT.Name)
	b := New(env, Options{Params: estimator.DefaultParams()})
	b.EnableResilience(DefaultWatchdog())
	// A long hang injected shortly after the first batch launches.
	injected := false
	b.Prefill.OnBatchStart = func(tm sim.Time, tokens, reqs, waiting int) {
		if injected {
			return
		}
		injected = true
		env.Sim.After(units.FromMs(1), func() {
			b.ApplyFault(faults.Event{
				Kind: faults.KindEngineStall, Target: faults.TargetPrefill,
				Stall: units.Seconds(2),
			})
		})
	}
	res := b.RunTrace(workload.Generate(workload.ShareGPT, 4, 20, 2))
	rl := b.Resilience()
	if rl.BatchAborts == 0 {
		t.Fatal("watchdog never aborted the hung batch")
	}
	if rl.Retried == 0 {
		t.Fatal("no requests were retried after the abort")
	}
	if res.Summary.Requests+res.Shed != 20 {
		t.Fatalf("completed %d + shed %d, want 20", res.Summary.Requests, res.Shed)
	}
	if b.Prefill.Aborts() != rl.BatchAborts {
		t.Fatalf("engine aborts %d != resilience aborts %d", b.Prefill.Aborts(), rl.BatchAborts)
	}
}

// TestShortStallNoAbort: hangs within the watchdog timeout are waited
// out, not aborted.
func TestShortStallNoAbort(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), workload.ShareGPT.Name)
	b := New(env, Options{Params: estimator.DefaultParams()})
	b.EnableResilience(DefaultWatchdog())
	for _, tgt := range []faults.Target{faults.TargetPrefill, faults.TargetDecode, faults.TargetBuffer} {
		tgt := tgt
		env.Sim.At(units.FromMs(50), func() {
			b.ApplyFault(faults.Event{
				Kind: faults.KindEngineStall, Target: tgt, Stall: units.FromMs(30),
			})
		})
	}
	res := b.RunTrace(workload.Generate(workload.ShareGPT, 4, 20, 3))
	rl := b.Resilience()
	if rl.BatchAborts != 0 || rl.Shed != 0 {
		t.Fatalf("short stalls caused aborts/shedding: %+v", rl)
	}
	if rl.Recoveries != 3 {
		t.Fatalf("recoveries = %d, want 3", rl.Recoveries)
	}
	if res.Summary.Requests != 20 {
		t.Fatalf("completed %d/20", res.Summary.Requests)
	}
	if b.Buffer.ExtraLatency() != 0 {
		t.Fatalf("buffer extra latency %v not restored", b.Buffer.ExtraLatency())
	}
}

// TestRepeatedHangsShed: with retries exhausted, requests are shed and
// the run still terminates cleanly (KV accounted).
func TestRepeatedHangsShed(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), workload.ShareGPT.Name)
	b := New(env, Options{Params: estimator.DefaultParams()})
	b.AttachFaults(nil2(), WatchdogConfig{Timeout: units.FromMs(50), MaxRetries: 0, Backoff: units.FromMs(1)})
	// Hang the prefill engine over and over so every batch launch is
	// aborted; with MaxRetries 0 the second abort sheds a request.
	var hang func(at sim.Time)
	hang = func(at sim.Time) {
		if at > units.Seconds(300) {
			return
		}
		env.Sim.At(at, func() {
			if b.Prefill.Running() {
				b.ApplyFault(faults.Event{
					Kind: faults.KindEngineStall, Target: faults.TargetPrefill,
					Stall: units.Seconds(1),
				})
			}
			hang(at + units.FromMs(60))
		})
	}
	hang(units.FromMs(1))
	res := b.RunTrace(workload.Generate(workload.ShareGPT, 4, 10, 4))
	rl := b.Resilience()
	if rl.Shed == 0 || res.Shed != rl.Shed {
		t.Fatalf("expected shedding under relentless hangs: resilience %+v, result shed %d", rl, res.Shed)
	}
	if res.Summary.Requests+res.Shed != 10 {
		t.Fatalf("completed %d + shed %d, want 10", res.Summary.Requests, res.Shed)
	}
}

// nil2 builds an injector-shaped argument for AttachFaults when the test
// drives ApplyFault directly.
func nil2() *faults.Injector {
	return faults.NewInjector(sim.New(), faults.Schedule{})
}

func TestApplyFaultWithoutEnablePanics(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), workload.ShareGPT.Name)
	b := New(env, Options{Params: estimator.DefaultParams()})
	defer func() {
		if recover() == nil {
			t.Fatal("ApplyFault without EnableResilience did not panic")
		}
	}()
	b.ApplyFault(faults.Event{Kind: faults.KindSMDegrade, NumSMs: 2, Throttle: 0.5})
}

func TestStaticModeSurvivesFaults(t *testing.T) {
	res, _, inj, _ := runFaulty(t, ModeStatic, faultyConfig(), 4, 30, 6)
	if inj.Injected() == 0 {
		t.Fatal("no faults fired")
	}
	if res.Summary.Requests+res.Shed != 30 {
		t.Fatalf("static split: completed %d + shed %d, want 30", res.Summary.Requests, res.Shed)
	}
}
