package core

import (
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/pressure"
	"repro/internal/sim"
	"repro/internal/timeline"
)

// EnablePressure arms the memory-pressure subsystem: the prefill engine's
// admissions go through a watermark gate, deferred admissions trigger
// decode preemption (unless the config disables it), and preempted
// victims are recovered by recompute or KV retransfer — or shed once
// they exhaust the preemption budget. Options.Pressure calls this from
// New; it may also be called directly on a hand-assembled instance.
func (b *Bullet) EnablePressure(cfg pressure.Config) {
	if b.pressure != nil {
		panic("core: pressure enabled twice")
	}
	ctrl := pressure.New(b.env.KV, b.Estimator, b.env.Model.KVBytesPerToken(), cfg)
	ctrl.SetTimeline(b.tl)
	b.pressure = ctrl
	b.Buffer.HostBandwidth = ctrl.Config().HostBandwidth
	b.Prefill.Gate = ctrl
	b.Prefill.OnGateShed = func(r *engine.Req) { b.env.Shed(r.W) }
	if ctrl.Config().DisablePreemption {
		b.name += "+gate"
		return
	}
	b.Prefill.OnPressure = b.relievePressure
	b.name += "+pressure"
}

// PressureController returns the controller armed by EnablePressure (nil
// when pressure is off).
func (b *Bullet) PressureController() *pressure.Controller { return b.pressure }

// Pressure returns the memory-pressure accounting (zero when off).
func (b *Bullet) Pressure() metrics.Pressure {
	if b.pressure == nil {
		return metrics.Pressure{}
	}
	return b.pressure.Metrics()
}

// relievePressure preempts decode sequences that arrived after
// requester to free deficit blocks, and routes each victim into
// recovery or shed. It is the gate's OnPressure hook.
func (b *Bullet) relievePressure(deficit int, requester sim.Time) {
	if deficit <= 0 {
		return
	}
	victims := b.Decode.Preempt(deficit, requester)
	if len(victims) == 0 {
		return
	}
	now := b.env.Sim.Now()
	bt := b.env.KV.BlockTokens()
	for _, v := range victims {
		v := v
		blocks := (v.NewTokens() + v.W.OutputTokens + bt - 1) / bt
		b.pressure.RecordPreemption(now, v.W.ID, blocks, v.Preemptions)
		if b.pressure.ShouldShedVictim(v.Preemptions) {
			v.CloseTrail(now)
			v.ReleasePrefix()
			b.pressure.RecordShed(now, v.W.ID, "preempt-budget")
			b.env.Shed(v.W)
			continue
		}
		// Backoff before recovering: the admission that raised pressure
		// gets first claim on the freed blocks.
		b.env.Sim.PostAfter(b.pressure.Backoff(v.Preemptions), func() {
			b.recoverVictim(v, 1)
		})
	}
}

// recoverVictim restores one preempted request on the cheaper path the
// cost model picks. Retransfer re-reserves the victim's KV and replays
// the saved bytes through the metadata buffer; while the pool stays too
// tight to re-reserve, the attempt retries with backoff and degrades to
// recompute once the retry budget is spent. Recompute rewinds the request
// and re-enqueues it through the admission gate.
func (b *Bullet) recoverVictim(v *engine.Req, attempt int) {
	now := b.env.Sim.Now()
	choice := pressure.Recompute
	if attempt <= b.pressure.Config().MaxRecoveryRetries {
		choice = b.pressure.ChooseRecovery(v.Ctx(), b.Resources.NumSMs(),
			b.Buffer.Latency+b.Buffer.ExtraLatency())
	}
	if choice == pressure.Retransfer {
		need := v.NewTokens() + v.W.OutputTokens
		if !b.pressure.CanReadmit(need) {
			b.env.Sim.PostAfter(b.pressure.Backoff(attempt+1), func() {
				b.recoverVictim(v, attempt+1)
			})
			return
		}
		seq, err := b.env.KV.Allocate(v.W.ID, need, "decode")
		if err != nil {
			b.env.Sim.PostAfter(b.pressure.Backoff(attempt+1), func() {
				b.recoverVictim(v, attempt+1)
			})
			return
		}
		v.Seq = seq
		v.CloseTrail(now)
		v.DecodeStart = 0 // Accept re-stamps at delivery
		b.pressure.RecordRecovery(now, v.W.ID, pressure.Retransfer, v.Ctx())
		b.Buffer.TransferKV(b.pressure.RetransferBytes(v.Ctx()), func() {
			v.AppendTrail("kv-retransfer", now, b.env.Sim.Now())
			b.Decode.Accept([]*engine.Req{v})
		})
		return
	}
	b.pressure.RecordRecovery(now, v.W.ID, pressure.Recompute, v.NewTokens())
	// Rewind the run state; the trail keeps the history, and the prefill
	// engine seals the open preempted span when the re-run launches. The
	// prefix pin (if any) survives — the cached prefix is still valid.
	v.PrefillStart = 0
	v.FirstToken = 0
	v.DecodeStart = 0
	v.Generated = 0
	b.Prefill.Requeue([]*engine.Req{v})
}

// onKVShrink applies a live KV capacity-reduction fault: the pool retires
// the faulted fraction (draining live blocks as sequences free them),
// pressure relief preempts decode sequences to cover any drain shortfall,
// and the capacity restores after the fault's duration.
func (b *Bullet) onKVShrink(ev faults.Event) {
	if ev.KVFraction <= 0 {
		return
	}
	now := b.env.Sim.Now()
	n := int(ev.KVFraction * float64(b.env.KV.TotalBlocks()))
	if n <= 0 {
		return
	}
	if b.tl != nil {
		b.tl.Instant("faults", "kv-shrink", now,
			timeline.I("blocks", n),
			timeline.F("fraction", ev.KVFraction),
			timeline.F("seconds", ev.Duration.Float()))
	}
	b.env.KV.Shrink(n)
	if b.pressure != nil {
		// No eager preemption here: in-flight decodes already hold
		// their blocks and finish regardless of the shrink — the
		// retirement debt only starves new admissions, which the gate
		// defers. Preemption engages from the admission path once the
		// debt has drained and the settled pool still cannot fit the
		// head request (Controller.PhysicalDeficit).
		b.pressure.RecordKVShrink(now, n, false)
	}
	if ev.Duration > 0 {
		b.env.Sim.PostAfter(ev.Duration, func() {
			b.env.KV.Restore(n)
			b.Buffer.PublishKVRelease()
			if b.pressure != nil {
				b.pressure.RecordKVShrink(b.env.Sim.Now(), n, true)
			}
			if b.faults != nil {
				b.faults.recoveries++
			}
		})
	}
}
