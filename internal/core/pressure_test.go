package core

import (
	"testing"

	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/pressure"
	"repro/internal/serving"
	"repro/internal/timeline"
	"repro/internal/units"
	"repro/internal/workload"
)

// pressureTrace is a three-request squeeze that deterministically forces
// one preemption on a 160-block pool (2560 tokens at 16 tokens/block):
//
//   - "filler" (t=0, 100 blocks) admits into the empty pool first;
//   - "big" (t=0.005, 144 blocks) arrives next but the SLO-deadline
//     reorder puts the small "victim" ahead of it;
//   - "victim" (t=0.010, 50 blocks) admits beside the filler and starts
//     decoding, leaving the pool too full for "big" to ever fit by
//     waiting — the gate's physical deficit fires, and "victim" is the
//     only decode sequence that arrived after "big", so it is evicted.
//
// The victim then recovers (recompute or retransfer, per the config
// under test) and every request still completes.
func pressureTrace() *workload.Trace {
	return &workload.Trace{
		Dataset: "azure-code",
		Rate:    1,
		Requests: []workload.Request{
			{ID: "filler", Arrival: 0, InputTokens: 1504, OutputTokens: 96, Dataset: "azure-code"},
			{ID: "big", Arrival: units.FromMs(5), InputTokens: 2000, OutputTokens: 304, Dataset: "azure-code"},
			{ID: "victim", Arrival: units.FromMs(10), InputTokens: 640, OutputTokens: 160, Dataset: "azure-code"},
		},
	}
}

// runSqueeze executes the squeeze trace on a shrunken pool and returns
// the result, the pressure counters, and the recorded timeline events.
func runSqueeze(t *testing.T, pcfg pressure.Config) (serving.Result, *Bullet, []timeline.Event) {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	env.KV = kvcache.NewPool(160, serving.KVBlockTokens)
	b := New(env, Options{Mode: ModeFull, Pressure: &pcfg})
	rec := timeline.New(0)
	b.AttachTimeline(rec)
	res := b.RunTrace(pressureTrace())
	return res, b, rec.Events()
}

// squeezeConfig loosens the gate enough for the squeeze to admit
// (projected occupancy runs right at 0.94) while keeping the retry
// budgets generous, so the only terminal outcomes are the recovery
// paths under test.
func squeezeConfig() pressure.Config {
	return pressure.Config{
		LowWatermark:      0.85,
		HighWatermark:     0.96,
		CriticalWatermark: 0.99,
		MaxDeferrals:      4096, // re-admission waits out "big"'s multi-second decode
	}
}

// lifecycleOf extracts request id's async lifecycle spans in emission
// order.
func lifecycleOf(events []timeline.Event, id string) []timeline.Event {
	var out []timeline.Event
	for _, e := range events {
		if e.Kind == timeline.KindAsync && e.Lane == "requests" && e.ID == id {
			out = append(out, e)
		}
	}
	return out
}

func spanNames(spans []timeline.Event) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}

// checkAbuts fails unless consecutive lifecycle spans share boundaries
// (span i+1 starts exactly where span i ends) — the trail-clamping
// contract that keeps preempted lifecycles gap- and overlap-free.
func checkAbuts(t *testing.T, spans []timeline.Event) {
	t.Helper()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start != spans[i-1].End {
			t.Errorf("span %d (%s) starts at %v, previous (%s) ends at %v — lifecycle does not abut",
				i, spans[i].Name, spans[i].Start, spans[i-1].Name, spans[i-1].End)
		}
	}
}

// TestPreemptRecomputeLifecycle drives the squeeze with retransfer
// priced out (1 B/s host link), so the victim recovers by full prefill
// recompute, and checks the whole contract: everything completes, the
// victim's replayed lifecycle is
// queued→prefill→kv-transfer→decode→preempted→prefill→kv-transfer→decode
// with every boundary abutting, and its recorded TTFT/TBT come from the
// re-run (first token after the preemption, not before it).
func TestPreemptRecomputeLifecycle(t *testing.T) {
	cfg := squeezeConfig()
	cfg.HostBandwidth = 1 // retransfer takes ~hours; cost model must pick recompute
	res, b, events := runSqueeze(t, cfg)

	if res.Summary.Requests != 3 || res.Shed != 0 {
		t.Fatalf("completed %d, shed %d — want all 3 recovered", res.Summary.Requests, res.Shed)
	}
	p := b.Pressure()
	if p.Preemptions == 0 || p.Recomputes == 0 {
		t.Fatalf("squeeze did not exercise preempt+recompute: %+v", p)
	}
	if p.Retransfers != 0 {
		t.Fatalf("retransfer chosen at 1 B/s host bandwidth: %+v", p)
	}
	if p.RecomputedTokens == 0 {
		t.Fatalf("recompute accounted no tokens: %+v", p)
	}

	spans := lifecycleOf(events, "victim")
	want := []string{"queued", "prefill", "kv-transfer", "decode", "preempted", "prefill", "kv-transfer", "decode"}
	if got := spanNames(spans); len(got) != len(want) {
		t.Fatalf("victim lifecycle = %v, want %v", got, want)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("victim lifecycle = %v, want %v", got, want)
			}
		}
	}
	checkAbuts(t, spans)

	// The preempted span must cover real virtual time (the victim sat
	// evicted while "big" ran), and the re-run's metrics must reflect it.
	preempted := spans[4]
	if preempted.End <= preempted.Start {
		t.Fatalf("preempted span is empty: %+v", preempted)
	}
	for _, r := range res.Requests {
		if r.ID != "victim" {
			continue
		}
		if r.FirstToken <= preempted.Start {
			t.Errorf("victim TTFT stamped before its preemption: first token %v, preempted at %v",
				r.FirstToken, preempted.Start)
		}
		if r.PrefillStart != spans[5].Start || r.FirstToken != spans[5].End {
			t.Errorf("victim prefill metrics [%v,%v] disagree with re-run span [%v,%v]",
				r.PrefillStart, r.FirstToken, spans[5].Start, spans[5].End)
		}
		if r.DecodeStart != spans[7].Start || r.Finish != spans[7].End {
			t.Errorf("victim decode metrics [%v,%v] disagree with re-run span [%v,%v]",
				r.DecodeStart, r.Finish, spans[7].Start, spans[7].End)
		}
		if r.TTFT() <= 0 || r.TPOT() <= 0 {
			t.Errorf("victim re-run TTFT %v / TPOT %v not positive", r.TTFT(), r.TPOT())
		}
	}

	// Older work never yields to newer: the filler (oldest) and big
	// (whose admission caused the preemption) must run unpreempted.
	for _, id := range []string{"filler", "big"} {
		for _, s := range lifecycleOf(events, id) {
			if s.Name == "preempted" {
				t.Errorf("%s was preempted; only strictly-newer arrivals are victims", id)
			}
		}
	}
}

// TestPreemptRetransferLifecycle drives the same squeeze with a fast
// host link and a deep retry budget: the cost model picks KV
// retransfer, the victim's re-admission waits out the squeeze (bounded
// retries with backoff, gated below the high watermark), and decode
// resumes on the restored KV without re-running prefill:
// queued→prefill→kv-transfer→decode→preempted→kv-retransfer→decode.
func TestPreemptRetransferLifecycle(t *testing.T) {
	cfg := squeezeConfig()
	cfg.HostBandwidth = units.BytesPerSec(1e15)
	cfg.MaxRecoveryRetries = 500 // outlast "big"'s run at the 256ms backoff cap
	res, b, events := runSqueeze(t, cfg)

	if res.Summary.Requests != 3 || res.Shed != 0 {
		t.Fatalf("completed %d, shed %d — want all 3 recovered", res.Summary.Requests, res.Shed)
	}
	p := b.Pressure()
	if p.Preemptions == 0 || p.Retransfers == 0 {
		t.Fatalf("squeeze did not exercise preempt+retransfer: %+v", p)
	}
	if p.Recomputes != 0 {
		t.Fatalf("recovery degraded to recompute despite the retry budget: %+v", p)
	}
	if p.RetransferredBytes <= 0 {
		t.Fatalf("retransfer accounted no bytes: %+v", p)
	}
	if b.Buffer.KVRetransfers != p.Retransfers {
		t.Fatalf("buffer carried %d retransfers, controller counted %d",
			b.Buffer.KVRetransfers, p.Retransfers)
	}

	spans := lifecycleOf(events, "victim")
	want := []string{"queued", "prefill", "kv-transfer", "decode", "preempted", "kv-retransfer", "decode"}
	got := spanNames(spans)
	if len(got) != len(want) {
		t.Fatalf("victim lifecycle = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("victim lifecycle = %v, want %v", got, want)
		}
	}
	checkAbuts(t, spans)

	for _, r := range res.Requests {
		if r.ID != "victim" {
			continue
		}
		// Retransfer keeps the original prefill: TTFT is the first run's,
		// decode restarts after the preemption.
		if r.FirstToken != spans[1].End {
			t.Errorf("victim first token %v moved off its original prefill end %v",
				r.FirstToken, spans[1].End)
		}
		if r.DecodeStart != spans[6].Start || r.Finish != spans[6].End {
			t.Errorf("victim resumed-decode metrics [%v,%v] disagree with span [%v,%v]",
				r.DecodeStart, r.Finish, spans[6].Start, spans[6].End)
		}
	}
}

// TestPressureGateOnlyNeverPreempts: the DisablePreemption ablation must
// defer and recover through ordinary completions — zero preemptions, no
// trail spans — while still finishing the squeeze.
func TestPressureGateOnlyNeverPreempts(t *testing.T) {
	cfg := squeezeConfig()
	cfg.DisablePreemption = true
	res, b, events := runSqueeze(t, cfg)
	if res.Summary.Requests+res.Shed != 3 {
		t.Fatalf("completed %d + shed %d, want 3 accounted", res.Summary.Requests, res.Shed)
	}
	p := b.Pressure()
	if p.Preemptions != 0 || p.Recomputes != 0 || p.Retransfers != 0 {
		t.Fatalf("gate-only run preempted: %+v", p)
	}
	for _, e := range events {
		if e.Kind == timeline.KindAsync && e.Lane == "requests" && e.Name == "preempted" {
			t.Fatalf("gate-only run emitted a preempted span for %s", e.ID)
		}
	}
}
