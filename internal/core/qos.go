package core

import (
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/workload"
)

// EnableQoS arms the SLO-feedback QoS subsystem: the decode batch cap
// and prefill chunk-token budget come under the AIMD controller's
// feedback loop, tenant classes drive admission priority at the pressure
// gate, weighted fairness in the scheduler's SM split, and
// preemption-victim order, and every completed or shed request feeds the
// controller's per-class accounting. Options.QoS calls this from New; it
// may also be called directly on a hand-assembled instance. The
// completion and shed hooks chain onto any observer already installed
// (the cluster's outbox hooks, wired before New), preserving per-replica
// determinism.
func (b *Bullet) EnableQoS(cfg qos.Config) {
	if b.qos != nil {
		panic("core: qos enabled twice")
	}
	ctrl := qos.New(b.env.SLO, cfg, b.opts.MaxDecodeBatch, b.opts.MaxPrefillTokens)
	ctrl.SetTimeline(b.tl)
	b.qos = ctrl
	b.Prefill.QoS = ctrl
	b.Decode.QoS = ctrl
	prevComplete := b.env.OnComplete
	b.env.OnComplete = func(r metrics.Request) {
		ctrl.ObserveCompletion(b.env.Sim.Now(), r, b.env.KV.Occupancy())
		if prevComplete != nil {
			prevComplete(r)
		}
	}
	prevShed := b.env.OnShed
	b.env.OnShed = func(r workload.Request) {
		ctrl.RecordShed(qos.ClassOf(r.Tenant))
		if prevShed != nil {
			prevShed(r)
		}
	}
	b.name += "+qos"
}

// QoSController returns the controller armed by EnableQoS (nil when QoS
// is off).
func (b *Bullet) QoSController() *qos.Controller { return b.qos }

// QoS returns the QoS controller's decision and per-class accounting
// (zero when off).
func (b *Bullet) QoS() qos.Metrics {
	if b.qos == nil {
		return qos.Metrics{}
	}
	return b.qos.Metrics()
}
