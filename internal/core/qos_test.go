package core

import (
	"reflect"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/model"
	"repro/internal/pressure"
	"repro/internal/qos"
	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

// runQoS executes a tenant-mixed trace on the full QoS stack (pressure
// gate + SLO-feedback controller) and returns the result and the system.
func runQoS(trace *workload.Trace, pcfg pressure.Config) (serving.Result, *Bullet) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	b := New(env, Options{Mode: ModeFull, Pressure: &pcfg, QoS: &qos.Config{}})
	return b.RunTrace(trace), b
}

// TestQoSTokenConservation pins the accounting contract on a clean
// moderate-load run (no shed, no preemption): every computed prefill
// token and every generated decode token lands in exactly one class
// bucket, and the buckets sum to the trace totals.
func TestQoSTokenConservation(t *testing.T) {
	trace := workload.GenerateTenantMix(workload.AzureCode, 4, 60, 7, workload.DefaultTenantMix())
	res, b := runQoS(trace, pressure.Config{})
	if res.Shed != 0 {
		t.Fatalf("conservation run shed %d requests; want a clean run", res.Shed)
	}
	if len(res.Requests) != len(trace.Requests) {
		t.Fatalf("completed %d of %d requests", len(res.Requests), len(trace.Requests))
	}
	wantPrefill, wantDecode := 0, 0
	var wantByClass [qos.NumClasses]int
	for _, r := range res.Requests {
		wantPrefill += r.InputTokens
		wantDecode += r.OutputTokens - 1 // first token comes from prefill
		wantByClass[qos.ClassOf(r.Tenant)] += r.InputTokens
	}
	acct := b.QoS().Accounting
	if got := acct.TotalPrefillTokens(); got != wantPrefill {
		t.Errorf("prefill tokens: accounted %d, trace total %d", got, wantPrefill)
	}
	if got := acct.TotalDecodeTokens(); got != wantDecode {
		t.Errorf("decode tokens: accounted %d, trace total %d", got, wantDecode)
	}
	for c := 0; c < qos.NumClasses; c++ {
		if acct.PrefillTokens[c] != wantByClass[c] {
			t.Errorf("class %v prefill tokens = %d, want %d",
				qos.Class(c), acct.PrefillTokens[c], wantByClass[c])
		}
	}
	var completed int
	for c := 0; c < qos.NumClasses; c++ {
		completed += acct.Completed[c]
	}
	if completed != len(res.Requests) {
		t.Errorf("completions accounted %d, want %d", completed, len(res.Requests))
	}
}

// shedTrace is a sustained squeeze on a shrunken pool: interleaved
// same-shape requests from all three classes, far more than the pool can
// hold, so the gate's deferral budgets run out and requests shed.
func shedTrace() *workload.Trace {
	tr := &workload.Trace{Dataset: "azure-code", Rate: 1}
	tenants := []string{
		qos.TenantBestEffort, qos.TenantStandard, qos.TenantPremium,
	}
	for i := 0; i < 18; i++ {
		tr.Requests = append(tr.Requests, workload.Request{
			ID:           "r" + string(rune('a'+i)),
			Tenant:       tenants[i%3],
			Arrival:      units.FromMs(float64(i)),
			InputTokens:  1504,
			OutputTokens: 96,
			Dataset:      "azure-code",
		})
	}
	return tr
}

// TestQoSShedOrder drives the squeeze and checks the class shed order is
// strict in time: the gate halves the deferral budget per priority level,
// so under the same sustained pressure best-effort runs out of budget
// strictly before standard, and standard strictly before premium.
func TestQoSShedOrder(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	env.KV = kvcache.NewPool(160, serving.KVBlockTokens)
	var shedSeq []qos.Class
	env.OnShed = func(r workload.Request) {
		shedSeq = append(shedSeq, qos.ClassOf(r.Tenant))
	}
	pcfg := pressure.Config{DisablePreemption: true, MaxDeferrals: 64}
	b := New(env, Options{Mode: ModeFull, Pressure: &pcfg, QoS: &qos.Config{}})
	res := b.RunTrace(shedTrace())
	shed := b.QoS().Accounting.Shed
	if res.Shed == 0 || shed[qos.BestEffort] == 0 || shed[qos.Standard] == 0 {
		t.Fatalf("squeeze did not shed both lower classes (total %d, by class %v)",
			res.Shed, shed)
	}
	first := func(c qos.Class) int {
		for i, s := range shedSeq {
			if s == c {
				return i
			}
		}
		return len(shedSeq)
	}
	if first(qos.BestEffort) >= first(qos.Standard) {
		t.Errorf("standard shed (seq %d) no later than best-effort (seq %d)",
			first(qos.Standard), first(qos.BestEffort))
	}
	if first(qos.Standard) >= first(qos.Premium) {
		t.Errorf("premium shed (seq %d) no later than standard (seq %d)",
			first(qos.Premium), first(qos.Standard))
	}
}

// TestQoSRunDeterminism pins the determinism contract on the full QoS
// stack: two runs from the same seed produce identical per-request
// metrics and an identical controller trajectory. ci.sh re-runs this
// test under -race.
func TestQoSRunDeterminism(t *testing.T) {
	run := func() (serving.Result, qos.Metrics) {
		trace := workload.GenerateTenantMix(workload.AzureCode, 12, 80, 42, workload.DefaultTenantMix())
		res, b := runQoS(trace, pressure.Config{})
		return res, b.QoS()
	}
	r1, m1 := run()
	r2, m2 := run()
	if m1 != m2 {
		t.Fatalf("controller trajectories diverged:\n%+v\n%+v", m1, m2)
	}
	if m1.Decisions == 0 {
		t.Fatal("controller made no decisions; the run is not exercising the loop")
	}
	if !reflect.DeepEqual(r1.Requests, r2.Requests) {
		t.Fatal("per-request metrics diverged between same-seed runs")
	}
	if r1.Summary != r2.Summary || r1.Makespan != r2.Makespan {
		t.Fatalf("summaries diverged:\n%+v\n%+v", r1.Summary, r2.Summary)
	}
}

// TestQoSOffBitIdentical pins the nil-guard contract: a system built
// without QoS produces byte-identical results whether or not the qos
// package is linked — i.e. the plain-bullet path through the engines is
// untouched. (The golden trace tests pin the stronger cross-version
// property; this is the cheap in-package guard.)
func TestQoSOffBitIdentical(t *testing.T) {
	trace := workload.Generate(workload.AzureCode, 4, 40, 9)
	env1 := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	res1 := New(env1, Options{Mode: ModeFull}).RunTrace(trace)
	env2 := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	b2 := New(env2, Options{Mode: ModeFull})
	if b2.QoSController() != nil {
		t.Fatal("QoS controller present without opt-in")
	}
	res2 := b2.RunTrace(trace)
	if !reflect.DeepEqual(res1.Requests, res2.Requests) || res1.Summary != res2.Summary {
		t.Fatal("plain-bullet runs diverged")
	}
	if got := b2.QoS(); got != (qos.Metrics{}) {
		t.Fatalf("QoS metrics non-zero without a controller: %+v", got)
	}
}

// TestEnableQoSTwicePanics pins the double-enable guard.
func TestEnableQoSTwicePanics(t *testing.T) {
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	b := New(env, Options{Mode: ModeFull, QoS: &qos.Config{}})
	defer func() {
		if recover() == nil {
			t.Fatal("second EnableQoS must panic")
		}
	}()
	b.EnableQoS(qos.Config{})
}
