// Package engine implements Bullet's concurrent execution engine (§3.5):
// decentralized prefill and decode engines that schedule independently,
// exchange status and requests through a shared metadata buffer, and hand
// KV cache over copy-free.
//
// In the paper the two engines are separate OS processes sharing an
// OS-managed CPU buffer and a CUDA-IPC GPU memory pool; here they are two
// actors of one deterministic simulation sharing a kvcache.Pool, with the
// buffer modelling the metadata serialization latency the paper measures
// in Table 3.
package engine

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
)

// Buffer is the shared CPU metadata buffer (§3.5.2). Engines publish
// their status through it, receive migrated requests, and subscribe to
// progress/KV-release events.
type Buffer struct {
	sim *sim.Simulation
	// Latency models the serialization and transfer of request metadata
	// between the engines' processes (Table 3: ~0.21 ms mean).
	Latency sim.Time

	// Status providers registered by the engines.
	prefillStatus func() (sched.PrefillStatus, []sched.WaitingReq)
	decodeStatus  func() sched.DecodeStatus

	// extra is transient fault-injected latency added on top of Latency
	// (a slow or contended metadata buffer).
	extra sim.Time

	prefillSMs int
	decodeSMs  int

	progressWaiters []func()
	kvWaiters       []func()

	// Decisions counts scheduler decisions routed through the buffer.
	Decisions int
	// Handoffs counts prefill→decode request migrations.
	Handoffs int

	// HostBandwidth is the effective host<->device link used by KV
	// retransfers (0 falls back to DefaultHostBandwidth). In the paper's
	// architecture the shared pool makes a host round-trip the cheap
	// alternative to recomputing an evicted sequence's prefill.
	HostBandwidth units.BytesPerSec
	// KVRetransfers / KVRetransferBytes count recovery retransfers routed
	// through the buffer.
	KVRetransfers     int
	KVRetransferBytes units.Bytes
}

// DefaultHostBandwidth is the fallback host link speed (PCIe 4.0 x16
// practical throughput).
const DefaultHostBandwidth = units.BytesPerSec(25e9)

// NewBuffer creates the shared buffer.
func NewBuffer(s *sim.Simulation, latency sim.Time) *Buffer {
	return &Buffer{sim: s, Latency: latency, prefillSMs: 0, decodeSMs: 0}
}

// RegisterPrefill installs the prefill engine's status provider.
func (b *Buffer) RegisterPrefill(status func() (sched.PrefillStatus, []sched.WaitingReq)) {
	b.prefillStatus = status
}

// RegisterDecode installs the decode engine's status provider.
func (b *Buffer) RegisterDecode(status func() sched.DecodeStatus) {
	b.decodeStatus = status
}

// SetAllocation records the SM split currently in force (R_k).
func (b *Buffer) SetAllocation(prefillSMs, decodeSMs int) {
	b.prefillSMs, b.decodeSMs = prefillSMs, decodeSMs
}

// Allocation returns the SM split currently in force.
func (b *Buffer) Allocation() (prefillSMs, decodeSMs int) {
	return b.prefillSMs, b.decodeSMs
}

// Snapshot assembles the global system state S_k for the scheduler,
// corresponding to the status fetch in Figure 9 (❶/❸).
func (b *Buffer) Snapshot() sched.State {
	st := sched.State{
		Now:        b.sim.Now(),
		PrefillSMs: b.prefillSMs,
		DecodeSMs:  b.decodeSMs,
	}
	if b.prefillStatus != nil {
		st.Prefill, st.Waiting = b.prefillStatus()
	}
	if b.decodeStatus != nil {
		st.Decode = b.decodeStatus()
	}
	b.Decisions++
	return st
}

// SetExtraLatency sets the fault-injected latency added to every
// subsequent handoff (0 restores the healthy buffer).
func (b *Buffer) SetExtraLatency(d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("engine: negative extra buffer latency %v", d))
	}
	b.extra = d
}

// ExtraLatency returns the fault-injected latency currently in force.
func (b *Buffer) ExtraLatency() sim.Time { return b.extra }

// Handoff migrates requests from prefill to decode after the metadata
// latency. The KV cache does not move (shared pool); only metadata does.
func (b *Buffer) Handoff(reqs []*Req, deliver func([]*Req)) {
	if len(reqs) == 0 {
		return
	}
	b.Handoffs += len(reqs)
	b.sim.PostAfter(b.Latency+b.extra, func() { deliver(reqs) })
}

// TransferKV moves a preempted sequence's saved KV bytes back to the
// device through the metadata buffer's host link: the delivery callback
// fires after the buffer latency (plus any fault-injected extra) and the
// wire time of the payload. It returns the total transfer duration.
func (b *Buffer) TransferKV(payload units.Bytes, deliver func()) sim.Time {
	if payload < 0 {
		panic(fmt.Sprintf("engine: negative KV retransfer payload %v", payload))
	}
	bw := b.HostBandwidth
	if bw <= 0 {
		bw = DefaultHostBandwidth
	}
	d := b.Latency + b.extra + payload.Div(bw)
	b.KVRetransfers++
	b.KVRetransferBytes += payload
	b.sim.PostAfter(d, deliver)
	return d
}

// OnPrefillProgress registers a one-shot callback fired at the next
// prefill layer-group completion (used to resume paused decode).
func (b *Buffer) OnPrefillProgress(fn func()) {
	b.progressWaiters = append(b.progressWaiters, fn)
}

// PublishPrefillProgress wakes progress subscribers.
func (b *Buffer) PublishPrefillProgress() {
	ws := b.progressWaiters
	b.progressWaiters = nil
	for _, w := range ws {
		b.sim.PostAfter(0, w)
	}
}

// OnKVRelease registers a one-shot callback fired when KV blocks free up
// (used to retry admission).
func (b *Buffer) OnKVRelease(fn func()) {
	b.kvWaiters = append(b.kvWaiters, fn)
}

// PublishKVRelease wakes KV subscribers.
func (b *Buffer) PublishKVRelease() {
	ws := b.kvWaiters
	b.kvWaiters = nil
	for _, w := range ws {
		b.sim.PostAfter(0, w)
	}
}
