package engine

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"

	"repro/internal/estimator"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/units"
)

// DecodeConfig shapes the decode engine. The flags are the ablation
// switches of §4.5.1.
type DecodeConfig struct {
	// DynamicSM applies the scheduler's SM decision; otherwise FixedSMs.
	DynamicSM bool
	FixedSMs  int
	// AllowPause lets the scheduler delay a decode iteration to rescue
	// TTFT (Fig. 8 ❷).
	AllowPause bool
	// MaxBatch caps the decode batch size.
	MaxBatch int
	// CycleOverhead is the CPU cost per iteration (graph launch path).
	CycleOverhead sim.Time
	// MaxPause is the failsafe bound on one pause (the engine normally
	// resumes at the next prefill layer-group sync).
	MaxPause sim.Time
}

// DefaultDecodeConfig returns Bullet's full configuration.
func DefaultDecodeConfig(numSMs int) DecodeConfig {
	return DecodeConfig{
		DynamicSM:     true,
		FixedSMs:      numSMs,
		AllowPause:    true,
		MaxBatch:      256,
		CycleOverhead: 100e-6,
		MaxPause:      20e-3,
	}
}

// DecodeEngine batches decode requests and runs one CUDA-graph step per
// scheduling cycle (§3.3.1), re-deciding its SM allocation each iteration.
type DecodeEngine struct {
	env  *serving.Env
	res  *resource.Manager
	schd *sched.Scheduler
	est  *estimator.Estimator
	buf  *Buffer
	cfg  DecodeConfig

	batch   []*Req
	pending []*Req
	active  bool
	pauses  int
	steps   int

	// stalledUntil holds the iteration chain while a fault-injected hang
	// is in force; stalls counts injected hangs.
	stalledUntil sim.Time
	stalls       int

	// OnDecision observes every scheduling decision.
	OnDecision func(t sim.Time, d sched.Decision)
	// OnStep observes each completed iteration.
	OnStep func(t sim.Time, batch int, stepDur units.Seconds)

	// QoS, when non-nil, is the SLO-feedback controller: it supplies the
	// live decode batch cap (never above MaxBatch), prioritizes batch
	// admission and preemption-victim choice by tenant class, and
	// receives the per-step latency observations that drive the AIMD
	// loop. Nil keeps the legacy behaviour byte for byte.
	QoS *qos.Controller

	// TL, when non-nil, records step spans, pause/decision instants and
	// request lifecycle spans on the shared timeline.
	TL *timeline.Recorder
}

// NewDecodeEngine wires a decode engine.
func NewDecodeEngine(env *serving.Env, res *resource.Manager, schd *sched.Scheduler,
	est *estimator.Estimator, buf *Buffer, cfg DecodeConfig) *DecodeEngine {
	if cfg.MaxBatch <= 0 {
		panic(fmt.Sprintf("engine: invalid decode config %+v", cfg))
	}
	d := &DecodeEngine{env: env, res: res, schd: schd, est: est, buf: buf, cfg: cfg}
	buf.RegisterDecode(d.status)
	return d
}

// Accept receives migrated requests from the prefill engine (via the
// metadata buffer); they join the batch at the next iteration boundary
// (continuous batching).
func (d *DecodeEngine) Accept(reqs []*Req) {
	now := d.env.Sim.Now()
	for _, r := range reqs {
		if r.DecodeStart <= 0 {
			r.DecodeStart = now
		}
	}
	d.pending = append(d.pending, reqs...)
	if !d.active {
		d.active = true
		d.cycle()
	}
}

// BatchSize returns the current decode batch size (joined requests only).
func (d *DecodeEngine) BatchSize() int { return len(d.batch) }

// Pauses returns how many iterations were deliberately delayed.
func (d *DecodeEngine) Pauses() int { return d.pauses }

// Steps returns how many decode iterations completed.
func (d *DecodeEngine) Steps() int { return d.steps }

// Stall hangs the iteration chain for dur of virtual time: the step
// already on the GPU finishes, but no new one launches until the stall
// expires. Requests keep their batch slots and KV.
func (d *DecodeEngine) Stall(dur sim.Time) {
	if dur < 0 {
		panic(fmt.Sprintf("engine: negative decode stall %v", dur))
	}
	d.stalls++
	until := d.env.Sim.Now() + dur
	if until > d.stalledUntil {
		d.stalledUntil = until
	}
}

// Stalls returns how many hangs were injected.
func (d *DecodeEngine) Stalls() int { return d.stalls }

// Preempt evicts decode sequences until at least blocksNeeded KV blocks
// have been freed, choosing victims latest-arrival-first (the request
// that has waited least loses the least work; ID order breaks ties so
// the choice is deterministic). Only sequences that arrived strictly
// after `after` are candidates — older work never yields to newer, which
// makes the preempt/readmit cycle livelock-free: a victim's re-admission
// can never evict the request it was displaced for, it waits for it
// instead. Victims are removed from the batch and
// pending queues, their KV is released back to the pool, and their trail
// records the phases completed so far; the caller owns recovery (re-run,
// retransfer, or shed). Returns the victims, newest first (nil when the
// engine holds nothing).
func (d *DecodeEngine) Preempt(blocksNeeded int, after sim.Time) []*Req {
	if blocksNeeded <= 0 {
		return nil
	}
	cands := make([]*Req, 0, len(d.batch)+len(d.pending))
	for _, r := range d.batch {
		if r.W.Arrival > after {
			cands = append(cands, r)
		}
	}
	for _, r := range d.pending {
		if r.W.Arrival > after {
			cands = append(cands, r)
		}
	}
	// All-or-nothing: if evicting every eligible sequence still cannot
	// cover the deficit, the stuck admission is waiting on older work
	// that preemption may not touch — evicting anything now would destroy
	// in-flight decode progress without unblocking anyone.
	evictable := 0
	for _, r := range cands {
		if r.Seq != nil {
			evictable += r.Seq.Blocks()
		}
	}
	if evictable < blocksNeeded {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if d.QoS != nil && cands[i].Class != cands[j].Class {
			// Tenant-aware victim order: evict best-effort before
			// standard before premium, regardless of arrival.
			return cands[i].Class < cands[j].Class
		}
		if cands[i].W.Arrival > cands[j].W.Arrival {
			return true
		}
		if cands[i].W.Arrival < cands[j].W.Arrival {
			return false
		}
		return cands[i].W.ID > cands[j].W.ID
	})
	now := d.env.Sim.Now()
	victims := make([]*Req, 0, 4)
	freed := 0
	for _, r := range cands {
		if freed >= blocksNeeded {
			break
		}
		if r.Seq == nil {
			continue
		}
		blocks := r.Seq.Blocks()
		if err := d.env.KV.Free(r.Seq); err != nil {
			// Already released by a concurrent recovery path; skip.
			continue
		}
		r.Seq = nil
		freed += blocks
		r.RecordPreemption(now)
		if d.TL != nil {
			d.TL.Instant("decode", "preempt", now,
				timeline.S("req", r.W.ID),
				timeline.I("blocks", blocks),
				timeline.I("generated", r.Generated))
		}
		victims = append(victims, r)
	}
	if len(victims) == 0 {
		return nil
	}
	evicted := func(r *Req) bool {
		for _, v := range victims {
			if v == r {
				return true
			}
		}
		return false
	}
	keepB := d.batch[:0]
	for _, r := range d.batch {
		if !evicted(r) {
			keepB = append(keepB, r)
		}
	}
	d.batch = keepB
	keepP := d.pending[:0]
	for _, r := range d.pending {
		if !evicted(r) {
			keepP = append(keepP, r)
		}
	}
	d.pending = keepP
	d.buf.PublishKVRelease()
	return victims
}

// status is the buffer's decode state provider.
func (d *DecodeEngine) status() sched.DecodeStatus {
	now := d.env.Sim.Now()
	ds := sched.DecodeStatus{Batch: len(d.batch)}
	ctx := 0
	for _, r := range d.batch {
		ds.Elapsed = append(ds.Elapsed, now-r.FirstToken)
		ds.Generated = append(ds.Generated, r.Generated)
		ctx += r.Ctx()
	}
	if len(d.batch) > 0 {
		ds.AvgCtx = units.Tokens(float64(ctx) / float64(len(d.batch)))
	}
	return ds
}

func (d *DecodeEngine) avgCtx() units.Tokens {
	if len(d.batch) == 0 {
		return 0
	}
	ctx := 0
	for _, r := range d.batch {
		ctx += r.Ctx()
	}
	return units.Tokens(float64(ctx) / float64(len(d.batch)))
}

// decide runs one scheduling cycle with the engine's overrides applied.
func (d *DecodeEngine) decide() sched.Decision {
	dec := d.schd.Decide(d.buf.Snapshot())
	if !d.cfg.DynamicSM {
		dec.DecodeSMs = d.cfg.FixedSMs
		pm, _ := d.buf.Allocation()
		if pm > 0 {
			dec.PrefillSMs = pm
		}
	}
	if !d.cfg.AllowPause {
		dec.PauseDecode = false
	}
	d.buf.SetAllocation(dec.PrefillSMs, dec.DecodeSMs)
	if d.OnDecision != nil {
		d.OnDecision(d.env.Sim.Now(), dec)
	}
	if d.TL != nil {
		emitDecision(d.TL, d.env.Sim.Now(), dec)
	}
	return dec
}

// cycle runs one decode iteration: admit, decide, (maybe pause), launch.
func (d *DecodeEngine) cycle() {
	if wait := d.stalledUntil - d.env.Sim.Now(); wait > 0 {
		// The chain stays active (exactly one pending continuation) and
		// resumes when the stall expires.
		d.env.Sim.PostAfter(wait, d.cycle)
		return
	}
	maxBatch := d.cfg.MaxBatch
	if d.QoS != nil {
		if c := d.QoS.DecodeCap(); c < maxBatch {
			maxBatch = c
		}
		// Admit premium classes first when the controller's cap forces a
		// choice (stable insertion sort: arrival order within a class is
		// preserved, and queues are admission-bounded and short).
		for i := 1; i < len(d.pending); i++ {
			r := d.pending[i]
			j := i - 1
			for j >= 0 && d.pending[j].Class < r.Class {
				d.pending[j+1] = d.pending[j]
				j--
			}
			d.pending[j+1] = r
		}
	}
	for len(d.pending) > 0 && len(d.batch) < maxBatch {
		d.batch = append(d.batch, d.pending[0])
		d.pending = d.pending[1:]
	}
	if len(d.batch) == 0 {
		d.active = false
		return
	}
	dec := d.decide()
	if dec.PauseDecode {
		d.pauses++
		if d.TL != nil {
			d.TL.Instant("decode", "pause", d.env.Sim.Now(),
				timeline.I("batch", len(d.batch)))
		}
		woken := false
		wake := func() {
			if woken {
				return
			}
			woken = true
			d.cycle()
		}
		// Resume at the next prefill layer-group sync, or after the
		// failsafe bound, whichever first.
		d.buf.OnPrefillProgress(wake)
		d.env.Sim.PostAfter(d.cfg.MaxPause, wake)
		return
	}

	stream := d.res.Stream(resource.Decode, dec.DecodeSMs)
	dm := stream.Mask().Count()
	bs := len(d.batch)
	ctx := d.avgCtx()
	colocated := true // conservatively assume overlap for the prediction
	predicted := d.est.DecodeStepTime(bs, ctx, dm, colocated)
	step := d.env.Model.DecodeStepKernel(bs, ctx, "decode")
	d.env.GPU.Launch(stream, step, func(rec gpusim.KernelRecord) {
		d.est.ObserveDecode(predicted, rec.Duration())
		d.steps++
		now := d.env.Sim.Now()
		if d.OnStep != nil {
			d.OnStep(now, bs, rec.Duration())
		}
		if d.QoS != nil {
			// Feed the live TPOT signal: this step is the latency every
			// batched request just paid per token.
			d.QoS.ObserveStep(now, bs, rec.Duration(), d.env.KV.Occupancy())
		}
		if d.TL != nil {
			d.TL.Span("decode", "step", rec.Start, rec.End,
				timeline.I("batch", bs),
				timeline.F("avgCtx", ctx.Float()))
		}
		kept := d.batch[:0]
		released := false
		for _, r := range d.batch {
			r.Generated++
			if d.QoS != nil {
				d.QoS.AddDecode(r.Class)
			}
			if r.Generated >= r.W.OutputTokens {
				r.Finish = now
				r.ReleasePrefix()
				d.env.KV.MustFree(r.Seq)
				r.EmitLifecycle(d.TL)
				d.env.Complete(r.Record())
				released = true
				continue
			}
			kept = append(kept, r)
		}
		d.batch = kept
		if released {
			d.buf.PublishKVRelease()
		}
		d.env.Sim.PostAfter(d.cfg.CycleOverhead, d.cycle)
	})
}
