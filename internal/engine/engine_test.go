package engine

import (
	"fmt"
	"testing"

	"repro/internal/estimator"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// rig wires a full engine pair on a fresh environment.
type rig struct {
	env     *serving.Env
	buf     *Buffer
	res     *resource.Manager
	est     *estimator.Estimator
	schd    *sched.Scheduler
	prefill *PrefillEngine
	decode  *DecodeEngine
}

func newRig(t testing.TB, pcfg PrefillConfig, dcfg DecodeConfig) *rig {
	t.Helper()
	env := serving.NewEnv(gpusim.A100(), model.Llama31_8B(), "azure-code")
	est := estimator.New(env.Model, env.GPU.Spec, estimator.DefaultParams())
	res := resource.NewManager(env.GPU, 6)
	schd := sched.New(est, env.SLO, sched.Config{
		TotalLayers: env.Model.NumLayers, LayerGroup: pcfg.LayerGroup,
		NumSMs: env.GPU.Spec.NumSMs, Levels: res.Levels(),
	})
	buf := NewBuffer(env.Sim, 0.2e-3)
	p := NewPrefillEngine(env, res, schd, est, buf, pcfg)
	d := NewDecodeEngine(env, res, schd, est, buf, dcfg)
	p.SetDecode(d)
	return &rig{env: env, buf: buf, res: res, est: est, schd: schd, prefill: p, decode: d}
}

func defaultRig(t testing.TB) *rig {
	return newRig(t, DefaultPrefillConfig(108), DefaultDecodeConfig(108))
}

func req(id string, arrival units.Seconds, in, out int) workload.Request {
	return workload.Request{ID: id, Arrival: arrival, InputTokens: in, OutputTokens: out, Dataset: "azure-code"}
}

func TestSingleRequestLifecycle(t *testing.T) {
	r := defaultRig(t)
	r.env.Sim.At(0.001, func() { r.prefill.Submit(req("a", 0.001, 2048, 10)) })
	r.env.Sim.RunAll(1 << 22)
	done := r.env.Completed()
	if len(done) != 1 {
		t.Fatalf("completed %d", len(done))
	}
	m := done[0]
	m.Validate()
	// Prefill of 2048 tokens: tens of milliseconds; 9 further decode
	// steps of ~8-20 ms each.
	if m.TTFT() < 0.02 || m.TTFT() > 1 {
		t.Fatalf("TTFT = %v", m.TTFT())
	}
	if m.TPOT() <= 0 || m.TPOT() > 0.2 {
		t.Fatalf("TPOT = %v", m.TPOT())
	}
	if r.decode.Steps() != 9 {
		t.Fatalf("decode steps = %d, want 9", r.decode.Steps())
	}
	if r.env.KV.UsedBlocks() != 0 {
		t.Fatal("KV not freed")
	}
}

func TestHandoffLatencyApplied(t *testing.T) {
	r := defaultRig(t)
	r.env.Sim.At(0.001, func() { r.prefill.Submit(req("a", 0.001, 1024, 5)) })
	r.env.Sim.RunAll(1 << 22)
	if r.buf.Handoffs != 1 {
		t.Fatalf("handoffs = %d", r.buf.Handoffs)
	}
	m := r.env.Completed()[0]
	// The decode engine cannot have started before FirstToken + latency.
	if m.Finish-m.FirstToken < r.buf.Latency {
		t.Fatal("decode finished before metadata latency elapsed")
	}
}

func TestPrefillBatchesQueuedRequests(t *testing.T) {
	r := defaultRig(t)
	var batches []int
	r.prefill.OnBatchStart = func(_ sim.Time, _, reqs, _ int) { batches = append(batches, reqs) }
	// Three short requests arriving at the same instant: all should
	// prefill in one batch (deadlines permit).
	r.env.Sim.At(0.001, func() {
		for _, id := range []string{"a", "b", "c"} {
			r.prefill.Submit(req(id, 0.001, 256, 4))
		}
	})
	r.env.Sim.RunAll(1 << 22)
	if len(r.env.Completed()) != 3 {
		t.Fatalf("completed %d", len(r.env.Completed()))
	}
	if len(batches) == 0 || batches[0] < 2 {
		t.Fatalf("expected a multi-request first batch, got %v", batches)
	}
}

func TestReorderPrioritizesTightDeadlines(t *testing.T) {
	pcfg := DefaultPrefillConfig(108)
	pcfg.MaxBatchReqs = 1 // force one batch per request to observe order
	pcfg.SLOAdmission = false
	r := newRig(t, pcfg, DefaultDecodeConfig(108))
	// A huge request arrives first, then a tiny one with a much tighter
	// absolute deadline. With reordering, the tiny one should finish
	// prefill first despite arriving later.
	r.env.Sim.At(0.001, func() {
		r.prefill.Submit(req("big", 0.001, 16000, 2))
		r.prefill.Submit(req("big2", 0.001, 16000, 2))
	})
	r.env.Sim.At(0.002, func() { r.prefill.Submit(req("tiny", 0.002, 128, 2)) })
	r.env.Sim.RunAll(1 << 23)
	var bigFirstToken, tinyFirstToken units.Seconds
	for _, m := range r.env.Completed() {
		switch m.ID {
		case "big2":
			bigFirstToken = m.FirstToken
		case "tiny":
			tinyFirstToken = m.FirstToken
		}
	}
	if tinyFirstToken > bigFirstToken {
		t.Fatalf("tiny (deadline-first) finished at %v after big2 at %v", tinyFirstToken, bigFirstToken)
	}
}

func TestNoReorderKeepsFCFS(t *testing.T) {
	pcfg := DefaultPrefillConfig(108)
	pcfg.MaxBatchReqs = 1
	pcfg.Reorder = false
	pcfg.SLOAdmission = false
	r := newRig(t, pcfg, DefaultDecodeConfig(108))
	r.env.Sim.At(0.001, func() {
		r.prefill.Submit(req("big", 0.001, 16000, 2))
		r.prefill.Submit(req("big2", 0.001, 16000, 2))
	})
	r.env.Sim.At(0.002, func() { r.prefill.Submit(req("tiny", 0.002, 128, 2)) })
	r.env.Sim.RunAll(1 << 23)
	var big2First, tinyFirst units.Seconds
	for _, m := range r.env.Completed() {
		switch m.ID {
		case "big2":
			big2First = m.FirstToken
		case "tiny":
			tinyFirst = m.FirstToken
		}
	}
	if tinyFirst < big2First {
		t.Fatalf("FCFS violated without reordering: tiny %v before big2 %v", tinyFirst, big2First)
	}
}

func TestDecodePauseUnderTTFTPressure(t *testing.T) {
	r := defaultRig(t)
	// A long decode-heavy request first, then a deep burst of small
	// requests whose normalized-TTFT deadlines are tight (1.5 ms/token ×
	// 512 ≈ 0.77 s): rescuing them requires pausing decode.
	r.env.Sim.At(0.001, func() { r.prefill.Submit(req("warm", 0.001, 1024, 400)) })
	const burst = 30
	for i := 0; i < burst; i++ {
		i := i
		at := sim.Time(0.5 + float64(i)*0.002)
		r.env.Sim.At(at, func() { r.prefill.Submit(req(fmt.Sprintf("b%d", i), at, 512, 4)) })
	}
	r.env.Sim.RunAll(1 << 24)
	if len(r.env.Completed()) != burst+1 {
		t.Fatalf("completed %d/%d", len(r.env.Completed()), burst+1)
	}
	if r.decode.Pauses() == 0 {
		t.Fatal("expected decode pauses under TTFT pressure")
	}
}

func idOf(i int) string { return string(rune('p'+i)) + "-req" }

func TestKVBackpressureBlocksAdmission(t *testing.T) {
	r := defaultRig(t)
	// Capacity is ~450k tokens; submit requests that exceed it so later
	// ones must wait for earlier completions.
	total := r.env.KV.TotalTokens()
	per := total/3 + 1000
	for i := 0; i < 4; i++ {
		i := i
		at := sim.Time(0.001 + float64(i)*1e-6)
		r.env.Sim.At(at, func() {
			r.prefill.Submit(workload.Request{
				ID: idOf(i), Arrival: at, InputTokens: per - 64, OutputTokens: 64,
				Dataset: "azure-code",
			})
		})
	}
	r.env.Sim.RunAll(1 << 26)
	if len(r.env.Completed()) != 4 {
		t.Fatalf("completed %d/4", len(r.env.Completed()))
	}
	if r.env.KV.UsedBlocks() != 0 {
		t.Fatal("KV not drained")
	}
	if r.env.KV.PeakUsedBlocks() > r.env.KV.TotalBlocks() {
		t.Fatal("peak exceeded capacity")
	}
}

func TestBufferWakersAreOneShot(t *testing.T) {
	s := sim.New()
	buf := NewBuffer(s, 0)
	fired := 0
	buf.OnPrefillProgress(func() { fired++ })
	buf.PublishPrefillProgress()
	buf.PublishPrefillProgress() // second publish: no subscribers left
	s.RunAll(100)
	if fired != 1 {
		t.Fatalf("waker fired %d times", fired)
	}
	buf.OnKVRelease(func() { fired++ })
	buf.PublishKVRelease()
	buf.PublishKVRelease()
	s.RunAll(100)
	if fired != 2 {
		t.Fatalf("kv waker fired %d times total", fired)
	}
}

func TestBufferSnapshotCountsDecisions(t *testing.T) {
	s := sim.New()
	buf := NewBuffer(s, 0)
	buf.Snapshot()
	buf.Snapshot()
	if buf.Decisions != 2 {
		t.Fatalf("decisions = %d", buf.Decisions)
	}
}

func TestReqRecordAndCtx(t *testing.T) {
	r := &Req{W: workload.Request{ID: "x", Arrival: 1, InputTokens: 100, OutputTokens: 5, Dataset: "d"}}
	r.PrefillStart, r.FirstToken, r.Finish = 1.1, 1.5, 2.0
	r.Generated = 3
	if r.Ctx() != 103 {
		t.Fatalf("ctx = %d", r.Ctx())
	}
	rec := r.Record()
	rec.Validate()
	if rec.TTFT() != 0.5 {
		t.Fatalf("record TTFT = %v", rec.TTFT())
	}
	_ = metrics.Request(rec)
}

func TestFixedSMEnginesNeverReconfigure(t *testing.T) {
	pcfg := DefaultPrefillConfig(108)
	pcfg.DynamicSM = false
	pcfg.FixedSMs = 84
	dcfg := DefaultDecodeConfig(108)
	dcfg.DynamicSM = false
	dcfg.FixedSMs = 108
	dcfg.AllowPause = false
	r := newRig(t, pcfg, dcfg)
	for i := 0; i < 5; i++ {
		i := i
		at := sim.Time(0.001 + 0.2*float64(i))
		r.env.Sim.At(at, func() { r.prefill.Submit(req(idOf(i), at, 2048, 20)) })
	}
	r.env.Sim.RunAll(1 << 24)
	if len(r.env.Completed()) != 5 {
		t.Fatalf("completed %d/5", len(r.env.Completed()))
	}
	// Static quotas: at most the two initial switches.
	if r.res.Reconfigurations() > 2 {
		t.Fatalf("reconfigs = %d under fixed SMs", r.res.Reconfigurations())
	}
	if r.decode.Pauses() != 0 {
		t.Fatal("paused with AllowPause=false")
	}
}
