package engine

import (
	"fmt"
	"sort"

	"repro/internal/estimator"
	"repro/internal/gpusim"
	"repro/internal/prefixcache"
	"repro/internal/pressure"
	"repro/internal/qos"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/units"
	"repro/internal/workload"
)

// PrefillConfig shapes the prefill engine's behaviour. The flags double as
// the ablation switches of §4.5.1.
type PrefillConfig struct {
	// LayerGroup is how many layers are launched per scheduling cycle
	// before synchronizing (1 in the paper's example).
	LayerGroup int
	// MaxBatchTokens caps the token total of one prefill batch.
	MaxBatchTokens int
	// MaxBatchReqs caps how many requests are prefilled together.
	MaxBatchReqs int
	// Reorder enables SLO-deadline reordering of the pending queue.
	Reorder bool
	// SLOAdmission stops growing a prefill batch when adding the next
	// request would push an already-admitted request past its TTFT
	// deadline (batched requests all see the batch's completion time).
	SLOAdmission bool
	// DynamicSM applies the scheduler's SM decision; otherwise FixedSMs
	// is used (Naive / w-Scheduler ablations, Fig. 13 sensitivity).
	DynamicSM bool
	FixedSMs  int
	// CycleOverhead is the CPU cost of one scheduling cycle
	// (snapshot + decision + launch), cf. Table 3.
	CycleOverhead sim.Time
}

// DefaultPrefillConfig returns Bullet's full configuration for a device
// with numSMs SMs.
func DefaultPrefillConfig(numSMs int) PrefillConfig {
	return PrefillConfig{
		LayerGroup:     1,
		MaxBatchTokens: 16384,
		MaxBatchReqs:   8,
		Reorder:        true,
		SLOAdmission:   true,
		DynamicSM:      true,
		FixedSMs:       numSMs,
		CycleOverhead:  150e-6,
	}
}

// PrefillEngine runs whole-sequence prefills layer-group by layer-group,
// re-deciding the SM allocation at every group boundary (§3.3.1).
type PrefillEngine struct {
	env  *serving.Env
	res  *resource.Manager
	schd *sched.Scheduler
	est  *estimator.Estimator
	buf  *Buffer
	dec  *DecodeEngine
	cfg  PrefillConfig

	prefix *prefixcache.Cache

	waiting      []*Req
	batch        []*Req
	batchTokens  int
	layersDone   int
	running      bool
	waitingOnKV  bool
	startPending bool

	// stalledUntil holds launches while a fault-injected hang is in
	// force; epoch fences stale continuations (kernel-sync callbacks and
	// cycle reschedules) across watchdog aborts; aborts counts them.
	stalledUntil sim.Time
	epoch        int
	aborts       int

	// OnDecision observes every scheduling decision (timeline hooks).
	OnDecision func(t sim.Time, d sched.Decision)
	// OnBatchStart observes batch formation.
	OnBatchStart func(t sim.Time, tokens, reqs, waiting int)

	// Gate, when non-nil, is the memory-pressure admission controller:
	// every KV reservation first asks it for an admit/defer/shed tier.
	// Nil keeps the legacy behaviour (admission blocks only on physical
	// exhaustion).
	Gate *pressure.Controller
	// OnPressure fires when the gate defers an admission, carrying the
	// block deficit that must be relieved and the deferred request's
	// arrival time; the core preempts decode sequences in response, but
	// only ones that arrived strictly later — older work never yields to
	// newer, so a preempted request's re-admission can never evict the
	// request that displaced it (no preemption livelock).
	OnPressure func(deficit int, requester sim.Time)
	// OnGateShed observes requests the gate sheds at admission (the core
	// routes them to Env.Shed and the pressure counters).
	OnGateShed func(r *Req)

	// QoS, when non-nil, is the SLO-feedback controller: it supplies the
	// live prefill chunk-token budget (never above MaxBatchTokens), the
	// per-class fairness weights for reordering and SM-split prediction,
	// the gate's admission priorities, and receives per-class token
	// accounting. Nil keeps the legacy behaviour byte for byte.
	QoS *qos.Controller

	// TL, when non-nil, records batch spans, scheduling-decision instants
	// and request lifecycle spans on the shared timeline.
	TL *timeline.Recorder
	// batchStart is when the in-flight batch formed, for its span.
	batchStart sim.Time
}

// NewPrefillEngine wires a prefill engine. Call SetDecode before use.
func NewPrefillEngine(env *serving.Env, res *resource.Manager, schd *sched.Scheduler,
	est *estimator.Estimator, buf *Buffer, cfg PrefillConfig) *PrefillEngine {
	if cfg.LayerGroup <= 0 || cfg.MaxBatchReqs <= 0 || cfg.MaxBatchTokens <= 0 {
		panic(fmt.Sprintf("engine: invalid prefill config %+v", cfg))
	}
	p := &PrefillEngine{env: env, res: res, schd: schd, est: est, buf: buf, cfg: cfg}
	buf.RegisterPrefill(p.status)
	return p
}

// SetDecode connects the downstream decode engine.
func (p *PrefillEngine) SetDecode(d *DecodeEngine) { p.dec = d }

// SetPrefixCache enables shared-prefix reuse: admissions consult the
// cache, prefilling only the uncached tail of each prompt.
func (p *PrefillEngine) SetPrefixCache(c *prefixcache.Cache) { p.prefix = c }

// Submit enqueues an arriving request. Batch formation is deferred by one
// (zero-delay) event so that requests arriving at the same instant can
// join the same prefill batch.
func (p *PrefillEngine) Submit(r workload.Request) {
	p.waiting = append(p.waiting, &Req{W: r, Class: qos.ClassOf(r.Tenant)})
	if p.startPending {
		return
	}
	p.startPending = true
	p.env.Sim.PostAfter(0, func() {
		p.startPending = false
		p.tryStart()
	})
}

// QueueDepth returns the number of requests waiting for prefill.
func (p *PrefillEngine) QueueDepth() int { return len(p.waiting) }

// Running reports whether a prefill batch is in flight.
func (p *PrefillEngine) Running() bool { return p.running }

// Stall hangs the engine's scheduling cycle for d of virtual time: no
// new layer group or batch launches until the stall expires. Kernels
// already on the GPU keep running.
func (p *PrefillEngine) Stall(d sim.Time) {
	if d < 0 {
		panic(fmt.Sprintf("engine: negative prefill stall %v", d))
	}
	until := p.env.Sim.Now() + d
	if until > p.stalledUntil {
		p.stalledUntil = until
	}
}

// Stalled reports whether a stall is currently in force.
func (p *PrefillEngine) Stalled() bool { return p.env.Sim.Now() < p.stalledUntil }

// Epoch returns the abort fence: it increments on every AbortBatch, so a
// watchdog can detect whether the batch it armed against is still the
// one in flight.
func (p *PrefillEngine) Epoch() int { return p.epoch }

// Aborts returns how many batches were watchdog-aborted.
func (p *PrefillEngine) Aborts() int { return p.aborts }

// AbortBatch cancels the in-flight batch: its KV reservations are freed,
// prefix pins released, and per-request progress rewound so the requests
// can be prefilled again from scratch (each records one more retry). It
// returns the aborted requests (nil when idle) and clears any pending
// stall — the restart is the recovery action. Kernels already launched
// keep occupying the GPU until they drain; the epoch fence discards
// their completion callbacks.
func (p *PrefillEngine) AbortBatch() []*Req {
	if !p.running {
		return nil
	}
	p.epoch++
	p.aborts++
	aborted := p.batch
	if p.TL != nil {
		p.TL.Instant("prefill", "abort", p.env.Sim.Now(),
			timeline.I("reqs", len(aborted)),
			timeline.I("epoch", p.epoch))
	}
	for _, r := range aborted {
		r.ReleasePrefix()
		p.env.KV.MustFree(r.Seq)
		r.Seq = nil
		r.PrefillStart = 0
		r.FirstToken = 0
		r.Generated = 0
		r.PrefixHit = 0
		r.Retries++
	}
	p.batch = nil
	p.batchTokens = 0
	p.layersDone = 0
	p.running = false
	p.stalledUntil = 0
	p.buf.PublishKVRelease()
	return aborted
}

// ExtractWaiting drains and returns the waiting queue in order. Waiting
// requests hold no KV and have not started prefill, so they can be
// handed to another instance verbatim — the graceful-drain path
// (DESIGN.md §16) uses this to evacuate a replica without losing work.
func (p *PrefillEngine) ExtractWaiting() []workload.Request {
	if len(p.waiting) == 0 {
		return nil
	}
	out := make([]workload.Request, len(p.waiting))
	for i, r := range p.waiting {
		out[i] = r.W
	}
	p.waiting = p.waiting[:0]
	return out
}

// Requeue returns aborted requests to the head of the waiting queue
// (they already spent their deadline budget) and schedules a restart.
func (p *PrefillEngine) Requeue(reqs []*Req) {
	if len(reqs) == 0 {
		return
	}
	p.waiting = append(append([]*Req(nil), reqs...), p.waiting...)
	if p.startPending {
		return
	}
	p.startPending = true
	p.env.Sim.PostAfter(0, func() {
		p.startPending = false
		p.tryStart()
	})
}

// status is the buffer's prefill state provider.
func (p *PrefillEngine) status() (sched.PrefillStatus, []sched.WaitingReq) {
	ps := sched.PrefillStatus{}
	if p.running {
		ps.Active = true
		ps.Tokens = p.batchTokens
		ps.LayersDone = p.layersDone
		for _, r := range p.batch {
			ps.Arrivals = append(ps.Arrivals, r.W.Arrival)
			ps.InputTokens = append(ps.InputTokens, r.W.InputTokens)
			if p.QoS != nil {
				ps.Weights = append(ps.Weights, p.QoS.WeightOf(r.Class))
			}
			if r.PrefillStart > ps.StartTime {
				ps.StartTime = r.PrefillStart
			}
		}
	}
	ws := make([]sched.WaitingReq, len(p.waiting))
	for i, r := range p.waiting {
		ws[i] = sched.WaitingReq{Arrival: r.W.Arrival, InputTokens: r.W.InputTokens}
		if p.QoS != nil {
			ws[i].Weight = p.QoS.WeightOf(r.Class)
		}
	}
	return ps, ws
}

// tryStart forms and launches the next prefill batch if idle.
func (p *PrefillEngine) tryStart() {
	if p.running || len(p.waiting) == 0 {
		return
	}
	if wait := p.stalledUntil - p.env.Sim.Now(); wait > 0 {
		ep := p.epoch
		p.env.Sim.PostAfter(wait, func() {
			if p.epoch == ep {
				p.tryStart()
			}
		})
		return
	}
	if p.cfg.Reorder {
		// Reorder pending requests by SLO deadline, the same key the
		// scheduler uses (Algorithm 1 line 7). With QoS the deadline is
		// weighted: lower classes get their budget stretched, so under
		// contention premium requests sort ahead.
		slo := p.schd.SLO()
		sort.SliceStable(p.waiting, func(i, j int) bool {
			a := sched.WaitingReq{Arrival: p.waiting[i].W.Arrival, InputTokens: p.waiting[i].W.InputTokens}
			b := sched.WaitingReq{Arrival: p.waiting[j].W.Arrival, InputTokens: p.waiting[j].W.InputTokens}
			if p.QoS != nil {
				a.Weight = p.QoS.WeightOf(p.waiting[i].Class)
				b.Weight = p.QoS.WeightOf(p.waiting[j].Class)
			}
			return a.Deadline(slo) < b.Deadline(slo)
		})
	}
	now := p.env.Sim.Now()
	slo := p.schd.SLO()
	// The controller's live chunk budget caps the batch below the static
	// maximum while the feedback loop is backing off.
	maxBatchTokens := p.cfg.MaxBatchTokens
	if p.QoS != nil {
		if b := p.QoS.PrefillTokenBudget(); b < maxBatchTokens {
			maxBatchTokens = b
		}
	}
	for len(p.waiting) > 0 && len(p.batch) < p.cfg.MaxBatchReqs {
		r := p.waiting[0]
		if len(p.batch) > 0 && p.batchTokens+r.W.InputTokens > maxBatchTokens {
			break
		}
		if p.cfg.SLOAdmission && len(p.batch) > 0 {
			// Batched requests all finish at the batch's completion;
			// do not grow the batch past any member's deadline.
			grown := p.est.PrefillTotalTime(p.batchTokens+r.W.InputTokens, 0,
				p.res.NumSMs(), true)
			violates := false
			for _, member := range append(p.batch, r) {
				budget := units.FromMs(slo.NormTTFTMs * float64(member.W.InputTokens))
				if p.QoS != nil {
					budget = units.Over(budget, p.QoS.WeightOf(member.Class))
				}
				if (now-member.W.Arrival)+grown > budget {
					violates = true
					break
				}
			}
			if violates {
				break
			}
		}
		// Shared-prefix lookup: a hit shrinks the computed prefill to
		// the uncached tail (the cached part is pinned until the
		// request finishes, because decode attention keeps reading it).
		if p.prefix != nil && r.PrefixRelease == nil {
			hit, release := p.prefix.Acquire(r.W.PrefixGroup)
			if hit >= r.W.InputTokens {
				hit = r.W.InputTokens - 1 // always compute ≥1 token
			}
			r.PrefixHit = hit
			r.PrefixRelease = release
		}
		// Reserve KV for the whole lifetime (uncached input + output) so
		// decode can never be preempted by cache exhaustion; admission
		// blocks here instead (or, with a pressure gate, defers/sheds).
		need := r.NewTokens() + r.W.OutputTokens
		if p.Gate != nil {
			prio := pressure.PrioPremium
			if p.QoS != nil {
				prio = r.Class.Prio()
			}
			tier := p.Gate.AdmitPrio(now, r.W.ID, need, r.Deferrals, prio)
			if tier == pressure.TierShed {
				p.waiting = p.waiting[1:]
				r.ReleasePrefix()
				if p.OnGateShed != nil {
					p.OnGateShed(r)
				} else {
					p.env.Shed(r.W)
				}
				continue
			}
			if tier == pressure.TierDefer {
				r.Deferrals++
				// Every queued request behind the head is blocked by the
				// same pressure: charge them the deferral round too, so
				// the halved class budgets burn at one cadence and shed
				// best-effort strictly first regardless of queue position.
				if p.QoS != nil {
					p.chargeWaiting(now)
				}
				// Arm the retry before raising pressure: the relief path
				// frees KV synchronously and its release publication must
				// find the waiter already registered.
				if len(p.batch) == 0 {
					p.armKVWait(r.Deferrals)
				}
				// Preempt decode only when waiting cannot help: the
				// request cannot physically fit (shrink drain debt, or a
				// giant allocation). Watermark deferrals above that line
				// resolve through ordinary decode completions.
				if p.OnPressure != nil {
					if deficit := p.Gate.PhysicalDeficit(need); deficit > 0 {
						p.OnPressure(deficit, r.W.Arrival)
					}
				}
				break
			}
		} else if !p.env.KV.CanAllocate(need) {
			if len(p.batch) == 0 && !p.waitingOnKV {
				p.waitingOnKV = true
				p.buf.OnKVRelease(func() {
					p.waitingOnKV = false
					p.tryStart()
				})
			}
			break
		}
		seq, err := p.env.KV.Allocate(r.W.ID, need, "prefill")
		if err != nil {
			break
		}
		r.Seq = seq
		r.PrefillStart = now
		r.CloseTrail(now) // seal an open preempted span (recompute path)
		p.batch = append(p.batch, r)
		p.batchTokens += r.NewTokens()
		p.waiting = p.waiting[1:]
	}
	if len(p.batch) == 0 {
		return
	}
	p.running = true
	p.layersDone = 0
	p.batchStart = now
	if p.OnBatchStart != nil {
		p.OnBatchStart(now, p.batchTokens, len(p.batch), len(p.waiting))
	}
	if p.TL != nil {
		p.TL.Instant("prefill", "batch-start", now,
			timeline.I("tokens", p.batchTokens),
			timeline.I("reqs", len(p.batch)),
			timeline.I("waiting", len(p.waiting)))
	}
	p.cycle()
}

// chargeWaiting charges one deferral round to every queued request
// behind the deferred head and retires those whose class budget is
// exhausted. Only runs with QoS enabled — the priority-unaware gate
// charges (and sheds) the head alone, as it always did.
func (p *PrefillEngine) chargeWaiting(now units.Seconds) {
	kept := p.waiting[:1]
	for _, r := range p.waiting[1:] {
		r.Deferrals++
		if r.Deferrals >= p.Gate.DeferBudget(r.Class.Prio()) {
			p.Gate.RecordShed(now, r.W.ID, "defer-budget")
			r.ReleasePrefix()
			if p.OnGateShed != nil {
				p.OnGateShed(r)
			} else {
				p.env.Shed(r.W)
			}
			continue
		}
		kept = append(kept, r)
	}
	p.waiting = kept
}

// armKVWait arms the head-of-queue retry for a gate deferral with an
// empty batch: once on the next KV release, and once on a backoff timer
// so a deferral with no release in flight still re-evaluates (and, via
// the deferral budget, eventually sheds instead of wedging).
func (p *PrefillEngine) armKVWait(attempt int) {
	if !p.waitingOnKV {
		p.waitingOnKV = true
		p.buf.OnKVRelease(func() {
			p.waitingOnKV = false
			p.tryStart()
		})
	}
	ep := p.epoch
	p.env.Sim.PostAfter(p.Gate.Backoff(attempt), func() {
		if p.epoch == ep {
			p.tryStart()
		}
	})
}

// decide runs one scheduling cycle and applies the ablation overrides.
func (p *PrefillEngine) decide() sched.Decision {
	d := p.schd.Decide(p.buf.Snapshot())
	if !p.cfg.DynamicSM {
		d.PrefillSMs = p.cfg.FixedSMs
		_, dm := p.buf.Allocation()
		if dm > 0 {
			d.DecodeSMs = dm
		}
		d.PauseDecode = false
	}
	p.buf.SetAllocation(d.PrefillSMs, d.DecodeSMs)
	if p.OnDecision != nil {
		p.OnDecision(p.env.Sim.Now(), d)
	}
	if p.TL != nil {
		emitDecision(p.TL, p.env.Sim.Now(), d)
	}
	return d
}

// cycle launches one layer group and schedules the next cycle at its
// completion (the sync point that gives real-time progress perception).
func (p *PrefillEngine) cycle() {
	if !p.running {
		return
	}
	if wait := p.stalledUntil - p.env.Sim.Now(); wait > 0 {
		ep := p.epoch
		p.env.Sim.PostAfter(wait, func() {
			if p.epoch == ep && p.running {
				p.cycle()
			}
		})
		return
	}
	d := p.decide()
	stream := p.res.Stream(resource.Prefill, d.PrefillSMs)
	pm := stream.Mask().Count()

	group := p.cfg.LayerGroup
	if left := p.env.Model.NumLayers - p.layersDone; group > left {
		group = left
	}
	seqLens := make([]int, len(p.batch))
	histLens := make([]int, len(p.batch))
	for i, r := range p.batch {
		seqLens[i] = r.NewTokens()
		histLens[i] = r.PrefixHit
	}
	colocated := p.dec != nil && p.dec.BatchSize() > 0
	predicted := units.Scale(p.est.PrefillLayerTime(p.batchTokens, 0, pm, colocated), float64(group))
	start := p.env.Sim.Now()
	for l := 0; l < group; l++ {
		for _, k := range p.env.Model.PrefillBatchLayerKernels(seqLens, histLens, "prefill") {
			p.env.GPU.Launch(stream, k, nil)
		}
	}
	ep := p.epoch
	p.env.GPU.Synchronize(stream, func() {
		if p.epoch != ep {
			return // batch aborted while its kernels drained
		}
		actual := p.env.Sim.Now() - start
		p.est.ObservePrefill(units.Over(predicted, float64(group)), units.Over(actual, float64(group)))
		p.layersDone += group
		p.buf.PublishPrefillProgress()
		if p.layersDone >= p.env.Model.NumLayers {
			p.finishBatch(stream)
			return
		}
		p.env.Sim.PostAfter(p.cfg.CycleOverhead, func() {
			if p.epoch == ep {
				p.cycle()
			}
		})
	})
}

// finishBatch runs the LM head, emits first tokens, and migrates requests
// to the decode engine through the metadata buffer (copy-free: the KV
// sequences merely change owner).
func (p *PrefillEngine) finishBatch(stream *gpusim.Stream) {
	head := p.env.Model.LMHeadKernel(len(p.batch), "prefill")
	p.env.GPU.Launch(stream, head, nil)
	ep := p.epoch
	p.env.GPU.Synchronize(stream, func() {
		if p.epoch != ep {
			return // batch aborted while the LM head drained
		}
		now := p.env.Sim.Now()
		if p.TL != nil {
			p.TL.Span("prefill", "batch", p.batchStart, now,
				timeline.I("tokens", p.batchTokens),
				timeline.I("reqs", len(p.batch)))
		}
		var migrate []*Req
		for _, r := range p.batch {
			r.FirstToken = now
			r.Generated = 1
			if p.QoS != nil {
				// Per-class token conservation: every computed prefill
				// token lands in exactly one class bucket.
				p.QoS.AddPrefill(r.Class, r.NewTokens())
			}
			// A freshly computed shared prefix becomes reusable for
			// later requests of the same group.
			if p.prefix != nil && r.W.PrefixGroup != "" && r.PrefixHit == 0 {
				p.prefix.Insert(r.W.PrefixGroup, r.W.PrefixTokens)
			}
			if r.Generated >= r.W.OutputTokens {
				r.Finish = now
				r.ReleasePrefix()
				p.env.KV.MustFree(r.Seq)
				r.EmitLifecycle(p.TL)
				p.env.Complete(r.Record())
				p.buf.PublishKVRelease()
				continue
			}
			r.Seq.Transfer("decode")
			migrate = append(migrate, r)
		}
		p.batch = nil
		p.batchTokens = 0
		p.running = false
		if p.dec == nil && len(migrate) > 0 {
			panic("engine: no decode engine attached")
		}
		p.buf.Handoff(migrate, p.dec.Accept)
		p.env.Sim.PostAfter(p.cfg.CycleOverhead, p.tryStart)
	})
}
