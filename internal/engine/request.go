package engine

import (
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Req is the engine-side state of one request across its lifecycle.
type Req struct {
	W   workload.Request
	Seq *kvcache.Sequence

	PrefillStart sim.Time
	FirstToken   sim.Time
	Finish       sim.Time
	// Generated counts emitted output tokens (the prefill's first token
	// included).
	Generated int

	// PrefixHit is how many input tokens were served from the shared
	// prefix cache (0 without a cache or on a miss); PrefixRelease
	// unpins the cached prefix and must run exactly once at completion.
	PrefixHit     int
	PrefixRelease func()

	// Retries counts watchdog-initiated re-executions after aborted
	// prefill batches; the core sheds the request once it exceeds the
	// watchdog's budget.
	Retries int
}

// ReleasePrefix unpins the request's cached prefix, if any.
func (r *Req) ReleasePrefix() {
	if r.PrefixRelease != nil {
		r.PrefixRelease()
		r.PrefixRelease = nil
	}
}

// NewTokens returns the prefill tokens actually computed (input minus the
// cached prefix).
func (r *Req) NewTokens() int { return r.W.InputTokens - r.PrefixHit }

// Ctx returns the request's current context length (input plus generated
// output), the quantity decode attention reads.
func (r *Req) Ctx() int { return r.W.InputTokens + r.Generated }

// Record converts the request to its metrics record.
func (r *Req) Record() metrics.Request {
	return metrics.Request{
		ID:           r.W.ID,
		Dataset:      r.W.Dataset,
		Arrival:      r.W.Arrival,
		PrefillStart: r.PrefillStart,
		FirstToken:   r.FirstToken,
		Finish:       r.Finish,
		InputTokens:  r.W.InputTokens,
		OutputTokens: r.W.OutputTokens,
	}
}
