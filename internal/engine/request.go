package engine

import (
	"math"

	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// Req is the engine-side state of one request across its lifecycle.
type Req struct {
	W   workload.Request
	Seq *kvcache.Sequence

	// Class is the QoS tenant class derived from W.Tenant at submission
	// (Standard for untagged requests), cached so hot paths never
	// re-parse the tag.
	Class qos.Class

	PrefillStart sim.Time
	FirstToken   sim.Time
	// DecodeStart is when the decode engine first stepped the request —
	// zero until then; the gap after FirstToken is the KV-transfer /
	// hand-off delay.
	DecodeStart sim.Time
	Finish      sim.Time
	// Generated counts emitted output tokens (the prefill's first token
	// included).
	Generated int

	// PrefixHit is how many input tokens were served from the shared
	// prefix cache (0 without a cache or on a miss); PrefixRelease
	// unpins the cached prefix and must run exactly once at completion.
	PrefixHit     int
	PrefixRelease func()

	// Retries counts watchdog-initiated re-executions after aborted
	// prefill batches; the core sheds the request once it exceeds the
	// watchdog's budget.
	Retries int

	// Preemptions counts memory-pressure evictions from the decode
	// engine; the pressure policy sheds the request once it exceeds K.
	Preemptions int
	// Deferrals counts admissions pushed back by the pressure gate.
	Deferrals int
	// Trail is the request's pre-preemption history: the lifecycle phases
	// it completed before each eviction, in order, so EmitLifecycle can
	// replay the full queued→prefill→…→preempted→…→decode chain. Empty
	// for requests never preempted (the common case keeps the original
	// emission path, byte for byte).
	Trail []TrailSpan
}

// TrailSpan is one completed lifecycle phase of a preempted request.
type TrailSpan struct {
	Name       string
	Start, End sim.Time
	// Open marks the in-progress "preempted" phase; CloseTrail seals it.
	Open bool
}

// ReleasePrefix unpins the request's cached prefix, if any.
func (r *Req) ReleasePrefix() {
	if r.PrefixRelease != nil {
		r.PrefixRelease()
		r.PrefixRelease = nil
	}
}

// NewTokens returns the prefill tokens actually computed (input minus the
// cached prefix).
func (r *Req) NewTokens() int { return r.W.InputTokens - r.PrefixHit }

// AppendTrail records a completed lifecycle phase, clamping its start to
// the trail's current end so replayed spans always abut; spans that clamp
// to nothing are dropped.
func (r *Req) AppendTrail(name string, start, end sim.Time) {
	if n := len(r.Trail); n > 0 && start < r.Trail[n-1].End {
		start = r.Trail[n-1].End
	}
	if end <= start {
		return
	}
	r.Trail = append(r.Trail, TrailSpan{Name: name, Start: start, End: end})
}

// RecordPreemption snapshots the phases completed so far into the trail
// and opens a "preempted" phase at now. The recovery path must seal it
// with CloseTrail when the request re-enters service (the recompute
// prefill launches, or the KV retransfer begins).
func (r *Req) RecordPreemption(now sim.Time) {
	r.AppendTrail("queued", r.W.Arrival, r.PrefillStart)
	r.AppendTrail("prefill", r.PrefillStart, r.FirstToken)
	if r.DecodeStart > 0 {
		r.AppendTrail("kv-transfer", r.FirstToken, r.DecodeStart)
		r.AppendTrail("decode", r.DecodeStart, now)
	}
	r.Trail = append(r.Trail, TrailSpan{Name: "preempted", Start: now, End: now, Open: true})
	r.Preemptions++
}

// CloseTrail seals an open "preempted" phase at t (no-op otherwise), so
// the preempted span abuts the phase that follows it.
func (r *Req) CloseTrail(t sim.Time) {
	n := len(r.Trail)
	if n == 0 || !r.Trail[n-1].Open {
		return
	}
	if t > r.Trail[n-1].Start {
		r.Trail[n-1].End = t
	}
	r.Trail[n-1].Open = false
}

// Ctx returns the request's current context length (input plus generated
// output), the quantity decode attention reads.
func (r *Req) Ctx() int { return r.W.InputTokens + r.Generated }

// Record converts the request to its metrics record.
func (r *Req) Record() metrics.Request {
	return metrics.Request{
		ID:           r.W.ID,
		Dataset:      r.W.Dataset,
		Arrival:      r.W.Arrival,
		PrefillStart: r.PrefillStart,
		FirstToken:   r.FirstToken,
		DecodeStart:  r.DecodeStart,
		Finish:       r.Finish,
		InputTokens:  r.W.InputTokens,
		OutputTokens: r.W.OutputTokens,
		Tenant:       r.W.Tenant,
	}
}

// EmitLifecycle records the request's phases — queued → prefill →
// kv-transfer → decode — as async spans correlated by request ID on the
// "requests" lane. Called once at completion; Recorder.Events() folds
// the retrospective spans back into timeline order. No-op on a nil
// recorder.
func (r *Req) EmitLifecycle(tl *timeline.Recorder) {
	if tl == nil {
		return
	}
	id := r.W.ID
	if len(r.Trail) == 0 {
		// The tenant tag rides on the queued span only when present, so
		// single-tenant traces keep their golden timelines byte for byte.
		if r.W.Tenant != "" {
			tl.AsyncSpan("requests", "queued", id, r.W.Arrival, r.PrefillStart,
				timeline.S("dataset", r.W.Dataset),
				timeline.I("inputTokens", r.W.InputTokens),
				timeline.S("tenant", r.W.Tenant))
		} else {
			tl.AsyncSpan("requests", "queued", id, r.W.Arrival, r.PrefillStart,
				timeline.S("dataset", r.W.Dataset),
				timeline.I("inputTokens", r.W.InputTokens))
		}
		tl.AsyncSpan("requests", "prefill", id, r.PrefillStart, r.FirstToken,
			timeline.I("prefixHit", r.PrefixHit),
			timeline.I("retries", r.Retries))
		if 0 < r.DecodeStart {
			tl.AsyncSpan("requests", "kv-transfer", id, r.FirstToken, r.DecodeStart)
			tl.AsyncSpan("requests", "decode", id, r.DecodeStart, r.Finish,
				timeline.I("outputTokens", r.W.OutputTokens))
		}
		return
	}
	// Preempted at least once: replay the recorded history, then the final
	// run from where the trail left off. AppendTrail's clamping plus the
	// CloseTrail seal guarantee the chain abuts span to span.
	for i, s := range r.Trail {
		if i == 0 && s.Name == "queued" {
			if r.W.Tenant != "" {
				tl.AsyncSpan("requests", s.Name, id, s.Start, s.End,
					timeline.S("dataset", r.W.Dataset),
					timeline.I("inputTokens", r.W.InputTokens),
					timeline.S("tenant", r.W.Tenant))
			} else {
				tl.AsyncSpan("requests", s.Name, id, s.Start, s.End,
					timeline.S("dataset", r.W.Dataset),
					timeline.I("inputTokens", r.W.InputTokens))
			}
			continue
		}
		if s.Name == "preempted" {
			tl.AsyncSpan("requests", s.Name, id, s.Start, s.End,
				timeline.I("preemptions", r.Preemptions))
			continue
		}
		tl.AsyncSpan("requests", s.Name, id, s.Start, s.End)
	}
	last := r.Trail[len(r.Trail)-1].End
	if r.PrefillStart >= last && r.FirstToken > r.PrefillStart {
		// Recompute recovery: the request re-ran prefill after the trail.
		tl.AsyncSpan("requests", "prefill", id, r.PrefillStart, r.FirstToken,
			timeline.I("prefixHit", r.PrefixHit),
			timeline.I("retries", r.Retries))
		if 0 < r.DecodeStart {
			tl.AsyncSpan("requests", "kv-transfer", id, r.FirstToken, r.DecodeStart)
			tl.AsyncSpan("requests", "decode", id, r.DecodeStart, r.Finish,
				timeline.I("outputTokens", r.W.OutputTokens))
		}
		return
	}
	if r.DecodeStart >= last && r.Finish > r.DecodeStart {
		// Retransfer recovery: decode resumed directly on the restored KV.
		tl.AsyncSpan("requests", "decode", id, r.DecodeStart, r.Finish,
			timeline.I("outputTokens", r.W.OutputTokens))
	}
}

// emitDecision records one Algorithm-1 scheduling decision: an instant
// named after the branch taken plus an allocation counter. The P90
// predictions the decision was based on are attached only when finite
// (the scheduler reports NaN when it had no candidates to predict).
func emitDecision(tl *timeline.Recorder, now sim.Time, d sched.Decision) {
	args := make([]timeline.Arg, 0, 5)
	args = append(args,
		timeline.I("prefillSMs", d.PrefillSMs),
		timeline.I("decodeSMs", d.DecodeSMs),
		timeline.B("pauseDecode", d.PauseDecode))
	if !math.IsNaN(d.PredNormTTFT) && !math.IsInf(d.PredNormTTFT, 0) {
		args = append(args, timeline.F("predNormTTFT", d.PredNormTTFT))
	}
	if !math.IsNaN(d.PredTPOTMs) && !math.IsInf(d.PredTPOTMs, 0) {
		args = append(args, timeline.F("predTPOTMs", d.PredTPOTMs))
	}
	tl.Instant("sched", d.Branch, now, args...)
	tl.Counter("sched", "alloc", now,
		timeline.I("prefillSMs", d.PrefillSMs),
		timeline.I("decodeSMs", d.DecodeSMs))
}
