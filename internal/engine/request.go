package engine

import (
	"math"

	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// Req is the engine-side state of one request across its lifecycle.
type Req struct {
	W   workload.Request
	Seq *kvcache.Sequence

	PrefillStart sim.Time
	FirstToken   sim.Time
	// DecodeStart is when the decode engine first stepped the request —
	// zero until then; the gap after FirstToken is the KV-transfer /
	// hand-off delay.
	DecodeStart sim.Time
	Finish      sim.Time
	// Generated counts emitted output tokens (the prefill's first token
	// included).
	Generated int

	// PrefixHit is how many input tokens were served from the shared
	// prefix cache (0 without a cache or on a miss); PrefixRelease
	// unpins the cached prefix and must run exactly once at completion.
	PrefixHit     int
	PrefixRelease func()

	// Retries counts watchdog-initiated re-executions after aborted
	// prefill batches; the core sheds the request once it exceeds the
	// watchdog's budget.
	Retries int
}

// ReleasePrefix unpins the request's cached prefix, if any.
func (r *Req) ReleasePrefix() {
	if r.PrefixRelease != nil {
		r.PrefixRelease()
		r.PrefixRelease = nil
	}
}

// NewTokens returns the prefill tokens actually computed (input minus the
// cached prefix).
func (r *Req) NewTokens() int { return r.W.InputTokens - r.PrefixHit }

// Ctx returns the request's current context length (input plus generated
// output), the quantity decode attention reads.
func (r *Req) Ctx() int { return r.W.InputTokens + r.Generated }

// Record converts the request to its metrics record.
func (r *Req) Record() metrics.Request {
	return metrics.Request{
		ID:           r.W.ID,
		Dataset:      r.W.Dataset,
		Arrival:      r.W.Arrival,
		PrefillStart: r.PrefillStart,
		FirstToken:   r.FirstToken,
		DecodeStart:  r.DecodeStart,
		Finish:       r.Finish,
		InputTokens:  r.W.InputTokens,
		OutputTokens: r.W.OutputTokens,
	}
}

// EmitLifecycle records the request's phases — queued → prefill →
// kv-transfer → decode — as async spans correlated by request ID on the
// "requests" lane. Called once at completion; Recorder.Events() folds
// the retrospective spans back into timeline order. No-op on a nil
// recorder.
func (r *Req) EmitLifecycle(tl *timeline.Recorder) {
	if tl == nil {
		return
	}
	id := r.W.ID
	tl.AsyncSpan("requests", "queued", id, r.W.Arrival, r.PrefillStart,
		timeline.S("dataset", r.W.Dataset),
		timeline.I("inputTokens", r.W.InputTokens))
	tl.AsyncSpan("requests", "prefill", id, r.PrefillStart, r.FirstToken,
		timeline.I("prefixHit", r.PrefixHit),
		timeline.I("retries", r.Retries))
	if 0 < r.DecodeStart {
		tl.AsyncSpan("requests", "kv-transfer", id, r.FirstToken, r.DecodeStart)
		tl.AsyncSpan("requests", "decode", id, r.DecodeStart, r.Finish,
			timeline.I("outputTokens", r.W.OutputTokens))
	}
}

// emitDecision records one Algorithm-1 scheduling decision: an instant
// named after the branch taken plus an allocation counter. The P90
// predictions the decision was based on are attached only when finite
// (the scheduler reports NaN when it had no candidates to predict).
func emitDecision(tl *timeline.Recorder, now sim.Time, d sched.Decision) {
	args := make([]timeline.Arg, 0, 5)
	args = append(args,
		timeline.I("prefillSMs", d.PrefillSMs),
		timeline.I("decodeSMs", d.DecodeSMs),
		timeline.B("pauseDecode", d.PauseDecode))
	if !math.IsNaN(d.PredNormTTFT) && !math.IsInf(d.PredNormTTFT, 0) {
		args = append(args, timeline.F("predNormTTFT", d.PredNormTTFT))
	}
	if !math.IsNaN(d.PredTPOTMs) && !math.IsInf(d.PredTPOTMs, 0) {
		args = append(args, timeline.F("predTPOTMs", d.PredTPOTMs))
	}
	tl.Instant("sched", d.Branch, now, args...)
	tl.Counter("sched", "alloc", now,
		timeline.I("prefillSMs", d.PrefillSMs),
		timeline.I("decodeSMs", d.DecodeSMs))
}
