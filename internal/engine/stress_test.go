package engine

import (
	"fmt"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// Adversarial workload battery: shapes designed to break scheduling
// invariants — thundering herds, degenerate token counts, extreme skew,
// cache-filling giants. Every scenario must complete all requests with
// valid timelines and a drained KV pool (the rig checks the pool).

type scenario struct {
	name string
	reqs func() []workload.Request
}

func stressScenarios() []scenario {
	mk := func(id string, at units.Seconds, in, out int) workload.Request {
		return workload.Request{ID: id, Arrival: at, InputTokens: in, OutputTokens: out, Dataset: "azure-code"}
	}
	return []scenario{
		{"thundering-herd", func() []workload.Request {
			var rs []workload.Request
			for i := 0; i < 60; i++ {
				rs = append(rs, mk(fmt.Sprintf("h%d", i), 0.001, 512, 8))
			}
			return rs
		}},
		{"all-single-token-outputs", func() []workload.Request {
			var rs []workload.Request
			for i := 0; i < 30; i++ {
				rs = append(rs, mk(fmt.Sprintf("s%d", i), units.Seconds(0.001+float64(i)*0.01), 1024, 1))
			}
			return rs
		}},
		{"tiny-inputs-long-outputs", func() []workload.Request {
			var rs []workload.Request
			for i := 0; i < 20; i++ {
				rs = append(rs, mk(fmt.Sprintf("t%d", i), units.Seconds(0.001+float64(i)*0.05), 1, 300))
			}
			return rs
		}},
		{"one-giant-among-mice", func() []workload.Request {
			rs := []workload.Request{mk("giant", 0.001, 24000, 64)}
			for i := 0; i < 25; i++ {
				rs = append(rs, mk(fmt.Sprintf("m%d", i), units.Seconds(0.002+float64(i)*0.02), 64, 16))
			}
			return rs
		}},
		{"alternating-extremes", func() []workload.Request {
			var rs []workload.Request
			for i := 0; i < 20; i++ {
				if i%2 == 0 {
					rs = append(rs, mk(fmt.Sprintf("a%d", i), units.Seconds(0.001+float64(i)*0.1), 16000, 2))
				} else {
					rs = append(rs, mk(fmt.Sprintf("a%d", i), units.Seconds(0.001+float64(i)*0.1), 2, 200))
				}
			}
			return rs
		}},
		{"sustained-overload", func() []workload.Request {
			// 40 big prompts in 2 seconds: far beyond capacity.
			var rs []workload.Request
			for i := 0; i < 40; i++ {
				rs = append(rs, mk(fmt.Sprintf("o%d", i), units.Seconds(0.001+float64(i)*0.05), 8000, 8))
			}
			return rs
		}},
	}
}

func TestStressBattery(t *testing.T) {
	for _, sc := range stressScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			r := defaultRig(t)
			reqs := sc.reqs()
			for _, rq := range reqs {
				rq := rq
				r.env.Sim.At(rq.Arrival, func() { r.prefill.Submit(rq) })
			}
			r.env.Sim.RunAll(1 << 26)
			done := r.env.Completed()
			if len(done) != len(reqs) {
				t.Fatalf("completed %d/%d", len(done), len(reqs))
			}
			for _, m := range done {
				m.Validate()
			}
			if r.env.KV.UsedBlocks() != 0 {
				t.Fatalf("leaked %d KV blocks", r.env.KV.UsedBlocks())
			}
			r.env.KV.CheckInvariants()
		})
	}
}

// TestStressBatteryAblations runs the battery against the ablation
// configurations, which disable the guard rails (reordering, pausing,
// SLO admission) — structural invariants must hold regardless.
func TestStressBatteryAblations(t *testing.T) {
	configs := []struct {
		name string
		pc   func() PrefillConfig
		dc   func() DecodeConfig
	}{
		{"naive", func() PrefillConfig {
			p := DefaultPrefillConfig(108)
			p.Reorder, p.SLOAdmission, p.DynamicSM = false, false, false
			return p
		}, func() DecodeConfig {
			d := DefaultDecodeConfig(108)
			d.DynamicSM, d.AllowPause = false, false
			return d
		}},
		{"tight-batches", func() PrefillConfig {
			p := DefaultPrefillConfig(108)
			p.MaxBatchReqs, p.MaxBatchTokens = 1, 24064
			return p
		}, func() DecodeConfig {
			d := DefaultDecodeConfig(108)
			d.MaxBatch = 4
			return d
		}},
	}
	for _, cfg := range configs {
		for _, sc := range stressScenarios() {
			cfg, sc := cfg, sc
			t.Run(cfg.name+"/"+sc.name, func(t *testing.T) {
				r := newRig(t, cfg.pc(), cfg.dc())
				reqs := sc.reqs()
				for _, rq := range reqs {
					rq := rq
					r.env.Sim.At(rq.Arrival, func() { r.prefill.Submit(rq) })
				}
				r.env.Sim.RunAll(1 << 26)
				if got := len(r.env.Completed()); got != len(reqs) {
					t.Fatalf("completed %d/%d", got, len(reqs))
				}
				if r.env.KV.UsedBlocks() != 0 {
					t.Fatalf("leaked %d KV blocks", r.env.KV.UsedBlocks())
				}
			})
		}
	}
}
