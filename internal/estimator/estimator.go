// Package estimator implements Bullet's performance estimator (§3.2): a
// profile-augmented analytical roofline model predicting layer latency for
// concurrently executing prefill and decode phases under arbitrary SM
// partitions.
//
// The analytical core is Equation 2 of the paper:
//
//	t_i = max( c_i/C · M/(m_i·d_c·p_c),  b_i/B · M/(m_i·d_b·p_b) ) · (1-s_i)^-1
//
// where (d_c, d_b) are isolated decay factors and (p_c, p_b) co-location
// contention factors, both obtained by offline profiling (profile.go), and
// s_i is the wave-quantization idle ratio of Equation 1. The model is
// deliberately simpler than the simulated device (no per-kernel achievable
// efficiency, no bandwidth water-filling, linear rather than super-linear
// bandwidth scaling); the fitted scalars absorb those effects on average,
// which reproduces the paper's observation that the model is ~19% off in
// absolute duration yet ~88% accurate for SLO compliance classification
// (Fig. 15).
package estimator

import (
	"fmt"
	"math"

	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/units"
)

// Params are the profile-fitted scalars of Equation 2.
type Params struct {
	DC float64 // isolated compute decay d_c
	DB float64 // isolated bandwidth decay d_b
	PC float64 // co-located compute contention p_c
	PB float64 // co-located bandwidth contention p_b
}

// DefaultParams returns the purely analytical model (no decay, no
// contention), the starting point before profiling.
func DefaultParams() Params { return Params{DC: 1, DB: 1, PC: 1, PB: 1} }

// Estimator predicts phase latencies for a (model, device) pair.
type Estimator struct {
	cfg    model.Config
	spec   gpusim.Spec
	params Params

	// Online multiplicative corrections (§3.3.2): EWMA of observed /
	// predicted per phase, bounded to avoid runaway feedback.
	prefillCorr float64
	decodeCorr  float64

	// OnObserve, when set, sees every (prediction, observation) pair fed
	// back by the engines — the Figure 15 accuracy instrumentation.
	OnObserve func(phase string, predicted, actual units.Seconds)

	// feedbackOff freezes the online corrections (ablation switch).
	feedbackOff bool

	// ks is the kernel-list scratch buffer PrefillLayerTime rebuilds
	// each call; predictions run many times per scheduling cycle and
	// must not allocate per call.
	ks []gpusim.Kernel
}

const (
	corrAlpha = 0.3
	corrMin   = 0.25
	corrMax   = 4.0
)

// New creates an estimator with the given fitted parameters.
func New(cfg model.Config, spec gpusim.Spec, p Params) *Estimator {
	if p.DC <= 0 || p.DB <= 0 || p.PC <= 0 || p.PB <= 0 {
		panic(fmt.Sprintf("estimator: non-positive params %+v", p))
	}
	return &Estimator{cfg: cfg, spec: spec, params: p, prefillCorr: 1, decodeCorr: 1}
}

// Params returns the fitted parameters.
func (e *Estimator) Params() Params { return e.params }

// Corrections returns the current online correction factors (prefill,
// decode).
func (e *Estimator) Corrections() (float64, float64) { return e.prefillCorr, e.decodeCorr }

// kernelTime applies Equation 2 to a single kernel on m SMs.
func (e *Estimator) kernelTime(k gpusim.Kernel, m int, colocated bool) units.Seconds {
	if m <= 0 {
		panic(fmt.Sprintf("estimator: %d SMs", m))
	}
	p := e.params
	pc, pb := 1.0, 1.0
	if colocated {
		pc, pb = p.PC, p.PB
	}
	M := float64(e.spec.NumSMs)
	frac := float64(m) / M
	ct := units.Seconds(0)
	if k.FLOPs > 0 {
		ct = units.Over(k.FLOPs.Div(e.spec.PeakFLOPS), frac*p.DC*pc)
	}
	bt := units.Seconds(0)
	if k.Bytes > 0 {
		bt = units.Over(k.Bytes.Div(e.spec.PeakBW), frac*p.DB*pb)
	}
	t := units.Max(ct, bt)
	if k.CommBytes > 0 && e.spec.LinkBW > 0 {
		if lt := k.CommBytes.Div(e.spec.LinkBW); lt > t {
			t = lt
		}
	}
	wave := 1 - gpusim.WaveIdleRatio(k.Grid, m)
	return units.Over(t, wave)
}

// PrefillLayerTime predicts one decoder layer of prefill over newTokens
// tokens (with histTokens of cached context) on sms SMs.
//
//bullet:hotpath
func (e *Estimator) PrefillLayerTime(newTokens, histTokens, sms int, colocated bool) units.Seconds {
	e.ks = e.cfg.AppendPrefillLayerKernels(e.ks[:0], newTokens, histTokens, "")
	t := units.Seconds(0)
	for _, k := range e.ks {
		t += e.kernelTime(k, sms, colocated)
	}
	return units.Scale(t, e.prefillCorr)
}

// PrefillRemainingTime predicts the time to finish a prefill that still
// has layersLeft layers to run.
func (e *Estimator) PrefillRemainingTime(newTokens, histTokens, layersLeft, sms int, colocated bool) units.Seconds {
	if layersLeft <= 0 {
		return 0
	}
	return units.Scale(e.PrefillLayerTime(newTokens, histTokens, sms, colocated), float64(layersLeft))
}

// PrefillTotalTime predicts a full prefill pass (all layers plus the LM
// head row for the first token).
func (e *Estimator) PrefillTotalTime(newTokens, histTokens, sms int, colocated bool) units.Seconds {
	t := e.PrefillRemainingTime(newTokens, histTokens, e.cfg.NumLayers, sms, colocated)
	return t + units.Scale(e.kernelTime(e.cfg.LMHeadKernel(1, ""), sms, colocated), e.prefillCorr)
}

// DecodeStepTime predicts one full decode iteration (all layers + LM head,
// launched as a CUDA graph) for a batch with avgCtx average context.
//
//bullet:hotpath
func (e *Estimator) DecodeStepTime(batch int, avgCtx units.Tokens, sms int, colocated bool) units.Seconds {
	if batch <= 0 {
		return 0
	}
	k, ks := e.cfg.DecodeStepKernelScratch(e.ks, batch, avgCtx, "")
	e.ks = ks
	k.Efficiency = 0 // the estimator does not know device efficiencies
	return units.Scale(e.kernelTime(k, sms, colocated), e.decodeCorr)
}

// ObservePrefill feeds back an observed prefill-layer duration against the
// prediction made for it, refining future predictions (§3.3.2).
func (e *Estimator) ObservePrefill(predicted, actual units.Seconds) {
	if e.OnObserve != nil {
		e.OnObserve("prefill", predicted, actual)
	}
	if e.feedbackOff {
		return
	}
	e.prefillCorr = updateCorr(e.prefillCorr, predicted, actual)
}

// ObserveDecode feeds back an observed decode-step duration.
func (e *Estimator) ObserveDecode(predicted, actual units.Seconds) {
	if e.OnObserve != nil {
		e.OnObserve("decode", predicted, actual)
	}
	if e.feedbackOff {
		return
	}
	e.decodeCorr = updateCorr(e.decodeCorr, predicted, actual)
}

func updateCorr(corr float64, predicted, actual units.Seconds) float64 {
	if predicted <= 0 || actual <= 0 {
		return corr
	}
	// predicted already includes corr; extract the raw model value so the
	// EWMA tracks actual/raw.
	raw := units.Over(predicted, corr)
	target := units.Ratio(actual, raw)
	next := corr*(1-corrAlpha) + target*corrAlpha
	return math.Min(corrMax, math.Max(corrMin, next))
}

// SetFeedbackEnabled toggles the online refinement loop (§3.3.2); the
// ablation experiments disable it to isolate the analytical model.
func (e *Estimator) SetFeedbackEnabled(on bool) { e.feedbackOff = !on }

// ResetCorrections restores the neutral online state.
func (e *Estimator) ResetCorrections() {
	e.prefillCorr, e.decodeCorr = 1, 1
}
