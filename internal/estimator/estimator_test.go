package estimator

import (
	"testing"
	"testing/quick"

	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/units"
)

func testEstimator() *Estimator {
	return New(model.Llama31_8B(), gpusim.A100(), DefaultParams())
}

func TestPrefillLayerTimeSanity(t *testing.T) {
	e := testEstimator()
	// One Llama-8B layer over 2048 tokens is roughly 0.9e12 FLOPs; on a
	// 312 TFLOP/s device that's ~3ms even before inefficiency.
	got := e.PrefillLayerTime(2048, 0, 108, false)
	if got < 1e-3 || got > 20e-3 {
		t.Fatalf("prefill layer time = %v, outside sanity window", got)
	}
	// Full prefill should be ~32x a layer.
	total := e.PrefillTotalTime(2048, 0, 108, false)
	if total < 30*got || total > 40*got {
		t.Fatalf("total %v not ≈ 32 layers of %v", total, got)
	}
}

func TestDecodeStepTimeSanity(t *testing.T) {
	e := testEstimator()
	// Weights alone are ~16 GB; at 2 TB/s a decode step is ≥ 8 ms.
	got := e.DecodeStepTime(32, 1024, 108, false)
	if got < 5e-3 || got > 100e-3 {
		t.Fatalf("decode step time = %v, outside sanity window", got)
	}
	if e.DecodeStepTime(0, 1024, 108, false) != 0 {
		t.Fatal("zero batch should cost nothing")
	}
}

func TestFewerSMsSlower(t *testing.T) {
	e := testEstimator()
	full := e.PrefillLayerTime(4096, 0, 108, false)
	half := e.PrefillLayerTime(4096, 0, 54, false)
	if half <= full {
		t.Fatalf("half-SM time %v not slower than full %v", half, full)
	}
	if half > 2.5*full {
		t.Fatalf("half-SM time %v unreasonably slow vs %v", half, full)
	}
}

func TestColocationContentionSlowsDown(t *testing.T) {
	e := New(model.Llama31_8B(), gpusim.A100(), Params{DC: 1, DB: 1, PC: 0.9, PB: 0.85})
	iso := e.PrefillLayerTime(2048, 0, 54, false)
	co := e.PrefillLayerTime(2048, 0, 54, true)
	if co <= iso {
		t.Fatalf("colocated %v not slower than isolated %v", co, iso)
	}
}

func TestWaveQuantizationVisible(t *testing.T) {
	e := testEstimator()
	// A grid of 128 TBs on 108 SMs leaves 40.7% of SM cycles idle
	// (Table 1, OProj@1024); the prediction must inflate accordingly.
	smooth := e.kernelTime(gpusim.Kernel{FLOPs: 1e12, Grid: 0}, 108, false)
	quantized := e.kernelTime(gpusim.Kernel{FLOPs: 1e12, Grid: 128}, 108, false)
	want := smooth / (128.0 / 216.0)
	if units.Ratio(units.Abs(quantized-want), want) > 1e-9 {
		t.Fatalf("quantized = %v, want %v (smooth %v)", quantized, want, smooth)
	}
}

func TestOnlineCorrection(t *testing.T) {
	e := testEstimator()
	base := e.PrefillLayerTime(2048, 0, 108, false)
	// Device consistently 2x slower than predicted.
	for i := 0; i < 50; i++ {
		pred := e.PrefillLayerTime(2048, 0, 108, false)
		e.ObservePrefill(pred, base*2)
	}
	corrected := e.PrefillLayerTime(2048, 0, 108, false)
	if corrected < base*1.7 || corrected > base*2.3 {
		t.Fatalf("correction converged to %v, want ≈ %v", corrected, base*2)
	}
	pc, dc := e.Corrections()
	if dc != 1 {
		t.Fatalf("decode correction moved: %v", dc)
	}
	if pc < 1.7 || pc > 2.3 {
		t.Fatalf("prefill correction = %v", pc)
	}
	e.ResetCorrections()
	if got := e.PrefillLayerTime(2048, 0, 108, false); units.Ratio(units.Abs(got-base), base) > 1e-9 {
		t.Fatal("reset did not restore base prediction")
	}
}

func TestCorrectionBounded(t *testing.T) {
	e := testEstimator()
	for i := 0; i < 200; i++ {
		pred := e.PrefillLayerTime(2048, 0, 108, false)
		e.ObservePrefill(pred, pred*1000)
	}
	pc, _ := e.Corrections()
	if pc > corrMax+1e-9 {
		t.Fatalf("correction unbounded: %v", pc)
	}
	for i := 0; i < 200; i++ {
		pred := e.DecodeStepTime(8, 512, 108, false)
		e.ObserveDecode(pred, pred/1000)
	}
	_, dcr := e.Corrections()
	if dcr < corrMin-1e-9 {
		t.Fatalf("correction under-bounded: %v", dcr)
	}
}

func TestInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero params accepted")
		}
	}()
	New(model.Tiny(), gpusim.TestGPU(), Params{})
}

func TestProfileQuick(t *testing.T) {
	cfg := model.Llama31_8B()
	spec := gpusim.A100()
	est, rep := Profile(cfg, spec, QuickProfileOptions(spec))
	if rep.Trials == 0 || len(rep.Samples) != rep.Trials {
		t.Fatalf("trials=%d samples=%d", rep.Trials, len(rep.Samples))
	}
	p := est.Params()
	for _, v := range []float64{p.DC, p.DB, p.PC, p.PB} {
		if v < 0.2 || v > 1.5 {
			t.Fatalf("fitted param out of range: %+v", p)
		}
	}
	// Fitted decay factors must improve on the naive analytical model.
	if rep.MeanRelError > 0.5 {
		t.Fatalf("mean relative error = %v, fit failed", rep.MeanRelError)
	}
	// The fitted model should predict a real configuration reasonably:
	// compare against a fresh ground-truth measurement.
	actual := measurePrefillLayer(cfg, spec, 2048, 0, spec.NumSMs)
	pred := est.PrefillLayerTime(2048, 0, spec.NumSMs, false)
	if units.Ratio(units.Abs(pred-actual), actual) > 0.6 {
		t.Fatalf("pred %v vs actual %v: too far off", pred, actual)
	}
}

func TestProfileReportErrorStats(t *testing.T) {
	spec := gpusim.A100()
	_, rep := Profile(model.Llama31_8B(), spec, QuickProfileOptions(spec))
	if rep.P90RelError < rep.MeanRelError/4 {
		t.Fatalf("p90 %v implausibly below mean %v", rep.P90RelError, rep.MeanRelError)
	}
	acc := ClassificationAccuracy(rep.Samples, 1.0)
	if acc < 0.5 || acc > 1.0001 {
		t.Fatalf("classification accuracy = %v", acc)
	}
}

func TestClassificationAccuracyEdge(t *testing.T) {
	if got := ClassificationAccuracy(nil, 1); got != 0 {
		t.Fatalf("empty accuracy = %v", got)
	}
	perfect := []Sample{
		{Kind: "k", Actual: 1, Predicted: 1},
		{Kind: "k", Actual: 2, Predicted: 2},
		{Kind: "k", Actual: 3, Predicted: 3},
	}
	if got := ClassificationAccuracy(perfect, 1.0); got != 1 {
		t.Fatalf("perfect accuracy = %v", got)
	}
}

func TestMeasureColocatedProducesBothSamples(t *testing.T) {
	cfg := model.Llama31_8B()
	spec := gpusim.A100()
	p, d := measureColocated(cfg, spec, 2048, 32, 1024, 81, 27)
	if p <= 0 || d <= 0 {
		t.Fatalf("colocated measures: prefill=%v decode=%v", p, d)
	}
	// Colocated prefill on 81 SMs should be slower than isolated full-GPU.
	iso := measurePrefillLayer(cfg, spec, 2048, 0, 108)
	if p <= iso {
		t.Fatalf("colocated partial-SM prefill %v not slower than isolated %v", p, iso)
	}
}

// Property: predictions are positive and monotone in tokens.
func TestPropertyPredictionMonotone(t *testing.T) {
	e := testEstimator()
	f := func(aU uint16, smU uint8) bool {
		a := int(aU%8192) + 1
		sms := int(smU%107) + 1
		t1 := e.PrefillLayerTime(a, 0, sms, false)
		t2 := e.PrefillLayerTime(a+512, 0, sms, false)
		return t1 > 0 && t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: decode step predictions are monotone in batch size.
func TestPropertyDecodeMonotoneBatch(t *testing.T) {
	e := testEstimator()
	f := func(bU uint8) bool {
		b := int(bU%200) + 1
		t1 := e.DecodeStepTime(b, 1024, 108, false)
		t2 := e.DecodeStepTime(b+8, 1024, 108, false)
		return t1 > 0 && t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPredict measures the Table 3 "Performance Predict" path.
func BenchmarkPredict(b *testing.B) {
	e := testEstimator()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.PrefillLayerTime(2048, 0, 84, true)
		_ = e.DecodeStepTime(64, 1024, 24, true)
	}
}

func BenchmarkProfileQuick(b *testing.B) {
	spec := gpusim.A100()
	cfg := model.Llama31_8B()
	opts := QuickProfileOptions(spec)
	for i := 0; i < b.N; i++ {
		_, _ = Profile(cfg, spec, opts)
	}
}
