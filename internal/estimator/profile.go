// Offline profiling and parameter fitting (§3.2.2).
//
// The profiler measures the simulated device exactly as the paper measures
// the A100: isolated prefill layers and decode steps across sampled
// (sequence length, batch size, context length, SM count) grids establish
// the decay factors (d_c, d_b); co-located prefill+decode runs then fit
// the contention factors (p_c, p_b). Sampling at coarse steps keeps the
// trial count small while covering the space; the analytical model
// interpolates everything in between.
package estimator

import (
	"math"
	"slices"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

// ProfileOptions selects the sampled grid.
type ProfileOptions struct {
	SeqLens  []int          // prefill sequence lengths (sl)
	Batches  []int          // decode batch sizes (bs)
	Ctxs     []units.Tokens // decode average context lengths (cl)
	SMCounts []int          // SM allocations (pm / dm)
	// ColocSMSplits are (prefill SMs, decode SMs) pairs for contention
	// fitting.
	ColocSMSplits [][2]int
}

// DefaultProfileOptions mirrors the paper's sampling strategy (steps of
// 1024 tokens / 8 batch / 6 SMs, thinned to keep the default profile fast
// while covering the space).
func DefaultProfileOptions(spec gpusim.Spec) ProfileOptions {
	M := spec.NumSMs
	var sms []int
	for m := M / 9; m < M; m += M / 9 {
		sms = append(sms, m)
	}
	sms = append(sms, M)
	return ProfileOptions{
		SeqLens:  []int{512, 1024, 2048, 4096, 8192, 16384},
		Batches:  []int{8, 16, 32, 64, 128, 256},
		Ctxs:     []units.Tokens{512, 1024, 2048, 4096},
		SMCounts: sms,
		ColocSMSplits: [][2]int{
			{M - M/4, M / 4}, {M - M/3, M / 3}, {M / 2, M / 2},
			{M / 3, M - M/3}, {M, M / 4}, {M - M/9, M / 9},
		},
	}
}

// QuickProfileOptions is a reduced grid for tests.
func QuickProfileOptions(spec gpusim.Spec) ProfileOptions {
	M := spec.NumSMs
	return ProfileOptions{
		SeqLens:       []int{1024, 4096},
		Batches:       []int{16, 64},
		Ctxs:          []units.Tokens{1024},
		SMCounts:      []int{M / 2, M},
		ColocSMSplits: [][2]int{{M / 2, M / 2}, {M - M/4, M / 4}},
	}
}

// Sample is one profiled configuration with the model's final prediction,
// used by the Figure 15 accuracy analysis.
type Sample struct {
	Kind      string // "prefill-iso", "decode-iso", "prefill-coloc", "decode-coloc"
	SeqLen    int
	Batch     int
	Ctx       units.Tokens
	SMs       int
	Actual    units.Seconds
	Predicted units.Seconds
}

// RelError returns |pred-actual|/actual.
func (s Sample) RelError() float64 {
	if s.Actual == 0 {
		return 0
	}
	return units.Ratio(units.Abs(s.Predicted-s.Actual), s.Actual)
}

// Report summarises a fitting run.
type Report struct {
	Params       Params
	Trials       int
	MeanRelError float64
	P90RelError  float64
	Samples      []Sample
}

// MeanRelativeError averages relative errors over samples.
func MeanRelativeError(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range samples {
		sum += s.RelError()
	}
	return sum / float64(len(samples))
}

// ClassificationAccuracy evaluates the model as an SLO-compliance
// classifier (Fig. 15 left): for each sample, "compliant" means the
// duration is at most threshold(sample); accuracy is the fraction of
// samples where prediction and ground truth agree. The threshold is taken
// per sample as factor × its actual-duration percentile within its kind,
// approximating per-request latency budgets.
func ClassificationAccuracy(samples []Sample, factor float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	byKind := map[string][]units.Seconds{}
	for _, s := range samples {
		byKind[s.Kind] = append(byKind[s.Kind], s.Actual)
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	thresh := map[string]units.Seconds{}
	for _, k := range kinds {
		v := byKind[k]
		slices.Sort(v)
		thresh[k] = units.Scale(v[len(v)/2], factor)
	}
	agree := 0
	for _, s := range samples {
		th := thresh[s.Kind]
		if (s.Actual <= th) == (s.Predicted <= th) {
			agree++
		}
	}
	return float64(agree) / float64(len(samples))
}

// measured holds a ground-truth duration with the kernel inventory that
// produced it, so candidate parameters can be re-evaluated cheaply.
type measured struct {
	sample   Sample
	kernels  []gpusim.Kernel
	sms      int
	colocate bool
}

// Profile measures the device, fits Equation 2's parameters, and returns
// a ready Estimator plus the fitting report.
func Profile(cfg model.Config, spec gpusim.Spec, opts ProfileOptions) (*Estimator, Report) {
	var iso, coloc []measured

	// Isolated prefill layers.
	for _, sl := range opts.SeqLens {
		for _, m := range opts.SMCounts {
			dur := measurePrefillLayer(cfg, spec, sl, 0, m)
			iso = append(iso, measured{
				sample:  Sample{Kind: "prefill-iso", SeqLen: sl, SMs: m, Actual: dur},
				kernels: cfg.PrefillLayerKernels(sl, 0, ""),
				sms:     m,
			})
		}
	}
	// Isolated decode steps.
	for _, bs := range opts.Batches {
		for _, cl := range opts.Ctxs {
			for _, m := range opts.SMCounts {
				dur := measureDecodeStep(cfg, spec, bs, cl, m)
				iso = append(iso, measured{
					sample:  Sample{Kind: "decode-iso", Batch: bs, Ctx: cl, SMs: m, Actual: dur},
					kernels: []gpusim.Kernel{cfg.DecodeStepKernel(bs, cl, "")},
					sms:     m,
				})
			}
		}
	}
	// Co-located pairs: a representative mid-size prefill against each
	// decode size, across SM splits.
	for _, split := range opts.ColocSMSplits {
		for _, sl := range thin(opts.SeqLens, 2) {
			for _, bs := range thin(opts.Batches, 2) {
				cl := opts.Ctxs[len(opts.Ctxs)/2]
				pDur, dDur := measureColocated(cfg, spec, sl, bs, cl, split[0], split[1])
				coloc = append(coloc,
					measured{
						sample:   Sample{Kind: "prefill-coloc", SeqLen: sl, Batch: bs, Ctx: cl, SMs: split[0], Actual: pDur},
						kernels:  cfg.PrefillLayerKernels(sl, 0, ""),
						sms:      split[0],
						colocate: true,
					},
					measured{
						sample:   Sample{Kind: "decode-coloc", SeqLen: sl, Batch: bs, Ctx: cl, SMs: split[1], Actual: dDur},
						kernels:  []gpusim.Kernel{cfg.DecodeStepKernel(bs, cl, "")},
						sms:      split[1],
						colocate: true,
					},
				)
			}
		}
	}

	params := fit(cfg, spec, iso, coloc)
	est := New(cfg, spec, params)

	// Final predictions for the report.
	all := append(append([]measured(nil), iso...), coloc...)
	samples := make([]Sample, len(all))
	var relErrs []float64
	for i, m := range all {
		pred := predictKernels(spec, params, m.kernels, m.sms, m.colocate)
		s := m.sample
		s.Predicted = pred
		samples[i] = s
		relErrs = append(relErrs, s.RelError())
	}
	sort.Float64s(relErrs)
	rep := Report{
		Params:       params,
		Trials:       len(all),
		MeanRelError: MeanRelativeError(samples),
		Samples:      samples,
	}
	if n := len(relErrs); n > 0 {
		rep.P90RelError = relErrs[(n*9)/10]
	}
	return est, rep
}

func thin(xs []int, keep int) []int {
	if len(xs) <= keep {
		return xs
	}
	out := make([]int, 0, keep)
	for i := 0; i < keep; i++ {
		out = append(out, xs[i*(len(xs)-1)/(keep-1)])
	}
	return out
}

// predictKernels applies Equation 2 with candidate parameters.
func predictKernels(spec gpusim.Spec, p Params, ks []gpusim.Kernel, sms int, coloc bool) units.Seconds {
	pc, pb := 1.0, 1.0
	if coloc {
		pc, pb = p.PC, p.PB
	}
	frac := float64(sms) / float64(spec.NumSMs)
	t := units.Seconds(0)
	for _, k := range ks {
		ct, bt := units.Seconds(0), units.Seconds(0)
		if k.FLOPs > 0 {
			ct = units.Over(k.FLOPs.Div(spec.PeakFLOPS), frac*p.DC*pc)
		}
		if k.Bytes > 0 {
			bt = units.Over(k.Bytes.Div(spec.PeakBW), frac*p.DB*pb)
		}
		kt := units.Max(ct, bt)
		if k.CommBytes > 0 && spec.LinkBW > 0 {
			kt = units.Max(kt, k.CommBytes.Div(spec.LinkBW))
		}
		wave := 1 - gpusim.WaveIdleRatio(k.Grid, sms)
		t += units.Over(kt, wave)
	}
	return t
}

// fit performs coordinate descent: (d_c, d_b) on isolated samples, then
// (p_c, p_b) on co-located samples.
func fit(cfg model.Config, spec gpusim.Spec, iso, coloc []measured) Params {
	p := DefaultParams()
	loss := func(samples []measured, cand Params) float64 {
		sum := 0.0
		for _, m := range samples {
			pred := predictKernels(spec, cand, m.kernels, m.sms, m.colocate)
			d := math.Log(pred.Float()) - math.Log(m.sample.Actual.Float())
			sum += d * d
		}
		return sum / float64(len(samples))
	}
	search := func(samples []measured, set func(*Params, float64)) {
		// Golden-section over [0.2, 1.5] in log space.
		lo, hi := math.Log(0.2), math.Log(1.5)
		const phi = 0.6180339887498949
		eval := func(x float64) float64 {
			cand := p
			set(&cand, math.Exp(x))
			return loss(samples, cand)
		}
		a, b := lo, hi
		c := b - phi*(b-a)
		d := a + phi*(b-a)
		fc, fd := eval(c), eval(d)
		for i := 0; i < 40; i++ {
			if fc < fd {
				b, d, fd = d, c, fc
				c = b - phi*(b-a)
				fc = eval(c)
			} else {
				a, c, fc = c, d, fd
				d = a + phi*(b-a)
				fd = eval(d)
			}
		}
		set(&p, math.Exp((a+b)/2))
	}

	if len(iso) > 0 {
		for round := 0; round < 3; round++ {
			search(iso, func(q *Params, v float64) { q.DC = v })
			search(iso, func(q *Params, v float64) { q.DB = v })
		}
	}
	if len(coloc) > 0 {
		for round := 0; round < 3; round++ {
			search(coloc, func(q *Params, v float64) { q.PC = v })
			search(coloc, func(q *Params, v float64) { q.PB = v })
		}
	}
	return p
}

// --- ground-truth measurement harnesses -------------------------------

func measurePrefillLayer(cfg model.Config, spec gpusim.Spec, sl, hist, sms int) units.Seconds {
	s := sim.New()
	g := gpusim.New(s, spec)
	st := g.NewStream(smmask.Range(0, sms))
	for _, k := range cfg.PrefillLayerKernels(sl, hist, "profile") {
		g.Launch(st, k, nil)
	}
	var end sim.Time
	g.Synchronize(st, func() { end = s.Now() })
	s.RunAll(1 << 20)
	return end
}

func measureDecodeStep(cfg model.Config, spec gpusim.Spec, bs int, cl units.Tokens, sms int) units.Seconds {
	s := sim.New()
	g := gpusim.New(s, spec)
	st := g.NewStream(smmask.Range(0, sms))
	g.Launch(st, cfg.DecodeStepKernel(bs, cl, "profile"), nil)
	var end sim.Time
	g.Synchronize(st, func() { end = s.Now() })
	s.RunAll(1 << 20)
	return end
}

// measureColocated runs `reps` prefill layers on pm low SMs while decode
// steps loop on dm high SMs, returning the average prefill-layer duration
// and the average duration of decode steps completed during the overlap.
func measureColocated(cfg model.Config, spec gpusim.Spec, sl, bs int, cl units.Tokens, pm, dm int) (prefillLayer, decodeStep units.Seconds) {
	s := sim.New()
	g := gpusim.New(s, spec)
	pSt := g.NewStream(smmask.Range(0, pm))
	dSt := g.NewStream(smmask.Range(spec.NumSMs-dm, spec.NumSMs))

	const reps = 4
	for r := 0; r < reps; r++ {
		for _, k := range cfg.PrefillLayerKernels(sl, 0, "profile") {
			g.Launch(pSt, k, nil)
		}
	}
	var prefillEnd sim.Time
	prefillDone := false
	g.Synchronize(pSt, func() {
		prefillEnd = s.Now()
		prefillDone = true
	})

	stepDurs := []units.Seconds{}
	var relaunch func()
	relaunch = func() {
		g.Launch(dSt, cfg.DecodeStepKernel(bs, cl, "profile"), func(r gpusim.KernelRecord) {
			stepDurs = append(stepDurs, r.Duration())
			// Keep decode saturated until prefill finishes and at
			// least two steps completed (to guarantee a sample even
			// when steps are long).
			if !prefillDone || len(stepDurs) < 2 {
				relaunch()
			}
		})
	}
	relaunch()

	s.RunAll(1 << 22)
	prefillLayer = prefillEnd / reps
	sum := units.Seconds(0)
	for _, d := range stepDurs {
		sum += d
	}
	decodeStep = units.Over(sum, float64(len(stepDurs)))
	return prefillLayer, decodeStep
}
