package experiments

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/qos"
	"repro/internal/resilience"
	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

// ChaosRow is one arm of the ext-chaos study: the same correlated
// link-failure storm over the same cluster and trace, with the
// router-tier resilience layer (DESIGN.md §16) off or on.
type ChaosRow struct {
	Arm           string
	Completed     int
	Shed          int
	Goodput       float64 // SLO-meeting req/s, per-class scaled SLOs, summed
	PremiumSLO    float64 // premium-class SLO attainment
	Retried       int
	Timeouts      int
	BreakerOpens  int
	Hedges        int
	HedgeWins     int
	RateLimited   int
	Drains        int
	Handoffs      int
	LinkFaults    int
	Recoveries    int
	MTTRSeconds   float64
	FaultsApplied int
}

// ChaosArms names the two contenders in render order.
var ChaosArms = []string{"resilience-off", "resilience-on"}

// chaosStorm derives the evaluation storm from the faults defaults:
// storms arrive often and run hot, so a meaningful fraction of the run
// has one or more replica links black-holed, with rack-style cascades
// taking neighbors down moments later.
func chaosStorm(replicas int, horizon units.Seconds, seed int64) faults.ChaosConfig {
	cfg := faults.DefaultChaosConfig(replicas, horizon)
	cfg.Seed = seed
	cfg.StormEnter = 0.6
	cfg.StormExit = 0.1
	cfg.StormLinkRate = 2
	cfg.LossProb = 0.9
	cfg.MeanLinkDuration = units.Seconds(10)
	cfg.CascadeProb = 0.6
	return cfg
}

// ExtChaos runs the correlated link-failure storm twice over identical
// inputs — the same tenant-tagged trace and the same bit-identical
// chaos schedule — toggling only cluster.Config.Resilience. The off arm
// is the naive router: it keeps dispatching into black-holed links,
// waits out every outage, and treats drains as crashes. The on arm gets
// circuit breakers, dispatch timeouts, hedged re-dispatch, per-class
// token buckets, and graceful drains. Everything is deterministic per
// (seed, workers-independent): the rows are byte-identical across
// same-seed runs and serial vs parallel replica advancement.
func ExtChaos(d workload.Dataset, rate float64, n int, seed int64, workers int) []ChaosRow {
	spec, cfg := Platform()
	core.FittedParams(cfg, spec)
	const replicas = 4
	horizon := units.Scale(units.Seconds(float64(n)/rate), 1.25)
	storm := chaosStorm(replicas, horizon, seed)
	sloFor := qosSLOFor(d.Name)
	var rows []ChaosRow
	for _, arm := range ChaosArms {
		ccfg := cluster.Config{
			Replicas: replicas, Policy: cluster.RoundRobin,
			Options: core.Options{Mode: core.ModeFull},
			Workers: workers,
		}
		if arm == "resilience-on" {
			rcfg := resilience.DefaultConfig()
			// A loose admission budget: the buckets only clip the
			// best-effort backlog that piles up behind storm outages.
			rcfg.BucketRate = 12000
			rcfg.BucketBurst = 90000
			ccfg.Resilience = &rcfg
		}
		env := serving.NewEnv(spec, cfg, d.Name)
		cl := cluster.New(env, ccfg)
		inj := faults.NewInjector(env.Sim, faults.GenerateChaos(storm))
		cl.AttachFaults(inj, core.DefaultWatchdog())
		inj.Arm()
		res := env.Run(cl, workload.GenerateTenantMix(d, rate, n, seed, workload.DefaultTenantMix()))
		cl.Quiesce()
		cl.CheckDrained()
		rl := cl.Resilience()
		row := ChaosRow{
			Arm:           arm,
			Completed:     res.Summary.Requests,
			Shed:          res.Shed,
			Retried:       rl.Retried,
			Timeouts:      cl.DispatchTimeouts(),
			BreakerOpens:  rl.BreakerOpens,
			Hedges:        rl.Hedges,
			HedgeWins:     rl.HedgeWins,
			RateLimited:   rl.RateLimited,
			Drains:        rl.Drains,
			Handoffs:      rl.Handoffs,
			LinkFaults:    rl.LinkFaults,
			Recoveries:    rl.Recoveries,
			MTTRSeconds:   rl.MTTR().Float(),
			FaultsApplied: inj.Injected(),
		}
		for _, ts := range metrics.SummarizeByTenant(res.Requests, sloFor) {
			row.Goodput += ts.Goodput
			if ts.Tenant == qos.TenantPremium {
				row.PremiumSLO = ts.SLOAttainment
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderExtChaos prints the storm study, one row per arm.
func RenderExtChaos(rows []ChaosRow) string {
	header := []string{"Arm", "Done", "Shed", "Goodput", "PremSLO", "Retry",
		"Tmo", "BrkOpen", "Hedge", "Win", "RateLim", "Drain", "Handoff",
		"Links", "Recov", "MTTR(s)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Arm, itoa(r.Completed), itoa(r.Shed), f2(r.Goodput), f2(r.PremiumSLO),
			itoa(r.Retried), itoa(r.Timeouts), itoa(r.BreakerOpens), itoa(r.Hedges),
			itoa(r.HedgeWins), itoa(r.RateLimited), itoa(r.Drains), itoa(r.Handoffs),
			itoa(r.LinkFaults), itoa(r.Recoveries), f2(r.MTTRSeconds),
		})
	}
	return "Extension: router-tier resilience under a correlated link-failure storm\n" +
		table(header, cells)
}
