package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestExtChaosResilienceWins is the ext-chaos acceptance check: under
// the correlated link-failure storm the resilient router must sustain
// at least 2× the goodput of the naive router, keep premium SLO
// attainment no worse, and actually exercise its machinery (dispatch
// timeouts, breaker opens) against a non-trivial schedule.
func TestExtChaosResilienceWins(t *testing.T) {
	rows := ExtChaos(workload.AzureCode, 10, 120, 7, 1)
	if len(rows) != len(ChaosArms) {
		t.Fatalf("rows = %d, want %d", len(rows), len(ChaosArms))
	}
	off, on := rows[0], rows[1]
	if off.Arm != "resilience-off" || on.Arm != "resilience-on" {
		t.Fatalf("arm order %q, %q", off.Arm, on.Arm)
	}
	if on.Goodput < 2*off.Goodput {
		t.Errorf("resilient goodput %.2f < 2× naive %.2f", on.Goodput, off.Goodput)
	}
	if on.PremiumSLO < off.PremiumSLO {
		t.Errorf("premium SLO regressed: on %.2f < off %.2f", on.PremiumSLO, off.PremiumSLO)
	}
	if off.LinkFaults == 0 || on.LinkFaults != off.LinkFaults {
		t.Errorf("arms saw different storms: off %d links, on %d", off.LinkFaults, on.LinkFaults)
	}
	if off.FaultsApplied != on.FaultsApplied || off.FaultsApplied == 0 {
		t.Errorf("injected fault counts diverged: off %d, on %d", off.FaultsApplied, on.FaultsApplied)
	}
	// The naive arm has none of the machinery; the resilient arm must
	// have actually used its.
	if off.Timeouts != 0 || off.BreakerOpens != 0 || off.Retried != 0 || off.RateLimited != 0 {
		t.Errorf("naive arm shows resilience activity: %+v", off)
	}
	if on.Timeouts == 0 || on.BreakerOpens == 0 || on.Retried == 0 {
		t.Errorf("resilient arm idle under the storm: %+v", on)
	}
	out := RenderExtChaos(rows)
	for _, want := range []string{"resilience-on", "BrkOpen", "PremSLO", "MTTR(s)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestExtChaosDeterminism: the whole storm study — chaos schedule,
// breaker state walks, hedges, timeouts, goodput accounting — must
// replay bit-identically from the same seed, and must not depend on
// how many workers advance the replicas. (ci.sh runs this under -race
// as the chaos determinism smoke.)
func TestExtChaosDeterminism(t *testing.T) {
	a := ExtChaos(workload.AzureCode, 10, 60, 11, 1)
	b := ExtChaos(workload.AzureCode, 10, 60, 11, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos study diverged across same-seed runs:\n%+v\nvs\n%+v", a, b)
	}
	par := ExtChaos(workload.AzureCode, 10, 60, 11, 4)
	if !reflect.DeepEqual(a, par) {
		t.Fatalf("chaos study diverged serial vs parallel:\n%+v\nvs\n%+v", a, par)
	}
}
