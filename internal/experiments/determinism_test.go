package experiments

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestSchedulerDoubleRunDeterminism is the regression gate behind the
// determinism contract (DESIGN.md): running the full bullet stack —
// workload generation, scheduler, resource manager, engines, GPU model —
// twice on the identical trace must produce bit-identical results, per-
// request metrics and accumulated GPU statistics included. Any wall-clock
// read, map-iteration-order leak, or scheduling tie broken
// nondeterministically shows up here as a diff.
//
// It runs cleanly under -race as well: the simulation core is
// single-threaded by contract (the nogoroutine lint rule), so there is
// nothing to race.
func TestSchedulerDoubleRunDeterminism(t *testing.T) {
	for _, sys := range []string{"bullet", "bullet-naive", "sglang-1024"} {
		a := RunOne(sys, workload.AzureCode, 6, 120, 42)
		b := RunOne(sys, workload.AzureCode, 6, 120, 42)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: two runs on the same trace diverged", sys)
			if !reflect.DeepEqual(a.Summary, b.Summary) {
				t.Errorf("  summaries differ:\n  run1: %+v\n  run2: %+v", a.Summary, b.Summary)
			}
			if !reflect.DeepEqual(a.GPUStats, b.GPUStats) {
				t.Errorf("  GPU stats differ:\n  run1: %+v\n  run2: %+v", a.GPUStats, b.GPUStats)
			}
			for i := range a.Requests {
				if i < len(b.Requests) && !reflect.DeepEqual(a.Requests[i], b.Requests[i]) {
					t.Errorf("  first diverging request %d:\n  run1: %+v\n  run2: %+v",
						i, a.Requests[i], b.Requests[i])
					break
				}
			}
		}
	}
}

// TestTraceDeterminism pins down the workload generator specifically:
// identical (dataset, rate, n, seed) tuples must yield identical traces.
func TestTraceDeterminism(t *testing.T) {
	a := workload.Generate(workload.ShareGPT, 8, 200, 7)
	b := workload.Generate(workload.ShareGPT, 8, 200, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("workload.Generate is not deterministic for a fixed seed")
	}
}
