// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §4) on the simulated substrate. Each experiment has a
// typed runner returning structured rows plus a Render function producing
// the text table printed by `bulletbench` and the repository benchmarks.
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/baselines/chunked"
	"repro/internal/baselines/disagg"
	"repro/internal/baselines/nanoflow"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/pressure"
	"repro/internal/qos"
	"repro/internal/serving"
	"repro/internal/workload"
)

// SystemNames lists the evaluated serving systems in the paper's order.
var SystemNames = []string{
	"bullet", "vllm-1024", "sglang-1024", "sglang-2048", "nanoflow-1024",
}

// NewSystem instantiates a serving system by name on an environment.
// Bullet ablation and static variants are addressable as
// "bullet-naive", "bullet-partition", "bullet-scheduler" and
// "bullet-sm<N>"; "bullet-gate" and "bullet-pressure" arm the
// memory-pressure subsystem (admission gate only, and gate plus decode
// preemption with recompute/retransfer recovery); "bullet-qos" stacks
// the SLO-feedback QoS controller on top of the pressure subsystem.
func NewSystem(name string, env *serving.Env) serving.System {
	if opts, ok := bulletOptions(name); ok {
		return core.New(env, opts)
	}
	switch name {
	case "vllm-1024":
		return chunked.New(env, chunked.VLLM1024())
	case "sglang-1024":
		return chunked.New(env, chunked.SGLang1024())
	case "sglang-2048":
		return chunked.New(env, chunked.SGLang2048())
	case "nanoflow-1024":
		return nanoflow.New(env, nanoflow.DefaultConfig())
	case "disagg-nvlink":
		return disagg.New(env, disagg.DefaultConfig())
	case "disagg-pcie":
		return disagg.New(env, disagg.PCIeConfig())
	}
	panic(fmt.Sprintf("experiments: unknown system %q", name))
}

// bulletOptions resolves a Bullet variant name to its core options;
// false means the name is not a Bullet variant (a baseline or unknown).
func bulletOptions(name string) (core.Options, bool) {
	switch name {
	case "bullet":
		return core.Options{Mode: core.ModeFull}, true
	case "bullet-naive":
		return core.Options{Mode: core.ModeNaive}, true
	case "bullet-partition":
		return core.Options{Mode: core.ModePartitionOnly}, true
	case "bullet-scheduler":
		return core.Options{Mode: core.ModeSchedulerOnly}, true
	case "bullet-prefix":
		return core.Options{Mode: core.ModeFull, EnablePrefixCache: true}, true
	case "bullet-gate":
		return core.Options{Mode: core.ModeFull,
			Pressure: &pressure.Config{DisablePreemption: true}}, true
	case "bullet-pressure":
		return core.Options{Mode: core.ModeFull, Pressure: &pressure.Config{}}, true
	case "bullet-qos":
		return core.Options{Mode: core.ModeFull,
			Pressure: &pressure.Config{}, QoS: &qos.Config{}}, true
	}
	var sms int
	if n, err := fmt.Sscanf(name, "bullet-sm%d", &sms); err == nil && n == 1 {
		return core.Options{Mode: core.ModeStatic, FixedPrefillSMs: sms}, true
	}
	return core.Options{}, false
}

// NewSystemWithBackend instantiates a Bullet variant with a latency
// backend override (DESIGN.md §15). Baselines have no pluggable latency
// model, so non-Bullet names are an error rather than a silent analytic
// fallback.
func NewSystemWithBackend(name string, env *serving.Env, backend string, seed int64) (serving.System, error) {
	opts, ok := bulletOptions(name)
	if !ok {
		return nil, fmt.Errorf("experiments: backend %q requires a Bullet variant, got %q", backend, name)
	}
	opts.Backend = backend
	opts.BackendSeed = seed
	return core.New(env, opts), nil
}

// Platform returns the evaluation device and model (§4.1).
func Platform() (gpusim.Spec, model.Config) {
	return gpusim.A100(), model.Llama31_8B()
}

// RunOne executes a single serving experiment.
func RunOne(system string, dataset workload.Dataset, rate float64, n int, seed int64) serving.Result {
	spec, cfg := Platform()
	env := serving.NewEnv(spec, cfg, dataset.Name)
	sys := NewSystem(system, env)
	return env.Run(sys, workload.Generate(dataset, rate, n, seed))
}

// runOnDevice executes a serving experiment on a named device profile.
func runOnDevice(device, system string, dataset workload.Dataset, rate float64, n int, seed int64) serving.Result {
	var spec gpusim.Spec
	switch device {
	case "a100":
		spec = gpusim.A100()
	case "h100":
		spec = gpusim.H100()
	default:
		panic(fmt.Sprintf("experiments: unknown device %q", device))
	}
	_, cfg := Platform()
	env := serving.NewEnv(spec, cfg, dataset.Name)
	sys := NewSystem(system, env)
	return env.Run(sys, workload.Generate(dataset, rate, n, seed))
}

// E2EConfig scales the end-to-end sweeps.
type E2EConfig struct {
	Requests int
	Seed     int64
	Systems  []string
	// Rates per dataset, spanning light load to past the chunked
	// systems' saturation point (where the paper's gaps open up).
	Rates map[string][]float64
}

// DefaultE2EConfig is the full Figure 11 sweep.
func DefaultE2EConfig() E2EConfig {
	return E2EConfig{
		Requests: 300,
		Seed:     42,
		Systems:  SystemNames,
		Rates: map[string][]float64{
			"sharegpt":      {8, 12, 16, 20},
			"azure-code":    {3, 4, 5, 6},
			"arxiv-summary": {1.0, 1.4, 1.8, 2.2},
		},
	}
}

// QuickE2EConfig is a reduced sweep for tests and -short benchmarks.
func QuickE2EConfig() E2EConfig {
	return E2EConfig{
		Requests: 80,
		Seed:     42,
		Systems:  SystemNames,
		Rates: map[string][]float64{
			"sharegpt":      {16},
			"azure-code":    {5},
			"arxiv-summary": {2.0},
		},
	}
}

// --- rendering helpers -------------------------------------------------

// table renders rows of cells with aligned columns.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for i, w := range width {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func powf(x, p float64) float64 { return math.Pow(x, p) }
func f2(v float64) string       { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string       { return fmt.Sprintf("%.3f", v) }

// metricsSLO returns the Azure-Code SLO used by control-plane benches.
func metricsSLO() metrics.SLO { return metrics.SLOFor("azure-code") }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
