package experiments

import (
	"math"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestTable1MatchesPaperExactColumns(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// QKV/Attn/OProj columns are exactly reproducible from the grid
	// model (Table 1 of the paper).
	want := []struct {
		seq              int
		qkv, attn, oproj float64
	}{
		{1024, 11.1, 21.0, 40.7},
		{2048, 11.1, 5.2, 21.0},
		{4096, 11.1, 5.2, 5.2},
		{16384, 1.9, 0.2, 0.2},
	}
	for i, w := range want {
		r := rows[i]
		if r.SeqLen != w.seq {
			t.Fatalf("row %d seq = %d", i, r.SeqLen)
		}
		if math.Abs(r.QKV-w.qkv) > 0.15 || math.Abs(r.Attn-w.attn) > 0.15 || math.Abs(r.OProj-w.oproj) > 0.15 {
			t.Errorf("seq %d: got qkv=%.1f attn=%.1f oproj=%.1f, want %.1f/%.1f/%.1f",
				w.seq, r.QKV, r.Attn, r.OProj, w.qkv, w.attn, w.oproj)
		}
	}
	// Idle ratios shrink with sequence length (total column shape).
	if !(rows[0].Total > rows[1].Total && rows[1].Total >= rows[2].Total && rows[2].Total > rows[3].Total) {
		t.Errorf("total idle not decreasing: %+v", rows)
	}
	if out := RenderTable1(rows); !strings.Contains(out, "16384") {
		t.Error("render missing rows")
	}
}

func TestFigure2Shapes(t *testing.T) {
	rows, sums := Figure2()
	if len(sums) != 4 {
		t.Fatalf("summaries = %d", len(sums))
	}
	// Aggregate compute utilization stays below the MLP peak (~0.92)
	// for every length: the paper's headline that whole layers sustain
	// only 70-76%.
	for _, s := range sums {
		if s.ComputeUtil >= 0.92 {
			t.Errorf("seq %d aggregate util %.2f not below peak-sustainable", s.SeqLen, s.ComputeUtil)
		}
		if s.ComputeUtil < 0.4 {
			t.Errorf("seq %d aggregate util %.2f implausibly low", s.SeqLen, s.ComputeUtil)
		}
	}
	// MLP is the most compute-efficient operator; attention's share of
	// time grows with length.
	attnShare := map[int]float64{}
	for _, r := range rows {
		if r.Op == "attn" {
			attnShare[r.SeqLen] = r.TimeFrac
		}
		if r.Op == "mlp" && r.ComputeUtil < 0.6 {
			t.Errorf("mlp util %.2f at seq %d too low", r.ComputeUtil, r.SeqLen)
		}
	}
	if attnShare[16384] <= attnShare[1024] {
		t.Errorf("attention share not growing: %v", attnShare)
	}
	// At 16k attention should dominate a large share (~34% in paper).
	if attnShare[16384] < 0.2 {
		t.Errorf("attention share at 16k = %.2f, want ≳0.2", attnShare[16384])
	}
	_ = RenderFigure2(rows, sums)
}

func TestFigure4Shapes(t *testing.T) {
	r := Figure4()
	// Chunked total latency exceeds unchunked for both chunk sizes, and
	// more so for the smaller chunk (paper: 1.13x at 1k).
	if r.TotalLatency[1024] <= r.Unchunked || r.TotalLatency[2048] <= r.Unchunked {
		t.Fatalf("chunking did not add latency: %+v", r.TotalLatency)
	}
	if r.TotalLatency[1024] <= r.TotalLatency[2048] {
		t.Errorf("smaller chunks should cost more total: %v vs %v",
			r.TotalLatency[1024], r.TotalLatency[2048])
	}
	// Per-chunk latency grows across the sequence (final ≈1.9x first in
	// the paper for cs=1024).
	var first, last Figure4Chunk
	for _, c := range r.Chunks {
		if c.ChunkSize != 1024 {
			continue
		}
		if c.Index == 0 {
			first = c
		}
		if c.Index == 15 {
			last = c
		}
	}
	growth := last.Latency / first.Latency
	if growth < 1.3 {
		t.Errorf("final/first chunk latency = %.2fx, want ≥1.3x", growth)
	}
	// Utilization of later chunks degrades below the first chunk's.
	if last.Util >= first.Util {
		t.Errorf("utilization did not degrade: first %.2f last %.2f", first.Util, last.Util)
	}
	_ = RenderFigure4(r)
}

func TestFigure7Shapes(t *testing.T) {
	rows := Figure7()
	// Decode scales super-linearly: speedup/frac > 1 at small
	// fractions. Prefill scales ~linearly: ratio ≈ 1 or below... the
	// tail-wave can make partial allocations relatively better, so
	// allow a small margin.
	for _, r := range rows {
		if r.SMs == 108 {
			if math.Abs(r.Speedup-1) > 1e-9 {
				t.Errorf("full-GPU speedup != 1: %+v", r)
			}
			continue
		}
		if r.Phase == "decode" && r.SMs <= 36 {
			if r.Speedup/r.SMFrac < 1.2 {
				t.Errorf("decode not super-linear at %d SMs: %+v", r.SMs, r)
			}
		}
		if r.Phase == "prefill" && r.Param == 16384 {
			if r.Speedup/r.SMFrac > 1.25 {
				t.Errorf("long prefill scaling too super-linear: %+v", r)
			}
		}
	}
	_ = RenderFigure7(rows)
}

func TestFigure10Shapes(t *testing.T) {
	rows := Figure10(2000, 7)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	med := map[string]int{}
	for _, r := range rows {
		// Quantiles monotone.
		for i := 1; i < len(r.Quantiles); i++ {
			if r.Quantiles[i] < r.Quantiles[i-1] {
				t.Fatalf("non-monotone quantiles: %+v", r)
			}
		}
		med[r.Dataset+"/"+r.Kind] = r.Quantiles[2]
	}
	if !(med["arxiv-summary/input"] > med["azure-code/input"] && med["azure-code/input"] > med["sharegpt/input"]) {
		t.Errorf("input medians out of order: %v", med)
	}
	if med["azure-code/output"] >= med["sharegpt/output"] {
		t.Errorf("azure outputs should be shortest: %v", med)
	}
	_ = RenderFigure10(rows)
}

func TestFigure11QuickShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e sweep")
	}
	rows := Figure11(QuickE2EConfig())
	avg, max, per := Figure11Headline(rows)
	// Bullet must show a positive average throughput gain, with the
	// magnitude in the paper's ballpark (1.26x avg, 1.55x max).
	if avg < 1.02 {
		t.Fatalf("avg throughput gain %.3fx: Bullet does not win", avg)
	}
	if max < avg {
		t.Fatalf("max %.2f < avg %.2f", max, avg)
	}
	// Bullet beats every chunked baseline on SLO attainment per point
	// at these near-saturation rates.
	byKey := map[string]Figure11Row{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.System] = r
	}
	for _, ds := range []string{"azure-code", "arxiv-summary"} {
		b := byKey[ds+"/bullet"]
		for _, sys := range []string{"vllm-1024", "sglang-1024", "sglang-2048"} {
			o := byKey[ds+"/"+sys]
			if b.SLOAttainment < o.SLOAttainment {
				t.Errorf("%s: bullet SLO %.2f below %s %.2f", ds, b.SLOAttainment, sys, o.SLOAttainment)
			}
			if b.MeanTTFT > o.MeanTTFT {
				t.Errorf("%s: bullet TTFT %.3f above %s %.3f", ds, b.MeanTTFT, sys, o.MeanTTFT)
			}
		}
	}
	_ = per
	_ = RenderFigure11(rows)
}

func TestFigure12Shapes(t *testing.T) {
	r := Figure12(3.5, 60, 11, 40)
	if len(r.SampleTimes) != 40 {
		t.Fatalf("samples = %d", len(r.SampleTimes))
	}
	// Bullet's prefill SM allocation must vary over the bursty trace.
	minSM, maxSM := math.Inf(1), math.Inf(-1)
	for _, v := range r.PrefillSMs {
		if v == 0 {
			continue
		}
		minSM = math.Min(minSM, v)
		maxSM = math.Max(maxSM, v)
	}
	if maxSM-minSM < 6 {
		t.Errorf("prefill SMs barely moved: [%v, %v]", minSM, maxSM)
	}
	// Budget occupancy: chunk + decode tokens ≤ 2048 at all samples.
	for i := range r.HybridChunkTokens {
		if r.HybridChunkTokens[i]+r.HybridDecodeTokens[i] > 2048 {
			t.Errorf("hybrid budget exceeded at sample %d", i)
		}
	}
	// SGLang queueing should exceed Bullet's (paper: 4.17x).
	if r.SGLangQueueMean < r.BulletQueueMean {
		t.Errorf("sglang queue %.3f not above bullet %.3f", r.SGLangQueueMean, r.BulletQueueMean)
	}
	_ = RenderFigure12(r)
}

func TestFigure13Shapes(t *testing.T) {
	rows := Figure13(workload.AzureCode, 5, 100, 21)
	byCfg := map[string]Figure13Row{}
	for _, r := range rows {
		byCfg[r.Config] = r
	}
	dyn := byCfg["bullet"]
	// Dynamic must be at least as good as every fixed point on SLO
	// attainment (the Fig. 13 conclusion: no optimal fixed allocation).
	for _, cfg := range []string{"bullet-sm60", "bullet-sm84", "bullet-sm108"} {
		if dyn.SLOAttainment < byCfg[cfg].SLOAttainment-0.02 {
			t.Errorf("dynamic SLO %.2f below %s %.2f", dyn.SLOAttainment, cfg, byCfg[cfg].SLOAttainment)
		}
	}
	// Fixed points trade off: fewer prefill SMs → worse TTFT.
	if byCfg["bullet-sm60"].MeanTTFT <= byCfg["bullet-sm108"].MeanTTFT {
		t.Errorf("sm60 TTFT %.3f not above sm108 %.3f",
			byCfg["bullet-sm60"].MeanTTFT, byCfg["bullet-sm108"].MeanTTFT)
	}
	_ = RenderFigure13(rows)
}

func TestFigure14Shapes(t *testing.T) {
	rows := Figure14(map[string]float64{"azure-code": 5}, 100, 31)
	byVar := map[string]Figure14Row{}
	for _, r := range rows {
		byVar[r.Variant] = r
	}
	full := byVar["bullet"]
	naive := byVar["bullet-naive"]
	// The full system must beat Naive on SLO attainment.
	if full.SLOAttainment < naive.SLOAttainment {
		t.Errorf("full SLO %.2f below naive %.2f", full.SLOAttainment, naive.SLOAttainment)
	}
	// Every variant must complete; every row populated.
	for _, v := range []string{"bullet-naive", "bullet-partition", "bullet-scheduler", "bullet"} {
		if _, ok := byVar[v]; !ok {
			t.Fatalf("missing variant %s", v)
		}
	}
	_ = RenderFigure14(rows)
}

func TestFigure15Shapes(t *testing.T) {
	r := Figure15(60, 3)
	if r.OnlinePairs < 100 {
		t.Fatalf("too few online pairs: %d", r.OnlinePairs)
	}
	// The paper reports ~19% mean relative error and ~88% SLO
	// classification accuracy; require the same regime.
	if r.OnlineMeanRel > 0.5 {
		t.Errorf("online mean rel err %.2f too large", r.OnlineMeanRel)
	}
	if r.OnlineAccuracy < 0.7 {
		t.Errorf("online classification accuracy %.2f too low", r.OnlineAccuracy)
	}
	if r.OfflineAccuracy < 0.7 {
		t.Errorf("offline classification accuracy %.2f too low", r.OfflineAccuracy)
	}
	_ = RenderFigure15(r)
}

func TestTable3Overheads(t *testing.T) {
	// A synthetic timer keeps this test (and the rendered table) exactly
	// reproducible: every measured section reads the timer twice, so each
	// duration is a fixed 1 us.
	rows := Table3(500, nil)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MeanUs <= 0 {
			t.Errorf("%s mean = %v", r.Component, r.MeanUs)
		}
		// All control-plane paths must be well under a millisecond.
		if r.MeanUs > 1000 {
			t.Errorf("%s mean %v us too slow", r.Component, r.MeanUs)
		}
	}
	_ = RenderTable3(rows)
}

func TestNewSystemUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown system accepted")
		}
	}()
	RunOne("no-such-system", workload.ShareGPT, 1, 1, 1)
}

func TestRenderTableAlignment(t *testing.T) {
	out := table([]string{"a", "bbb"}, [][]string{{"xxxx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[0]) == 0 || len(lines[1]) < len(lines[0])-2 {
		t.Fatalf("bad table:\n%s", out)
	}
}
