package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/faults"
	"repro/internal/forkjoin"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// These experiments go beyond the paper's figures: ablation sweeps over
// Bullet's own design choices (the knobs DESIGN.md calls out) and the
// disaggregation comparison the related-work section argues about.

// KnobRow is one configuration point of a design-knob sweep.
type KnobRow struct {
	Knob          string
	Value         string
	MeanTTFT      float64
	P90NormTTFT   float64
	MeanTPOTMs    float64
	Throughput    float64
	SLOAttainment float64
}

func runBulletOpts(opts core.Options, d workload.Dataset, rate float64, n int, seed int64,
	tweak func(*core.Bullet)) serving.Result {
	spec, cfg := Platform()
	env := serving.NewEnv(spec, cfg, d.Name)
	b := core.New(env, opts)
	if tweak != nil {
		tweak(b)
	}
	return env.Run(b, workload.Generate(d, rate, n, seed))
}

func knobRow(knob, value string, res serving.Result) KnobRow {
	s := res.Summary
	return KnobRow{
		Knob: knob, Value: value,
		MeanTTFT: s.MeanTTFT.Float(), P90NormTTFT: s.P90NormTTFT,
		MeanTPOTMs: s.MeanTPOTMs, Throughput: s.Throughput,
		SLOAttainment: s.SLOAttainment,
	}
}

// AblationLayerGroup sweeps how many layers the prefill engine launches
// per scheduling cycle: 1 gives the finest reaction time at the highest
// synchronization cost.
func AblationLayerGroup(d workload.Dataset, rate float64, n int, seed int64) []KnobRow {
	var rows []KnobRow
	for _, g := range []int{1, 2, 4, 8} {
		res := runBulletOpts(core.Options{Mode: core.ModeFull, LayerGroup: g}, d, rate, n, seed, nil)
		rows = append(rows, knobRow("layer-group", fmt.Sprintf("%d", g), res))
	}
	return rows
}

// AblationSMStep sweeps the resource manager's partition granularity
// (the paper profiles at 6; the hardware mask granularity is 2).
func AblationSMStep(d workload.Dataset, rate float64, n int, seed int64) []KnobRow {
	var rows []KnobRow
	for _, step := range []int{2, 6, 12, 36} {
		res := runBulletOpts(core.Options{Mode: core.ModeFull, SMStep: step}, d, rate, n, seed, nil)
		rows = append(rows, knobRow("sm-step", fmt.Sprintf("%d", step), res))
	}
	return rows
}

// AblationMetadataLatency sweeps the inter-engine metadata path cost,
// checking the claim that the decentralized design tolerates a slow
// control plane.
func AblationMetadataLatency(d workload.Dataset, rate float64, n int, seed int64) []KnobRow {
	var rows []KnobRow
	for _, lat := range []sim.Time{0.01e-3, 0.21e-3, 1e-3, 5e-3} {
		res := runBulletOpts(core.Options{Mode: core.ModeFull, MetadataLatency: lat}, d, rate, n, seed, nil)
		rows = append(rows, knobRow("metadata-latency", fmt.Sprintf("%.2fms", lat.Ms()), res))
	}
	return rows
}

// AblationEstimator compares estimator configurations: the purely
// analytical model, the profile-fitted model, and the fitted model with
// the online feedback loop frozen.
func AblationEstimator(d workload.Dataset, rate float64, n int, seed int64) []KnobRow {
	spec, cfg := Platform()
	fitted := core.FittedParams(cfg, spec)
	var rows []KnobRow
	res := runBulletOpts(core.Options{Mode: core.ModeFull, Params: estimator.DefaultParams()}, d, rate, n, seed, nil)
	rows = append(rows, knobRow("estimator", "analytic", res))
	res = runBulletOpts(core.Options{Mode: core.ModeFull, Params: fitted}, d, rate, n, seed, nil)
	rows = append(rows, knobRow("estimator", "fitted", res))
	res = runBulletOpts(core.Options{Mode: core.ModeFull, Params: fitted}, d, rate, n, seed,
		func(b *core.Bullet) { b.Estimator.SetFeedbackEnabled(false) })
	rows = append(rows, knobRow("estimator", "fitted-no-feedback", res))
	return rows
}

// AblationBurstiness sweeps the arrival process's coefficient of
// variation at a fixed mean rate.
func AblationBurstiness(d workload.Dataset, rate float64, n int, seed int64) []KnobRow {
	spec, cfg := Platform()
	var rows []KnobRow
	for _, cv := range []float64{0.5, 1.0, 2.0, 4.0} {
		env := serving.NewEnv(spec, cfg, d.Name)
		b := core.New(env, core.Options{Mode: core.ModeFull})
		res := env.Run(b, workload.GenerateGamma(d, rate, cv, n, seed))
		rows = append(rows, knobRow("arrival-cv", fmt.Sprintf("%.1f", cv), res))
	}
	return rows
}

// RenderKnobRows prints a knob sweep.
func RenderKnobRows(title string, rows []KnobRow) string {
	header := []string{"Knob", "Value", "TTFT(s)", "P90nTTFT", "TPOT(ms)", "Thr", "SLO"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Knob, r.Value, f3(r.MeanTTFT), f2(r.P90NormTTFT), f1(r.MeanTPOTMs),
			f2(r.Throughput), f2(r.SLOAttainment),
		})
	}
	return title + "\n" + table(header, cells)
}

// DisaggRow is one point of the disaggregation comparison.
type DisaggRow struct {
	System        string
	GPUs          int
	Rate          float64
	MeanTTFT      float64
	MeanTPOTMs    float64
	Throughput    float64
	PerGPUThru    float64
	SLOAttainment float64
}

// ExtDisagg compares Bullet (one GPU) against DistServe-style
// disaggregation (two GPUs, NVLink or PCIe interconnect) on the same
// trace. Throughput is also normalized per GPU — the paper's argument is
// that Bullet reaches a disaggregation-like operating point on half the
// hardware.
func ExtDisagg(d workload.Dataset, rates []float64, n int, seed int64) []DisaggRow {
	systems := []struct {
		name string
		gpus int
	}{
		{"bullet", 1},
		{"disagg-nvlink", 2},
		{"disagg-pcie", 2},
	}
	var rows []DisaggRow
	for _, rate := range rates {
		for _, sys := range systems {
			res := RunOne(sys.name, d, rate, n, seed)
			s := res.Summary
			rows = append(rows, DisaggRow{
				System: sys.name, GPUs: sys.gpus, Rate: rate,
				MeanTTFT: s.MeanTTFT.Float(), MeanTPOTMs: s.MeanTPOTMs,
				Throughput: s.Throughput, PerGPUThru: s.Throughput / float64(sys.gpus),
				SLOAttainment: s.SLOAttainment,
			})
		}
	}
	return rows
}

// RenderExtDisagg prints the disaggregation comparison.
func RenderExtDisagg(rows []DisaggRow) string {
	header := []string{"Rate", "System", "GPUs", "TTFT(s)", "TPOT(ms)", "Thr", "Thr/GPU", "SLO"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			f1(r.Rate), r.System, itoa(r.GPUs), f3(r.MeanTTFT), f1(r.MeanTPOTMs),
			f2(r.Throughput), f2(r.PerGPUThru), f2(r.SLOAttainment),
		})
	}
	var sb strings.Builder
	sb.WriteString("Extension: Bullet (1 GPU) vs prefill/decode disaggregation (2 GPUs)\n")
	sb.WriteString(table(header, cells))
	return sb.String()
}

// CrossDeviceRow is one (device, system) end-to-end point.
type CrossDeviceRow struct {
	Device        string
	System        string
	MeanTTFT      float64
	MeanTPOTMs    float64
	Throughput    float64
	SLOAttainment float64
}

// ExtCrossDevice runs Bullet and SGLang-1024 on the A100 and H100
// profiles, checking that the orchestration generalizes across SM counts
// and roofline ratios.
func ExtCrossDevice(d workload.Dataset, rate float64, n int, seed int64) []CrossDeviceRow {
	var rows []CrossDeviceRow
	for _, spec := range []struct{ name string }{{"a100"}, {"h100"}} {
		for _, sys := range []string{"bullet", "sglang-1024"} {
			res := runOnDevice(spec.name, sys, d, rate, n, seed)
			s := res.Summary
			rows = append(rows, CrossDeviceRow{
				Device: spec.name, System: sys,
				MeanTTFT: s.MeanTTFT.Float(), MeanTPOTMs: s.MeanTPOTMs,
				Throughput: s.Throughput, SLOAttainment: s.SLOAttainment,
			})
		}
	}
	return rows
}

// RenderExtCrossDevice prints the cross-device comparison.
func RenderExtCrossDevice(rows []CrossDeviceRow) string {
	header := []string{"Device", "System", "TTFT(s)", "TPOT(ms)", "Thr", "SLO"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Device, r.System, f3(r.MeanTTFT), f1(r.MeanTPOTMs), f2(r.Throughput), f2(r.SLOAttainment),
		})
	}
	return "Extension: cross-device generalization (A100 vs H100)\n" + table(header, cells)
}

// PrefixRow is one point of the shared-prefix caching extension study.
type PrefixRow struct {
	System        string
	ShareProb     float64
	MeanTTFT      float64
	Throughput    float64
	SLOAttainment float64
	HitTokens     int64
	HitRate       float64
}

// ExtPrefixCache compares Bullet with and without RadixAttention-style
// prefix reuse on workloads whose requests share system prompts with the
// given probabilities.
func ExtPrefixCache(d workload.Dataset, rate float64, n int, seed int64, shareProbs []float64) []PrefixRow {
	spec, cfg := Platform()
	var rows []PrefixRow
	for _, p := range shareProbs {
		trace := workload.GenerateShared(d, rate, n, seed, 4, 1024, p)
		for _, enable := range []bool{false, true} {
			env := serving.NewEnv(spec, cfg, d.Name)
			b := core.New(env, core.Options{Mode: core.ModeFull, EnablePrefixCache: enable})
			res := env.Run(b, trace)
			row := PrefixRow{
				System: b.Name(), ShareProb: p,
				MeanTTFT: res.Summary.MeanTTFT.Float(), Throughput: res.Summary.Throughput,
				SLOAttainment: res.Summary.SLOAttainment,
			}
			if b.PrefixCache != nil {
				st := b.PrefixCache.Stats()
				row.HitTokens = st.HitTokens
				if st.Hits+st.Misses > 0 {
					row.HitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// RenderExtPrefixCache prints the prefix-caching study.
func RenderExtPrefixCache(rows []PrefixRow) string {
	header := []string{"ShareProb", "System", "TTFT(s)", "Thr", "SLO", "HitRate", "SavedTokens"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			f2(r.ShareProb), r.System, f3(r.MeanTTFT), f2(r.Throughput),
			f2(r.SLOAttainment), f2(r.HitRate), fmt.Sprintf("%d", r.HitTokens),
		})
	}
	return "Extension: shared-prefix (RadixAttention-style) caching\n" + table(header, cells)
}

// ClusterRow is one point of the scale-out extension study.
type ClusterRow struct {
	Replicas      int
	Policy        string
	Rate          float64
	MeanTTFT      float64
	Throughput    float64
	PerGPUThru    float64
	SLOAttainment float64
}

// ExtCluster scales Bullet horizontally: 1, 2 and 4 replicas behind a
// least-loaded router at a rate that saturates a single GPU. Rows run
// through the forkjoin harness at the default width.
func ExtCluster(d workload.Dataset, rate float64, n int, seed int64) []ClusterRow {
	return ExtClusterN(d, rate, n, seed, 0)
}

// ExtClusterN is ExtCluster with an explicit fork/join width: the outer
// width bounds how many sweep rows run concurrently, and each row's
// cluster advances its replicas serially (one nested level of
// parallelism is enough; rows outnumber spare cores). workers == 1
// reproduces the fully serial sweep byte for byte — the equivalence
// ci.sh pins via the bulletsim -cluster-sweep gate.
func ExtClusterN(d workload.Dataset, rate float64, n int, seed int64, workers int) []ClusterRow {
	spec, cfg := Platform()
	// Profile once before forking so the rows share the memoized fit
	// instead of racing to compute it.
	core.FittedParams(cfg, spec)
	sizes := []int{1, 2, 4}
	return forkjoin.Map(len(sizes), workers, func(i int) ClusterRow {
		replicas := sizes[i]
		env := serving.NewEnv(spec, cfg, d.Name)
		var sys serving.System
		if replicas == 1 {
			sys = core.New(env, core.Options{Mode: core.ModeFull})
		} else {
			sys = cluster.New(env, cluster.Config{
				Replicas: replicas, Policy: cluster.LeastLoaded,
				Options: core.Options{Mode: core.ModeFull}, Workers: 1,
			})
		}
		res := env.Run(sys, workload.Generate(d, rate, n, seed))
		if c, ok := sys.(*cluster.Cluster); ok {
			c.CheckDrained()
		}
		s := res.Summary
		return ClusterRow{
			Replicas: replicas, Policy: string(cluster.LeastLoaded), Rate: rate,
			MeanTTFT: s.MeanTTFT.Float(), Throughput: s.Throughput,
			PerGPUThru: s.Throughput / float64(replicas), SLOAttainment: s.SLOAttainment,
		}
	})
}

// RenderExtCluster prints the scale-out study.
func RenderExtCluster(rows []ClusterRow) string {
	header := []string{"Replicas", "Rate", "TTFT(s)", "Thr", "Thr/GPU", "SLO"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			itoa(r.Replicas), f1(r.Rate), f3(r.MeanTTFT), f2(r.Throughput),
			f2(r.PerGPUThru), f2(r.SLOAttainment),
		})
	}
	return "Extension: horizontal scale-out of Bullet replicas (least-loaded router)\n" + table(header, cells)
}

// FaultRow is one (degrade-rate, system) point of the resilience study.
type FaultRow struct {
	System        string
	DegradeRate   float64 // SM-degradation events per second of virtual time
	Completed     int
	Shed          int
	Goodput       float64
	Throughput    float64
	SLOAttainment float64
	Resilience    metrics.Resilience
}

// FaultSystems are the default ext-faults contenders: dynamic Bullet
// against two MuxServe-style static splits. Under SM degradation the
// dynamic system re-runs Algorithm 1 on the shrunken budget while the
// statics keep their (clamped) fixed quota — the gap this study measures.
var FaultSystems = []string{"bullet", "bullet-sm54", "bullet-sm84"}

// ExtFaults sweeps the SM-degradation rate over one shared trace and
// fault schedule for each system: every contender sees exactly the same
// arrivals and the same fault timeline, so the rows isolate the
// resilience mechanism. Engine stalls and crashes are disabled here —
// SM loss is the fault mode where the provisioning policy matters.
func ExtFaults(d workload.Dataset, rate float64, n int, seed int64, degradeRates []float64, systems []string) []FaultRow {
	spec, cfg := Platform()
	trace := workload.Generate(d, rate, n, seed)
	// Cover the arrival span plus drain slack with faults.
	horizon := units.Scale(units.Over(units.Seconds(float64(n)), rate), 1.5)
	var rows []FaultRow
	for _, fr := range degradeRates {
		fcfg := faults.DefaultConfig(spec.NumSMs, horizon)
		fcfg.Seed = seed + 1
		fcfg.DegradeRate = fr
		fcfg.StallRate = 0
		sched := faults.Generate(fcfg)
		for _, name := range systems {
			env := serving.NewEnv(spec, cfg, d.Name)
			sys := NewSystem(name, env)
			b, ok := sys.(*core.Bullet)
			if !ok {
				panic(fmt.Sprintf("experiments: ext-faults needs a Bullet variant, got %q", name))
			}
			inj := faults.NewInjector(env.Sim, sched)
			b.AttachFaults(inj, core.DefaultWatchdog())
			inj.Arm()
			res := env.Run(sys, trace)
			rl := b.Resilience()
			rl.FaultsInjected = inj.Injected()
			rl.Downtime = inj.ScheduledDowntime()
			rows = append(rows, FaultRow{
				System: res.System, DegradeRate: fr,
				Completed: res.Summary.Requests, Shed: res.Shed,
				Goodput: res.Summary.Goodput, Throughput: res.Summary.Throughput,
				SLOAttainment: res.Summary.SLOAttainment, Resilience: rl,
			})
		}
	}
	return rows
}

// RenderExtFaults prints the resilience study.
func RenderExtFaults(rows []FaultRow) string {
	header := []string{"DegradeRate", "System", "Done", "Shed", "Goodput", "Thr", "SLO", "Faults", "Recov", "MTTR(s)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			f2(r.DegradeRate), r.System, itoa(r.Completed), itoa(r.Shed),
			f2(r.Goodput), f2(r.Throughput), f2(r.SLOAttainment),
			itoa(r.Resilience.FaultsInjected), itoa(r.Resilience.Recoveries),
			f2(r.Resilience.MTTR().Float()),
		})
	}
	return "Extension: goodput under injected SM degradation (dynamic vs static split)\n" + table(header, cells)
}

// FindKnee binary-searches the highest request rate (within [lo, hi]) at
// which a system still meets the target SLO attainment. This is the
// capacity-planning question Fig. 11 answers pointwise; the knee
// condenses it to one number per system.
func FindKnee(system string, d workload.Dataset, target float64, n int, seed int64, lo, hi float64) float64 {
	attainAt := func(rate float64) float64 {
		return RunOne(system, d, rate, n, seed).Summary.SLOAttainment
	}
	if attainAt(lo) < target {
		return 0 // infeasible even at the low end
	}
	if attainAt(hi) >= target {
		return hi
	}
	for i := 0; i < 7; i++ {
		mid := (lo + hi) / 2
		if attainAt(mid) >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// KneeRow is one system's serving capacity.
type KneeRow struct {
	System string
	Knee   float64 // req/s at the target SLO attainment
}

// ExtKnees finds each system's goodput knee on a dataset.
func ExtKnees(d workload.Dataset, target float64, n int, seed int64, lo, hi float64, systems []string) []KneeRow {
	var rows []KneeRow
	for _, sys := range systems {
		rows = append(rows, KneeRow{System: sys, Knee: FindKnee(sys, d, target, n, seed, lo, hi)})
	}
	return rows
}

// RenderExtKnees prints the capacity table.
func RenderExtKnees(d string, target float64, rows []KneeRow) string {
	header := []string{"System", "MaxRate(req/s)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.System, f2(r.Knee)})
	}
	return fmt.Sprintf("Extension: goodput knee on %s (max rate with ≥%.0f%% SLO attainment)\n",
		d, 100*target) + table(header, cells)
}

// TPRow is one tensor-parallel configuration's end-to-end result.
type TPRow struct {
	TP            int
	MeanTTFT      float64
	MeanTPOTMs    float64
	Throughput    float64
	PerGPUThru    float64
	SLOAttainment float64
}

// ExtTensorParallel serves the same workload with the model sharded
// across 1, 2 and 4 GPUs (Megatron TP): latencies shrink with the shard
// compute, but allreduces and replicated elementwise work erode per-GPU
// efficiency — the classic TP tradeoff Bullet is orthogonal to.
func ExtTensorParallel(d workload.Dataset, rate float64, n int, seed int64) []TPRow {
	spec, cfg := Platform()
	var rows []TPRow
	for _, tp := range []int{1, 2, 4} {
		mc := cfg.TP(tp)
		env := serving.NewEnv(spec, mc, d.Name)
		b := core.New(env, core.Options{Mode: core.ModeFull})
		res := env.Run(b, workload.Generate(d, rate, n, seed))
		s := res.Summary
		rows = append(rows, TPRow{
			TP: tp, MeanTTFT: s.MeanTTFT.Float(), MeanTPOTMs: s.MeanTPOTMs,
			Throughput: s.Throughput, PerGPUThru: s.Throughput / float64(tp),
			SLOAttainment: s.SLOAttainment,
		})
	}
	return rows
}

// RenderExtTensorParallel prints the TP study.
func RenderExtTensorParallel(rows []TPRow) string {
	header := []string{"TP", "TTFT(s)", "TPOT(ms)", "Thr", "Thr/GPU", "SLO"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			itoa(r.TP), f3(r.MeanTTFT), f1(r.MeanTPOTMs), f2(r.Throughput),
			f2(r.PerGPUThru), f2(r.SLOAttainment),
		})
	}
	return "Extension: Megatron tensor parallelism under Bullet (NVLink allreduce)\n" + table(header, cells)
}
