package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestAblationLayerGroup(t *testing.T) {
	rows := AblationLayerGroup(workload.AzureCode, 4, 60, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 || r.SLOAttainment < 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	// All layer groups should serve this moderate load acceptably.
	for _, r := range rows {
		if r.SLOAttainment < 0.7 {
			t.Errorf("layer group %s collapsed: %+v", r.Value, r)
		}
	}
	out := RenderKnobRows("layer group sweep", rows)
	if !strings.Contains(out, "layer-group") {
		t.Fatal("render missing rows")
	}
}

func TestAblationSMStep(t *testing.T) {
	rows := AblationSMStep(workload.AzureCode, 4, 50, 2)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Coarse 36-SM granularity must not beat fine 6-SM granularity on
	// SLO attainment by a wide margin (sanity: granularity helps or is
	// neutral).
	byVal := map[string]KnobRow{}
	for _, r := range rows {
		byVal[r.Value] = r
	}
	if byVal["6"].SLOAttainment < byVal["36"].SLOAttainment-0.1 {
		t.Errorf("6-SM granularity much worse than 36: %+v vs %+v", byVal["6"], byVal["36"])
	}
}

func TestAblationMetadataLatency(t *testing.T) {
	rows := AblationMetadataLatency(workload.AzureCode, 4, 50, 3)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A 5ms control plane should still serve, degrading gracefully.
	last := rows[len(rows)-1]
	if last.SLOAttainment < rows[0].SLOAttainment-0.3 {
		t.Errorf("metadata latency collapse: %+v vs %+v", last, rows[0])
	}
}

func TestAblationEstimator(t *testing.T) {
	rows := AblationEstimator(workload.AzureCode, 4, 50, 4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := []string{"analytic", "fitted", "fitted-no-feedback"}
	for i, r := range rows {
		if r.Value != names[i] {
			t.Fatalf("row %d = %s", i, r.Value)
		}
		if r.Throughput <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
}

func TestAblationBurstiness(t *testing.T) {
	rows := AblationBurstiness(workload.AzureCode, 4, 60, 5)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Higher burstiness cannot improve the P90 normalized TTFT.
	if rows[3].P90NormTTFT < rows[0].P90NormTTFT*0.8 {
		t.Errorf("cv=4 tail (%v) implausibly better than cv=0.5 (%v)",
			rows[3].P90NormTTFT, rows[0].P90NormTTFT)
	}
}

func TestExtDisagg(t *testing.T) {
	rows := ExtDisagg(workload.AzureCode, []float64{3}, 50, 6)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]DisaggRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	// Per-GPU throughput: Bullet on one GPU must beat the 2-GPU pair's
	// per-GPU number (the orthogonality argument).
	if byName["bullet"].PerGPUThru <= byName["disagg-nvlink"].PerGPUThru {
		t.Errorf("bullet per-GPU %.2f not above disagg %.2f",
			byName["bullet"].PerGPUThru, byName["disagg-nvlink"].PerGPUThru)
	}
	// PCIe migration hurts TTFT-to-decode handoff relative to NVLink.
	if byName["disagg-pcie"].MeanTPOTMs < byName["disagg-nvlink"].MeanTPOTMs*0.99 {
		t.Errorf("pcie TPOT %.1f better than nvlink %.1f",
			byName["disagg-pcie"].MeanTPOTMs, byName["disagg-nvlink"].MeanTPOTMs)
	}
	_ = RenderExtDisagg(rows)
}

func TestExtCrossDevice(t *testing.T) {
	rows := ExtCrossDevice(workload.ShareGPT, 10, 50, 7)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var a100b, h100b CrossDeviceRow
	for _, r := range rows {
		if r.System == "bullet" {
			if r.Device == "a100" {
				a100b = r
			} else {
				h100b = r
			}
		}
	}
	// The H100 is strictly faster: latencies must improve.
	if h100b.MeanTTFT >= a100b.MeanTTFT || h100b.MeanTPOTMs >= a100b.MeanTPOTMs {
		t.Errorf("H100 not faster: %+v vs %+v", h100b, a100b)
	}
	_ = RenderExtCrossDevice(rows)
}

func TestExtPrefixCache(t *testing.T) {
	rows := ExtPrefixCache(workload.AzureCode, 4, 80, 8, []float64{0.8})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	off, on := rows[0], rows[1]
	if on.System != "bullet+prefix" || off.System != "bullet" {
		t.Fatalf("systems = %s / %s", off.System, on.System)
	}
	if on.HitTokens == 0 || on.HitRate == 0 {
		t.Fatalf("no cache hits: %+v", on)
	}
	// Skipping cached prefixes must not hurt TTFT; with 80%% sharing it
	// should help.
	if on.MeanTTFT > off.MeanTTFT*1.05 {
		t.Errorf("prefix cache worsened TTFT: %.3f vs %.3f", on.MeanTTFT, off.MeanTTFT)
	}
	_ = RenderExtPrefixCache(rows)
}

func TestPrefixCacheDeterminism(t *testing.T) {
	a := ExtPrefixCache(workload.ShareGPT, 8, 50, 9, []float64{0.5})
	b := ExtPrefixCache(workload.ShareGPT, 8, 50, 9, []float64{0.5})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestExtCluster(t *testing.T) {
	rows := ExtCluster(workload.AzureCode, 9, 60, 10)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More replicas: better TTFT, higher total throughput, lower
	// per-GPU throughput (diminishing utilization at fixed load).
	if !(rows[1].MeanTTFT < rows[0].MeanTTFT && rows[2].MeanTTFT < rows[1].MeanTTFT) {
		t.Errorf("TTFT not improving with replicas: %+v", rows)
	}
	if rows[1].Throughput < rows[0].Throughput {
		t.Errorf("2 replicas lost throughput: %+v", rows)
	}
	if rows[2].PerGPUThru > rows[0].PerGPUThru {
		t.Errorf("per-GPU throughput should fall at fixed load: %+v", rows)
	}
	_ = RenderExtCluster(rows)
}

func TestFindKnee(t *testing.T) {
	knee := FindKnee("bullet", workload.AzureCode, 0.9, 60, 11, 1, 12)
	if knee < 3 || knee > 12 {
		t.Fatalf("bullet knee = %.2f req/s, outside plausible range", knee)
	}
	// A clearly infeasible target returns 0.
	if k := FindKnee("bullet", workload.AzureCode, 1.01, 30, 11, 1, 2); k != 0 {
		t.Fatalf("impossible target gave knee %v", k)
	}
}

func TestExtKnees(t *testing.T) {
	rows := ExtKnees(workload.AzureCode, 0.9, 50, 12, 2, 10, []string{"bullet", "sglang-1024"})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.System] = r.Knee
	}
	if byName["bullet"] < byName["sglang-1024"] {
		t.Fatalf("bullet knee %.2f below sglang %.2f", byName["bullet"], byName["sglang-1024"])
	}
	_ = RenderExtKnees("azure-code", 0.9, rows)
}

func TestExtTensorParallel(t *testing.T) {
	rows := ExtTensorParallel(workload.AzureCode, 4, 60, 13)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Latency shrinks with TP degree; per-GPU efficiency falls.
	if !(rows[1].MeanTTFT < rows[0].MeanTTFT && rows[2].MeanTTFT < rows[1].MeanTTFT) {
		t.Errorf("TTFT not improving with TP: %+v", rows)
	}
	if !(rows[1].MeanTPOTMs < rows[0].MeanTPOTMs) {
		t.Errorf("TPOT not improving with TP: %+v", rows)
	}
	if rows[2].PerGPUThru > rows[0].PerGPUThru {
		t.Errorf("per-GPU throughput should fall with TP at fixed load: %+v", rows)
	}
	_ = RenderExtTensorParallel(rows)
}
