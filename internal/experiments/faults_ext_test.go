package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// TestExtFaultsDynamicRetainsGoodput is the ext-faults acceptance check:
// under injected SM degradation, dynamic Bullet (which re-runs
// Algorithm 1 on the shrunken budget) must keep strictly more goodput
// than every static-split configuration on the same trace and the same
// fault schedule.
func TestExtFaultsDynamicRetainsGoodput(t *testing.T) {
	rows := ExtFaults(workload.AzureCode, 4, 100, 42, []float64{0.2}, FaultSystems)
	if len(rows) != len(FaultSystems) {
		t.Fatalf("rows = %d, want %d", len(rows), len(FaultSystems))
	}
	byName := map[string]FaultRow{}
	for _, r := range rows {
		if r.Completed+r.Shed != 100 {
			t.Fatalf("%s: completed %d + shed %d, want 100", r.System, r.Completed, r.Shed)
		}
		if r.Resilience.FaultsInjected == 0 {
			t.Fatalf("%s saw no faults at degrade rate %.2f", r.System, r.DegradeRate)
		}
		byName[r.System] = r
	}
	dyn := byName["bullet"]
	for _, name := range FaultSystems[1:] {
		if st := byName[name]; dyn.Goodput <= st.Goodput {
			t.Errorf("dynamic goodput %.2f not strictly above %s's %.2f under SM degradation",
				dyn.Goodput, name, st.Goodput)
		}
	}
	out := RenderExtFaults(rows)
	if !strings.Contains(out, "bullet-sm54") || !strings.Contains(out, "MTTR") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

// TestFaultRunDeterminism: the whole faulty study — trace generation,
// fault schedule, injection, recovery, accounting — must replay
// bit-identically from the same seeds. (ci.sh runs this under -race as
// the determinism smoke for the fault path.)
func TestFaultRunDeterminism(t *testing.T) {
	a := ExtFaults(workload.AzureCode, 4, 60, 7, []float64{0.15}, FaultSystems)
	b := ExtFaults(workload.AzureCode, 4, 60, 7, []float64{0.15}, FaultSystems)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulty study diverged:\n%+v\nvs\n%+v", a, b)
	}
	for _, r := range a {
		if r.Resilience.FaultsInjected == 0 {
			t.Fatalf("%s: no faults injected", r.System)
		}
	}
}

// TestExtFaultsZeroRateMatchesHealthyRun: a zero-rate schedule is empty,
// and arming it must not perturb the healthy run.
func TestExtFaultsZeroRateMatchesHealthyRun(t *testing.T) {
	rows := ExtFaults(workload.AzureCode, 4, 60, 8, []float64{0}, []string{"bullet"})
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.Resilience != (metrics.Resilience{}) || r.Shed != 0 {
		t.Fatalf("zero-rate row carries fault activity: %+v", r)
	}
	healthy := RunOne("bullet", workload.AzureCode, 4, 60, 8).Summary
	if healthy.Goodput != r.Goodput || healthy.Requests != r.Completed {
		t.Fatalf("armed empty schedule changed the run: %+v vs healthy %+v", r, healthy)
	}
}
