package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/sched"
	"repro/internal/serving"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// FidelityBackends are the ext-fidelity contenders, analytic first: the
// divergence columns of every row are measured against the analytic
// run's decision sequence.
var FidelityBackends = []string{
	gpusim.BackendAnalytic, gpusim.BackendSampled, gpusim.BackendHierarchy,
}

// FidelityRow is one latency backend's serving run over the shared
// trace: how often Algorithm 1 chose a different arm than it did on the
// analytic substrate, how accurate the estimator stayed, and where the
// end-to-end metrics landed.
type FidelityRow struct {
	Backend string
	// Decisions is the number of Algorithm 1 invocations observed.
	Decisions int
	// Diverged counts positions in the decision sequence whose chosen
	// arm differs from the analytic run's (plus any length difference).
	Diverged int
	// EstPairs / EstMeanRel / EstP90Rel summarize the estimator's
	// (prediction, observation) relative error on this substrate.
	EstPairs   int
	EstMeanRel float64
	EstP90Rel  float64

	MeanTTFT      float64 // seconds
	P90TPOTMs     float64
	Throughput    float64
	SLOAttainment float64
}

// branchDivergence counts index-aligned positions where the two decision
// sequences chose different Algorithm 1 arms; extra trailing decisions
// on either side each count as one divergence.
func branchDivergence(ref, got []string) int {
	n := len(ref)
	if len(got) < n {
		n = len(got)
	}
	d := 0
	for i := 0; i < n; i++ {
		if ref[i] != got[i] {
			d++
		}
	}
	return d + (len(ref) - n) + (len(got) - n)
}

// ExtFidelity serves one shared trace on each latency backend and
// reports how scheduler decisions and estimator accuracy move across
// the fidelity spectrum (extension, DESIGN.md §15). The analytic row is
// the reference: its divergence is zero by construction, and its serving
// metrics are byte-for-byte those of a default bullet run.
func ExtFidelity(d workload.Dataset, rate float64, n int, seed int64) []FidelityRow {
	spec, cfg := Platform()
	trace := workload.Generate(d, rate, n, seed)
	var ref []string
	rows := make([]FidelityRow, 0, len(FidelityBackends))
	for _, backend := range FidelityBackends {
		env := serving.NewEnv(spec, cfg, d.Name)
		b := core.New(env, core.Options{Mode: core.ModeFull, Backend: backend})
		var branches []string
		observe := func(t sim.Time, dec sched.Decision) {
			branches = append(branches, dec.Branch)
		}
		b.Prefill.OnDecision = observe
		b.Decode.OnDecision = observe
		var rels []float64
		b.Estimator.OnObserve = func(phase string, predicted, actual units.Seconds) {
			if predicted > 0 && actual > 0 {
				rels = append(rels, units.Ratio(units.Abs(predicted-actual), actual))
			}
		}
		res := env.Run(b, trace)
		if backend == gpusim.BackendAnalytic {
			ref = branches
		}
		row := FidelityRow{
			Backend:       backend,
			Decisions:     len(branches),
			Diverged:      branchDivergence(ref, branches),
			MeanTTFT:      res.Summary.MeanTTFT.Float(),
			P90TPOTMs:     res.Summary.P90TPOTMs,
			Throughput:    res.Summary.Throughput,
			SLOAttainment: res.Summary.SLOAttainment,
		}
		if len(rels) > 0 {
			sort.Float64s(rels)
			sum := 0.0
			for _, r := range rels {
				sum += r
			}
			row.EstPairs = len(rels)
			row.EstMeanRel = sum / float64(len(rels))
			row.EstP90Rel = rels[(len(rels)*9)/10]
		}
		rows = append(rows, row)
	}
	return rows
}

// FidelityClusterRow is one replica-count point of the sampled-backend
// cluster arm.
type FidelityClusterRow struct {
	Replicas      int
	Backend       string
	MeanTTFT      float64
	Throughput    float64
	SLOAttainment float64
}

// ExtFidelityCluster runs the sampled backend under the deterministic
// fork/join cluster harness (1 and 2 replicas). Per-replica backends
// draw from splitmix-forked seed streams, so the rows are identical for
// any worker count — the serial ≡ parallel property the backend
// contract demands (pinned by TestFidelityClusterSerialParallel).
func ExtFidelityCluster(d workload.Dataset, rate float64, n int, seed int64, workers int) []FidelityClusterRow {
	spec, cfg := Platform()
	// Warm the memoized profile and calibration table before forking so
	// parallel replicas share them instead of racing to compute them.
	core.FittedParams(cfg, spec)
	core.FittedLatencyTable(cfg, spec)
	var rows []FidelityClusterRow
	for _, replicas := range []int{1, 2} {
		env := serving.NewEnv(spec, cfg, d.Name)
		opts := core.Options{Mode: core.ModeFull, Backend: gpusim.BackendSampled}
		var sys serving.System
		if replicas == 1 {
			sys = core.New(env, opts)
		} else {
			sys = cluster.New(env, cluster.Config{
				Replicas: replicas, Policy: cluster.LeastLoaded,
				Options: opts, Workers: workers,
			})
		}
		res := env.Run(sys, workload.Generate(d, rate, n, seed))
		if c, ok := sys.(*cluster.Cluster); ok {
			c.CheckDrained()
		}
		rows = append(rows, FidelityClusterRow{
			Replicas: replicas, Backend: gpusim.BackendSampled,
			MeanTTFT:      res.Summary.MeanTTFT.Float(),
			Throughput:    res.Summary.Throughput,
			SLOAttainment: res.Summary.SLOAttainment,
		})
	}
	return rows
}

// RenderExtFidelity prints both ext-fidelity tables.
func RenderExtFidelity(rows []FidelityRow, crows []FidelityClusterRow) string {
	var sb strings.Builder
	sb.WriteString("Extension: latency-backend fidelity (Algorithm 1 divergence, estimator error)\n")
	hdr := []string{"backend", "decisions", "diverged", "est.pairs", "est.mean%", "est.p90%", "ttft(s)", "p90tpot(ms)", "thru", "slo"}
	body := make([][]string, 0, len(rows))
	for _, r := range rows {
		body = append(body, []string{
			r.Backend, itoa(r.Decisions), itoa(r.Diverged), itoa(r.EstPairs),
			f1(100 * r.EstMeanRel), f1(100 * r.EstP90Rel),
			f3(r.MeanTTFT), f2(r.P90TPOTMs), f2(r.Throughput), f2(r.SLOAttainment),
		})
	}
	sb.WriteString(table(hdr, body))
	sb.WriteString("\nSampled-backend cluster arm (forked per-replica draw streams):\n")
	chdr := []string{"replicas", "backend", "ttft(s)", "thru", "slo"}
	cbody := make([][]string, 0, len(crows))
	for _, r := range crows {
		cbody = append(cbody, []string{
			itoa(r.Replicas), r.Backend, f3(r.MeanTTFT), f2(r.Throughput), f2(r.SLOAttainment),
		})
	}
	sb.WriteString(table(chdr, cbody))
	fmt.Fprintf(&sb, "\ndivergence = Algorithm 1 arms differing from the analytic run at the same decision index\n")
	return sb.String()
}
