package experiments

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestExtFidelityDeterminism: the whole fidelity study — all three
// backends, decision sequences, estimator pairs — replays identically.
// ci.sh runs this under -race as part of the determinism smoke.
func TestExtFidelityDeterminism(t *testing.T) {
	a := ExtFidelity(workload.AzureCode, 5, 40, 42)
	b := ExtFidelity(workload.AzureCode, 5, 40, 42)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("ExtFidelity replay diverged:\n%+v\n%+v", a, b)
	}
}

// TestExtFidelityAnalyticReference: the analytic arm is the reference —
// zero divergence by construction — and its serving metrics are exactly
// those of a default bullet run on the same trace (the backend seam adds
// nothing on the default path; the goldens pin the same property at the
// CLI surface).
func TestExtFidelityAnalyticReference(t *testing.T) {
	rows := ExtFidelity(workload.AzureCode, 5, 40, 42)
	if len(rows) != len(FidelityBackends) {
		t.Fatalf("%d rows, want %d", len(rows), len(FidelityBackends))
	}
	ref := rows[0]
	if ref.Backend != "analytic" || ref.Diverged != 0 {
		t.Fatalf("reference row = %+v, want analytic with 0 divergence", ref)
	}
	plain := RunOne("bullet", workload.AzureCode, 5, 40, 42)
	if ref.MeanTTFT != plain.Summary.MeanTTFT.Float() ||
		ref.Throughput != plain.Summary.Throughput ||
		ref.SLOAttainment != plain.Summary.SLOAttainment {
		t.Errorf("analytic arm %+v diverged from plain bullet run %+v", ref, plain.Summary)
	}
	for _, r := range rows {
		if r.Decisions <= 0 {
			t.Errorf("backend %s observed no Algorithm 1 decisions", r.Backend)
		}
		if r.EstPairs <= 0 {
			t.Errorf("backend %s observed no estimator pairs", r.Backend)
		}
	}
	// The sampled substrate must actually perturb the schedule: identical
	// decision sequences would mean the draws never reach Algorithm 1.
	if rows[1].Backend != "sampled" || rows[1].Diverged == 0 {
		t.Errorf("sampled arm %+v shows no scheduler divergence", rows[1])
	}
}

// TestFidelityClusterSerialParallel: the sampled-backend cluster arm is
// byte-identical serial (workers=1) and parallel (workers=4) — the
// concurrency contract extended to per-replica draw streams, which fork
// from the run seed rather than sharing mutable backend state.
func TestFidelityClusterSerialParallel(t *testing.T) {
	ser := ExtFidelityCluster(workload.AzureCode, 8, 40, 42, 1)
	par := ExtFidelityCluster(workload.AzureCode, 8, 40, 42, 4)
	if !reflect.DeepEqual(ser, par) {
		t.Errorf("cluster arm diverged serial vs parallel:\n%+v\n%+v", ser, par)
	}
}
