package experiments

import (
	"repro/internal/workload"
)

// Figure10Row is one dataset's input/output length distribution summary
// (the CDFs of Fig. 10, reported at standard quantiles).
type Figure10Row struct {
	Dataset   string
	Kind      string // "input" or "output"
	Quantiles []int  // at P10, P25, P50, P75, P90, P99
}

// Figure10Probes are the reported CDF quantiles.
var Figure10Probes = []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99}

// Figure10 samples the three workload generators.
func Figure10(n int, seed int64) []Figure10Row {
	var rows []Figure10Row
	for _, d := range workload.Datasets {
		tr := workload.Generate(d, 1, n, seed)
		rows = append(rows,
			Figure10Row{Dataset: d.Name, Kind: "input", Quantiles: workload.CDF(tr.InputLengths(), Figure10Probes)},
			Figure10Row{Dataset: d.Name, Kind: "output", Quantiles: workload.CDF(tr.OutputLengths(), Figure10Probes)},
		)
	}
	return rows
}

// RenderFigure10 prints the quantile table.
func RenderFigure10(rows []Figure10Row) string {
	header := []string{"Dataset", "Kind", "P10", "P25", "P50", "P75", "P90", "P99"}
	var cells [][]string
	for _, r := range rows {
		c := []string{r.Dataset, r.Kind}
		for _, q := range r.Quantiles {
			c = append(c, itoa(q))
		}
		cells = append(cells, c)
	}
	return "Figure 10: workload input/output token-length CDF quantiles\n" + table(header, cells)
}
