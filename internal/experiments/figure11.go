package experiments

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// Figure11Row is one (dataset, system, rate) end-to-end measurement — one
// point of Fig. 11's latency/throughput/SLO panels.
type Figure11Row struct {
	Dataset       string
	System        string
	Rate          float64
	MeanTTFT      float64
	P90NormTTFT   float64 // ms per input token
	MeanTPOTMs    float64
	P90TPOTMs     float64
	Throughput    float64
	SLOAttainment float64
}

// Figure11 runs the full end-to-end comparison sweep.
func Figure11(cfg E2EConfig) []Figure11Row {
	var rows []Figure11Row
	for _, ds := range sortedKeys(cfg.Rates) {
		d, err := workload.ByName(ds)
		if err != nil {
			panic(fmt.Sprintf("experiments: figure 11 dataset %q: %v", ds, err))
		}
		for _, rate := range cfg.Rates[ds] {
			for _, sys := range cfg.Systems {
				res := RunOne(sys, d, rate, cfg.Requests, cfg.Seed)
				s := res.Summary
				rows = append(rows, Figure11Row{
					Dataset: ds, System: sys, Rate: rate,
					MeanTTFT: s.MeanTTFT.Float(), P90NormTTFT: s.P90NormTTFT,
					MeanTPOTMs: s.MeanTPOTMs, P90TPOTMs: s.P90TPOTMs,
					Throughput: s.Throughput, SLOAttainment: s.SLOAttainment,
				})
			}
		}
	}
	return rows
}

// Figure11Headline extracts the paper's headline ratio: Bullet's
// throughput gain over each baseline, averaged across all (dataset, rate)
// points, plus the maximum.
func Figure11Headline(rows []Figure11Row) (avgGain, maxGain float64, perBaseline map[string]float64) {
	type key struct {
		ds   string
		rate float64
	}
	bullet := map[key]float64{}
	for _, r := range rows {
		if r.System == "bullet" {
			bullet[key{r.Dataset, r.Rate}] = r.Throughput
		}
	}
	perBaseline = map[string]float64{}
	counts := map[string]int{}
	n := 0
	for _, r := range rows {
		if r.System == "bullet" {
			continue
		}
		b, ok := bullet[key{r.Dataset, r.Rate}]
		if !ok || r.Throughput == 0 {
			continue
		}
		gain := b / r.Throughput
		perBaseline[r.System] += gain
		counts[r.System]++
		avgGain += gain
		n++
		if gain > maxGain {
			maxGain = gain
		}
	}
	if n > 0 {
		avgGain /= float64(n)
	}
	for _, k := range sortedKeys(perBaseline) {
		perBaseline[k] /= float64(counts[k])
	}
	return avgGain, maxGain, perBaseline
}

// RenderFigure11 prints the full sweep and the headline ratios.
func RenderFigure11(rows []Figure11Row) string {
	header := []string{"Dataset", "Rate", "System", "TTFT(s)", "P90nTTFT", "TPOT(ms)", "P90TPOT", "Thr(req/s)", "SLO"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, f1(r.Rate), r.System, f3(r.MeanTTFT), f2(r.P90NormTTFT),
			f1(r.MeanTPOTMs), f1(r.P90TPOTMs), f2(r.Throughput), f2(r.SLOAttainment),
		})
	}
	out := "Figure 11: end-to-end latency, throughput and SLO attainment\n" + table(header, cells)
	avg, max, per := Figure11Headline(rows)
	var sb strings.Builder
	sb.WriteString(out)
	fmt.Fprintf(&sb, "\nHeadline: Bullet throughput gain avg %.2fx (max %.2fx) over baselines\n", avg, max)
	for _, k := range sortedKeys(per) {
		fmt.Fprintf(&sb, "  vs %-14s %.2fx\n", k, per[k])
	}
	return sb.String()
}
