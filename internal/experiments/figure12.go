package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines/chunked"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

// Figure12Result is the timeline view of §4.3.1: Bullet's dynamic SM
// provisioning, in-flight tokens/batch and pending queue over time, next
// to SGLang-2048's hybrid-batch budget occupancy, on the Azure-Code
// workload.
type Figure12Result struct {
	// Sampled at SampleTimes (unit-typed seconds).
	SampleTimes   []units.Seconds
	PrefillSMs    []float64
	DecodeSMs     []float64
	PrefillTokens []float64
	DecodeBatch   []float64
	Waiting       []float64

	// SGLang-2048 comparison.
	HybridDecodeTokens []float64
	HybridChunkTokens  []float64
	HybridWaiting      []float64

	BulletQueueMean float64
	SGLangQueueMean float64

	BulletSummary metrics.Summary
	SGLangSummary metrics.Summary
}

// Figure12 runs both systems on the same bursty Azure-Code trace and
// samples their internal state on a uniform grid.
func Figure12(rate float64, n int, seed int64, samples int) Figure12Result {
	spec, cfg := Platform()
	d := workload.AzureCode
	trace := workload.GenerateBursty(d, rate, 3, 8, n, seed)

	// Bullet with timeline recording.
	envB := serving.NewEnv(spec, cfg, d.Name)
	b := core.New(envB, core.Options{Mode: core.ModeFull, RecordTimeline: true})
	resB := envB.Run(b, trace)

	// SGLang-2048 with hybrid batch sampling.
	envS := serving.NewEnv(spec, cfg, d.Name)
	sg := chunked.New(envS, chunked.SGLang2048())
	var hybrid metrics.Series
	var hybridChunk, hybridWait metrics.Series
	sg.OnIteration = func(s chunked.HybridBatchSample) {
		hybrid.Add(s.T, float64(s.DecodeTokens))
		hybridChunk.Add(s.T, float64(s.ChunkTokens))
		hybridWait.Add(s.T, float64(s.Waiting))
	}
	resS := envS.Run(sg, trace)

	horizon := resB.Makespan
	if resS.Makespan > horizon {
		horizon = resS.Makespan
	}
	out := Figure12Result{
		BulletSummary: resB.Summary,
		SGLangSummary: resS.Summary,
	}
	for i := 0; i < samples; i++ {
		out.SampleTimes = append(out.SampleTimes, units.Over(units.Scale(horizon, float64(i)), float64(samples-1)))
	}
	tl := b.Timeline
	for _, t := range out.SampleTimes {
		out.PrefillSMs = append(out.PrefillSMs, tl.PrefillSMs.At(t))
		out.DecodeSMs = append(out.DecodeSMs, tl.DecodeSMs.At(t))
		out.PrefillTokens = append(out.PrefillTokens, tl.PrefillTokens.At(t))
		out.DecodeBatch = append(out.DecodeBatch, tl.DecodeBatch.At(t))
		out.Waiting = append(out.Waiting, tl.Waiting.At(t))
		out.HybridDecodeTokens = append(out.HybridDecodeTokens, hybrid.At(t))
		out.HybridChunkTokens = append(out.HybridChunkTokens, hybridChunk.At(t))
		out.HybridWaiting = append(out.HybridWaiting, hybridWait.At(t))
	}
	out.BulletQueueMean = resB.Summary.MeanQueue.Float()
	out.SGLangQueueMean = resS.Summary.MeanQueue.Float()
	return out
}

// RenderFigure12 prints the two timelines and the queueing comparison.
func RenderFigure12(r Figure12Result) string {
	header := []string{"t(s)", "pSMs", "dSMs", "pTokens", "dBatch", "waiting", "sg-dec", "sg-chunk", "sg-wait"}
	var cells [][]string
	for i, t := range r.SampleTimes {
		cells = append(cells, []string{
			f1(t.Float()), f1(r.PrefillSMs[i]), f1(r.DecodeSMs[i]), f1(r.PrefillTokens[i]),
			f1(r.DecodeBatch[i]), f1(r.Waiting[i]),
			f1(r.HybridDecodeTokens[i]), f1(r.HybridChunkTokens[i]), f1(r.HybridWaiting[i]),
		})
	}
	var sb strings.Builder
	sb.WriteString("Figure 12: serving status timeline, Azure-Code (Bullet vs SGLang-2048)\n")
	sb.WriteString(table(header, cells))
	ratio := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		return b / a
	}
	fmt.Fprintf(&sb, "\nQueue delay: bullet %.3fs, sglang-2048 %.3fs (%.2fx longer)\n",
		r.BulletQueueMean, r.SGLangQueueMean, ratio(r.BulletQueueMean, r.SGLangQueueMean))
	fmt.Fprintf(&sb, "TTFT: bullet %.3fs vs sglang-2048 %.3fs (%.2fx); TPOT %.1fms vs %.1fms (%.2fx)\n",
		r.BulletSummary.MeanTTFT, r.SGLangSummary.MeanTTFT,
		ratio(r.BulletSummary.MeanTTFT.Float(), r.SGLangSummary.MeanTTFT.Float()),
		r.BulletSummary.MeanTPOTMs, r.SGLangSummary.MeanTPOTMs,
		ratio(r.BulletSummary.MeanTPOTMs, r.SGLangSummary.MeanTPOTMs))
	return sb.String()
}
