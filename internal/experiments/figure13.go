package experiments

import (
	"fmt"

	"repro/internal/workload"
)

// Figure13Row is one fixed-prefill-SM configuration's end-to-end result
// (Fig. 13): static partitions trade TTFT against TPOT/goodput, and no
// fixed point matches dynamic provisioning.
type Figure13Row struct {
	Dataset       string
	Config        string // "bullet" (dynamic) or "sm<N>"
	MeanTTFT      float64
	P90NormTTFT   float64
	MeanTPOTMs    float64
	P90TPOTMs     float64
	Throughput    float64
	SLOAttainment float64
}

// Figure13SMs are the fixed prefill allocations evaluated (decode uses
// the full device, as in the paper's setup).
var Figure13SMs = []int{60, 84, 108}

// Figure13 sweeps fixed prefill SM quotas against dynamic Bullet.
func Figure13(dataset workload.Dataset, rate float64, n int, seed int64) []Figure13Row {
	systems := []string{"bullet"}
	for _, sms := range Figure13SMs {
		systems = append(systems, fmt.Sprintf("bullet-sm%d", sms))
	}
	var rows []Figure13Row
	for _, sys := range systems {
		res := RunOne(sys, dataset, rate, n, seed)
		s := res.Summary
		rows = append(rows, Figure13Row{
			Dataset: dataset.Name, Config: sys,
			MeanTTFT: s.MeanTTFT.Float(), P90NormTTFT: s.P90NormTTFT,
			MeanTPOTMs: s.MeanTPOTMs, P90TPOTMs: s.P90TPOTMs,
			Throughput: s.Throughput, SLOAttainment: s.SLOAttainment,
		})
	}
	return rows
}

// RenderFigure13 prints the sensitivity table.
func RenderFigure13(rows []Figure13Row) string {
	header := []string{"Dataset", "Config", "TTFT(s)", "P90nTTFT", "TPOT(ms)", "P90TPOT", "Thr", "SLO"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Config, f3(r.MeanTTFT), f2(r.P90NormTTFT),
			f1(r.MeanTPOTMs), f1(r.P90TPOTMs), f2(r.Throughput), f2(r.SLOAttainment),
		})
	}
	return "Figure 13: sensitivity to fixed prefill-SM quotas (decode on full GPU)\n" + table(header, cells)
}
