package experiments

import (
	"repro/internal/workload"
)

// Figure14Row is one ablation variant's result on one workload (§4.5.1).
type Figure14Row struct {
	Dataset       string
	Variant       string
	MeanTTFT      float64
	P90NormTTFT   float64
	MeanTPOTMs    float64
	SLOAttainment float64
}

// Figure14Variants are the ablation points of the paper: Naive (no
// provisioning, no scheduling), w/Partition, w/Scheduler, and full.
var Figure14Variants = []string{"bullet-naive", "bullet-partition", "bullet-scheduler", "bullet"}

// Figure14 runs the ablation across the three workloads.
func Figure14(rates map[string]float64, n int, seed int64) []Figure14Row {
	var rows []Figure14Row
	for _, d := range workload.Datasets {
		rate, ok := rates[d.Name]
		if !ok {
			continue
		}
		for _, v := range Figure14Variants {
			res := RunOne(v, d, rate, n, seed)
			s := res.Summary
			rows = append(rows, Figure14Row{
				Dataset: d.Name, Variant: v,
				MeanTTFT: s.MeanTTFT.Float(), P90NormTTFT: s.P90NormTTFT,
				MeanTPOTMs: s.MeanTPOTMs, SLOAttainment: s.SLOAttainment,
			})
		}
	}
	return rows
}

// DefaultFigure14Rates places each workload near saturation, where the
// component contributions separate.
func DefaultFigure14Rates() map[string]float64 {
	return map[string]float64{"sharegpt": 16, "azure-code": 5, "arxiv-summary": 2.0}
}

// RenderFigure14 prints the ablation table.
func RenderFigure14(rows []Figure14Row) string {
	header := []string{"Dataset", "Variant", "TTFT(s)", "P90nTTFT", "TPOT(ms)", "SLO"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Variant, f3(r.MeanTTFT), f2(r.P90NormTTFT), f1(r.MeanTPOTMs), f2(r.SLOAttainment),
		})
	}
	return "Figure 14: component ablation (Naive / w+Partition / w+Scheduler / Bullet)\n" + table(header, cells)
}
