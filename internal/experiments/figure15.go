package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/estimator"
	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

// Figure15Result evaluates the performance estimator (§4.5.2): offline
// fit quality plus online prediction accuracy collected from a real
// serving run, including the SLO-compliance classification accuracy.
type Figure15Result struct {
	// Offline profiling fit.
	Params          estimator.Params
	OfflineTrials   int
	OfflineMeanRel  float64
	OfflineP90Rel   float64
	OfflineAccuracy float64

	// Online (serving-run) prediction pairs.
	OnlinePairs    int
	OnlineMeanRel  float64
	OnlineP50Rel   float64
	OnlineP90Rel   float64
	OnlineAccuracy float64 // SLO-compliance classification on step durations
}

// Figure15 fits the estimator offline and then serves a mixed workload
// with the estimator's every (prediction, observation) pair recorded.
func Figure15(n int, seed int64) Figure15Result {
	spec, cfg := Platform()
	_, rep := estimator.Profile(cfg, spec, estimator.QuickProfileOptions(spec))

	out := Figure15Result{
		Params:          rep.Params,
		OfflineTrials:   rep.Trials,
		OfflineMeanRel:  rep.MeanRelError,
		OfflineP90Rel:   rep.P90RelError,
		OfflineAccuracy: estimator.ClassificationAccuracy(rep.Samples, 1.0),
	}

	// Online validation on the Azure-Code workload.
	env := serving.NewEnv(spec, cfg, "azure-code")
	b := core.New(env, core.Options{Mode: core.ModeFull, Params: rep.Params})
	type pair struct {
		kind      string
		pred, act units.Seconds
	}
	var pairs []pair
	b.Estimator.OnObserve = func(phase string, predicted, actual units.Seconds) {
		pairs = append(pairs, pair{phase, predicted, actual})
	}
	b.RunTrace(workload.Generate(workload.AzureCode, 4.5, n, seed))

	if len(pairs) == 0 {
		return out
	}
	var rels []float64
	var samples []estimator.Sample
	for _, p := range pairs {
		if p.act <= 0 || p.pred <= 0 {
			continue
		}
		rels = append(rels, units.Ratio(units.Abs(p.pred-p.act), p.act))
		samples = append(samples, estimator.Sample{Kind: p.kind, Actual: p.act, Predicted: p.pred})
	}
	sort.Float64s(rels)
	sum := 0.0
	for _, r := range rels {
		sum += r
	}
	out.OnlinePairs = len(rels)
	out.OnlineMeanRel = sum / float64(len(rels))
	out.OnlineP50Rel = rels[len(rels)/2]
	out.OnlineP90Rel = rels[(len(rels)*9)/10]
	out.OnlineAccuracy = estimator.ClassificationAccuracy(samples, 1.0)
	return out
}

// RenderFigure15 prints the accuracy summary.
func RenderFigure15(r Figure15Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 15: performance estimator accuracy\n")
	fmt.Fprintf(&sb, "fitted params: dc=%.3f db=%.3f pc=%.3f pb=%.3f (from %d offline trials)\n",
		r.Params.DC, r.Params.DB, r.Params.PC, r.Params.PB, r.OfflineTrials)
	fmt.Fprintf(&sb, "offline: mean rel err %.1f%%, p90 %.1f%%, SLO classification accuracy %.0f%%\n",
		100*r.OfflineMeanRel, 100*r.OfflineP90Rel, 100*r.OfflineAccuracy)
	fmt.Fprintf(&sb, "online (%d serving predictions): mean rel err %.1f%%, p50 %.1f%%, p90 %.1f%%, classification accuracy %.0f%%\n",
		r.OnlinePairs, 100*r.OnlineMeanRel, 100*r.OnlineP50Rel, 100*r.OnlineP90Rel, 100*r.OnlineAccuracy)
	return sb.String()
}
