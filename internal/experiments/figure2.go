package experiments

import (
	"repro/internal/gpusim"
	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

// Figure2Row is one operator's share of an isolated prefill pass plus its
// achieved utilization (Fig. 2 of the paper).
type Figure2Row struct {
	SeqLen      int
	Op          string
	TimeFrac    float64 // fraction of the layer's execution time
	ComputeUtil float64 // achieved FLOPs / peak
	BWUtil      float64 // achieved bytes / peak
}

// Figure2Summary aggregates one sequence length's whole layer.
type Figure2Summary struct {
	SeqLen      int
	LayerTime   units.Seconds
	ComputeUtil float64
	BWUtil      float64
}

// Figure2 measures the per-operator execution-time breakdown and hardware
// utilization of isolated prefill on the simulated A100 (CPU overhead
// excluded, as in the paper's methodology).
func Figure2() ([]Figure2Row, []Figure2Summary) {
	spec, cfg := Platform()
	spec.LaunchOverhead = 0 // CPU overhead excluded
	var rows []Figure2Row
	var sums []Figure2Summary
	for _, seq := range []int{1024, 2048, 4096, 16384} {
		s := sim.New()
		g := gpusim.New(s, spec)
		type agg struct {
			time  units.Seconds
			flops units.FLOPs
			bytes units.Bytes
		}
		perOp := map[string]agg{}
		var order []string
		g.Trace = func(r gpusim.KernelRecord) {
			op := opGroup(r.Name)
			a, seen := perOp[op]
			if !seen {
				order = append(order, op)
			}
			a.time += r.Duration()
			a.flops += r.FLOPs
			a.bytes += r.Bytes
			perOp[op] = a
		}
		st := g.NewStream(smmask.Full(spec.NumSMs))
		for _, k := range cfg.PrefillLayerKernels(seq, 0, "prefill") {
			g.Launch(st, k, nil)
		}
		var layerTime sim.Time
		g.Synchronize(st, func() { layerTime = s.Now() })
		s.RunAll(1 << 20)

		var totalFlops units.FLOPs
		var totalBytes units.Bytes
		for _, op := range order {
			a := perOp[op]
			rows = append(rows, Figure2Row{
				SeqLen:      seq,
				Op:          op,
				TimeFrac:    units.Ratio(a.time, layerTime),
				ComputeUtil: units.Ratio(a.flops, spec.PeakFLOPS.Times(a.time)),
				BWUtil:      units.Ratio(a.bytes, spec.PeakBW.Times(a.time)),
			})
			totalFlops += a.flops
			totalBytes += a.bytes
		}
		sums = append(sums, Figure2Summary{
			SeqLen:      seq,
			LayerTime:   layerTime,
			ComputeUtil: units.Ratio(totalFlops, spec.PeakFLOPS.Times(layerTime)),
			BWUtil:      units.Ratio(totalBytes, spec.PeakBW.Times(layerTime)),
		})
	}
	return rows, sums
}

// RenderFigure2 prints the breakdown.
func RenderFigure2(rows []Figure2Row, sums []Figure2Summary) string {
	header := []string{"SeqLen", "Op", "Time%", "ComputeUtil", "BWUtil"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			itoa(r.SeqLen), r.Op, f1(100 * r.TimeFrac), f2(r.ComputeUtil), f2(r.BWUtil),
		})
	}
	out := "Figure 2: prefill execution-time breakdown and utilization (isolated, CPU overhead excluded)\n" +
		table(header, cells)
	header = []string{"SeqLen", "LayerTime(ms)", "ComputeUtil", "BWUtil"}
	cells = nil
	for _, s := range sums {
		cells = append(cells, []string{itoa(s.SeqLen), f3(s.LayerTime.Ms()), f2(s.ComputeUtil), f2(s.BWUtil)})
	}
	return out + "\nWhole-layer aggregate (red-line comparison):\n" + table(header, cells)
}
