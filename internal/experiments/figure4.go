package experiments

import (
	"repro/internal/gpusim"
	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

// Figure4Chunk is one chunk of a chunked 16k-token prefill (Fig. 4): its
// latency and achieved compute utilization, degrading chunk by chunk as
// attention re-reads all earlier KV cache.
type Figure4Chunk struct {
	ChunkSize int
	Index     int
	Latency   units.Seconds
	Util      float64
}

// Figure4Result compares chunked against unchunked execution.
type Figure4Result struct {
	SeqLen       int
	Chunks       []Figure4Chunk
	TotalLatency map[int]units.Seconds // per chunk size
	Unchunked    units.Seconds
	UnchunkedUtl float64
}

// Figure4 reproduces the per-chunk utilization/latency study: a 16k-token
// prefill without hybrid batching, at chunk sizes 1024 and 2048, versus
// one unchunked pass (CPU overhead excluded).
func Figure4() Figure4Result {
	spec, cfg := Platform()
	spec.LaunchOverhead = 0
	const seqLen = 16384
	res := Figure4Result{SeqLen: seqLen, TotalLatency: map[int]units.Seconds{}}

	runChunks := func(cs int) {
		s := sim.New()
		g := gpusim.New(s, spec)
		st := g.NewStream(smmask.Full(spec.NumSMs))
		done := 0
		var prev sim.Time
		for hist := 0; hist < seqLen; hist += cs {
			hist := hist
			idx := hist / cs
			for l := 0; l < cfg.NumLayers; l++ {
				for _, k := range cfg.PrefillLayerKernels(cs, hist, "prefill") {
					g.Launch(st, k, nil)
				}
			}
			// One synchronization per chunk boundary (each chunk is a
			// separate hybrid-batch iteration in real systems).
			g.Synchronize(st, func() {
				dur := s.Now() - prev
				prev = s.Now()
				work := cfg.PrefillWork(cs, hist)
				res.Chunks = append(res.Chunks, Figure4Chunk{
					ChunkSize: cs,
					Index:     idx,
					Latency:   dur,
					Util:      units.Ratio(work.FLOPs, spec.PeakFLOPS.Times(dur)),
				})
				done++
			})
			s.RunAll(1 << 22)
		}
		res.TotalLatency[cs] = prev
	}
	runChunks(1024)
	runChunks(2048)

	// Unchunked reference.
	s := sim.New()
	g := gpusim.New(s, spec)
	st := g.NewStream(smmask.Full(spec.NumSMs))
	for l := 0; l < cfg.NumLayers; l++ {
		for _, k := range cfg.PrefillLayerKernels(seqLen, 0, "prefill") {
			g.Launch(st, k, nil)
		}
	}
	g.Synchronize(st, func() { res.Unchunked = s.Now() })
	s.RunAll(1 << 22)
	work := cfg.PrefillWork(seqLen, 0)
	res.UnchunkedUtl = units.Ratio(work.FLOPs, spec.PeakFLOPS.Times(res.Unchunked))
	return res
}

// RenderFigure4 prints per-chunk series and the latency comparison.
func RenderFigure4(r Figure4Result) string {
	header := []string{"ChunkSize", "Chunk#", "Latency(ms)", "ComputeUtil"}
	var cells [][]string
	for _, c := range r.Chunks {
		// Thin the 1024-chunk series to every other chunk for brevity.
		if c.ChunkSize == 1024 && c.Index%2 == 1 {
			continue
		}
		cells = append(cells, []string{itoa(c.ChunkSize), itoa(c.Index), f2(c.Latency.Ms()), f2(c.Util)})
	}
	out := "Figure 4: per-chunk GPU utilization and latency, 16k-token chunked prefill\n" +
		table(header, cells)
	header = []string{"Config", "TotalLatency(ms)", "vs unchunked"}
	cells = [][]string{
		{"unchunked", f1(r.Unchunked.Ms()), "1.00x"},
	}
	for _, cs := range []int{1024, 2048} {
		cells = append(cells, []string{
			"chunk-" + itoa(cs), f1(r.TotalLatency[cs].Ms()),
			f2(units.Ratio(r.TotalLatency[cs], r.Unchunked)) + "x",
		})
	}
	return out + "\nTotal prefill latency:\n" + table(header, cells)
}
