package experiments

import (
	"repro/internal/gpusim"
	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

// Figure7Row is the speedup of running a phase on a partial SM allocation
// normalized to the full GPU (Fig. 7): compute-bound prefill scales
// roughly linearly (at or below the proportional line), memory-bound
// decode super-linearly (above it).
type Figure7Row struct {
	Phase   string // "prefill" or "decode"
	Param   int    // sequence length (prefill) or batch size (decode)
	SMs     int
	SMFrac  float64
	Speedup float64 // duration(full) / duration(partial), ≤ 1
}

// Figure7 measures partial-SM scaling for prefill layers across sequence
// lengths and decode steps across batch sizes (context length 2048, as in
// the paper).
func Figure7() []Figure7Row {
	spec, cfg := Platform()
	spec.LaunchOverhead = 0
	sms := []int{12, 24, 36, 48, 60, 72, 84, 96, 108}

	measure := func(build func() []gpusim.Kernel, m int) sim.Time {
		s := sim.New()
		g := gpusim.New(s, spec)
		st := g.NewStream(smmask.Range(0, m))
		for _, k := range build() {
			g.Launch(st, k, nil)
		}
		var end sim.Time
		g.Synchronize(st, func() { end = s.Now() })
		s.RunAll(1 << 20)
		return end
	}

	var rows []Figure7Row
	for _, seq := range []int{1024, 4096, 16384} {
		seq := seq
		build := func() []gpusim.Kernel { return cfg.PrefillLayerKernels(seq, 0, "p") }
		full := measure(build, spec.NumSMs)
		for _, m := range sms {
			rows = append(rows, Figure7Row{
				Phase: "prefill", Param: seq, SMs: m,
				SMFrac:  float64(m) / float64(spec.NumSMs),
				Speedup: units.Ratio(full, measure(build, m)),
			})
		}
	}
	for _, bs := range []int{16, 64, 256} {
		bs := bs
		build := func() []gpusim.Kernel {
			return []gpusim.Kernel{cfg.DecodeStepKernel(bs, units.Tokens(2048), "d")}
		}
		full := measure(build, spec.NumSMs)
		for _, m := range sms {
			rows = append(rows, Figure7Row{
				Phase: "decode", Param: bs, SMs: m,
				SMFrac:  float64(m) / float64(spec.NumSMs),
				Speedup: units.Ratio(full, measure(build, m)),
			})
		}
	}
	return rows
}

// RenderFigure7 prints the scaling table with the proportional reference.
func RenderFigure7(rows []Figure7Row) string {
	header := []string{"Phase", "Param", "SMs", "SMFrac", "Speedup", "Linear", "Ratio"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Phase, itoa(r.Param), itoa(r.SMs), f2(r.SMFrac), f2(r.Speedup),
			f2(r.SMFrac), f2(r.Speedup / r.SMFrac),
		})
	}
	return "Figure 7: speedup on partial SMs normalized to full GPU\n" +
		"(Ratio > 1 means super-linear scaling: typical for memory-bound decode)\n" +
		table(header, cells)
}
