package experiments

import (
	"testing"

	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

// allSystems includes the paper's systems plus every variant the registry
// knows.
var allSystems = []string{
	"bullet", "bullet-naive", "bullet-partition", "bullet-scheduler",
	"bullet-prefix", "bullet-sm84",
	"vllm-1024", "sglang-1024", "sglang-2048", "nanoflow-1024",
	"disagg-nvlink", "disagg-pcie",
}

// TestEverySystemConservesTokens runs every registered system on a small
// trace of every dataset and checks structural invariants: all requests
// complete exactly once with valid timelines, token counts are conserved,
// and the KV pool drains (the harness enforces the last one).
func TestEverySystemConservesTokens(t *testing.T) {
	for _, d := range workload.Datasets {
		trace := workload.Generate(d, 2, 15, 99)
		for _, sys := range allSystems {
			sys := sys
			t.Run(d.Name+"/"+sys, func(t *testing.T) {
				res := RunOne(sys, d, 2, 15, 99)
				if res.Summary.Requests != 15 {
					t.Fatalf("completed %d/15", res.Summary.Requests)
				}
				seen := map[string]bool{}
				in, out := 0, 0
				for _, r := range res.Requests {
					if seen[r.ID] {
						t.Fatalf("request %s completed twice", r.ID)
					}
					seen[r.ID] = true
					r.Validate()
					in += r.InputTokens
					out += r.OutputTokens
				}
				if in != trace.TotalInputTokens() || out != trace.TotalOutputTokens() {
					t.Fatalf("token mismatch: %d/%d vs %d/%d",
						in, out, trace.TotalInputTokens(), trace.TotalOutputTokens())
				}
			})
		}
	}
}

// TestEverySystemDeterministic re-runs each system and compares whole
// summaries.
func TestEverySystemDeterministic(t *testing.T) {
	for _, sys := range allSystems {
		sys := sys
		t.Run(sys, func(t *testing.T) {
			a := RunOne(sys, workload.ShareGPT, 4, 12, 7)
			b := RunOne(sys, workload.ShareGPT, 4, 12, 7)
			if a.Summary != b.Summary {
				t.Fatalf("summaries differ:\n%+v\n%+v", a.Summary, b.Summary)
			}
		})
	}
}

// TestGPUWorkAccounting cross-checks that the device's accumulated FLOPs
// roughly match the analytic workload demand for a prefill-only run.
func TestGPUWorkAccounting(t *testing.T) {
	spec, cfg := Platform()
	d := workload.AzureCode
	trace := &workload.Trace{Dataset: d.Name, Rate: 1}
	var demand units.FLOPs
	for i := 0; i < 5; i++ {
		in := 1024 * (i + 1)
		trace.Requests = append(trace.Requests, workload.Request{
			ID: itoa(i), Arrival: units.Seconds(float64(i) * 2), InputTokens: in, OutputTokens: 1,
			Dataset: d.Name,
		})
		w := cfg.PrefillWork(in, 0)
		demand += w.FLOPs
		demand += cfg.LMHeadKernel(1, "").FLOPs
	}
	env := serving.NewEnv(spec, cfg, d.Name)
	sys := NewSystem("bullet", env)
	res := env.Run(sys, trace)
	got := res.GPUStats.FLOPs
	// Requests may batch (shared LM head rows), so allow a few percent.
	if got < demand*0.9 || got > demand*1.1 {
		t.Fatalf("device FLOPs %.3g vs demand %.3g", got, demand)
	}
}
