package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/serving"
	"repro/internal/units"
	"repro/internal/workload"
)

// PressureRow is one (rate, system) point of the memory-pressure
// overload study.
type PressureRow struct {
	System        string
	Rate          float64 // offered load, req/s
	Completed     int
	Shed          int
	Wedged        int // requests neither completed nor shed (must be 0)
	Goodput       float64
	Throughput    float64
	P99TTFT       float64 // seconds
	SLOAttainment float64
	Pressure      metrics.Pressure
}

// PressureSystems are the default ext-pressure contenders: plain Bullet
// (admission blocks on physical KV exhaustion and nothing ever sheds —
// the no-preemption baseline the study shows collapsing), the
// admission-gate-only ablation (defer/shed tiers but no decode
// preemption), and the full memory-pressure subsystem (gate + decode
// preemption + recompute/retransfer recovery).
var PressureSystems = []string{"bullet", "bullet-gate", "bullet-pressure"}

// pressureFaultConfig is the KV-capacity-shrink-only fault mix the
// study injects: a few deep fragmentation/leak events per run squeeze
// the pool hard enough that the no-preemption baseline's admissions
// stall behind decode drain while the pressure subsystem preempts its
// way back under the watermark. SM and stall faults stay off so the
// rows isolate the memory mechanism.
func pressureFaultConfig(numSMs int, horizon units.Seconds, seed int64) faults.Config {
	fcfg := faults.DefaultConfig(numSMs, horizon)
	fcfg.Seed = seed
	fcfg.DegradeRate = 0
	fcfg.StallRate = 0
	fcfg.CrashRate = 0
	fcfg.KVShrinkRate = 0.05
	fcfg.MeanKVShrinkFraction = 0.55
	fcfg.MeanKVShrinkDuration = units.Seconds(10)
	return fcfg
}

// ExtPressure sweeps offered load past saturation over one shared trace
// and (when withShrink) one shared KV-shrink fault schedule per rate:
// every contender sees exactly the same arrivals and the same capacity
// squeezes, so the rows isolate the admission/preemption policy. The
// watchdog is armed on every run; Wedged counts requests that finished
// the run neither completed nor shed (always 0 — the serving harness
// panics on a wedged pipeline, so a non-zero cell can only come from
// accounting drift).
func ExtPressure(d workload.Dataset, rates []float64, n int, seed int64, withShrink bool) []PressureRow {
	spec, cfg := Platform()
	var rows []PressureRow
	for _, rate := range rates {
		trace := workload.Generate(d, rate, n, seed)
		// Cover the arrival span plus drain slack with faults.
		horizon := units.Scale(units.Over(units.Seconds(float64(n)), rate), 1.5)
		fcfg := pressureFaultConfig(spec.NumSMs, horizon, seed+1)
		if !withShrink {
			fcfg.KVShrinkRate = 0
		}
		sched := faults.Generate(fcfg)
		for _, name := range PressureSystems {
			env := serving.NewEnv(spec, cfg, d.Name)
			sys := NewSystem(name, env)
			b, ok := sys.(*core.Bullet)
			if !ok {
				panic(fmt.Sprintf("experiments: ext-pressure needs a Bullet variant, got %q", name))
			}
			inj := faults.NewInjector(env.Sim, sched)
			b.AttachFaults(inj, core.DefaultWatchdog())
			inj.Arm()
			res := env.Run(sys, trace)
			var ttfts []units.Seconds
			for _, r := range res.Requests {
				ttfts = append(ttfts, r.TTFT())
			}
			s := res.Summary
			rows = append(rows, PressureRow{
				System: res.System, Rate: rate,
				Completed: s.Requests, Shed: res.Shed,
				Wedged:  n - s.Requests - res.Shed,
				Goodput: s.Goodput, Throughput: s.Throughput,
				P99TTFT:       metrics.Percentile(ttfts, 0.99).Float(),
				SLOAttainment: s.SLOAttainment,
				Pressure:      b.Pressure(),
			})
		}
	}
	return rows
}

// RenderExtPressure prints the overload study.
func RenderExtPressure(rows []PressureRow) string {
	header := []string{"Rate", "System", "Done", "Shed", "Wedged", "Goodput", "Thr",
		"P99TTFT", "SLO", "Defer", "Preempt", "Recomp", "Retrans", "PeakOcc"}
	var cells [][]string
	for _, r := range rows {
		p := r.Pressure
		cells = append(cells, []string{
			f1(r.Rate), r.System, itoa(r.Completed), itoa(r.Shed), itoa(r.Wedged),
			f2(r.Goodput), f2(r.Throughput), f2(r.P99TTFT), f2(r.SLOAttainment),
			itoa(p.AdmissionsDeferred), itoa(p.Preemptions),
			itoa(p.Recomputes), itoa(p.Retransfers), f2(p.PeakOccupancy),
		})
	}
	return "Extension: goodput under KV memory pressure (admission gate + decode preemption vs none)\n" +
		table(header, cells)
}
