package experiments

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestExtPressureGoodputUnderOverload is the ext-pressure acceptance
// check: at the highest overload point the full pressure subsystem
// (gate + preemption + recovery) must sustain at least 2× the goodput
// of the no-preemption baseline, with zero watchdog-wedged requests on
// every row and real preemption/recovery activity somewhere in the
// sweep.
func TestExtPressureGoodputUnderOverload(t *testing.T) {
	rates := []float64{4, 8, 12}
	rows := ExtPressure(workload.AzureCode, rates, 200, 42, true)
	if len(rows) != len(rates)*len(PressureSystems) {
		t.Fatalf("rows = %d, want %d", len(rows), len(rates)*len(PressureSystems))
	}
	byKey := map[string]PressureRow{}
	var preempts, recoveries int
	for _, r := range rows {
		if r.Wedged != 0 {
			t.Fatalf("%s at rate %.1f wedged %d requests", r.System, r.Rate, r.Wedged)
		}
		byKey[r.System+"@"+f1(r.Rate)] = r
		preempts += r.Pressure.Preemptions
		recoveries += r.Pressure.Recomputes + r.Pressure.Retransfers
	}
	top := f1(rates[len(rates)-1])
	plain, full := byKey["bullet@"+top], byKey["bullet+pressure@"+top]
	if full.Goodput < 2*plain.Goodput {
		t.Errorf("at rate %s: pressure goodput %.2f < 2× no-preemption baseline %.2f",
			top, full.Goodput, plain.Goodput)
	}
	if plain.Pressure.Preemptions != 0 || plain.Pressure.AdmissionsDeferred != 0 {
		t.Errorf("plain baseline shows pressure activity: %+v", plain.Pressure)
	}
	if preempts == 0 || recoveries == 0 {
		t.Errorf("sweep exercised no preemption/recovery: preempts=%d recoveries=%d",
			preempts, recoveries)
	}
	out := RenderExtPressure(rows)
	for _, want := range []string{"bullet+pressure", "Preempt", "Wedged", "PeakOcc"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// TestPressureRunDeterminism: the whole pressure study — trace, shrink
// schedule, admission decisions, preemption, recovery, accounting —
// must replay bit-identically from the same seeds. (ci.sh runs this
// under -race as the determinism smoke for the pressure path.)
func TestPressureRunDeterminism(t *testing.T) {
	a := ExtPressure(workload.AzureCode, []float64{4, 12}, 80, 7, true)
	b := ExtPressure(workload.AzureCode, []float64{4, 12}, 80, 7, true)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("pressure study diverged:\n%+v\nvs\n%+v", a, b)
	}
	var shrinks int
	for _, r := range a {
		if r.System != "bullet" {
			shrinks += r.Pressure.KVShrinks
		}
	}
	if shrinks == 0 {
		t.Fatalf("no KV-shrink faults landed in the determinism run")
	}
}

// TestExtPressureNoShrinkKeepsBaselineClean: with the shrink schedule
// off, the plain baseline must match a healthy un-instrumented run —
// arming the watchdog and the (empty) injector is free.
func TestExtPressureNoShrinkKeepsBaselineClean(t *testing.T) {
	rows := ExtPressure(workload.AzureCode, []float64{4}, 60, 8, false)
	var plain *PressureRow
	for i := range rows {
		if rows[i].System == "bullet" {
			plain = &rows[i]
		}
		if rows[i].Pressure.KVShrinks != 0 {
			t.Fatalf("%s saw shrinks with withShrink=false", rows[i].System)
		}
	}
	healthy := RunOne("bullet", workload.AzureCode, 4, 60, 8).Summary
	if plain == nil || plain.Goodput != healthy.Goodput || plain.Completed != healthy.Requests {
		t.Fatalf("plain row %+v diverged from healthy run %+v", plain, healthy)
	}
}
