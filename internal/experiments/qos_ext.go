package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pressure"
	"repro/internal/qos"
	"repro/internal/serving"
	"repro/internal/workload"
)

// QoSRow is one (rate, system, tenant) point of the multi-tenant QoS
// overload study. Each tenant class is evaluated against its own scaled
// SLO (premium at the paper's targets, standard at 2x, best-effort at
// 4x) for both systems, so the baseline is judged by the same per-class
// yardstick as the controller.
type QoSRow struct {
	System        string
	Rate          float64 // offered load, req/s (all classes combined)
	Tenant        string
	Completed     int
	Shed          int
	P90NormTTFT   float64 // ms per input token
	P90TPOTMs     float64
	SLOAttainment float64
	Goodput       float64 // SLO-meeting requests per second
}

// QoSSystems are the ext-qos contenders: plain Bullet with static batch
// caps and no tenant awareness (the baseline that collapses for every
// class at overload) against the full QoS stack (pressure gate with
// priority admission + the SLO-feedback AIMD controller + weighted
// fairness + class-ordered preemption and shed).
var QoSSystems = []string{"bullet", "bullet-qos"}

// qosSLOFor returns the per-tenant evaluation SLO: the dataset targets
// scaled by the class's default SLO scale.
func qosSLOFor(dataset string) func(tenant string) metrics.SLO {
	base := metrics.SLOFor(dataset)
	cfg := qos.DefaultConfig()
	return func(tenant string) metrics.SLO {
		return cfg.SLOFor(qos.ClassOf(tenant), base)
	}
}

// ExtQoS sweeps a mixed-tenant workload past saturation over one shared
// trace per rate: both contenders see exactly the same tenant-tagged
// arrivals, so the per-class rows isolate the QoS policy. Rows come back
// grouped by rate, then system, then tenant tag (sorted).
func ExtQoS(d workload.Dataset, rates []float64, n int, seed int64, mix workload.TenantMix) []QoSRow {
	spec, cfg := Platform()
	sloFor := qosSLOFor(d.Name)
	var rows []QoSRow
	for _, rate := range rates {
		trace := workload.GenerateTenantMix(d, rate, n, seed, mix)
		for _, name := range QoSSystems {
			env := serving.NewEnv(spec, cfg, d.Name)
			sys := NewSystem(name, env)
			if _, ok := sys.(*core.Bullet); !ok {
				panic(fmt.Sprintf("experiments: ext-qos needs a Bullet variant, got %q", name))
			}
			res := env.Run(sys, trace)
			shedByTenant := map[string]int{}
			for _, r := range env.ShedRequests() {
				shedByTenant[r.Tenant]++
			}
			for _, ts := range metrics.SummarizeByTenant(res.Requests, sloFor) {
				rows = append(rows, QoSRow{
					System: res.System, Rate: rate, Tenant: ts.Tenant,
					Completed: ts.Requests, Shed: shedByTenant[ts.Tenant],
					P90NormTTFT: ts.P90NormTTFT, P90TPOTMs: ts.P90TPOTMs,
					SLOAttainment: ts.SLOAttainment, Goodput: ts.Goodput,
				})
			}
		}
	}
	return rows
}

// RenderExtQoS prints the multi-tenant overload study.
func RenderExtQoS(rows []QoSRow) string {
	header := []string{"Rate", "System", "Tenant", "Done", "Shed",
		"P90nTTFT", "P90TPOT", "SLO", "Goodput"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			f1(r.Rate), r.System, r.Tenant, itoa(r.Completed), itoa(r.Shed),
			f2(r.P90NormTTFT), f1(r.P90TPOTMs), f2(r.SLOAttainment), f2(r.Goodput),
		})
	}
	return "Extension: multi-tenant QoS under overload (SLO-feedback controller vs static batching)\n" +
		table(header, cells)
}

// QoSClusterRow is one tenant's slice of the qos cluster arm, plus the
// cluster-wide per-class token accounting.
type QoSClusterRow struct {
	Replicas      int
	Rate          float64
	Tenant        string
	Completed     int
	SLOAttainment float64
	Goodput       float64
	PrefillTokens int
	DecodeTokens  int
}

// ExtQoSCluster runs the mixed-tenant overload through a 2-replica
// least-loaded cluster with the full QoS stack on every replica.
// Controller state is per-replica and decisions fire at virtual-time
// window boundaries, so the rows are byte-identical whether the replicas
// step serially (workers=1) or in parallel — the property ci.sh pins
// with its GOMAXPROCS 1-vs-4 diff.
func ExtQoSCluster(d workload.Dataset, rate float64, n int, seed int64, workers int) []QoSClusterRow {
	spec, cfg := Platform()
	core.FittedParams(cfg, spec)
	const replicas = 2
	env := serving.NewEnv(spec, cfg, d.Name)
	cl := cluster.New(env, cluster.Config{
		Replicas: replicas, Policy: cluster.LeastLoaded,
		Options: core.Options{Mode: core.ModeFull,
			Pressure: &pressureDefault, QoS: &qosDefault},
		Workers: workers,
	})
	res := env.Run(cl, workload.GenerateTenantMix(d, rate, n, seed, workload.DefaultTenantMix()))
	cl.CheckDrained()
	acct := cl.QoS()
	var rows []QoSClusterRow
	for _, ts := range metrics.SummarizeByTenant(res.Requests, qosSLOFor(d.Name)) {
		class := qos.ClassOf(ts.Tenant)
		rows = append(rows, QoSClusterRow{
			Replicas: replicas, Rate: rate, Tenant: ts.Tenant,
			Completed: ts.Requests, SLOAttainment: ts.SLOAttainment,
			Goodput:       ts.Goodput,
			PrefillTokens: acct.PrefillTokens[class],
			DecodeTokens:  acct.DecodeTokens[class],
		})
	}
	return rows
}

// The cluster arm's shared option payloads (cluster.Config copies
// Options per replica; zero configs take each subsystem's defaults).
var (
	pressureDefault = pressure.Config{}
	qosDefault      = qos.Config{}
)

// RenderExtQoSCluster prints the qos cluster arm.
func RenderExtQoSCluster(rows []QoSClusterRow) string {
	header := []string{"Replicas", "Rate", "Tenant", "Done", "SLO", "Goodput",
		"PrefillTok", "DecodeTok"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			itoa(r.Replicas), f1(r.Rate), r.Tenant, itoa(r.Completed),
			f2(r.SLOAttainment), f2(r.Goodput),
			itoa(r.PrefillTokens), itoa(r.DecodeTokens),
		})
	}
	return "Extension: QoS cluster arm (per-replica controllers, serial ≡ parallel)\n" +
		table(header, cells)
}
