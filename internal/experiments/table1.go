package experiments

import (
	"repro/internal/gpusim"
	"repro/internal/units"
)

// Table1Row is the theoretical SM idle ratio (%) caused by wave
// quantization, per operator, normalized to the kernel/layer execution
// time (Table 1 of the paper).
type Table1Row struct {
	SeqLen int
	QKV    float64
	Attn   float64
	OProj  float64
	MLP    float64
	Total  float64
}

// Table1 computes the theoretical idle ratios from the kernel grid model
// on the A100's 108 SMs. Per-kernel idle ratios come straight from
// Equation 1; the MLP and Total columns are execution-time-weighted
// averages across the constituent kernels (idle kernels run longer, so
// the weights are the wave-inflated times).
func Table1() []Table1Row {
	spec, cfg := Platform()
	var rows []Table1Row
	for _, seq := range []int{1024, 2048, 4096, 16384} {
		ks := cfg.PrefillLayerKernels(seq, 0, "")
		type acc struct{ idleTime, time units.Seconds }
		perOp := map[string]acc{}
		var layer acc
		for _, k := range ks {
			t := kernelSoloTime(spec, k, spec.NumSMs)
			idle := gpusim.WaveIdleRatio(k.Grid, spec.NumSMs)
			a := perOp[opGroup(k.Name)]
			a.idleTime += units.Scale(t, idle)
			a.time += t
			perOp[opGroup(k.Name)] = a
			layer.idleTime += units.Scale(t, idle)
			layer.time += t
		}
		ratio := func(op string) float64 {
			a := perOp[op]
			if a.time == 0 {
				return 0
			}
			return units.Ratio(units.Scale(a.idleTime, 100), a.time)
		}
		rows = append(rows, Table1Row{
			SeqLen: seq,
			QKV:    ratio("qkv"),
			Attn:   ratio("attn"),
			OProj:  ratio("oproj"),
			MLP:    ratio("mlp"),
			Total:  units.Ratio(units.Scale(layer.idleTime, 100), layer.time),
		})
	}
	return rows
}

// opGroup maps kernel names onto the paper's operator columns.
func opGroup(name string) string {
	switch name {
	case "gateup", "down":
		return "mlp"
	case "norm1", "norm2":
		return "norm"
	default:
		return name
	}
}

// kernelSoloTime is the isolated full-mask roofline duration used for
// weighting (same arithmetic as the simulator's solo path).
func kernelSoloTime(spec gpusim.Spec, k gpusim.Kernel, sms int) units.Seconds {
	eff := k.Efficiency
	if eff == 0 {
		eff = 1
	}
	frac := float64(sms) / float64(spec.NumSMs)
	ct := units.Seconds(0)
	if k.FLOPs > 0 {
		ct = k.FLOPs.Div(units.Scale(units.Scale(spec.PeakFLOPS, eff), frac))
		ct = units.Over(ct, 1-gpusim.WaveIdleRatio(k.Grid, sms))
	}
	bt := units.Seconds(0)
	if k.Bytes > 0 {
		bt = k.Bytes.Div(units.Scale(spec.PeakBW, minf(1, powf(frac, spec.BWScaleExp))))
	}
	if ct > bt {
		return ct
	}
	return bt
}

// RenderTable1 prints the paper-style table.
func RenderTable1(rows []Table1Row) string {
	header := []string{"SeqLen", "QKV", "Attn", "OProj", "MLP", "Total"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			itoa(r.SeqLen), f1(r.QKV), f1(r.Attn), f1(r.OProj), f1(r.MLP), f1(r.Total),
		})
	}
	return "Table 1: theoretical SM idle ratio (%) from wave quantization (A100, 108 SMs)\n" +
		table(header, cells)
}
