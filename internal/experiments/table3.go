package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/estimator"
	"repro/internal/gpusim"
	"repro/internal/resource"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/units"
)

// Table3Row is one control-plane component's measured CPU overhead
// (Table 3 of the paper). Values are wall-clock microseconds of this
// implementation's hot path.
type Table3Row struct {
	Component string
	MeanUs    float64
	StdUs     float64
	P90Us     float64
	P99Us     float64
}

// Table3 measures the scheduling control plane: metadata snapshot
// (send/recv equivalent), performance prediction, scheduler decision, and
// resource re-configuration. The paper's metadata path also includes
// Python serialization and IPC, which this reproduction models as the
// buffer's 0.21 ms simulated latency; the rows below are the in-process
// costs.
//
// timer supplies monotonic seconds and is the only clock this function
// reads: real measurements inject a wall-clock timer from a cmd/ main or
// benchmark (outside the deterministic internal tree), while tests inject
// a synthetic counter so the output is bit-reproducible. A nil timer
// falls back to a fixed-increment synthetic clock.
func Table3(iters int, timer func() float64) []Table3Row {
	if timer == nil {
		t := 0.0
		timer = func() float64 {
			t += 1e-6
			return t
		}
	}
	spec, cfg := Platform()
	s := sim.New()
	g := gpusim.New(s, spec)
	res := resource.NewManager(g, 6)
	est := estimator.New(cfg, spec, estimator.DefaultParams())
	schd := sched.New(est, metricsSLO(), sched.Config{
		TotalLayers: cfg.NumLayers, LayerGroup: 1,
		NumSMs: spec.NumSMs, Levels: res.Levels(),
	})
	buf := engine.NewBuffer(s, units.Seconds(0.21e-3))
	buf.RegisterPrefill(func() (sched.PrefillStatus, []sched.WaitingReq) {
		return sched.PrefillStatus{
			Active: true, Tokens: 4096, LayersDone: 10,
			Arrivals:    []sim.Time{0, 0, 0},
			InputTokens: []int{1024, 2048, 1024},
		}, []sched.WaitingReq{{Arrival: 0, InputTokens: 2048}}
	})
	buf.RegisterDecode(func() sched.DecodeStatus {
		ds := sched.DecodeStatus{Batch: 64, AvgCtx: 1500}
		for i := 0; i < 64; i++ {
			ds.Elapsed = append(ds.Elapsed, units.Seconds(0.2))
			ds.Generated = append(ds.Generated, 8)
		}
		return ds
	})
	buf.SetAllocation(84, 24)
	st := buf.Snapshot()

	measure := func(name string, fn func(i int)) Table3Row {
		durs := make([]float64, iters)
		for i := 0; i < iters; i++ {
			t0 := timer()
			fn(i)
			durs[i] = (timer() - t0) * 1e6
		}
		sort.Float64s(durs)
		mean := 0.0
		for _, d := range durs {
			mean += d
		}
		mean /= float64(iters)
		variance := 0.0
		for _, d := range durs {
			variance += (d - mean) * (d - mean)
		}
		return Table3Row{
			Component: name,
			MeanUs:    mean,
			StdUs:     math.Sqrt(variance / float64(iters)),
			P90Us:     durs[(iters*9)/10],
			P99Us:     durs[(iters*99)/100],
		}
	}

	levels := res.Levels()
	return []Table3Row{
		measure("Metadata Snapshot", func(i int) { _ = buf.Snapshot() }),
		measure("Performance Predict", func(i int) {
			_ = est.PrefillLayerTime(2048, 0, 84, true)
			_ = est.DecodeStepTime(64, units.Tokens(1500), 24, true)
		}),
		measure("Scheduler Decide", func(i int) { _ = schd.Decide(st) }),
		measure("Resource Re-config", func(i int) {
			_ = res.Stream(resource.Prefill, levels[i%len(levels)])
		}),
	}
}

// RenderTable3 prints the overhead table.
func RenderTable3(rows []Table3Row) string {
	header := []string{"Component", "Mean(us)", "Std", "P90", "P99"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Component, f2(r.MeanUs), f2(r.StdUs), f2(r.P90Us), f2(r.P99Us)})
	}
	var sb strings.Builder
	sb.WriteString("Table 3: control-plane CPU overheads (wall clock, this implementation)\n")
	sb.WriteString(table(header, cells))
	fmt.Fprintf(&sb, "\nModelled inter-engine metadata latency (paper: 0.21 ms mean): %.2f ms\n", 0.21)
	return sb.String()
}
