package experiments

import (
	"repro/internal/core"
	"repro/internal/serving"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// RunOneTraced executes a single serving experiment with the timeline
// recorder attached, returning both the result and the recorded trace.
// Bullet variants thread the recorder through every layer; other systems
// still get GPU-level kernel spans and occupancy counters. maxEvents
// caps the recording (non-positive means timeline.DefaultMaxEvents).
func RunOneTraced(system string, dataset workload.Dataset, rate float64, n int, seed int64, maxEvents int) (serving.Result, *timeline.Recorder) {
	spec, cfg := Platform()
	env := serving.NewEnv(spec, cfg, dataset.Name)
	sys := NewSystem(system, env)
	rec := timeline.New(maxEvents)
	if b, ok := sys.(*core.Bullet); ok {
		b.AttachTimeline(rec)
	} else {
		env.GPU.TL = rec
	}
	res := env.Run(sys, workload.Generate(dataset, rate, n, seed))
	return res, rec
}
