package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/timeline"
	"repro/internal/units"
	"repro/internal/workload"
)

// traceBytes runs the quickstart scenario (bullet on ShareGPT at
// 10 req/s, 200 requests, seed 42 — examples/quickstart) with tracing
// attached and exports the Chrome JSON.
func traceBytes(t *testing.T) []byte {
	t.Helper()
	_, rec := RunOneTraced("bullet", workload.ShareGPT, 10, 200, 42, 0)
	if rec.Dropped() != 0 {
		t.Fatalf("trace dropped %d events at default capacity", rec.Dropped())
	}
	var buf bytes.Buffer
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatalf("exporting trace: %v", err)
	}
	return buf.Bytes()
}

// TestTimelineGoldenDeterminism is the observability half of the
// determinism contract: the exported Chrome trace of the quickstart
// scenario must be byte-identical across two runs. ci.sh also runs this
// under -race. Any wall-clock read, map-ordered export, or unstable sort
// in the recorder shows up here as the first diverging byte.
func TestTimelineGoldenDeterminism(t *testing.T) {
	a := traceBytes(t)
	b := traceBytes(t)
	if !bytes.Equal(a, b) {
		i := 0
		for i < len(a) && i < len(b) && a[i] == b[i] {
			i++
		}
		lo := i - 80
		if lo < 0 {
			lo = 0
		}
		t.Fatalf("trace JSON diverged at byte %d:\n  run1: …%s\n  run2: …%s",
			i, a[lo:min(i+80, len(a))], b[lo:min(i+80, len(b))])
	}
	if !json.Valid(a) {
		t.Fatal("exported trace is not valid JSON")
	}
}

// TestTimelineLifecycleWellNested checks the per-request span invariants
// on a real run: every completed request contributes a queued → prefill
// (→ kv-transfer → decode) chain of async spans whose phases abut
// exactly (each starts where the previous ended) and nest inside
// [arrival, finish].
func TestTimelineLifecycleWellNested(t *testing.T) {
	res, rec := RunOneTraced("bullet", workload.ShareGPT, 10, 120, 7, 0)

	type phase struct {
		name       string
		start, end units.Seconds
	}
	byReq := map[string][]phase{}
	for _, e := range rec.Events() {
		if e.Kind != timeline.KindAsync || e.Lane != "requests" {
			continue
		}
		if e.End < e.Start {
			t.Fatalf("request %s phase %s inverted: [%v, %v]", e.ID, e.Name, e.Start, e.End)
		}
		byReq[e.ID] = append(byReq[e.ID], phase{e.Name, e.Start, e.End})
	}
	if len(byReq) != len(res.Requests) {
		t.Fatalf("lifecycle chains for %d requests, want %d", len(byReq), len(res.Requests))
	}
	for id, ph := range byReq {
		names := make([]string, len(ph))
		for i, p := range ph {
			names[i] = p.name
		}
		switch len(ph) {
		case 2:
			if names[0] != "queued" || names[1] != "prefill" {
				t.Fatalf("request %s: unexpected phases %v", id, names)
			}
		case 4:
			if names[0] != "queued" || names[1] != "prefill" ||
				names[2] != "kv-transfer" || names[3] != "decode" {
				t.Fatalf("request %s: unexpected phases %v", id, names)
			}
		default:
			t.Fatalf("request %s: %d phases %v, want 2 or 4", id, len(ph), names)
		}
		for i := 1; i < len(ph); i++ {
			// Exact equality is the contract: each phase is stamped from
			// the same virtual-clock read that ended the previous one.
			if ph[i].start < ph[i-1].end || ph[i-1].end < ph[i].start {
				t.Fatalf("request %s: phase %s starts at %v, previous ended %v",
					id, ph[i].name, ph[i].start, ph[i-1].end)
			}
		}
	}
}

// TestTimelineSpansWellNestedPerStream checks the kernel-span invariant:
// within one GPU stream lane, spans never overlap (streams are FIFO) and
// appear in nondecreasing start order.
func TestTimelineSpansWellNestedPerStream(t *testing.T) {
	_, rec := RunOneTraced("bullet", workload.AzureCode, 4, 80, 11, 0)
	last := map[string]units.Seconds{}
	spans := 0
	for _, e := range rec.Events() {
		if e.Kind != timeline.KindSpan || e.Proc != "" || len(e.Lane) < 6 || e.Lane[:6] != "stream" {
			continue
		}
		spans++
		if e.Start < last[e.Lane] {
			t.Fatalf("stream lane %s: span %q starts at %v before previous end %v",
				e.Lane, e.Name, e.Start, last[e.Lane])
		}
		last[e.Lane] = e.End
	}
	if spans == 0 {
		t.Fatal("no kernel spans recorded")
	}
}

// TestTimelineDisabledIsFree asserts the nil-recorder contract at the
// system level: a traced run and an untraced run of the same scenario
// produce identical results (recording must never perturb scheduling).
func TestTimelineDisabledIsFree(t *testing.T) {
	plain := RunOne("bullet", workload.AzureCode, 5, 60, 3)
	traced, _ := RunOneTraced("bullet", workload.AzureCode, 5, 60, 3, 0)
	if plain.Summary != traced.Summary {
		t.Fatalf("tracing perturbed the run:\n  plain:  %+v\n  traced: %+v",
			plain.Summary, traced.Summary)
	}
}
