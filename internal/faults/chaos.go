// Chaos schedules: correlated, cascading router-tier fault timelines
// (DESIGN.md §16). Where Generate draws each kind as an independent
// Poisson process, GenerateChaos models the two correlations real
// incidents show — bursts (a 2-state calm/storm Markov chain modulates
// the link-fault rate, so outages cluster into storms) and cascades (a
// link fault at one replica spawns follow-on faults at its neighbors
// with geometric chaining, the pattern of a shared switch or rack going
// bad). Everything still draws from one seeded *rand.Rand in one fixed
// order, so the same ChaosConfig always yields a bit-identical Schedule
// (TestGenerateChaosReplay pins this).
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
	"repro/internal/units"
)

// ChaosConfig parameterizes GenerateChaos. Rates are events per second
// of virtual time; probabilities are in [0,1].
type ChaosConfig struct {
	Seed    int64
	Horizon sim.Time
	// Replicas bounds link and drain targets.
	Replicas int

	// Step is the Markov modulation step: the calm/storm state holds for
	// Step, then transitions with the probabilities below.
	Step sim.Time
	// StormEnter / StormExit are the per-step calm→storm and storm→calm
	// transition probabilities.
	StormEnter float64
	StormExit  float64

	// CalmLinkRate / StormLinkRate are the link-fault arrival rates in
	// the two states.
	CalmLinkRate  float64
	StormLinkRate float64
	// LossProb is the probability a link fault is a full loss
	// (black-holed dispatches) rather than a degradation (added delay).
	LossProb float64
	// MeanLinkDuration is the mean link-outage length.
	MeanLinkDuration sim.Time
	// MeanLinkDelay is the mean added per-dispatch delay of a degraded
	// (non-loss) link.
	MeanLinkDelay sim.Time

	// CascadeProb is the probability a link fault spawns a follow-on
	// fault at the next replica slot CascadeDelay later; chains continue
	// geometrically (each hop re-draws).
	CascadeProb  float64
	CascadeDelay sim.Time

	// BlipRate / MeanBlip parameterize router blips.
	BlipRate float64
	MeanBlip sim.Time

	// DrainRate / MeanRestart parameterize replica drain/restart events.
	DrainRate   float64
	MeanRestart sim.Time
}

// DefaultChaosConfig returns a storm-heavy link-failure mix for a
// cluster of the given size: calm background noise, storms that take
// whole links out for seconds at a time with rack-style cascades, plus
// occasional router blips and rolling drains.
func DefaultChaosConfig(replicas int, horizon sim.Time) ChaosConfig {
	return ChaosConfig{
		Seed:     1,
		Horizon:  horizon,
		Replicas: replicas,

		Step:       units.Seconds(1),
		StormEnter: 0.15,
		StormExit:  0.25,

		CalmLinkRate:     0.02,
		StormLinkRate:    0.6,
		LossProb:         0.75,
		MeanLinkDuration: units.Seconds(3),
		MeanLinkDelay:    units.FromMs(120),

		CascadeProb:  0.4,
		CascadeDelay: units.FromMs(250),

		BlipRate: 0.02,
		MeanBlip: units.FromMs(400),

		DrainRate:   0.01,
		MeanRestart: units.Seconds(2),
	}
}

// validate panics on nonsensical parameters.
func (cfg ChaosConfig) validate() {
	if cfg.Horizon <= 0 || cfg.Replicas <= 0 {
		panic(fmt.Sprintf("faults: invalid chaos config horizon=%v replicas=%d", cfg.Horizon, cfg.Replicas))
	}
	if cfg.Step <= 0 {
		panic(fmt.Sprintf("faults: invalid chaos modulation step %v", cfg.Step))
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"StormEnter", cfg.StormEnter}, {"StormExit", cfg.StormExit},
		{"LossProb", cfg.LossProb}, {"CascadeProb", cfg.CascadeProb},
	} {
		if p.v < 0 || p.v > 1 {
			panic(fmt.Sprintf("faults: chaos %s %v outside [0,1]", p.name, p.v))
		}
	}
	if cfg.CalmLinkRate < 0 || cfg.StormLinkRate < 0 || cfg.BlipRate < 0 || cfg.DrainRate < 0 {
		panic(fmt.Sprintf("faults: negative chaos rate in config %+v", cfg))
	}
	if cfg.CascadeProb >= 1 {
		// The range check above admits 1.0, but a chain that never stops
		// would loop forever (the horizon bound saves it only because
		// each hop advances time; be strict anyway).
		panic("faults: CascadeProb 1.0 would cascade forever")
	}
}

// GenerateChaos derives a correlated router-tier fault schedule from
// cfg, deterministically from cfg.Seed. The Markov chain and every
// event parameter draw from one rng in one fixed order (state
// transition, then that step's link events oldest-first with their
// cascades inline; blips and drains drawn after all link events), so
// replays are bit-identical.
func GenerateChaos(cfg ChaosConfig) Schedule {
	cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Schedule{Seed: cfg.Seed}

	// Link faults: calm/storm-modulated Poisson arrivals per step, each
	// possibly heading a cascade chain across neighboring replicas.
	storm := false
	for stepStart := sim.Time(0); stepStart < cfg.Horizon; stepStart += cfg.Step {
		if storm {
			storm = rng.Float64() >= cfg.StormExit
		} else {
			storm = rng.Float64() < cfg.StormEnter
		}
		rate := cfg.CalmLinkRate
		if storm {
			rate = cfg.StormLinkRate
		}
		if rate <= 0 {
			continue
		}
		stepEnd := units.Min(stepStart+cfg.Step, cfg.Horizon)
		t := stepStart
		for {
			t += units.Over(units.Seconds(rng.ExpFloat64()), rate)
			if t >= stepEnd {
				break
			}
			first := linkEvent(rng, cfg, t, rng.Intn(cfg.Replicas))
			s.Events = append(s.Events, first)
			// Cascade: geometric chain across neighboring slots, each hop
			// re-drawing its own outage parameters.
			replica := first.Replica
			at := t
			for cfg.Replicas > 1 && rng.Float64() < cfg.CascadeProb {
				replica = (replica + 1) % cfg.Replicas
				at += cfg.CascadeDelay
				if at >= cfg.Horizon {
					break
				}
				s.Events = append(s.Events, linkEvent(rng, cfg, at, replica))
			}
		}
	}

	// Router blips and drains: independent Poisson processes, drawn
	// after all link events so tweaking the link parameters never
	// perturbs their arrival times for a fixed seed.
	for _, t := range arrivals(rng, cfg.BlipRate, cfg.Horizon) {
		s.Events = append(s.Events, Event{
			At:       t,
			Kind:     KindRouterBlip,
			Duration: units.Scale(cfg.MeanBlip, 0.5+rng.ExpFloat64()),
		})
	}
	for _, t := range arrivals(rng, cfg.DrainRate, cfg.Horizon) {
		s.Events = append(s.Events, Event{
			At:       t,
			Kind:     KindReplicaDrain,
			Replica:  rng.Intn(cfg.Replicas),
			Recovery: units.Scale(cfg.MeanRestart, 0.5+rng.ExpFloat64()),
		})
	}

	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].At < s.Events[j].At
	})
	return s
}

// linkEvent draws one link fault at time t against the given replica:
// loss or degradation, outage length, and (for degradations) the added
// per-dispatch delay.
func linkEvent(rng *rand.Rand, cfg ChaosConfig, t sim.Time, replica int) Event {
	ev := Event{
		At:       t,
		Kind:     KindLinkDegrade,
		Replica:  replica,
		Duration: units.Scale(cfg.MeanLinkDuration, 0.5+rng.ExpFloat64()),
	}
	if rng.Float64() < cfg.LossProb {
		ev.LinkLoss = true
	} else {
		ev.LinkDelay = units.Scale(cfg.MeanLinkDelay, 0.5+rng.ExpFloat64())
	}
	return ev
}
