package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// TestGenerateChaosReplay pins the bit-identical replay contract: the
// same config yields the same schedule, different seeds differ.
func TestGenerateChaosReplay(t *testing.T) {
	cfg := DefaultChaosConfig(4, units.Seconds(60))
	a, b := GenerateChaos(cfg), GenerateChaos(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same chaos config generated different schedules")
	}
	if len(a.Events) == 0 {
		t.Fatal("default chaos config generated an empty schedule")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	if c := GenerateChaos(cfg2); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical schedules")
	}
}

// TestGenerateChaosShape checks every event is well-formed: sorted by
// time, inside the horizon, a router-tier kind, and targeting a valid
// replica.
func TestGenerateChaosShape(t *testing.T) {
	cfg := DefaultChaosConfig(3, units.Seconds(120))
	s := GenerateChaos(cfg)
	var losses, degrades, blips, drains int
	for i, ev := range s.Events {
		if i > 0 && ev.At < s.Events[i-1].At {
			t.Fatalf("events unsorted at %d: %v after %v", i, ev.At, s.Events[i-1].At)
		}
		if ev.At < 0 || ev.At >= cfg.Horizon {
			t.Fatalf("event %d at %v outside [0, %v)", i, ev.At, cfg.Horizon)
		}
		switch ev.Kind {
		case KindLinkDegrade:
			if ev.Duration <= 0 {
				t.Fatalf("link event %d has duration %v", i, ev.Duration)
			}
			if ev.LinkLoss {
				losses++
			} else {
				degrades++
				if ev.LinkDelay <= 0 {
					t.Fatalf("degrade event %d has no delay", i)
				}
			}
		case KindRouterBlip:
			blips++
			if ev.Duration <= 0 {
				t.Fatalf("blip %d has duration %v", i, ev.Duration)
			}
		case KindReplicaDrain:
			drains++
			if ev.Recovery <= 0 {
				t.Fatalf("drain %d has recovery %v", i, ev.Recovery)
			}
		default:
			t.Fatalf("unexpected kind %q in chaos schedule", ev.Kind)
		}
		if ev.Replica < 0 || ev.Replica >= cfg.Replicas {
			t.Fatalf("event %d targets replica %d of %d", i, ev.Replica, cfg.Replicas)
		}
	}
	if losses == 0 || degrades == 0 || blips == 0 || drains == 0 {
		t.Fatalf("degenerate mix: losses %d degrades %d blips %d drains %d", losses, degrades, blips, drains)
	}
	if s.Downtime() <= 0 {
		t.Fatal("chaos schedule carries no scheduled downtime")
	}
}

// TestGenerateChaosBursts: the Markov modulation must make storms —
// the storm-state arrival rate dominates, so a config with storms
// produces far more link faults than its calm-only twin.
func TestGenerateChaosBursts(t *testing.T) {
	cfg := DefaultChaosConfig(4, units.Seconds(300))
	calm := cfg
	calm.StormEnter = 0 // never leaves the calm state
	links := func(s Schedule) int {
		n := 0
		for _, ev := range s.Events {
			if ev.Kind == KindLinkDegrade {
				n++
			}
		}
		return n
	}
	stormy, quiet := links(GenerateChaos(cfg)), links(GenerateChaos(calm))
	if stormy < 2*quiet {
		t.Fatalf("storms added too little: %d link faults with storms vs %d without", stormy, quiet)
	}
}

// TestGenerateChaosCascades: with a high cascade probability, link
// faults must chain to the next replica slot exactly CascadeDelay
// apart.
func TestGenerateChaosCascades(t *testing.T) {
	cfg := DefaultChaosConfig(4, units.Seconds(60))
	cfg.CascadeProb = 0.9
	s := GenerateChaos(cfg)
	chains := 0
	for i := 1; i < len(s.Events); i++ {
		prev, ev := s.Events[i-1], s.Events[i]
		if ev.Kind == KindLinkDegrade && prev.Kind == KindLinkDegrade &&
			ev.At == prev.At+cfg.CascadeDelay &&
			ev.Replica == (prev.Replica+1)%cfg.Replicas {
			chains++
		}
	}
	if chains == 0 {
		t.Fatal("no cascade chains found at CascadeProb 0.9")
	}
	// A single-replica fleet has no neighbor to cascade to.
	cfg1 := DefaultChaosConfig(1, units.Seconds(60))
	cfg1.CascadeProb = 0.9
	for _, ev := range GenerateChaos(cfg1).Events {
		if ev.Replica != 0 {
			t.Fatalf("single-replica chaos targeted replica %d", ev.Replica)
		}
	}
}

func TestChaosConfigValidation(t *testing.T) {
	base := DefaultChaosConfig(2, units.Seconds(10))
	for name, mut := range map[string]func(*ChaosConfig){
		"zero horizon":       func(c *ChaosConfig) { c.Horizon = 0 },
		"zero replicas":      func(c *ChaosConfig) { c.Replicas = 0 },
		"zero step":          func(c *ChaosConfig) { c.Step = 0 },
		"prob above one":     func(c *ChaosConfig) { c.LossProb = 1.5 },
		"negative prob":      func(c *ChaosConfig) { c.StormEnter = -0.1 },
		"negative rate":      func(c *ChaosConfig) { c.BlipRate = -1 },
		"eternal cascade":    func(c *ChaosConfig) { c.CascadeProb = 1 },
		"negative exit":      func(c *ChaosConfig) { c.StormExit = -1 },
		"negative drainrate": func(c *ChaosConfig) { c.DrainRate = -0.5 },
	} {
		cfg := base
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s accepted", name)
				}
			}()
			GenerateChaos(cfg)
		}()
	}
}

// TestChaosZeroRatesStillValid: a config with every arrival process
// disabled is legal and yields an empty schedule — the storm machinery
// must tolerate rate 0 in both states.
func TestChaosZeroRatesStillValid(t *testing.T) {
	cfg := DefaultChaosConfig(2, units.Seconds(30))
	cfg.CalmLinkRate, cfg.StormLinkRate, cfg.BlipRate, cfg.DrainRate = 0, 0, 0, 0
	if s := GenerateChaos(cfg); len(s.Events) != 0 {
		t.Fatalf("all-zero rates generated %d events", len(s.Events))
	}
}

// TestChaosScheduleInjects wires a chaos schedule through the Injector
// against a bare simulation, checking the new kinds dispatch to their
// registered handlers in order.
func TestChaosScheduleInjects(t *testing.T) {
	cfg := DefaultChaosConfig(2, units.Seconds(30))
	s := GenerateChaos(cfg)
	sm := sim.New()
	inj := NewInjector(sm, s)
	got := map[Kind]int{}
	var last sim.Time
	for _, k := range []Kind{KindLinkDegrade, KindRouterBlip, KindReplicaDrain} {
		k := k
		inj.Handle(k, func(ev Event) {
			if ev.At < last {
				t.Fatalf("events delivered out of order: %v after %v", ev.At, last)
			}
			last = ev.At
			got[k]++
		})
	}
	inj.Arm()
	sm.Run(cfg.Horizon)
	total := 0
	for _, n := range got {
		total += n
	}
	if total != len(s.Events) {
		t.Fatalf("delivered %d of %d events", total, len(s.Events))
	}
	if inj.Injected() != len(s.Events) {
		t.Fatalf("Injected() = %d, want %d", inj.Injected(), len(s.Events))
	}
}
