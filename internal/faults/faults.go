// Package faults provides deterministic fault injection for the Bullet
// simulator: a seeded schedule generator plus an injector that replays
// the schedule as ordinary virtual-time events.
//
// Four fault kinds model the failure surface of a spatially-shared
// serving GPU:
//
//   - SM degradation (KindSMDegrade): a contiguous, granularity-aligned
//     SM range is throttled or killed outright. The resilience path is
//     Bullet's own mechanism — the resource manager rebuilds its
//     pre-configured masked-stream table around the dead SMs (§3.4) and
//     Algorithm 1 re-optimizes against the shrunken budget.
//   - Engine stalls (KindEngineStall): a transient hang of the prefill
//     or decode cycle, or an inflated metadata-buffer latency (§3.5),
//     bounded by a watchdog in internal/core.
//   - Replica crash (KindReplicaCrash): a whole replica goes down and
//     its in-flight requests must be re-routed (internal/cluster).
//   - KV capacity shrink (KindKVShrink): a fraction of the KV pool is
//     lost to fragmentation or a leak for a period; the pool drains the
//     lost blocks live and the memory-pressure subsystem
//     (internal/pressure) absorbs the squeeze.
//
// Everything is deterministic: Generate draws from one explicitly
// seeded *rand.Rand, events fire through internal/sim, and the same
// seed + schedule always produces bit-identical serving results. The
// package holds no goroutines, wall clocks, or global randomness — it
// is subject to the full bulletlint determinism contract.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

// Kind names a fault class.
type Kind string

const (
	// KindSMDegrade throttles or kills a contiguous SM range.
	KindSMDegrade Kind = "sm-degrade"
	// KindEngineStall hangs an engine cycle or delays the metadata buffer.
	KindEngineStall Kind = "engine-stall"
	// KindReplicaCrash takes a whole replica down for a recovery period.
	KindReplicaCrash Kind = "replica-crash"
	// KindKVShrink retires a fraction of the KV pool's capacity
	// (fragmentation or a leak) for a period, then restores it.
	KindKVShrink Kind = "kv-shrink"
	// KindLinkDegrade degrades (added per-dispatch delay) or severs
	// (full loss) the router↔replica KV-transfer link for a period —
	// the network fault domain of internal/cluster.
	KindLinkDegrade Kind = "link-degrade"
	// KindRouterBlip freezes router dispatch for a period; arrivals
	// queue at the router and flush when it comes back.
	KindRouterBlip Kind = "router-blip"
	// KindReplicaDrain asks a replica to restart: with resilience on the
	// cluster drains it gracefully (stop admitting, hand off waiting
	// work, finish in-flight decode, readmit after Recovery); without,
	// the restart is abrupt and reuses the crash failover path.
	KindReplicaDrain Kind = "replica-drain"
)

// Target selects which component an engine stall hits.
type Target string

const (
	// TargetPrefill hangs the prefill engine's cycle.
	TargetPrefill Target = "prefill"
	// TargetDecode hangs the decode engine's cycle.
	TargetDecode Target = "decode"
	// TargetBuffer inflates the metadata buffer's transfer latency.
	TargetBuffer Target = "buffer"
)

// Event is one scheduled fault. Only the fields of its Kind are
// meaningful; the rest stay zero.
type Event struct {
	At   sim.Time
	Kind Kind

	// KindSMDegrade: SMs [FirstSM, FirstSM+NumSMs) drop to speed factor
	// Throttle (0 dead, fractions throttled) for Duration, then recover.
	FirstSM  int
	NumSMs   int
	Throttle float64
	Duration sim.Time

	// KindEngineStall: Target hangs (or, for TargetBuffer, slows) for
	// Stall of virtual time.
	Target Target
	Stall  sim.Time

	// KindReplicaCrash: cluster replica index Replica goes down and is
	// readmitted after Recovery.
	Replica  int
	Recovery sim.Time

	// KindKVShrink: KVFraction of the pool's current capacity retires
	// for Duration, then restores.
	KVFraction float64

	// KindLinkDegrade: the link to Replica adds LinkDelay to every
	// dispatch — or black-holes dispatches entirely when LinkLoss — for
	// Duration, then restores. KindRouterBlip freezes dispatch for
	// Duration; KindReplicaDrain restarts Replica with readmission
	// after Recovery.
	LinkDelay sim.Time
	LinkLoss  bool
}

// Schedule is a generated fault timeline, sorted by At.
type Schedule struct {
	Seed   int64
	Events []Event
}

// Downtime sums the scheduled outage spans across all events: degrade
// durations, stall lengths, and replica recovery delays. Spans may
// overlap in wall time; this is injected-fault volume, not availability.
func (s Schedule) Downtime() units.Seconds {
	var d units.Seconds
	for _, ev := range s.Events {
		d += ev.Duration + ev.Stall + ev.Recovery
	}
	return d
}

// Config parameterizes Generate. Rates are events per second of virtual
// time over [0, Horizon); a zero rate disables that kind.
type Config struct {
	Seed    int64
	Horizon sim.Time
	NumSMs  int
	// Replicas bounds KindReplicaCrash targets; single-GPU runs use 1.
	Replicas int

	DegradeRate float64
	StallRate   float64
	CrashRate   float64
	// KVShrinkRate is the arrival rate of KV capacity-shrink faults
	// (0 in DefaultConfig; enable it for memory-pressure runs).
	KVShrinkRate float64

	// MeanDegradeDuration is the mean transient-degradation length.
	MeanDegradeDuration sim.Time
	// MaxDegradeFraction caps the SM span of one degrade event as a
	// fraction of the device.
	MaxDegradeFraction float64
	// DeadProb is the probability a degraded range is fully dead
	// (Throttle 0) rather than throttled.
	DeadProb float64

	// MeanStall is the mean engine-cycle hang length.
	MeanStall sim.Time
	// MeanBufferDelay is the mean inflated metadata-buffer latency.
	MeanBufferDelay sim.Time

	// MeanRecovery is the mean replica restart delay.
	MeanRecovery sim.Time

	// MeanKVShrinkFraction is the mean fraction of KV capacity one
	// shrink event retires (drawn values are capped at 0.9 so the pool
	// never vanishes entirely).
	MeanKVShrinkFraction float64
	// MeanKVShrinkDuration is the mean time until the capacity restores.
	MeanKVShrinkDuration sim.Time
}

// DefaultConfig returns a moderate single-replica fault mix for a device
// of numSMs over the given horizon: transient SM degradations, shorter
// engine stalls, and no crashes (enable CrashRate for cluster runs).
func DefaultConfig(numSMs int, horizon sim.Time) Config {
	return Config{
		Seed:                1,
		Horizon:             horizon,
		NumSMs:              numSMs,
		Replicas:            1,
		DegradeRate:         0.05,
		StallRate:           0.05,
		CrashRate:           0,
		MeanDegradeDuration: units.Seconds(4),
		MaxDegradeFraction:  0.25,
		DeadProb:            0.5,
		MeanStall:           units.FromMs(80),
		MeanBufferDelay:     units.FromMs(2),
		MeanRecovery:        units.Seconds(2),

		KVShrinkRate:         0,
		MeanKVShrinkFraction: 0.3,
		MeanKVShrinkDuration: units.Seconds(5),
	}
}

// Generate derives a fault schedule from cfg, deterministically from
// cfg.Seed. Each kind's arrivals form an independent Poisson process;
// the merged timeline is sorted by fire time with the generation order
// (degrade, stall, crash) breaking ties stably.
func Generate(cfg Config) Schedule {
	if cfg.Horizon <= 0 || cfg.NumSMs <= 0 {
		panic(fmt.Sprintf("faults: invalid config horizon=%v numSMs=%d", cfg.Horizon, cfg.NumSMs))
	}
	if cfg.DegradeRate < 0 || cfg.StallRate < 0 || cfg.CrashRate < 0 || cfg.KVShrinkRate < 0 {
		panic(fmt.Sprintf("faults: negative fault rate in config %+v", cfg))
	}
	if cfg.MeanKVShrinkFraction < 0 || cfg.MeanKVShrinkFraction > 1 {
		panic(fmt.Sprintf("faults: MeanKVShrinkFraction %v outside [0,1]", cfg.MeanKVShrinkFraction))
	}
	if cfg.MaxDegradeFraction < 0 || cfg.MaxDegradeFraction > 1 {
		panic(fmt.Sprintf("faults: MaxDegradeFraction %v outside [0,1]", cfg.MaxDegradeFraction))
	}
	if cfg.DeadProb < 0 || cfg.DeadProb > 1 {
		panic(fmt.Sprintf("faults: DeadProb %v outside [0,1]", cfg.DeadProb))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Schedule{Seed: cfg.Seed}
	for _, t := range arrivals(rng, cfg.DegradeRate, cfg.Horizon) {
		s.Events = append(s.Events, degradeEvent(rng, cfg, t))
	}
	for _, t := range arrivals(rng, cfg.StallRate, cfg.Horizon) {
		s.Events = append(s.Events, stallEvent(rng, cfg, t))
	}
	for _, t := range arrivals(rng, cfg.CrashRate, cfg.Horizon) {
		s.Events = append(s.Events, crashEvent(rng, cfg, t))
	}
	// Drawn last so schedules generated before this kind existed stay
	// bit-identical (a zero rate consumes no randomness).
	for _, t := range arrivals(rng, cfg.KVShrinkRate, cfg.Horizon) {
		s.Events = append(s.Events, kvShrinkEvent(rng, cfg, t))
	}
	sort.SliceStable(s.Events, func(i, j int) bool {
		return s.Events[i].At < s.Events[j].At
	})
	return s
}

// arrivals returns Poisson event times in [0, horizon) at the given
// rate (events/s); a zero rate yields none.
func arrivals(rng *rand.Rand, rate float64, horizon sim.Time) []sim.Time {
	if rate <= 0 {
		return nil
	}
	var ts []sim.Time
	t := sim.Time(0)
	for {
		t += units.Over(units.Seconds(rng.ExpFloat64()), rate)
		if t >= horizon {
			return ts
		}
		ts = append(ts, t)
	}
}

// degradeEvent draws a granularity-aligned SM range, a throttle factor,
// and a transient duration.
func degradeEvent(rng *rand.Rand, cfg Config, t sim.Time) Event {
	maxSMs := int(cfg.MaxDegradeFraction * float64(cfg.NumSMs))
	maxSMs -= maxSMs % smmask.Granularity
	if maxSMs < smmask.Granularity {
		maxSMs = smmask.Granularity
	}
	n := smmask.Granularity * (1 + rng.Intn(maxSMs/smmask.Granularity))
	if n > cfg.NumSMs {
		n = cfg.NumSMs
	}
	slots := (cfg.NumSMs-n)/smmask.Granularity + 1
	first := smmask.Granularity * rng.Intn(slots)
	throttle := 0.0
	if rng.Float64() >= cfg.DeadProb {
		throttle = 0.25 + 0.5*rng.Float64()
	}
	return Event{
		At:       t,
		Kind:     KindSMDegrade,
		FirstSM:  first,
		NumSMs:   n,
		Throttle: throttle,
		Duration: units.Scale(cfg.MeanDegradeDuration, 0.5+rng.ExpFloat64()),
	}
}

// stallEvent picks a component uniformly and draws the hang length from
// the component's mean.
func stallEvent(rng *rand.Rand, cfg Config, t sim.Time) Event {
	targets := [3]Target{TargetPrefill, TargetDecode, TargetBuffer}
	target := targets[rng.Intn(len(targets))]
	mean := cfg.MeanStall
	if target == TargetBuffer {
		mean = cfg.MeanBufferDelay
	}
	return Event{
		At:     t,
		Kind:   KindEngineStall,
		Target: target,
		Stall:  units.Scale(mean, 0.5+rng.ExpFloat64()),
	}
}

// crashEvent picks a replica uniformly and draws its recovery delay.
func crashEvent(rng *rand.Rand, cfg Config, t sim.Time) Event {
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	return Event{
		At:       t,
		Kind:     KindReplicaCrash,
		Replica:  rng.Intn(replicas),
		Recovery: units.Scale(cfg.MeanRecovery, 0.5+rng.ExpFloat64()),
	}
}

// kvShrinkEvent draws the retired-capacity fraction (capped below 1 so
// the pool never vanishes) and the restore delay.
func kvShrinkEvent(rng *rand.Rand, cfg Config, t sim.Time) Event {
	frac := cfg.MeanKVShrinkFraction * (0.5 + rng.ExpFloat64())
	if frac > 0.9 {
		frac = 0.9
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	return Event{
		At:         t,
		Kind:       KindKVShrink,
		Replica:    rng.Intn(replicas),
		KVFraction: frac,
		Duration:   units.Scale(cfg.MeanKVShrinkDuration, 0.5+rng.ExpFloat64()),
	}
}

// Injector replays a schedule into a simulation, dispatching each event
// to the handler registered for its kind. Events with no handler are
// counted as dropped, not errors — a single-GPU run legitimately has no
// replica-crash handler.
type Injector struct {
	sim      *sim.Simulation
	schedule Schedule
	handlers map[Kind]func(Event)
	injected int
	dropped  int
	armed    bool
}

// NewInjector creates an injector for a schedule. Register handlers
// with Handle, then call Arm once to schedule the events.
func NewInjector(s *sim.Simulation, schedule Schedule) *Injector {
	if s == nil {
		panic("faults: NewInjector with nil simulation")
	}
	return &Injector{sim: s, schedule: schedule, handlers: map[Kind]func(Event){}}
}

// Schedule returns the timeline this injector replays.
func (in *Injector) Schedule() Schedule { return in.schedule }

// Handle registers the handler for a fault kind, replacing any previous
// one. It must be called before Arm.
func (in *Injector) Handle(k Kind, fn func(Event)) {
	if in.armed {
		panic(fmt.Sprintf("faults: Handle(%q) after Arm", k))
	}
	if fn == nil {
		panic(fmt.Sprintf("faults: nil handler for kind %q", k))
	}
	in.handlers[k] = fn
}

// Arm schedules every handled event as a simulation event at its fire
// time (clamped to now for events already in the past). It may be
// called only once.
func (in *Injector) Arm() {
	if in.armed {
		panic("faults: injector armed twice")
	}
	in.armed = true
	for _, ev := range in.schedule.Events {
		fn, ok := in.handlers[ev.Kind]
		if !ok {
			in.dropped++
			continue
		}
		at := units.Max(ev.At, in.sim.Now())
		ev := ev
		in.sim.Post(at, func() {
			in.injected++
			fn(ev)
		})
	}
}

// Injected returns how many events have fired so far.
func (in *Injector) Injected() int { return in.injected }

// Dropped returns how many events had no handler at Arm time.
func (in *Injector) Dropped() int { return in.dropped }

// ScheduledDowntime returns the schedule's total injected-fault volume.
func (in *Injector) ScheduledDowntime() units.Seconds { return in.schedule.Downtime() }
