package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

func testConfig() Config {
	cfg := DefaultConfig(108, units.Seconds(60))
	cfg.CrashRate = 0.02
	cfg.Replicas = 4
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testConfig())
	b := Generate(testConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.Events) == 0 {
		t.Fatal("default-rate schedule over 60s generated no events")
	}
	cfg := testConfig()
	cfg.Seed = 99
	c := Generate(cfg)
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateSortedAndValid(t *testing.T) {
	cfg := testConfig()
	s := Generate(cfg)
	var kinds = map[Kind]int{}
	last := sim.Time(0)
	for i, ev := range s.Events {
		if ev.At < last {
			t.Fatalf("event %d at %v fires before predecessor at %v", i, ev.At, last)
		}
		last = ev.At
		if ev.At < 0 || ev.At >= cfg.Horizon {
			t.Fatalf("event %d at %v outside horizon [0,%v)", i, ev.At, cfg.Horizon)
		}
		kinds[ev.Kind]++
		switch ev.Kind {
		case KindSMDegrade:
			if ev.FirstSM%smmask.Granularity != 0 || ev.NumSMs%smmask.Granularity != 0 {
				t.Fatalf("event %d: unaligned SM range [%d,%d)", i, ev.FirstSM, ev.FirstSM+ev.NumSMs)
			}
			if ev.FirstSM < 0 || ev.NumSMs <= 0 || ev.FirstSM+ev.NumSMs > cfg.NumSMs {
				t.Fatalf("event %d: SM range [%d,%d) outside device of %d",
					i, ev.FirstSM, ev.FirstSM+ev.NumSMs, cfg.NumSMs)
			}
			maxN := int(cfg.MaxDegradeFraction * float64(cfg.NumSMs))
			if ev.NumSMs > maxN {
				t.Fatalf("event %d: degrade span %d exceeds cap %d", i, ev.NumSMs, maxN)
			}
			if ev.Throttle < 0 || ev.Throttle >= 1 {
				t.Fatalf("event %d: throttle %v outside [0,1)", i, ev.Throttle)
			}
			if ev.Duration <= 0 {
				t.Fatalf("event %d: non-transient degrade duration %v", i, ev.Duration)
			}
		case KindEngineStall:
			if ev.Target != TargetPrefill && ev.Target != TargetDecode && ev.Target != TargetBuffer {
				t.Fatalf("event %d: unknown stall target %q", i, ev.Target)
			}
			if ev.Stall <= 0 {
				t.Fatalf("event %d: non-positive stall %v", i, ev.Stall)
			}
		case KindReplicaCrash:
			if ev.Replica < 0 || ev.Replica >= cfg.Replicas {
				t.Fatalf("event %d: replica %d outside fleet of %d", i, ev.Replica, cfg.Replicas)
			}
			if ev.Recovery <= 0 {
				t.Fatalf("event %d: non-positive recovery %v", i, ev.Recovery)
			}
		default:
			t.Fatalf("event %d: unknown kind %q", i, ev.Kind)
		}
	}
	for _, k := range []Kind{KindSMDegrade, KindEngineStall, KindReplicaCrash} {
		if kinds[k] == 0 {
			t.Errorf("no %q events generated over a 60s horizon", k)
		}
	}
	if s.Downtime() <= 0 {
		t.Fatalf("non-empty schedule reports downtime %v", s.Downtime())
	}
}

func TestGenerateZeroRates(t *testing.T) {
	cfg := testConfig()
	cfg.DegradeRate, cfg.StallRate, cfg.CrashRate = 0, 0, 0
	s := Generate(cfg)
	if len(s.Events) != 0 {
		t.Fatalf("zero-rate config generated %d events", len(s.Events))
	}
	if s.Downtime() != 0 {
		t.Fatalf("empty schedule reports downtime %v", s.Downtime())
	}
}

func TestInjectorDispatch(t *testing.T) {
	s := sim.New()
	sched := Generate(testConfig())
	in := NewInjector(s, sched)
	var got []Event
	in.Handle(KindSMDegrade, func(ev Event) { got = append(got, ev) })
	in.Handle(KindEngineStall, func(ev Event) { got = append(got, ev) })
	// KindReplicaCrash left unhandled on purpose.
	in.Arm()
	var wantDropped int
	for _, ev := range sched.Events {
		if ev.Kind == KindReplicaCrash {
			wantDropped++
		}
	}
	if in.Dropped() != wantDropped {
		t.Fatalf("Dropped() = %d, want %d", in.Dropped(), wantDropped)
	}
	s.RunAll(1 << 20)
	if in.Injected() != len(sched.Events)-wantDropped {
		t.Fatalf("Injected() = %d, want %d", in.Injected(), len(sched.Events)-wantDropped)
	}
	// Handlers fire in timeline order with the original payloads.
	var want []Event
	for _, ev := range sched.Events {
		if ev.Kind != KindReplicaCrash {
			want = append(want, ev)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatched events diverge from schedule:\n%+v\nvs\n%+v", got, want)
	}
	if in.ScheduledDowntime() != sched.Downtime() {
		t.Fatalf("ScheduledDowntime() = %v, want %v", in.ScheduledDowntime(), sched.Downtime())
	}
}

func TestInjectorPastEventsClamp(t *testing.T) {
	s := sim.New()
	s.After(units.Seconds(10), func() {})
	s.RunAll(1)
	sched := Schedule{Events: []Event{{At: units.Seconds(1), Kind: KindEngineStall, Target: TargetDecode, Stall: units.FromMs(1)}}}
	in := NewInjector(s, sched)
	fired := sim.Time(-1)
	in.Handle(KindEngineStall, func(Event) { fired = s.Now() })
	in.Arm()
	s.RunAll(1 << 10)
	if fired != s.Now() || fired < units.Seconds(10) {
		t.Fatalf("past event fired at %v, want clamp to arm time 10s", fired)
	}
}

func TestInjectorArmTwicePanics(t *testing.T) {
	in := NewInjector(sim.New(), Schedule{})
	in.Arm()
	defer func() {
		if recover() == nil {
			t.Fatal("second Arm did not panic")
		}
	}()
	in.Arm()
}

func TestHandleAfterArmPanics(t *testing.T) {
	in := NewInjector(sim.New(), Schedule{})
	in.Arm()
	defer func() {
		if recover() == nil {
			t.Fatal("Handle after Arm did not panic")
		}
	}()
	in.Handle(KindSMDegrade, func(Event) {})
}

func TestGenerateKVShrinkEvents(t *testing.T) {
	cfg := testConfig()
	cfg.DegradeRate, cfg.StallRate, cfg.CrashRate = 0, 0, 0
	cfg.KVShrinkRate = 0.5
	s := Generate(cfg)
	if len(s.Events) == 0 {
		t.Fatal("no kv-shrink events over a 60s horizon at 0.5/s")
	}
	for i, ev := range s.Events {
		if ev.Kind != KindKVShrink {
			t.Fatalf("event %d: kind %q, want kv-shrink only", i, ev.Kind)
		}
		if ev.KVFraction <= 0 || ev.KVFraction > 0.9 {
			t.Fatalf("event %d: fraction %v outside (0, 0.9]", i, ev.KVFraction)
		}
		if ev.Replica < 0 || ev.Replica >= cfg.Replicas {
			t.Fatalf("event %d: replica %d outside fleet of %d", i, ev.Replica, cfg.Replicas)
		}
		if ev.Duration <= 0 {
			t.Fatalf("event %d: non-transient shrink duration %v", i, ev.Duration)
		}
	}
	// Downtime is the crude disrupted-time sum, so shrink durations count.
	if s.Downtime() <= 0 {
		t.Fatalf("kv-shrink-only schedule reports downtime %v", s.Downtime())
	}
}

func TestInjectorScheduleAccessor(t *testing.T) {
	sched := Schedule{Events: []Event{{At: units.Seconds(1), Kind: KindKVShrink, KVFraction: 0.5}}}
	in := NewInjector(sim.New(), sched)
	if !reflect.DeepEqual(in.Schedule(), sched) {
		t.Fatalf("Schedule() = %+v, want %+v", in.Schedule(), sched)
	}
}
