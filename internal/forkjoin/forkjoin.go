// Package forkjoin is the repository's single concurrency harness: a
// deterministic, bounded fork/join executor for embarrassingly parallel
// work such as advancing isolated cluster replicas between router
// decision points or running independent sweep rows.
//
// The determinism contract (DESIGN.md, "Concurrency contract") is that
// the OUTPUT of a fork/join region is a pure function of its inputs and
// never of the Go scheduler:
//
//   - results are index-addressed: task i writes only slot i, so the
//     join observes the same slice regardless of completion order;
//   - task bodies own their state: they may not read or write anything
//     another task can write (machine-checked by the bulletlint
//     replicaisolation and mergeorder analyzers);
//   - randomness inside a task comes from ForkSeed(seed, i), never from
//     shared or global sources (machine-checked by nodeterm).
//
// Under that contract Do(n, 1, fn) and Do(n, w, fn) are byte-identical
// for every w, which is what the ci.sh GOMAXPROCS=1-vs-4 equivalence
// gate pins. Every other package in the module is forbidden from using
// go statements, channels, select, or sync by the harnessonly analyzer;
// concurrency is obtained exclusively by calling this package.
package forkjoin

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the harness regardless of GOMAXPROCS: fork/join
// regions here are CPU-bound simulation advances, so parallelism past
// the core count only adds scheduling noise.
const maxWorkers = 64

// Workers returns the default parallelism: GOMAXPROCS capped at
// maxWorkers. By the isolation contract the value never affects results,
// only wall-clock time, so reading the runtime configuration here does
// not breach the determinism rules.
func Workers() int {
	w := runtime.GOMAXPROCS(0)
	if w > maxWorkers {
		w = maxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// TaskPanic is the panic value Do re-throws when a task body panics: the
// original value plus the task context (index, region size) and the
// panicking task's stack. When several tasks panic in one region the
// lowest task index deterministically wins.
type TaskPanic struct {
	Task  int
	N     int
	Value any
	Stack []byte
}

func (e *TaskPanic) Error() string {
	return fmt.Sprintf("forkjoin: task %d of %d panicked: %v\n%s", e.Task, e.N, e.Value, e.Stack)
}

// Unwrap exposes the original panic value when it was an error, so
// errors.Is/As keep working through the harness boundary.
func (e *TaskPanic) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Do runs fn(0), fn(1), ..., fn(n-1) with at most `workers` concurrent
// executions and blocks until every task has finished. workers <= 0
// selects the Workers() default; workers == 1 (or n == 1) runs every
// task inline on the calling goroutine in index order.
//
// Task bodies must satisfy the isolation contract in the package
// comment. If any task panics, Do panics with a *TaskPanic for the
// lowest-indexed panicking task after all other tasks have completed, in
// serial and parallel mode alike.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	var box panicBox
	if workers == 1 {
		for i := 0; i < n; i++ {
			box.runTask(i, n, fn)
		}
		box.rethrow()
		return
	}

	var (
		next int64 // next undispatched task index
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= n {
					return
				}
				box.runTask(i, n, fn)
			}
		}()
	}
	wg.Wait()
	box.rethrow()
}

// panicBox keeps the lowest-task-index panic of one fork/join region.
// Each Do call owns its own box, so nested and concurrent regions never
// see each other's panics.
type panicBox struct {
	mu sync.Mutex
	tp *TaskPanic
}

// runTask executes one task, converting a panic into the deterministic
// TaskPanic record; the region runs its remaining tasks to completion
// (in serial and parallel mode alike) and the lowest index wins at the
// join.
func (b *panicBox) runTask(i, n int, fn func(int)) {
	defer func() {
		if v := recover(); v != nil {
			stack := make([]byte, 16<<10)
			stack = stack[:runtime.Stack(stack, false)]
			b.record(&TaskPanic{Task: i, N: n, Value: v, Stack: stack})
		}
	}()
	fn(i)
}

func (b *panicBox) record(tp *TaskPanic) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tp == nil || tp.Task < b.tp.Task {
		b.tp = tp
	}
}

func (b *panicBox) rethrow() {
	b.mu.Lock()
	tp := b.tp
	b.tp = nil
	b.mu.Unlock()
	if tp != nil {
		//lint:ignore panicmsg TaskPanic's Error carries the task index, region size, and original stack
		panic(tp)
	}
}

// Map runs fn over every index and returns the index-addressed result
// slice: out[i] is fn(i) regardless of completion order. This is the
// join shape the mergeorder analyzer steers callers toward — never
// append in completion order, never drain a results channel.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// ForkSeed derives the sub-seed for task i of a region seeded with
// seed. It is a splitmix64-style mix: deterministic, stateless, and
// well-spread even for adjacent task indices, so per-task *rand.Rand
// streams are independent of both each other and the worker schedule.
func ForkSeed(seed int64, task int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(task+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Memo is a concurrency-safe memo table for deterministic computations:
// Get returns the cached value for a key, computing it at most once per
// process. It exists so packages outside the harness can share
// deterministic per-process caches (e.g. fitted estimator parameters)
// without owning sync primitives of their own, which the harnessonly
// analyzer forbids. Because compute must be a pure function of the key,
// which caller wins the race is unobservable in the results.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// Get returns the memoized value for key, invoking compute under the
// table lock if the key has not been seen. compute must be deterministic
// in key; it must not recursively call Get on the same Memo.
func (c *Memo[K, V]) Get(key K, compute func() V) V {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[key]; ok {
		return v
	}
	if c.m == nil {
		c.m = map[K]V{}
	}
	v := compute()
	c.m[key] = v
	return v
}
