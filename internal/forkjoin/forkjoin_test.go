package forkjoin

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// TestMapSerialParallelIdentical is the package's core contract: for an
// isolated task body, the result slice is byte-identical across worker
// counts, including the inline serial path.
func TestMapSerialParallelIdentical(t *testing.T) {
	const n = 200
	task := func(i int) float64 {
		// Per-task seeded sub-state, as the contract requires.
		r := rand.New(rand.NewSource(ForkSeed(42, i)))
		sum := 0.0
		for k := 0; k < 50; k++ {
			sum += r.Float64() * float64(i+1)
		}
		return sum
	}
	serial := Map(n, 1, task)
	for _, w := range []int{2, 4, 16, 0} {
		got := Map(n, w, task)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d diverged from serial", w)
		}
	}
}

func TestDoRunsEveryTaskExactlyOnce(t *testing.T) {
	for _, w := range []int{1, 3, 8} {
		const n = 97
		var counts [n]int64
		Do(n, w, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", w, i, c)
			}
		}
	}
}

func TestDoZeroAndNegativeN(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	Do(-3, 4, func(int) { ran = true })
	if ran {
		t.Fatal("task body ran for n <= 0")
	}
}

// TestPanicPropagation: the lowest-indexed panicking task wins
// deterministically, the remaining tasks still run, and the TaskPanic
// carries the task context — in serial and parallel mode alike.
func TestPanicPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	for _, w := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			const n = 64
			var ran [n]int64
			defer func() {
				v := recover()
				tp, ok := v.(*TaskPanic)
				if !ok {
					t.Fatalf("recovered %T (%v), want *TaskPanic", v, v)
				}
				if tp.Task != 3 || tp.N != n {
					t.Fatalf("TaskPanic task=%d n=%d, want lowest panicking task 3 of %d", tp.Task, tp.N, n)
				}
				if !errors.Is(tp, sentinel) {
					t.Fatalf("TaskPanic does not unwrap to the original error: %v", tp)
				}
				if !strings.Contains(tp.Error(), "task 3 of 64") {
					t.Fatalf("TaskPanic message lacks task context: %s", tp.Error())
				}
				for i := range ran {
					if atomic.LoadInt64(&ran[i]) != 1 {
						t.Fatalf("task %d did not run to the join (panic aborted the region)", i)
					}
				}
			}()
			Do(n, w, func(i int) {
				atomic.AddInt64(&ran[i], 1)
				if i == 3 || i == 40 {
					panic(fmt.Errorf("task %d: %w", i, sentinel))
				}
			})
			t.Fatal("Do returned instead of panicking")
		})
	}
}

func TestTaskPanicUnwrapNonError(t *testing.T) {
	tp := &TaskPanic{Task: 1, N: 2, Value: "not an error"}
	if tp.Unwrap() != nil {
		t.Fatal("non-error panic value unwrapped to an error")
	}
}

func TestForkSeedDeterministicAndSpread(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := ForkSeed(7, i)
		if s != ForkSeed(7, i) {
			t.Fatalf("ForkSeed(7, %d) not deterministic", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ForkSeed collision: tasks %d and %d both map to %d", prev, i, s)
		}
		seen[s] = i
	}
	if ForkSeed(7, 0) == ForkSeed(8, 0) {
		t.Fatal("different base seeds produced the same sub-seed")
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	var m Memo[string, int]
	var calls int64
	compute := func() int { atomic.AddInt64(&calls, 1); return 11 }
	Do(32, 8, func(i int) {
		if got := m.Get("k", compute); got != 11 {
			t.Errorf("Get = %d, want 11", got)
		}
	})
	if calls != 1 {
		t.Fatalf("compute ran %d times, want exactly once", calls)
	}
	if got := m.Get("other", func() int { return 5 }); got != 5 {
		t.Fatalf("second key = %d, want 5", got)
	}
}

func TestWorkersBounded(t *testing.T) {
	if w := Workers(); w < 1 || w > maxWorkers {
		t.Fatalf("Workers() = %d, want within [1, %d]", w, maxWorkers)
	}
}

// TestNestedRegions: a parallel region may fork inner regions; panics in
// one task's inner region must not leak into sibling tasks.
func TestNestedRegions(t *testing.T) {
	got := Map(8, 4, func(i int) int {
		inner := Map(4, 2, func(j int) int { return i*10 + j })
		sum := 0
		for _, v := range inner {
			sum += v
		}
		return sum
	})
	for i, v := range got {
		want := i*40 + 6
		if v != want {
			t.Fatalf("outer task %d = %d, want %d", i, v, want)
		}
	}
}
