package gpusim

import "repro/internal/units"

// LatencyBackend is the pluggable per-kernel latency model of a GPU: the
// fidelity point that turns a resident kernel into an execution-rate
// demand. The fluid simulator owns concurrency (membership changes,
// bandwidth water-filling, completion rescheduling); the backend owns how
// fast one kernel would run under the current mix.
//
// Contract (DESIGN.md §15):
//
//   - Determinism: Begin/Demand must be pure in (GPU state, launch,
//     backend state). Any randomness must come from a seeded stream owned
//     by the backend (splitmix via forkjoin.ForkSeed), advanced only in
//     Begin so replays are reproducible launch-for-launch.
//   - Units: Demand returns a progress rate (fraction of the kernel per
//     second) and the DRAM bandwidth consumed at that rate; the simulator
//     may throttle the rate when total bandwidth demand exceeds the
//     device peak, scaling progress and bandwidth together.
//   - Demand is called at every rate recomputation, i.e. on every kernel
//     start and finish while the kernel is resident; it must not mutate
//     backend state (only Begin may).
type LatencyBackend interface {
	// Name identifies the backend ("analytic", "sampled", "hierarchy").
	Name() string
	// Begin fires once when a kernel becomes resident, before the first
	// Demand call. Backends that fix per-execution state — e.g. a
	// sampled latency draw — do it here.
	Begin(g *GPU, l *launch)
	// Demand returns the kernel's current nominal progress rate and the
	// bandwidth it would consume at that rate, before device-wide
	// bandwidth arbitration.
	Demand(g *GPU, l *launch) KernelDemand
}

// KernelDemand is one resident kernel's instantaneous execution demand:
// the progress rate it would sustain with unlimited DRAM bandwidth, the
// bandwidth it consumes at that rate, and the effective DRAM volume one
// full execution moves — the denominator the water-filling uses to
// convert a granted bandwidth share back into a progress rate when the
// kernel is throttled. Backends that inflate memory traffic (extra cache
// misses) report Volume > Kernel.Bytes so throttled progress slows
// proportionally.
type KernelDemand struct {
	Rate   units.PerSec
	BW     units.BytesPerSec
	Volume units.Bytes
}

// Backend name constants, shared with core.Options and the CLIs.
const (
	BackendAnalytic  = "analytic"
	BackendSampled   = "sampled"
	BackendHierarchy = "hierarchy"
)

// AnalyticBackend is the default latency model: the roofline fluid model
// (solo rate from the kernel's SM allocation, wave quantization, co-run
// penalties) that the simulator used before backends became pluggable.
// It is stateless; its Demand is byte-identical to the pre-refactor
// inline computation.
type AnalyticBackend struct{}

// Name implements LatencyBackend.
func (AnalyticBackend) Name() string { return BackendAnalytic }

// Begin implements LatencyBackend; the analytic model has no
// per-execution state.
func (AnalyticBackend) Begin(*GPU, *launch) {}

// Demand implements LatencyBackend with the analytic fluid model.
func (AnalyticBackend) Demand(g *GPU, l *launch) KernelDemand {
	meff := g.effectiveSMs(l)
	nominal, _ := g.soloRate(l, meff, g.overlapFraction(l))
	return KernelDemand{Rate: nominal, BW: l.k.Bytes.AtRate(nominal), Volume: l.k.Bytes}
}
