package gpusim

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// testTable builds a small valid latency table: two operators, gemm with
// three token supports and copy with one.
func testTable() *LatencyTable {
	return &LatencyTable{
		RefSMs: 8,
		Ops: map[string][]OpSupport{
			"gemm": {
				{Tokens: 64, Q: []units.Seconds{1e-4, 2e-4, 3e-4}},
				{Tokens: 256, Q: []units.Seconds{2e-4, 4e-4, 6e-4}},
				{Tokens: 1024, Q: []units.Seconds{8e-4, 1.6e-3, 2.4e-3}},
			},
			"copy": {
				{Tokens: 128, Q: []units.Seconds{5e-5, 1e-4, 2e-4}},
			},
		},
	}
}

func TestLatencyTableValidate(t *testing.T) {
	if err := testTable().Validate(); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*LatencyTable)
		want string
	}{
		{"zero refsms", func(tb *LatencyTable) { tb.RefSMs = 0 }, "non-positive RefSMs"},
		{"no ops", func(tb *LatencyTable) { tb.Ops = map[string][]OpSupport{} }, "no operators"},
		{"empty supports", func(tb *LatencyTable) { tb.Ops["gemm"] = nil }, "no supports"},
		{"tokens not ascending", func(tb *LatencyTable) {
			tb.Ops["gemm"][1].Tokens = 64
		}, "not ascending"},
		{"grid size mismatch", func(tb *LatencyTable) {
			tb.Ops["gemm"][1].Q = tb.Ops["gemm"][1].Q[:2]
		}, "quantile grid size"},
		{"negative quantile", func(tb *LatencyTable) {
			tb.Ops["gemm"][0].Q[0] = -1
		}, "quantile 0 is"},
		{"nan quantile", func(tb *LatencyTable) {
			tb.Ops["gemm"][0].Q[1] = units.Seconds(nan())
		}, "quantile 1 is"},
		{"descending grid", func(tb *LatencyTable) {
			tb.Ops["gemm"][0].Q[2] = 1e-5
		}, "below quantile"},
	}
	for _, c := range cases {
		tb := testTable()
		c.mut(tb)
		err := tb.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
	var nilTable *LatencyTable
	if err := nilTable.Validate(); err == nil {
		t.Error("nil table validated")
	}
}

func nan() float64 { zero := 0.0; return zero / zero }

// TestSampleSupportContainment: every draw lies inside the operator's
// fitted [min, max] support, for u across and beyond [0,1] and token
// counts below, between, at, and above the supports.
func TestSampleSupportContainment(t *testing.T) {
	tb := testTable()
	for op, sup := range map[string][]OpSupport{"gemm": tb.Ops["gemm"], "copy": tb.Ops["copy"]} {
		lo := sup[0].Q[0]
		hi := sup[len(sup)-1].Q[len(sup[0].Q)-1]
		for _, tokens := range []int{1, 63, 64, 100, 256, 700, 1024, 5000} {
			for _, u := range []float64{-0.5, 0, 0.1, 0.25, 0.5, 0.9, 0.999, 1, 1.5} {
				got, ok := tb.Sample(op, tokens, u)
				if !ok {
					t.Fatalf("Sample(%q) not found", op)
				}
				if got < lo || got > hi {
					t.Errorf("Sample(%q, %d, %v) = %v outside support [%v, %v]", op, tokens, u, got, lo, hi)
				}
			}
		}
	}
	if _, ok := tb.Sample("absent", 128, 0.5); ok {
		t.Error("Sample on absent operator reported ok")
	}
}

// TestSampleMonotoneInTokens: at any fixed quantile draw u, sampled
// latency never decreases as the token coordinate grows — the isotonic
// invariant the calibration fit enforces across supports.
func TestSampleMonotoneInTokens(t *testing.T) {
	tb := testTable()
	for _, u := range []float64{0, 0.2, 0.5, 0.77, 1} {
		prev := units.Seconds(0)
		for tokens := 1; tokens <= 2048; tokens += 7 {
			got, ok := tb.Sample("gemm", tokens, u)
			if !ok {
				t.Fatal("gemm missing")
			}
			if got < prev {
				t.Fatalf("Sample(gemm, %d, %v) = %v < previous %v: not monotone in tokens", tokens, u, got, prev)
			}
			prev = got
		}
	}
}

// runSampledScenario launches a fixed mixed workload on a fresh device
// with a sampled backend and returns every kernel record.
func runSampledScenario(seed int64) []KernelRecord {
	s := sim.New()
	g := New(s, TestGPU())
	g.SetBackend(NewSampledBackend(testTable(), seed))
	var recs []KernelRecord
	g.Trace = func(r KernelRecord) { recs = append(recs, r) }
	a := g.NewStream(g.FullMask())
	b := g.NewStream(g.FullMask().Prefix(4))
	for i := 0; i < 6; i++ {
		g.Launch(a, Kernel{Name: "gemm", FLOPs: 1e9, Bytes: 1e6, Grid: 8, Tokens: 64 << i}, nil)
		g.Launch(b, Kernel{Name: "copy", Bytes: 1e7, Tokens: 128}, nil)
	}
	s.RunAll(10000)
	return recs
}

// TestSampledBackendReplay: identical seeds replay identical kernel
// timings; a different seed moves them. Exercised under -race by ci.sh.
func TestSampledBackendReplay(t *testing.T) {
	a, b := runSampledScenario(7), runSampledScenario(7)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed replay diverged:\n%v\n%v", a, b)
	}
	c := runSampledScenario(8)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical records — draws unused?")
	}
}

// TestSampledBackendMiss: operators absent from the table fall back to
// the analytic rate (scale 1) and are counted; the draw stream still
// advances so table contents cannot shift later kernels' draws.
func TestSampledBackendMiss(t *testing.T) {
	run := func(backend LatencyBackend) KernelRecord {
		s := sim.New()
		g := New(s, TestGPU())
		g.SetBackend(backend)
		st := g.NewStream(g.FullMask())
		var rec KernelRecord
		g.Launch(st, Kernel{Name: "unknown-op", FLOPs: 1e9, Bytes: 1e6, Grid: 8, Tokens: 64}, func(r KernelRecord) { rec = r })
		s.RunAll(100)
		return rec
	}
	sb := NewSampledBackend(testTable(), 3)
	got := run(sb)
	want := run(AnalyticBackend{})
	if got.End != want.End || got.Start != want.Start {
		t.Errorf("miss fallback timing %+v differs from analytic %+v", got, want)
	}
	if sb.Misses() != 1 || sb.Draws() != 1 {
		t.Errorf("misses = %d draws = %d, want 1 and 1", sb.Misses(), sb.Draws())
	}
}

// TestHierarchyIdentityWithoutL2: with L2 modelling disabled (zero
// capacity) the hierarchy backend must be bit-identical to the analytic
// backend — the inflation factor is exactly 1 and the identity arithmetic
// introduces no float error.
func TestHierarchyIdentityWithoutL2(t *testing.T) {
	run := func(backend LatencyBackend) []KernelRecord {
		spec := TestGPU()
		spec.L2Bytes = 0
		s := sim.New()
		g := New(s, spec)
		g.SetBackend(backend)
		var recs []KernelRecord
		g.Trace = func(r KernelRecord) { recs = append(recs, r) }
		a := g.NewStream(g.FullMask())
		b := g.NewStream(g.FullMask().Prefix(4))
		for i := 0; i < 4; i++ {
			g.Launch(a, Kernel{Name: "gemm", FLOPs: 1e9, Bytes: 2e6, Grid: 8}, nil)
			g.Launch(b, Kernel{Name: "copy", Bytes: 1e7}, nil)
		}
		s.RunAll(10000)
		return recs
	}
	if a, h := run(AnalyticBackend{}), run(HierarchyBackend{}); !reflect.DeepEqual(a, h) {
		t.Errorf("hierarchy with L2 disabled diverged from analytic:\n%v\n%v", a, h)
	}
}

// TestHierarchySlowsCoLocatedKernels: with L2 enabled, co-located
// memory-hungry kernels finish later than under the analytic backend,
// and solo kernels are untouched.
func TestHierarchySlowsCoLocatedKernels(t *testing.T) {
	run := func(backend LatencyBackend, coRun bool) sim.Time {
		s := sim.New()
		g := New(s, TestGPU())
		g.SetBackend(backend)
		a := g.NewStream(g.FullMask())
		g.Launch(a, Kernel{Name: "big", Bytes: 5e7}, nil)
		if coRun {
			b := g.NewStream(g.FullMask())
			g.Launch(b, Kernel{Name: "rival", Bytes: 5e7}, nil)
		}
		s.RunAll(10000)
		return s.Now()
	}
	if solo, an := run(HierarchyBackend{}, false), run(AnalyticBackend{}, false); solo != an {
		t.Errorf("solo hierarchy makespan %v != analytic %v", solo, an)
	}
	if co, an := run(HierarchyBackend{}, true), run(AnalyticBackend{}, true); co <= an {
		t.Errorf("co-located hierarchy makespan %v not above analytic %v", co, an)
	}
}

// TestHierarchyCacheFitNoInflation: working sets that fit even the
// shared L2 partition see no inflation — with near-perfect reuse the
// solo miss rate is floored (minMissRate) above the shared one, and the
// backend clamps the ratio at exactly 1, matching analytic timing.
func TestHierarchyCacheFitNoInflation(t *testing.T) {
	run := func(backend LatencyBackend) sim.Time {
		spec := TestGPU()
		spec.L2ReuseFrac = 0.98
		s := sim.New()
		g := New(s, spec)
		g.SetBackend(backend)
		a := g.NewStream(g.FullMask())
		b := g.NewStream(g.FullMask())
		g.Launch(a, Kernel{Name: "small-a", Bytes: 1e6}, nil)
		g.Launch(b, Kernel{Name: "small-b", Bytes: 1e6}, nil)
		s.RunAll(10000)
		return s.Now()
	}
	if h, an := run(HierarchyBackend{}), run(AnalyticBackend{}); h != an {
		t.Errorf("cache-fit hierarchy makespan %v != analytic %v", h, an)
	}
}

// TestSetBackendGuards: nil restores the analytic default; swapping with
// resident kernels panics (mid-flight demands would mix two models).
func TestSetBackendGuards(t *testing.T) {
	s := sim.New()
	g := New(s, TestGPU())
	g.SetBackend(nil)
	if g.Backend().Name() != BackendAnalytic {
		t.Errorf("SetBackend(nil) left %q, want analytic", g.Backend().Name())
	}
	st := g.NewStream(g.FullMask())
	g.Launch(st, Kernel{Name: "long", FLOPs: 1e12}, nil)
	for i := 0; i < 50 && len(g.running) == 0; i++ {
		s.Step()
	}
	if len(g.running) == 0 {
		t.Fatal("kernel never became resident")
	}
	defer func() {
		if r := recover(); r == nil {
			t.Error("SetBackend with resident kernels did not panic")
		}
	}()
	g.SetBackend(HierarchyBackend{})
}

// TestNewSampledBackendRejectsBadTable: constructing over an invalid
// table is a programming error and must panic with the validation text.
func TestNewSampledBackendRejectsBadTable(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "non-positive RefSMs") {
			t.Errorf("panic = %v, want RefSMs validation message", r)
		}
	}()
	NewSampledBackend(&LatencyTable{}, 1)
}
