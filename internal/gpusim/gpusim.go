// Package gpusim is a fluid-rate discrete-event simulator of a modern GPU,
// the hardware substrate this reproduction substitutes for the paper's
// A100 (see DESIGN.md §1).
//
// The model captures exactly the effects Bullet's design reasons about:
//
//   - SM-masked streams (libsmctrl-style): kernels only occupy the SMs of
//     their stream's mask, captured at launch time.
//   - Wave quantization (Eq. 1): a kernel's compute-limited time is
//     inflated by the idle tail of its final wave.
//   - Roofline execution: each kernel is a fluid with FLOPs and bytes;
//     its solo rate is limited by both the compute of its SM allocation
//     and the bandwidth reachable from that many SMs (sub-linear compute,
//     super-linear bandwidth scaling, Fig. 7).
//   - Concurrency: overlapping masks split per-SM compute; total HBM
//     bandwidth is shared max–min fairly among resident kernels; co-runs
//     pay interference factors (p_c, p_b).
//
// Rates are recomputed at every kernel start/finish, and completion events
// rescheduled, so arbitrary spatial-temporal overlap is modelled without
// fixed time steps.
package gpusim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/timeline"
	"repro/internal/units"
)

// Kernel describes one unit of GPU work.
type Kernel struct {
	// Name appears in traces ("qkv", "attn-prefill", ...).
	Name string
	// FLOPs is the arithmetic work of the kernel.
	FLOPs units.FLOPs
	// Bytes is the DRAM traffic of the kernel.
	Bytes units.Bytes
	// Grid is the number of thread blocks; it drives wave quantization.
	// Zero means the work has no quantized shape (no tail-wave penalty).
	Grid int
	// Efficiency is the fraction of the device peak FLOPs this kernel
	// can sustain even in the best case (cuBLAS GEMM ≈ 0.92, paged
	// attention much lower). Zero defaults to 1.
	Efficiency float64
	// Tag groups kernels for utilization accounting ("prefill",
	// "decode", ...).
	Tag string
	// Tokens is the operator's size coordinate for profile-driven latency
	// tables (the sampled backend): new tokens for prefill operators,
	// attended context for prefill attention, batch rows for decode.
	// Zero means unindexed; the analytic backend ignores it entirely.
	Tokens int
	// CommBytes is interconnect traffic (tensor-parallel allreduce):
	// it adds a LinkBW-limited term to the kernel's roofline.
	CommBytes units.Bytes
	// Graph marks the kernel as part of a captured CUDA graph: it pays
	// no per-kernel launch overhead (the graph launch is paid by the
	// first kernel carrying GraphHead).
	Graph bool
	// GraphHead marks the first kernel of a graph launch.
	GraphHead bool
}

type launch struct {
	k      Kernel
	done   func(KernelRecord)
	stream *Stream

	// Running state.
	running   bool
	mask      smmask.Mask
	maskCount int
	remaining float64      // fraction of the kernel still to execute, in (0,1]
	rate      units.PerSec // fraction per second under the current regime
	startTime sim.Time
	overhead  sim.Time // launch overhead still to elapse before running
	complete  *sim.Event
	// weight is the kernel's compute intensity in [minComputeWeight, 1]:
	// how much of an SM's issue bandwidth it consumes. Memory-bound
	// kernels stall on DRAM and leave most compute cycles to co-resident
	// compute-bound kernels, which is what makes spatial prefill/decode
	// sharing profitable in the first place (§2.2.2).
	weight float64
	// scale is a backend-owned rate multiplier fixed at Begin time (1 for
	// the analytic model; the ratio of modelled to sampled latency for the
	// sampled backend).
	scale float64
}

// minComputeWeight keeps even pure-copy kernels consuming some issue
// slots.
const minComputeWeight = 0.05

// KernelRecord summarises one executed kernel for tracing and accounting.
type KernelRecord struct {
	Name     string
	Tag      string
	Start    sim.Time
	End      sim.Time
	SMs      int
	FLOPs    units.FLOPs
	Bytes    units.Bytes
	Grid     int
	WaveIdle float64 // idle ratio under the mask it actually ran on
}

// Duration returns the wall-clock execution time of the kernel.
func (r KernelRecord) Duration() sim.Time { return r.End - r.Start }

// Stream is a FIFO queue of kernels bound to an SM mask, the simulated
// equivalent of a CUDA stream with an smctrl mask.
type Stream struct {
	gpu   *GPU
	id    int
	mask  smmask.Mask
	queue []*launch
	// waiters fire when the stream drains.
	waiters []func()
}

// ID returns the stream's identifier on its GPU.
func (st *Stream) ID() int { return st.id }

// Mask returns the mask applied to subsequently launched kernels.
func (st *Stream) Mask() smmask.Mask { return st.mask }

// SetMask changes the mask for subsequently launched kernels. Kernels
// already running keep the mask they started with, matching
// libsmctrl_set_stream_mask semantics.
func (st *Stream) SetMask(m smmask.Mask) {
	if m.IsEmpty() {
		panic("gpusim: empty SM mask")
	}
	st.mask = m
}

// Busy reports whether the stream has queued or running work.
func (st *Stream) Busy() bool { return len(st.queue) > 0 }

// Depth returns the number of queued (including running) kernels.
func (st *Stream) Depth() int { return len(st.queue) }

// GPU is a simulated device. All methods must be called from the owning
// simulation's event loop (single-threaded).
type GPU struct {
	Spec Spec
	sim  *sim.Simulation

	streams []*Stream
	running []*launch

	// backend is the per-kernel latency model (never nil; analytic by
	// default). See backend.go for the contract.
	backend LatencyBackend

	// health is the per-SM speed factor in [0,1]: 1 healthy, 0 dead,
	// between the two throttled (thermal/ECC degradation). nil means the
	// whole device is healthy — the common case keeps its fast paths.
	health []float64

	lastUpdate sim.Time

	// Accounting integrals.
	flopsDone   units.FLOPs
	bytesDone   units.Bytes
	smBusyTime  units.SMSeconds // ∫ Σ_i m_eff_i dt  (SM·seconds of occupancy)
	anyBusyTime sim.Time        // wall time with ≥1 resident kernel
	lastAnyBusy bool
	tagFlops    map[string]units.FLOPs
	tagBytes    map[string]units.Bytes
	tagTime     map[string]units.SMSeconds // SM·seconds per tag

	// Trace receives a record per completed kernel when non-nil.
	Trace func(KernelRecord)

	// Sampler, when non-nil, is called at every rate recomputation with
	// the instantaneous utilization, enabling timeline figures.
	Sampler func(t sim.Time, u Utilization)

	// TL, when non-nil, records per-kernel spans (one lane per stream)
	// and occupancy/throughput counter samples on the shared timeline.
	TL *timeline.Recorder
}

// Utilization is an instantaneous snapshot of device activity.
type Utilization struct {
	// Compute is achieved FLOP rate / peak FLOPs.
	Compute float64
	// Bandwidth is achieved byte rate / peak bandwidth.
	Bandwidth float64
	// BusySMs is the number of SMs occupied by resident kernels.
	BusySMs units.SMs
	// Resident is the number of kernels currently executing.
	Resident int
}

// New creates a GPU attached to the simulation.
func New(s *sim.Simulation, spec Spec) *GPU {
	if spec.NumSMs <= 0 || spec.NumSMs > smmask.MaxSMs {
		panic(fmt.Sprintf("gpusim: invalid NumSMs %d", spec.NumSMs))
	}
	return &GPU{
		Spec:     spec,
		sim:      s,
		backend:  AnalyticBackend{},
		tagFlops: make(map[string]units.FLOPs),
		tagBytes: make(map[string]units.Bytes),
		tagTime:  make(map[string]units.SMSeconds),
	}
}

// Backend returns the active latency backend.
func (g *GPU) Backend() LatencyBackend { return g.backend }

// SetBackend swaps the latency backend. This is a setup-time operation:
// swapping while kernels are resident would re-rate in-flight work under
// a different model, so it panics instead.
func (g *GPU) SetBackend(b LatencyBackend) {
	if b == nil {
		b = AnalyticBackend{}
	}
	if len(g.running) > 0 {
		panic(fmt.Sprintf("gpusim: SetBackend(%s) with %d resident kernels", b.Name(), len(g.running)))
	}
	g.backend = b
}

// Sim returns the owning simulation.
func (g *GPU) Sim() *sim.Simulation { return g.sim }

// FullMask returns the mask covering every SM of the device.
func (g *GPU) FullMask() smmask.Mask { return smmask.Full(g.Spec.NumSMs) }

// deadDrainSMs is the effective compute granted to a kernel whose whole
// mask has failed: in-flight work on dead SMs drains at a trickle (the
// context-save / ECC-retire path) instead of deadlocking the simulation
// with a zero rate.
const deadDrainSMs = 0.5

// SetSMHealth sets the health of SMs [first, first+n) to h: 1 fully
// healthy, 0 dead, values between throttled. Resident kernels see their
// rates change immediately, but keep the masks they launched with — a
// failed SM does not migrate its thread blocks, they crawl (or stall at
// the deadDrainSMs floor) until the kernel retires, which is exactly why
// the layers above must rebuild masks around dead SMs.
func (g *GPU) SetSMHealth(first, n int, h float64) {
	if first < 0 || n <= 0 || first+n > g.Spec.NumSMs {
		panic(fmt.Sprintf("gpusim: SM health range [%d,%d) outside device of %d SMs",
			first, first+n, g.Spec.NumSMs))
	}
	if h < 0 || h > 1 || math.IsNaN(h) {
		panic(fmt.Sprintf("gpusim: SM health %v outside [0,1]", h))
	}
	g.advance()
	if g.health == nil {
		g.health = make([]float64, g.Spec.NumSMs)
		for i := range g.health {
			g.health[i] = 1
		}
	}
	for i := first; i < first+n; i++ {
		g.health[i] = h
	}
	g.recompute()
}

// SMHealth returns the health of SM i.
func (g *GPU) SMHealth(i int) float64 {
	if i < 0 || i >= g.Spec.NumSMs {
		panic(fmt.Sprintf("gpusim: SM index %d outside device of %d SMs", i, g.Spec.NumSMs))
	}
	if g.health == nil {
		return 1
	}
	return g.health[i]
}

// HealthyMask returns the set of SMs with nonzero health.
func (g *GPU) HealthyMask() smmask.Mask {
	if g.health == nil {
		return g.FullMask()
	}
	var m smmask.Mask
	for i, h := range g.health {
		if h > 0 {
			m.Set(i)
		}
	}
	return m
}

// HealthyCapacity returns the summed health of the device — the
// fractional SM count it can actually deliver.
func (g *GPU) HealthyCapacity() units.SMs {
	return units.SMs(g.maskHealth(g.FullMask()))
}

// maskHealth returns the summed health of the SMs in a mask — the
// capacity the mask delivers. With a fully healthy device this is the
// mask's population count, bit for bit.
func (g *GPU) maskHealth(m smmask.Mask) float64 {
	if g.health == nil {
		return float64(m.Count())
	}
	total := 0.0
	m.ForEach(func(i int) { total += g.health[i] })
	return total
}

// NewStream creates a stream with the given mask. Stream creation is a
// setup-time operation: steady-state rebuilds retarget existing streams
// via SetMask, so the allocations here run at most once per
// (phase, level) pair.
//
//bullet:hotpath-ignore stream creation is setup-time; rebuilds retarget existing streams in place
func (g *GPU) NewStream(mask smmask.Mask) *Stream {
	if mask.IsEmpty() {
		panic("gpusim: empty SM mask")
	}
	st := &Stream{gpu: g, id: len(g.streams), mask: mask}
	g.streams = append(g.streams, st)
	return st
}

// Launch enqueues a kernel on a stream. done (optional) fires when the
// kernel completes, receiving its execution record.
func (g *GPU) Launch(st *Stream, k Kernel, done func(KernelRecord)) {
	if k.FLOPs < 0 || k.Bytes < 0 || k.CommBytes < 0 ||
		(k.FLOPs == 0 && k.Bytes == 0 && k.CommBytes == 0) {
		panic(fmt.Sprintf("gpusim: kernel %q has no work", k.Name))
	}
	l := &launch{k: k, done: done, stream: st}
	st.queue = append(st.queue, l)
	if len(st.queue) == 1 {
		g.startHead(st)
	}
}

// Synchronize invokes fn once every kernel currently queued on the stream
// has completed. If the stream is idle, fn fires at the current time (as a
// fresh event, never inline).
func (g *GPU) Synchronize(st *Stream, fn func()) {
	if !st.Busy() {
		g.sim.PostAfter(0, fn)
		return
	}
	st.waiters = append(st.waiters, fn)
}

// startHead begins executing the kernel at the head of a stream's queue.
func (g *GPU) startHead(st *Stream) {
	l := st.queue[0]
	l.mask = st.mask
	l.maskCount = st.mask.Count()
	l.remaining = 1
	l.overhead = g.launchCost(l.k)
	if l.overhead > 0 {
		// CPU launch gap: the kernel becomes resident after the
		// overhead elapses.
		g.sim.PostAfter(l.overhead, func() { g.beginResident(l) })
		return
	}
	g.beginResident(l)
}

func (g *GPU) launchCost(k Kernel) sim.Time {
	switch {
	case k.GraphHead:
		return g.Spec.GraphLaunchOverhead
	case k.Graph:
		return 0
	default:
		return g.Spec.LaunchOverhead
	}
}

func (g *GPU) beginResident(l *launch) {
	g.advance()
	l.running = true
	l.startTime = g.sim.Now()
	l.weight = g.computeIntensity(l.k)
	l.scale = 1
	g.backend.Begin(g, l)
	g.running = append(g.running, l)
	g.recompute()
}

// computeIntensity estimates how compute-bound a kernel is: the fraction
// of its roofline time attributable to arithmetic.
func (g *GPU) computeIntensity(k Kernel) float64 {
	eff := k.Efficiency
	if eff == 0 {
		eff = 1
	}
	ct := k.FLOPs.Div(units.Scale(g.Spec.PeakFLOPS, eff))
	bt := k.Bytes.Div(g.Spec.PeakBW)
	if ct+bt == 0 {
		return minComputeWeight
	}
	q := units.Ratio(ct, ct+bt)
	if q < minComputeWeight {
		q = minComputeWeight
	}
	return q
}

// finish completes a running kernel: pops it from its stream, fires its
// callback, and starts the next queued kernel if any.
func (g *GPU) finish(l *launch) {
	g.advance()
	l.remaining = 0
	l.running = false
	for i, r := range g.running {
		if r == l {
			g.running = append(g.running[:i], g.running[i+1:]...)
			break
		}
	}
	st := l.stream
	if len(st.queue) == 0 || st.queue[0] != l {
		panic("gpusim: finished kernel is not at stream head")
	}
	st.queue = st.queue[1:]

	rec := KernelRecord{
		Name:     l.k.Name,
		Tag:      l.k.Tag,
		Start:    l.startTime,
		End:      g.sim.Now(),
		SMs:      l.maskCount,
		FLOPs:    l.k.FLOPs,
		Bytes:    l.k.Bytes,
		Grid:     l.k.Grid,
		WaveIdle: WaveIdleRatio(l.k.Grid, l.maskCount),
	}
	if g.Trace != nil {
		g.Trace(rec)
	}
	if g.TL != nil {
		g.emitKernelSpan(st, l, rec)
	}

	// Start the next kernel before callbacks so back-to-back kernels do
	// not see a spurious idle gap.
	if len(st.queue) > 0 {
		g.startHead(st)
	} else if len(st.waiters) > 0 {
		ws := st.waiters
		st.waiters = nil
		for _, w := range ws {
			g.sim.PostAfter(0, w)
		}
	}
	g.recompute()
	if l.done != nil {
		l.done(rec)
	}
}

// emitKernelSpan records one completed kernel on its stream's timeline
// lane, annotated with achieved rates and contention at completion.
// Called after l leaves g.running, so overlapFraction measures the SMs
// still contended by other kernels.
func (g *GPU) emitKernelSpan(st *Stream, l *launch, rec KernelRecord) {
	dur := rec.Duration()
	args := make([]timeline.Arg, 0, 8)
	args = append(args,
		timeline.S("tag", rec.Tag),
		timeline.I("sms", rec.SMs),
		timeline.I("grid", rec.Grid),
		timeline.F("waveIdle", rec.WaveIdle),
	)
	if 0 < dur {
		args = append(args,
			timeline.F("gflops", rec.FLOPs.Per(dur).Float()/1e9),
			timeline.F("gbps", rec.Bytes.Per(dur).Float()/1e9),
		)
	}
	args = append(args, timeline.F("overlap", g.overlapFraction(l)))
	g.TL.Span(streamLane(st.id), rec.Name, rec.Start, rec.End, args...)
}

// streamLane names the timeline lane of a stream.
func streamLane(id int) string { return fmt.Sprintf("stream%02d", id) }

// advance integrates work done at the current rates since lastUpdate and
// decrements remaining fractions.
func (g *GPU) advance() {
	now := g.sim.Now()
	dt := now - g.lastUpdate
	g.lastUpdate = now
	if dt <= 0 {
		return
	}
	if len(g.running) > 0 {
		g.anyBusyTime += dt
	}
	for _, l := range g.running {
		if l.rate <= 0 {
			continue
		}
		done := l.rate.Times(dt)
		if done > l.remaining {
			done = l.remaining
		}
		l.remaining -= done
		g.flopsDone += units.Scale(l.k.FLOPs, done)
		g.bytesDone += units.Scale(l.k.Bytes, done)
		meff := g.effectiveSMs(l)
		g.smBusyTime += meff.Times(dt)
		g.tagFlops[l.k.Tag] += units.Scale(l.k.FLOPs, done)
		g.tagBytes[l.k.Tag] += units.Scale(l.k.Bytes, done)
		g.tagTime[l.k.Tag] += meff.Times(dt)
	}
}

// effectiveSMs returns the compute share of kernel l: SMs exclusively
// owned count fully; on SMs shared with other resident kernels the issue
// bandwidth is split in proportion to the sharers' compute intensities,
// so a memory-bound kernel co-resident with a GEMM costs the GEMM little
// compute (the warp scheduler interleaves around its DRAM stalls).
// Degraded SMs contribute only their health fraction.
func (g *GPU) effectiveSMs(l *launch) units.SMs {
	// Fast path: no overlap with any other resident kernel.
	overlapped := false
	for _, o := range g.running {
		if o != l && o.mask.Overlaps(l.mask) {
			overlapped = true
			break
		}
	}
	if !overlapped {
		return units.SMs(g.maskHealth(l.mask))
	}
	eff := units.SMs(0)
	l.mask.ForEach(func(i int) {
		total := l.weight
		for _, o := range g.running {
			if o != l && o.mask.Has(i) {
				total += o.weight
			}
		}
		share := l.weight / total
		if g.health != nil {
			share *= g.health[i]
		}
		eff += units.SMs(share)
	})
	return eff
}

// overlapFraction returns the share of l's SMs also occupied by other
// resident kernels.
func (g *GPU) overlapFraction(l *launch) float64 {
	var union smmask.Mask
	for _, o := range g.running {
		if o != l {
			union = union.Union(o.mask)
		}
	}
	shared := l.mask.Intersect(union).Count()
	if l.maskCount == 0 {
		return 0
	}
	return float64(shared) / float64(l.maskCount)
}

// soloRate returns the rate (fraction/s) kernel l would sustain with meff
// SMs of compute and unlimited access to its bandwidth cap, along with its
// bandwidth demand at that rate. ov is the kernel's SM-overlap fraction
// with co-resident kernels: interference (L1/shared-memory/scheduler
// thrash) scales with how much the masks actually collide — strictly
// partitioned kernels only contend for DRAM, which the water-filling
// handles separately.
func (g *GPU) soloRate(l *launch, meff units.SMs, ov float64) (rate units.PerSec, bwCap units.BytesPerSec) {
	spec := g.Spec
	frac := units.Ratio(meff, units.SMs(spec.NumSMs))
	if frac <= 0 {
		// Every SM under the mask is dead: drain in-flight work at the
		// trickle floor instead of stalling the simulation forever.
		frac = deadDrainSMs / float64(spec.NumSMs)
	}
	effPeak := l.k.Efficiency
	if effPeak == 0 {
		effPeak = 1
	}
	pc := 1 - (1-spec.CoRunComputePenalty)*ov
	pb := 1 - (1-spec.CoRunBWPenalty)*ov
	computeCap := units.Scale(units.Scale(units.Scale(spec.PeakFLOPS, effPeak), frac), pc)
	// Wave quantization is a placement effect of the mask size, not the
	// contended share, so it uses the mask's SM count. Bandwidth access
	// likewise scales with occupancy — the health-weighted SMs the kernel
	// is resident on (degraded SMs issue proportionally fewer memory
	// requests), not its contended compute share.
	wave := 1 - WaveIdleRatio(l.k.Grid, l.maskCount)
	occ := g.maskHealth(l.mask)
	if occ <= 0 {
		occ = deadDrainSMs
	}
	occFrac := occ / float64(spec.NumSMs)
	bwCap = units.Scale(units.Scale(spec.PeakBW, math.Min(1, math.Pow(occFrac, spec.BWScaleExp))), pb)

	rc := units.Inf[units.PerSec](1)
	if l.k.FLOPs > 0 {
		rc = units.Scale(computeCap, wave).Progress(l.k.FLOPs)
	}
	rb := units.Inf[units.PerSec](1)
	if l.k.Bytes > 0 {
		rb = bwCap.Progress(l.k.Bytes)
	}
	rl := units.Inf[units.PerSec](1)
	if l.k.CommBytes > 0 && spec.LinkBW > 0 {
		rl = spec.LinkBW.Progress(l.k.CommBytes)
	}
	return units.Min(units.Min(rc, rb), rl), bwCap
}

// recompute re-derives every resident kernel's rate from the current mix
// and reschedules completion events. Called after any membership change.
func (g *GPU) recompute() {
	totalBW := g.Spec.PeakBW

	type demand struct {
		l       *launch
		nominal units.PerSec
		bytes   units.BytesPerSec // bytes/s at nominal rate
		volume  units.Bytes       // effective DRAM bytes per execution
	}
	demands := make([]demand, 0, len(g.running))
	for _, l := range g.running {
		d := g.backend.Demand(g, l)
		demands = append(demands, demand{l, d.Rate, d.BW, d.Volume})
	}

	// Max–min fair bandwidth allocation with per-kernel caps: kernels
	// demanding less than an equal share keep their full rate; the rest
	// split the remainder evenly, iterating as shares free up.
	sort.Slice(demands, func(i, j int) bool { return demands[i].bytes < demands[j].bytes })
	remaining := totalBW
	left := len(demands)
	for idx, d := range demands {
		share := units.Over(remaining, float64(left))
		alloc := units.Min(d.bytes, share)
		remaining -= alloc
		left--
		rate := d.nominal
		if d.volume > 0 && alloc < d.bytes {
			rate = alloc.Progress(d.volume)
		}
		demands[idx].l.rate = rate
	}

	// Reschedule completions.
	now := g.sim.Now()
	instFlops, instBytes, busySMs := units.FLOPsPerSec(0), units.BytesPerSec(0), units.SMs(0)
	for _, l := range g.running {
		instFlops += l.k.FLOPs.AtRate(l.rate)
		instBytes += l.k.Bytes.AtRate(l.rate)
		busySMs += g.effectiveSMs(l)
		var eta sim.Time
		if l.rate <= 0 {
			eta = units.Inf[units.Seconds](1)
		} else {
			eta = now + units.Elapse(l.remaining, l.rate)
		}
		if units.IsInf(eta, 1) {
			panic(fmt.Sprintf("gpusim: kernel %q stalled with zero rate", l.k.Name))
		}
		l := l
		if l.complete != nil {
			g.sim.Cancel(l.complete)
		}
		l.complete = g.sim.At(eta, func() { g.finish(l) })
	}
	if g.Sampler != nil {
		g.Sampler(now, Utilization{
			Compute:   units.Ratio(instFlops, g.Spec.PeakFLOPS),
			Bandwidth: units.Ratio(instBytes, g.Spec.PeakBW),
			BusySMs:   busySMs,
			Resident:  len(g.running),
		})
	}
	if g.TL != nil {
		g.TL.Counter("gpu", "occupancy", now,
			timeline.F("busySMs", busySMs.Float()),
			timeline.I("resident", len(g.running)))
		g.TL.Counter("gpu", "throughput", now,
			timeline.F("compute", units.Ratio(instFlops, g.Spec.PeakFLOPS)),
			timeline.F("bandwidth", units.Ratio(instBytes, g.Spec.PeakBW)))
	}
}

// Stats summarises accumulated device activity.
type Stats struct {
	FLOPs       units.FLOPs
	Bytes       units.Bytes
	SMBusyTime  units.SMSeconds // SM·seconds occupied
	AnyBusyTime sim.Time        // wall seconds with ≥1 kernel resident
	TagFlops    map[string]units.FLOPs
	TagBytes    map[string]units.Bytes
	TagSMTime   map[string]units.SMSeconds
}

// Stats returns accumulated counters up to the current simulation time.
func (g *GPU) Stats() Stats {
	g.advance()
	cpF := make(map[string]units.FLOPs, len(g.tagFlops))
	for k, v := range g.tagFlops {
		cpF[k] = v
	}
	cpB := make(map[string]units.Bytes, len(g.tagBytes))
	for k, v := range g.tagBytes {
		cpB[k] = v
	}
	cpT := make(map[string]units.SMSeconds, len(g.tagTime))
	for k, v := range g.tagTime {
		cpT[k] = v
	}
	return Stats{
		FLOPs:       g.flopsDone,
		Bytes:       g.bytesDone,
		SMBusyTime:  g.smBusyTime,
		AnyBusyTime: g.anyBusyTime,
		TagFlops:    cpF,
		TagBytes:    cpB,
		TagSMTime:   cpT,
	}
}

// ComputeUtilization returns average achieved FLOPs over the window
// [0, now] as a fraction of peak.
func (g *GPU) ComputeUtilization() float64 {
	now := g.sim.Now()
	if now <= 0 {
		return 0
	}
	g.advance()
	return units.Ratio(g.flopsDone, g.Spec.PeakFLOPS.Times(now))
}

// BandwidthUtilization returns average achieved bytes over [0, now] as a
// fraction of peak.
func (g *GPU) BandwidthUtilization() float64 {
	now := g.sim.Now()
	if now <= 0 {
		return 0
	}
	g.advance()
	return units.Ratio(g.bytesDone, g.Spec.PeakBW.Times(now))
}

// Idle reports whether no kernels are queued or resident anywhere.
func (g *GPU) Idle() bool {
	for _, st := range g.streams {
		if st.Busy() {
			return false
		}
	}
	return true
}
