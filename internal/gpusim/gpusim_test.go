package gpusim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

func newTestGPU() (*sim.Simulation, *GPU) {
	s := sim.New()
	return s, New(s, TestGPU())
}

func almost[F ~float64](a, b F, tol float64) bool {
	if b == 0 {
		return math.Abs(float64(a)) < tol
	}
	return math.Abs(float64(a-b))/math.Abs(float64(b)) < tol
}

func runKernel(t *testing.T, g *GPU, st *Stream, k Kernel) KernelRecord {
	t.Helper()
	var rec KernelRecord
	gotDone := false
	g.Launch(st, k, func(r KernelRecord) { rec = r; gotDone = true })
	g.sim.RunAll(10000)
	if !gotDone {
		t.Fatalf("kernel %q never completed", k.Name)
	}
	return rec
}

func TestWaveIdleRatio(t *testing.T) {
	cases := []struct {
		grid, m int
		want    float64
	}{
		{192, 108, 1 - 192.0/216},    // QKV @1024: 11.1%
		{256, 108, 1 - 256.0/324},    // Attn @1024: 21.0%
		{128, 108, 1 - 128.0/216},    // OProj @1024: 40.7%
		{3072, 108, 1 - 3072.0/3132}, // QKV @16384: 1.9%
		{108, 108, 0},
		{216, 108, 0},
		{0, 108, 0},
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := WaveIdleRatio(c.grid, c.m); !almost(got, c.want, 1e-12) && got != c.want {
			t.Errorf("WaveIdleRatio(%d,%d) = %v, want %v", c.grid, c.m, got, c.want)
		}
	}
}

func TestComputeBoundSoloDuration(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	// 1e12 FLOPs on a 1e12 FLOP/s device, no bytes to speak of, even grid.
	rec := runKernel(t, g, st, Kernel{Name: "gemm", FLOPs: 1e12, Bytes: 1, Grid: 8})
	if !almost(rec.Duration(), 1.0, 1e-9) {
		t.Fatalf("duration = %v, want 1.0", rec.Duration())
	}
	if s.Now() != rec.End {
		t.Fatalf("clock %v != end %v", s.Now(), rec.End)
	}
}

func TestMemoryBoundSoloDuration(t *testing.T) {
	_, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	// 1e11 bytes on a 1e11 B/s device.
	rec := runKernel(t, g, st, Kernel{Name: "copy", Bytes: 1e11})
	if !almost(rec.Duration(), 1.0, 1e-9) {
		t.Fatalf("duration = %v, want 1.0", rec.Duration())
	}
}

func TestWaveQuantizationInflation(t *testing.T) {
	_, g := newTestGPU() // 8 SMs
	st := g.NewStream(g.FullMask())
	// Grid 9 on 8 SMs: 2 waves, active fraction 9/16.
	rec := runKernel(t, g, st, Kernel{Name: "tail", FLOPs: 1e12, Bytes: 1, Grid: 9})
	want := sim.Time(1.0 / (9.0 / 16.0))
	if !almost(rec.Duration(), want, 1e-9) {
		t.Fatalf("duration = %v, want %v", rec.Duration(), want)
	}
	if !almost(rec.WaveIdle, 1-9.0/16.0, 1e-12) {
		t.Fatalf("WaveIdle = %v", rec.WaveIdle)
	}
}

func TestEfficiencyFactor(t *testing.T) {
	_, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	rec := runKernel(t, g, st, Kernel{Name: "attn", FLOPs: 1e12, Bytes: 1, Grid: 8, Efficiency: 0.5})
	if !almost(rec.Duration(), 2.0, 1e-9) {
		t.Fatalf("duration = %v, want 2.0", rec.Duration())
	}
}

func TestPartialSMComputeScalesLinearly(t *testing.T) {
	_, g := newTestGPU()
	st := g.NewStream(smmask.Range(0, 4)) // half the SMs
	rec := runKernel(t, g, st, Kernel{Name: "gemm", FLOPs: 1e12, Bytes: 1, Grid: 4})
	if !almost(rec.Duration(), 2.0, 1e-9) {
		t.Fatalf("duration = %v, want 2.0 (half compute)", rec.Duration())
	}
}

func TestPartialSMBandwidthScalesSuperLinearly(t *testing.T) {
	_, g := newTestGPU() // BWScaleExp = 0.5
	st := g.NewStream(smmask.Range(0, 4))
	rec := runKernel(t, g, st, Kernel{Name: "copy", Bytes: 1e11})
	want := sim.Time(1.0 / math.Pow(0.5, 0.5)) // ≈ 1.414 (not 2.0)
	if !almost(rec.Duration(), want, 1e-9) {
		t.Fatalf("duration = %v, want %v", rec.Duration(), want)
	}
}

func TestStreamFIFO(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		g.Launch(st, Kernel{Name: name, FLOPs: 1e12, Bytes: 1, Grid: 8},
			func(KernelRecord) { order = append(order, name) })
	}
	s.RunAll(1000)
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if !almost(s.Now(), 3.0, 1e-9) {
		t.Fatalf("three serialized kernels took %v, want 3.0", s.Now())
	}
}

func TestDisjointStreamsRunConcurrently(t *testing.T) {
	s, g := newTestGPU()
	a := g.NewStream(smmask.Range(0, 4))
	b := g.NewStream(smmask.Range(4, 8))
	done := 0
	// Each compute kernel sized for 1s on 4 SMs.
	k := Kernel{FLOPs: 0.5e12, Bytes: 1, Grid: 4}
	g.Launch(a, k, func(KernelRecord) { done++ })
	g.Launch(b, k, func(KernelRecord) { done++ })
	s.RunAll(1000)
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	if !almost(s.Now(), 1.0, 1e-9) {
		t.Fatalf("concurrent disjoint kernels took %v, want 1.0", s.Now())
	}
}

func TestOverlappingMasksShareCompute(t *testing.T) {
	s, g := newTestGPU()
	a := g.NewStream(g.FullMask())
	b := g.NewStream(g.FullMask())
	k := Kernel{FLOPs: 1e12, Bytes: 1, Grid: 8}
	g.Launch(a, k, nil)
	g.Launch(b, k, nil)
	s.RunAll(1000)
	// Each gets half the SMs' compute: both finish at t=2.
	if !almost(s.Now(), 2.0, 1e-9) {
		t.Fatalf("fully overlapped kernels took %v, want 2.0", s.Now())
	}
}

func TestBandwidthContentionSharesFairly(t *testing.T) {
	s, g := newTestGPU()
	a := g.NewStream(smmask.Range(0, 4))
	b := g.NewStream(smmask.Range(4, 8))
	// Two memory-bound kernels, each alone would pull the full 1e11 B/s
	// if it could, but its 4-SM cap is 0.707e11; together they demand
	// more than peak, so they share 0.5e11 each.
	k := Kernel{Bytes: 1e11}
	g.Launch(a, k, nil)
	g.Launch(b, k, nil)
	s.RunAll(1000)
	if !almost(s.Now(), 2.0, 1e-9) {
		t.Fatalf("BW-contended kernels took %v, want 2.0", s.Now())
	}
}

func TestComputeAndMemoryKernelsComplement(t *testing.T) {
	s, g := newTestGPU()
	a := g.NewStream(smmask.Range(0, 6))
	b := g.NewStream(smmask.Range(6, 8))
	// Compute kernel on 6 SMs: 1e12*6/8 = 0.75e12 FLOP/s, tiny bytes.
	// Memory kernel on 2 SMs: bw cap = (2/8)^0.5 = 0.5 → 0.5e11 B/s.
	// They barely contend: both should finish near their solo times.
	var compEnd, memEnd sim.Time
	g.Launch(a, Kernel{Name: "comp", FLOPs: 0.75e12, Bytes: 1e9, Grid: 6},
		func(r KernelRecord) { compEnd = r.End })
	g.Launch(b, Kernel{Name: "mem", Bytes: 0.5e11},
		func(r KernelRecord) { memEnd = r.End })
	s.RunAll(1000)
	if !almost(compEnd, 1.0, 0.05) {
		t.Fatalf("compute end = %v, want ≈1.0", compEnd)
	}
	if !almost(memEnd, 1.0, 0.05) {
		t.Fatalf("memory end = %v, want ≈1.0", memEnd)
	}
}

func TestRateRecomputationOnFinish(t *testing.T) {
	s, g := newTestGPU()
	a := g.NewStream(smmask.Range(0, 4))
	b := g.NewStream(smmask.Range(4, 8))
	// Kernel A: memory-bound, 1e11 bytes. Kernel B: memory-bound,
	// 0.25e11 bytes. Together they split BW 0.5/0.5e11. B finishes at
	// t=0.5; then A speeds up to its solo 4-SM cap 0.707e11.
	var aEnd sim.Time
	g.Launch(a, Kernel{Name: "A", Bytes: 1e11}, func(r KernelRecord) { aEnd = r.End })
	g.Launch(b, Kernel{Name: "B", Bytes: 0.25e11}, nil)
	s.RunAll(1000)
	// A does 0.5e11*0.5 = 0.25e11 bytes by t=0.5, then 0.75e11 bytes at
	// 0.707e11 B/s → 1.0607s more → total ≈ 1.5607.
	want := sim.Time(0.5 + 0.75e11/(1e11*math.Pow(0.5, 0.5)))
	if !almost(aEnd, want, 1e-6) {
		t.Fatalf("A end = %v, want %v", aEnd, want)
	}
}

func TestSetMaskAppliesToNextKernel(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	var d1, d2 sim.Time
	g.Launch(st, Kernel{FLOPs: 1e12, Bytes: 1, Grid: 8}, func(r KernelRecord) { d1 = r.Duration() })
	st.SetMask(smmask.Range(0, 4))
	g.Launch(st, Kernel{FLOPs: 1e12, Bytes: 1, Grid: 4}, func(r KernelRecord) { d2 = r.Duration() })
	s.RunAll(1000)
	if !almost(d1, 1.0, 1e-9) {
		t.Fatalf("first kernel (already queued with full mask) = %v", d1)
	}
	if !almost(d2, 2.0, 1e-9) {
		t.Fatalf("second kernel (half mask) = %v", d2)
	}
}

func TestSynchronize(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	syncAt := sim.Time(-1)
	g.Launch(st, Kernel{FLOPs: 1e12, Bytes: 1, Grid: 8}, nil)
	g.Synchronize(st, func() { syncAt = s.Now() })
	s.RunAll(1000)
	if !almost(syncAt, 1.0, 1e-9) {
		t.Fatalf("sync fired at %v, want 1.0", syncAt)
	}
	// Sync on an idle stream fires immediately (but asynchronously).
	fired := false
	g.Synchronize(st, func() { fired = true })
	if fired {
		t.Fatal("idle sync fired inline")
	}
	s.RunAll(1000)
	if !fired {
		t.Fatal("idle sync never fired")
	}
}

func TestLaunchOverhead(t *testing.T) {
	s := sim.New()
	spec := TestGPU()
	spec.LaunchOverhead = 0.25
	g := New(s, spec)
	st := g.NewStream(g.FullMask())
	var rec KernelRecord
	g.Launch(st, Kernel{FLOPs: 1e12, Bytes: 1, Grid: 8}, func(r KernelRecord) { rec = r })
	s.RunAll(1000)
	if !almost(rec.Start, 0.25, 1e-9) {
		t.Fatalf("start = %v, want 0.25", rec.Start)
	}
	if !almost(rec.End, 1.25, 1e-9) {
		t.Fatalf("end = %v, want 1.25", rec.End)
	}
}

func TestGraphKernelsSkipPerKernelOverhead(t *testing.T) {
	s := sim.New()
	spec := TestGPU()
	spec.LaunchOverhead = 0.25
	spec.GraphLaunchOverhead = 0.1
	g := New(s, spec)
	st := g.NewStream(g.FullMask())
	k := Kernel{FLOPs: 0.5e12, Bytes: 1, Grid: 8, Graph: true}
	head := k
	head.GraphHead = true
	g.Launch(st, head, nil)
	g.Launch(st, k, nil)
	s.RunAll(1000)
	// 0.1 graph launch + 0.5 + 0.5 compute.
	if !almost(s.Now(), 1.1, 1e-9) {
		t.Fatalf("graph of 2 kernels took %v, want 1.1", s.Now())
	}
}

func TestCoRunPenaltiesScaleWithOverlap(t *testing.T) {
	spec := TestGPU()
	spec.CoRunComputePenalty = 0.5
	run := func(aMask, bMask smmask.Mask, flopsA units.FLOPs) sim.Time {
		s := sim.New()
		g := New(s, spec)
		a := g.NewStream(aMask)
		b := g.NewStream(bMask)
		var aEnd sim.Time
		g.Launch(a, Kernel{FLOPs: flopsA, Bytes: 1, Grid: aMask.Count()},
			func(r KernelRecord) { aEnd = r.End })
		g.Launch(b, Kernel{FLOPs: 1e12, Bytes: 1, Grid: bMask.Count()}, nil)
		s.RunAll(1000)
		return aEnd
	}
	// Disjoint masks: no interference penalty; A alone on 4 SMs takes 1s.
	disjoint := run(smmask.Range(0, 4), smmask.Range(4, 8), 0.5e12)
	if !almost(disjoint, 1.0, 1e-9) {
		t.Fatalf("disjoint co-run end = %v, want 1.0 (no penalty)", disjoint)
	}
	// Fully overlapped equal kernels: compute halves AND the p_c=0.5
	// full-overlap penalty applies → 4x the solo time.
	overlapped := run(smmask.Range(0, 8), smmask.Range(0, 8), 1e12)
	if !almost(overlapped, 4.0, 1e-9) {
		t.Fatalf("overlapped co-run end = %v, want 4.0", overlapped)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	g.Launch(st, Kernel{FLOPs: 1e12, Bytes: 1e10, Grid: 8, Tag: "prefill"}, nil)
	s.RunAll(1000)
	if u := g.ComputeUtilization(); !almost(u, 1.0, 1e-6) {
		t.Fatalf("compute utilization = %v, want 1.0", u)
	}
	st2 := g.Stats()
	if !almost(st2.TagFlops["prefill"], 1e12, 1e-6) {
		t.Fatalf("tag flops = %v", st2.TagFlops["prefill"])
	}
	if !almost(st2.SMBusyTime, 8.0, 1e-6) {
		t.Fatalf("SM busy time = %v, want 8", st2.SMBusyTime)
	}
	if !almost(st2.AnyBusyTime, 1.0, 1e-6) {
		t.Fatalf("any-busy time = %v, want 1", st2.AnyBusyTime)
	}
}

func TestTraceRecords(t *testing.T) {
	s, g := newTestGPU()
	var recs []KernelRecord
	g.Trace = func(r KernelRecord) { recs = append(recs, r) }
	st := g.NewStream(g.FullMask())
	g.Launch(st, Kernel{Name: "x", FLOPs: 1e12, Bytes: 1, Grid: 8}, nil)
	g.Launch(st, Kernel{Name: "y", Bytes: 1e11}, nil)
	s.RunAll(1000)
	if len(recs) != 2 || recs[0].Name != "x" || recs[1].Name != "y" {
		t.Fatalf("trace = %+v", recs)
	}
	if recs[1].Start < recs[0].End {
		t.Fatal("serialized kernels overlap in trace")
	}
}

func TestIdle(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	if !g.Idle() {
		t.Fatal("fresh GPU not idle")
	}
	g.Launch(st, Kernel{FLOPs: 1e12, Bytes: 1, Grid: 8}, nil)
	if g.Idle() {
		t.Fatal("GPU with queued kernel reported idle")
	}
	s.RunAll(1000)
	if !g.Idle() {
		t.Fatal("drained GPU not idle")
	}
}

// Property: instantaneous bandwidth never exceeds peak, regardless of the
// concurrent kernel mix.
func TestPropertyBandwidthConserved(t *testing.T) {
	f := func(seed int64) bool {
		s := sim.New()
		g := New(s, TestGPU())
		maxBW := 0.0
		g.Sampler = func(_ sim.Time, u Utilization) {
			if u.Bandwidth > maxBW {
				maxBW = u.Bandwidth
			}
		}
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 2
		for i := 0; i < n; i++ {
			lo := rng.Intn(7)
			hi := lo + 1 + rng.Intn(8-lo-1) + 1
			if hi > 8 {
				hi = 8
			}
			st := g.NewStream(smmask.Range(lo, hi))
			g.Launch(st, Kernel{
				FLOPs: units.FLOPs(rng.Intn(10)+1) * 1e10,
				Bytes: units.Bytes(rng.Intn(10)+1) * 1e9,
				Grid:  rng.Intn(20),
			}, nil)
		}
		s.RunAll(100000)
		return maxBW <= 1.0+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a solo kernel never runs slower on more SMs.
func TestPropertyMonotoneInSMs(t *testing.T) {
	f := func(flopsU, bytesU uint32, gridU uint16) bool {
		k := Kernel{
			FLOPs: units.FLOPs(flopsU%1000+1) * 1e9,
			Bytes: units.Bytes(bytesU%1000+1) * 1e8,
			Grid:  int(gridU % 64),
		}
		prev := sim.Time(math.Inf(1))
		for m := 2; m <= 8; m += 2 {
			s := sim.New()
			g := New(s, TestGPU())
			st := g.NewStream(smmask.Range(0, m))
			var d sim.Time
			g.Launch(st, k, func(r KernelRecord) { d = r.Duration() })
			s.RunAll(100000)
			if d > prev+1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLaunchFinish(b *testing.B) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Launch(st, Kernel{FLOPs: 1e9, Bytes: 1e6, Grid: 8}, nil)
		s.RunAll(1e18)
	}
}

func BenchmarkConcurrentKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, g := newTestGPU()
		streams := []*Stream{
			g.NewStream(smmask.Range(0, 2)),
			g.NewStream(smmask.Range(2, 4)),
			g.NewStream(smmask.Range(4, 6)),
			g.NewStream(smmask.Range(6, 8)),
		}
		for j := 0; j < 50; j++ {
			g.Launch(streams[j%4], Kernel{FLOPs: 1e9, Bytes: 1e7, Grid: j % 16}, nil)
		}
		s.RunAll(1e6)
	}
}
