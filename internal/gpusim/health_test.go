package gpusim

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

func TestHealthDefaults(t *testing.T) {
	_, g := newTestGPU()
	for i := 0; i < g.Spec.NumSMs; i++ {
		if g.SMHealth(i) != 1 {
			t.Fatalf("SM %d health = %v, want 1", i, g.SMHealth(i))
		}
	}
	if g.HealthyMask() != g.FullMask() {
		t.Fatalf("HealthyMask = %v, want full", g.HealthyMask())
	}
	if g.HealthyCapacity() != units.SMs(g.Spec.NumSMs) {
		t.Fatalf("HealthyCapacity = %v, want %d", g.HealthyCapacity(), g.Spec.NumSMs)
	}
}

func TestHealthyMaskExcludesOnlyDeadSMs(t *testing.T) {
	_, g := newTestGPU() // 8 SMs
	g.SetSMHealth(0, 2, 0)
	g.SetSMHealth(2, 2, 0.3)
	want := smmask.Range(2, 8) // throttled SMs stay in the healthy set
	if g.HealthyMask() != want {
		t.Fatalf("HealthyMask = %v, want %v", g.HealthyMask(), want)
	}
	if got := g.HealthyCapacity(); !almost(got, units.SMs(0.3*2+4), 1e-12) {
		t.Fatalf("HealthyCapacity = %v, want 4.6", got)
	}
	if g.SMHealth(1) != 0 || g.SMHealth(3) != 0.3 || g.SMHealth(7) != 1 {
		t.Fatalf("per-SM health = %v/%v/%v", g.SMHealth(1), g.SMHealth(3), g.SMHealth(7))
	}
}

func TestThrottledComputeScalesWithHealth(t *testing.T) {
	_, g := newTestGPU() // 8 SMs, 1e12 FLOP/s
	g.SetSMHealth(0, 4, 0.5)
	st := g.NewStream(g.FullMask())
	// Effective SMs: 4×0.5 + 4×1 = 6 of 8.
	rec := runKernel(t, g, st, Kernel{Name: "gemm", FLOPs: 1e12, Bytes: 1, Grid: 8})
	if want := sim.Time(8.0 / 6.0); !almost(rec.Duration(), want, 1e-9) {
		t.Fatalf("duration = %v, want %v", rec.Duration(), want)
	}
}

func TestDeadMaskDrainsAtFloor(t *testing.T) {
	_, g := newTestGPU()
	g.SetSMHealth(0, 8, 0)
	st := g.NewStream(g.FullMask())
	// All SMs dead: the kernel must still finish (at the trickle floor
	// deadDrainSMs/NumSMs of peak) rather than stall the simulation.
	rec := runKernel(t, g, st, Kernel{Name: "gemm", FLOPs: 1e12, Bytes: 1, Grid: 8})
	if want := sim.Time(8.0 / deadDrainSMs); !almost(rec.Duration(), want, 1e-9) {
		t.Fatalf("duration = %v, want %v", rec.Duration(), want)
	}
}

func TestHealthChangeMidKernelReratesIt(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	var rec KernelRecord
	g.Launch(st, Kernel{Name: "gemm", FLOPs: 1e12, Bytes: 1, Grid: 8}, func(r KernelRecord) { rec = r })
	// Halfway through, halve the whole device: the remaining half of the
	// work runs at half rate, so the kernel ends at 1.5s instead of 1.0s.
	s.At(sim.Time(0.5), func() { g.SetSMHealth(0, 8, 0.5) })
	s.RunAll(10000)
	if !almost(rec.End, sim.Time(1.5), 1e-9) {
		t.Fatalf("end = %v, want 1.5", rec.End)
	}
}

func TestHealthRecoveryRestoresRate(t *testing.T) {
	_, g := newTestGPU()
	g.SetSMHealth(2, 4, 0)
	g.SetSMHealth(2, 4, 1)
	if g.HealthyMask() != g.FullMask() {
		t.Fatalf("HealthyMask after recovery = %v, want full", g.HealthyMask())
	}
	st := g.NewStream(g.FullMask())
	rec := runKernel(t, g, st, Kernel{Name: "gemm", FLOPs: 1e12, Bytes: 1, Grid: 8})
	if !almost(rec.Duration(), sim.Time(1.0), 1e-9) {
		t.Fatalf("duration after recovery = %v, want 1.0", rec.Duration())
	}
}

func TestDegradedBandwidthOccupancy(t *testing.T) {
	_, g := newTestGPU() // 1e11 B/s, BWScaleExp 0.5
	g.SetSMHealth(0, 4, 0)
	st := g.NewStream(g.FullMask())
	// Memory-bound kernel: bandwidth access scales with health-weighted
	// occupancy (4 of 8 SMs) through the sublinear exponent.
	rec := runKernel(t, g, st, Kernel{Name: "copy", Bytes: 1e11})
	want := sim.Time(1.0 / math.Pow(0.5, 0.5))
	if !almost(rec.Duration(), want, 1e-9) {
		t.Fatalf("duration = %v, want %v", rec.Duration(), want)
	}
}

func TestExplicitFullHealthIsBitIdentical(t *testing.T) {
	// Baseline: nil health vector (the fast path).
	_, g1 := newTestGPU()
	st1 := g1.NewStream(smmask.Range(0, 6))
	r1 := runKernel(t, g1, st1, Kernel{Name: "gemm", FLOPs: 3e11, Bytes: 2e10, Grid: 11})
	// Same device with health explicitly set to all-ones.
	_, g2 := newTestGPU()
	g2.SetSMHealth(0, 8, 1)
	st2 := g2.NewStream(smmask.Range(0, 6))
	r2 := runKernel(t, g2, st2, Kernel{Name: "gemm", FLOPs: 3e11, Bytes: 2e10, Grid: 11})
	if r1.End != r2.End || r1.Start != r2.Start {
		t.Fatalf("all-ones health diverges from nil health: %+v vs %+v", r1, r2)
	}
}

func TestSetSMHealthValidation(t *testing.T) {
	_, g := newTestGPU()
	cases := []struct {
		name     string
		first, n int
		h        float64
	}{
		{"negative first", -1, 2, 1},
		{"zero span", 0, 0, 1},
		{"past end", 6, 4, 1},
		{"negative health", 0, 2, -0.1},
		{"above one", 0, 2, 1.5},
		{"nan", 0, 2, math.NaN()},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: SetSMHealth(%d,%d,%v) accepted", c.name, c.first, c.n, c.h)
				}
			}()
			g.SetSMHealth(c.first, c.n, c.h)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SMHealth(99) accepted")
			}
		}()
		g.SMHealth(99)
	}()
}
