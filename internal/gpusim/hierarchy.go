package gpusim

import "repro/internal/units"

// HierarchyBackend layers a last-level-cache reuse model on top of the
// analytic fluid model: co-located kernels shrink each other's effective
// L2 share, converting cache hits back into DRAM traffic — the one
// contention effect the fluid model's bandwidth water-filling cannot
// express, because water-filling only divides traffic that already goes
// to DRAM.
//
// Per kernel, the working set is its DRAM byte volume; a fraction
// Spec.L2ReuseFrac of accesses are re-references that hit L2 when the
// working set fits the kernel's cache share. Solo, the share is the whole
// cache; co-located, the cache is partitioned in proportion to working
// sets. The miss-rate inflation between those two regimes slows the
// kernel (weighted by how memory-bound it is) and inflates its DRAM
// demand, feeding back into the water-filling.
//
// A kernel running alone — or a device with no modelled L2 — reproduces
// the analytic backend bit for bit: the inflation factor is exactly 1 and
// the arithmetic below degenerates to identity operations.
type HierarchyBackend struct{}

// Name implements LatencyBackend.
func (HierarchyBackend) Name() string { return BackendHierarchy }

// Begin implements LatencyBackend; the hierarchy model has no
// per-execution state.
func (HierarchyBackend) Begin(*GPU, *launch) {}

// Demand implements LatencyBackend: the analytic demand, slowed by the
// cache-interference inflation and with DRAM traffic inflated by the
// extra misses.
func (HierarchyBackend) Demand(g *GPU, l *launch) KernelDemand {
	meff := g.effectiveSMs(l)
	nominal, _ := g.soloRate(l, meff, g.overlapFraction(l))
	infl := cacheInflation(g, l)
	// Compute-bound kernels hide extra DRAM latency behind arithmetic:
	// the slowdown is the inflation weighted by the kernel's memory-bound
	// fraction (1 - weight). infl == 1 makes every expression identity.
	slow := 1 + (infl-1)*(1-l.weight)
	rate := units.Over(nominal, slow)
	// The extra misses are real DRAM traffic: one full execution now
	// moves infl× the bytes, so both the instantaneous bandwidth and the
	// throttling denominator inflate.
	volume := units.Scale(l.k.Bytes, infl)
	return KernelDemand{Rate: rate, BW: volume.AtRate(rate), Volume: volume}
}

// minMissRate floors the solo miss rate so near-perfectly-cached kernels
// cannot produce unbounded inflation ratios.
const minMissRate = 0.05

// cacheInflation returns the ratio of l's co-located to solo L2 miss
// rate, ≥ 1. Exactly 1 when the device models no L2, the kernel moves no
// DRAM bytes, or no co-resident kernel competes for the cache.
func cacheInflation(g *GPU, l *launch) float64 {
	capacity := g.Spec.L2Bytes.Float()
	reuse := g.Spec.L2ReuseFrac
	if capacity <= 0 || reuse <= 0 || l.k.Bytes <= 0 {
		return 1
	}
	ws := l.k.Bytes.Float()
	others := 0.0
	for _, o := range g.running {
		if o != l && o.k.Bytes > 0 {
			others += o.k.Bytes.Float()
		}
	}
	if others <= 0 {
		return 1
	}
	soloMiss := 1 - reuse*cacheHit(ws, capacity)
	if soloMiss < minMissRate {
		soloMiss = minMissRate
	}
	sharedMiss := 1 - reuse*cacheHit(ws, capacity*ws/(ws+others))
	if sharedMiss < soloMiss {
		return 1
	}
	return sharedMiss / soloMiss
}

// cacheHit is the fraction of re-references that hit a cache share of
// cap bytes given a working set of ws bytes: full reuse when the set
// fits, proportional otherwise.
func cacheHit(ws, cap float64) float64 {
	if ws <= cap {
		return 1
	}
	return cap / ws
}
