package gpusim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/forkjoin"
	"repro/internal/units"
)

// OpSupport is one support point of an operator's fitted latency
// distribution: the latency quantile grid observed at one token count.
// Q ascends both within a support (quantile levels) and, after isotonic
// fitting, across supports of the same operator (token counts), which is
// what makes sampled latencies monotone non-decreasing in tokens at any
// fixed quantile.
type OpSupport struct {
	// Tokens is the size coordinate (Kernel.Tokens) of this support.
	Tokens int
	// Q is the ascending latency quantile grid; Q[0] is the distribution
	// minimum and Q[len(Q)-1] its maximum.
	Q []units.Seconds
}

// LatencyTable holds fitted per-operator latency distributions for the
// sampled backend, normalised to solo execution on RefSMs SMs of the
// profiled device. internal/calib fits tables from trace files or by
// self-calibration against the analytic model.
type LatencyTable struct {
	// RefSMs is the SM count the samples were collected at; the backend
	// rescales draws to the kernel's actual allocation via the analytic
	// roofline at RefSMs.
	RefSMs int
	// Ops maps operator name (Kernel.Name) to its ascending-token
	// support points.
	Ops map[string][]OpSupport
}

// Validate checks the table invariants the sampled backend relies on:
// positive RefSMs, non-empty ascending supports, and per-support
// ascending positive finite quantile grids of a consistent size.
func (t *LatencyTable) Validate() error {
	if t == nil {
		return fmt.Errorf("latency table: nil")
	}
	if t.RefSMs <= 0 {
		return fmt.Errorf("latency table: non-positive RefSMs %d", t.RefSMs)
	}
	if len(t.Ops) == 0 {
		return fmt.Errorf("latency table: no operators")
	}
	for _, op := range sortedOpNames(t.Ops) {
		sup := t.Ops[op]
		if len(sup) == 0 {
			return fmt.Errorf("latency table: operator %q has no supports", op)
		}
		grid := len(sup[0].Q)
		prevTok := 0
		for i, s := range sup {
			if s.Tokens <= prevTok {
				return fmt.Errorf("latency table: operator %q support %d: tokens %d not ascending (previous %d)",
					op, i, s.Tokens, prevTok)
			}
			prevTok = s.Tokens
			if len(s.Q) == 0 || len(s.Q) != grid {
				return fmt.Errorf("latency table: operator %q support %d: quantile grid size %d (want %d)",
					op, i, len(s.Q), grid)
			}
			prev := units.Seconds(0)
			for j, q := range s.Q {
				if units.IsNaN(q) || units.IsInf(q, 0) || q <= 0 {
					return fmt.Errorf("latency table: operator %q tokens %d: quantile %d is %v",
						op, s.Tokens, j, q)
				}
				if q < prev {
					return fmt.Errorf("latency table: operator %q tokens %d: quantile %d (%v) below quantile %d (%v)",
						op, s.Tokens, j, q, j-1, prev)
				}
				prev = q
			}
		}
	}
	return nil
}

// sortedOpNames returns the table's operator names in sorted order, for
// deterministic iteration.
func sortedOpNames(m map[string][]OpSupport) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sample draws the latency of operator op at the given token count from
// the fitted distribution: the quantile grid is inverse-CDF sampled at
// u ∈ [0,1), interpolating linearly within the grid and between the two
// token supports bracketing tokens. Returns false when the operator is
// not in the table. The result always lies within the operator's fitted
// [min, max] support, and for fixed u is monotone non-decreasing in
// tokens (both inherited from Validate's ascending-grid invariants).
//
// This is the per-kernel latency lookup of the sampled backend, called
// once per launch on the simulator's event path.
//
//bullet:hotpath
func (t *LatencyTable) Sample(op string, tokens int, u float64) (units.Seconds, bool) {
	sup := t.Ops[op]
	if len(sup) == 0 {
		return 0, false
	}
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	// Bracket tokens between two supports (manual binary search: the
	// sort.Search closure would allocate on this path).
	lo, hi := 0, len(sup)
	for lo < hi {
		mid := (lo + hi) / 2
		if sup[mid].Tokens < tokens {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first support with Tokens >= tokens.
	switch {
	case lo == 0:
		return quantileAt(sup[0].Q, u), true
	case lo == len(sup):
		return quantileAt(sup[len(sup)-1].Q, u), true
	}
	a, b := sup[lo-1], sup[lo]
	qa, qb := quantileAt(a.Q, u), quantileAt(b.Q, u)
	w := float64(tokens-a.Tokens) / float64(b.Tokens-a.Tokens)
	return qa + units.Scale(qb-qa, w), true
}

// quantileAt evaluates an ascending quantile grid at level u ∈ [0,1] with
// linear interpolation between grid points.
func quantileAt(q []units.Seconds, u float64) units.Seconds {
	if len(q) == 1 {
		return q[0]
	}
	pos := u * float64(len(q)-1)
	i := int(pos)
	if i >= len(q)-1 {
		return q[len(q)-1]
	}
	frac := pos - float64(i)
	return q[i] + units.Scale(q[i+1]-q[i], frac)
}

// SampledBackend is the profile-driven latency model (LLM-Emu style): at
// each kernel launch it draws the kernel's solo latency from a fitted
// per-operator distribution and rescales the analytic nominal rate so the
// kernel's solo time on RefSMs would equal the draw. Spatial effects
// (mask splits, co-run penalties, bandwidth water-filling) still come
// from the fluid model; the draw injects profiled magnitude and run-to-run
// dispersion the closed-form roofline cannot express.
//
// Draws consume a deterministic splitmix stream (forkjoin.ForkSeed) keyed
// by seed and an increasing launch counter, so a replay with the same
// seed observes identical latencies — including under -race and across
// serial/parallel cluster harnesses, because each replica owns a backend.
type SampledBackend struct {
	table *LatencyTable
	seed  int64
	draws int
	miss  int
}

// NewSampledBackend validates the table and builds a backend over it.
func NewSampledBackend(table *LatencyTable, seed int64) *SampledBackend {
	if err := table.Validate(); err != nil {
		panic(fmt.Sprintf("gpusim: NewSampledBackend: %v", err))
	}
	return &SampledBackend{table: table, seed: seed}
}

// Name implements LatencyBackend.
func (b *SampledBackend) Name() string { return BackendSampled }

// Draws returns the number of latency draws consumed so far.
func (b *SampledBackend) Draws() int { return b.draws }

// Misses returns the number of launches whose operator was absent from
// the table and therefore fell back to the analytic rate.
func (b *SampledBackend) Misses() int { return b.miss }

// Table returns the fitted table the backend samples from.
func (b *SampledBackend) Table() *LatencyTable { return b.table }

// Begin implements LatencyBackend: one distribution draw per launch,
// fixing the kernel's rate multiplier for its whole residency.
func (b *SampledBackend) Begin(g *GPU, l *launch) {
	u := b.nextUniform()
	sampled, ok := b.table.Sample(l.k.Name, l.k.Tokens, u)
	if !ok {
		b.miss++
		return
	}
	ref := refSoloLatency(g.Spec, l.k, b.table.RefSMs)
	if ref > 0 && sampled > 0 {
		l.scale = units.Ratio(ref, sampled)
	}
}

// Demand implements LatencyBackend: the analytic demand with the launch's
// drawn rate multiplier applied, so bandwidth consumption tracks the
// sampled rate.
func (b *SampledBackend) Demand(g *GPU, l *launch) KernelDemand {
	meff := g.effectiveSMs(l)
	nominal, _ := g.soloRate(l, meff, g.overlapFraction(l))
	rate := units.Scale(nominal, l.scale)
	return KernelDemand{Rate: rate, BW: l.k.Bytes.AtRate(rate), Volume: l.k.Bytes}
}

// nextUniform advances the splitmix draw stream and maps it to [0,1).
// Consuming one value per launch (hits and misses alike) keeps the
// stream alignment independent of table contents.
func (b *SampledBackend) nextUniform() float64 {
	z := forkjoin.ForkSeed(b.seed, b.draws)
	b.draws++
	return float64(uint64(z)>>11) / float64(uint64(1)<<53)
}

// refSoloLatency is the analytic solo latency of kernel k on m healthy
// SMs of spec with no co-residents: the reference point that anchors
// sampled draws to the device the table was profiled on.
func refSoloLatency(spec Spec, k Kernel, m int) units.Seconds {
	if m <= 0 || m > spec.NumSMs {
		m = spec.NumSMs
	}
	frac := float64(m) / float64(spec.NumSMs)
	eff := k.Efficiency
	if eff == 0 {
		eff = 1
	}
	wave := 1 - WaveIdleRatio(k.Grid, m)
	computeCap := units.Scale(units.Scale(spec.PeakFLOPS, eff), frac)
	bwCap := units.Scale(spec.PeakBW, math.Min(1, math.Pow(frac, spec.BWScaleExp)))
	t := units.Seconds(0)
	if k.FLOPs > 0 {
		t = units.Max(t, units.Over(k.FLOPs.Div(computeCap), wave))
	}
	if k.Bytes > 0 {
		t = units.Max(t, k.Bytes.Div(bwCap))
	}
	if k.CommBytes > 0 && spec.LinkBW > 0 {
		t = units.Max(t, k.CommBytes.Div(spec.LinkBW))
	}
	return t
}
