package gpusim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/smmask"
	"repro/internal/units"
)

func TestSamplerObservesConcurrency(t *testing.T) {
	s, g := newTestGPU()
	var maxResident int
	var sawBusySMs units.SMs
	g.Sampler = func(_ sim.Time, u Utilization) {
		if u.Resident > maxResident {
			maxResident = u.Resident
		}
		if u.BusySMs > sawBusySMs {
			sawBusySMs = u.BusySMs
		}
	}
	a := g.NewStream(smmask.Range(0, 4))
	b := g.NewStream(smmask.Range(4, 8))
	g.Launch(a, Kernel{FLOPs: 1e11, Bytes: 1, Grid: 4}, nil)
	g.Launch(b, Kernel{FLOPs: 1e11, Bytes: 1, Grid: 4}, nil)
	s.RunAll(1000)
	if maxResident != 2 {
		t.Fatalf("max resident = %d, want 2", maxResident)
	}
	if sawBusySMs != 8 {
		t.Fatalf("busy SMs = %v, want 8", sawBusySMs)
	}
}

func TestStreamDepthAndBusy(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	if st.Busy() || st.Depth() != 0 {
		t.Fatal("fresh stream busy")
	}
	g.Launch(st, Kernel{FLOPs: 1e11, Bytes: 1}, nil)
	g.Launch(st, Kernel{FLOPs: 1e11, Bytes: 1}, nil)
	if st.Depth() != 2 || !st.Busy() {
		t.Fatalf("depth = %d", st.Depth())
	}
	s.RunAll(1000)
	if st.Busy() {
		t.Fatal("drained stream busy")
	}
}

func TestEmptyMaskPanics(t *testing.T) {
	_, g := newTestGPU()
	defer func() {
		if recover() == nil {
			t.Fatal("empty mask accepted")
		}
	}()
	g.NewStream(smmask.Empty)
}

func TestZeroWorkKernelPanics(t *testing.T) {
	_, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	defer func() {
		if recover() == nil {
			t.Fatal("zero-work kernel accepted")
		}
	}()
	g.Launch(st, Kernel{Name: "empty"}, nil)
}

func TestTagAccountingAcrossStreams(t *testing.T) {
	s, g := newTestGPU()
	a := g.NewStream(smmask.Range(0, 4))
	b := g.NewStream(smmask.Range(4, 8))
	g.Launch(a, Kernel{FLOPs: 1e11, Bytes: 1, Tag: "prefill"}, nil)
	g.Launch(b, Kernel{Bytes: 1e10, Tag: "decode"}, nil)
	s.RunAll(1000)
	st := g.Stats()
	if st.TagFlops["prefill"] < 0.99e11 {
		t.Fatalf("prefill flops = %v", st.TagFlops["prefill"])
	}
	if st.TagBytes["decode"] < 0.99e10 {
		t.Fatalf("decode bytes = %v", st.TagBytes["decode"])
	}
	if st.TagSMTime["prefill"] <= 0 || st.TagSMTime["decode"] <= 0 {
		t.Fatalf("missing SM time: %+v", st.TagSMTime)
	}
}

func TestBandwidthUtilizationAverage(t *testing.T) {
	s, g := newTestGPU()
	st := g.NewStream(g.FullMask())
	// One second of full-bandwidth traffic followed by one second idle.
	g.Launch(st, Kernel{Bytes: 1e11}, nil)
	s.RunAll(1000)
	s.At(2.0, func() {})
	s.RunAll(10)
	if u := g.BandwidthUtilization(); u < 0.49 || u > 0.51 {
		t.Fatalf("bandwidth utilization = %v, want ≈0.5", u)
	}
}
