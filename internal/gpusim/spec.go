package gpusim

import "repro/internal/units"

// Spec describes a simulated GPU. All rates are in SI units (FLOP/s,
// bytes/s, seconds), carried as unit types from internal/units.
type Spec struct {
	// Name identifies the device in traces ("A100-PCIe-80GB").
	Name string
	// NumSMs is the number of streaming multiprocessors (108 on A100).
	NumSMs int
	// PeakFLOPS is the peak dense tensor throughput (FP16 w/ FP32 acc).
	PeakFLOPS units.FLOPsPerSec
	// PeakBW is the peak HBM bandwidth in bytes/s.
	PeakBW units.BytesPerSec
	// HBMBytes is the device memory capacity.
	HBMBytes units.Bytes
	// LaunchOverhead is the CPU-side cost of launching one kernel.
	// Kernels launched as part of a CUDA graph instead pay
	// GraphLaunchOverhead once for the whole graph.
	LaunchOverhead units.Seconds
	// GraphLaunchOverhead is the cost of launching a captured graph.
	GraphLaunchOverhead units.Seconds
	// BWScaleExp shapes how achievable bandwidth scales with the
	// fraction x of SMs a kernel may occupy: fb(x) = min(1, x^BWScaleExp).
	// Exponents < 1 give the super-linear scaling of memory-bound
	// kernels observed in Figure 7 of the paper.
	BWScaleExp float64
	// CoRunComputePenalty (p_c) multiplies a kernel's compute capacity
	// at full SM overlap with co-resident kernels (L1/shared-memory and
	// scheduler thrash); the effective penalty scales linearly with the
	// overlap fraction, so strictly partitioned kernels pay none.
	CoRunComputePenalty float64
	// CoRunBWPenalty (p_b) is the analogous full-overlap penalty on a
	// kernel's achievable bandwidth.
	CoRunBWPenalty float64
	// LinkBW is the per-GPU interconnect bandwidth (NVLink-class) used
	// by kernels carrying CommBytes (tensor-parallel allreduces).
	LinkBW units.BytesPerSec
	// L2Bytes is the last-level cache capacity, consumed only by the
	// memory-hierarchy latency backend (zero disables the model; the
	// analytic backend ignores it entirely).
	L2Bytes units.Bytes
	// L2ReuseFrac is the fraction of a kernel's DRAM accesses that are
	// re-references L2 could serve when the working set fits. Only the
	// hierarchy backend reads it.
	L2ReuseFrac float64
}

// A100 returns the specification of the paper's evaluation platform:
// NVIDIA A100-PCIe-80GB, 108 SMs, clocks locked at 1410 MHz.
//
// PeakFLOPS is the FP16 tensor-core peak (312 TFLOP/s); per-kernel
// achievable efficiency (cuBLAS ~92%, attention lower) is expressed on the
// kernels themselves, so the red "peak sustainable" line of Figure 2 is a
// property of the workload, not the device.
func A100() Spec {
	return Spec{
		Name:                "A100-PCIe-80GB",
		NumSMs:              108,
		PeakFLOPS:           312e12,
		PeakBW:              2.0e12,
		HBMBytes:            80e9,
		LaunchOverhead:      6e-6,
		GraphLaunchOverhead: 20e-6,
		BWScaleExp:          0.45,
		CoRunComputePenalty: 0.85,
		CoRunBWPenalty:      0.82,
		LinkBW:              300e9, // NVLink 3
		L2Bytes:             40e6,
		L2ReuseFrac:         0.35,
	}
}

// H100 returns an NVIDIA H100-SXM5-80GB: 132 SMs, ~989 TFLOP/s FP16
// tensor peak, 3.35 TB/s HBM3. Useful for cross-device experiments; the
// wave-quantization landscape differs from the A100 because 132 divides
// differently into power-of-two grids.
func H100() Spec {
	return Spec{
		Name:                "H100-SXM5-80GB",
		NumSMs:              132,
		PeakFLOPS:           989e12,
		PeakBW:              3.35e12,
		HBMBytes:            80e9,
		LaunchOverhead:      5e-6,
		GraphLaunchOverhead: 18e-6,
		BWScaleExp:          0.45,
		CoRunComputePenalty: 0.85,
		CoRunBWPenalty:      0.82,
		LinkBW:              450e9, // NVLink 4
		L2Bytes:             50e6,
		L2ReuseFrac:         0.35,
	}
}

// TestGPU returns a small, fast device useful in unit tests: 8 SMs, round
// numbers, no launch overhead.
func TestGPU() Spec {
	return Spec{
		Name:                "test-gpu",
		NumSMs:              8,
		PeakFLOPS:           1e12,
		PeakBW:              1e11,
		HBMBytes:            16e9,
		LaunchOverhead:      0,
		GraphLaunchOverhead: 0,
		BWScaleExp:          0.5,
		CoRunComputePenalty: 1,
		CoRunBWPenalty:      1,
		LinkBW:              1e10,
		L2Bytes:             4e6,
		L2ReuseFrac:         0.5,
	}
}

// WaveIdleRatio implements Equation 1 of the paper: the fraction of
// SM-cycles left idle by wave quantization when a kernel of grid TBs runs
// on m SMs. Grids that divide evenly (or grid==0, meaning "shapeless"
// work) have no idle tail.
func WaveIdleRatio(grid, m int) float64 {
	if grid <= 0 || m <= 0 {
		return 0
	}
	waves := (grid + m - 1) / m
	return 1 - float64(grid)/float64(m*waves)
}
