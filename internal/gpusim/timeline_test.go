package gpusim

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/timeline"
	"repro/internal/units"
)

// TestKernelSpanDurationsSumToBusyTime is the gpusim half of the
// timeline invariants: on a single stream the recorded kernel spans are
// back-to-back and their durations must sum — within float tolerance —
// to the device's accumulated any-busy time. Checked with testing/quick
// over random serial kernel workloads.
func TestKernelSpanDurationsSumToBusyTime(t *testing.T) {
	prop := func(raw []struct {
		GF   uint16 // tenths of GFLOPs
		MB   uint16 // tenths of MBs
		Grid uint8
	}) bool {
		if len(raw) == 0 {
			return true
		}
		s := sim.New()
		g := New(s, TestGPU())
		rec := timeline.New(0)
		g.TL = rec
		st := g.NewStream(g.FullMask())
		for i, v := range raw {
			k := Kernel{
				Name:  fmt.Sprintf("k%d", i),
				Tag:   "prop",
				FLOPs: units.FLOPs(float64(v.GF) * 1e8),
				Bytes: units.Bytes(float64(v.MB) * 1e5),
				Grid:  int(v.Grid) + 1,
			}
			g.Launch(st, k, nil)
		}
		s.RunAll(100000)

		var sum units.Seconds
		spans := 0
		for _, e := range rec.Events() {
			if e.Kind != timeline.KindSpan {
				continue
			}
			spans++
			sum += e.Duration()
		}
		if spans != len(raw) {
			t.Logf("recorded %d spans for %d kernels", spans, len(raw))
			return false
		}
		busy := g.Stats().AnyBusyTime
		if !almost(sum, busy, 1e-9) {
			t.Logf("span durations sum to %v, busy time %v", sum, busy)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelSpanArgs pins the per-kernel annotations: achieved rates
// only when the span has width, SM/grid/contention always.
func TestKernelSpanArgs(t *testing.T) {
	s := sim.New()
	g := New(s, TestGPU())
	rec := timeline.New(0)
	g.TL = rec
	st := g.NewStream(g.FullMask())
	g.Launch(st, Kernel{Name: "attn", Tag: "prefill", FLOPs: 1e12, Bytes: 1e9, Grid: 216}, nil)
	s.RunAll(1000)

	var span *timeline.Event
	for _, e := range rec.Events() {
		if e.Kind == timeline.KindSpan {
			ev := e
			span = &ev
		}
	}
	if span == nil {
		t.Fatal("no kernel span recorded")
	}
	if span.Lane != "stream00" || span.Name != "attn" {
		t.Fatalf("span on lane %q name %q", span.Lane, span.Name)
	}
	got := map[string]bool{}
	for _, a := range span.Args {
		got[a.Key] = true
	}
	for _, key := range []string{"tag", "sms", "grid", "waveIdle", "gflops", "gbps", "overlap"} {
		if !got[key] {
			t.Errorf("span missing arg %q (has %v)", key, span.Args)
		}
	}
}

// TestOccupancyCountersEmitted checks the periodic counter samples: a
// run with resident kernels produces occupancy and throughput samples
// on the "gpu" lane, and every sample is exportable (finite, numeric).
func TestOccupancyCountersEmitted(t *testing.T) {
	s := sim.New()
	g := New(s, TestGPU())
	rec := timeline.New(0)
	g.TL = rec
	st := g.NewStream(g.FullMask())
	for i := 0; i < 3; i++ {
		g.Launch(st, Kernel{Name: "k", Tag: "x", FLOPs: 1e12, Bytes: 1e8, Grid: 108}, nil)
	}
	s.RunAll(1000)

	occ, thr := 0, 0
	for _, e := range rec.Events() {
		if e.Kind != timeline.KindCounter || e.Lane != "gpu" {
			continue
		}
		switch e.Name {
		case "occupancy":
			occ++
		case "throughput":
			thr++
		}
	}
	if occ == 0 || thr == 0 {
		t.Fatalf("occupancy=%d throughput=%d counter samples, want both > 0", occ, thr)
	}
	if err := rec.WriteChrome(discard{}); err != nil {
		t.Fatalf("counter samples not exportable: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
