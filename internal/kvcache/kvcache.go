// Package kvcache implements a PagedAttention-style block allocator for
// the key/value cache (Kwon et al., SOSP'23), the memory substrate both
// Bullet engines share.
//
// The pool tracks logical blocks only — the simulated GPU moves the
// bytes — but it enforces the same invariants a real pool must: block
// exclusivity, capacity limits, and copy-free ownership transfer between
// the prefill and decode engines (the paper's CUDA-IPC shared memory pool,
// §3.5.2).
package kvcache

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/units"
)

// ErrOutOfMemory is returned when the pool cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("kvcache: out of KV cache blocks")

// Pool is a block allocator of (normally) fixed capacity. Not safe for
// concurrent use; the simulation is single-threaded by design.
//
// Capacity may be reduced live via Shrink (a fault-injected leak or
// fragmentation event): free blocks retire immediately and any shortfall
// drains — blocks retire as sequences release them — until the target is
// met. Restore reverses a shrink. During a drain the pool can be
// over-committed: UsedBlocks may exceed TotalBlocks until enough
// sequences free their blocks.
type Pool struct {
	blockTokens int
	totalBlocks int
	free        []int32 // free block ids (LIFO)
	// owner maps block id -> holding sequence, indexed by block id:
	// ids are dense in [0, construction size), so a slice replaces the
	// map on the per-step allocate/free path. held counts non-nil
	// entries.
	owner    []*Sequence
	held     int
	seqs     map[string]*Sequence
	peakUsed int

	// tables recycles block-table backing arrays of freed sequences, so
	// steady-state allocate/free churn reuses capacity instead of
	// allocating a fresh table per request.
	tables [][]int32

	// retired holds block ids removed by Shrink (LIFO, so Restore
	// resurrects exactly the most recently retired ids); retirePending
	// counts capacity already subtracted from totalBlocks whose physical
	// blocks are still held by sequences — they retire on Free.
	retired       []int32
	retirePending int
}

// Sequence is the cache of one request: an ordered block table plus a
// token count.
type Sequence struct {
	id     string
	pool   *Pool
	blocks []int32
	tokens int
	owner  string // engine currently owning the sequence
	freed  bool
}

// NewPool creates a pool of totalBlocks blocks of blockTokens tokens each.
func NewPool(totalBlocks, blockTokens int) *Pool {
	if totalBlocks <= 0 || blockTokens <= 0 {
		panic(fmt.Sprintf("kvcache: invalid pool %d blocks × %d tokens", totalBlocks, blockTokens))
	}
	p := &Pool{
		blockTokens: blockTokens,
		totalBlocks: totalBlocks,
		free:        make([]int32, totalBlocks),
		owner:       make([]*Sequence, totalBlocks),
		seqs:        make(map[string]*Sequence),
	}
	for i := range p.free {
		p.free[i] = int32(totalBlocks - 1 - i)
	}
	return p
}

// PlanBlocks computes how many KV blocks fit on a device: HBM minus
// weights minus a runtime reserve, divided by the per-token KV footprint.
func PlanBlocks(hbmBytes, weightBytes, reserveBytes, kvBytesPerToken units.Bytes, blockTokens int) int {
	free := hbmBytes - weightBytes - reserveBytes
	if free <= 0 || kvBytesPerToken <= 0 || blockTokens <= 0 {
		return 0
	}
	return int(units.Ratio(free, units.Scale(kvBytesPerToken, float64(blockTokens))))
}

// BlockTokens returns the tokens per block.
func (p *Pool) BlockTokens() int { return p.blockTokens }

// TotalBlocks returns the pool's current capacity in blocks (reduced by
// live shrinks, restored by Restore).
func (p *Pool) TotalBlocks() int { return p.totalBlocks }

// FreeBlocks returns the number of unallocated blocks.
func (p *Pool) FreeBlocks() int { return len(p.free) }

// UsedBlocks returns the number of allocated blocks. During a shrink
// drain this can exceed TotalBlocks: sequences still hold capacity that
// has already been subtracted.
func (p *Pool) UsedBlocks() int { return p.totalBlocks + p.retirePending - len(p.free) }

// RetirePending returns how many blocks of an in-progress shrink are
// still waiting for their holders to free them (0 outside a drain).
func (p *Pool) RetirePending() int { return p.retirePending }

// RetiredBlocks returns how many blocks are currently retired and could
// be resurrected by Restore.
func (p *Pool) RetiredBlocks() int { return len(p.retired) }

// Occupancy returns UsedBlocks over TotalBlocks — above 1.0 while a
// shrink drain is over-committed.
func (p *Pool) Occupancy() float64 {
	if p.totalBlocks == 0 {
		return 1
	}
	return float64(p.UsedBlocks()) / float64(p.totalBlocks)
}

// PeakUsedBlocks returns the high-water mark of allocation.
func (p *Pool) PeakUsedBlocks() int { return p.peakUsed }

// TotalTokens returns the token capacity of the pool.
func (p *Pool) TotalTokens() int { return p.totalBlocks * p.blockTokens }

// UsedTokens returns the number of tokens currently cached across
// sequences (not block-rounded).
func (p *Pool) UsedTokens() int {
	t := 0
	for _, s := range p.seqs {
		t += s.tokens
	}
	return t
}

// Sequences returns the number of live sequences.
func (p *Pool) Sequences() int { return len(p.seqs) }

func blocksFor(tokens, blockTokens int) int {
	return (tokens + blockTokens - 1) / blockTokens
}

// CanAllocate reports whether tokens more tokens could be cached right now
// in a fresh sequence.
func (p *Pool) CanAllocate(tokens int) bool {
	return blocksFor(tokens, p.blockTokens) <= len(p.free)
}

// Allocate reserves cache for a new sequence of tokens tokens, owned by
// owner. IDs must be unique among live sequences.
//
//bullet:hotpath
func (p *Pool) Allocate(id string, tokens int, owner string) (*Sequence, error) {
	if tokens < 0 {
		panic(fmt.Sprintf("kvcache: negative token count %d", tokens))
	}
	if _, dup := p.seqs[id]; dup {
		//lint:ignore hotalloc error path: duplicate ids never occur in steady state
		return nil, fmt.Errorf("kvcache: duplicate sequence id %q", id)
	}
	need := blocksFor(tokens, p.blockTokens)
	if need > len(p.free) {
		return nil, ErrOutOfMemory
	}
	//lint:ignore hotalloc one sequence header per request, not per step; the block table below is recycled
	s := &Sequence{id: id, pool: p, tokens: tokens, owner: owner}
	if n := len(p.tables); n > 0 {
		s.blocks = p.tables[n-1][:0]
		p.tables[n-1] = nil
		p.tables = p.tables[:n-1]
	}
	s.blocks = p.takeInto(s.blocks, need, s)
	p.seqs[id] = s
	if u := p.UsedBlocks(); u > p.peakUsed {
		p.peakUsed = u
	}
	return s, nil
}

// takeInto pops n blocks off the free list, records s as their owner,
// and appends their ids to dst (a recycled or in-place block table, per
// the caller's capacity contract).
//
//bullet:hotpath
func (p *Pool) takeInto(dst []int32, n int, s *Sequence) []int32 {
	for i := 0; i < n; i++ {
		b := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.owner[b] = s
		p.held++
		dst = append(dst, b)
	}
	return dst
}

// Free releases all blocks of a sequence. A double free returns a
// contextual error instead of panicking: recovery paths (preemption,
// watchdog aborts) can legitimately race to release the same sequence
// and need to detect the overlap rather than crash. Block-ownership
// mismatches still panic — they indicate corrupted bookkeeping, and the
// invariant walk (CheckInvariants) keeps its debug-mode panics too.
// Blocks freed during a shrink drain retire instead of returning to the
// free list until the drain target is met.
//
//bullet:hotpath
func (p *Pool) Free(s *Sequence) error {
	if s.freed {
		//lint:ignore hotalloc error path: double frees only occur on racing recovery paths
		return fmt.Errorf("kvcache: double free of sequence %q (owner %q)", s.id, s.owner)
	}
	s.freed = true
	for _, b := range s.blocks {
		if p.owner[b] != s {
			panic(fmt.Sprintf("kvcache: block %d not owned by %q", b, s.id))
		}
		p.owner[b] = nil
		p.held--
		if p.retirePending > 0 {
			p.retirePending--
			//lint:ignore hotalloc retired list is bounded by pool capacity
			p.retired = append(p.retired, b)
		} else {
			//lint:ignore hotalloc free list never grows past its construction capacity
			p.free = append(p.free, b)
		}
	}
	if cap(s.blocks) > 0 {
		//lint:ignore hotalloc table recycling list is bounded by peak live sequences
		p.tables = append(p.tables, s.blocks[:0])
	}
	s.blocks = nil
	delete(p.seqs, s.id)
	return nil
}

// MustFree frees a sequence and panics on a double free. Engines use it
// on paths where releasing twice is always a bug; recovery code calls
// Free directly and handles the error.
func (p *Pool) MustFree(s *Sequence) {
	if err := p.Free(s); err != nil {
		panic(fmt.Sprintf("kvcache: unexpected %v", err))
	}
}

// Shrink removes n blocks of capacity (a fault-injected leak or
// fragmentation event). Free blocks retire immediately; the shortfall
// drains, retiring blocks as sequences free them. It returns how many
// blocks retired immediately. n is clamped to the current capacity.
func (p *Pool) Shrink(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("kvcache: negative shrink %d", n))
	}
	if n > p.totalBlocks {
		n = p.totalBlocks
	}
	immediate := n
	if immediate > len(p.free) {
		immediate = len(p.free)
	}
	for i := 0; i < immediate; i++ {
		b := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.retired = append(p.retired, b)
	}
	p.totalBlocks -= n
	p.retirePending += n - immediate
	return immediate
}

// Restore adds back up to n blocks of capacity removed by Shrink: it
// first cancels pending retirement (capacity that never physically
// drained), then resurrects retired block ids onto the free list.
// Restoring more than was shrunk is a no-op for the excess — the pool
// never grows past its construction size.
func (p *Pool) Restore(n int) {
	if n < 0 {
		panic(fmt.Sprintf("kvcache: negative restore %d", n))
	}
	cancel := n
	if cancel > p.retirePending {
		cancel = p.retirePending
	}
	p.retirePending -= cancel
	p.totalBlocks += cancel
	n -= cancel
	back := n
	if back > len(p.retired) {
		back = len(p.retired)
	}
	for i := 0; i < back; i++ {
		b := p.retired[len(p.retired)-1]
		p.retired = p.retired[:len(p.retired)-1]
		p.free = append(p.free, b)
	}
	p.totalBlocks += back
}

// ID returns the sequence id.
func (s *Sequence) ID() string { return s.id }

// Tokens returns the cached token count.
func (s *Sequence) Tokens() int { return s.tokens }

// Blocks returns the number of blocks held.
func (s *Sequence) Blocks() int { return len(s.blocks) }

// BlockTable returns a copy of the block ids, in sequence order.
func (s *Sequence) BlockTable() []int32 {
	out := make([]int32, len(s.blocks))
	copy(out, s.blocks)
	return out
}

// Owner returns the engine currently owning the sequence.
func (s *Sequence) Owner() string { return s.owner }

// Transfer hands the sequence to another engine. No data moves: both
// engines map the same pool (the paper's cudaIpc handle sharing).
func (s *Sequence) Transfer(newOwner string) {
	if s.freed {
		panic(fmt.Sprintf("kvcache: transfer of freed sequence %q", s.id))
	}
	s.owner = newOwner
}

// Extend appends n tokens to the sequence, allocating blocks as needed.
// On ErrOutOfMemory the sequence is unchanged.
//
//bullet:hotpath
func (s *Sequence) Extend(n int) error {
	if s.freed {
		panic(fmt.Sprintf("kvcache: extend of freed sequence %q", s.id))
	}
	if n < 0 {
		panic(fmt.Sprintf("kvcache: negative extension %d", n))
	}
	p := s.pool
	need := blocksFor(s.tokens+n, p.blockTokens) - len(s.blocks)
	if need > len(p.free) {
		return ErrOutOfMemory
	}
	if need > 0 {
		s.blocks = p.takeInto(s.blocks, need, s)
		if u := p.UsedBlocks(); u > p.peakUsed {
			p.peakUsed = u
		}
	}
	s.tokens += n
	return nil
}

// CheckInvariants panics if the pool's bookkeeping is inconsistent. Used
// by tests and integration checks.
func (p *Pool) CheckInvariants() {
	// Walk sequences in sorted id order so a violation always panics with
	// the same message regardless of map iteration order.
	ids := make([]string, 0, len(p.seqs))
	for id := range p.seqs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	held := 0
	for _, id := range ids {
		s := p.seqs[id]
		held += len(s.blocks)
		if blocksFor(s.tokens, p.blockTokens) != len(s.blocks) {
			panic(fmt.Sprintf("kvcache: sequence %q holds %d blocks for %d tokens", s.id, len(s.blocks), s.tokens))
		}
		for _, b := range s.blocks {
			if p.owner[b] != s {
				panic(fmt.Sprintf("kvcache: ownership mismatch on block %d", b))
			}
		}
	}
	if held+len(p.free) != p.totalBlocks+p.retirePending {
		panic(fmt.Sprintf("kvcache: %d held + %d free != %d total + %d retire-pending",
			held, len(p.free), p.totalBlocks, p.retirePending))
	}
	if p.held != held {
		panic(fmt.Sprintf("kvcache: owner table has %d entries, %d blocks held", p.held, held))
	}
	if p.retirePending > held {
		panic(fmt.Sprintf("kvcache: %d blocks retire-pending but only %d held", p.retirePending, held))
	}
	for _, b := range p.retired {
		if p.owner[b] != nil {
			panic(fmt.Sprintf("kvcache: retired block %d still owned", b))
		}
	}
	for _, b := range p.free {
		if p.owner[b] != nil {
			panic(fmt.Sprintf("kvcache: free block %d still owned", b))
		}
	}
}
