package kvcache

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAllocateFree(t *testing.T) {
	p := NewPool(10, 16)
	s, err := p.Allocate("r1", 33, "prefill") // 3 blocks
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 3 || s.Tokens() != 33 {
		t.Fatalf("blocks=%d tokens=%d", s.Blocks(), s.Tokens())
	}
	if p.FreeBlocks() != 7 || p.UsedBlocks() != 3 {
		t.Fatalf("free=%d used=%d", p.FreeBlocks(), p.UsedBlocks())
	}
	p.CheckInvariants()
	p.Free(s)
	if p.FreeBlocks() != 10 || p.Sequences() != 0 {
		t.Fatalf("after free: free=%d seqs=%d", p.FreeBlocks(), p.Sequences())
	}
	p.CheckInvariants()
}

func TestZeroTokenAllocation(t *testing.T) {
	p := NewPool(4, 16)
	s, err := p.Allocate("r", 0, "prefill")
	if err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 0 {
		t.Fatalf("blocks = %d, want 0", s.Blocks())
	}
	if err := s.Extend(1); err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 1 {
		t.Fatalf("blocks after extend = %d, want 1", s.Blocks())
	}
	p.Free(s)
	p.CheckInvariants()
}

func TestOutOfMemory(t *testing.T) {
	p := NewPool(4, 16)
	if _, err := p.Allocate("big", 65, "p"); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if p.UsedBlocks() != 0 {
		t.Fatal("failed allocation leaked blocks")
	}
	s, err := p.Allocate("fit", 64, "p")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Extend(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("extend err = %v, want ErrOutOfMemory", err)
	}
	if s.Tokens() != 64 {
		t.Fatal("failed extend changed token count")
	}
	p.CheckInvariants()
}

func TestDuplicateID(t *testing.T) {
	p := NewPool(4, 16)
	if _, err := p.Allocate("x", 1, "p"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate("x", 1, "p"); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestExtendWithinBlock(t *testing.T) {
	p := NewPool(4, 16)
	s, _ := p.Allocate("r", 10, "p")
	for i := 0; i < 6; i++ {
		if err := s.Extend(1); err != nil {
			t.Fatal(err)
		}
	}
	if s.Blocks() != 1 || s.Tokens() != 16 {
		t.Fatalf("blocks=%d tokens=%d, want 1/16", s.Blocks(), s.Tokens())
	}
	if err := s.Extend(1); err != nil {
		t.Fatal(err)
	}
	if s.Blocks() != 2 {
		t.Fatalf("blocks=%d, want 2 after crossing boundary", s.Blocks())
	}
}

func TestTransfer(t *testing.T) {
	p := NewPool(4, 16)
	s, _ := p.Allocate("r", 16, "prefill")
	before := s.BlockTable()
	s.Transfer("decode")
	if s.Owner() != "decode" {
		t.Fatalf("owner = %q", s.Owner())
	}
	after := s.BlockTable()
	if len(before) != len(after) || before[0] != after[0] {
		t.Fatal("transfer moved blocks (should be copy-free)")
	}
}

func TestDoubleFreeError(t *testing.T) {
	p := NewPool(4, 16)
	s, _ := p.Allocate("r", 16, "p")
	if err := p.Free(s); err != nil {
		t.Fatalf("first free: %v", err)
	}
	err := p.Free(s)
	if err == nil {
		t.Fatal("double free did not return an error")
	}
	if !strings.Contains(err.Error(), `"r"`) {
		t.Fatalf("double-free error lacks sequence id: %v", err)
	}
	p.CheckInvariants()
	if p.FreeBlocks() != p.TotalBlocks() {
		t.Fatalf("double free corrupted accounting: %d free of %d", p.FreeBlocks(), p.TotalBlocks())
	}
}

func TestMustFreePanicsOnDoubleFree(t *testing.T) {
	p := NewPool(4, 16)
	s, _ := p.Allocate("r", 16, "p")
	p.MustFree(s)
	defer func() {
		if recover() == nil {
			t.Fatal("MustFree double free did not panic")
		}
	}()
	p.MustFree(s)
}

func TestUseAfterFreePanics(t *testing.T) {
	p := NewPool(4, 16)
	s, _ := p.Allocate("r", 16, "p")
	p.Free(s)
	defer func() {
		if recover() == nil {
			t.Fatal("extend after free did not panic")
		}
	}()
	_ = s.Extend(1)
}

func TestPlanBlocks(t *testing.T) {
	// A100-80GB with Llama-8B: 80GB - 16GB weights - 4GB reserve = 60GB;
	// 131072 B/token, 16-token blocks → ~28.6k blocks (~458k tokens).
	blocks := PlanBlocks(80e9, 16e9, 4e9, 131072, 16)
	if blocks < 25000 || blocks > 30000 {
		t.Fatalf("blocks = %d, want ≈ 28.6k", blocks)
	}
	if PlanBlocks(10e9, 16e9, 0, 131072, 16) != 0 {
		t.Fatal("negative free memory should give 0 blocks")
	}
}

func TestPeakUsage(t *testing.T) {
	p := NewPool(10, 16)
	a, _ := p.Allocate("a", 64, "p")
	b, _ := p.Allocate("b", 64, "p")
	p.Free(a)
	if p.PeakUsedBlocks() != 8 {
		t.Fatalf("peak = %d, want 8", p.PeakUsedBlocks())
	}
	p.Free(b)
}

func TestUsedTokens(t *testing.T) {
	p := NewPool(10, 16)
	a, _ := p.Allocate("a", 20, "p")
	if p.UsedTokens() != 20 {
		t.Fatalf("used tokens = %d", p.UsedTokens())
	}
	_ = a.Extend(5)
	if p.UsedTokens() != 25 {
		t.Fatalf("used tokens = %d", p.UsedTokens())
	}
}

// Property: a random workload of allocs/extends/frees never violates the
// pool invariants and ends with everything freed.
func TestPropertyRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPool(rng.Intn(200)+10, 1<<uint(rng.Intn(5)))
		live := map[string]*Sequence{}
		next := 0
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0: // allocate
				id := fmt.Sprintf("s%d", next)
				next++
				s, err := p.Allocate(id, rng.Intn(64), "e")
				if err == nil {
					live[id] = s
				} else if !errors.Is(err, ErrOutOfMemory) {
					return false
				}
			case 1: // extend
				for _, s := range live {
					if err := s.Extend(rng.Intn(40)); err != nil && !errors.Is(err, ErrOutOfMemory) {
						return false
					}
					break
				}
			case 2: // free
				for id, s := range live {
					p.Free(s)
					delete(live, id)
					break
				}
			}
			p.CheckInvariants()
		}
		for id, s := range live {
			p.Free(s)
			delete(live, id)
		}
		p.CheckInvariants()
		return p.FreeBlocks() == p.TotalBlocks() && p.UsedTokens() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: block tables never share a block across live sequences.
func TestPropertyBlockExclusivity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewPool(100, 16)
		seen := map[int32]string{}
		for i := 0; i < 10; i++ {
			s, err := p.Allocate(fmt.Sprintf("s%d", i), rng.Intn(150), "e")
			if errors.Is(err, ErrOutOfMemory) {
				continue
			}
			for _, b := range s.BlockTable() {
				if owner, dup := seen[b]; dup {
					_ = owner
					return false
				}
				seen[b] = s.ID()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkImmediateAndDrain(t *testing.T) {
	p := NewPool(10, 16)
	s, _ := p.Allocate("r", 8*16, "p") // 8 blocks held, 2 free
	if got := p.Shrink(5); got != 2 {
		t.Fatalf("immediate = %d, want 2 (only 2 free)", got)
	}
	if p.TotalBlocks() != 5 || p.RetirePending() != 3 || p.RetiredBlocks() != 2 {
		t.Fatalf("total=%d pending=%d retired=%d", p.TotalBlocks(), p.RetirePending(), p.RetiredBlocks())
	}
	if p.UsedBlocks() != 8 {
		t.Fatalf("used = %d, want 8 (over-committed during drain)", p.UsedBlocks())
	}
	if p.Occupancy() <= 1 {
		t.Fatalf("occupancy = %v, want > 1 during drain", p.Occupancy())
	}
	p.CheckInvariants()
	// Freeing the holder retires the pending 3 and frees the rest.
	p.MustFree(s)
	if p.RetirePending() != 0 || p.RetiredBlocks() != 5 || p.FreeBlocks() != 5 {
		t.Fatalf("after drain: pending=%d retired=%d free=%d", p.RetirePending(), p.RetiredBlocks(), p.FreeBlocks())
	}
	p.CheckInvariants()
}

func TestRestore(t *testing.T) {
	p := NewPool(10, 16)
	s, _ := p.Allocate("r", 8*16, "p")
	p.Shrink(5) // 2 immediate, 3 pending
	// Restore 4: cancels the 3 pending first, then resurrects 1 retired.
	p.Restore(4)
	if p.TotalBlocks() != 9 || p.RetirePending() != 0 || p.RetiredBlocks() != 1 {
		t.Fatalf("total=%d pending=%d retired=%d", p.TotalBlocks(), p.RetirePending(), p.RetiredBlocks())
	}
	// Excess restore is a no-op: pool never grows past construction size.
	p.Restore(100)
	if p.TotalBlocks() != 10 || p.RetiredBlocks() != 0 {
		t.Fatalf("after excess restore: total=%d retired=%d", p.TotalBlocks(), p.RetiredBlocks())
	}
	p.CheckInvariants()
	p.MustFree(s)
	if p.FreeBlocks() != 10 {
		t.Fatalf("free = %d, want 10", p.FreeBlocks())
	}
	p.CheckInvariants()
}

func TestShrinkClampsToCapacity(t *testing.T) {
	p := NewPool(4, 16)
	p.Shrink(100)
	if p.TotalBlocks() != 0 || p.RetiredBlocks() != 4 {
		t.Fatalf("total=%d retired=%d", p.TotalBlocks(), p.RetiredBlocks())
	}
	if p.Occupancy() != 1 {
		t.Fatalf("occupancy of empty zero-capacity pool = %v, want 1", p.Occupancy())
	}
	if p.CanAllocate(1) {
		t.Fatal("zero-capacity pool claims it can allocate")
	}
	p.Restore(4)
	if p.TotalBlocks() != 4 || p.FreeBlocks() != 4 {
		t.Fatalf("after restore: total=%d free=%d", p.TotalBlocks(), p.FreeBlocks())
	}
	p.CheckInvariants()
}

func TestShrinkNegativePanics(t *testing.T) {
	p := NewPool(4, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("negative shrink did not panic")
		}
	}()
	p.Shrink(-1)
}

func TestRestoreNegativePanics(t *testing.T) {
	p := NewPool(4, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("negative restore did not panic")
		}
	}()
	p.Restore(-1)
}

// Property (ISSUE 5 satellite): random interleavings of Allocate / Extend /
// Free / Transfer / Shrink / Restore never violate block accounting —
// held + free == total + retire-pending, no block owned twice — and a
// full drain always returns the pool to a consistent empty state.
func TestPropertyShrinkInterleaving(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		construction := rng.Intn(150) + 20
		p := NewPool(construction, 16)
		var ids []string // insertion-ordered so op choice is deterministic
		live := map[string]*Sequence{}
		shrunk := 0 // net outstanding shrink (bounded by construction)
		next := 0
		for op := 0; op < 400; op++ {
			switch rng.Intn(6) {
			case 0: // allocate
				id := fmt.Sprintf("s%d", next)
				next++
				s, err := p.Allocate(id, rng.Intn(80), "prefill")
				if err == nil {
					live[id] = s
					ids = append(ids, id)
				} else if !errors.Is(err, ErrOutOfMemory) {
					t.Logf("seed %d: allocate: %v", seed, err)
					return false
				}
			case 1: // extend a random live sequence
				if len(ids) > 0 {
					s := live[ids[rng.Intn(len(ids))]]
					if err := s.Extend(rng.Intn(40)); err != nil && !errors.Is(err, ErrOutOfMemory) {
						return false
					}
				}
			case 2: // free a random live sequence
				if len(ids) > 0 {
					i := rng.Intn(len(ids))
					id := ids[i]
					if err := p.Free(live[id]); err != nil {
						return false
					}
					delete(live, id)
					ids = append(ids[:i], ids[i+1:]...)
				}
			case 3: // transfer ownership (copy-free, no accounting change)
				if len(ids) > 0 {
					live[ids[rng.Intn(len(ids))]].Transfer("decode")
				}
			case 4: // shrink
				n := rng.Intn(p.TotalBlocks() + 1)
				p.Shrink(n)
				shrunk += n
			case 5: // restore
				if shrunk > 0 {
					n := rng.Intn(shrunk + 1)
					p.Restore(n)
					shrunk -= n
				}
			}
			p.CheckInvariants()
			// No block owned twice: rebuild the ownership set from the
			// block tables and compare sizes.
			seen := map[int32]bool{}
			heldBlocks := 0
			for _, id := range ids {
				for _, b := range live[id].BlockTable() {
					if seen[b] {
						t.Logf("seed %d: block %d owned twice", seed, b)
						return false
					}
					seen[b] = true
					heldBlocks++
				}
			}
			if heldBlocks+p.FreeBlocks() != p.TotalBlocks()+p.RetirePending() {
				t.Logf("seed %d: %d held + %d free != %d total + %d pending",
					seed, heldBlocks, p.FreeBlocks(), p.TotalBlocks(), p.RetirePending())
				return false
			}
		}
		// Drain: free everything, restore everything.
		for _, id := range ids {
			if err := p.Free(live[id]); err != nil {
				return false
			}
		}
		p.Restore(shrunk)
		p.CheckInvariants()
		return p.TotalBlocks() == construction &&
			p.FreeBlocks() == construction &&
			p.RetirePending() == 0 && p.RetiredBlocks() == 0 &&
			p.UsedTokens() == 0 && p.Sequences() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocateFree(b *testing.B) {
	p := NewPool(1<<16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := p.Allocate("r", 2048, "p")
		if err != nil {
			b.Fatal(err)
		}
		p.Free(s)
	}
}

func BenchmarkExtend(b *testing.B) {
	p := NewPool(1<<16, 16)
	s, _ := p.Allocate("r", 0, "p")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Extend(1); err != nil {
			// Pool drained: recycle the sequence and keep going.
			p.Free(s)
			s, _ = p.Allocate("r", 0, "p")
		}
	}
}
