package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatEq flags exact ==/!= between floating-point operands (and float
// switch cases) across the whole module, cmd/ and examples/ included.
// Computed floats differ in their low bits across evaluation orders and
// optimization levels, so exact comparison is both a robustness hazard
// and a determinism hazard.
//
// Comparisons where either side is a compile-time constant with an exact
// (integral) value — sentinels like 0, 1, -1 — are permitted: those
// values are representable exactly, and comparing against them tests
// "was this ever assigned" rather than "did two computations converge".
// Helper functions whose job is float comparison can be allowlisted via
// floatEqAllowFuncs.
type FloatEq struct{}

func (FloatEq) Name() string { return "floateq" }

func (FloatEq) Doc() string {
	return "flag exact ==/!= between float operands (exact sentinels like 0 permitted)"
}

// floatEqAllowFuncs lists fully-qualified functions permitted to compare
// floats exactly ("pkg/path.Func" or "pkg/path.Recv.Method"). Keep this
// list empty if at all possible: prefer restructuring the comparison.
var floatEqAllowFuncs = map[string]bool{}

func (FloatEq) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && floatEqAllowFuncs[qualifiedName(p, fd)] {
				return false
			}
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if (n.Op == token.EQL || n.Op == token.NEQ) &&
					isFloat(p, n.X) && isFloat(p, n.Y) &&
					!exactConst(p, n.X) && !exactConst(p, n.Y) {
					out = append(out, Finding{
						Pos:  p.Fset.Position(n.OpPos),
						Rule: "floateq",
						Msg: "exact " + n.Op.String() + " between floats; " +
							"compare with an epsilon, an ordering, or an exact sentinel constant",
					})
				}
			case *ast.SwitchStmt:
				if n.Tag != nil && isFloat(p, n.Tag) {
					for _, c := range n.Body.List {
						for _, e := range c.(*ast.CaseClause).List {
							if !exactConst(p, e) {
								out = append(out, Finding{
									Pos:  p.Fset.Position(e.Pos()),
									Rule: "floateq",
									Msg:  "switch case compares floats exactly; use if/else with epsilon comparisons",
								})
							}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// exactConst reports whether e is a compile-time constant whose value is
// exactly representable (an integral float such as 0, 1, or -3).
func exactConst(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	return constant.ToInt(tv.Value).Kind() == constant.Int
}

// qualifiedName renders a FuncDecl as "pkg/path.Name" or
// "pkg/path.Recv.Name" for allowlist lookup.
func qualifiedName(p *Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if st, ok := t.(*ast.StarExpr); ok {
			t = st.X
		}
		if id, ok := t.(*ast.Ident); ok {
			name = id.Name + "." + name
		}
	}
	return p.Path + "." + name
}
