package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// HarnessOnly enforces the module-wide concurrency contract: goroutines,
// channels, select, and the sync / sync·atomic packages are permitted
// only inside internal/forkjoin, the single audited fork/join harness.
// Everywhere else — the deterministic core and every other library
// package — concurrency is obtained exclusively by calling the harness,
// whose isolation contract keeps results independent of the Go
// scheduler. Ad-hoc concurrency anywhere else would let goroutine
// interleaving leak into results and destroy the bit-reproducibility the
// experiments rely on.
//
// The rule supersedes the retired core-only "nogoroutine" rule; that
// name still works as a deprecated alias in ignore directives and rule
// selections. cmd/ mains and examples/ stay out of scope — they talk to
// the real world by design.
type HarnessOnly struct{}

func (HarnessOnly) Name() string { return "harnessonly" }

func (HarnessOnly) Doc() string {
	return "forbid goroutines, channels, select, and sync outside the internal/forkjoin harness"
}

// isForkJoinPkg reports whether path is the whitelisted harness package.
// Fixtures declare the path via //linttest:path, so suffix matching keeps
// the rule independent of the module name.
func isForkJoinPkg(path string) bool {
	return path == "internal/forkjoin" || strings.HasSuffix(path, "/internal/forkjoin")
}

func (HarnessOnly) Check(p *Package) []Finding {
	if isForkJoinPkg(p.Path) || p.InCmdOrExamples() {
		return nil
	}
	var out []Finding
	flag := func(n ast.Node, what string) {
		out = append(out, Finding{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: "harnessonly",
			Msg:  what + " outside internal/forkjoin; obtain concurrency by calling the harness",
		})
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				if path, err := strconv.Unquote(n.Path.Value); err == nil {
					if path == "sync" || path == "sync/atomic" {
						flag(n, "import of "+path)
					}
				}
			case *ast.GoStmt:
				flag(n, "go statement")
			case *ast.SelectStmt:
				flag(n, "select statement")
			case *ast.SendStmt:
				flag(n, "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					flag(n, "channel receive")
				}
			case *ast.ChanType:
				flag(n, "channel type")
			case *ast.RangeStmt:
				if t := typeOf(p, n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						flag(n, "range over channel")
					}
				}
			}
			return true
		})
	}
	return out
}

// forkTaskLit returns the task-body function literal of a
// forkjoin.Do/forkjoin.Map call, or nil when call is not a fork site with
// a literal body. Generic instantiations (forkjoin.Map[T](...)) are
// unwrapped.
func forkTaskLit(p *Package, call *ast.CallExpr) *ast.FuncLit {
	fun := call.Fun
	switch f := fun.(type) {
	case *ast.IndexExpr:
		fun = f.X
	case *ast.IndexListExpr:
		fun = f.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := useOf(p, sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !isForkJoinPkg(fn.Pkg().Path()) {
		return nil
	}
	if fn.Name() != "Do" && fn.Name() != "Map" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	lit, _ := call.Args[len(call.Args)-1].(*ast.FuncLit)
	return lit
}

// forkTaskLits collects every fork-site task literal in a file, for rules
// that scope sub-checks to forked task bodies.
func forkTaskLits(p *Package, file *ast.File) []*ast.FuncLit {
	var lits []*ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit := forkTaskLit(p, call); lit != nil {
				lits = append(lits, lit)
			}
		}
		return true
	})
	return lits
}

// inAny reports whether pos falls inside one of the literals.
func inAny(lits []*ast.FuncLit, pos token.Pos) bool {
	for _, l := range lits {
		if l.Body != nil && l.Body.Pos() <= pos && pos < l.Body.End() {
			return true
		}
	}
	return false
}
