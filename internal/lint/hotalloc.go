package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// HotAlloc enforces the allocation contract of the simulation inner loops
// (DESIGN.md, "Allocation contract"). Functions annotated
//
//	//bullet:hotpath [depth=N]
//
// — and everything they statically call within the module, walked to N
// levels deep (default 3) — may not contain allocation sites. Functions
// annotated `//bullet:hotpath-ignore <reason>` are excluded from the walk
// (the escape hatch for audited, deliberately-allocating callees).
//
// Diagnosed allocation classes:
//
//   - composite literals that escape (&T{...}) and slice/map literals
//   - new(T) and make(...)
//   - append with non-provable capacity (appends to buffers resliced to
//     [:0] or made with an explicit capacity in the same function are
//     accepted — the reuse idiom)
//   - value-to-interface boxing: non-pointer-shaped values passed to
//     interface parameters (including implicit boxing at fmt/error call
//     sites), assigned to interface variables, or returned as interfaces
//   - closure captures: function literals capturing enclosing variables
//     allocate when they escape; method values allocate a closure per use
//   - string concatenation and allocating string conversions
//   - defer inside a loop
//   - map iteration (per-iteration overhead on top of the maporder rule)
//   - calls to known-allocating stdlib helpers (fmt.Sprintf, sort.Slice,
//     sort.SearchInts, strconv.Itoa, ...)
//
// Arguments of panic calls are exempt: allocation on a failing path that
// ends the process is free. Individual findings are suppressed the usual
// way with `//lint:ignore hotalloc <why>`.
//
// HotAlloc is module-aware: when driven by Run/RunAll it sees every
// loaded package at once, so the call-graph walk crosses package
// boundaries and findings land in (and are suppressed from) the file
// that owns the allocation.
type HotAlloc struct {
	mod  []*Package
	all  []Finding
	done bool
}

func (*HotAlloc) Name() string { return "hotalloc" }

func (*HotAlloc) Doc() string {
	return "flag allocation sites in //bullet:hotpath functions and their module-local callees"
}

// SetModule hands the analyzer the full package set before per-package
// Check calls; RunAll invokes it via the ModuleAware hook.
func (h *HotAlloc) SetModule(pkgs []*Package) {
	h.mod = pkgs
	h.all = nil
	h.done = false
}

func (h *HotAlloc) Check(p *Package) []Finding {
	inMod := false
	for _, q := range h.mod {
		if q == p {
			inMod = true
			break
		}
	}
	if !inMod {
		// Standalone use (fixture harnesses call Check directly): the
		// walk is confined to this one package.
		return filterToPackage(hotallocRun([]*Package{p}), p)
	}
	if !h.done {
		h.all = hotallocRun(h.mod)
		h.done = true
	}
	return filterToPackage(h.all, p)
}

// filterToPackage keeps findings positioned in one of p's files, so each
// finding is reported (and suppressible) exactly once, by its home package.
func filterToPackage(fs []Finding, p *Package) []Finding {
	names := map[string]bool{}
	for _, f := range p.Files {
		names[p.Fset.Position(f.Pos()).Filename] = true
	}
	var out []Finding
	for _, f := range fs {
		if names[f.Pos.Filename] {
			out = append(out, f)
		}
	}
	return out
}

const (
	hotpathDirective       = "//bullet:hotpath"
	hotpathIgnoreDirective = "//bullet:hotpath-ignore"
	hotpathDefaultDepth    = 3
)

// funcNode is one declared function in the module-wide registry.
type funcNode struct {
	p       *Package
	decl    *ast.FuncDecl
	obj     *types.Func
	hot     bool // //bullet:hotpath root
	depth   int  // walk depth for a root
	ignored bool // //bullet:hotpath-ignore
}

// hotallocRun builds the function registry over pkgs, then walks the call
// graph from every //bullet:hotpath root collecting allocation findings.
func hotallocRun(pkgs []*Package) []Finding {
	reg := map[string]*funcNode{}
	var roots []*funcNode
	var out []Finding
	for _, p := range pkgs {
		for _, file := range p.Files {
			for _, d := range file.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, _ := p.Info.Defs[fn.Name].(*types.Func)
				if obj == nil {
					continue
				}
				node := &funcNode{p: p, decl: fn, obj: obj, depth: hotpathDefaultDepth}
				out = append(out, parseHotpathDirectives(p, fn, node)...)
				reg[obj.FullName()] = node
				if node.hot {
					roots = append(roots, node)
				}
			}
		}
	}
	seen := map[string]bool{}   // finding dedupe across roots
	checked := map[string]int{} // func key -> deepest remaining budget already walked
	for _, root := range roots {
		walkHot(reg, root, root.displayName(), root.depth, checked, seen, &out)
	}
	return out
}

// displayName is the function's qualified name with the module prefix
// trimmed, e.g. "(internal/sim.*Simulation).Step".
func (n *funcNode) displayName() string {
	name := n.obj.FullName()
	return strings.ReplaceAll(name, n.p.Module+"/", "")
}

// parseHotpathDirectives reads //bullet:hotpath[-ignore] directives off a
// function's doc comment into node, reporting malformed ones.
func parseHotpathDirectives(p *Package, fn *ast.FuncDecl, node *funcNode) []Finding {
	if fn.Doc == nil {
		return nil
	}
	var out []Finding
	for _, c := range fn.Doc.List {
		switch {
		case strings.HasPrefix(c.Text, hotpathIgnoreDirective):
			node.ignored = true
			if strings.TrimSpace(strings.TrimPrefix(c.Text, hotpathIgnoreDirective)) == "" {
				out = append(out, Finding{
					Pos:  p.Fset.Position(c.Pos()),
					Rule: "hotalloc",
					Msg:  "//bullet:hotpath-ignore requires a reason: \"//bullet:hotpath-ignore <why>\"",
				})
			}
		case strings.HasPrefix(c.Text, hotpathDirective):
			node.hot = true
			for _, opt := range strings.Fields(strings.TrimPrefix(c.Text, hotpathDirective)) {
				if v, ok := strings.CutPrefix(opt, "depth="); ok {
					d, err := strconv.Atoi(v)
					if err == nil && d >= 0 {
						node.depth = d
						continue
					}
				}
				out = append(out, Finding{
					Pos:  p.Fset.Position(c.Pos()),
					Rule: "hotalloc",
					Msg:  fmt.Sprintf("malformed //bullet:hotpath option %q: want depth=<n>", opt),
				})
			}
		}
	}
	return out
}

// walkHot checks one function and recurses into its module-local callees
// while budget allows. checked memoizes the deepest budget each function
// was already walked with so diamond call graphs stay linear.
func walkHot(reg map[string]*funcNode, n *funcNode, root string, budget int, checked map[string]int, seen map[string]bool, out *[]Finding) {
	key := n.obj.FullName()
	if prev, ok := checked[key]; ok && prev >= budget {
		return
	}
	checked[key] = budget
	callees := checkHotFunc(n.p, n.decl, root, seen, out)
	if budget == 0 {
		return
	}
	for _, ck := range callees {
		c := reg[ck]
		if c == nil || c.ignored {
			continue
		}
		walkHot(reg, c, root, budget-1, checked, seen, out)
	}
}

// posRange is a half-open source span.
type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return p >= r.lo && p < r.hi }

func inRanges(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.contains(p) {
			return true
		}
	}
	return false
}

// checkHotFunc reports allocation sites in one function body and returns
// the FullName keys of its statically-resolved module-local callees.
func checkHotFunc(p *Package, fn *ast.FuncDecl, root string, seen map[string]bool, out *[]Finding) []string {
	var callees []string
	body := fn.Body

	// Pass A: call positions (for method-value detection), panic-argument
	// spans (exempt — allocation on a dying path is free), loop body spans
	// (for defer-in-loop), and capacity-provable append targets.
	callFuns := map[ast.Expr]bool{}
	var panicArgs, loops []posRange
	type litSig struct {
		span posRange
		sig  *types.Signature
	}
	var litSigs []litSig
	safeCaps := map[types.Object]bool{}
	// Slice-typed parameters carry the caller's capacity contract: the
	// append-into-scratch builder pattern (`dst = append(dst, ...)` with
	// the caller passing `buf[:0]`) is how hot paths avoid allocating,
	// so the growth risk is attributed to the call site, not the builder.
	if fn.Type.Params != nil {
		for _, field := range fn.Type.Params.List {
			for _, name := range field.Names {
				obj := p.Info.ObjectOf(name)
				if obj == nil {
					continue
				}
				if _, ok := obj.Type().Underlying().(*types.Slice); ok {
					safeCaps[obj] = true
				}
			}
		}
	}
	ast.Inspect(body, func(node ast.Node) bool {
		switch n := node.(type) {
		case *ast.FuncLit:
			if s, ok := typeOf(p, n).(*types.Signature); ok {
				litSigs = append(litSigs, litSig{posRange{n.Pos(), n.End()}, s})
			}
		case *ast.CallExpr:
			callFuns[n.Fun] = true
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, isB := p.Info.Uses[id].(*types.Builtin); isB {
					for _, a := range n.Args {
						panicArgs = append(panicArgs, posRange{a.Pos(), a.End()})
					}
				}
			}
		case *ast.ForStmt:
			loops = append(loops, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, posRange{n.Body.Pos(), n.Body.End()})
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if obj := assignTarget(p, lhs); obj != nil && capacityProvable(p, n.Rhs[i]) {
					safeCaps[obj] = true
				}
			}
		}
		return true
	})

	report := func(pos token.Pos, desc string) {
		position := p.Fset.Position(pos)
		key := fmt.Sprintf("%s:%d:%d:%s", position.Filename, position.Line, position.Column, desc)
		if seen[key] {
			return
		}
		seen[key] = true
		*out = append(*out, Finding{
			Pos:  position,
			Rule: "hotalloc",
			Msg:  fmt.Sprintf("%s (in hot path rooted at %s)", desc, root),
		})
	}

	// Pass B: the allocation checks.
	handledLits := map[*ast.CompositeLit]bool{}
	sig, _ := typeOf(p, fn.Name).(*types.Signature)
	ast.Inspect(body, func(node ast.Node) bool {
		if node == nil {
			return false
		}
		if inRanges(panicArgs, node.Pos()) {
			return false
		}
		switch n := node.(type) {
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
				handledLits[lit] = true
				report(n.Pos(), "escaping composite literal &"+typeDesc(p, lit)+"{...} allocates; pool or reuse the struct")
			}
		case *ast.CompositeLit:
			if handledLits[n] {
				return true
			}
			switch typeOf(p, n).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates its backing array; preallocate or reuse a buffer")
			case *types.Map:
				report(n.Pos(), "map literal allocates; preallocate or reuse the map")
			}
		case *ast.CallExpr:
			callees = append(callees, checkHotCall(p, n, safeCaps, report)...)
		case *ast.FuncLit:
			if !callFuns[node.(ast.Expr)] {
				if capture := capturedVar(p, fn, n); capture != "" {
					report(n.Pos(), "closure captures "+capture+" by reference and allocates when it escapes; hoist it to a cached field or pass state explicitly")
				}
			}
		case *ast.SelectorExpr:
			if sel, ok := p.Info.Selections[n]; ok && sel.Kind() == types.MethodVal && !callFuns[node.(ast.Expr)] {
				report(n.Pos(), "method value "+n.Sel.Name+" allocates a closure per use; cache it once at construction")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(p, n) && !isConstExpr(p, n) {
				report(n.Pos(), "string concatenation allocates; use a preallocated []byte or strings.Builder outside the hot path")
			}
		case *ast.DeferStmt:
			if inRanges(loops, n.Pos()) {
				report(n.Pos(), "defer inside a loop heap-allocates its frame each iteration; restructure the loop body")
			}
		case *ast.RangeStmt:
			if isMapType(p, n.X) {
				report(n.Pos(), "map iteration in a hot path: per-iteration overhead and randomized order; iterate a sorted slice instead")
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) || len(n.Lhs) != len(n.Rhs) {
					break
				}
				if boxes(p, typeOf(p, lhs), n.Rhs[i]) {
					report(n.Rhs[i].Pos(), boxDesc(p, n.Rhs[i], "assigned to interface"))
				}
			}
		case *ast.ReturnStmt:
			// Resolve against the innermost enclosing function literal's
			// signature; a return inside a closure is not the outer return.
			rsig := sig
			for _, ls := range litSigs {
				if ls.span.contains(n.Pos()) {
					rsig = ls.sig
				}
			}
			if rsig != nil && rsig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					if boxes(p, rsig.Results().At(i).Type(), res) {
						report(res.Pos(), boxDesc(p, res, "returned as interface"))
					}
				}
			}
		}
		return true
	})
	return callees
}

// checkHotCall handles one call expression: builtin allocators, allocating
// conversions, interface boxing at the call boundary, known-allocating
// stdlib helpers — and returns module-local callees for the walk.
func checkHotCall(p *Package, call *ast.CallExpr, safeCaps map[types.Object]bool, report func(token.Pos, string)) []string {
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := p.Info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "new":
				report(call.Pos(), "new(T) allocates; pool or reuse the value")
			case "make":
				report(call.Pos(), "make allocates; hoist the buffer out of the hot path and reslice it")
			case "append":
				if len(call.Args) > 0 && !appendCapacityOK(p, call.Args[0], safeCaps) {
					report(call.Pos(), "append with non-provable capacity may grow; reslice a reused buffer to [:0] or make it with explicit capacity")
				}
			}
			return nil
		}
	}
	// Conversions.
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if boxes(p, tv.Type, call.Args[0]) {
			report(call.Args[0].Pos(), boxDesc(p, call.Args[0], "converted to interface"))
		} else if convAllocates(p, tv.Type, call.Args[0]) {
			report(call.Pos(), "conversion "+types.TypeString(tv.Type, types.RelativeTo(p.Types))+"(...) copies and allocates")
		}
		return nil
	}
	// Interface boxing against the callee signature.
	if csig, ok := typeOf(p, call.Fun).(*types.Signature); ok {
		params := csig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case csig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			}
			if boxes(p, pt, arg) {
				report(arg.Pos(), boxDesc(p, arg, "boxed into interface argument"))
			}
		}
	}
	obj, _ := useOf(p, call.Fun).(*types.Func)
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	qname := obj.Pkg().Path() + "." + obj.Name()
	if why, known := hotAllocators[qname]; known {
		report(call.Pos(), qname+" "+why)
		return nil
	}
	if path := obj.Pkg().Path(); path == p.Module || strings.HasPrefix(path, p.Module+"/") {
		return []string{obj.FullName()}
	}
	return nil
}

// hotAllocators maps known-allocating stdlib helpers to the reason they
// are banned from hot paths.
var hotAllocators = map[string]string{
	"fmt.Sprintf":  "allocates its result string and boxes every operand",
	"fmt.Sprint":   "allocates its result string and boxes every operand",
	"fmt.Sprintln": "allocates its result string and boxes every operand",
	"fmt.Errorf":   "allocates the error and boxes every operand",
	"errors.New":   "allocates the error value",

	"strconv.Itoa":        "allocates its result string; use strconv.AppendInt into a reused buffer",
	"strconv.FormatInt":   "allocates its result string; use strconv.AppendInt into a reused buffer",
	"strconv.FormatUint":  "allocates its result string; use strconv.AppendUint into a reused buffer",
	"strconv.FormatFloat": "allocates its result string; use strconv.AppendFloat into a reused buffer",
	"strconv.Quote":       "allocates its result string; use strconv.AppendQuote into a reused buffer",

	"strings.Join":       "allocates a new string",
	"strings.Repeat":     "allocates a new string",
	"strings.Split":      "allocates the result slice and strings",
	"strings.Fields":     "allocates the result slice and strings",
	"strings.Replace":    "allocates a new string",
	"strings.ReplaceAll": "allocates a new string",
	"strings.ToUpper":    "allocates a new string",
	"strings.ToLower":    "allocates a new string",

	"sort.Slice":       "allocates a reflect-based swapper and boxes the slice; use a typed sort or slices.SortFunc with a top-level comparator",
	"sort.SliceStable": "allocates a reflect-based swapper and boxes the slice; use a typed stable sort",
	"sort.Sort":        "boxes its argument into sort.Interface; use a typed sort",
	"sort.Stable":      "boxes its argument into sort.Interface; use a typed stable sort",

	"sort.Search":         "takes a closure; hand-roll the binary search in the hot path",
	"sort.SearchInts":     "allocates a closure per call; hand-roll the binary search",
	"sort.SearchFloat64s": "allocates a closure per call; hand-roll the binary search",
	"sort.SearchStrings":  "allocates a closure per call; hand-roll the binary search",
}

// assignTarget resolves an assignment LHS (identifier or field selector)
// to its object, for capacity tracking.
func assignTarget(p *Package, lhs ast.Expr) types.Object {
	switch e := lhs.(type) {
	case *ast.Ident:
		return p.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		return p.Info.ObjectOf(e.Sel)
	}
	return nil
}

// capacityProvable reports whether rhs yields a slice whose capacity the
// author demonstrably manages: a reslice to [:0] (buffer reuse) or a make
// with an explicit capacity argument.
func capacityProvable(p *Package, rhs ast.Expr) bool {
	switch e := rhs.(type) {
	case *ast.SliceExpr:
		return isZeroLit(e.High) && e.Low == nil
	case *ast.CallExpr:
		if isBuiltin(p, e.Fun, "make") {
			return len(e.Args) >= 3
		}
		if isBuiltin(p, e.Fun, "append") && len(e.Args) > 0 {
			if se, ok := e.Args[0].(*ast.SliceExpr); ok {
				return isZeroLit(se.High) && se.Low == nil
			}
		}
	}
	return false
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// appendCapacityOK reports whether an append's base slice has provable
// capacity: an inline x[:0] reslice, or a variable/field the function
// resliced to [:0] (or made with explicit capacity) somewhere.
func appendCapacityOK(p *Package, base ast.Expr, safeCaps map[types.Object]bool) bool {
	if se, ok := base.(*ast.SliceExpr); ok {
		return isZeroLit(se.High) && se.Low == nil
	}
	if obj := assignTarget(p, base); obj != nil {
		return safeCaps[obj]
	}
	return false
}

// convAllocates reports whether the conversion T(arg) allocates: string
// <-> []byte/[]rune and numeric -> string conversions do.
func convAllocates(p *Package, dst types.Type, arg ast.Expr) bool {
	if isConstExpr(p, arg) {
		return false
	}
	src := typeOf(p, arg)
	if src == nil {
		return false
	}
	dstU, srcU := dst.Underlying(), src.Underlying()
	dstStr := isBasicString(dstU)
	srcStr := isBasicString(srcU)
	switch {
	case dstStr && srcStr:
		return false
	case dstStr:
		// []byte/[]rune/int -> string
		if _, ok := srcU.(*types.Slice); ok {
			return true
		}
		if b, ok := srcU.(*types.Basic); ok && b.Info()&(types.IsInteger|types.IsUnsigned) != 0 {
			return true
		}
	case srcStr:
		// string -> []byte/[]rune
		if _, ok := dstU.(*types.Slice); ok {
			return true
		}
	}
	return false
}

func isBasicString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isString(p *Package, e ast.Expr) bool {
	t := typeOf(p, e)
	return t != nil && isBasicString(t.Underlying())
}

func isConstExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

// boxes reports whether assigning src to a destination of type dst
// converts a non-pointer-shaped value into an interface — a heap
// allocation at runtime. Pointer-shaped values (pointers, maps, chans,
// funcs, existing interfaces, nil) convert allocation-free.
func boxes(p *Package, dst types.Type, src ast.Expr) bool {
	if dst == nil {
		return false
	}
	// A type parameter's underlying type is its constraint interface,
	// but converting to one instantiates a concrete type — no boxing.
	if _, ok := dst.(*types.TypeParam); ok {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	// Constants convert to interfaces via compile-time static data.
	if isConstExpr(p, src) {
		return false
	}
	t := typeOf(p, src)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return false
	case *types.Basic:
		if u.Kind() == types.UntypedNil || u.Kind() == types.UnsafePointer || u.Kind() == types.Invalid {
			return false
		}
	}
	return true
}

func boxDesc(p *Package, e ast.Expr, how string) string {
	t := typeOf(p, e)
	name := "value"
	if t != nil {
		name = types.TypeString(t, types.RelativeTo(p.Types))
	}
	return "value of type " + name + " " + how + "; interface boxing heap-allocates — pass a pointer or devirtualize the call"
}

// typeDesc names a composite literal's type compactly.
func typeDesc(p *Package, lit *ast.CompositeLit) string {
	t := typeOf(p, lit)
	if t == nil {
		return "T"
	}
	return types.TypeString(t, types.RelativeTo(p.Types))
}

// capturedVar returns the name of one variable the literal captures from
// its enclosing function, or "" when it captures nothing (a capture-free
// literal is a static closure the compiler does not allocate per use).
func capturedVar(p *Package, enclosing *ast.FuncDecl, lit *ast.FuncLit) string {
	span := posRange{enclosing.Pos(), enclosing.End()}
	inner := posRange{lit.Pos(), lit.End()}
	name := ""
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if span.contains(v.Pos()) && !inner.contains(v.Pos()) {
			name = v.Name()
		}
		return true
	})
	return name
}
