// Package lint is bulletlint's analysis engine: a stdlib-only static
// analyzer (go/parser + go/types, no external dependencies) that enforces
// the determinism contract of the simulation core (see DESIGN.md,
// "Determinism contract").
//
// The entire band-2 reproduction argument rests on gpusim/sim/sched being
// a deterministic discrete-event simulation: the same trace and seed must
// produce bit-identical figures and tables on every run. The analyzers in
// this package machine-check the properties that argument depends on:
//
//   - nodeterm:    no wall-clock time, global math/rand, or environment
//     reads inside internal packages (simulated time comes from sim.Clock);
//     inside forkjoin task bodies the checks apply everywhere and map
//     iteration is banned outright
//   - maporder:    no map iteration whose order can leak into results
//   - harnessonly: goroutines, channels, select, and sync are permitted
//     only inside the audited internal/forkjoin harness (supersedes the
//     retired core-only "nogoroutine" rule, whose name survives as an
//     alias in directives and rule selections)
//   - replicaisolation: forkjoin task bodies own only state they created
//     and their root[i] task-index slot; writes to captured or
//     package-level state are findings
//   - mergeorder:  fork/join results are consumed index-addressed, never
//     in completion order (no appends to shared slices, no result
//     channels, no channel drains at the join)
//   - floateq:     no exact ==/!= between computed floats
//   - panicmsg:    panics and log.Fatal exits must carry a formatted,
//     contextual message
//   - unitsafe:    physical quantities stay inside their internal/units
//     types — no unit-mixing conversions, no laundering through bare
//     float64, no raw literals fed to unit-typed parameters, no
//     dimensionally unsound unit*unit arithmetic
//   - hotalloc:    functions annotated //bullet:hotpath (and their
//     module-local static callees, to an annotation-controlled depth)
//     contain no allocation sites: escaping composite literals, new/make,
//     unprovable appends, interface boxing, closure captures, string
//     building, defer-in-loop, map iteration
//
// Findings can be suppressed per line with a directive comment:
//
//	//lint:ignore <rule> <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	// Suppressed marks a finding matched by a //lint:ignore directive.
	// Run drops suppressed findings; RunAll returns them flagged so
	// drivers (bulletlint -json) can surface what the ignores hide.
	Suppressed bool
}

// String formats the finding in the canonical "file:line: [rule] message"
// shape the driver prints and the fixture harness asserts against.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Package is one type-checked package handed to analyzers.
type Package struct {
	// Path is the full import path (e.g. "repro/internal/sched").
	Path string
	// Module is the module path from go.mod (e.g. "repro"). Fixture
	// harnesses set it explicitly so path-scoped rules behave as they
	// would on the real tree.
	Module string
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
}

// Rel returns the package path relative to the module root ("" for the
// root package, "internal/sched" for repro/internal/sched). Packages from
// other modules return their full path unchanged.
func (p *Package) Rel() string {
	if p.Path == p.Module {
		return ""
	}
	if rest, ok := strings.CutPrefix(p.Path, p.Module+"/"); ok {
		return rest
	}
	return p.Path
}

// InInternal reports whether the package sits under the module's
// internal/ tree — the scope of the nodeterm and maporder rules.
func (p *Package) InInternal() bool {
	rel := p.Rel()
	return rel == "internal" || strings.HasPrefix(rel, "internal/")
}

// corePackages is the deterministic simulation core: DESIGN.md specifies
// these as a single-threaded actor model driven solely by sim events, so
// the nogoroutine rule bans all concurrency constructs inside them.
var corePackages = map[string]bool{
	"internal/sim":        true,
	"internal/gpusim":     true,
	"internal/sched":      true,
	"internal/engine":     true,
	"internal/resource":   true,
	"internal/estimator":  true,
	"internal/kvcache":    true,
	"internal/smmask":     true,
	"internal/faults":     true,
	"internal/timeline":   true,
	"internal/pressure":   true,
	"internal/qos":        true,
	"internal/calib":      true,
	"internal/resilience": true,
}

// InCore reports whether the package is part of the deterministic
// simulation core.
func (p *Package) InCore() bool { return corePackages[p.Rel()] }

// InCmdOrExamples reports whether the package is a command or example
// main — exempt from the simulation-core rules (they may talk to the real
// world) but still subject to panicmsg.
func (p *Package) InCmdOrExamples() bool {
	rel := p.Rel()
	return strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/")
}

// Analyzer is one self-contained rule.
type Analyzer interface {
	// Name is the rule identifier used in findings and ignore directives.
	Name() string
	// Doc is a one-line description for -help output.
	Doc() string
	// Check inspects one package and returns its findings.
	Check(p *Package) []Finding
}

// DefaultAnalyzers returns the full rule suite in reporting order.
func DefaultAnalyzers() []Analyzer {
	return []Analyzer{
		NoDeterm{},
		MapOrder{},
		HarnessOnly{},
		ReplicaIsolation{},
		MergeOrder{},
		FloatEq{},
		PanicMsg{},
		UnitSafe{},
		&HotAlloc{},
	}
}

// ModuleAware analyzers receive the full package set before per-package
// Check calls — the hook cross-package analyses (hotalloc's call-graph
// walk) use to see callee bodies in other packages.
type ModuleAware interface {
	SetModule(pkgs []*Package)
}

// RuleAliases maps retired rule names to their successors. Directives
// and rule selections written against the old name keep working: an
// alias suppresses (or selects) its successor's findings.
var RuleAliases = map[string]string{
	// nogoroutine banned concurrency in the simulation core only; it was
	// subsumed by the module-wide harnessonly contract.
	"nogoroutine": "harnessonly",
}

// Run applies every analyzer to every package, drops findings suppressed
// by //lint:ignore directives, and returns the rest sorted by position.
// Malformed directives are reported as rule "ignore" findings.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	var out []Finding
	for _, f := range RunAll(pkgs, analyzers) {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// RunAll is Run without the suppression filter: findings matched by a
// //lint:ignore directive come back with Suppressed set instead of being
// dropped, still sorted by position.
func RunAll(pkgs []*Package, analyzers []Analyzer) []Finding {
	var all []Finding
	for _, a := range analyzers {
		if ma, ok := a.(ModuleAware); ok {
			ma.SetModule(pkgs)
		}
	}
	for _, p := range pkgs {
		ignores, bad := collectIgnores(p)
		all = append(all, bad...)
		for _, a := range analyzers {
			for _, f := range a.Check(p) {
				f.Suppressed = ignores.suppresses(f)
				all = append(all, f)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return all
}

// ignoreSet maps file -> line -> set of suppressed rules. A directive on
// line N suppresses findings of its rule on lines N and N+1, so it can sit
// either on the offending line or immediately above it.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) suppresses(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, ln := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		if rules := lines[ln]; rules != nil && (rules[f.Rule] || rules["all"]) {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore"

// collectIgnores scans a package's comments for //lint:ignore directives.
// Well-formed directives ("//lint:ignore rule reason", rules may be
// comma-separated, "all" matches every rule) populate the returned set;
// malformed ones (missing rule or reason) come back as findings so they
// cannot silently suppress nothing.
func collectIgnores(p *Package) (ignoreSet, []Finding) {
	set := ignoreSet{}
	var bad []Finding
	for _, file := range p.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:  pos,
						Rule: "ignore",
						Msg:  "malformed //lint:ignore directive: want \"//lint:ignore <rule> <reason>\"",
					})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				rules := lines[pos.Line]
				if rules == nil {
					rules = map[string]bool{}
					lines[pos.Line] = rules
				}
				for _, r := range strings.Split(fields[0], ",") {
					rules[r] = true
					if canon, ok := RuleAliases[r]; ok {
						rules[canon] = true
					}
				}
			}
		}
	}
	return set, bad
}

// typeOf is a nil-tolerant Info.TypeOf.
func typeOf(p *Package, e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// isMapType reports whether e's type (after named-type resolution) is a
// map.
func isMapType(p *Package, e ast.Expr) bool {
	t := typeOf(p, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloat reports whether e's type is a floating-point basic type.
func isFloat(p *Package, e ast.Expr) bool {
	t := typeOf(p, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isInteger reports whether e's type is an integer basic type.
func isInteger(p *Package, e ast.Expr) bool {
	t := typeOf(p, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// useOf resolves a selector or identifier to the object it denotes.
func useOf(p *Package, e ast.Expr) types.Object {
	if p.Info == nil {
		return nil
	}
	switch e := e.(type) {
	case *ast.Ident:
		return p.Info.Uses[e]
	case *ast.SelectorExpr:
		return p.Info.Uses[e.Sel]
	}
	return nil
}

// pkgFunc reports whether obj is the package-scope function pkgPath.name.
func pkgFunc(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		fn.Pkg().Scope().Lookup(name) == obj
}
