package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Shared across fixture tests so the source importer's type-checking of
// the standard library is paid once.
var (
	fixtureFset = token.NewFileSet()
	fixtureStd  = importer.ForCompiler(fixtureFset, "source", nil)
	fixtureImp  = &fixtureImporter{std: fixtureStd}
)

// fixtureLocalDirs maps module-local import paths fixtures may use to
// the sibling source directories they type-check from. The stdlib source
// importer cannot see module-local packages, so the fixture importer
// loads these itself; everything else falls through to the standard
// importer. Fixtures can then `import "repro/internal/units"` or
// `import "repro/internal/forkjoin"` like real tree code.
var fixtureLocalDirs = map[string]string{
	"repro/internal/units":    filepath.Join("..", "units"),
	"repro/internal/forkjoin": filepath.Join("..", "forkjoin"),
}

type fixtureImporter struct {
	std  types.Importer
	pkgs map[string]*types.Package
	errs map[string]error
}

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	dir, local := fixtureLocalDirs[path]
	if !local {
		return im.std.Import(path)
	}
	if im.pkgs == nil {
		im.pkgs = map[string]*types.Package{}
		im.errs = map[string]error{}
	}
	if pkg, done := im.pkgs[path]; done {
		return pkg, im.errs[path]
	}
	pkg, err := im.loadLocal(path, dir)
	im.pkgs[path], im.errs[path] = pkg, err
	return pkg, err
}

func (im *fixtureImporter) loadLocal(path, dir string) (*types.Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fixtureFset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: im}
	return conf.Check(path, fixtureFset, files, nil)
}

// loadFixture parses and type-checks one standalone fixture file. The
// fixture's assumed import path comes from a first-line
// "//linttest:path <path>" directive (default repro/internal/fixture),
// so path-scoped rules see the fixture as if it lived on the real tree.
func loadFixture(t *testing.T, file string) *Package {
	t.Helper()
	return loadFixtureSource(t, file, nil)
}

// loadFixtureSource is loadFixture for in-memory sources (src non-nil),
// used by table-driven tests that synthesize one function per case.
func loadFixtureSource(t *testing.T, file string, src any) *Package {
	t.Helper()
	f, err := parser.ParseFile(fixtureFset, file, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	path := "repro/internal/fixture"
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, "//linttest:path"); ok {
				path = strings.TrimSpace(rest)
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: fixtureImp}
	tpkg, err := conf.Check(path, fixtureFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", file, err)
	}
	return &Package{
		Path:   path,
		Module: "repro",
		Fset:   fixtureFset,
		Files:  []*ast.File{f},
		Types:  tpkg,
		Info:   info,
	}
}

// expectation is one "// want rule[@offset]" marker resolved to a line.
type expectation struct {
	line int
	rule string
}

func wantedFindings(t *testing.T, p *Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, tok := range strings.Fields(rest) {
					rule, offs, hasOff := strings.Cut(tok, "@")
					exp := expectation{line: line, rule: rule}
					if hasOff {
						d, err := strconv.Atoi(offs)
						if err != nil {
							t.Fatalf("bad want offset %q", tok)
						}
						exp.line += d
					}
					out = append(out, exp)
				}
			}
		}
	}
	return out
}

func sortedExpectations(es []expectation) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = fmt.Sprintf("%d:%s", e.line, e.rule)
	}
	sort.Strings(out)
	return out
}

// runFixtureDir checks every fixture file under testdata/<rule> against
// its // want markers, running only the analyzer under test (plus the
// ignore machinery, whose findings carry rule "ignore").
func runFixtureDir(t *testing.T, a Analyzer) {
	dir := filepath.Join("testdata", a.Name())
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixtures: %v", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			p := loadFixture(t, filepath.Join(dir, e.Name()))
			findings := Run([]*Package{p}, []Analyzer{a})
			var got []expectation
			for _, f := range findings {
				got = append(got, expectation{line: f.Pos.Line, rule: f.Rule})
			}
			want := wantedFindings(t, p)
			gs, ws := sortedExpectations(got), sortedExpectations(want)
			if strings.Join(gs, " ") != strings.Join(ws, " ") {
				t.Errorf("findings mismatch\n got: %v\nwant: %v\nfull findings:", gs, ws)
				for _, f := range findings {
					t.Logf("  %s", f)
				}
			}
		})
	}
}

func TestNoDetermFixtures(t *testing.T)         { runFixtureDir(t, NoDeterm{}) }
func TestMapOrderFixtures(t *testing.T)         { runFixtureDir(t, MapOrder{}) }
func TestHarnessOnlyFixtures(t *testing.T)      { runFixtureDir(t, HarnessOnly{}) }
func TestReplicaIsolationFixtures(t *testing.T) { runFixtureDir(t, ReplicaIsolation{}) }
func TestMergeOrderFixtures(t *testing.T)       { runFixtureDir(t, MergeOrder{}) }
func TestFloatEqFixtures(t *testing.T)          { runFixtureDir(t, FloatEq{}) }
func TestPanicMsgFixtures(t *testing.T)         { runFixtureDir(t, PanicMsg{}) }
func TestUnitSafeFixtures(t *testing.T)         { runFixtureDir(t, UnitSafe{}) }
func TestHotAllocFixtures(t *testing.T)         { runFixtureDir(t, &HotAlloc{}) }

// TestUnitSafeTable drives the unitsafe analyzer over synthesized
// single-function packages, one rule shape per case. The first case is
// the canonical mixing bug the rule exists for: a token count silently
// relabelled as seconds.
func TestUnitSafeTable(t *testing.T) {
	cases := []struct {
		name string
		body string
		want int // unitsafe findings
	}{
		{"seconds-plus-tokens", `func f(s units.Seconds, n units.Tokens) units.Seconds { return s + units.Seconds(n) }`, 1},
		{"tokens-from-seconds", `func f(s units.Seconds) units.Tokens { return units.Tokens(s) }`, 1},
		{"bytes-from-flops", `func f(w units.FLOPs) units.Bytes { return units.Bytes(w) }`, 1},
		{"launder-float64", `func f(s units.Seconds) float64 { return float64(s) }`, 1},
		{"launder-int", `func f(n units.Tokens) int { return int(n) }`, 1},
		{"float-escape-ok", `func f(s units.Seconds) float64 { return s.Float() }`, 0},
		{"ratio-ok", `func f(a, b units.Seconds) float64 { return units.Ratio(a, b) }`, 0},
		{"div-unit-by-unit", `func f(a, b units.Seconds) units.Seconds { return a / b }`, 1},
		{"mul-unit-by-unit", `func f(a, b units.Seconds) units.Seconds { return a * b }`, 1},
		{"scale-by-const-ok", `func f(a units.Seconds) units.Seconds { return a * 2 }`, 0},
		{"div-by-const-ok", `func f(a units.Seconds) units.Seconds { return a / 4 }`, 0},
		{"raw-literal-arg", "func g(d units.Seconds) units.Seconds { return d }\nfunc f() units.Seconds { return g(0.25) }", 1},
		{"negative-literal-arg", "func g(d units.Seconds) units.Seconds { return d }\nfunc f() units.Seconds { return g(-3) }", 1},
		{"zero-literal-ok", "func g(d units.Seconds) units.Seconds { return d }\nfunc f() units.Seconds { return g(0) }", 0},
		{"constructed-arg-ok", "func g(d units.Seconds) units.Seconds { return d }\nfunc f() units.Seconds { return g(units.Seconds(0.25)) }", 0},
		{"named-const-arg-ok", "const warmup = 0.25\nfunc g(d units.Seconds) units.Seconds { return d }\nfunc f() units.Seconds { return g(warmup) }", 0},
		{"same-type-conversion-ok", `func f(s units.Seconds) units.Seconds { return units.Seconds(s) }`, 0},
		{"construct-from-float-ok", `func f(x float64) units.Seconds { return units.Seconds(x) }`, 0},
		{"append-literal-to-unit-slice", `func f(xs []units.Seconds) []units.Seconds { return append(xs, 0.2) }`, 1},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := "package fixture\n\nimport \"repro/internal/units\"\n\n" + c.body + "\n"
			p := loadFixtureSource(t, fmt.Sprintf("unitsafe_table_%d.go", i), src)
			got := UnitSafe{}.Check(p)
			if len(got) != c.want {
				t.Errorf("%d findings, want %d", len(got), c.want)
				for _, f := range got {
					t.Logf("  %s", f)
				}
			}
		})
	}
}

// TestUnitSafeSkipsUnitsPackage pins the one scope exemption: the units
// package itself may look underneath its types.
func TestUnitSafeSkipsUnitsPackage(t *testing.T) {
	src := "//linttest:path repro/internal/units\npackage units\n\n" +
		"type Seconds float64\n" +
		"func (s Seconds) Float() float64 { return float64(s) }\n"
	p := loadFixtureSource(t, "unitsafe_selfscope.go", src)
	if got := (UnitSafe{}).Check(p); len(got) != 0 {
		t.Errorf("%d findings inside internal/units, want 0: %v", len(got), got)
	}
}

// TestSuppressionPerRule drives every analyzer through one minimal
// violation twice: bare (the rule must fire) and with a //lint:ignore
// directive on the line above (the finding must come back Suppressed and
// be dropped by Run). The last case pins the deprecated-alias contract:
// an ignore written against the retired "nogoroutine" name suppresses
// harnessonly findings.
func TestSuppressionPerRule(t *testing.T) {
	cases := []struct {
		rule     string // rule expected to fire
		ignoreAs string // rule name written in the directive
		src      string
	}{
		{"nodeterm", "nodeterm", `package fixture

import "time"

func f() int64 {
	return time.Now().UnixNano()
}
`},
		{"maporder", "maporder", `package fixture

func f(m map[string]float64) float64 {
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s
}
`},
		{"harnessonly", "harnessonly", `package fixture

func f(fn func()) {
	go fn()
}
`},
		{"replicaisolation", "replicaisolation", `package fixture

import "repro/internal/forkjoin"

var total int

func f(n int) {
	forkjoin.Do(n, 0, func(i int) {
		total++
	})
}
`},
		{"mergeorder", "mergeorder", `package fixture

import "repro/internal/forkjoin"

func f(items []int) []int {
	var results []int
	forkjoin.Do(len(items), 0, func(i int) {
		results = append(results, items[i])
	})
	return results
}
`},
		{"floateq", "floateq", `package fixture

func f(a, b float64) bool {
	return a == b
}
`},
		{"panicmsg", "panicmsg", `package fixture

func f() {
	panic("unreachable")
}
`},
		{"unitsafe", "unitsafe", `package fixture

import "repro/internal/units"

func f(s units.Seconds, n units.Tokens) units.Seconds {
	return s + units.Seconds(n)
}
`},
		{"hotalloc", "hotalloc", `package fixture

//bullet:hotpath
func f(n int) []int {
	out := []int{}
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
`},
		{"harnessonly", "nogoroutine", `package fixture

func f(fn func()) {
	go fn()
}
`},
	}
	countRule := func(fs []Finding, rule string, suppressed bool) int {
		n := 0
		for _, f := range fs {
			if f.Rule == rule && f.Suppressed == suppressed {
				n++
			}
		}
		return n
	}
	for i, c := range cases {
		t.Run(fmt.Sprintf("%s-as-%s", c.rule, c.ignoreAs), func(t *testing.T) {
			bare := loadFixtureSource(t, fmt.Sprintf("suppress_bare_%d.go", i), c.src)
			fired := countRule(Run([]*Package{bare}, DefaultAnalyzers()), c.rule, false)
			if fired == 0 {
				t.Fatalf("bare snippet produced no %s findings", c.rule)
			}
			// Insert the directive immediately above every line the rule
			// fired on, then re-run: every finding must be suppressed.
			all := RunAll([]*Package{bare}, DefaultAnalyzers())
			lines := strings.Split(c.src, "\n")
			marked := map[int]bool{}
			for _, f := range all {
				if f.Rule == c.rule {
					marked[f.Pos.Line] = true
				}
			}
			var out []string
			for ln, text := range lines {
				if marked[ln+1] {
					indent := text[:len(text)-len(strings.TrimLeft(text, " \t"))]
					out = append(out, indent+"//lint:ignore "+c.ignoreAs+" exercising suppression")
				}
				out = append(out, text)
			}
			supp := loadFixtureSource(t, fmt.Sprintf("suppress_dir_%d.go", i), strings.Join(out, "\n"))
			after := RunAll([]*Package{supp}, DefaultAnalyzers())
			if n := countRule(after, c.rule, false); n != 0 {
				t.Fatalf("%d %s findings survived the //lint:ignore %s directive: %v", n, c.rule, c.ignoreAs, after)
			}
			if n := countRule(after, c.rule, true); n != fired {
				t.Fatalf("RunAll reports %d suppressed %s findings, want %d", n, c.rule, fired)
			}
		})
	}
}

// TestFixtureCoverage enforces the testdata contract: every analyzer has
// at least one known-bad fixture that yields findings and at least one
// known-good fixture that yields none.
func TestFixtureCoverage(t *testing.T) {
	for _, a := range DefaultAnalyzers() {
		dir := filepath.Join("testdata", a.Name())
		for _, kind := range []string{"bad.go", "good.go"} {
			p := loadFixture(t, filepath.Join(dir, kind))
			n := len(a.Check(p))
			if kind == "bad.go" && n < 2 {
				t.Errorf("%s/bad.go: %d findings, want >= 2", a.Name(), n)
			}
			if kind == "good.go" && n != 0 {
				t.Errorf("%s/good.go: %d findings, want 0", a.Name(), n)
			}
		}
	}
}

// TestRepoTreeClean is the integration gate: the analyzer suite must
// report zero findings on the repository's own source tree. This is the
// same check `go run ./cmd/bulletlint ./...` performs in CI.
func TestRepoTreeClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := LoadModule(root, nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the tree", len(pkgs))
	}
	for _, f := range Run(pkgs, DefaultAnalyzers()) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestLoaderScopes spot-checks package classification, which every
// path-scoped rule depends on.
func TestLoaderScopes(t *testing.T) {
	mk := func(path string) *Package { return &Package{Path: path, Module: "repro"} }
	cases := []struct {
		path                   string
		internal, core, cmdish bool
	}{
		{"repro", false, false, false},
		{"repro/bullet", false, false, false},
		{"repro/internal/sim", true, true, false},
		{"repro/internal/sched", true, true, false},
		{"repro/internal/faults", true, true, false},
		{"repro/internal/timeline", true, true, false},
		{"repro/internal/pressure", true, true, false},
		{"repro/internal/kvcache", true, true, false},
		{"repro/internal/qos", true, true, false},
		{"repro/internal/resilience", true, true, false},
		{"repro/internal/serving", true, false, false},
		{"repro/internal/baselines/nanoflow", true, false, false},
		{"repro/cmd/bulletlint", false, false, true},
		{"repro/examples/quickstart", false, false, true},
	}
	for _, c := range cases {
		p := mk(c.path)
		if p.InInternal() != c.internal || p.InCore() != c.core || p.InCmdOrExamples() != c.cmdish {
			t.Errorf("%s: internal=%v core=%v cmdish=%v, want %v %v %v",
				c.path, p.InInternal(), p.InCore(), p.InCmdOrExamples(),
				c.internal, c.core, c.cmdish)
		}
	}
}
