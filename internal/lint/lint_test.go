package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// Shared across fixture tests so the source importer's type-checking of
// the standard library is paid once.
var (
	fixtureFset = token.NewFileSet()
	fixtureImp  = importer.ForCompiler(fixtureFset, "source", nil)
)

// loadFixture parses and type-checks one standalone fixture file. The
// fixture's assumed import path comes from a first-line
// "//linttest:path <path>" directive (default repro/internal/fixture),
// so path-scoped rules see the fixture as if it lived on the real tree.
func loadFixture(t *testing.T, file string) *Package {
	t.Helper()
	f, err := parser.ParseFile(fixtureFset, file, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	path := "repro/internal/fixture"
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if rest, ok := strings.CutPrefix(c.Text, "//linttest:path"); ok {
				path = strings.TrimSpace(rest)
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: fixtureImp}
	tpkg, err := conf.Check(path, fixtureFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", file, err)
	}
	return &Package{
		Path:   path,
		Module: "repro",
		Fset:   fixtureFset,
		Files:  []*ast.File{f},
		Types:  tpkg,
		Info:   info,
	}
}

// expectation is one "// want rule[@offset]" marker resolved to a line.
type expectation struct {
	line int
	rule string
}

func wantedFindings(t *testing.T, p *Package) []expectation {
	t.Helper()
	var out []expectation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, tok := range strings.Fields(rest) {
					rule, offs, hasOff := strings.Cut(tok, "@")
					exp := expectation{line: line, rule: rule}
					if hasOff {
						d, err := strconv.Atoi(offs)
						if err != nil {
							t.Fatalf("bad want offset %q", tok)
						}
						exp.line += d
					}
					out = append(out, exp)
				}
			}
		}
	}
	return out
}

func sortedExpectations(es []expectation) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = fmt.Sprintf("%d:%s", e.line, e.rule)
	}
	sort.Strings(out)
	return out
}

// runFixtureDir checks every fixture file under testdata/<rule> against
// its // want markers, running only the analyzer under test (plus the
// ignore machinery, whose findings carry rule "ignore").
func runFixtureDir(t *testing.T, a Analyzer) {
	dir := filepath.Join("testdata", a.Name())
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixtures: %v", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			p := loadFixture(t, filepath.Join(dir, e.Name()))
			findings := Run([]*Package{p}, []Analyzer{a})
			var got []expectation
			for _, f := range findings {
				got = append(got, expectation{line: f.Pos.Line, rule: f.Rule})
			}
			want := wantedFindings(t, p)
			gs, ws := sortedExpectations(got), sortedExpectations(want)
			if strings.Join(gs, " ") != strings.Join(ws, " ") {
				t.Errorf("findings mismatch\n got: %v\nwant: %v\nfull findings:", gs, ws)
				for _, f := range findings {
					t.Logf("  %s", f)
				}
			}
		})
	}
}

func TestNoDetermFixtures(t *testing.T)    { runFixtureDir(t, NoDeterm{}) }
func TestMapOrderFixtures(t *testing.T)    { runFixtureDir(t, MapOrder{}) }
func TestNoGoroutineFixtures(t *testing.T) { runFixtureDir(t, NoGoroutine{}) }
func TestFloatEqFixtures(t *testing.T)     { runFixtureDir(t, FloatEq{}) }
func TestPanicMsgFixtures(t *testing.T)    { runFixtureDir(t, PanicMsg{}) }

// TestFixtureCoverage enforces the testdata contract: every analyzer has
// at least one known-bad fixture that yields findings and at least one
// known-good fixture that yields none.
func TestFixtureCoverage(t *testing.T) {
	for _, a := range DefaultAnalyzers() {
		dir := filepath.Join("testdata", a.Name())
		for _, kind := range []string{"bad.go", "good.go"} {
			p := loadFixture(t, filepath.Join(dir, kind))
			n := len(a.Check(p))
			if kind == "bad.go" && n < 2 {
				t.Errorf("%s/bad.go: %d findings, want >= 2", a.Name(), n)
			}
			if kind == "good.go" && n != 0 {
				t.Errorf("%s/good.go: %d findings, want 0", a.Name(), n)
			}
		}
	}
}

// TestRepoTreeClean is the integration gate: the analyzer suite must
// report zero findings on the repository's own source tree. This is the
// same check `go run ./cmd/bulletlint ./...` performs in CI.
func TestRepoTreeClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("finding module root: %v", err)
	}
	pkgs, err := LoadModule(root, nil)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader is missing parts of the tree", len(pkgs))
	}
	for _, f := range Run(pkgs, DefaultAnalyzers()) {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestLoaderScopes spot-checks package classification, which every
// path-scoped rule depends on.
func TestLoaderScopes(t *testing.T) {
	mk := func(path string) *Package { return &Package{Path: path, Module: "repro"} }
	cases := []struct {
		path                   string
		internal, core, cmdish bool
	}{
		{"repro", false, false, false},
		{"repro/bullet", false, false, false},
		{"repro/internal/sim", true, true, false},
		{"repro/internal/sched", true, true, false},
		{"repro/internal/serving", true, false, false},
		{"repro/internal/baselines/nanoflow", true, false, false},
		{"repro/cmd/bulletlint", false, false, true},
		{"repro/examples/quickstart", false, false, true},
	}
	for _, c := range cases {
		p := mk(c.path)
		if p.InInternal() != c.internal || p.InCore() != c.core || p.InCmdOrExamples() != c.cmdish {
			t.Errorf("%s: internal=%v core=%v cmdish=%v, want %v %v %v",
				c.path, p.InInternal(), p.InCore(), p.InCmdOrExamples(),
				c.internal, c.core, c.cmdish)
		}
	}
}
