package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every non-test package under the
// module rooted at dir, using only the standard library toolchain:
// module-local imports are resolved from the source tree itself and
// standard-library imports through go/importer's source importer. Test
// files (_test.go) and testdata directories are excluded — the rules
// exempt tests by construction.
//
// patterns filters which packages are returned (not which are loaded —
// dependencies are always type-checked): "./..." matches everything, a
// trailing "/..." matches a subtree, anything else must match a package
// directory exactly. Patterns are relative to dir.
func LoadModule(dir string, patterns []string) ([]*Package, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		root:    root,
		modPath: modPath,
		dirs:    map[string]string{},
		pkgs:    map[string]*Package{},
		std:     importer.ForCompiler(fset, "source", nil),
	}
	for _, d := range dirs {
		ld.dirs[importPathFor(modPath, root, d)] = d
	}

	paths := make([]string, 0, len(ld.dirs))
	for p := range ld.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var out []*Package
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // directory with only test files
		}
		if matchesAny(pkg, patterns) {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: go.mod has no module directive")
}

// packageDirs returns every directory under root that contains at least
// one buildable .go file, skipping hidden directories and testdata.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				return nil
			}
		}
		return nil
	})
	return dirs, err
}

func importPathFor(modPath, root, dir string) string {
	if dir == root {
		return modPath
	}
	rel, _ := filepath.Rel(root, dir)
	return modPath + "/" + filepath.ToSlash(rel)
}

func matchesAny(p *Package, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		if matches(p, pat) {
			return true
		}
	}
	return false
}

func matches(p *Package, pat string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	rel := p.Rel()
	if pat == "..." || pat == "" {
		return true
	}
	if sub, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == sub || strings.HasPrefix(rel, sub+"/")
	}
	return rel == pat || p.Path == pat
}

// loader type-checks module packages on demand, memoizing results. It is
// its own types.Importer so module-local imports recurse into the source
// tree while everything else falls through to the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	dirs    map[string]string // import path -> directory
	pkgs    map[string]*Package
	std     types.Importer
	stack   []string // cycle detection
}

func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: import %q resolves to a test-only package", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	for _, s := range l.stack {
		if s == path {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: no package directory for import path %q", path)
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		l.pkgs[path] = nil
		return nil, nil
	}

	l.stack = append(l.stack, path)
	defer func() { l.stack = l.stack[:len(l.stack)-1] }()

	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:   path,
		Module: l.modPath,
		Fset:   l.fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
