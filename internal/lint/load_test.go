package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module under a temp dir: files
// maps module-relative paths to contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadModuleMissingGoMod(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go": "package a\n",
	})
	if _, err := LoadModule(root, nil); err == nil || !strings.Contains(err.Error(), "go.mod") {
		t.Fatalf("want go.mod read error, got %v", err)
	}
}

func TestLoadModuleMalformedGoMod(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "// no module directive here\ngo 1.24\n",
		"a/a.go": "package a\n",
	})
	if _, err := LoadModule(root, nil); err == nil || !strings.Contains(err.Error(), "no module directive") {
		t.Fatalf("want missing-module-directive error, got %v", err)
	}
}

func TestLoadModuleMissingImportedPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.24\n",
		"a/a.go": "package a\n\nimport \"example.com/m/gone\"\n\nvar _ = gone.X\n",
	})
	_, err := LoadModule(root, nil)
	if err == nil || !strings.Contains(err.Error(), `"example.com/m/gone"`) {
		t.Fatalf("want missing-package error naming the import path, got %v", err)
	}
}

func TestLoadModuleTypeError(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.24\n",
		"a/a.go": "package a\n\nvar x int = \"not an int\"\n",
	})
	if _, err := LoadModule(root, nil); err == nil || !strings.Contains(err.Error(), "type-checking") {
		t.Fatalf("want type-check error, got %v", err)
	}
}

func TestLoadModuleImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.24\n",
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nvar _ = b.X\n",
		"b/b.go": "package b\n\nimport \"example.com/m/a\"\n\nvar X = 1\nvar _ = a.Y\n",
	})
	if _, err := LoadModule(root, nil); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want import-cycle error, got %v", err)
	}
}

func TestLoadModuleSkipsTestOnlyAndHiddenDirs(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                "module example.com/m\n\ngo 1.24\n",
		"a/a.go":                "package a\n",
		"onlytests/x_test.go":   "package onlytests\n",
		".hidden/h.go":          "package hidden\n",
		"_skip/s.go":            "package skip\n",
		"a/testdata/fixture.go": "package broken because testdata is never parsed\n",
	})
	pkgs, err := LoadModule(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/m/a" {
		t.Fatalf("want exactly package a, got %v", pkgPaths(pkgs))
	}
}

func TestLoadModulePatterns(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module example.com/m\n\ngo 1.24\n",
		"a/a.go":     "package a\n",
		"a/sub/s.go": "package sub\n",
		"b/b.go":     "package b\n",
	})
	cases := []struct {
		patterns []string
		want     []string
	}{
		{nil, []string{"example.com/m/a", "example.com/m/a/sub", "example.com/m/b"}},
		{[]string{"./..."}, []string{"example.com/m/a", "example.com/m/a/sub", "example.com/m/b"}},
		{[]string{"a/..."}, []string{"example.com/m/a", "example.com/m/a/sub"}},
		{[]string{"./b"}, []string{"example.com/m/b"}},
		{[]string{"nosuchdir"}, nil},
	}
	for _, c := range cases {
		pkgs, err := LoadModule(root, c.patterns)
		if err != nil {
			t.Fatalf("%v: %v", c.patterns, err)
		}
		got := pkgPaths(pkgs)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("patterns %v: got %v, want %v", c.patterns, got, c.want)
		}
	}
}

func pkgPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}

// TestIgnoreDirectiveEdgeCases pins the //lint:ignore grammar corner
// cases: a wrong rule name suppresses nothing, a multi-word reason
// (trailing text) is well-formed, a missing reason is reported as a
// malformed-directive finding, and "all" plus comma-lists fan out.
func TestIgnoreDirectiveEdgeCases(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.24\n",
		"a/a.go": `package a

var a = 1 //lint:ignore floateq wrong rule for this line
var b = 2 //lint:ignore maporder a long multi-word reason with trailing text is fine
var c = 3 //lint:ignore hotalloc
var e = 5 //lint:ignore hotalloc,floateq comma list reason
var d = 4 //lint:ignore all blanket suppression
`,
	})
	pkgs, err := LoadModule(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("want one package, got %v", pkgPaths(pkgs))
	}
	set, bad := collectIgnores(pkgs[0])

	if len(bad) != 1 {
		t.Fatalf("want exactly one malformed-directive finding, got %d: %v", len(bad), bad)
	}
	if bad[0].Rule != "ignore" || bad[0].Pos.Line != 5 {
		t.Errorf("malformed finding: got rule %q line %d, want ignore line 5", bad[0].Rule, bad[0].Pos.Line)
	}

	pos := bad[0].Pos // reuse the filename; only Line and Rule vary below
	suppressed := func(line int, rule string) bool {
		f := Finding{Pos: pos, Rule: rule}
		f.Pos.Line = line
		return set.suppresses(f)
	}
	if suppressed(3, "floateq") != true {
		t.Error("line 3: floateq should be suppressed by its own (wrong-for-the-code but named) rule")
	}
	if suppressed(3, "hotalloc") {
		t.Error("line 3: a directive naming floateq must not suppress hotalloc")
	}
	if !suppressed(4, "maporder") {
		t.Error("line 4: multi-word reason should still suppress maporder")
	}
	if suppressed(5, "hotalloc") {
		t.Error("line 5: malformed directive (no reason) must suppress nothing")
	}
	if !suppressed(6, "hotalloc") || !suppressed(6, "floateq") {
		t.Error("line 6: comma list should suppress both named rules")
	}
	if suppressed(6, "maporder") {
		t.Error("line 6: comma list must not suppress unnamed rules")
	}
	if !suppressed(7, "hotalloc") || !suppressed(7, "nodeterm") {
		t.Error("line 7: all should suppress every rule")
	}
}
