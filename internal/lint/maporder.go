package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` over map-typed expressions in internal,
// cmd, and examples packages when the loop's effects can depend on Go's
// randomized map iteration order. Two shapes are accepted without a
// finding:
//
//  1. The sorted-keys idiom: the loop only appends keys (or key/value
//     records) into slices that are subsequently sorted in an enclosing
//     block, e.g.
//
//     keys := make([]string, 0, len(m))
//     for k := range m {
//     keys = append(keys, k)
//     }
//     sort.Strings(keys)
//
//  2. Order-insensitive bodies: every statement is a commutative
//     accumulation — writes indexed by the (distinct) map keys, integer
//     +=/-=/*=/|=/&=/^= and ++/--, delete calls, or pure conditionals
//     around those. Floating-point accumulation is deliberately NOT
//     exempt: float addition is non-associative, so summing in map order
//     changes low bits run to run.
//
// Everything else must iterate over explicitly sorted keys.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }

func (MapOrder) Doc() string {
	return "flag map iteration whose order can leak into program state (internal, cmd, examples)"
}

func (MapOrder) Check(p *Package) []Finding {
	if !p.InInternal() && !p.InCmdOrExamples() {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		// Collect every function body as an independent statement-walk
		// root; the walker itself never descends into expressions, so
		// nested function literals are each visited exactly once.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				out = append(out, checkMapRanges(p, body.List, nil)...)
			}
			return true
		})
	}
	return out
}

// checkMapRanges walks a statement list. cont is the stack of
// "statements following an ancestor" slices — the places where a sort of
// collected keys may legally appear.
func checkMapRanges(p *Package, list []ast.Stmt, cont [][]ast.Stmt) []Finding {
	var out []Finding
	for i, st := range list {
		following := make([][]ast.Stmt, len(cont), len(cont)+1)
		copy(following, cont)
		following = append(following, list[i+1:])
		switch s := st.(type) {
		case *ast.RangeStmt:
			if isMapType(p, s.X) {
				out = append(out, checkOneMapRange(p, s, following)...)
			}
			out = append(out, checkMapRanges(p, s.Body.List, following)...)
		case *ast.BlockStmt:
			out = append(out, checkMapRanges(p, s.List, following)...)
		case *ast.ForStmt:
			out = append(out, checkMapRanges(p, s.Body.List, following)...)
		case *ast.IfStmt:
			out = append(out, checkMapRanges(p, s.Body.List, following)...)
			if s.Else != nil {
				out = append(out, checkMapRanges(p, []ast.Stmt{s.Else}, following)...)
			}
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				out = append(out, checkMapRanges(p, c.(*ast.CaseClause).Body, following)...)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				out = append(out, checkMapRanges(p, c.(*ast.CaseClause).Body, following)...)
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				out = append(out, checkMapRanges(p, c.(*ast.CommClause).Body, following)...)
			}
		case *ast.LabeledStmt:
			out = append(out, checkMapRanges(p, []ast.Stmt{s.Stmt}, cont)...)
		}
	}
	return out
}

func checkOneMapRange(p *Package, s *ast.RangeStmt, following [][]ast.Stmt) []Finding {
	ok, collected := orderInsensitive(p, s.Body.List)
	if !ok {
		return []Finding{{
			Pos:  p.Fset.Position(s.Pos()),
			Rule: "maporder",
			Msg: "map iteration order leaks into program state; iterate sorted keys " +
				"(collect, sort.X, then range the slice) or make the body commutative",
		}}
	}
	var out []Finding
	for _, obj := range collected {
		if !sortedLater(p, obj, following) {
			out = append(out, Finding{
				Pos:  p.Fset.Position(s.Pos()),
				Rule: "maporder",
				Msg: "keys collected from map range into " + obj.Name() +
					" are never sorted in the enclosing block; sort before use",
			})
		}
	}
	return out
}

// orderInsensitive reports whether every statement in body commutes
// across iterations, and returns the slice variables the body appends to
// (which the caller must verify are sorted afterwards).
func orderInsensitive(p *Package, body []ast.Stmt) (bool, []types.Object) {
	var collected []types.Object
	var walk func(list []ast.Stmt) bool
	walk = func(list []ast.Stmt) bool {
		for _, st := range list {
			switch s := st.(type) {
			case *ast.EmptyStmt:
			case *ast.BranchStmt:
				// continue skips an iteration (commutative); break makes
				// the outcome depend on which key came first.
				if s.Tok != token.CONTINUE {
					return false
				}
			case *ast.BlockStmt:
				if !walk(s.List) {
					return false
				}
			case *ast.IfStmt:
				if s.Init != nil || !pureExpr(p, s.Cond) || !walk(s.Body.List) {
					return false
				}
				if s.Else != nil && !walk([]ast.Stmt{s.Else}) {
					return false
				}
			case *ast.IncDecStmt:
				if !isInteger(p, s.X) {
					return false
				}
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok || !isBuiltin(p, call.Fun, "delete") {
					return false
				}
			case *ast.AssignStmt:
				obj, ok := classifyAssign(p, s)
				if !ok {
					return false
				}
				if obj != nil {
					collected = append(collected, obj)
				}
			default:
				return false
			}
		}
		return true
	}
	return walk(body), collected
}

// classifyAssign accepts three commutative assignment shapes. It returns
// (collectedSlice, ok): collectedSlice is non-nil for the append-collect
// form, which is only legal if the slice is sorted later.
func classifyAssign(p *Package, s *ast.AssignStmt) (types.Object, bool) {
	switch s.Tok {
	case token.ASSIGN:
		// keys = append(keys, ...)
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if id, ok := s.Lhs[0].(*ast.Ident); ok {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isBuiltin(p, call.Fun, "append") {
					if len(call.Args) >= 1 && !call.Ellipsis.IsValid() {
						if base, ok := call.Args[0].(*ast.Ident); ok && p.Info.Uses[base] != nil &&
							p.Info.Uses[base] == p.Info.ObjectOf(id) && pureExprs(p, call.Args[1:]) {
							return p.Info.Uses[base], true
						}
					}
				}
			}
		}
		// m[k] = v: distinct keys make map writes commute.
		for _, lhs := range s.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok || !isMapType(p, ix.X) || !pureExpr(p, ix.Index) {
				return nil, false
			}
		}
		if !pureExprs(p, s.Rhs) {
			return nil, false
		}
		return nil, true
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		// Commutative only in exact arithmetic: integers qualify
		// (wraparound included), floats do not.
		if len(s.Lhs) == 1 && isInteger(p, s.Lhs[0]) && pureExprs(p, s.Rhs) {
			return nil, true
		}
		return nil, false
	}
	return nil, false
}

// sortedLater reports whether obj (a slice the range loop appended into)
// is passed to a sort or slices call in any statement following the loop
// in an enclosing block.
func sortedLater(p *Package, obj types.Object, following [][]ast.Stmt) bool {
	for _, list := range following {
		for _, st := range list {
			found := false
			ast.Inspect(st, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn := useOf(p, sel)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if pp := fn.Pkg().Path(); pp != "sort" && pp != "slices" {
					return true
				}
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok && p.Info.Uses[id] == obj {
							found = true
						}
						return !found
					})
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

func isBuiltin(p *Package, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.Info.Uses[id]
	_, isB := obj.(*types.Builtin)
	return isB
}

// pureExpr conservatively decides an expression cannot have side effects
// or observe mutable global state beyond its named operands: no calls
// except len/cap/min/max and type conversions, no channel receives.
func pureExpr(p *Package, e ast.Expr) bool {
	switch e := e.(type) {
	case nil:
		return true
	case *ast.Ident, *ast.BasicLit, *ast.FuncLit:
		return true
	case *ast.ParenExpr:
		return pureExpr(p, e.X)
	case *ast.SelectorExpr:
		return pureExpr(p, e.X)
	case *ast.StarExpr:
		return pureExpr(p, e.X)
	case *ast.UnaryExpr:
		return e.Op != token.ARROW && pureExpr(p, e.X)
	case *ast.BinaryExpr:
		return pureExpr(p, e.X) && pureExpr(p, e.Y)
	case *ast.IndexExpr:
		return pureExpr(p, e.X) && pureExpr(p, e.Index)
	case *ast.SliceExpr:
		return pureExpr(p, e.X) && pureExpr(p, e.Low) && pureExpr(p, e.High) && pureExpr(p, e.Max)
	case *ast.TypeAssertExpr:
		return pureExpr(p, e.X)
	case *ast.CompositeLit:
		return pureExprs(p, e.Elts)
	case *ast.KeyValueExpr:
		return pureExpr(p, e.Key) && pureExpr(p, e.Value)
	case *ast.CallExpr:
		if isBuiltin(p, e.Fun, "len") || isBuiltin(p, e.Fun, "cap") ||
			isBuiltin(p, e.Fun, "min") || isBuiltin(p, e.Fun, "max") {
			return pureExprs(p, e.Args)
		}
		// Type conversions evaluate their single operand and nothing else.
		if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() {
			return pureExprs(p, e.Args)
		}
		return false
	}
	return false
}

func pureExprs(p *Package, es []ast.Expr) bool {
	for _, e := range es {
		if !pureExpr(p, e) {
			return false
		}
	}
	return true
}
