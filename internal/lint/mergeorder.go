package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MergeOrder machine-checks the join half of the fork/join determinism
// contract: task results must be consumed index-addressed (task i fills
// slot i of a preallocated slice), never in completion order. Three
// shapes are findings:
//
//   - a task body appending to a captured slice — the append order is
//     the scheduler-dependent completion order;
//   - a task body sending results on a channel — ditto;
//   - a function that forks work and then ranges over a channel to
//     collect it — draining a results channel observes completion order
//     even when the sends themselves look innocuous.
//
// Unlike harnessonly, the rule applies inside internal/forkjoin too:
// the harness's own primitives must consume results index-addressed,
// which is exactly what forkjoin.Map's out[i] = fn(i) shape does.
type MergeOrder struct{}

func (MergeOrder) Name() string { return "mergeorder" }

func (MergeOrder) Doc() string {
	return "require index-addressed fork/join result consumption; forbid completion-order merges"
}

func (MergeOrder) Check(p *Package) []Finding {
	if p.Info == nil {
		return nil
	}
	var out []Finding
	flag := func(pos token.Pos, msg string) {
		out = append(out, Finding{Pos: p.Fset.Position(pos), Rule: "mergeorder", Msg: msg})
	}
	for _, file := range p.Files {
		// Inside task bodies: no completion-order result production.
		for _, lit := range forkTaskLits(p, file) {
			c := newIsoCtx(p, lit)
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					flag(n.Pos(), "forked task sends results on a channel; write to an index-addressed slot instead")
				case *ast.CallExpr:
					id, ok := n.Fun.(*ast.Ident)
					if !ok || len(n.Args) == 0 {
						return true
					}
					if _, builtin := p.Info.Uses[id].(*types.Builtin); !builtin || id.Name != "append" {
						return true
					}
					if kind, _ := c.classify(n.Args[0]); kind != ownKind {
						flag(n.Pos(), "forked task appends to a shared slice in completion order; write to an index-addressed slot instead")
					}
				}
				return true
			})
		}
		// In functions that fork: no draining results from a channel.
		// Nested function literals are attributed to themselves, not to
		// their enclosing function.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil || !forksWork(p, body) {
				return true
			}
			walkSameFunc(body, func(m ast.Node) {
				rng, ok := m.(*ast.RangeStmt)
				if !ok {
					return
				}
				if t := typeOf(p, rng.X); t != nil {
					if _, chanT := t.Underlying().(*types.Chan); chanT {
						flag(rng.Pos(), "fork/join results drained from a channel in completion order; use the index-addressed result slice")
					}
				}
			})
			return true
		})
	}
	return out
}

// walkSameFunc visits every node of body without descending into nested
// function literals.
func walkSameFunc(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// forksWork reports whether the function body itself contains a
// forkjoin.Do/Map fork site (nested function literals excluded).
func forksWork(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && forkTaskLit(p, call) != nil {
			found = true
		}
		return !found
	})
	return found
}
