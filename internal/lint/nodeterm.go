package lint

import (
	"fmt"
	"go/ast"
)

// NoDeterm forbids sources of nondeterminism in internal packages: wall
// clock reads (time.Now and friends), the globally-seeded math/rand
// top-level functions, and environment lookups. Simulated components must
// take time from the sim clock and randomness from an explicitly seeded
// *rand.Rand, so every run of an experiment is bit-reproducible.
//
// Constructors that merely build deterministic sources (rand.New,
// rand.NewSource, rand.NewZipf, ...) are allowed; it is the implicitly
// shared global state and the host clock/environment that are banned.
// cmd/ mains and examples/ are out of scope — they talk to the real world
// by design — EXCEPT inside forkjoin.Do/Map task bodies, which are
// checked everywhere: a forked task drawing from the wall clock or the
// global rand source reintroduces scheduler-dependent results that the
// fork/join harness exists to rule out. Task bodies additionally may not
// iterate maps at all — per-goroutine map iteration order differs even
// between runs of the same schedule — so results must flow through
// sorted keys or index-addressed slices (randomness through
// forkjoin.ForkSeed).
type NoDeterm struct{}

func (NoDeterm) Name() string { return "nodeterm" }

func (NoDeterm) Doc() string {
	return "forbid wall-clock time, global math/rand, and os.Getenv in internal packages, plus map iteration in forked task bodies"
}

// forbiddenFuncs maps package path -> function name -> the reason shown in
// the finding.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":       "use the simulated clock (sim.Simulation.Now)",
		"Since":     "use the simulated clock (sim.Simulation.Now)",
		"Until":     "use the simulated clock (sim.Simulation.Now)",
		"Sleep":     "schedule a sim event (sim.Simulation.After) instead",
		"After":     "schedule a sim event (sim.Simulation.After) instead",
		"Tick":      "schedule recurring sim events instead",
		"NewTimer":  "schedule a sim event (sim.Simulation.After) instead",
		"NewTicker": "schedule recurring sim events instead",
		"AfterFunc": "schedule a sim event (sim.Simulation.After) instead",
	},
	"os": {
		"Getenv":    "plumb configuration explicitly; the environment is host state",
		"LookupEnv": "plumb configuration explicitly; the environment is host state",
		"Environ":   "plumb configuration explicitly; the environment is host state",
	},
}

// randConstructors are the math/rand package-level functions that return
// an explicit, seedable source — the deterministic way to use the package.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 additions
	"NewPCG": true, "NewChaCha8": true,
}

func (NoDeterm) Check(p *Package) []Finding {
	internal := p.InInternal()
	var out []Finding
	for _, file := range p.Files {
		lits := forkTaskLits(p, file)
		if !internal && len(lits) == 0 {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok && inAny(lits, rng.Pos()) && isMapType(p, rng.X) {
				out = append(out, Finding{
					Pos:  p.Fset.Position(rng.Pos()),
					Rule: "nodeterm",
					Msg:  "map iteration inside a forked task body: per-goroutine iteration order is nondeterministic; sort the keys or index a slice",
				})
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !internal && !inAny(lits, sel.Pos()) {
				return true
			}
			obj := useOf(p, sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			pkgPath, name := obj.Pkg().Path(), obj.Name()
			if fns, ok := forbiddenFuncs[pkgPath]; ok {
				if why, bad := fns[name]; bad && pkgFunc(obj, pkgPath, name) {
					out = append(out, Finding{
						Pos:  p.Fset.Position(sel.Pos()),
						Rule: "nodeterm",
						Msg:  fmt.Sprintf("%s.%s is nondeterministic: %s", pkgPath, name, why),
					})
				}
				return true
			}
			if (pkgPath == "math/rand" || pkgPath == "math/rand/v2") &&
				!randConstructors[name] && pkgFunc(obj, pkgPath, name) {
				out = append(out, Finding{
					Pos:  p.Fset.Position(sel.Pos()),
					Rule: "nodeterm",
					Msg: fmt.Sprintf("%s.%s uses the shared global source: draw from an explicitly seeded *rand.Rand",
						pkgPath, name),
				})
			}
			return true
		})
	}
	return out
}
