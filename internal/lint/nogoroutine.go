package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// NoGoroutine enforces the single-threaded actor model of the
// deterministic simulation core (sim, gpusim, sched, engine, resource,
// estimator, kvcache, smmask): no goroutines, no channels, no select, and
// no sync/sync·atomic imports. Concurrency inside the core would make
// event interleaving depend on the Go scheduler, destroying the
// bit-reproducibility the experiments rely on; anything concurrent
// (serving frontends, benchmark drivers) belongs outside these packages.
type NoGoroutine struct{}

func (NoGoroutine) Name() string { return "nogoroutine" }

func (NoGoroutine) Doc() string {
	return "forbid goroutines, channels, select, and sync imports in the simulation core"
}

func (NoGoroutine) Check(p *Package) []Finding {
	if !p.InCore() {
		return nil
	}
	var out []Finding
	flag := func(n ast.Node, what string) {
		out = append(out, Finding{
			Pos:  p.Fset.Position(n.Pos()),
			Rule: "nogoroutine",
			Msg:  what + " in the deterministic core; the simulation is a single-threaded actor model",
		})
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				if path, err := strconv.Unquote(n.Path.Value); err == nil {
					if path == "sync" || path == "sync/atomic" {
						flag(n, "import of "+path)
					}
				}
			case *ast.GoStmt:
				flag(n, "go statement")
			case *ast.SelectStmt:
				flag(n, "select statement")
			case *ast.SendStmt:
				flag(n, "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					flag(n, "channel receive")
				}
			case *ast.ChanType:
				flag(n, "channel type")
			case *ast.RangeStmt:
				if t := typeOf(p, n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						flag(n, "range over channel")
					}
				}
			}
			return true
		})
	}
	return out
}
