package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// PanicMsg requires every panic and log.Fatal-family exit in non-test
// code to carry a formatted, contextual message: a future reader of the
// crash must learn which subsystem gave up and why without a debugger.
//
// Accepted panic arguments:
//   - fmt.Sprintf / fmt.Errorf / errors.New whose format/message literal
//     carries context (contains a space or ':')
//   - a string constant or string-concatenation expression with such a
//     literal part
//   - any non-literal call that builds a message (the callee is assumed
//     to format one)
//
// Rejected: bare values (panic(err), panic(n)), terse single-token
// strings (panic("unreachable")). For the log package, Fatal/Fatalln and
// Panic/Panicln are always rejected in favor of Fatalf/Panicf with a
// contextual format string.
type PanicMsg struct{}

func (PanicMsg) Name() string { return "panicmsg" }

func (PanicMsg) Doc() string {
	return "require panic and log.Fatal exits to carry a formatted, contextual message"
}

var logBare = map[string]string{
	"Fatal": "log.Fatalf", "Fatalln": "log.Fatalf",
	"Panic": "log.Panicf", "Panicln": "log.Panicf",
}

func (PanicMsg) Check(p *Package) []Finding {
	var out []Finding
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if isBuiltin(p, fun, "panic") && len(call.Args) == 1 &&
					!contextualMessage(p, call.Args[0]) {
					out = append(out, Finding{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "panicmsg",
						Msg:  "panic without a contextual message; use panic(fmt.Sprintf(\"pkg: what failed: %v\", ...))",
					})
				}
			case *ast.SelectorExpr:
				obj := useOf(p, fun)
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "log" {
					return true
				}
				if repl, bare := logBare[obj.Name()]; bare && pkgFunc(obj, "log", obj.Name()) {
					out = append(out, Finding{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "panicmsg",
						Msg:  "log." + obj.Name() + " drops context; use " + repl + " with a message naming what failed",
					})
				} else if (obj.Name() == "Fatalf" || obj.Name() == "Panicf") &&
					pkgFunc(obj, "log", obj.Name()) &&
					len(call.Args) > 0 && !contextualMessage(p, call.Args[0]) {
					out = append(out, Finding{
						Pos:  p.Fset.Position(call.Pos()),
						Rule: "panicmsg",
						Msg:  "log." + obj.Name() + " format string carries no context; name the subsystem and operation",
					})
				}
			}
			return true
		})
	}
	return out
}

// contextualMessage reports whether e plausibly yields a message with
// context rather than a bare value.
func contextualMessage(p *Package, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return contextualMessage(p, e.X)
	case *ast.BinaryExpr:
		// String concatenation counts when either part does.
		return e.Op == token.ADD && (contextualMessage(p, e.X) || contextualMessage(p, e.Y))
	case *ast.CallExpr:
		if obj := useOf(p, e.Fun); obj != nil && obj.Pkg() != nil {
			path, name := obj.Pkg().Path(), obj.Name()
			formatting := (path == "fmt" && (name == "Sprintf" || name == "Errorf")) ||
				(path == "errors" && name == "New")
			if formatting {
				return len(e.Args) > 0 && contextualMessage(p, e.Args[0])
			}
		}
		// Some other call: assume it constructs a message (e.g. a local
		// error helper). Conversions of bare values do not qualify.
		if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() {
			return false
		}
		return true
	}
	// A constant string with a space or colon reads as a message; a bare
	// token ("unreachable") or any non-string value does not.
	if tv, ok := p.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		s := constant.StringVal(tv.Value)
		return strings.ContainsAny(s, " :")
	}
	return false
}
