package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ReplicaIsolation machine-checks the ownership half of the fork/join
// determinism contract: inside a forkjoin.Do/Map task body, mutable
// state reachable from one task (one cluster replica, one sweep row)
// must never be written into package-level state, into state captured
// from the enclosing function, or into another task's slot. A task owns
// exactly:
//
//   - state it created itself (locals, call results, composite literals);
//   - its task-index projection of a captured root — root[i] where i is
//     the task parameter — which is how index-addressed result slices
//     and per-task replica slots are expressed.
//
// Everything else reachable from the closure is shared: writing through
// it, calling pointer-receiver methods on it, or returning it from a Map
// body races the sibling tasks and makes results depend on the Go
// scheduler. The rule is what lets the cluster advance replicas in
// parallel and still promise byte-identical output at every worker
// count.
//
// The analysis is a conservative syntactic taint walk, not an alias
// analysis: locals initialized from a shared chain (without a task-index
// projection) are shared; aliasing laundered through struct copies or
// function calls is out of scope. internal/forkjoin itself is exempt —
// it is the audited implementation the contract is defined against.
type ReplicaIsolation struct{}

func (ReplicaIsolation) Name() string { return "replicaisolation" }

func (ReplicaIsolation) Doc() string {
	return "forbid forked task bodies from writing shared or package-level state; tasks own only their index slot"
}

// Ownership kinds for an expression chain inside a task body.
const (
	ownKind      = iota // fresh, local, or reached through root[taskParam]
	capturedKind        // reachable from a captured root without task projection
	globalKind          // rooted at package-level state
)

// isoCtx is the per-task-literal classification state shared by the
// replicaisolation and mergeorder analyzers.
type isoCtx struct {
	p         *Package
	lit       *ast.FuncLit
	taskParam types.Object          // first parameter of the task body, nil if unnamed
	tainted   map[types.Object]bool // locals aliasing shared state
}

func newIsoCtx(p *Package, lit *ast.FuncLit) *isoCtx {
	c := &isoCtx{p: p, lit: lit, tainted: map[types.Object]bool{}}
	if fields := lit.Type.Params.List; len(fields) > 0 && len(fields[0].Names) > 0 {
		if name := fields[0].Names[0]; name.Name != "_" {
			c.taskParam = p.Info.Defs[name]
		}
	}
	c.propagateTaint()
	return c
}

// litLocal reports whether obj is declared inside the task literal.
func (c *isoCtx) litLocal(obj types.Object) bool {
	return obj != nil && obj.Pos() >= c.lit.Pos() && obj.Pos() < c.lit.End()
}

// isTaskIndex reports whether idx is exactly the task parameter — the
// one projection that transfers ownership of a captured root's slot.
func (c *isoCtx) isTaskIndex(idx ast.Expr) bool {
	if p, ok := idx.(*ast.ParenExpr); ok {
		idx = p.X
	}
	id, ok := idx.(*ast.Ident)
	return ok && c.taskParam != nil && c.p.Info.Uses[id] == c.taskParam
}

// classify resolves an expression chain to its ownership kind and root
// object (nil for fresh state).
func (c *isoCtx) classify(e ast.Expr) (int, types.Object) {
	switch e := e.(type) {
	case *ast.Ident:
		return c.classifyObj(c.p.Info.Uses[e])
	case *ast.SelectorExpr:
		if obj := useOf(c.p, e); obj != nil {
			if v, ok := obj.(*types.Var); ok && !v.IsField() &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return globalKind, v
			}
		}
		return c.classify(e.X)
	case *ast.IndexExpr:
		k, root := c.classify(e.X)
		if k != ownKind && c.isTaskIndex(e.Index) {
			return ownKind, root
		}
		return k, root
	case *ast.StarExpr:
		return c.classify(e.X)
	case *ast.ParenExpr:
		return c.classify(e.X)
	case *ast.TypeAssertExpr:
		return c.classify(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return c.classify(e.X)
		}
	case *ast.SliceExpr:
		return c.classify(e.X)
	}
	// Call results, composite and basic literals, conversions: fresh
	// state the task owns.
	return ownKind, nil
}

func (c *isoCtx) classifyObj(obj types.Object) (int, types.Object) {
	v, ok := obj.(*types.Var)
	if !ok {
		// Package names, constants, functions, types: not mutable state.
		return ownKind, nil
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return globalKind, v
	}
	if obj == c.taskParam {
		return ownKind, v
	}
	if c.litLocal(v) {
		if c.tainted[v] {
			return capturedKind, v
		}
		return ownKind, v
	}
	return capturedKind, v
}

// aliasing reports whether values of t alias underlying storage when
// copied — the types a shared read can smuggle write access through.
// Struct copies are treated as non-aliasing (a documented heuristic).
func aliasing(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// propagateTaint walks the task body's assignments in source order,
// marking locals initialized from shared chains (without a task-index
// projection) as shared themselves.
func (c *isoCtx) propagateTaint() {
	ast.Inspect(c.lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := c.p.Info.Defs[id]
			if obj == nil {
				obj = c.p.Info.Uses[id]
			}
			if obj == nil || !c.litLocal(obj) {
				continue
			}
			if kind, _ := c.classify(as.Rhs[i]); kind != ownKind && aliasing(obj.Type()) {
				c.tainted[obj] = true
			}
		}
		return true
	})
}

func (c *isoCtx) describe(kind int, root types.Object) string {
	name := "shared state"
	if root != nil {
		name = fmt.Sprintf("%q", root.Name())
	}
	if kind == globalKind {
		return fmt.Sprintf("package-level %s", name)
	}
	return fmt.Sprintf("captured %s", name)
}

func (ReplicaIsolation) Check(p *Package) []Finding {
	if isForkJoinPkg(p.Path) || p.Info == nil {
		return nil
	}
	var out []Finding
	flag := func(pos token.Pos, msg string) {
		out = append(out, Finding{Pos: p.Fset.Position(pos), Rule: "replicaisolation", Msg: msg})
	}
	for _, file := range p.Files {
		for _, lit := range forkTaskLits(p, file) {
			c := newIsoCtx(p, lit)
			checkWrite := func(pos token.Pos, e ast.Expr, verb string) {
				kind, root := c.classify(e)
				if kind == ownKind {
					return
				}
				flag(pos, fmt.Sprintf(
					"forked task %s %s; a task may write only state it created or its root[i] task-index slot",
					verb, c.describe(kind, root)))
			}
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							if id.Name == "_" || c.p.Info.Defs[id] != nil {
								continue // new binding, handled by taint
							}
						}
						checkWrite(lhs.Pos(), lhs, "writes")
					}
				case *ast.IncDecStmt:
					checkWrite(n.Pos(), n.X, "writes")
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) > 0 {
						if _, builtin := p.Info.Uses[id].(*types.Builtin); builtin &&
							(id.Name == "delete" || id.Name == "copy") {
							checkWrite(n.Pos(), n.Args[0], "mutates (via "+id.Name+")")
						}
						return true
					}
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					selInfo, ok := p.Info.Selections[sel]
					if !ok {
						return true
					}
					fn, ok := selInfo.Obj().(*types.Func)
					if !ok {
						return true
					}
					sig, ok := fn.Type().(*types.Signature)
					if !ok || sig.Recv() == nil {
						return true
					}
					if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
						return true
					}
					kind, root := c.classify(sel.X)
					if kind != ownKind {
						flag(n.Pos(), fmt.Sprintf(
							"forked task calls pointer-receiver method %q on %s; mutate only task-owned state",
							fn.Name(), c.describe(kind, root)))
					}
				case *ast.ReturnStmt:
					for _, res := range n.Results {
						kind, root := c.classify(res)
						if kind != ownKind && aliasing(typeOf(p, res)) {
							flag(res.Pos(), fmt.Sprintf(
								"forked task returns %s; results must be freshly built per task",
								c.describe(kind, root)))
						}
					}
				}
				return true
			})
		}
	}
	return out
}
