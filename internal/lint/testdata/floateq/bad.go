//linttest:path repro/internal/fixture

// Known-bad inputs for the floateq rule: exact equality between computed
// floating-point values.
package fixture

import "repro/internal/units"

func sameResult(a, b float64) bool {
	return a == b // want floateq
}

// Unit types are float64 underneath: computed-vs-computed equality is
// just as much a hazard, and the literal-zero exemption must not leak
// into non-sentinel comparisons like this one.
func sameDuration(a, b units.Seconds) bool {
	return a == b // want floateq
}

func nonIntegralSentinel(d units.Seconds) bool {
	return d == 0.5 // want floateq
}

func converged(prev, next float32) bool {
	return prev != next // want floateq
}

func sumsMatch(xs []float64, want float64) bool {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s == want // want floateq
}

func switchOnFloat(x float64) int {
	switch x {
	case 1.5: // want floateq
		return 1
	default:
		return 0
	}
}
