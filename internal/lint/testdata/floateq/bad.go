//linttest:path repro/internal/fixture

// Known-bad inputs for the floateq rule: exact equality between computed
// floating-point values.
package fixture

func sameResult(a, b float64) bool {
	return a == b // want floateq
}

func converged(prev, next float32) bool {
	return prev != next // want floateq
}

func sumsMatch(xs []float64, want float64) bool {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s == want // want floateq
}

func switchOnFloat(x float64) int {
	switch x {
	case 1.5: // want floateq
		return 1
	default:
		return 0
	}
}
