//linttest:path repro/internal/fixture

// Known-good inputs for the floateq rule: sentinel comparisons, epsilon
// comparisons, and orderings.
package fixture

import "math"

const unset = -1.0

func sentinelZero(x float64) bool {
	return x == 0 // a zero sentinel is exactly representable
}

func sentinelConst(x float64) bool {
	return x != unset // integral constants compare exactly
}

func epsilonEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func ordering(a, b float64) bool {
	// The exact-equality-free tie-break pattern (see sim.eventQueue.Less).
	if a < b {
		return true
	}
	return !(b < a)
}

func intsCompareFine(a, b int) bool {
	return a == b
}
