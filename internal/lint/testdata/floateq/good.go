//linttest:path repro/internal/fixture

// Known-good inputs for the floateq rule: sentinel comparisons, epsilon
// comparisons, and orderings.
package fixture

import (
	"math"

	"repro/internal/units"
)

const unset = -1.0

func sentinelZero(x float64) bool {
	return x == 0 // a zero sentinel is exactly representable
}

func sentinelConst(x float64) bool {
	return x != unset // integral constants compare exactly
}

func epsilonEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func ordering(a, b float64) bool {
	// The exact-equality-free tie-break pattern (see sim.eventQueue.Less).
	if a < b {
		return true
	}
	return !(b < a)
}

func intsCompareFine(a, b int) bool {
	return a == b
}

// kernel mirrors gpusim.Kernel's work fields, which are defined float
// types from internal/units.
type kernel struct {
	FLOPs units.FLOPs
	Bytes units.Bytes
}

// zeroWorkSentinel pins the literal-zero exemption for unit-typed floats:
// "was any work ever recorded" is an assignment test against the exactly
// representable zero, not a convergence test, so it stays legal even
// though FLOPs and Bytes are float64 underneath.
func zeroWorkSentinel(k kernel) bool {
	return k.FLOPs == 0 && k.Bytes == 0
}

// integralUnitSentinel: integral constants stay exempt for unit types
// too, matching plain float64 behaviour.
func integralUnitSentinel(d units.Seconds) bool {
	return d != -1
}
