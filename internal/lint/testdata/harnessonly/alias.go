//linttest:path repro/internal/metrics

// The retired "nogoroutine" rule name keeps working as a deprecated
// alias in ignore directives: a directive written against the old name
// suppresses the harnessonly finding on the same line. The unsuppressed
// second site pins that the alias directive is line-scoped, not
// file-wide.
package fixture

func spawnSuppressed(fn func()) {
	//lint:ignore nogoroutine grandfathered pre-harness helper
	go fn()
}

func spawnFlagged(fn func()) {
	go fn() // want harnessonly
}
