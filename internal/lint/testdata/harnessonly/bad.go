//linttest:path repro/internal/serving

// Known-bad inputs for the harnessonly rule: the concurrency-construct
// ban is module-wide (here an internal package OUTSIDE the old
// nogoroutine core scope), not just the simulation core.
package fixture

import "sync" // want harnessonly

type mailbox struct {
	ch chan int // want harnessonly
	mu sync.Mutex
}

func spawn(fn func()) {
	go fn() // want harnessonly
}

func sendRecv(ch chan int) { // want harnessonly
	ch <- 1 // want harnessonly
	<-ch    // want harnessonly
}

func waitEither(a, b chan int) int { // want harnessonly
	select { // want harnessonly
	case v := <-a: // want harnessonly
		return v
	case v := <-b: // want harnessonly
		return v
	}
}

func drain(ch chan int) int { // want harnessonly
	total := 0
	for v := range ch { // want harnessonly
		total += v
	}
	return total
}
