//linttest:path repro/cmd/tool

// cmd/ mains talk to the real world by design and stay out of
// harnessonly's scope. Zero findings expected.
package fixture

func serve(requests chan string, handle func(string)) {
	done := make(chan struct{})
	go func() {
		for r := range requests {
			handle(r)
		}
		close(done)
	}()
	<-done
}
