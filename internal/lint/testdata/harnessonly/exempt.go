//linttest:path repro/internal/forkjoin

// internal/forkjoin is the whitelisted harness: the one package allowed
// to own goroutines, channels, select, and sync primitives. Zero
// findings expected.
package fixture

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup
	results := make(chan int, len(work))
	for _, w := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w()
			results <- 1
		}()
	}
	wg.Wait()
}
