//linttest:path repro/internal/cluster

// Known-good input for the harnessonly rule: single-threaded event-loop
// code, and parallelism obtained by CALLING the forkjoin harness — the
// one sanctioned route to concurrency.
package fixture

import "repro/internal/forkjoin"

type replica struct {
	clock float64
	done  []int
}

func (r *replica) advance(t float64) {
	r.clock = t
}

func advanceAll(reps []*replica, t float64, workers int) {
	forkjoin.Do(len(reps), workers, func(i int) {
		reps[i].advance(t)
	})
}

func sweep(rows []int) []int {
	return forkjoin.Map(len(rows), 0, func(i int) int {
		return rows[i] * 2
	})
}
