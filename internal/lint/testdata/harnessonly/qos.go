//linttest:path repro/internal/qos

// Known-bad inputs for the harnessonly rule in the qos package: the
// controller is pure policy on the single simulator thread, so guarding
// it with locks or feeding observations through channels is a finding —
// determinism comes from the event loop, not from synchronization.
package fixture

import "sync" // want harnessonly

type lockedController struct {
	mu        sync.Mutex
	decodeCap int
}

func (c *lockedController) cap() int {
	c.mu.Lock() // harnessonly flags the import and constructs, not calls
	defer c.mu.Unlock()
	return c.decodeCap
}

type observation struct {
	violation float64
}

func feed(obs chan observation) { // want harnessonly
	obs <- observation{violation: 1.0} // want harnessonly
}

func worker(obs chan observation, done chan struct{}) { // want harnessonly harnessonly
	go func() { // want harnessonly
		for o := range obs { // want harnessonly
			_ = o
		}
		done <- struct{}{} // want harnessonly
	}()
}
