//linttest:path repro/internal/resilience

// Known-bad inputs for the harnessonly rule in the resilience package:
// breakers, buckets, and hedgers are pure state machines driven from
// the router's event handlers on the outer simulator thread, so
// guarding them with locks or reporting outcomes through channels is a
// finding — serial ≡ parallel comes from the fork/join contract, not
// from synchronization.
package fixture

import "sync" // want harnessonly

type lockedBreaker struct {
	mu       sync.Mutex
	failures int
}

func (b *lockedBreaker) fail() {
	b.mu.Lock() // harnessonly flags the import and constructs, not calls
	defer b.mu.Unlock()
	b.failures++
}

type outcome struct {
	ok bool
}

func report(out chan outcome) { // want harnessonly
	out <- outcome{ok: true} // want harnessonly
}

func probeWorker(out chan outcome, done chan struct{}) { // want harnessonly harnessonly
	go func() { // want harnessonly
		for o := range out { // want harnessonly
			_ = o
		}
		done <- struct{}{} // want harnessonly
	}()
}
