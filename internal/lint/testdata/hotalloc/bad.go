//linttest:path repro/internal/fixture
package fixture

import "fmt"

type item struct{ v int }

type state struct {
	items []*item
	sink  any
}

func (s *state) reset()              {}
func (s *state) hook(func())         {}
func (s *state) run(f func() int)    { s.sink = nil; _ = f }
func (s *state) label(name string)   { _ = name }
func (s *state) use(b []byte) []byte { return b }

// Every diagnostic class fires once in this hot root.
//
//bullet:hotpath
func (s *state) badStep(n int, m map[string]int, name string) any {
	it := &item{v: n}             // want hotalloc
	s.items = append(s.items, it) // want hotalloc
	xs := []int{1, 2, n}          // want hotalloc
	lut := map[int]int{n: n}      // want hotalloc
	q := new(item)                // want hotalloc
	tmp := make([]int, n)         // want hotalloc
	msg := fmt.Sprintf("%d", n)   // want hotalloc hotalloc
	s.sink = n                    // want hotalloc
	s.hook(s.reset)               // want hotalloc
	cb := func() int { return n } // want hotalloc
	s.run(cb)
	tag := "r:" + name // want hotalloc
	s.label(tag)
	raw := []byte(msg) // want hotalloc
	_ = s.use(raw)
	for i := 0; i < n; i++ {
		defer s.reset() // want hotalloc
	}
	total := 0
	for _, v := range m { // want hotalloc
		total += v
	}
	_, _, _, _ = xs, lut, q, tmp
	if total > 0 {
		return it
	}
	return n // want hotalloc
}

// The walk follows static calls into unannotated module-local callees.
//
//bullet:hotpath
func (s *state) hotCaller(n int) {
	s.helper(n)
}

func (s *state) helper(n int) {
	for i := 0; i < n; i++ {
		s.items = append(s.items, nil) // want hotalloc
	}
}

// want hotalloc@1
//bullet:hotpath depth=banana
func misconfigured() {}

// want hotalloc@1
//bullet:hotpath-ignore
func ignoreNeedsReason() []int { return make([]int, 4) }
