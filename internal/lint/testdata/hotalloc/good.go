//linttest:path repro/internal/fixture
package fixture

import "fmt"

type ring struct {
	buf   []int
	total int
}

func (r *ring) apply(f func(int) int) { r.total = f(r.total) }

// Clean hot path: buffer reuse via [:0], arithmetic, slice ranges.
//
//bullet:hotpath
func (r *ring) step(xs []int) int {
	r.buf = r.buf[:0]
	for _, x := range xs {
		r.buf = append(r.buf, x*2)
	}
	sum := 0
	for _, v := range r.buf {
		sum += v
	}
	r.total += sum
	return sum
}

// Allocation inside panic arguments is exempt: the process is dying.
//
//bullet:hotpath
func (r *ring) guarded(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("ring: negative step %d", n))
	}
	return r.total + n
}

// coldSetup allocates deliberately; hotpath-ignore keeps the walk out.
//
//bullet:hotpath-ignore warm-up path, runs once per simulation
func (r *ring) coldSetup(n int) {
	r.buf = make([]int, 0, n)
}

// A hot root may call an ignored callee without findings.
//
//bullet:hotpath
func (r *ring) reset(n int) {
	if cap(r.buf) < n {
		r.coldSetup(n)
	}
	r.buf = r.buf[:0]
}

// depth=0 confines the check to the root body itself.
//
//bullet:hotpath depth=0
func (r *ring) shallow(xs []int) int {
	return r.expand(xs)
}

// expand allocates, but sits beyond its only hot caller's depth budget.
func (r *ring) expand(xs []int) int {
	grown := append([]int(nil), xs...)
	return len(grown)
}

// Capture-free literals and immediately-invoked closures do not allocate
// per use; pointer-shaped values cross interface boundaries for free.
//
//bullet:hotpath
func (r *ring) closures(n int) int {
	r.apply(func(x int) int { return x * 3 })
	m := func() int { return 2 }()
	var sink any
	sink = r
	_ = sink
	return n + m
}
