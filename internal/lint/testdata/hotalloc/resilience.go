//linttest:path repro/internal/fixture
package fixture

import "fmt"

// Pins the hotalloc contract on the router's admission fast path: the
// per-dispatch bucket check and breaker decision are pure arithmetic
// on receiver state (the sanctioned shape), while the tempting
// audit-trail variants — formatting a rejection reason or appending a
// decision log entry per dispatch — allocate on every request.

type tokenBucket struct {
	level    float64
	rate     float64
	burst    float64
	lastAt   float64
	rejected int
}

// Clean per-dispatch admission check: lazy refill and a compare, no
// heap traffic.
//
//bullet:hotpath
func (b *tokenBucket) allow(now, cost float64) bool {
	if elapsed := now - b.lastAt; elapsed > 0 {
		b.level += elapsed * b.rate
		if b.level > b.burst {
			b.level = b.burst
		}
	}
	b.lastAt = now
	if cost > b.level {
		b.rejected++
		return false
	}
	b.level -= cost
	return true
}

type decision struct {
	at   float64
	slot int
}

type auditedBucket struct {
	tokenBucket
	log     []decision
	lastWhy string
}

// Audit-trail variant: the per-dispatch log append and the formatted
// rejection reason both allocate on the admission fast path.
//
//bullet:hotpath
func (b *auditedBucket) allowAudited(now, cost float64, slot int) bool {
	ok := b.allow(now, cost)
	b.log = append(b.log, decision{at: now, slot: slot}) // want hotalloc
	if !ok {
		b.lastWhy = fmt.Sprintf("bucket reject at %.3f", now) // want hotalloc hotalloc
	}
	return ok
}

type probeState struct {
	state   int
	probeAt float64
}

// Clean breaker decision: pure reads of receiver state.
//
//bullet:hotpath
func (s *probeState) ready(now float64) bool {
	switch s.state {
	case 0: // closed
		return true
	case 1: // open
		return now >= s.probeAt
	}
	return s.state == 2 // half-open: one probe outstanding
}
