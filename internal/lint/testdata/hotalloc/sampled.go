//linttest:path repro/internal/fixture
package fixture

import "sort"

// Pins the hotalloc contract on the sampled backend's per-launch latency
// lookup (gpusim.LatencyTable.Sample): the manual binary search plus
// in-place interpolation is the sanctioned zero-alloc shape, while the
// tempting sort.Search closure allocates on every lookup.

type support struct {
	tokens int
	q      []float64
}

type latTable struct {
	sup []support
}

// Clean per-launch lookup: manual bracketing search, grid interpolation,
// no heap traffic.
//
//bullet:hotpath
func (t *latTable) sample(tokens int, u float64) float64 {
	lo, hi := 0, len(t.sup)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.sup[mid].tokens < tokens {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(t.sup) {
		lo = len(t.sup) - 1
	}
	q := t.sup[lo].q
	pos := u * float64(len(q)-1)
	i := int(pos)
	if i >= len(q)-1 {
		return q[len(q)-1]
	}
	return q[i] + (q[i+1]-q[i])*(pos-float64(i))
}

// The tempting shape: sort.Search's predicate closure captures the
// receiver and the key, allocating per lookup.
//
//bullet:hotpath
func (t *latTable) sampleSearch(tokens int) float64 {
	lo := sort.Search(len(t.sup), func(i int) bool { // want hotalloc hotalloc
		return t.sup[i].tokens >= tokens
	})
	if lo >= len(t.sup) {
		lo = len(t.sup) - 1
	}
	return t.sup[lo].q[0]
}
