//linttest:path repro/internal/fixture
package fixture

type node struct{ v int }

type pool struct {
	free  []*node
	chunk []node
}

// The miss path allocates a fresh arena chunk on purpose; the
// suppression carries the justification.
//
//bullet:hotpath
func (p *pool) get() *node {
	if n := len(p.free); n > 0 {
		out := p.free[n-1]
		p.free = p.free[:n-1]
		return out
	}
	if len(p.chunk) == 0 {
		//lint:ignore hotalloc pool miss grows the arena once; steady state reuses
		p.chunk = make([]node, 64)
	}
	out := &p.chunk[0]
	p.chunk = p.chunk[1:]
	return out
}

// put recycles a node; the free-list append is bounded by the arena size
// but not provably so, hence the justified suppression.
//
//bullet:hotpath
func (p *pool) put(n *node) {
	//lint:ignore hotalloc free list is bounded by arena size; grows at most once
	p.free = append(p.free, n)
}

// leak is the control: an unsuppressed finding must still fire.
//
//bullet:hotpath
func (p *pool) leak() *node {
	return new(node) // want hotalloc
}
