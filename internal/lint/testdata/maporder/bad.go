//linttest:path repro/internal/fixture

// Known-bad inputs for the maporder rule: loops whose effect depends on
// Go's randomized map iteration order.
package fixture

type record struct {
	name string
	v    float64
}

func firstKey(m map[string]int) string {
	for k := range m { // want maporder
		return k
	}
	return ""
}

func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // want maporder
		keys = append(keys, k)
	}
	return keys // never sorted: emitted order is random
}

func floatAccumulate(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m { // want maporder
		sum += v // float addition is order-sensitive in the low bits
	}
	return sum
}

func breakOut(m map[string]int, stop int) int {
	found := 0
	for _, v := range m { // want maporder
		if v == stop {
			found = v
			break // which key wins depends on iteration order
		}
	}
	return found
}

func sideEffects(m map[string]*record, log func(string)) {
	for k := range m { // want maporder
		log(k)
	}
}
