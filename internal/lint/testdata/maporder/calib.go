//linttest:path repro/internal/calib

// Pins the maporder contract on the calibration fit: operator tables are
// maps, so emitting sections or folding quantile floors straight out of
// range order is a finding; the collect-sort-range idiom the fit and the
// trace renderer use is the sanctioned shape.
package fixture

import "sort"

type calSupport struct {
	tokens int
}

// emitOps renders per-operator sections in map range order.
func emitOps(ops map[string][]calSupport) []string {
	var out []string
	for op := range ops { // want maporder
		out = append(out, op)
	}
	return out
}

// foldBuckets accumulates a fit statistic in map range order.
func foldBuckets(byTok map[int][]float64) float64 {
	floor := 0.0
	for _, samples := range byTok { // want maporder
		for _, s := range samples {
			if s > floor {
				floor = s
			}
		}
	}
	return floor
}

// sortedOps is the sanctioned idiom: collect keys, sort, then emit.
func sortedOps(ops map[string][]calSupport) []string {
	keys := make([]string, 0, len(ops))
	for k := range ops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
