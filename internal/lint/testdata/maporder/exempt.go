//linttest:path repro/bullet

// maporder is scoped to the internal tree; public-API glue outside it is
// not checked.
package fixture

func firstKeyOutsideInternal(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}
