//linttest:path repro/internal/fixture

// Known-good inputs for the maporder rule: the sorted-keys idiom and
// genuinely commutative accumulations.
package fixture

import "sort"

type pair struct {
	name string
	v    float64
}

func sortedIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedRecords(m map[string]float64) []pair {
	var recs []pair
	for k, v := range m {
		recs = append(recs, pair{name: k, v: v})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].name < recs[j].name })
	return recs
}

func intCount(m map[string][]int) int {
	n := 0
	for _, v := range m {
		n += len(v)
	}
	return n
}

func copyMap(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func dropZeros(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

func guardedCount(m map[string]int, min int) int {
	n := 0
	for _, v := range m {
		if v < min {
			continue
		}
		n++
	}
	return n
}
