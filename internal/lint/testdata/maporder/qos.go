//linttest:path repro/internal/qos

// Pins the maporder contract on per-tenant bookkeeping: emitting or
// accumulating per-tenant state by ranging a map is a finding (the order
// is randomized), while the collect-sort-range idiom and fixed-size
// class arrays are the sanctioned shapes.
package fixture

import "sort"

type tenantRow struct {
	tenant string
	tokens int
}

// emitRows publishes per-tenant rows straight out of map range order.
func emitRows(byTenant map[string]int) []tenantRow {
	var rows []tenantRow
	for tenant, tokens := range byTenant { // want maporder
		rows = append(rows, tenantRow{tenant: tenant, tokens: tokens})
	}
	return rows // never sorted: emitted order is random
}

// worstTenant ties a float comparison to map iteration order: ties
// break differently run to run.
func worstTenant(violation map[string]float64) string {
	worst, arg := 0.0, ""
	for tenant, v := range violation { // want maporder
		if v > worst {
			worst, arg = v, tenant
		}
	}
	return arg
}

// sortedRows is the sanctioned idiom: collect, sort, then emit.
func sortedRows(byTenant map[string]int) []tenantRow {
	keys := make([]string, 0, len(byTenant))
	for k := range byTenant {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]tenantRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, tenantRow{tenant: k, tokens: byTenant[k]})
	}
	return rows
}

// classTotals is the other sanctioned shape: per-class arrays indexed by
// a dense enum need no map at all.
func classTotals(byClass [3]int) int {
	return byClass[0] + byClass[1] + byClass[2]
}
