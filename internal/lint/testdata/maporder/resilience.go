//linttest:path repro/internal/resilience

// Pins the maporder contract on the router's in-flight bookkeeping:
// the flights table is a map keyed by request ID, so draining or
// accounting it in range order is a finding — the real router only
// ever looks flights up by key, and per-class counters live in
// fixed-size arrays indexed by QoS class.
package fixture

import "sort"

type flight struct {
	id   string
	reps []int
}

// drainFlights settles in-flight requests straight out of map range
// order: the settlement order leaks into completion timestamps.
func drainFlights(flights map[string]*flight) []string {
	var settled []string
	for id := range flights { // want maporder
		settled = append(settled, id)
	}
	return settled
}

// sumHeld folds per-replica held-dispatch delay in range order: float
// addition is order-sensitive in the low bits.
func sumHeld(held map[int]float64) float64 {
	total := 0.0
	for _, d := range held { // want maporder
		total += d
	}
	return total
}

// settleSorted is the sanctioned drain shape: collect IDs, sort, then
// settle in key order.
func settleSorted(flights map[string]*flight) []string {
	ids := make([]string, 0, len(flights))
	for id := range flights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// classCounters is the sanctioned accounting shape: a fixed-size array
// indexed by class, no map in sight.
func classCounters(rejects [3]int) int {
	total := 0
	for _, n := range rejects {
		total += n
	}
	return total
}
