//linttest:path repro/internal/fixture

// Known-bad inputs for the mergeorder rule: fork/join results produced
// or consumed in completion order instead of index-addressed slots.
package fixture

import "repro/internal/forkjoin"

func collectAppend(items []int) []int {
	var results []int
	forkjoin.Do(len(items), 0, func(i int) {
		results = append(results, items[i]*2) // want mergeorder
	})
	return results
}

func collectChannel(items []int) int {
	ch := make(chan int, len(items))
	forkjoin.Do(len(items), 0, func(i int) {
		ch <- items[i] // want mergeorder
	})
	close(ch)
	total := 0
	for v := range ch { // want mergeorder
		total += v
	}
	return total
}
