//linttest:path repro/internal/fixture

// Known-good inputs for the mergeorder rule: index-addressed result
// consumption, per-slot appends, and channel drains in functions that do
// not fork (out of the rule's scope; harnessonly polices those).
package fixture

import "repro/internal/forkjoin"

func collect(items []int) []int {
	return forkjoin.Map(len(items), 0, func(i int) int {
		return items[i] * 2
	})
}

func perSlotAppend(rows [][]int, extra []int) {
	forkjoin.Do(len(rows), 0, func(i int) {
		rows[i] = append(rows[i], extra[i])
	})
}

func drainWithoutFork(ch chan int) int {
	total := 0
	for v := range ch {
		total += v
	}
	return total
}
