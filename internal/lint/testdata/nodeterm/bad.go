//linttest:path repro/internal/fixture

// Known-bad inputs for the nodeterm rule: wall-clock reads, the global
// math/rand source, and environment lookups inside an internal package.
package fixture

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() float64 {
	t0 := time.Now()                // want nodeterm
	time.Sleep(time.Second)         // want nodeterm
	return time.Since(t0).Seconds() // want nodeterm
}

func globalRand() float64 {
	n := rand.Intn(10)                 // want nodeterm
	return rand.Float64() + float64(n) // want nodeterm
}

func hostEnv() string {
	return os.Getenv("BULLET_DEBUG") // want nodeterm
}

func timerChan() {
	<-time.After(time.Millisecond) // want nodeterm
}
