//linttest:path repro/cmd/fixture

// cmd/ mains talk to the real world by design: the same calls that are
// findings inside internal/ are fine here.
package fixture

import (
	"os"
	"time"
)

func wallClockAllowedInCmd() (float64, string) {
	t0 := time.Now()
	return time.Since(t0).Seconds(), os.Getenv("HOME")
}
