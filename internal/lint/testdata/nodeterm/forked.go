//linttest:path repro/cmd/tool

// nodeterm extends into forkjoin task bodies EVERYWHERE — even cmd/
// packages, which are otherwise out of scope. A forked task drawing from
// the wall clock or the global rand source, or iterating a map, makes
// results depend on the goroutine schedule. The same constructs outside
// the task body stay exempt in cmd/.
package fixture

import (
	"math/rand"
	"time"

	"repro/internal/forkjoin"
)

func sweep(rows []int, weights map[string]float64) []float64 {
	start := time.Now() // exempt: outside any task body, cmd/ scope
	out := forkjoin.Map(len(rows), 0, func(i int) float64 {
		sum := float64(time.Since(start)) // want nodeterm
		sum += rand.Float64()             // want nodeterm
		for _, w := range weights {       // want nodeterm
			sum += w
		}
		rng := rand.New(rand.NewSource(forkjoin.ForkSeed(1, i)))
		return sum + rng.Float64()
	})
	return out
}

func cmdScopeStaysExempt() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10))
}
