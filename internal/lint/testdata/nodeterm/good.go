//linttest:path repro/internal/fixture

// Known-good inputs for the nodeterm rule: explicitly seeded randomness
// and time handled as plain values (durations, simulated seconds).
package fixture

import (
	"math/rand"
	"time"
)

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.1, 1, 100)
	return r.Float64() + float64(z.Uint64())
}

func plainDurations(d time.Duration) float64 {
	// Duration arithmetic and formatting never read the host clock.
	return (d + 5*time.Millisecond).Seconds()
}

func simulatedNow(now func() float64) float64 {
	// The injected-clock pattern the rule exists to encourage.
	return now() + 0.25
}
