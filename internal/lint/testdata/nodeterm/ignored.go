//linttest:path repro/internal/fixture

// The //lint:ignore escape hatch: a well-formed directive suppresses the
// finding on its own line or the next; a directive without a reason is
// itself reported.
package fixture

import "time"

func suppressed() time.Time {
	//lint:ignore nodeterm boot banner only, never enters simulated state
	return time.Now()
}

func suppressedSameLine() time.Time {
	return time.Now() //lint:ignore nodeterm boot banner only
}

func malformed() time.Time {
	//lint:ignore nodeterm
	return time.Now() // want nodeterm ignore@-1
}
