//linttest:path repro/internal/sim

// Known-bad inputs for the nogoroutine rule inside a deterministic-core
// package: every concurrency construct is a finding.
package fixture

import "sync" // want nogoroutine

type mailbox struct {
	ch chan int // want nogoroutine
	mu sync.Mutex
}

func spawn(fn func()) {
	go fn() // want nogoroutine
}

func sendRecv(ch chan int) { // want nogoroutine
	ch <- 1 // want nogoroutine
	<-ch    // want nogoroutine
}

func waitEither(a, b chan int) int { // want nogoroutine
	select { // want nogoroutine
	case v := <-a: // want nogoroutine
		return v
	case v := <-b: // want nogoroutine
		return v
	}
}
