//linttest:path repro/internal/serving

// nogoroutine is scoped to the deterministic core; other internal
// packages may use concurrency (e.g. a serving frontend).
package fixture

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup
	results := make(chan int, len(work))
	for _, w := range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w()
			results <- 1
		}()
	}
	wg.Wait()
}
