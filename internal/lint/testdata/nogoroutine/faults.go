//linttest:path repro/internal/faults

// Pins that internal/faults is inside the nogoroutine core scope: fault
// injection must dispatch through sim events, never through goroutines
// or channels, or same-seed runs stop being bit-identical.
package fixture

type injector struct {
	fired chan int // want nogoroutine
}

func (in *injector) arm(events []func()) {
	for _, ev := range events {
		go ev() // want nogoroutine
	}
}
