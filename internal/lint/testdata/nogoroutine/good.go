//linttest:path repro/internal/sim

// Known-good input for the nogoroutine rule: single-threaded event-loop
// code, callbacks, and plain data structures.
package fixture

type event struct {
	at Time
	fn func()
}

// Time mirrors sim.Time.
type Time = float64

type queue struct {
	events []event
}

func (q *queue) push(at Time, fn func()) {
	q.events = append(q.events, event{at: at, fn: fn})
}

func (q *queue) step() bool {
	if len(q.events) == 0 {
		return false
	}
	e := q.events[0]
	q.events = q.events[1:]
	e.fn()
	return true
}
