//linttest:path repro/internal/kvcache

// Pins that internal/kvcache is inside the nogoroutine core scope: the
// pool's block accounting and the shrink drain protocol are exercised
// from engines, recovery paths, and fault handlers on one simulator
// thread — guarding them with locks or handing frees to a goroutine
// would hide ordering bugs the determinism suite exists to catch.
package fixture

import "sync" // want nogoroutine

type pool struct {
	mu      sync.Mutex
	retired chan int // want nogoroutine
}

func (p *pool) freeAsync(release func()) {
	go release() // want nogoroutine
}
