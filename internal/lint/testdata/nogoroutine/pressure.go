//linttest:path repro/internal/pressure

// Pins that internal/pressure is inside the nogoroutine core scope: the
// admission controller and recovery policy run on the single simulator
// thread, so backoff timers and preemption relief must dispatch through
// sim events — a goroutine or channel here would make same-seed overload
// sweeps diverge.
package fixture

type controller struct {
	relief chan int // want nogoroutine
}

func (c *controller) backoff(retry func()) {
	go retry() // want nogoroutine
}

func (c *controller) drain(done chan struct{}) { // want nogoroutine
	<-done // want nogoroutine
}
