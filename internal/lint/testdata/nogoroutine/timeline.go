//linttest:path repro/internal/timeline

// Pins that internal/timeline is inside the nogoroutine core scope: the
// recorder is mutated from inside sim callbacks and orders events by a
// sequence counter, so a background flusher goroutine or a channel-fed
// sink would race the counter and traces would stop being byte-identical.
package fixture

type recorder struct {
	sink chan string // want nogoroutine
	seq  uint64
}

func (r *recorder) span(name string) {
	r.seq++
	go func() { // want nogoroutine
		r.sink <- name // want nogoroutine
	}()
}
