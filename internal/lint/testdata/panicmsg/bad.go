//linttest:path repro/internal/fixture

// Known-bad inputs for the panicmsg rule: panics and log exits that drop
// all context.
package fixture

import (
	"errors"
	"log"
)

var errBoom = errors.New("boom")

func bareError() {
	panic(errBoom) // want panicmsg
}

func bareToken() {
	panic("unreachable") // want panicmsg
}

func bareNumber(code int) {
	panic(code) // want panicmsg
}

func logNoContext(err error) {
	log.Fatal(err) // want panicmsg
}

func loglnNoContext(err error) {
	log.Fatalln(err) // want panicmsg
}

func formatNoContext(err error) {
	log.Fatalf("%v", err) // want panicmsg
}
