//linttest:path repro/internal/fixture

// Known-good inputs for the panicmsg rule: every exit names the
// subsystem and what failed.
package fixture

import (
	"errors"
	"fmt"
	"log"
)

func formatted(n int) {
	panic(fmt.Sprintf("fixture: invalid level count %d", n))
}

func wrapped(err error) {
	panic(fmt.Errorf("fixture: loading profile: %w", err))
}

func constructed() {
	panic(errors.New("fixture: queue drained while request in flight"))
}

func literalWithContext() {
	panic("fixture: levels not sorted")
}

func concatenated(name string) {
	panic("fixture: unknown dataset " + name)
}

func helperBuilt(describe func() string) {
	panic(describe()) // helper calls are assumed to format a message
}

func logWithContext(err error) {
	log.Fatalf("fixture: replaying trace: %v", err)
}
