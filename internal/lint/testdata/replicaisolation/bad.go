//linttest:path repro/internal/fixture

// Known-bad inputs for the replicaisolation rule: forked task bodies
// leaking writes into package-level state, captured state, and foreign
// slots.
package fixture

import "repro/internal/forkjoin"

type acc struct{ n int }

func (a *acc) add(v int) { a.n += v }
func (a acc) get() int   { return a.n }

var total int

func sweep(rows []int, shared *acc, out []int) {
	forkjoin.Do(len(rows), 0, func(i int) {
		total++          // want replicaisolation
		shared.n++       // want replicaisolation
		out[0] = rows[i] // want replicaisolation
		shared.add(1)    // want replicaisolation
		alias := shared
		alias.n = 5 // want replicaisolation
		_ = shared.get()
		out[i] = rows[i]
	})
}

func mapLeaks(buf []byte, counts map[string]int) [][]byte {
	forkjoin.Do(2, 0, func(i int) {
		delete(counts, "stale") // want replicaisolation
	})
	return forkjoin.Map(4, 0, func(i int) []byte {
		return buf // want replicaisolation
	})
}
