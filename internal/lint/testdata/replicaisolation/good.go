//linttest:path repro/internal/fixture

// Known-good inputs for the replicaisolation rule: task bodies that own
// exactly their fresh state and their root[i] task-index slot, with
// per-task randomness derived through forkjoin.ForkSeed.
package fixture

import (
	"math/rand"

	"repro/internal/forkjoin"
)

type replica struct {
	clock float64
	done  []int
}

func (r *replica) advance(t float64) { r.clock = t }

func advanceAll(reps []*replica, t float64) {
	forkjoin.Do(len(reps), 0, func(i int) {
		reps[i].advance(t)
		reps[i].done = append(reps[i].done, 1)
	})
}

func sweep(rows []int, seed int64) []int {
	out := make([]int, len(rows))
	forkjoin.Do(len(rows), 0, func(i int) {
		rng := rand.New(rand.NewSource(forkjoin.ForkSeed(seed, i)))
		acc := 0
		for k := 0; k < rows[i]; k++ {
			acc += rng.Intn(10)
		}
		out[i] = acc
	})
	return out
}

func freshResults(rows []int) [][]int {
	return forkjoin.Map(len(rows), 0, func(i int) []int {
		local := make([]int, 0, rows[i])
		for k := 0; k < rows[i]; k++ {
			local = append(local, k)
		}
		return local
	})
}
