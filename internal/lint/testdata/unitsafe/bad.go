//linttest:path repro/internal/fixture

package fixture

import "repro/internal/units"

// deadline relabels a token budget as seconds: the conversion compiles
// (both are float64 underneath), which is why it needs a lint rule.
func deadline(arrival units.Seconds, budget units.Tokens) units.Seconds {
	return arrival + units.Seconds(budget) // want unitsafe
}

// launder strips the dimension through a bare numeric conversion instead
// of the sanctioned Float() escape.
func launder(d units.Seconds) float64 {
	return float64(d) // want unitsafe
}

// rawArg feeds an unlabelled magnitude to a unit-typed parameter.
func rawArg() units.Seconds {
	return after(0.25) // want unitsafe
}

func after(d units.Seconds) units.Seconds { return d }

// product computes seconds², a dimension the operand type cannot express.
func product(a, b units.Seconds) units.Seconds {
	return a * b // want unitsafe
}

// quotient is a dimensionless ratio still typed as seconds; use
// units.Ratio.
func quotient(a, b units.Seconds) units.Seconds {
	return a / b // want unitsafe
}
