//linttest:path repro/internal/calib

// Pins the unitsafe contract on the calibration harness: parsed
// latencies become units.Seconds exactly once, at the parse boundary, so
// raw numeric literals at unit-typed call sites and bare-float
// laundering are findings while boundary constructions and Ms() reads
// are not.
package fixture

import "repro/internal/units"

type calRow struct {
	tokens  int
	latency units.Seconds
}

func record(lat units.Seconds) {}

// rawLatency feeds an unlabelled magnitude where a parsed latency
// belongs.
func rawLatency() {
	record(0.000213) // want unitsafe
}

// launder strips the dimension with a bare conversion instead of the
// sanctioned Float()/Ms() accessors.
func launder(lat units.Seconds) float64 {
	return float64(lat) * 1e3 // want unitsafe
}

// parsed is the sanctioned construction: the dimension is applied to the
// raw parsed float at the boundary, once.
func parsed(tokens int, x float64) calRow {
	return calRow{tokens: tokens, latency: units.Seconds(x)}
}

// renderMs is the sanctioned read where the dimension is deliberately
// dropped for formatting.
func renderMs(lat units.Seconds) float64 { return lat.Ms() }
