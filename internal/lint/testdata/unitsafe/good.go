//linttest:path repro/internal/fixture

package fixture

import "repro/internal/units"

// ok exercises every sanctioned way in and out of the unit types:
// constructors from untyped constants and plain floats, scalar
// multiplication, the declared dimension-changing helpers, the zero
// sentinel, and the Float()/Ratio escapes.
func ok(arrival units.Seconds, bw units.BytesPerSec, moved units.Bytes) (units.Seconds, float64) {
	d := units.Scale(arrival, 2.5) // scalar multiply keeps the dimension
	d += moved.Div(bw)             // bytes / (bytes/sec) -> seconds, declared
	d += wait(0)                   // zero literal: universal sentinel, exempt
	d += units.Seconds(0.25)       // explicit constructor labels the magnitude
	half := d / 2                  // untyped constant operand is a scalar
	return half, units.Ratio(arrival, d) + d.Float()
}

func wait(d units.Seconds) units.Seconds { return d }

// okConst shows the named-constant idiom: a const carries a reviewed name
// for its magnitude, so it is not a raw literal.
const settle = 0.5

func okConst() units.Seconds { return wait(settle) }
