//linttest:path repro/internal/kvcache

// Pins the unitsafe contract on the KV pool's capacity planning: HBM
// budgets and per-token footprints are units.Bytes, so raw numeric
// literals and bare-float laundering at call sites are findings, while
// the sanctioned Scale/Ratio combinators are not.
package fixture

import "repro/internal/units"

// plan mirrors PlanBlocks: unit-typed byte budgets in, block count out.
func plan(hbm, weights, perToken units.Bytes, blockTokens int) int {
	free := hbm - weights
	perBlock := units.Scale(perToken, float64(blockTokens))
	return int(units.Ratio(free, perBlock))
}

// rawBudget feeds an unlabelled magnitude to a unit-typed parameter.
func rawBudget(perToken units.Bytes) int {
	return plan(80e9, units.Bytes(14e9), perToken, 16) // want unitsafe
}

// launderedFootprint strips the dimension with a bare conversion instead
// of Float().
func launderedFootprint(perToken units.Bytes, blockTokens int) float64 {
	return float64(perToken) * float64(blockTokens) // want unitsafe
}
