//linttest:path repro/internal/pressure

// Pins the unitsafe contract on the pressure controller's API surface:
// backoff delays are units.Seconds and retransfer payloads units.Bytes,
// so raw numeric literals and bare-float laundering at call sites are
// findings, while the sanctioned Scale/Div combinators are not.
package fixture

import "repro/internal/units"

type controller struct {
	backoffBase units.Seconds
	perToken    units.Bytes
}

// rawBackoff feeds an unlabelled magnitude to a unit-typed parameter.
func schedule(after units.Seconds, fn func()) {}

func rawBackoff() {
	schedule(0.256, nil) // want unitsafe
}

// launderedDelay strips the dimension with a bare conversion instead of
// Float().
func launderedDelay(d units.Seconds) float64 {
	return float64(d) * 2 // want unitsafe
}

// payload is the sanctioned shape: scaling a typed per-token footprint
// keeps the dimension, and the wire time comes from Div.
func (c *controller) payload(ctxTokens int, bw units.BytesPerSec) units.Seconds {
	return units.Scale(c.perToken, float64(ctxTokens)).Div(bw)
}
