//linttest:path repro/internal/qos

// Pins the unitsafe contract on the QoS controller's API surface: the
// control window is units.Seconds and step durations arrive typed, so
// raw numeric literals at unit-typed call sites and bare-float
// laundering are findings, while FromMs/Ms round-trips are not.
package fixture

import "repro/internal/units"

type controller struct {
	window units.Seconds
}

func schedule(at units.Seconds, fn func()) {}

// rawWindow feeds an unlabelled magnitude where a duration belongs.
func rawWindow() {
	schedule(0.25, nil) // want unitsafe
}

// launderedViolation strips the dimension with a bare conversion
// instead of the sanctioned Ms()/Float() accessors.
func launderedViolation(stepDur units.Seconds, targetMs float64) float64 {
	return float64(stepDur) * 1000 / targetMs // want unitsafe
}

// nextBoundary is the sanctioned shape: typed arithmetic end to end.
func (c *controller) nextBoundary(now units.Seconds) units.Seconds {
	return now + c.window
}

// violationRatio is the sanctioned read: Ms() names the unit at the
// boundary where the dimension is deliberately dropped.
func violationRatio(stepDur units.Seconds, targetMs float64) float64 {
	return stepDur.Ms() / targetMs
}
