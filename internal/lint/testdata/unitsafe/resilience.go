//linttest:path repro/internal/resilience

// Pins the unitsafe contract on the breaker's probe cadence and the
// bucket's refill arithmetic: probe delays and refill windows are
// units.Seconds, so raw literals at unit-typed call sites and
// bare-float laundering of elapsed time are findings, while typed
// backoff arithmetic and the sanctioned Float() boundary are not.
package fixture

import "repro/internal/units"

type probeBreaker struct {
	probeAfter units.Seconds
	probeAt    units.Seconds
}

func scheduleProbe(at units.Seconds) {}

// rawProbeDelay feeds an unlabelled magnitude where a duration belongs.
func rawProbeDelay() {
	scheduleProbe(0.5) // want unitsafe
}

// launderedRefill strips the dimension from the elapsed window with a
// bare conversion instead of the sanctioned Float() accessor.
func launderedRefill(elapsed units.Seconds, ratePerSec float64) float64 {
	return float64(elapsed) * ratePerSec // want unitsafe
}

// open is the sanctioned shape: typed backoff arithmetic end to end.
func (b *probeBreaker) open(now units.Seconds, streak int) {
	delay := b.probeAfter
	for i := 0; i < streak; i++ {
		delay = units.Scale(delay, 2)
	}
	b.probeAt = now + delay
}

// refill is the sanctioned read: Float() names the boundary where the
// elapsed window deliberately becomes a dimensionless token count.
func refill(elapsed units.Seconds, ratePerSec float64) float64 {
	return elapsed.Float() * ratePerSec
}
