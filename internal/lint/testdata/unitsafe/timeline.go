//linttest:path repro/internal/timeline

// Pins the unitsafe contract on the timeline recorder's API surface:
// span boundaries are units.Seconds of virtual time, so raw numeric
// literals and bare-float laundering at call sites are findings, while
// the sanctioned Float() escape (the exporter's microsecond conversion)
// is not.
package fixture

import "repro/internal/units"

type recorder struct{}

func (r *recorder) span(lane, name string, start, end units.Seconds) {}

// rawBounds feeds unlabelled magnitudes to the unit-typed span
// parameters.
func rawBounds(r *recorder) {
	r.span("gpu", "kernel", units.Seconds(0.5), 1.5) // want unitsafe
}

// launderedDuration strips the dimension with a bare conversion instead
// of Float().
func launderedDuration(start, end units.Seconds) float64 {
	return float64(end - start) // want unitsafe
}

// micros is the sanctioned shape: the exporter leaves the unit system
// through Float() exactly once, at the serialization boundary.
func micros(t units.Seconds) float64 {
	return t.Float() * 1e6
}
