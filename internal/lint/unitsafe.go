package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// UnitSafe enforces the dimensional-analysis contract of internal/units:
// a value typed units.Seconds (or FLOPs, Bytes, Tokens, ...) must keep
// its dimension until it crosses a declared boundary. Four shapes are
// findings:
//
//  1. Unit-mixing conversions: units.Seconds(x) where x is already a
//     different unit type. The conversion compiles — both sides are
//     float64 underneath — which is exactly why it needs a lint rule:
//     it silently relabels tokens as seconds.
//  2. Laundering: float64(x) (or any bare numeric conversion) of a
//     unit-typed value outside internal/units. The sanctioned escape is
//     the type's Float() method or a ratio/rate helper, both of which
//     name the operation.
//  3. Raw literals: a non-zero numeric literal passed directly to a
//     unit-typed parameter, e.g. NewBuffer(s, 0.21e-3). Zero stays
//     exempt (it is the universal sentinel and dimensionless); non-zero
//     magnitudes must be labelled at the call site with an explicit
//     conversion such as units.FromMs(0.21) or sim.Time(0.21e-3).
//  4. Unit*unit and unit/unit arithmetic between non-constant operands:
//     seconds*seconds is seconds² and seconds/seconds is a dimensionless
//     ratio, neither of which is expressible as the operand type Go
//     infers. Quotients go through units.Ratio or a Div helper;
//     products through a declared helper (e.g. SMs.Times -> SMSeconds).
//
// Multiplying or dividing by untyped constants and by plain float64
// scalars is dimension-preserving and stays idiomatic (t * 2,
// units.Scale(t, k)). internal/units itself is exempt: it is the one
// place allowed to look underneath the types.
type UnitSafe struct{}

func (UnitSafe) Name() string { return "unitsafe" }

func (UnitSafe) Doc() string {
	return "flag unit-mixing conversions, float64 laundering, raw literals to unit params, and unit×unit arithmetic"
}

func (UnitSafe) Check(p *Package) []Finding {
	unitsPath := p.Module + "/internal/units"
	if p.Path == unitsPath || p.Info == nil {
		return nil
	}
	var out []Finding
	add := func(pos token.Pos, msg string) {
		out = append(out, Finding{Pos: p.Fset.Position(pos), Rule: "unitsafe", Msg: msg})
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
					checkUnitConversion(p, n, unitsPath, add)
				} else {
					checkUnitArgs(p, n, unitsPath, add)
				}
			case *ast.BinaryExpr:
				checkUnitArith(p, n, unitsPath, add)
			}
			return true
		})
	}
	return out
}

// unitNamed returns the named type if t (after alias resolution) is one
// of the unit types: defined in unitsPath with a numeric underlying type.
func unitNamed(t types.Type, unitsPath string) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != unitsPath {
		return nil
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&(types.IsFloat|types.IsInteger) == 0 {
		return nil
	}
	return named
}

// shortName renders a type with package-name qualifiers ("units.Seconds").
func shortName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// checkUnitConversion flags T(x) conversions that relabel one unit as
// another (rule 1) or strip the unit onto a bare numeric type (rule 2).
// Constant operands are exempt: converting an untyped or constant value
// into a unit type is precisely how unit values are constructed.
func checkUnitConversion(p *Package, call *ast.CallExpr, unitsPath string, add func(token.Pos, string)) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	if p.Info.Types[arg].Value != nil {
		return
	}
	src := unitNamed(typeOf(p, arg), unitsPath)
	if src == nil {
		return
	}
	dst := typeOf(p, call.Fun)
	if dstUnit := unitNamed(dst, unitsPath); dstUnit != nil {
		if !types.Identical(dstUnit, src) {
			add(call.Pos(), "conversion "+shortName(src)+" -> "+shortName(dstUnit)+
				" relabels one unit as another; convert through an explicit units helper")
		}
		return
	}
	if b, ok := types.Unalias(dst).Underlying().(*types.Basic); ok &&
		b.Info()&(types.IsFloat|types.IsInteger) != 0 {
		add(call.Pos(), "conversion "+shortName(dst)+"("+shortName(src)+
			") launders the unit away; use its Float() escape or a units ratio/rate helper")
	}
}

// checkUnitArgs flags non-zero numeric literals passed directly to
// unit-typed parameters (rule 3).
func checkUnitArgs(p *Package, call *ast.CallExpr, unitsPath string, add func(token.Pos, string)) {
	sig, ok := typeOf(p, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		unit := unitNamed(pt, unitsPath)
		if unit == nil || !isNonZeroLiteral(p, arg) {
			continue
		}
		add(arg.Pos(), "raw numeric literal passed as "+shortName(unit)+
			"; label the magnitude with an explicit conversion (e.g. "+shortName(unit)+"(...) or units.FromMs)")
	}
}

// isNonZeroLiteral reports whether e is syntactically a numeric literal
// (possibly signed or parenthesized) with a non-zero value. Named
// constants are deliberately not literals: a const already carries a
// reviewed name for its magnitude.
func isNonZeroLiteral(p *Package, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return isNonZeroLiteral(p, x.X)
	case *ast.UnaryExpr:
		if x.Op != token.ADD && x.Op != token.SUB {
			return false
		}
		return isNonZeroLiteral(p, x.X)
	case *ast.BasicLit:
		if x.Kind != token.INT && x.Kind != token.FLOAT {
			return false
		}
		tv, ok := p.Info.Types[e]
		return ok && tv.Value != nil && constant.Sign(tv.Value) != 0
	}
	return false
}

// checkUnitArith flags * and / between two non-constant unit-typed
// operands (rule 4). Go's type rules only let identical defined types
// meet under these operators, so what reaches here is seconds*seconds or
// seconds/seconds — a dimension the operand type cannot represent.
func checkUnitArith(p *Package, n *ast.BinaryExpr, unitsPath string, add func(token.Pos, string)) {
	if n.Op != token.MUL && n.Op != token.QUO {
		return
	}
	for _, side := range [2]ast.Expr{n.X, n.Y} {
		if p.Info.Types[side].Value != nil {
			return
		}
	}
	x := unitNamed(typeOf(p, n.X), unitsPath)
	y := unitNamed(typeOf(p, n.Y), unitsPath)
	if x == nil || y == nil {
		return
	}
	if n.Op == token.QUO {
		add(n.OpPos, shortName(x)+" / "+shortName(y)+
			" yields a dimensionless ratio typed as the operand; use units.Ratio or a Div helper")
		return
	}
	add(n.OpPos, shortName(x)+" * "+shortName(y)+
		" has no declared dimension; multiply through a units helper or scale by a plain float64")
}
