// Package metrics defines the serving quality measurements of the paper's
// evaluation (§4.1): TTFT, normalized TTFT, TPOT, end-to-end latency,
// throughput, and SLO attainment (goodput), plus timeline series for the
// breakdown figures.
package metrics

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/units"
)

// SLO is a latency requirement pair (Table 2). TTFT is normalized by
// input length (ms per input token), following LoongServe, because raw
// TTFT scales with sequence length.
type SLO struct {
	NormTTFTMs float64 // ms per input token, P90 target
	TPOTMs     float64 // ms per output token, P90 target
}

// Table 2 of the paper.
var slos = map[string]SLO{
	"sharegpt":      {NormTTFTMs: 3.0, TPOTMs: 150},
	"azure-code":    {NormTTFTMs: 1.5, TPOTMs: 200},
	"arxiv-summary": {NormTTFTMs: 1.5, TPOTMs: 175},
}

// SLOFor returns the paper's latency requirements for a dataset,
// defaulting to the ShareGPT targets for unknown names.
func SLOFor(dataset string) SLO {
	if s, ok := slos[dataset]; ok {
		return s
	}
	return slos["sharegpt"]
}

// Request records the lifecycle timestamps of one served request. All
// times are unit-typed simulation seconds.
type Request struct {
	ID           string
	Dataset      string
	Arrival      units.Seconds
	PrefillStart units.Seconds
	FirstToken   units.Seconds // completion of prefill (first output token)
	DecodeStart  units.Seconds // first decode step (zero if decode never ran)
	Finish       units.Seconds // last output token
	InputTokens  int
	OutputTokens int
	// Tenant is the service-class tag carried from the workload request
	// (empty for single-tenant traces).
	Tenant string
}

// TTFT is time-to-first-token, measured from arrival (queueing included).
func (r Request) TTFT() units.Seconds { return r.FirstToken - r.Arrival }

// NormTTFTMs is TTFT in milliseconds per input token.
func (r Request) NormTTFTMs() float64 {
	if r.InputTokens <= 0 {
		return 0
	}
	return r.TTFT().Ms() / float64(r.InputTokens)
}

// TPOT is the mean time per output token after the first.
func (r Request) TPOT() units.Seconds {
	if r.OutputTokens <= 1 {
		return 0
	}
	return units.Over(r.Finish-r.FirstToken, float64(r.OutputTokens-1))
}

// TPOTMs is TPOT in milliseconds.
func (r Request) TPOTMs() float64 { return r.TPOT().Ms() }

// E2E is the total request latency.
func (r Request) E2E() units.Seconds { return r.Finish - r.Arrival }

// QueueDelay is the time from arrival to prefill start.
func (r Request) QueueDelay() units.Seconds { return r.PrefillStart - r.Arrival }

// KVTransferDelay is the gap between prefill completion and the first
// decode step — the engine hand-off cost. Zero when decode never ran
// (single-step requests completed at prefill).
func (r Request) KVTransferDelay() units.Seconds {
	if r.DecodeStart <= 0 {
		return 0
	}
	return r.DecodeStart - r.FirstToken
}

// MeetsSLO reports whether the request satisfies both constraints.
func (r Request) MeetsSLO(s SLO) bool {
	return r.NormTTFTMs() <= s.NormTTFTMs && r.TPOTMs() <= s.TPOTMs
}

// Validate panics on physically impossible timestamps; engines call it to
// catch bookkeeping bugs early.
func (r Request) Validate() {
	if r.PrefillStart < r.Arrival || r.FirstToken < r.PrefillStart || r.Finish < r.FirstToken {
		panic(fmt.Sprintf("metrics: request %s has inverted timeline: %+v", r.ID, r))
	}
	if 0 < r.DecodeStart && (r.DecodeStart < r.FirstToken || r.Finish < r.DecodeStart) {
		panic(fmt.Sprintf("metrics: request %s decode start outside [firstToken, finish]: %+v", r.ID, r))
	}
	if r.InputTokens <= 0 || r.OutputTokens <= 0 {
		panic(fmt.Sprintf("metrics: request %s has no tokens: %+v", r.ID, r))
	}
}

// Percentile returns the p-quantile (p in [0,1]) of xs using linear
// interpolation, preserving the element type (plain float64 or any
// float64-backed unit type). An empty slice yields NaN. The input is
// copied; hot paths that own a scratch buffer should use
// PercentileInPlace instead.
func Percentile[F ~float64](xs []F, p float64) F {
	s := append([]F(nil), xs...)
	return PercentileInPlace(s, p)
}

// PercentileInPlace is Percentile without the defensive copy: it sorts
// xs and therefore reorders the caller's slice. It exists for per-cycle
// callers (the scheduler's SLO predictions) that reuse a scratch buffer
// and cannot afford an allocation per call.
func PercentileInPlace[F ~float64](s []F, p float64) F {
	if len(s) == 0 {
		return F(math.NaN())
	}
	slices.Sort(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return F(float64(s[lo])*(1-frac) + float64(s[lo+1])*frac)
}

// Mean returns the arithmetic mean, NaN if empty. Like Percentile it is
// dimension-preserving over any float64-backed element type.
func Mean[F ~float64](xs []F) F {
	if len(xs) == 0 {
		return F(math.NaN())
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return F(sum / float64(len(xs)))
}

// Summary aggregates a completed run, matching the panels of Fig. 11.
type Summary struct {
	Requests int
	Duration units.Seconds // makespan: first arrival to last finish

	MeanTTFT     units.Seconds
	P90TTFT      units.Seconds
	MeanNormTTFT float64 // ms/token
	P90NormTTFT  float64
	MeanTPOTMs   float64
	P90TPOTMs    float64
	MeanE2E      units.Seconds
	MeanQueue    units.Seconds

	Throughput      float64 // completed requests per second
	TokenThroughput float64 // output tokens per second
	SLOAttainment   float64 // fraction of requests meeting both SLOs
	Goodput         float64 // SLO-meeting requests per second
}

// Summarize computes a Summary over completed requests against an SLO.
func Summarize(reqs []Request, slo SLO) Summary {
	if len(reqs) == 0 {
		return Summary{}
	}
	var ttft, e2e, queue []units.Seconds
	var norm, tpot []float64
	firstArrival := units.Inf[units.Seconds](1)
	lastFinish := units.Inf[units.Seconds](-1)
	met := 0
	outTokens := 0
	for _, r := range reqs {
		ttft = append(ttft, r.TTFT())
		norm = append(norm, r.NormTTFTMs())
		if r.OutputTokens > 1 {
			tpot = append(tpot, r.TPOTMs())
		}
		e2e = append(e2e, r.E2E())
		queue = append(queue, r.QueueDelay())
		if r.MeetsSLO(slo) {
			met++
		}
		outTokens += r.OutputTokens
		firstArrival = units.Min(firstArrival, r.Arrival)
		lastFinish = units.Max(lastFinish, r.Finish)
	}
	dur := lastFinish - firstArrival
	s := Summary{
		Requests:      len(reqs),
		Duration:      dur,
		MeanTTFT:      Mean(ttft),
		P90TTFT:       Percentile(ttft, 0.9),
		MeanNormTTFT:  Mean(norm),
		P90NormTTFT:   Percentile(norm, 0.9),
		MeanE2E:       Mean(e2e),
		MeanQueue:     Mean(queue),
		SLOAttainment: float64(met) / float64(len(reqs)),
	}
	if len(tpot) > 0 {
		s.MeanTPOTMs = Mean(tpot)
		s.P90TPOTMs = Percentile(tpot, 0.9)
	}
	if dur > 0 {
		s.Throughput = float64(len(reqs)) / dur.Float()
		s.TokenThroughput = float64(outTokens) / dur.Float()
		s.Goodput = float64(met) / dur.Float()
	}
	return s
}

// TenantSummary is one tenant's slice of a run, evaluated against that
// tenant's own (possibly relaxed) SLO.
type TenantSummary struct {
	Tenant string
	SLO    SLO
	Summary
}

// SummarizeByTenant groups completed requests by tenant tag and
// summarizes each group against the SLO sloFor returns for that tag.
// Results are sorted by tenant tag so rendering is deterministic.
func SummarizeByTenant(reqs []Request, sloFor func(tenant string) SLO) []TenantSummary {
	byTenant := make(map[string][]Request)
	for _, r := range reqs {
		byTenant[r.Tenant] = append(byTenant[r.Tenant], r)
	}
	tenants := make([]string, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	out := make([]TenantSummary, len(tenants))
	for i, t := range tenants {
		slo := sloFor(t)
		out[i] = TenantSummary{Tenant: t, SLO: slo, Summary: Summarize(byTenant[t], slo)}
	}
	return out
}

// Resilience aggregates fault-injection and recovery accounting for one
// serving run (or, summed, one cluster).
type Resilience struct {
	// FaultsInjected counts fault events that actually fired.
	FaultsInjected int
	// BatchAborts counts watchdog-cancelled prefill batches.
	BatchAborts int
	// Retried counts request re-executions (watchdog re-enqueues and
	// failover re-submissions); one request may contribute several.
	Retried int
	// Shed counts requests given up on after exhausting retries.
	Shed int
	// Recoveries counts completed repairs (SM health restorations,
	// link restorations, and replica restarts/readmissions).
	Recoveries int
	// Downtime is the injected outage volume (degrade durations, stall
	// lengths, recovery delays), summed over scheduled events — events
	// that never completed a repair (dropped, or folded into an
	// already-open outage) included.
	Downtime units.Seconds
	// RecoveryTime is the actual elapsed repair time attributed per
	// completed recovery event. Unlike Downtime it excludes fault
	// events that never recovered, so MTTR stays truthful when
	// cascading faults overlap (see MTTR).
	RecoveryTime units.Seconds

	// Router-tier resilience counters (internal/cluster, DESIGN.md §16).

	// BreakerOpens / BreakerCloses count per-replica circuit-breaker
	// closed→open trips and open→closed recoveries.
	BreakerOpens  int
	BreakerCloses int
	// Hedges counts hedged re-dispatch copies; HedgeWins counts copies
	// that finished before their primaries.
	Hedges    int
	HedgeWins int
	// RateLimited counts router admissions rejected by the per-tenant
	// token buckets; RateLimitedByClass splits it by service class,
	// indexed by qos.Class order (best-effort, standard, premium —
	// metrics cannot import qos without a cycle, so the indices are by
	// convention).
	RateLimited        int
	RateLimitedByClass [3]int
	// Drains counts graceful replica drain/restart cycles started;
	// Handoffs counts waiting requests handed off to peers during them.
	Drains   int
	Handoffs int
	// LinkFaults counts link degradation/loss events applied.
	LinkFaults int
}

// Add accumulates another run's counters into r.
func (r *Resilience) Add(o Resilience) {
	r.FaultsInjected += o.FaultsInjected
	r.BatchAborts += o.BatchAborts
	r.Retried += o.Retried
	r.Shed += o.Shed
	r.Recoveries += o.Recoveries
	r.Downtime += o.Downtime
	r.RecoveryTime += o.RecoveryTime
	r.BreakerOpens += o.BreakerOpens
	r.BreakerCloses += o.BreakerCloses
	r.Hedges += o.Hedges
	r.HedgeWins += o.HedgeWins
	r.RateLimited += o.RateLimited
	for c := range r.RateLimitedByClass {
		r.RateLimitedByClass[c] += o.RateLimitedByClass[c]
	}
	r.Drains += o.Drains
	r.Handoffs += o.Handoffs
	r.LinkFaults += o.LinkFaults
}

// MTTR returns the mean time to recover: actual attributed repair time
// per completed recovery. Runs recorded before per-event attribution
// existed (RecoveryTime zero with recoveries present) fall back to the
// legacy scheduled-downtime estimate, which overstates MTTR whenever
// cascading faults fold several scheduled outages into one repair.
func (r Resilience) MTTR() units.Seconds {
	if r.Recoveries == 0 {
		return 0
	}
	if r.RecoveryTime > 0 {
		return units.Over(r.RecoveryTime, float64(r.Recoveries))
	}
	return units.Over(r.Downtime, float64(r.Recoveries))
}

// Pressure aggregates the memory-pressure subsystem's accounting for one
// serving run (or, summed, one cluster): admission-control outcomes,
// decode preemptions, and the two recovery paths.
type Pressure struct {
	// AdmissionsDeferred counts prefill admissions pushed back by the
	// high-watermark gate (one request may contribute several).
	AdmissionsDeferred int
	// Preemptions counts decode sequences evicted under high watermark.
	Preemptions int
	// Recomputes / RecomputedTokens count preempted requests restored by
	// re-running their prefill, and the tokens recomputed doing so.
	Recomputes       int
	RecomputedTokens int
	// Retransfers / RetransferredBytes count preempted requests restored
	// by re-transferring their KV through the metadata buffer.
	Retransfers        int
	RetransferredBytes units.Bytes
	// Shed counts requests given up on by the pressure subsystem: hopeless
	// admissions and requests preempted past the retry budget.
	Shed int
	// KVShrinks counts live capacity-reduction faults applied to the pool.
	KVShrinks int
	// PeakOccupancy is the highest used/total block ratio observed at a
	// pressure decision point (above 1.0 while a shrink drain was
	// over-committed).
	PeakOccupancy float64
}

// Add accumulates another run's counters into p (peak occupancy takes
// the max).
func (p *Pressure) Add(o Pressure) {
	p.AdmissionsDeferred += o.AdmissionsDeferred
	p.Preemptions += o.Preemptions
	p.Recomputes += o.Recomputes
	p.RecomputedTokens += o.RecomputedTokens
	p.Retransfers += o.Retransfers
	p.RetransferredBytes += o.RetransferredBytes
	p.Shed += o.Shed
	p.KVShrinks += o.KVShrinks
	if o.PeakOccupancy > p.PeakOccupancy {
		p.PeakOccupancy = o.PeakOccupancy
	}
}

// Series is a time-ordered sampled signal for timeline figures (Fig. 12).
type Series struct {
	T []units.Seconds
	V []float64
}

// Add appends a sample; time must be nondecreasing.
func (s *Series) Add(t units.Seconds, v float64) {
	if n := len(s.T); n > 0 && t < s.T[n-1] {
		panic(fmt.Sprintf("metrics: series time went backwards: %v after %v", t, s.T[n-1]))
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// At returns the most recent value at or before t (step interpolation),
// or 0 before the first sample.
func (s *Series) At(t units.Seconds) float64 {
	// Search returns the first index with T[i] >= t, so T[i] <= t holds
	// exactly when T[i] == t — an ordering comparison stands in for exact
	// float equality.
	i := sort.Search(len(s.T), func(i int) bool { return s.T[i] >= t })
	if i < len(s.T) && s.T[i] <= t {
		// Return the last sample at exactly t.
		for i+1 < len(s.T) && s.T[i+1] <= t {
			i++
		}
		return s.V[i]
	}
	if i == 0 {
		return 0
	}
	return s.V[i-1]
}

// Resample returns the series evaluated at n evenly spaced points over
// [t0, t1].
func (s *Series) Resample(t0, t1 units.Seconds, n int) []float64 {
	out := make([]float64, n)
	if n == 1 {
		out[0] = s.At(t0)
		return out
	}
	for i := 0; i < n; i++ {
		t := t0 + units.Over(units.Scale(t1-t0, float64(i)), float64(n-1))
		out[i] = s.At(t)
	}
	return out
}

// TimeAverage integrates the step series over [t0, t1] and divides by the
// window, useful for average SM allocation / batch occupancy.
func (s *Series) TimeAverage(t0, t1 units.Seconds) float64 {
	if t1 <= t0 || len(s.T) == 0 {
		return 0
	}
	total := 0.0
	prevT, prevV := t0, s.At(t0)
	for i, tt := range s.T {
		if tt <= t0 {
			continue
		}
		if tt >= t1 {
			break
		}
		total += prevV * (tt - prevT).Float()
		prevT, prevV = tt, s.V[i]
	}
	total += prevV * (t1 - prevT).Float()
	return total / (t1 - t0).Float()
}
