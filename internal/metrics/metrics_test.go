package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func req(arr, start, first, fin units.Seconds, in, out int) Request {
	return Request{
		ID: "r", Arrival: arr, PrefillStart: start, FirstToken: first,
		Finish: fin, InputTokens: in, OutputTokens: out,
	}
}

func TestRequestDerivedMetrics(t *testing.T) {
	r := req(0, 0.1, 0.5, 2.5, 1000, 21)
	if got := r.TTFT(); got != 0.5 {
		t.Fatalf("TTFT = %v", got)
	}
	if got := r.NormTTFTMs(); got != 0.5 {
		t.Fatalf("NormTTFT = %v ms/token, want 0.5", got)
	}
	if got := r.TPOT(); units.Abs(got-0.1) > 1e-12 {
		t.Fatalf("TPOT = %v, want 0.1", got)
	}
	if got := r.E2E(); got != 2.5 {
		t.Fatalf("E2E = %v", got)
	}
	if got := r.QueueDelay(); units.Abs(got-0.1) > 1e-12 {
		t.Fatalf("QueueDelay = %v", got)
	}
}

func TestSingleTokenRequestTPOT(t *testing.T) {
	r := req(0, 0, 1, 1, 10, 1)
	if r.TPOT() != 0 {
		t.Fatal("single-token request should have zero TPOT")
	}
}

func TestMeetsSLO(t *testing.T) {
	slo := SLO{NormTTFTMs: 1.5, TPOTMs: 200}
	good := req(0, 0, 1.0, 3.0, 1000, 11) // 1ms/token, 200ms TPOT
	if !good.MeetsSLO(slo) {
		t.Fatal("compliant request rejected")
	}
	slowPrefill := req(0, 0, 2.0, 4.0, 1000, 11) // 2ms/token
	if slowPrefill.MeetsSLO(slo) {
		t.Fatal("TTFT violator accepted")
	}
	slowDecode := req(0, 0, 1.0, 4.0, 1000, 11) // 300ms TPOT
	if slowDecode.MeetsSLO(slo) {
		t.Fatal("TPOT violator accepted")
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inverted timeline accepted")
		}
	}()
	req(5, 1, 2, 3, 10, 10).Validate()
}

func TestSLOFor(t *testing.T) {
	if s := SLOFor("azure-code"); s.NormTTFTMs != 1.5 || s.TPOTMs != 200 {
		t.Fatalf("azure-code SLO = %+v", s)
	}
	if s := SLOFor("sharegpt"); s.NormTTFTMs != 3.0 || s.TPOTMs != 150 {
		t.Fatalf("sharegpt SLO = %+v", s)
	}
	if s := SLOFor("arxiv-summary"); s.NormTTFTMs != 1.5 || s.TPOTMs != 175 {
		t.Fatalf("arxiv SLO = %+v", s)
	}
	if s := SLOFor("unknown"); s != SLOFor("sharegpt") {
		t.Fatal("unknown dataset should default to sharegpt")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("p50 = %v, want 2.5", got)
	}
	if !math.IsNaN(Percentile[float64](nil, 0.5)) {
		t.Fatal("empty percentile should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	slo := SLO{NormTTFTMs: 2, TPOTMs: 100}
	reqs := []Request{
		req(0, 0, 0.1, 1.0, 100, 11),  // 1ms/tok, 90ms TPOT: meets
		req(1, 1, 1.5, 4.0, 100, 11),  // 5ms/tok: violates TTFT
		req(2, 2, 2.1, 5.0, 100, 11),  // 1ms/tok, 290ms TPOT: violates TPOT
		req(3, 3, 3.05, 3.9, 100, 11), // meets
	}
	s := Summarize(reqs, slo)
	if s.Requests != 4 {
		t.Fatalf("requests = %d", s.Requests)
	}
	if math.Abs(s.SLOAttainment-0.5) > 1e-12 {
		t.Fatalf("attainment = %v, want 0.5", s.SLOAttainment)
	}
	if units.Abs(s.Duration-5.0) > 1e-12 {
		t.Fatalf("duration = %v, want 5", s.Duration)
	}
	if math.Abs(s.Throughput-4.0/5.0) > 1e-12 {
		t.Fatalf("throughput = %v", s.Throughput)
	}
	if math.Abs(s.TokenThroughput-44.0/5.0) > 1e-12 {
		t.Fatalf("token throughput = %v", s.TokenThroughput)
	}
	if s.MeanTTFT <= 0 || s.P90TTFT < s.MeanTTFT/10 {
		t.Fatalf("ttft stats: %+v", s)
	}
	if math.Abs(s.Goodput-2.0/5.0) > 1e-12 {
		t.Fatalf("goodput = %v, want 0.4 (2 SLO-met over 5s)", s.Goodput)
	}
	if e := Summarize(nil, slo); e.Requests != 0 {
		t.Fatal("empty summarize")
	}
}

func TestResilienceAddAndMTTR(t *testing.T) {
	a := Resilience{FaultsInjected: 3, BatchAborts: 1, Retried: 2, Shed: 1, Recoveries: 2, Downtime: 4}
	b := Resilience{FaultsInjected: 1, Retried: 1, Recoveries: 2, Downtime: 2}
	a.Add(b)
	want := Resilience{FaultsInjected: 4, BatchAborts: 1, Retried: 3, Shed: 1, Recoveries: 4, Downtime: 6}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
	if got := a.MTTR(); units.Abs(got-1.5) > 1e-12 {
		t.Fatalf("MTTR = %v, want 1.5 (legacy scheduled-downtime fallback)", got)
	}
	if (Resilience{Downtime: 5}).MTTR() != 0 {
		t.Fatal("MTTR with zero recoveries should be 0")
	}
}

// TestResilienceMTTRPrefersAttributedTime is the overlapping-crash
// regression: two scheduled 4s outages whose windows overlap fold into
// ~5s of actual repair work, and MTTR must reflect the attributed time,
// not the scheduled sum.
func TestResilienceMTTRPrefersAttributedTime(t *testing.T) {
	r := Resilience{Recoveries: 2, Downtime: 8, RecoveryTime: 5}
	if got := r.MTTR(); units.Abs(got-2.5) > 1e-12 {
		t.Fatalf("MTTR = %v, want 2.5 (RecoveryTime/Recoveries)", got)
	}
	// Without attribution the legacy estimate overstates: 8/2 = 4.
	legacy := Resilience{Recoveries: 2, Downtime: 8}
	if got := legacy.MTTR(); units.Abs(got-4) > 1e-12 {
		t.Fatalf("legacy MTTR = %v, want 4", got)
	}
}

// TestResilienceAddRouterCounters: the router-tier growth fields must
// survive aggregation.
func TestResilienceAddRouterCounters(t *testing.T) {
	a := Resilience{
		RecoveryTime: 1, BreakerOpens: 2, BreakerCloses: 1, Hedges: 3, HedgeWins: 1,
		RateLimited: 4, RateLimitedByClass: [3]int{1, 2, 1}, Drains: 1, Handoffs: 5, LinkFaults: 6,
	}
	a.Add(a)
	want := Resilience{
		RecoveryTime: 2, BreakerOpens: 4, BreakerCloses: 2, Hedges: 6, HedgeWins: 2,
		RateLimited: 8, RateLimitedByClass: [3]int{2, 4, 2}, Drains: 2, Handoffs: 10, LinkFaults: 12,
	}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestSeriesAtAndResample(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 20)
	s.Add(4, 40)
	if got := s.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v, want 0 (before first)", got)
	}
	if got := s.At(1); got != 10 {
		t.Fatalf("At(1) = %v", got)
	}
	if got := s.At(3); got != 20 {
		t.Fatalf("At(3) = %v (step hold)", got)
	}
	if got := s.At(5); got != 40 {
		t.Fatalf("At(5) = %v", got)
	}
	r := s.Resample(1, 4, 4)
	want := []float64{10, 20, 20, 40}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("resample = %v, want %v", r, want)
		}
	}
}

func TestSeriesDuplicateTimes(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(1, 15)
	if got := s.At(1); got != 15 {
		t.Fatalf("At(1) = %v, want latest sample 15", got)
	}
}

func TestSeriesTimeAverage(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 20)
	// Over [0,2]: 10 for 1s, 20 for 1s → avg 15.
	if got := s.TimeAverage(0, 2); math.Abs(got-15) > 1e-12 {
		t.Fatalf("TimeAverage = %v, want 15", got)
	}
	// Over [0.5, 1.5]: 10 for 0.5s, 20 for 0.5s → 15.
	if got := s.TimeAverage(0.5, 1.5); math.Abs(got-15) > 1e-12 {
		t.Fatalf("TimeAverage = %v, want 15", got)
	}
}

func TestSeriesBackwardsTimePanics(t *testing.T) {
	var s Series
	s.Add(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time accepted")
		}
	}()
	s.Add(1, 1)
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(seed int64, nU uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nU%50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0001; p += 0.1 {
			v := Percentile(xs, math.Min(p, 1))
			if v < prev-1e-12 || v < sorted[0]-1e-12 || v > sorted[n-1]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: SLO attainment is always in [0,1] and consistent with a direct
// count.
func TestPropertySLOAttainment(t *testing.T) {
	f := func(seed int64, nU uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nU%40) + 1
		slo := SLO{NormTTFTMs: 2, TPOTMs: 100}
		reqs := make([]Request, n)
		met := 0
		for i := range reqs {
			arr := units.Seconds(i)
			first := arr + units.Seconds(rng.Float64())
			fin := first + units.Seconds(rng.Float64()*3)
			reqs[i] = req(arr, arr, first, fin, rng.Intn(2000)+1, rng.Intn(100)+2)
			if reqs[i].MeetsSLO(slo) {
				met++
			}
		}
		s := Summarize(reqs, slo)
		return math.Abs(s.SLOAttainment-float64(met)/float64(n)) < 1e-12 &&
			s.SLOAttainment >= 0 && s.SLOAttainment <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummarize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]Request, 1000)
	for i := range reqs {
		arr := units.Seconds(float64(i) * 0.05)
		first := arr + units.Seconds(rng.Float64())
		reqs[i] = req(arr, arr, first, first+units.Seconds(rng.Float64()*5), 500, 100)
	}
	slo := SLOFor("sharegpt")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Summarize(reqs, slo)
	}
}

func TestKVTransferDelay(t *testing.T) {
	r := req(0, 0.1, 0.5, 2.5, 1000, 21)
	r.DecodeStart = 0.7
	if got := r.KVTransferDelay(); units.Abs(got-0.2) > 1e-12 {
		t.Fatalf("KVTransferDelay = %v, want 0.2", got)
	}
	// Decode never ran (single-step request): no hand-off cost.
	r.DecodeStart = 0
	if got := r.KVTransferDelay(); got != 0 {
		t.Fatalf("KVTransferDelay = %v, want 0 without decode", got)
	}
}

func TestNormTTFTZeroInputTokens(t *testing.T) {
	r := req(0, 0, 1, 2, 0, 5)
	if got := r.NormTTFTMs(); got != 0 {
		t.Fatalf("NormTTFTMs = %v, want 0 with no input tokens", got)
	}
}

func TestValidatePanicCases(t *testing.T) {
	valid := req(0, 0.1, 0.5, 2.5, 1000, 21)
	valid.DecodeStart = 0.7
	valid.Validate() // must not panic
	for name, r := range map[string]Request{
		"decode before first token": func() Request {
			r := valid
			r.DecodeStart = 0.3
			return r
		}(),
		"decode after finish": func() Request {
			r := valid
			r.DecodeStart = 3.0
			return r
		}(),
		"no tokens": req(0, 0.1, 0.5, 2.5, 0, 0),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			r.Validate()
		}()
	}
}

func TestPressureAdd(t *testing.T) {
	a := Pressure{
		AdmissionsDeferred: 1, Preemptions: 2, Recomputes: 3, RecomputedTokens: 4,
		Retransfers: 5, RetransferredBytes: 6, Shed: 7, KVShrinks: 8, PeakOccupancy: 0.5,
	}
	b := a
	b.PeakOccupancy = 0.9
	a.Add(b)
	if a.AdmissionsDeferred != 2 || a.Preemptions != 4 || a.Recomputes != 6 ||
		a.RecomputedTokens != 8 || a.Retransfers != 10 || a.RetransferredBytes != 12 ||
		a.Shed != 14 || a.KVShrinks != 16 {
		t.Fatalf("sum: %+v", a)
	}
	if a.PeakOccupancy != 0.9 {
		t.Fatalf("peak = %v, want max 0.9", a.PeakOccupancy)
	}
	// Max must not regress when the accumulator already holds the peak.
	a.Add(Pressure{PeakOccupancy: 0.1})
	if a.PeakOccupancy != 0.9 {
		t.Fatalf("peak regressed to %v", a.PeakOccupancy)
	}
}

func TestSeriesLen(t *testing.T) {
	var s Series
	if s.Len() != 0 {
		t.Fatalf("empty series Len = %d", s.Len())
	}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}
