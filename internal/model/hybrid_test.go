package model

import (
	"testing"
	"testing/quick"

	"repro/internal/gpusim"
	"repro/internal/units"
)

func sumWork(ks []gpusim.Kernel) (flops units.FLOPs, bytes units.Bytes) {
	for _, k := range ks {
		flops += k.FLOPs
		bytes += k.Bytes
	}
	return
}

func TestHybridLayerKernelsComposition(t *testing.T) {
	c := Llama31_8B()
	ks := c.HybridLayerKernels([]int{512, 256}, []int{0, 1024}, 32, 2048, "h")
	// Expect: norm1, qkv, 2 prefill attn, 1 decode attn, oproj, norm2,
	// gateup, down = 9 kernels.
	if len(ks) != 9 {
		t.Fatalf("kernels = %d, want 9", len(ks))
	}
	attn := 0
	for _, k := range ks {
		if k.Name == "attn" {
			attn++
		}
	}
	if attn != 3 {
		t.Fatalf("attention kernels = %d, want 3", attn)
	}
	// Linear kernels process 512+256+32 = 800 rows: their FLOPs must
	// match a 800-token prefill layer's linear kernels.
	ref := c.PrefillLayerKernels(800, 0, "h")
	for i, name := range []string{"qkv", "oproj", "gateup", "down"} {
		_ = i
		var got, want gpusim.Kernel
		for _, k := range ks {
			if k.Name == name {
				got = k
			}
		}
		for _, k := range ref {
			if k.Name == name {
				want = k
			}
		}
		if units.Abs(got.FLOPs-want.FLOPs) > 1 {
			t.Errorf("%s FLOPs = %g, want %g", name, got.FLOPs, want.FLOPs)
		}
	}
}

func TestHybridDegeneratesToDecodeOnly(t *testing.T) {
	c := Llama31_8B()
	ks := c.HybridLayerKernels(nil, nil, 16, 512, "h")
	ref := c.DecodeLayerKernels(16, 512, "h")
	if len(ks) != len(ref) {
		t.Fatalf("decode-only hybrid has %d kernels, want %d", len(ks), len(ref))
	}
	gf, gb := sumWork(ks)
	wf, wb := sumWork(ref)
	if gf != wf || gb != wb {
		t.Fatal("decode-only hybrid work mismatch")
	}
}

func TestHybridDegeneratesToPrefillOnly(t *testing.T) {
	c := Llama31_8B()
	ks := c.HybridLayerKernels([]int{1024}, []int{0}, 0, 0, "h")
	ref := c.PrefillBatchLayerKernels([]int{1024}, []int{0}, "h")
	gf, gb := sumWork(ks)
	wf, wb := sumWork(ref)
	if gf != wf || gb != wb {
		t.Fatal("prefill-only hybrid work mismatch")
	}
}

func TestHybridEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty hybrid accepted")
		}
	}()
	Tiny().HybridLayerKernels(nil, nil, 0, 0, "h")
}

func TestHybridZeroLengthChunkSkipped(t *testing.T) {
	c := Tiny()
	ks := c.HybridLayerKernels([]int{64, 0}, []int{0, 32}, 4, 64, "h")
	attn := 0
	for _, k := range ks {
		if k.Name == "attn" {
			attn++
		}
	}
	// One prefill attention (the zero-length chunk contributes none)
	// plus one decode attention.
	if attn != 2 {
		t.Fatalf("attention kernels = %d, want 2", attn)
	}
}

func TestPrefillBatchMismatchedLensPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lens accepted")
		}
	}()
	Tiny().PrefillBatchLayerKernels([]int{10, 20}, []int{0}, "t")
}

func TestPrefillBatchEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty batch accepted")
		}
	}()
	Tiny().PrefillBatchLayerKernels(nil, nil, "t")
}

func TestPrefillBatchNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-length sequence accepted")
		}
	}()
	Tiny().PrefillBatchLayerKernels([]int{128, 0}, []int{0, 0}, "t")
}

func TestDecodeLayerPanicsOnZeroBatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero batch accepted")
		}
	}()
	Tiny().DecodeLayerKernels(0, 16, "t")
}

func TestQwenPreset(t *testing.T) {
	c := Qwen2_7B()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// ~7.6B params.
	if p := c.ParamCount(); p < 6.5e9 || p > 8.5e9 {
		t.Fatalf("qwen2-7b params = %.3g", p)
	}
	// Its kernels must be well formed.
	for _, k := range c.PrefillLayerKernels(1024, 0, "q") {
		if k.FLOPs < 0 || k.Bytes <= 0 {
			t.Fatalf("bad kernel %+v", k)
		}
	}
	if k := c.DecodeStepKernel(8, 256, "q"); k.Bytes <= 0 {
		t.Fatalf("bad decode step %+v", k)
	}
}

// Property: hybrid work equals the sum of its parts (linear over total
// rows + per-sequence attention + decode attention), for any split.
func TestPropertyHybridWorkConservation(t *testing.T) {
	c := Tiny()
	f := func(aU, bU uint8, batchU uint8) bool {
		a := int(aU%200) + 1
		b := int(bU%200) + 1
		batch := int(batchU%32) + 1
		hy := c.HybridLayerKernels([]int{a, b}, []int{0, 64}, batch, 128, "h")
		// Linear rows = a+b+batch; attention separate.
		var attnF, linF units.FLOPs
		var attnB, linB units.Bytes
		for _, k := range hy {
			if k.Name == "attn" {
				attnF += k.FLOPs
				attnB += k.Bytes
			} else {
				linF += k.FLOPs
				linB += k.Bytes
			}
		}
		ref := c.PrefillLayerKernels(a+b+batch, 0, "h")
		var refLinF units.FLOPs
		for _, k := range ref {
			if k.Name != "attn" {
				refLinF += k.FLOPs
			}
		}
		return units.Abs(linF-refLinF) < 1 && attnF > 0 && attnB > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregate(t *testing.T) {
	w := Aggregate([]gpusim.Kernel{{FLOPs: 1, Bytes: 2}, {FLOPs: 3, Bytes: 4}})
	if w.FLOPs != 4 || w.Bytes != 6 {
		t.Fatalf("aggregate = %+v", w)
	}
}

func TestLMHeadKernel(t *testing.T) {
	c := Llama31_8B()
	k := c.LMHeadKernel(4, "t")
	// 2 * rows * h * vocab FLOPs.
	want := units.FLOPs(2.0 * 4 * 4096 * 128256)
	if units.Abs(k.FLOPs-want) > 1 {
		t.Fatalf("lmhead FLOPs = %g, want %g", k.FLOPs, want)
	}
	if k.Grid <= 0 || k.Bytes <= 0 {
		t.Fatalf("bad kernel %+v", k)
	}
}
