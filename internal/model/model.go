// Package model describes transformer LLMs as arithmetic: for a given
// architecture it derives, per operator, the FLOPs, DRAM bytes and kernel
// grid sizes of prefill chunks and decode steps. These kernel inventories
// drive the GPU simulator and the performance estimator.
//
// The operator decomposition follows §2.1 of the paper: QKV projection,
// self-attention (FlashAttention-style for prefill, paged for decode),
// output projection and the gated MLP, with element-wise kernels (norms,
// residuals, RoPE, activation) in between.
package model

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/units"
)

// Tile sizes used to derive GEMM grids. They reproduce the wave
// quantization idle ratios of Table 1 (see DESIGN.md §8): cuBLAS-style
// 128×256 tiles for the wide projections, 128×128 for the down
// projection, and a 128-row block for FlashAttention.
const (
	gemmTileM     = 128
	wideTileN     = 256
	downTileN     = 128
	flashRowBlock = 128
)

// Achievable-efficiency constants (fraction of device peak), matching the
// kernel-level analysis in §2.2.3: dense GEMMs sustain ~92% of peak,
// attention kernels much less, and paged decode attention wastes DRAM
// traffic on irregular block gathers.
const (
	gemmEfficiency        = 0.92
	prefillAttnEfficiency = 0.60
	decodeAttnEfficiency  = 0.55
	pagedTrafficInflation = 1.25
	elementwiseBWFactor   = 6 // bytes moved per element per fused norm/rope kernel
)

// Config is a dense decoder-only transformer architecture.
type Config struct {
	Name             string
	HiddenSize       int // h
	NumLayers        int
	NumHeads         int // query heads
	NumKVHeads       int // GQA key/value heads
	HeadDim          int
	IntermediateSize int // MLP width i
	VocabSize        int
	BytesPerParam    int // 2 for FP16/BF16
	// TPDegree shards the model Megatron-style across this many GPUs
	// (0 or 1 = no tensor parallelism). Kernel builders then emit one
	// rank's per-layer work — column-parallel QKV/gate-up, head-split
	// attention, row-parallel OProj/down — plus the two per-layer
	// allreduces over the interconnect. Ranks are symmetric, so
	// simulating rank 0 models the whole group.
	TPDegree int
}

// TP returns a copy of the config sharded across n GPUs.
func (c Config) TP(n int) Config {
	c.TPDegree = n
	if n > 1 {
		c.Name = fmt.Sprintf("%s-tp%d", c.Name, n)
	}
	return c
}

// tp returns the tensor-parallel degree as a float (≥1).
func (c Config) tp() float64 {
	if c.TPDegree > 1 {
		return float64(c.TPDegree)
	}
	return 1
}

// allReduceKernel models one ring allreduce of rows×hidden activations:
// 2(n-1)/n of the payload crosses the link; the payload passes through
// HBM on both sides.
func (c Config) allReduceKernel(rows int, tag string) gpusim.Kernel {
	n := c.tp()
	payload := float64(rows) * float64(c.HiddenSize) * float64(c.BytesPerParam)
	return gpusim.Kernel{
		Name:      "allreduce",
		Tag:       tag,
		Tokens:    rows,
		Bytes:     units.Bytes(2 * payload),
		CommBytes: units.Bytes(2 * (n - 1) / n * payload),
	}
}

// Llama31_8B returns the paper's evaluation model, Llama-3.1-8B.
func Llama31_8B() Config {
	return Config{
		Name:             "llama-3.1-8b",
		HiddenSize:       4096,
		NumLayers:        32,
		NumHeads:         32,
		NumKVHeads:       8,
		HeadDim:          128,
		IntermediateSize: 14336,
		VocabSize:        128256,
		BytesPerParam:    2,
	}
}

// Qwen2_7B returns an alternative mid-size model for cross-checks.
func Qwen2_7B() Config {
	return Config{
		Name:             "qwen2-7b",
		HiddenSize:       3584,
		NumLayers:        28,
		NumHeads:         28,
		NumKVHeads:       4,
		HeadDim:          128,
		IntermediateSize: 18944,
		VocabSize:        152064,
		BytesPerParam:    2,
	}
}

// Llama32_3B returns Llama-3.2-3B, a small-footprint preset.
func Llama32_3B() Config {
	return Config{
		Name:             "llama-3.2-3b",
		HiddenSize:       3072,
		NumLayers:        28,
		NumHeads:         24,
		NumKVHeads:       8,
		HeadDim:          128,
		IntermediateSize: 8192,
		VocabSize:        128256,
		BytesPerParam:    2,
	}
}

// Mistral7B returns Mistral-7B-v0.3.
func Mistral7B() Config {
	return Config{
		Name:             "mistral-7b",
		HiddenSize:       4096,
		NumLayers:        32,
		NumHeads:         32,
		NumKVHeads:       8,
		HeadDim:          128,
		IntermediateSize: 14336,
		VocabSize:        32768,
		BytesPerParam:    2,
	}
}

// Presets lists the built-in model configurations by name.
func Presets() map[string]Config {
	out := map[string]Config{}
	for _, c := range []Config{Llama31_8B(), Llama32_3B(), Qwen2_7B(), Mistral7B(), Tiny()} {
		out[c.Name] = c
	}
	return out
}

// Tiny returns a miniature config for fast unit tests.
func Tiny() Config {
	return Config{
		Name:             "tiny",
		HiddenSize:       256,
		NumLayers:        2,
		NumHeads:         4,
		NumKVHeads:       2,
		HeadDim:          64,
		IntermediateSize: 512,
		VocabSize:        1024,
		BytesPerParam:    2,
	}
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.HiddenSize <= 0 || c.NumLayers <= 0 || c.NumHeads <= 0 ||
		c.NumKVHeads <= 0 || c.HeadDim <= 0 || c.IntermediateSize <= 0 ||
		c.VocabSize <= 0 || c.BytesPerParam <= 0:
		return fmt.Errorf("model %q: non-positive dimension", c.Name)
	case c.NumHeads*c.HeadDim != c.HiddenSize:
		return fmt.Errorf("model %q: heads*headDim = %d != hidden %d",
			c.Name, c.NumHeads*c.HeadDim, c.HiddenSize)
	case c.NumHeads%c.NumKVHeads != 0:
		return fmt.Errorf("model %q: heads %d not divisible by KV heads %d",
			c.Name, c.NumHeads, c.NumKVHeads)
	}
	if n := c.TPDegree; n > 1 {
		if c.NumHeads%n != 0 || c.NumKVHeads%n != 0 || c.IntermediateSize%n != 0 || c.VocabSize%n != 0 {
			return fmt.Errorf("model %q: dimensions not divisible by TP degree %d", c.Name, n)
		}
	}
	return nil
}

// KVDim returns the per-token K (or V) width: kvHeads*headDim.
func (c Config) KVDim() int { return c.NumKVHeads * c.HeadDim }

// QKVOutDim returns the fused QKV projection output width.
func (c Config) QKVOutDim() int { return c.HiddenSize + 2*c.KVDim() }

// ParamCount returns the total parameter count, including untied embedding
// and LM head.
func (c Config) ParamCount() float64 {
	perLayer := float64(c.HiddenSize*c.QKVOutDim() + // QKV
		c.HiddenSize*c.HiddenSize + // OProj
		3*c.HiddenSize*c.IntermediateSize) // gate, up, down
	embed := 2 * float64(c.VocabSize*c.HiddenSize)
	return float64(c.NumLayers)*perLayer + embed
}

// WeightBytes returns the resident weight footprint in bytes, per rank
// under tensor parallelism.
func (c Config) WeightBytes() units.Bytes {
	return units.Over(units.Bytes(c.ParamCount()*float64(c.BytesPerParam)), c.tp())
}

// LayerWeightBytes returns one decoder layer's weight bytes.
func (c Config) LayerWeightBytes() units.Bytes {
	return units.Bytes(float64(c.HiddenSize*c.QKVOutDim()+c.HiddenSize*c.HiddenSize+
		3*c.HiddenSize*c.IntermediateSize) * float64(c.BytesPerParam))
}

// KVBytesPerTokenLayer returns the KV cache bytes one token occupies in
// one layer (K and V).
func (c Config) KVBytesPerTokenLayer() units.Bytes {
	return units.Over(units.Bytes(2*float64(c.KVDim())*float64(c.BytesPerParam)), c.tp())
}

// KVBytesPerToken returns the KV cache bytes one token occupies across all
// layers.
func (c Config) KVBytesPerToken() units.Bytes {
	return units.Scale(c.KVBytesPerTokenLayer(), float64(c.NumLayers))
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// gemmGrid returns the thread-block grid of an (rows × n) output GEMM.
func gemmGrid(rows, n, tileN int) int {
	return ceilDiv(rows, gemmTileM) * ceilDiv(n, tileN)
}

// OperatorNames lists the per-layer operator labels in execution order, as
// used in kernel names and in the Figure 2 / Table 1 breakdowns.
var OperatorNames = []string{"norm1", "qkv", "attn", "oproj", "norm2", "gateup", "down"}

// PrefillLayerKernels returns one decoder layer's kernel sequence for a
// prefill chunk of newTokens tokens whose sequences already have
// histTokens tokens of KV cache (histTokens > 0 under chunked prefill:
// each later chunk re-reads all earlier chunks' KV, the redundant-reload
// effect of §2.3).
//
// The tag is attached to every kernel for utilization accounting.
func (c Config) PrefillLayerKernels(newTokens, histTokens int, tag string) []gpusim.Kernel {
	return c.AppendPrefillLayerKernels(nil, newTokens, histTokens, tag)
}

// AppendPrefillLayerKernels is PrefillLayerKernels appending into dst,
// for per-cycle callers (the estimator's prediction loop) that reuse a
// scratch buffer instead of allocating a kernel list per call.
func (c Config) AppendPrefillLayerKernels(dst []gpusim.Kernel, newTokens, histTokens int, tag string) []gpusim.Kernel {
	if newTokens <= 0 {
		panic(fmt.Sprintf("model: PrefillLayerKernels with %d tokens", newTokens))
	}
	s := float64(newTokens)
	h := float64(c.HiddenSize)
	bpp := float64(c.BytesPerParam)
	qkvOut := float64(c.QKVOutDim())
	kvDim := float64(c.KVDim())
	inter := float64(c.IntermediateSize)
	hist := float64(histTokens)

	// Attention: each of the s new tokens attends to hist cached tokens
	// plus (causally) about half of the chunk itself. QK^T and A·V each
	// cost 2·keys·headDim per query row per head = 2·keys·h total.
	// Under tensor parallelism each rank holds heads/n query heads and
	// kvDim/n of the KV width (column-parallel QKV, head-split
	// attention, row-parallel OProj), and 1/n of the MLP width.
	n := c.tp()
	nInt := int(n)
	attnKeys := s*hist + s*(s+1)/2
	attnFLOPs := units.FLOPs(4 * h * attnKeys / n)
	attnBytes := units.Bytes((2*(hist+s)*kvDim/n + // K and V read (per-rank shard)
		2*s*h/n) * bpp) // Q in, O out

	dst = append(dst,
		gpusim.Kernel{
			Name: "norm1", Tag: tag, Tokens: newTokens,
			FLOPs: units.FLOPs(10 * s * h),
			Bytes: units.Bytes(elementwiseBWFactor * s * h * bpp),
		},
		gpusim.Kernel{
			Name: "qkv", Tag: tag, Tokens: newTokens,
			FLOPs:      units.FLOPs(2 * s * h * qkvOut / n),
			Bytes:      units.Bytes((h*qkvOut/n + s*h + s*qkvOut/n) * bpp),
			Grid:       gemmGrid(newTokens, c.QKVOutDim()/nInt, wideTileN),
			Efficiency: gemmEfficiency,
		},
		gpusim.Kernel{
			Name: "attn", Tag: tag, Tokens: newTokens + histTokens,
			FLOPs:      attnFLOPs,
			Bytes:      attnBytes,
			Grid:       c.NumHeads / nInt * ceilDiv(newTokens, flashRowBlock),
			Efficiency: prefillAttnEfficiency,
		},
		gpusim.Kernel{
			Name: "oproj", Tag: tag, Tokens: newTokens,
			FLOPs:      units.FLOPs(2 * s * h * h / n),
			Bytes:      units.Bytes((h*h/n + s*h/n + s*h) * bpp),
			Grid:       gemmGrid(newTokens, c.HiddenSize, wideTileN),
			Efficiency: gemmEfficiency,
		})
	if nInt > 1 {
		// Row-parallel outputs need allreducing: after OProj (insert
		// before norm2) and after down.
		dst = append(dst, c.allReduceKernel(newTokens, tag))
	}
	dst = append(dst,
		gpusim.Kernel{
			Name: "norm2", Tag: tag, Tokens: newTokens,
			FLOPs: units.FLOPs(10 * s * h),
			Bytes: units.Bytes(elementwiseBWFactor * s * h * bpp),
		},
		gpusim.Kernel{
			Name: "gateup", Tag: tag, Tokens: newTokens,
			FLOPs:      units.FLOPs(2 * s * h * 2 * inter / n),
			Bytes:      units.Bytes((2*h*inter/n + s*h + 2*s*inter/n) * bpp),
			Grid:       gemmGrid(newTokens, 2*c.IntermediateSize/nInt, wideTileN),
			Efficiency: gemmEfficiency,
		},
		gpusim.Kernel{
			Name: "down", Tag: tag, Tokens: newTokens,
			FLOPs:      units.FLOPs(2 * s * inter * h / n),
			Bytes:      units.Bytes((h*inter/n + s*inter/n + s*h) * bpp),
			Grid:       gemmGrid(newTokens, c.HiddenSize, downTileN),
			Efficiency: gemmEfficiency,
		})
	if nInt > 1 {
		dst = append(dst, c.allReduceKernel(newTokens, tag))
	}
	return dst
}

// PrefillBatchLayerKernels returns one decoder layer for a batch of
// prefill sequences processed together: the linear operators run over the
// concatenated rows while attention stays per-sequence (each sequence only
// attends to itself plus its own cached history).
func (c Config) PrefillBatchLayerKernels(seqLens, histLens []int, tag string) []gpusim.Kernel {
	if len(seqLens) == 0 {
		panic("model: empty prefill batch")
	}
	if len(histLens) != len(seqLens) {
		panic(fmt.Sprintf("model: %d seqs vs %d histories", len(seqLens), len(histLens)))
	}
	total := 0
	for _, n := range seqLens {
		if n <= 0 {
			panic(fmt.Sprintf("model: non-positive sequence length %d", n))
		}
		total += n
	}
	base := c.PrefillLayerKernels(total, 0, tag)
	out := make([]gpusim.Kernel, 0, len(base)+len(seqLens)-1)
	for _, k := range base {
		if k.Name != "attn" {
			out = append(out, k)
			continue
		}
		for i, n := range seqLens {
			per := c.PrefillLayerKernels(n, histLens[i], tag)
			for _, pk := range per {
				if pk.Name == "attn" {
					out = append(out, pk)
				}
			}
		}
	}
	return out
}

// DecodeLayerKernels returns one decoder layer's kernel sequence for a
// decode step over a batch of batch sequences with avgCtx average context
// length. Decode GEMMs are weight-bound GEMVs; decode attention reads the
// whole KV cache through the page table (traffic inflated by
// pagedTrafficInflation).
func (c Config) DecodeLayerKernels(batch int, avgCtx units.Tokens, tag string) []gpusim.Kernel {
	return c.AppendDecodeLayerKernels(nil, batch, avgCtx, tag)
}

// decodeGrid sizes a decode GEMV grid: one block row per 16 batch rows,
// tiled over the output width. Memory-bound, so the grid mostly matters
// for SM occupancy accounting rather than wave stalls.
func decodeGrid(batch, n int) int { return ceilDiv(batch, 16) * ceilDiv(n, downTileN) }

// AppendDecodeLayerKernels is DecodeLayerKernels appending into dst, for
// per-cycle callers that reuse a scratch buffer.
func (c Config) AppendDecodeLayerKernels(dst []gpusim.Kernel, batch int, avgCtx units.Tokens, tag string) []gpusim.Kernel {
	if batch <= 0 {
		panic(fmt.Sprintf("model: DecodeLayerKernels with batch %d", batch))
	}
	b := float64(batch)
	h := float64(c.HiddenSize)
	bpp := float64(c.BytesPerParam)
	qkvOut := float64(c.QKVOutDim())
	kvDim := float64(c.KVDim())
	inter := float64(c.IntermediateSize)
	ctx := avgCtx.Float()

	attnFLOPs := units.FLOPs(4 * h * b * ctx)
	attnBytes := units.Bytes((2*b*ctx*kvDim*pagedTrafficInflation + 2*b*h) * bpp)

	return append(dst,
		gpusim.Kernel{
			Name: "norm1", Tag: tag, Tokens: batch,
			FLOPs: units.FLOPs(10 * b * h),
			Bytes: units.Bytes(elementwiseBWFactor * b * h * bpp),
		},
		gpusim.Kernel{
			Name: "qkv", Tag: tag, Tokens: batch,
			FLOPs:      units.FLOPs(2 * b * h * qkvOut),
			Bytes:      units.Bytes((h*qkvOut + b*h + b*qkvOut) * bpp),
			Grid:       decodeGrid(batch, c.QKVOutDim()),
			Efficiency: gemmEfficiency,
		},
		gpusim.Kernel{
			Name: "attn", Tag: tag, Tokens: batch,
			FLOPs:      attnFLOPs,
			Bytes:      attnBytes,
			Grid:       batch * c.NumKVHeads,
			Efficiency: decodeAttnEfficiency,
		},
		gpusim.Kernel{
			Name: "oproj", Tag: tag, Tokens: batch,
			FLOPs:      units.FLOPs(2 * b * h * h),
			Bytes:      units.Bytes((h*h + 2*b*h) * bpp),
			Grid:       decodeGrid(batch, c.HiddenSize),
			Efficiency: gemmEfficiency,
		},
		gpusim.Kernel{
			Name: "norm2", Tag: tag, Tokens: batch,
			FLOPs: units.FLOPs(10 * b * h),
			Bytes: units.Bytes(elementwiseBWFactor * b * h * bpp),
		},
		gpusim.Kernel{
			Name: "gateup", Tag: tag, Tokens: batch,
			FLOPs:      units.FLOPs(2 * b * h * 2 * inter),
			Bytes:      units.Bytes((2*h*inter + b*h + 2*b*inter) * bpp),
			Grid:       decodeGrid(batch, 2*c.IntermediateSize),
			Efficiency: gemmEfficiency,
		},
		gpusim.Kernel{
			Name: "down", Tag: tag, Tokens: batch,
			FLOPs:      units.FLOPs(2 * b * inter * h),
			Bytes:      units.Bytes((h*inter + b*inter + b*h) * bpp),
			Grid:       decodeGrid(batch, c.HiddenSize),
			Efficiency: gemmEfficiency,
		})
}

// HybridLayerKernels returns one decoder layer for a chunked-prefill
// hybrid batch (§2.3.1): the linear operators process the prefill chunk
// rows and the decode rows together in lockstep, while the prefill and
// decode attentions run as separate, serialized kernels (the canonical
// SARATHI/vLLM/SGLang arrangement whose bubbles §2.4 describes).
//
// chunkLens[i] is the number of new tokens of prefill sequence i in this
// chunk and histLens[i] its already-cached tokens (re-read by attention).
func (c Config) HybridLayerKernels(chunkLens, histLens []int, batch int, avgCtx units.Tokens, tag string) []gpusim.Kernel {
	chunkTotal := 0
	for _, n := range chunkLens {
		chunkTotal += n
	}
	if chunkTotal == 0 && batch == 0 {
		panic("model: empty hybrid batch")
	}
	if chunkTotal == 0 {
		return c.DecodeLayerKernels(batch, avgCtx, tag)
	}
	if batch == 0 {
		return c.PrefillBatchLayerKernels(chunkLens, histLens, tag)
	}
	rows := chunkTotal + batch
	base := c.PrefillLayerKernels(rows, 0, tag)
	var decodeAttn gpusim.Kernel
	for _, k := range c.DecodeLayerKernels(batch, avgCtx, tag) {
		if k.Name == "attn" {
			decodeAttn = k
		}
	}
	out := make([]gpusim.Kernel, 0, len(base)+len(chunkLens))
	for _, k := range base {
		if k.Name != "attn" {
			out = append(out, k)
			continue
		}
		for i, n := range chunkLens {
			if n == 0 {
				continue
			}
			for _, pk := range c.PrefillLayerKernels(n, histLens[i], tag) {
				if pk.Name == "attn" {
					out = append(out, pk)
				}
			}
		}
		out = append(out, decodeAttn)
	}
	return out
}

// LMHeadKernel returns the logits projection over rows tokens.
func (c Config) LMHeadKernel(rows int, tag string) gpusim.Kernel {
	r := float64(rows)
	h := float64(c.HiddenSize)
	v := float64(c.VocabSize)
	bpp := float64(c.BytesPerParam)
	n := c.tp()
	k := gpusim.Kernel{
		Name: "lmhead", Tag: tag, Tokens: rows,
		FLOPs:      units.FLOPs(2 * r * h * v / n),
		Bytes:      units.Bytes((h*v/n + r*h + r*v/n) * bpp),
		Grid:       gemmGrid(rows, c.VocabSize/int(n), wideTileN),
		Efficiency: gemmEfficiency,
	}
	if n > 1 {
		// All-gather of the per-rank logit shards.
		k.CommBytes = units.Bytes((n - 1) / n * r * v * bpp)
	}
	return k
}

// Work aggregates FLOPs and bytes of a kernel sequence.
type Work struct {
	FLOPs     units.FLOPs
	Bytes     units.Bytes
	CommBytes units.Bytes
}

// Aggregate sums a kernel list into a Work.
func Aggregate(ks []gpusim.Kernel) Work {
	var w Work
	for _, k := range ks {
		w.FLOPs += k.FLOPs
		w.Bytes += k.Bytes
		w.CommBytes += k.CommBytes
	}
	return w
}

// DecodeStepKernel collapses a full decode iteration (all layers plus the
// LM head) into one fluid kernel, modelling a captured CUDA graph the way
// Bullet launches decode (§3.3.1: "a single compounded operation via CUDA
// Graph"). Aggregation is accurate here because every decode kernel is
// memory-bound, so the step time is dominated by total bytes.
func (c Config) DecodeStepKernel(batch int, avgCtx units.Tokens, tag string) gpusim.Kernel {
	k, _ := c.DecodeStepKernelScratch(nil, batch, avgCtx, tag)
	return k
}

// DecodeStepKernelScratch is DecodeStepKernel using (and returning) a
// caller-owned scratch buffer for the intermediate layer kernel list, so
// per-cycle callers avoid allocating one per prediction.
func (c Config) DecodeStepKernelScratch(scratch []gpusim.Kernel, batch int, avgCtx units.Tokens, tag string) (gpusim.Kernel, []gpusim.Kernel) {
	scratch = c.AppendDecodeLayerKernels(scratch[:0], batch, avgCtx, tag)
	layer := Aggregate(scratch)
	head := c.LMHeadKernel(batch, tag)
	return gpusim.Kernel{
		Name:       "decode-step",
		Tag:        tag,
		Tokens:     batch,
		FLOPs:      units.Scale(layer.FLOPs, float64(c.NumLayers)) + head.FLOPs,
		Bytes:      units.Scale(layer.Bytes, float64(c.NumLayers)) + head.Bytes,
		CommBytes:  units.Scale(layer.CommBytes, float64(c.NumLayers)) + head.CommBytes,
		Efficiency: decodeAttnEfficiency, // conservative: graph mixes ops
		Graph:      true,
		GraphHead:  true,
	}, scratch
}

// PrefillWork returns the aggregate work of prefilling newTokens tokens
// (with histTokens cached) across all layers, for capacity estimation.
func (c Config) PrefillWork(newTokens, histTokens int) Work {
	layer := Aggregate(c.PrefillLayerKernels(newTokens, histTokens, ""))
	return Work{
		FLOPs: units.Scale(layer.FLOPs, float64(c.NumLayers)),
		Bytes: units.Scale(layer.Bytes, float64(c.NumLayers)),
	}
}
