package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gpusim"
	"repro/internal/units"
)

func TestValidatePresets(t *testing.T) {
	for _, c := range []Config{Llama31_8B(), Qwen2_7B(), Tiny()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := Llama31_8B()
	c.HeadDim = 100 // heads*headDim != hidden
	if c.Validate() == nil {
		t.Error("mismatched head dim accepted")
	}
	c = Llama31_8B()
	c.NumKVHeads = 5 // not a divisor of 32
	if c.Validate() == nil {
		t.Error("non-divisor KV heads accepted")
	}
	c = Llama31_8B()
	c.NumLayers = 0
	if c.Validate() == nil {
		t.Error("zero layers accepted")
	}
}

func TestLlama8BParamCount(t *testing.T) {
	c := Llama31_8B()
	params := c.ParamCount()
	// Llama-3.1-8B has ~8.03B parameters.
	if params < 7.9e9 || params > 8.2e9 {
		t.Fatalf("param count = %.3g, want ≈ 8.03e9", params)
	}
	if w := c.WeightBytes(); units.Abs(w-units.Bytes(2*params)) > 1 {
		t.Fatalf("weight bytes = %v, want 2x params", w)
	}
}

func TestKVBytes(t *testing.T) {
	c := Llama31_8B()
	// 2 (K,V) * 8 kv-heads * 128 dim * 2 bytes = 4096 B/token/layer.
	if got := c.KVBytesPerTokenLayer(); got != 4096 {
		t.Fatalf("KV bytes/token/layer = %v, want 4096", got)
	}
	// 131072 B/token across 32 layers.
	if got := c.KVBytesPerToken(); got != 131072 {
		t.Fatalf("KV bytes/token = %v, want 131072", got)
	}
}

// Table 1 of the paper, exactly reproducible columns: QKV, Attn, OProj
// idle ratios on a 108-SM A100 from our grid model.
func TestTable1GridSizes(t *testing.T) {
	c := Llama31_8B()
	cases := []struct {
		seq      int
		op       string
		wantIdle float64 // percent
	}{
		{1024, "qkv", 11.1}, {2048, "qkv", 11.1}, {4096, "qkv", 11.1}, {16384, "qkv", 1.9},
		{1024, "attn", 21.0}, {2048, "attn", 5.2}, {4096, "attn", 5.2}, {16384, "attn", 0.2},
		{1024, "oproj", 40.7}, {2048, "oproj", 21.0}, {4096, "oproj", 5.2}, {16384, "oproj", 0.2},
	}
	for _, cs := range cases {
		ks := c.PrefillLayerKernels(cs.seq, 0, "t")
		var grid int
		for _, k := range ks {
			if k.Name == cs.op {
				grid = k.Grid
			}
		}
		got := 100 * gpusim.WaveIdleRatio(grid, 108)
		if math.Abs(got-cs.wantIdle) > 0.15 {
			t.Errorf("%s@%d: idle = %.1f%%, want %.1f%% (grid %d)", cs.op, cs.seq, got, cs.wantIdle, grid)
		}
	}
}

func TestPrefillFLOPsScale(t *testing.T) {
	c := Llama31_8B()
	w := c.PrefillWork(2048, 0)
	// Dense transformer prefill ≈ 2 * params * tokens (attention adds a
	// little, embeddings excluded). Expect within ~15% of 2*7B*2048 for
	// the layer stack (8B minus 1.05B embedding params).
	approx := units.FLOPs(2 * (c.ParamCount() - 2*float64(c.VocabSize*c.HiddenSize)) * 2048)
	if w.FLOPs < approx*0.95 || w.FLOPs > approx*1.25 {
		t.Fatalf("prefill FLOPs = %.3g, want ≈ %.3g", w.FLOPs, approx)
	}
}

func TestChunkHistoryInflatesAttention(t *testing.T) {
	c := Llama31_8B()
	fresh := c.PrefillLayerKernels(1024, 0, "t")
	late := c.PrefillLayerKernels(1024, 15360, "t") // last 1k chunk of 16k
	var freshAttn, lateAttn gpusim.Kernel
	for i, k := range fresh {
		if k.Name == "attn" {
			freshAttn, lateAttn = k, late[i]
		}
	}
	if lateAttn.FLOPs <= freshAttn.FLOPs*10 {
		t.Fatalf("late chunk attention FLOPs %.3g not ≫ fresh %.3g", lateAttn.FLOPs, freshAttn.FLOPs)
	}
	if lateAttn.Bytes <= freshAttn.Bytes {
		t.Fatal("late chunk attention bytes not inflated by KV reload")
	}
	// Non-attention kernels are unchanged by history.
	for i, k := range fresh {
		if k.Name != "attn" && (late[i].FLOPs != k.FLOPs || late[i].Bytes != k.Bytes) {
			t.Fatalf("operator %s changed with history", k.Name)
		}
	}
}

func TestDecodeLayerMemoryBound(t *testing.T) {
	c := Llama31_8B()
	spec := gpusim.A100()
	for _, k := range c.DecodeLayerKernels(32, 1024, "d") {
		ct := k.FLOPs.Div(spec.PeakFLOPS)
		bt := k.Bytes.Div(spec.PeakBW)
		if ct > bt {
			t.Errorf("decode kernel %s compute-bound (ct=%.3g bt=%.3g)", k.Name, ct, bt)
		}
	}
}

func TestDecodeStepKernelAggregates(t *testing.T) {
	c := Llama31_8B()
	step := c.DecodeStepKernel(64, 2048, "d")
	layer := Aggregate(c.DecodeLayerKernels(64, 2048, "d"))
	head := c.LMHeadKernel(64, "d")
	if units.Abs(step.FLOPs-(layer.FLOPs*32+head.FLOPs)) > 1 {
		t.Fatal("step FLOPs mismatch")
	}
	if units.Abs(step.Bytes-(layer.Bytes*32+head.Bytes)) > 1 {
		t.Fatal("step bytes mismatch")
	}
	if !step.Graph || !step.GraphHead {
		t.Fatal("decode step not marked as graph launch")
	}
	// Sanity: a 64-batch 2048-ctx decode step on A100 should take
	// 10-30ms (weights 16GB + KV ~17GB at ~2TB/s, with inefficiency).
	dur := step.Bytes.Div(gpusim.A100().PeakBW)
	if dur < 0.008 || dur > 0.08 {
		t.Fatalf("decode step raw byte time = %v, outside sanity window", dur)
	}
}

func TestOperatorNamesMatchKernels(t *testing.T) {
	c := Tiny()
	ks := c.PrefillLayerKernels(64, 0, "t")
	if len(ks) != len(OperatorNames) {
		t.Fatalf("got %d kernels, want %d", len(ks), len(OperatorNames))
	}
	for i, k := range ks {
		if k.Name != OperatorNames[i] {
			t.Fatalf("kernel %d = %s, want %s", i, k.Name, OperatorNames[i])
		}
	}
	dk := c.DecodeLayerKernels(4, 16, "t")
	for i, k := range dk {
		if k.Name != OperatorNames[i] {
			t.Fatalf("decode kernel %d = %s, want %s", i, k.Name, OperatorNames[i])
		}
	}
}

// Property: prefill work is monotone in chunk size and history.
func TestPropertyPrefillMonotone(t *testing.T) {
	c := Tiny()
	f := func(aU, bU uint16, histU uint16) bool {
		a := int(aU%2048) + 1
		b := a + int(bU%2048) + 1
		hist := int(histU % 4096)
		wa := c.PrefillWork(a, hist)
		wb := c.PrefillWork(b, hist)
		if wb.FLOPs < wa.FLOPs || wb.Bytes < wa.Bytes {
			return false
		}
		wh := c.PrefillWork(a, hist+512)
		return wh.FLOPs >= wa.FLOPs && wh.Bytes >= wa.Bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decode step work is monotone in batch and context.
func TestPropertyDecodeMonotone(t *testing.T) {
	c := Tiny()
	f := func(bU, cU uint16) bool {
		b := int(bU%256) + 1
		cl := units.Tokens(cU%8192) + 1
		k1 := c.DecodeStepKernel(b, cl, "d")
		k2 := c.DecodeStepKernel(b+1, cl, "d")
		k3 := c.DecodeStepKernel(b, cl+64, "d")
		return k2.FLOPs >= k1.FLOPs && k2.Bytes >= k1.Bytes &&
			k3.FLOPs >= k1.FLOPs && k3.Bytes >= k1.Bytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefillLayerPanicsOnZeroTokens(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Tiny().PrefillLayerKernels(0, 0, "t")
}

func BenchmarkPrefillLayerKernels(b *testing.B) {
	c := Llama31_8B()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.PrefillLayerKernels(2048, 0, "p")
	}
}

func BenchmarkDecodeStepKernel(b *testing.B) {
	c := Llama31_8B()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.DecodeStepKernel(64, 2048, "d")
	}
}
