package model

import (
	"strings"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/units"
)

func TestTPConfigDerivation(t *testing.T) {
	c := Llama31_8B().TP(4)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(c.Name, "-tp4") {
		t.Fatalf("name = %s", c.Name)
	}
	base := Llama31_8B()
	// Per-rank weights and KV shrink by the TP degree.
	if got, want := c.WeightBytes(), base.WeightBytes()/4; units.Abs(got-want) > 1 {
		t.Fatalf("weights/rank = %g, want %g", got, want)
	}
	if got, want := c.KVBytesPerToken(), base.KVBytesPerToken()/4; units.Abs(got-want) > 1 {
		t.Fatalf("kv/token/rank = %g, want %g", got, want)
	}
}

func TestTPValidateDivisibility(t *testing.T) {
	c := Llama31_8B().TP(3) // 32 heads not divisible by 3
	if c.Validate() == nil {
		t.Fatal("TP=3 accepted for 32 heads")
	}
	if Llama31_8B().TP(16).Validate() == nil {
		t.Fatal("TP=16 accepted for 8 KV heads")
	}
}

func TestTPShardsComputeAndAddsAllreduce(t *testing.T) {
	base := Llama31_8B()
	tp := base.TP(2)
	bks := base.PrefillLayerKernels(2048, 0, "p")
	tks := tp.PrefillLayerKernels(2048, 0, "p")
	// Two extra allreduce kernels per layer.
	if len(tks) != len(bks)+2 {
		t.Fatalf("kernels = %d, want %d", len(tks), len(bks)+2)
	}
	var baseW, tpW Work
	baseW = Aggregate(bks)
	tpW = Aggregate(tks)
	// Per-rank compute halves (elementwise norms stay replicated, so
	// slightly above half).
	if tpW.FLOPs > baseW.FLOPs*0.55 || tpW.FLOPs < baseW.FLOPs*0.45 {
		t.Fatalf("TP2 FLOPs = %g, want ≈ half of %g", tpW.FLOPs, baseW.FLOPs)
	}
	if baseW.CommBytes != 0 {
		t.Fatal("base model has comm traffic")
	}
	// Ring allreduce: 2 × 2(n-1)/n × payload = 2 × 2048×4096×2 bytes.
	wantComm := units.Bytes(2.0 * (2.0 * 0.5) * 2048 * 4096 * 2)
	if units.Ratio(units.Abs(tpW.CommBytes-wantComm), wantComm) > 0.01 {
		t.Fatalf("comm = %g, want %g", tpW.CommBytes, wantComm)
	}
}

func TestTPDecodeStepCarriesComm(t *testing.T) {
	tp := Llama31_8B().TP(2)
	step := tp.DecodeStepKernel(32, 1024, "d")
	if step.CommBytes <= 0 {
		t.Fatal("decode step lost comm bytes")
	}
	base := Llama31_8B().DecodeStepKernel(32, 1024, "d")
	if step.Bytes >= base.Bytes {
		t.Fatalf("TP step bytes %g not below base %g", step.Bytes, base.Bytes)
	}
}

func TestTPPrefillFasterPerRankButCommBound(t *testing.T) {
	// On the simulated A100 pair, a TP2 prefill layer should be faster
	// than TP1 (compute halves) but by less than 2x (allreduce +
	// replicated elementwise).
	spec := gpusim.A100()
	measure := func(c Config) units.Seconds {
		w := Aggregate(c.PrefillLayerKernels(4096, 0, "p"))
		ct := w.FLOPs.Div(spec.PeakFLOPS * 0.9)
		bt := w.Bytes.Div(spec.PeakBW)
		lt := w.CommBytes.Div(spec.LinkBW)
		return units.Max(ct, bt) + lt
	}
	t1 := measure(Llama31_8B())
	t2 := measure(Llama31_8B().TP(2))
	if t2 >= t1 {
		t.Fatalf("TP2 layer (%g) not faster than TP1 (%g)", t2, t1)
	}
	if units.Ratio(t1, t2) > 1.95 {
		t.Fatalf("TP2 speedup %.2fx implausibly ideal", units.Ratio(t1, t2))
	}
}

func TestAllReduceKernelRespectsRing(t *testing.T) {
	c := Llama31_8B().TP(8)
	k := c.allReduceKernel(1024, "p")
	const payload = 1024.0 * 4096 * 2
	want := units.Bytes(2 * (7.0 / 8.0) * payload)
	if units.Abs(k.CommBytes-want) > 1 {
		t.Fatalf("comm = %g, want %g", k.CommBytes, want)
	}
	if k.Bytes != 2*payload {
		t.Fatalf("hbm bytes = %g", k.Bytes)
	}
}

func TestTPOneIsIdentity(t *testing.T) {
	base := Llama31_8B()
	one := base.TP(1)
	if one.Name != base.Name {
		t.Fatalf("TP(1) renamed: %s", one.Name)
	}
	a := Aggregate(base.PrefillLayerKernels(1024, 0, "p"))
	b := Aggregate(one.PrefillLayerKernels(1024, 0, "p"))
	if a != b {
		t.Fatal("TP(1) changed the kernels")
	}
}
