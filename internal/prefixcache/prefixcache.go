// Package prefixcache implements a shared-prefix KV cache in the spirit
// of SGLang's RadixAttention: requests carrying the same prompt prefix
// (system prompts, few-shot templates) reuse the prefix's KV cache
// instead of recomputing it, shrinking their effective prefill length.
//
// The cache pins one KV sequence per prefix group in the shared pool.
// Acquire pins a group against eviction while a request depends on it;
// unpinned groups are evicted LRU when the pool needs room. Bullet's
// prefill engine consults the cache at admission (core.Options
// EnablePrefixCache), turning a hit of H tokens into a prefill of
// length len-H with H tokens of attention history — exactly how a real
// radix cache changes the kernel shapes.
package prefixcache

import (
	"fmt"
	"sort"

	"repro/internal/kvcache"
)

// Cache manages prefix KV sequences in a shared pool. Single-threaded,
// like everything in the simulation.
type Cache struct {
	pool    *kvcache.Pool
	entries map[string]*entry
	clock   int64

	hits       int
	misses     int
	hitTokens  int64
	insertions int
	evictions  int
}

type entry struct {
	group    string
	tokens   int
	seq      *kvcache.Sequence
	pins     int
	lastUsed int64
}

// New creates a cache over the given pool.
func New(pool *kvcache.Pool) *Cache {
	return &Cache{pool: pool, entries: map[string]*entry{}}
}

// Stats summarises cache effectiveness.
type Stats struct {
	Hits       int
	Misses     int
	HitTokens  int64 // prefill tokens skipped thanks to hits
	Insertions int
	Evictions  int
	Resident   int
}

// Stats returns the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits: c.hits, Misses: c.misses, HitTokens: c.hitTokens,
		Insertions: c.insertions, Evictions: c.evictions, Resident: len(c.entries),
	}
}

// Acquire looks up a prefix group and pins it. It returns the cached
// token count (0 on miss) and a release function that must be called
// exactly once when the request no longer reads the prefix (i.e. at
// request completion — decode attention still reads it). On a miss the
// release function is a no-op.
func (c *Cache) Acquire(group string) (int, func()) {
	if group == "" {
		return 0, func() {}
	}
	c.clock++
	e, ok := c.entries[group]
	if !ok {
		c.misses++
		return 0, func() {}
	}
	c.hits++
	c.hitTokens += int64(e.tokens)
	e.pins++
	e.lastUsed = c.clock
	released := false
	return e.tokens, func() {
		if released {
			panic(fmt.Sprintf("prefixcache: double release of group %q", group))
		}
		released = true
		e.pins--
		if e.pins < 0 {
			panic(fmt.Sprintf("prefixcache: negative pin count for group %q", group))
		}
	}
}

// Insert caches a freshly computed prefix of tokens tokens for a group,
// evicting unpinned entries LRU if the pool is tight. Insert is a no-op
// if the group is already cached or if space cannot be found; it returns
// whether the prefix is now resident.
func (c *Cache) Insert(group string, tokens int) bool {
	if group == "" || tokens <= 0 {
		return false
	}
	if _, ok := c.entries[group]; ok {
		return true
	}
	for !c.pool.CanAllocate(tokens) {
		if !c.evictOne() {
			return false
		}
	}
	seq, err := c.pool.Allocate("prefix/"+group, tokens, "prefix-cache")
	if err != nil {
		return false
	}
	c.clock++
	c.entries[group] = &entry{group: group, tokens: tokens, seq: seq, lastUsed: c.clock}
	c.insertions++
	return true
}

// evictOne removes the least-recently-used unpinned entry. It returns
// false when nothing is evictable.
func (c *Cache) evictOne() bool {
	// Scan in sorted group order: Go's randomized map iteration would
	// otherwise pick an arbitrary victim among entries tied on lastUsed,
	// leaking nondeterminism into hit rates and pool contents.
	groups := make([]string, 0, len(c.entries))
	for g := range c.entries {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	var victim *entry
	for _, g := range groups {
		e := c.entries[g]
		if e.pins > 0 {
			continue
		}
		if victim == nil || e.lastUsed < victim.lastUsed {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	c.pool.MustFree(victim.seq)
	delete(c.entries, victim.group)
	c.evictions++
	return true
}

// EvictAll drops every unpinned entry (end-of-run cleanup so pool
// invariants hold).
func (c *Cache) EvictAll() {
	for c.evictOne() {
	}
}

// PinnedGroups returns the currently pinned group names, sorted (for
// tests and diagnostics).
func (c *Cache) PinnedGroups() []string {
	var out []string
	for g, e := range c.entries {
		if e.pins > 0 {
			out = append(out, g)
		}
	}
	sort.Strings(out)
	return out
}

// ResidentTokens returns the total cached prefix tokens.
func (c *Cache) ResidentTokens() int {
	t := 0
	for _, e := range c.entries {
		t += e.tokens
	}
	return t
}
