package prefixcache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kvcache"
)

func newCache(blocks int) (*Cache, *kvcache.Pool) {
	pool := kvcache.NewPool(blocks, 16)
	return New(pool), pool
}

func TestMissThenHit(t *testing.T) {
	c, _ := newCache(100)
	hit, release := c.Acquire("sys0")
	if hit != 0 {
		t.Fatalf("cold hit = %d", hit)
	}
	release() // no-op
	if !c.Insert("sys0", 512) {
		t.Fatal("insert failed")
	}
	hit, release = c.Acquire("sys0")
	if hit != 512 {
		t.Fatalf("hit = %d, want 512", hit)
	}
	release()
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.HitTokens != 512 || st.Insertions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEmptyGroupIsNoop(t *testing.T) {
	c, pool := newCache(10)
	hit, release := c.Acquire("")
	release()
	if hit != 0 || c.Insert("", 16) || pool.UsedBlocks() != 0 {
		t.Fatal("empty group should be inert")
	}
}

func TestDoubleInsertIsIdempotent(t *testing.T) {
	c, pool := newCache(100)
	c.Insert("g", 160)
	used := pool.UsedBlocks()
	if !c.Insert("g", 160) {
		t.Fatal("re-insert reported failure")
	}
	if pool.UsedBlocks() != used {
		t.Fatal("re-insert allocated again")
	}
}

func TestLRUEviction(t *testing.T) {
	// Pool of 20 blocks (320 tokens); each prefix is 160 tokens (10
	// blocks): only two fit.
	c, pool := newCache(20)
	c.Insert("a", 160)
	c.Insert("b", 160)
	// Touch "a" so "b" is LRU.
	_, rel := c.Acquire("a")
	rel()
	if !c.Insert("c", 160) {
		t.Fatal("insert with eviction failed")
	}
	if hit, _ := c.Acquire("b"); hit != 0 {
		t.Fatal("LRU entry b not evicted")
	}
	if hit, _ := c.Acquire("a"); hit == 0 {
		t.Fatal("recently used entry a evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats().Evictions)
	}
	_ = pool
}

func TestPinnedEntriesSurviveEviction(t *testing.T) {
	c, _ := newCache(20)
	c.Insert("a", 160)
	_, release := c.Acquire("a")
	c.Insert("b", 160)
	// Both pools slots are full; "a" is pinned, so inserting "c" must
	// evict "b".
	if !c.Insert("c", 160) {
		t.Fatal("insert failed")
	}
	if hit, _ := c.Acquire("a"); hit == 0 {
		t.Fatal("pinned entry evicted")
	}
	if got := c.PinnedGroups(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("pinned = %v", got)
	}
	release()
}

func TestInsertFailsWhenEverythingPinned(t *testing.T) {
	c, _ := newCache(20)
	c.Insert("a", 160)
	c.Insert("b", 160)
	_, r1 := c.Acquire("a")
	_, r2 := c.Acquire("b")
	if c.Insert("c", 160) {
		t.Fatal("insert succeeded with all entries pinned and pool full")
	}
	r1()
	r2()
}

func TestDoubleReleasePanics(t *testing.T) {
	c, _ := newCache(20)
	c.Insert("a", 16)
	_, release := c.Acquire("a")
	release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release accepted")
		}
	}()
	release()
}

func TestEvictAllDrainsPool(t *testing.T) {
	c, pool := newCache(100)
	c.Insert("a", 160)
	c.Insert("b", 160)
	c.EvictAll()
	if pool.UsedBlocks() != 0 || c.ResidentTokens() != 0 {
		t.Fatalf("pool not drained: %d blocks, %d tokens", pool.UsedBlocks(), c.ResidentTokens())
	}
	pool.CheckInvariants()
}

// Property: under random operations the pool invariants hold and pinned
// entries are never evicted.
func TestPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, pool := newCache(rng.Intn(100) + 20)
		type pin struct {
			group   string
			release func()
		}
		var pins []pin
		for op := 0; op < 200; op++ {
			g := fmt.Sprintf("g%d", rng.Intn(8))
			switch rng.Intn(3) {
			case 0:
				c.Insert(g, (rng.Intn(10)+1)*16)
			case 1:
				if hit, rel := c.Acquire(g); hit > 0 {
					pins = append(pins, pin{g, rel})
				}
			case 2:
				if len(pins) > 0 {
					i := rng.Intn(len(pins))
					pins[i].release()
					pins = append(pins[:i], pins[i+1:]...)
				}
			}
			pool.CheckInvariants()
			// Pinned groups must be resident.
			for _, p := range pins {
				if hit, rel := c.Acquire(p.group); hit == 0 {
					return false
				} else {
					rel()
				}
			}
		}
		for _, p := range pins {
			p.release()
		}
		c.EvictAll()
		pool.CheckInvariants()
		return pool.UsedBlocks() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
