// Package pressure implements the memory-pressure subsystem: watermark
// admission control over the shared KV pool, victim accounting for decode
// preemption, and the recompute-vs-retransfer recovery cost model.
//
// The controller is pure policy: it never mutates the pool or the
// engines. The engines ask it for admission tiers and block deficits; the
// core orchestrates preemption and recovery and reports the outcomes back
// so the controller can keep the metrics.Pressure counters and emit
// timeline instants. Everything is deterministic — the controller holds
// no randomness and runs on the single simulator thread.
//
// Admission works on projected occupancy with hysteresis: a request is
// admitted while (used+need)/total stays at or below the high watermark;
// crossing it latches the controller into a pressured state in which
// admissions must fit under the low watermark instead, and the latch only
// clears once current occupancy itself falls below the low watermark.
// That gap keeps the gate from flapping admit/defer around one threshold.
package pressure

import (
	"math"

	"repro/internal/estimator"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/timeline"
	"repro/internal/units"
)

// Tier is an admission decision.
type Tier int

const (
	// TierAdmit lets the request reserve KV now.
	TierAdmit Tier = iota
	// TierDefer pushes the request back; the engine re-tries on KV
	// release or after a backoff.
	TierDefer
	// TierShed gives up on the request (it can never fit, or it has been
	// deferred past its budget).
	TierShed
)

// String returns the tier name used in timeline args and reports.
func (t Tier) String() string {
	switch t {
	case TierAdmit:
		return "admit"
	case TierDefer:
		return "defer"
	case TierShed:
		return "shed"
	}
	return "unknown"
}

// Prio is the admission priority of a request, ordered low to high:
// lower priorities meet tighter watermarks and smaller deferral budgets,
// so under sustained pressure the gate sheds strictly lowest-first. The
// qos package maps tenant classes onto these levels; priority-unaware
// callers use Admit, which runs at PrioPremium and therefore behaves
// exactly as the gate did before priorities existed.
type Prio int

const (
	// PrioBestEffort is shed first: quarter deferral budget, tightest
	// effective watermark.
	PrioBestEffort Prio = iota
	// PrioStandard sits between: half budget, one margin step tighter.
	PrioStandard
	// PrioPremium is the legacy (and strictest-SLO) level: full budget,
	// the configured watermarks unmodified.
	PrioPremium
)

// Recovery is the path chosen to restore a preempted decode sequence.
type Recovery int

const (
	// Recompute re-runs the full prefill to rebuild the KV.
	Recompute Recovery = iota
	// Retransfer re-transfers the saved KV bytes through the metadata
	// buffer (the host-side copy the paper's shared pool enables).
	Retransfer
)

// String returns the recovery-path name.
func (r Recovery) String() string {
	if r == Retransfer {
		return "retransfer"
	}
	return "recompute"
}

// Config parameterizes the controller. Zero fields take the defaults
// documented on each; see DefaultConfig.
type Config struct {
	// LowWatermark is the occupancy fraction the pool must drop below to
	// clear the pressured latch, and the admission ceiling while
	// pressured. Default 0.80.
	LowWatermark float64
	// HighWatermark is the occupancy fraction above which admissions
	// defer and decode preemption engages. Default 0.90.
	HighWatermark float64
	// CriticalWatermark is the occupancy fraction above which deferral
	// budgets are halved — the gate sheds sooner when the pool is nearly
	// exhausted. Default 0.97.
	CriticalWatermark float64
	// MaxDeferrals is how many times one request may be deferred before
	// the gate sheds it (SLO-aware: a request deferred this often has
	// no chance of meeting its deadline). Default 8.
	MaxDeferrals int
	// MaxPreemptions is K in the shed policy: a request preempted more
	// than K times is shed instead of recovered. Default 3.
	MaxPreemptions int
	// MaxRecoveryRetries bounds how often a retransfer re-allocation may
	// retry before degrading to recompute. Default 5.
	MaxRecoveryRetries int
	// BackoffBase is the first recovery/deferral backoff delay; attempt
	// n waits BackoffBase·2^(n-1), capped at BackoffCap. Defaults 2ms
	// and 256ms.
	BackoffBase units.Seconds
	BackoffCap  units.Seconds
	// RecomputePenalty biases the cost model against recompute (burning
	// SMs that could serve admitted work). Default 1.25.
	RecomputePenalty float64
	// HostBandwidth is the effective host<->device bandwidth used for the
	// retransfer cost and transfer latency (PCIe 4.0 x16 practical
	// throughput). Default 25 GB/s.
	HostBandwidth units.BytesPerSec
	// PriorityMargin tightens the effective admission watermark per
	// priority level below PrioPremium: a PrioStandard request admits
	// against limit−margin, PrioBestEffort against limit−2·margin. With
	// the halving deferral budgets this yields the strict shed order
	// best-effort → standard → premium under sustained pressure.
	// Default 0.04.
	PriorityMargin float64
	// DisablePreemption keeps the admission gate but never preempts
	// decode sequences — the no-preemption ablation baseline ext-pressure
	// compares against. Default false (preemption on).
	DisablePreemption bool
}

// DefaultConfig returns the documented defaults.
func DefaultConfig() Config {
	return Config{
		LowWatermark:       0.80,
		HighWatermark:      0.90,
		CriticalWatermark:  0.97,
		MaxDeferrals:       8,
		MaxPreemptions:     3,
		MaxRecoveryRetries: 5,
		BackoffBase:        units.FromMs(2),
		BackoffCap:         units.FromMs(256),
		RecomputePenalty:   1.25,
		HostBandwidth:      units.BytesPerSec(25e9),
		PriorityMargin:     0.04,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.LowWatermark <= 0 {
		c.LowWatermark = d.LowWatermark
	}
	if c.HighWatermark <= 0 {
		c.HighWatermark = d.HighWatermark
	}
	if c.CriticalWatermark <= 0 {
		c.CriticalWatermark = d.CriticalWatermark
	}
	if c.MaxDeferrals <= 0 {
		c.MaxDeferrals = d.MaxDeferrals
	}
	if c.MaxPreemptions <= 0 {
		c.MaxPreemptions = d.MaxPreemptions
	}
	if c.MaxRecoveryRetries <= 0 {
		c.MaxRecoveryRetries = d.MaxRecoveryRetries
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = d.BackoffCap
	}
	if c.RecomputePenalty <= 0 {
		c.RecomputePenalty = d.RecomputePenalty
	}
	if c.HostBandwidth <= 0 {
		c.HostBandwidth = d.HostBandwidth
	}
	if c.PriorityMargin <= 0 {
		c.PriorityMargin = d.PriorityMargin
	}
	return c
}

// Controller is the per-replica pressure policy. Not safe for concurrent
// use; the simulation is single-threaded by design.
type Controller struct {
	pool            *kvcache.Pool
	est             *estimator.Estimator
	kvBytesPerToken units.Bytes
	cfg             Config
	tl              *timeline.Recorder
	m               metrics.Pressure
	pressured       bool
}

// New builds a controller over pool. est drives the recompute side of the
// recovery cost model and kvBytesPerToken the retransfer side; cfg zero
// fields take defaults.
func New(pool *kvcache.Pool, est *estimator.Estimator, kvBytesPerToken units.Bytes, cfg Config) *Controller {
	if pool == nil {
		panic("pressure: nil pool")
	}
	c := cfg.withDefaults()
	if c.LowWatermark >= c.HighWatermark || c.HighWatermark >= c.CriticalWatermark {
		panic("pressure: watermarks must satisfy low < high < critical")
	}
	return &Controller{pool: pool, est: est, kvBytesPerToken: kvBytesPerToken, cfg: c}
}

// SetTimeline attaches a recorder; nil disables pressure instants.
func (c *Controller) SetTimeline(tl *timeline.Recorder) { c.tl = tl }

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Pressured reports whether the hysteresis latch is set.
func (c *Controller) Pressured() bool { return c.pressured }

// Metrics returns a copy of the accumulated counters.
func (c *Controller) Metrics() metrics.Pressure { return c.m }

// KVBytesPerToken returns the per-token KV footprint the cost model uses.
func (c *Controller) KVBytesPerToken() units.Bytes { return c.kvBytesPerToken }

func (c *Controller) observeOccupancy() float64 {
	occ := c.pool.Occupancy()
	if occ > c.m.PeakOccupancy {
		c.m.PeakOccupancy = occ
	}
	return occ
}

func (c *Controller) blocksFor(tokens int) int {
	bt := c.pool.BlockTokens()
	return (tokens + bt - 1) / bt
}

// Admit decides the admission tier for a request needing needTokens of KV
// (prompt plus full output budget, the engines' lifetime reservation) that
// has already been deferred deferrals times. It updates the hysteresis
// latch, counters, and peak occupancy, and emits one timeline instant per
// decision.
//
//bullet:hotpath
func (c *Controller) Admit(now units.Seconds, id string, needTokens, deferrals int) Tier {
	return c.AdmitPrio(now, id, needTokens, deferrals, PrioPremium)
}

// AdmitPrio is Admit with an explicit admission priority: levels below
// PrioPremium face a watermark tightened by PriorityMargin per step and
// a deferral budget halved per step, so the gate defers and sheds
// best-effort traffic strictly before standard, and standard strictly
// before premium. AdmitPrio(..., PrioPremium) ≡ Admit.
//
//bullet:hotpath
func (c *Controller) AdmitPrio(now units.Seconds, id string, needTokens, deferrals int, prio Prio) Tier {
	cur := c.observeOccupancy()
	if c.pressured && cur < c.cfg.LowWatermark {
		c.pressured = false
	}

	tier := c.decide(cur, needTokens, deferrals, prio)
	switch tier {
	case TierDefer:
		c.m.AdmissionsDeferred++
	case TierShed:
		c.m.Shed++
	}
	if c.tl != nil {
		c.tl.Instant("pressure", "admission", now,
			timeline.S("req", id),
			timeline.S("tier", tier.String()),
			timeline.F("occupancy", cur),
			timeline.I("need_tokens", needTokens),
			timeline.I("deferrals", deferrals),
			timeline.B("pressured", c.pressured),
		)
	}
	return tier
}

//bullet:hotpath
func (c *Controller) decide(cur float64, needTokens, deferrals int, prio Prio) Tier {
	need := c.blocksFor(needTokens)
	total := c.pool.TotalBlocks()
	if total == 0 || need > total {
		return TierShed // can never fit, even in an empty pool
	}
	if deferrals >= c.deferBudgetAt(cur, prio) {
		return TierShed
	}
	// steps is the distance below premium: 0 for premium, 1 standard,
	// 2 best-effort. Premium therefore reproduces the priority-unaware
	// gate bit for bit.
	steps := int(PrioPremium - prio)
	if steps < 0 {
		steps = 0
	}
	limit := c.cfg.HighWatermark
	if c.pressured {
		limit = c.cfg.LowWatermark
	}
	limit -= c.cfg.PriorityMargin * float64(steps)
	projected := float64(c.pool.UsedBlocks()+need) / float64(total)
	if projected > limit || !c.pool.CanAllocate(needTokens) {
		if projected > c.cfg.HighWatermark {
			c.pressured = true
		}
		return TierDefer
	}
	return TierAdmit
}

// DeferBudget returns the deferral budget AdmitPrio sheds at for prio,
// at the pool's current occupancy: MaxDeferrals halved once per priority
// level below premium, and halved again above the critical watermark.
// Engines use it to retire queued requests whose budget a head-of-queue
// deferral round has exhausted, so budgets burn at the same cadence for
// every blocked request regardless of queue position.
//
//bullet:hotpath
func (c *Controller) DeferBudget(prio Prio) int {
	return c.deferBudgetAt(c.pool.Occupancy(), prio)
}

//bullet:hotpath
func (c *Controller) deferBudgetAt(cur float64, prio Prio) int {
	steps := int(PrioPremium - prio)
	if steps < 0 {
		steps = 0
	}
	budget := c.cfg.MaxDeferrals >> steps
	if cur > c.cfg.CriticalWatermark {
		budget /= 2
	}
	return budget
}

// Deficit returns how many blocks must be freed for an allocation of
// needTokens to both fit physically and land the pool at the low
// watermark (0 if no relief is needed). Call with needTokens == 0 for the
// drain deficit of a capacity shrink.
//
//bullet:hotpath
func (c *Controller) Deficit(needTokens int) int {
	need := c.blocksFor(needTokens)
	total := c.pool.TotalBlocks()
	target := int(c.cfg.LowWatermark * float64(total))
	deficit := c.pool.UsedBlocks() + need - target
	if short := need - c.pool.FreeBlocks(); short > deficit {
		deficit = short
	}
	if deficit < 0 {
		deficit = 0
	}
	return deficit
}

// PhysicalDeficit returns the blocks preemption must free before an
// allocation of needTokens can physically succeed. Zero when the
// allocation already fits — watermark-driven deferrals relieve
// themselves by waiting for decode completions, and evicting live
// decode work to admit new work under plain overload trades finished
// requests for unfinished ones. Zero also while a capacity shrink is
// still draining: freed blocks retire before they return to the free
// list, so a victim evicted mid-drain pays the retirement debt instead
// of the stuck admission, destroying finishing work for no headroom.
// Preemption engages only when waiting cannot help: the pool has
// settled (no drain debt) and the free list still cannot cover the
// head request.
//
//bullet:hotpath
func (c *Controller) PhysicalDeficit(needTokens int) int {
	if c.pool.RetirePending() > 0 {
		return 0
	}
	short := c.blocksFor(needTokens) - c.pool.FreeBlocks()
	if short <= 0 {
		return 0
	}
	return short
}

// CanReadmit reports whether re-reserving needTokens for a preemption
// victim would keep the pool at or below the high watermark. Victims
// re-enter below the fresh-admission bar (which tightens to the low
// watermark while pressured) but must not push the pool back into the
// pressured band — that would re-trigger the very deferrals whose
// relief evicted them.
//
//bullet:hotpath
func (c *Controller) CanReadmit(needTokens int) bool {
	if !c.pool.CanAllocate(needTokens) {
		return false
	}
	projected := float64(c.pool.UsedBlocks()+c.blocksFor(needTokens)) / float64(c.pool.TotalBlocks())
	return projected <= c.cfg.HighWatermark
}

// ShouldShedVictim reports whether a preemption victim that has already
// been preempted preemptions times should be shed instead of recovered.
//
//bullet:hotpath
func (c *Controller) ShouldShedVictim(preemptions int) bool {
	return preemptions > c.cfg.MaxPreemptions
}

// Backoff returns the delay before recovery/readmission attempt n
// (1-based): BackoffBase·2^(n-1), capped at BackoffCap.
//
//bullet:hotpath
func (c *Controller) Backoff(attempt int) units.Seconds {
	if attempt < 1 {
		attempt = 1
	}
	exp := attempt - 1
	if exp > 30 {
		exp = 30
	}
	d := units.Scale(c.cfg.BackoffBase, math.Pow(2, float64(exp)))
	return units.Min(d, c.cfg.BackoffCap)
}

// ChooseRecovery picks the cheaper restoration path for a victim holding
// ctxTokens of KV context: re-running its prefill on sms SMs (biased by
// RecomputePenalty) versus re-transferring the saved bytes through the
// metadata buffer with bufferLatency fixed overhead.
func (c *Controller) ChooseRecovery(ctxTokens, sms int, bufferLatency units.Seconds) Recovery {
	if c.est == nil || c.kvBytesPerToken <= 0 {
		return Recompute
	}
	recompute := units.Scale(c.est.PrefillTotalTime(ctxTokens, 0, sms, true), c.cfg.RecomputePenalty)
	retransfer := bufferLatency + c.RetransferTime(ctxTokens)
	if retransfer < recompute {
		return Retransfer
	}
	return Recompute
}

// RetransferBytes returns the KV payload of ctxTokens of context.
func (c *Controller) RetransferBytes(ctxTokens int) units.Bytes {
	return units.Scale(c.kvBytesPerToken, float64(ctxTokens))
}

// RetransferTime returns the wire time to move ctxTokens of KV at the
// configured host bandwidth.
func (c *Controller) RetransferTime(ctxTokens int) units.Seconds {
	return c.RetransferBytes(ctxTokens).Div(c.cfg.HostBandwidth)
}

// RecordPreemption accounts one decode preemption freeing blocks blocks
// from victim id (its preemptions count now being n).
func (c *Controller) RecordPreemption(now units.Seconds, id string, blocks, n int) {
	c.m.Preemptions++
	occ := c.observeOccupancy()
	if c.tl != nil {
		c.tl.Instant("pressure", "preempt", now,
			timeline.S("req", id),
			timeline.I("blocks_freed", blocks),
			timeline.I("preemptions", n),
			timeline.F("occupancy", occ),
		)
	}
}

// RecordRecovery accounts the start of a recovery on path r for victim id
// with ctxTokens of context to restore.
func (c *Controller) RecordRecovery(now units.Seconds, id string, r Recovery, ctxTokens int) {
	switch r {
	case Recompute:
		c.m.Recomputes++
		c.m.RecomputedTokens += ctxTokens
	case Retransfer:
		c.m.Retransfers++
		c.m.RetransferredBytes += c.RetransferBytes(ctxTokens)
	}
	if c.tl != nil {
		c.tl.Instant("pressure", "recover", now,
			timeline.S("req", id),
			timeline.S("path", r.String()),
			timeline.I("ctx_tokens", ctxTokens),
		)
	}
}

// RecordShed accounts the pressure subsystem giving up on request id for
// reason (e.g. "preempt-budget", "defer-budget", "never-fits").
func (c *Controller) RecordShed(now units.Seconds, id, reason string) {
	c.m.Shed++
	if c.tl != nil {
		c.tl.Instant("pressure", "shed", now,
			timeline.S("req", id),
			timeline.S("reason", reason),
		)
	}
}

// RecordKVShrink accounts a live capacity-reduction fault that retired
// blocks of capacity (restored reports the reverse transition).
func (c *Controller) RecordKVShrink(now units.Seconds, blocks int, restored bool) {
	if !restored {
		c.m.KVShrinks++
	}
	occ := c.observeOccupancy()
	if c.tl != nil {
		name := "kv-shrink"
		if restored {
			name = "kv-restore"
		}
		c.tl.Instant("pressure", name, now,
			timeline.I("blocks", blocks),
			timeline.F("occupancy", occ),
		)
	}
}
