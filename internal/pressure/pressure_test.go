package pressure

import (
	"strings"
	"testing"

	"repro/internal/estimator"
	"repro/internal/gpusim"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/timeline"
	"repro/internal/units"
)

func newController(blocks int, cfg Config) (*Controller, *kvcache.Pool) {
	p := kvcache.NewPool(blocks, 16)
	est := estimator.New(model.Llama31_8B(), gpusim.A100(), estimator.DefaultParams())
	return New(p, est, model.Llama31_8B().KVBytesPerToken(), cfg), p
}

func TestDefaultsFillZeroFields(t *testing.T) {
	c, _ := newController(100, Config{})
	got := c.Config()
	want := DefaultConfig()
	if got != want {
		t.Fatalf("effective config %+v, want defaults %+v", got, want)
	}
	// Explicit fields survive defaulting.
	c2, _ := newController(100, Config{MaxPreemptions: 7})
	if c2.Config().MaxPreemptions != 7 || c2.Config().MaxDeferrals != want.MaxDeferrals {
		t.Fatalf("partial config mangled: %+v", c2.Config())
	}
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"nil pool": func() {
			New(nil, nil, 0, Config{})
		},
		"inverted watermarks": func() {
			p := kvcache.NewPool(10, 16)
			New(p, nil, 0, Config{LowWatermark: 0.9, HighWatermark: 0.8})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTierStrings(t *testing.T) {
	if TierAdmit.String() != "admit" || TierDefer.String() != "defer" || TierShed.String() != "shed" {
		t.Fatal("tier names wrong")
	}
	if Tier(99).String() != "unknown" {
		t.Fatal("out-of-range tier name")
	}
	if Recompute.String() != "recompute" || Retransfer.String() != "retransfer" {
		t.Fatal("recovery names wrong")
	}
}

func TestAdmitBelowHighWatermark(t *testing.T) {
	c, _ := newController(100, Config{})
	// Empty pool, 50% projected: admit.
	if tier := c.Admit(0, "r1", 50*16, 0); tier != TierAdmit {
		t.Fatalf("tier = %v, want admit", tier)
	}
	if c.Pressured() {
		t.Fatal("admit latched pressure")
	}
}

func TestDeferAboveHighWatermarkLatches(t *testing.T) {
	c, p := newController(100, Config{})
	if _, err := p.Allocate("held", 85*16, "decode"); err != nil {
		t.Fatal(err)
	}
	// 85 used + 10 needed = 95% projected > 90% high watermark.
	if tier := c.Admit(0, "r1", 10*16, 0); tier != TierDefer {
		t.Fatalf("tier = %v, want defer", tier)
	}
	if !c.Pressured() {
		t.Fatal("defer above high watermark did not latch")
	}
	// Once latched, even a small request that projects between low and
	// high defers: 85 used, 2 needed → 87% > 80% low watermark.
	if tier := c.Admit(0, "r2", 2*16, 0); tier != TierDefer {
		t.Fatalf("latched tier = %v, want defer", tier)
	}
	if c.Metrics().AdmissionsDeferred != 2 {
		t.Fatalf("deferred = %d, want 2", c.Metrics().AdmissionsDeferred)
	}
}

func TestHysteresisClearsBelowLow(t *testing.T) {
	c, p := newController(100, Config{})
	held, _ := p.Allocate("held", 85*16, "decode")
	c.Admit(0, "r1", 10*16, 0) // latch
	if !c.Pressured() {
		t.Fatal("not latched")
	}
	p.MustFree(held) // occupancy back to 0 < low watermark
	if tier := c.Admit(0, "r2", 85*16, 0); tier != TierAdmit {
		t.Fatalf("tier = %v, want admit after latch cleared", tier)
	}
	if c.Pressured() {
		t.Fatal("latch survived occupancy drop")
	}
}

func TestShedWhenRequestCanNeverFit(t *testing.T) {
	c, _ := newController(10, Config{})
	if tier := c.Admit(0, "big", 11*16, 0); tier != TierShed {
		t.Fatalf("tier = %v, want shed for request larger than pool", tier)
	}
	if c.Metrics().Shed != 1 {
		t.Fatalf("shed counter = %d", c.Metrics().Shed)
	}
}

func TestShedAfterDeferralBudget(t *testing.T) {
	c, _ := newController(100, Config{MaxDeferrals: 3})
	if tier := c.Admit(0, "r", 10*16, 2); tier != TierAdmit {
		t.Fatalf("tier = %v, want admit under budget", tier)
	}
	if tier := c.Admit(0, "r", 10*16, 3); tier != TierShed {
		t.Fatalf("tier = %v, want shed at budget", tier)
	}
}

func TestCriticalOccupancyHalvesDeferralBudget(t *testing.T) {
	c, p := newController(100, Config{MaxDeferrals: 8})
	if _, err := p.Allocate("held", 98*16, "decode"); err != nil {
		t.Fatal(err)
	}
	// 98% occupancy > 97% critical: budget halves to 4.
	if tier := c.Admit(0, "r", 16, 4); tier != TierShed {
		t.Fatalf("tier = %v, want shed with halved budget", tier)
	}
}

func TestDeferWhenPhysicallyFullEvenBelowWatermark(t *testing.T) {
	// A shrink can leave occupancy formally below the watermark while no
	// blocks are actually free; the gate must still defer.
	c, p := newController(100, Config{})
	held, _ := p.Allocate("held", 50*16, "decode")
	p.Shrink(50) // all free blocks retired; used 50 of total 50 = 100%
	_ = held
	if tier := c.Admit(0, "r", 16, 0); tier != TierDefer {
		t.Fatalf("tier = %v, want defer with zero free blocks", tier)
	}
}

func TestDeficit(t *testing.T) {
	c, p := newController(100, Config{})
	if _, err := p.Allocate("held", 90*16, "decode"); err != nil {
		t.Fatal(err)
	}
	// Landing at the 80% watermark with 5 more blocks needs 90+5-80 = 15
	// blocks freed.
	if d := c.Deficit(5 * 16); d != 15 {
		t.Fatalf("deficit = %d, want 15", d)
	}
	// No pressure: zero deficit.
	c2, _ := newController(100, Config{})
	if d := c2.Deficit(5 * 16); d != 0 {
		t.Fatalf("deficit = %d, want 0 in empty pool", d)
	}
}

func TestDeficitCoversPhysicalShortfall(t *testing.T) {
	// Low watermark alone can under-ask when the allocation is huge.
	c, p := newController(100, Config{LowWatermark: 0.1, HighWatermark: 0.9, CriticalWatermark: 0.97})
	if _, err := p.Allocate("held", 60*16, "decode"); err != nil {
		t.Fatal(err)
	}
	// need 70 blocks, only 40 free → physical shortfall 30; watermark
	// target 10 → watermark deficit 60+70-10 = 120. Max wins.
	if d := c.Deficit(70 * 16); d != 120 {
		t.Fatalf("deficit = %d, want 120", d)
	}
}

func TestPhysicalDeficit(t *testing.T) {
	c, p := newController(100, Config{})
	if _, err := p.Allocate("held", 90*16, "decode"); err != nil {
		t.Fatal(err)
	}
	// Fits in the 10 free blocks: no preemption even at 90% occupancy —
	// watermark pressure relieves itself by waiting.
	if d := c.PhysicalDeficit(10 * 16); d != 0 {
		t.Fatalf("deficit = %d, want 0 when allocation fits", d)
	}
	// 20 blocks needed, 10 free: preemption must cover the shortfall.
	if d := c.PhysicalDeficit(20 * 16); d != 10 {
		t.Fatalf("deficit = %d, want 10", d)
	}
}

func TestPhysicalDeficitZeroWhileDraining(t *testing.T) {
	c, p := newController(100, Config{})
	held, _ := p.Allocate("held", 80*16, "decode")
	p.Shrink(40) // 20 free retire now, 20 more owed by future frees
	if p.RetirePending() == 0 {
		t.Fatal("shrink left no retirement debt")
	}
	// Mid-drain, evictions pay the retirement debt, not the admission:
	// deficit must be zero however large the request.
	if d := c.PhysicalDeficit(50 * 16); d != 0 {
		t.Fatalf("deficit = %d, want 0 while drain pending", d)
	}
	p.MustFree(held) // debt settles
	if p.RetirePending() != 0 {
		t.Fatal("drain did not settle")
	}
	// Pool settled at 60 blocks, all free: a 70-block request is short 10.
	if d := c.PhysicalDeficit(70 * 16); d != 10 {
		t.Fatalf("deficit = %d, want 10 after drain", d)
	}
}

func TestCanReadmit(t *testing.T) {
	c, p := newController(100, Config{})
	// Empty pool: a victim re-reserving half the pool is fine.
	if !c.CanReadmit(50 * 16) {
		t.Fatal("readmit refused in empty pool")
	}
	held, _ := p.Allocate("held", 85*16, "decode")
	// Physically fits (15 free ≥ 10 needed) but 95% projected breaches
	// the 90% high watermark: readmission would re-create the pressure
	// that evicted the victim.
	if c.CanReadmit(10 * 16) {
		t.Fatal("readmit crossed high watermark")
	}
	// Landing exactly at the watermark is allowed: 85 + 5 = 90%.
	if !c.CanReadmit(5 * 16) {
		t.Fatal("readmit refused at high watermark")
	}
	p.MustFree(held)
	p.Shrink(95) // 5 blocks remain
	// Physically impossible: 10 blocks into a 5-block pool.
	if c.CanReadmit(10 * 16) {
		t.Fatal("readmit beyond pool capacity")
	}
}

func TestShouldShedVictim(t *testing.T) {
	c, _ := newController(10, Config{MaxPreemptions: 2})
	if c.ShouldShedVictim(2) {
		t.Fatal("shed at K")
	}
	if !c.ShouldShedVictim(3) {
		t.Fatal("no shed past K")
	}
}

func TestBackoffDoublesAndCaps(t *testing.T) {
	c, _ := newController(10, Config{BackoffBase: units.FromMs(2), BackoffCap: units.FromMs(10)})
	if got := c.Backoff(1); got != units.FromMs(2) {
		t.Fatalf("attempt 1 = %v", got)
	}
	if got := c.Backoff(2); got != units.FromMs(4) {
		t.Fatalf("attempt 2 = %v", got)
	}
	if got := c.Backoff(5); got != units.FromMs(10) {
		t.Fatalf("attempt 5 = %v, want cap", got)
	}
	if got := c.Backoff(0); got != units.FromMs(2) {
		t.Fatalf("attempt 0 = %v, want base", got)
	}
	if got := c.Backoff(1000); got != units.FromMs(10) {
		t.Fatalf("huge attempt = %v, want cap", got)
	}
}

func TestChooseRecovery(t *testing.T) {
	// Large context, fast host link, no buffer latency: retransfer wins
	// (268 MB at 25 GB/s ≈ 11 ms vs. a full 2048-token prefill).
	c, _ := newController(1000, Config{})
	if r := c.ChooseRecovery(2048, 108, 0); r != Retransfer {
		t.Fatalf("recovery = %v, want retransfer", r)
	}
	// A second of buffer latency dwarfs any prefill: recompute wins.
	if r := c.ChooseRecovery(2048, 108, units.Seconds(1)); r != Recompute {
		t.Fatalf("recovery = %v, want recompute with huge latency", r)
	}
	// Crippled host link: recompute wins.
	slow, _ := newController(1000, Config{HostBandwidth: units.BytesPerSec(1e3)})
	if r := slow.ChooseRecovery(2048, 108, 0); r != Recompute {
		t.Fatalf("recovery = %v, want recompute on slow link", r)
	}
	// No estimator: always recompute.
	p := kvcache.NewPool(10, 16)
	noEst := New(p, nil, 0, Config{})
	if r := noEst.ChooseRecovery(2048, 108, 0); r != Recompute {
		t.Fatalf("recovery = %v, want recompute without estimator", r)
	}
}

func TestRetransferAccounting(t *testing.T) {
	c, _ := newController(10, Config{})
	perTok := model.Llama31_8B().KVBytesPerToken()
	if got, want := c.RetransferBytes(100), units.Scale(perTok, 100); got != want {
		t.Fatalf("bytes = %v, want %v", got, want)
	}
	if got, want := c.RetransferTime(100), units.Scale(perTok, 100).Div(DefaultConfig().HostBandwidth); got != want {
		t.Fatalf("time = %v, want %v", got, want)
	}
	if c.KVBytesPerToken() != perTok {
		t.Fatal("KVBytesPerToken accessor")
	}
}

func TestRecordCountersAndTimeline(t *testing.T) {
	c, p := newController(100, Config{})
	tl := timeline.New(0)
	c.SetTimeline(tl)

	held, _ := p.Allocate("v", 50*16, "decode")
	c.RecordPreemption(units.FromMs(1), "v", held.Blocks(), 1)
	c.RecordRecovery(units.FromMs(2), "v", Recompute, 800)
	c.RecordRecovery(units.FromMs(3), "v", Retransfer, 800)
	c.RecordShed(units.FromMs(4), "v", "preempt-budget")
	c.RecordKVShrink(units.FromMs(5), 10, false)
	c.RecordKVShrink(units.FromMs(6), 10, true)
	c.Admit(units.FromMs(7), "r", 16, 0)

	m := c.Metrics()
	if m.Preemptions != 1 || m.Recomputes != 1 || m.RecomputedTokens != 800 ||
		m.Retransfers != 1 || m.RetransferredBytes != c.RetransferBytes(800) ||
		m.Shed != 1 || m.KVShrinks != 1 {
		t.Fatalf("counters: %+v", m)
	}
	if m.PeakOccupancy < 0.49 || m.PeakOccupancy > 0.51 {
		t.Fatalf("peak occupancy = %v, want ≈0.50", m.PeakOccupancy)
	}
	// One instant per Record* call plus the admission decision.
	if tl.Len() != 7 {
		t.Fatalf("timeline events = %d, want 7", tl.Len())
	}
	names := map[string]bool{}
	for _, e := range tl.Events() {
		if e.Lane != "pressure" {
			t.Fatalf("event on lane %q", e.Lane)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"admission", "preempt", "recover", "shed", "kv-shrink", "kv-restore"} {
		if !names[want] {
			t.Fatalf("missing %q instant (have %v)", want, names)
		}
	}
}

func TestNilTimelineIsSilent(t *testing.T) {
	c, _ := newController(100, Config{})
	// No recorder attached: all paths must still work.
	c.RecordPreemption(0, "v", 1, 1)
	c.RecordRecovery(0, "v", Retransfer, 10)
	c.RecordShed(0, "v", "x")
	c.RecordKVShrink(0, 1, false)
	if tier := c.Admit(0, "r", 16, 0); tier != TierAdmit {
		t.Fatalf("tier = %v", tier)
	}
	if c.Metrics().Preemptions != 1 {
		t.Fatal("counters not kept without timeline")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := c0()
	b := c0()
	b.PeakOccupancy = 0.9
	a.PeakOccupancy = 0.5
	a.Add(b)
	if a.AdmissionsDeferred != 2 || a.Preemptions != 2 || a.Recomputes != 2 ||
		a.RecomputedTokens != 2 || a.Retransfers != 2 || a.RetransferredBytes != 2 ||
		a.Shed != 2 || a.KVShrinks != 2 {
		t.Fatalf("sum: %+v", a)
	}
	if a.PeakOccupancy != 0.9 {
		t.Fatalf("peak = %v, want max 0.9", a.PeakOccupancy)
	}
}

// c0 returns a Pressure with every additive counter set to 1.
func c0() (p metrics.Pressure) {
	p.AdmissionsDeferred = 1
	p.Preemptions = 1
	p.Recomputes = 1
	p.RecomputedTokens = 1
	p.Retransfers = 1
	p.RetransferredBytes = 1
	p.Shed = 1
	p.KVShrinks = 1
	return p
}

func TestDecideUnknownTierUnreachable(t *testing.T) {
	// Documentation test: decide only returns the three named tiers; the
	// "unknown" string exists for defensive formatting only.
	if !strings.Contains(Tier(42).String(), "unknown") {
		t.Fatal("defensive tier name missing")
	}
}

// --- priority admission (AdmitPrio) ------------------------------------

func TestAdmitPrioPremiumEqualsAdmit(t *testing.T) {
	// The legacy entry point must reproduce AdmitPrio at PrioPremium bit
	// for bit across tiers and latch states.
	mk := func() (*Controller, *Controller, *kvcache.Pool, *kvcache.Pool) {
		a, pa := newController(100, Config{MaxDeferrals: 3})
		b, pb := newController(100, Config{MaxDeferrals: 3})
		return a, b, pa, pb
	}
	a, b, pa, pb := mk()
	for _, held := range []int{0, 85, 98} {
		if held > 0 {
			if _, err := pa.Allocate("h", held*16, "decode"); err != nil {
				t.Fatal(err)
			}
			if _, err := pb.Allocate("h", held*16, "decode"); err != nil {
				t.Fatal(err)
			}
		}
		for def := 0; def <= 4; def++ {
			got := a.Admit(0, "r", 10*16, def)
			want := b.AdmitPrio(0, "r", 10*16, def, PrioPremium)
			if got != want {
				t.Fatalf("held=%d def=%d: Admit=%v AdmitPrio(premium)=%v", held, def, got, want)
			}
		}
		a, b, pa, pb = mk()
	}
}

func TestPriorityMarginTightensWatermark(t *testing.T) {
	// Default high watermark 0.90, margin 0.04: effective limits are
	// 0.90 / 0.86 / 0.82 for premium / standard / best-effort. A
	// projection landing between two limits admits the higher class and
	// defers the lower.
	cases := []struct {
		projected int // blocks, out of 100
		admits    []Prio
		defers    []Prio
	}{
		{88, []Prio{PrioPremium}, []Prio{PrioStandard, PrioBestEffort}},
		{84, []Prio{PrioPremium, PrioStandard}, []Prio{PrioBestEffort}},
		{80, []Prio{PrioPremium, PrioStandard, PrioBestEffort}, nil},
	}
	for _, tc := range cases {
		for _, prio := range tc.admits {
			c, _ := newController(100, Config{})
			if tier := c.AdmitPrio(0, "r", tc.projected*16, 0, prio); tier != TierAdmit {
				t.Errorf("projected %d%%: prio %d = %v, want admit", tc.projected, prio, tier)
			}
		}
		for _, prio := range tc.defers {
			c, _ := newController(100, Config{})
			if tier := c.AdmitPrio(0, "r", tc.projected*16, 0, prio); tier != TierDefer {
				t.Errorf("projected %d%%: prio %d = %v, want defer", tc.projected, prio, tier)
			}
		}
	}
}

func TestPriorityHalvesDeferralBudget(t *testing.T) {
	// MaxDeferrals 8: budgets are 8 / 4 / 2 for premium / standard /
	// best-effort. At each class's budget the gate sheds; one under, it
	// still admits (pool is empty, so the watermark is no obstacle).
	budgets := map[Prio]int{PrioPremium: 8, PrioStandard: 4, PrioBestEffort: 2}
	for prio, budget := range budgets {
		c, _ := newController(100, Config{MaxDeferrals: 8})
		if tier := c.AdmitPrio(0, "r", 16, budget-1, prio); tier != TierAdmit {
			t.Errorf("prio %d one under budget: %v, want admit", prio, tier)
		}
		if tier := c.AdmitPrio(0, "r", 16, budget, prio); tier != TierShed {
			t.Errorf("prio %d at budget %d: %v, want shed", prio, budget, tier)
		}
	}
}

func TestDeferBudget(t *testing.T) {
	c, p := newController(100, Config{MaxDeferrals: 8})
	for prio, want := range map[Prio]int{PrioPremium: 8, PrioStandard: 4, PrioBestEffort: 2} {
		if got := c.DeferBudget(prio); got != want {
			t.Errorf("DeferBudget(%d) = %d, want %d", prio, got, want)
		}
	}
	// Above the critical watermark every budget halves again.
	if _, err := p.Allocate("h", 98*16, "decode"); err != nil {
		t.Fatal(err)
	}
	for prio, want := range map[Prio]int{PrioPremium: 4, PrioStandard: 2, PrioBestEffort: 1} {
		if got := c.DeferBudget(prio); got != want {
			t.Errorf("critical DeferBudget(%d) = %d, want %d", prio, got, want)
		}
	}
}
