// Package prof wires the standard runtime/pprof profilers behind the
// -cpuprofile/-memprofile flags the binaries share (`make prof` runs a
// representative profiled sweep). Profiling is strictly observational:
// it changes wall-clock cost only, never simulation output, so profiled
// and unprofiled runs of the same flags remain byte-identical.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuFile (if non-empty) and returns a
// stop function that finalizes both profiles. The heap profile is
// written to memFile (if non-empty) at stop time, after a GC, so it
// reflects live steady-state memory rather than transient garbage.
// Either path may be empty; Start("", "") returns a no-op stop.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("prof: close cpu profile: %w", err)
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // surface live objects, not unreclaimed garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
